// Regenerates Table II of the paper: test accuracy of the six FL methods
// across models (CNN / ResNet / VGG / LSTM), datasets (CIFAR-10-like,
// CIFAR-100-like, FEMNIST-like, Shakespeare-like, Sent140-like) and
// heterogeneity settings (Dirichlet beta in {0.1, 0.5, 1.0} and IID).
//
// Scaled-down defaults finish in minutes on one CPU core; use
// --rounds/--repeats/--clients to scale up towards the paper's setting.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace fedcross::bench {
namespace {

int Main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  fl::SetFlThreads(flags.GetInt("fl_threads", 0));
  int rounds = flags.GetInt("rounds", 120);
  int repeats = flags.GetInt("repeats", 1);
  int num_clients = flags.GetInt("clients", 50);
  int k = flags.GetInt("k", 5);
  std::string only_model = flags.GetString("model", "");
  std::string csv_path = flags.GetString("csv", "table2_accuracy.csv");
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }

  util::CsvWriter csv(csv_path);
  csv.WriteRow({"model", "dataset", "heterogeneity", "method",
                "accuracy_mean", "accuracy_std"});

  struct ImageSetting {
    std::string dataset;
    double beta;
  };
  std::vector<ImageSetting> image_settings = {
      {"cifar10", 0.1}, {"cifar10", 0.5}, {"cifar10", 1.0}, {"cifar10", 0.0},
      {"cifar100", 0.1}, {"cifar100", 0.5}, {"cifar100", 1.0},
      {"cifar100", 0.0}, {"femnist", 0.0},
  };

  auto run_block = [&](const std::string& arch,
                       const std::vector<ImageSetting>& settings) {
    std::printf("\n=== Table II block: model=%s ===\n", arch.c_str());
    std::vector<std::string> header = {"Dataset", "Heterogeneity"};
    for (const std::string& method : PaperMethods()) header.push_back(method);
    util::TablePrinter table(header);

    for (const ImageSetting& setting : settings) {
      std::vector<std::string> row = {
          setting.dataset,
          setting.dataset == "femnist" ? "natural"
                                       : HeterogeneityLabel(setting.beta)};
      for (const std::string& method : PaperMethods()) {
        RunSpec spec;
        spec.data.dataset = setting.dataset;
        spec.data.beta = setting.beta;
        spec.data.num_clients = num_clients;
        spec.model.arch = arch;
        spec.method = method;
        spec.rounds = rounds;
        spec.clients_per_round = k;
        spec.data.train_per_class = 80;
        spec.eval_every = 4;
        // femnist/text shards are larger per client; fewer rounds suffice.
        bool slow = setting.dataset == "femnist" || arch == "lstm";
        spec.rounds = slow ? std::max(2, rounds / 3) : rounds;
        // Scaled-down horizon: alpha 0.9 plays the role of the paper 0.99.
        spec.fedcross.alpha = 0.9;
        auto cell = BestAccuracyCell(spec, repeats);
        if (!cell.ok()) {
          std::fprintf(stderr, "%s\n", cell.status().ToString().c_str());
          row.push_back("ERR");
          continue;
        }
        row.push_back(util::TablePrinter::MeanStd(cell.value().mean,
                                                  cell.value().stddev));
        csv.WriteRow({arch, setting.dataset,
                      setting.dataset == "femnist"
                          ? "natural"
                          : HeterogeneityLabel(setting.beta),
                      method, util::CsvWriter::Field(cell.value().mean),
                      util::CsvWriter::Field(cell.value().stddev)});
      }
      table.AddRow(row);
      std::printf(".");
      std::fflush(stdout);
    }
    std::printf("\n");
    table.Print(stdout);
  };

  for (const std::string& arch : {"cnn", "resnet", "vgg"}) {
    if (!only_model.empty() && only_model != arch) continue;
    run_block(arch, image_settings);
  }
  if (only_model.empty() || only_model == "lstm") {
    run_block("lstm", {{"shakespeare", 0.0}, {"sent140", 0.0}});
  }
  std::printf("\nCSV written to %s\n", csv_path.c_str());
  return 0;
}

}  // namespace
}  // namespace fedcross::bench

int main(int argc, char** argv) { return fedcross::bench::Main(argc, argv); }
