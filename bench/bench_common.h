#ifndef FEDCROSS_BENCH_BENCH_COMMON_H_
#define FEDCROSS_BENCH_BENCH_COMMON_H_

// Shared experiment drivers for the bench/ binaries. Each binary
// regenerates one table or figure of the FedCross paper (see DESIGN.md §3)
// at a CPU-friendly scale; these helpers build the scaled-down datasets,
// models, and algorithm instances from a compact spec.

#include <memory>
#include <string>
#include <vector>

#include "core/fedcross.h"
#include "data/dataset.h"
#include "fl/algorithm.h"
#include "fl/history.h"
#include "models/model_zoo.h"
#include "privacy/dp.h"
#include "privacy/masking.h"
#include "util/status.h"

namespace fedcross::bench {

// A scaled-down dataset scenario, named after the paper's datasets.
// "cifar10" / "cifar100": synthetic image corpus + Dirichlet or IID split.
// "femnist": natural writer partition. "shakespeare" / "sent140": text.
struct DataSpec {
  std::string dataset = "cifar10";
  int num_clients = 20;
  double beta = 0.0;  // Dirichlet beta; <= 0 means IID (image datasets only)
  std::uint64_t seed = 1;
  // Image-scale knobs (defaults match the bench scale).
  int train_per_class = 40;
  int test_per_class = 30;
  float noise = 1.1f;  // class-overlap level; keeps accuracy off the ceiling
};

// Which model family to train, named after the paper's models.
struct ModelChoice {
  std::string arch = "cnn";  // cnn | resnet | vgg | lstm
  std::uint64_t seed = 1;
};

// One FL run configuration.
struct RunSpec {
  DataSpec data;
  ModelChoice model;
  std::string method = "fedcross";  // fedavg|fedprox|scaffold|fedgen|clusamp|fedcross
  int rounds = 20;
  int clients_per_round = 0;  // 0 = 10% of num_clients (min 2)
  int eval_every = 1;
  std::uint64_t seed = 42;
  // Training hyperparameters (paper defaults, scaled loops).
  int local_epochs = 5;
  int batch_size = 20;
  float lr = 0.03f;
  float momentum = 0.5f;
  // FedCross knobs.
  core::FedCrossOptions fedcross;
  // FedProx mu.
  float prox_mu = 0.01f;
  // Wire codec for the run's comm path (comm/wire.h).
  comm::CodecOptions codec;
  // Privacy subsystem (src/privacy): DP-SGD clip-and-noise plus the RDP
  // accountant, and the secure-aggregation masking overlay.
  privacy::DpOptions dp;
  privacy::MaskOptions secure_agg;
};

// Builds the federated dataset for a spec.
util::StatusOr<data::FederatedDataset> BuildData(const DataSpec& spec);

// Builds the model factory matched to the dataset geometry.
util::StatusOr<models::ModelFactory> BuildModel(const DataSpec& data,
                                                const ModelChoice& model);

// Instantiates the algorithm and runs it; returns the metrics history.
// On error (unknown method/arch/dataset) returns the status.
struct RunResult {
  fl::MetricsHistory history;
  double round_bytes_up = 0.0;    // last round, raw payload bytes
  double round_bytes_down = 0.0;
  // Measured wire-frame bytes of the whole run (CommTracker totals) — the
  // quantity the codec compresses.
  std::uint64_t total_wire_bytes_up = 0;
  std::uint64_t total_wire_bytes_down = 0;
  std::uint64_t total_raw_bytes_up = 0;
  std::uint64_t total_raw_bytes_down = 0;
  double final_accuracy = 0.0;
  std::int64_t model_size = 0;
  // Privacy ledger at run end: epsilon(dp.delta) from the RDP accountant
  // (0 when DP never noised anything), clipped-upload and mask-pair counts.
  double dp_epsilon = 0.0;
  std::int64_t dp_clipped = 0;
  std::int64_t mask_pairs = 0;
};
util::StatusOr<RunResult> RunMethod(const RunSpec& spec);

// Mean/stddev of best accuracy over `repeats` seeds (paper cells are
// mean +- std over runs). repeats=1 reports std 0.
struct AccuracyCell {
  double mean = 0.0;
  double stddev = 0.0;
};
util::StatusOr<AccuracyCell> BestAccuracyCell(RunSpec spec, int repeats);

// The six methods of Table II, in paper order.
const std::vector<std::string>& PaperMethods();

// Pretty heterogeneity label: "beta=0.1" or "IID".
std::string HeterogeneityLabel(double beta);

}  // namespace fedcross::bench

#endif  // FEDCROSS_BENCH_BENCH_COMMON_H_
