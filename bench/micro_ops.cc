// Micro-benchmarks (google-benchmark) for the numeric substrate and the
// FedCross server-side primitives: GEMM, conv forward/backward, flat
// parameter round-trips, cross-aggregation and cosine similarity vs model
// size. These quantify the design decisions called out in DESIGN.md §4
// (flat parameter views make CrossAggr / similarity O(P) passes).
#include <benchmark/benchmark.h>

#include <memory>

#include "core/fedcross.h"
#include "models/model_zoo.h"
#include "nn/conv2d.h"
#include "nn/loss.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace fedcross {
namespace {

void BM_Gemm(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  util::Rng rng(1);
  Tensor a = Tensor::RandomNormal({n, n}, rng);
  Tensor b = Tensor::RandomNormal({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    ops::Gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
              c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void BM_ConvForward(benchmark::State& state) {
  int channels = static_cast<int>(state.range(0));
  util::Rng rng(2);
  nn::Conv2d conv(channels, channels, 3, 1, 1, rng);
  Tensor input = Tensor::RandomNormal({8, channels, 16, 16}, rng);
  for (auto _ : state) {
    Tensor output = conv.Forward(input, true);
    benchmark::DoNotOptimize(output.data());
  }
}
BENCHMARK(BM_ConvForward)->Arg(4)->Arg(8)->Arg(16);

void BM_ConvBackward(benchmark::State& state) {
  int channels = static_cast<int>(state.range(0));
  util::Rng rng(3);
  nn::Conv2d conv(channels, channels, 3, 1, 1, rng);
  Tensor input = Tensor::RandomNormal({8, channels, 16, 16}, rng);
  Tensor output = conv.Forward(input, true);
  for (auto _ : state) {
    Tensor grad = conv.Backward(output);
    benchmark::DoNotOptimize(grad.data());
  }
}
BENCHMARK(BM_ConvBackward)->Arg(4)->Arg(8)->Arg(16);

nn::Sequential ZooModel(int scale) {
  models::VggConfig config;
  config.base_width = 4 * scale;
  config.fc_dim = 32 * scale;
  return models::MakeVgg(config)();
}

void BM_FlatRoundTrip(benchmark::State& state) {
  nn::Sequential model = ZooModel(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::vector<float> flat = model.ParamsToFlat();
    model.ParamsFromFlat(flat);
    benchmark::DoNotOptimize(flat.data());
  }
  state.SetBytesProcessed(state.iterations() * model.NumParams() *
                          static_cast<std::int64_t>(sizeof(float)) * 2);
}
BENCHMARK(BM_FlatRoundTrip)->Arg(1)->Arg(2)->Arg(4);

void BM_CrossAggregate(benchmark::State& state) {
  nn::Sequential model = ZooModel(static_cast<int>(state.range(0)));
  std::vector<float> a = model.ParamsToFlat();
  std::vector<float> b = a;
  for (auto _ : state) {
    std::vector<float> fused = core::FedCross::CrossAggregate(a, b, 0.99);
    benchmark::DoNotOptimize(fused.data());
  }
  state.SetBytesProcessed(state.iterations() * model.NumParams() *
                          static_cast<std::int64_t>(sizeof(float)) * 3);
}
BENCHMARK(BM_CrossAggregate)->Arg(1)->Arg(2)->Arg(4);

void BM_CosineSimilarity(benchmark::State& state) {
  nn::Sequential model = ZooModel(static_cast<int>(state.range(0)));
  std::vector<float> a = model.ParamsToFlat();
  std::vector<float> b = a;
  b[0] += 1.0f;
  for (auto _ : state) {
    double sim = ops::CosineSimilarity(a, b);
    benchmark::DoNotOptimize(sim);
  }
  state.SetBytesProcessed(state.iterations() * model.NumParams() *
                          static_cast<std::int64_t>(sizeof(float)) * 2);
}
BENCHMARK(BM_CosineSimilarity)->Arg(1)->Arg(2)->Arg(4);

void BM_LossForwardBackward(benchmark::State& state) {
  util::Rng rng(4);
  Tensor logits = Tensor::RandomNormal({64, 100}, rng);
  std::vector<int> labels(64);
  for (int i = 0; i < 64; ++i) labels[i] = i % 100;
  nn::CrossEntropyLoss criterion;
  for (auto _ : state) {
    nn::LossResult result = criterion.Compute(logits, labels);
    benchmark::DoNotOptimize(result.loss);
  }
}
BENCHMARK(BM_LossForwardBackward);

}  // namespace
}  // namespace fedcross
