// Micro-benchmarks (google-benchmark) for the numeric substrate and the
// FedCross server-side primitives: GEMM, conv forward/backward, flat
// parameter round-trips, cross-aggregation and cosine similarity vs model
// size. These quantify the design decisions called out in DESIGN.md §4
// (flat parameter views make CrossAggr / similarity O(P) passes).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "comm/wire.h"
#include "core/fedcross.h"
#include "data/partition.h"
#include "data/synthetic_image.h"
#include "data/synthetic_text.h"
#include "fl/evaluator.h"
#include "fl/fedavg.h"
#include "fl/model_pool.h"
#include "models/model_zoo.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "privacy/dp.h"
#include "privacy/masking.h"
#include "tensor/tensor_ops.h"
#include "util/mem_stats.h"
#include "util/rng.h"

namespace fedcross {
namespace {

void BM_Gemm(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  util::Rng rng(1);
  Tensor a = Tensor::RandomNormal({n, n}, rng);
  Tensor b = Tensor::RandomNormal({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    ops::Gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
              c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

// Cross-replica batched GEMM (the plan executor's fusion primitive) vs the
// same small per-replica shapes dispatched one Gemm call at a time. The
// shape is deliberately under the grouped-kernel threshold so the
// replica-interleaved microkernel engages; the arg is the replica count.
void RunSmallGemmLoop(benchmark::State& state, bool grouped) {
  const int count = static_cast<int>(state.range(0));
  constexpr int m = 20, n = 32, k = 16;
  util::Rng rng(3);
  std::vector<std::vector<float>> a(count), b(count), c(count);
  std::vector<ops::GemmGroup> groups(count);
  for (int r = 0; r < count; ++r) {
    a[r].resize(m * k);
    b[r].resize(k * n);
    c[r].resize(m * n);
    for (float& x : a[r]) x = static_cast<float>(rng.Normal(0.0, 1.0));
    for (float& x : b[r]) x = static_cast<float>(rng.Normal(0.0, 1.0));
    groups[r] = {a[r].data(), b[r].data(), c[r].data()};
  }
  for (auto _ : state) {
    if (grouped) {
      ops::GemmGrouped(false, false, m, n, k, 1.0f, k, n, 0.0f, n,
                       groups.data(), count);
    } else {
      for (int r = 0; r < count; ++r) {
        ops::Gemm(false, false, m, n, k, 1.0f, a[r].data(), k, b[r].data(), n,
                  0.0f, c[r].data(), n);
      }
    }
    benchmark::DoNotOptimize(c[0][0]);
  }
  state.SetItemsProcessed(state.iterations() * count);
}

void BM_GemmSmallLooped(benchmark::State& state) {
  RunSmallGemmLoop(state, false);
}
BENCHMARK(BM_GemmSmallLooped)->Arg(5)->Arg(10)->Arg(20);

void BM_GemmGrouped(benchmark::State& state) { RunSmallGemmLoop(state, true); }
BENCHMARK(BM_GemmGrouped)->Arg(5)->Arg(10)->Arg(20);

// Cross-replica grouped conv forward (the plan executor's conv fusion) vs
// the same per-image GEMM chain dispatched one standalone call at a time.
// Geometry mirrors a late residual-stage conv — 3x3 over 16 channels on a
// 2x2 feature map (patch 144, area 4) — the narrow-n regime where the
// standalone loop serialises each output pixel on a long FP chain and the
// lane-interleaved kernel engages (ops under the small threshold, area <= 8);
// the arg is the replica count.
void RunSmallConvLoop(benchmark::State& state, bool grouped) {
  const int count = static_cast<int>(state.range(0));
  constexpr int kBatch = 10, kOc = 16, kArea = 4, kPatch = 144;
  constexpr std::int64_t kColSize = static_cast<std::int64_t>(kPatch) * kArea;
  constexpr std::int64_t kOutSize = static_cast<std::int64_t>(kOc) * kArea;
  util::Rng rng(5);
  std::vector<std::vector<float>> w(count), cols(count), out(count);
  std::vector<ops::ConvGroup> groups(count);
  for (int r = 0; r < count; ++r) {
    w[r].resize(static_cast<std::size_t>(kOc) * kPatch);
    cols[r].resize(static_cast<std::size_t>(kBatch) * kColSize);
    out[r].resize(static_cast<std::size_t>(kBatch) * kOutSize);
    for (float& x : w[r]) x = static_cast<float>(rng.Normal(0.0, 1.0));
    for (float& x : cols[r]) x = static_cast<float>(rng.Normal(0.0, 1.0));
    groups[r] = {w[r].data(), cols[r].data(), out[r].data()};
  }
  for (auto _ : state) {
    if (grouped) {
      ops::ConvGrouped(kBatch, kOc, kArea, kPatch, groups.data(), count);
    } else {
      for (int r = 0; r < count; ++r) {
        for (int b = 0; b < kBatch; ++b) {
          ops::Gemm(false, false, kOc, kArea, kPatch, 1.0f, w[r].data(),
                    kPatch, cols[r].data() + b * kColSize, kArea, 0.0f,
                    out[r].data() + b * kOutSize, kArea);
        }
      }
    }
    benchmark::DoNotOptimize(out[0][0]);
  }
  state.SetItemsProcessed(state.iterations() * count * kBatch);
}

void BM_ConvSmallLooped(benchmark::State& state) {
  RunSmallConvLoop(state, false);
}
BENCHMARK(BM_ConvSmallLooped)->Arg(5)->Arg(10)->Arg(20);

void BM_ConvGrouped(benchmark::State& state) { RunSmallConvLoop(state, true); }
BENCHMARK(BM_ConvGrouped)->Arg(5)->Arg(10)->Arg(20);

void BM_ConvForward(benchmark::State& state) {
  int channels = static_cast<int>(state.range(0));
  util::Rng rng(2);
  nn::Conv2d conv(channels, channels, 3, 1, 1, rng);
  Tensor input = Tensor::RandomNormal({8, channels, 16, 16}, rng);
  for (auto _ : state) {
    Tensor output = conv.Forward(input, true);
    benchmark::DoNotOptimize(output.data());
  }
}
BENCHMARK(BM_ConvForward)->Arg(4)->Arg(8)->Arg(16);

void BM_ConvBackward(benchmark::State& state) {
  int channels = static_cast<int>(state.range(0));
  util::Rng rng(3);
  nn::Conv2d conv(channels, channels, 3, 1, 1, rng);
  Tensor input = Tensor::RandomNormal({8, channels, 16, 16}, rng);
  Tensor output = conv.Forward(input, true);
  for (auto _ : state) {
    Tensor grad = conv.Backward(output);
    benchmark::DoNotOptimize(grad.data());
  }
}
BENCHMARK(BM_ConvBackward)->Arg(4)->Arg(8)->Arg(16);

nn::Sequential ZooModel(int scale) {
  models::VggConfig config;
  config.base_width = 4 * scale;
  config.fc_dim = 32 * scale;
  return models::MakeVgg(config)();
}

void BM_FlatRoundTrip(benchmark::State& state) {
  nn::Sequential model = ZooModel(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::vector<float> flat = model.ParamsToFlat();
    model.ParamsFromFlat(flat);
    benchmark::DoNotOptimize(flat.data());
  }
  state.SetBytesProcessed(state.iterations() * model.NumParams() *
                          static_cast<std::int64_t>(sizeof(float)) * 2);
}
BENCHMARK(BM_FlatRoundTrip)->Arg(1)->Arg(2)->Arg(4);

void BM_CrossAggregate(benchmark::State& state) {
  nn::Sequential model = ZooModel(static_cast<int>(state.range(0)));
  std::vector<float> a = model.ParamsToFlat();
  std::vector<float> b = a;
  for (auto _ : state) {
    std::vector<float> fused = core::FedCross::CrossAggregate(a, b, 0.99);
    benchmark::DoNotOptimize(fused.data());
  }
  state.SetBytesProcessed(state.iterations() * model.NumParams() *
                          static_cast<std::int64_t>(sizeof(float)) * 3);
}
BENCHMARK(BM_CrossAggregate)->Arg(1)->Arg(2)->Arg(4);

void BM_CosineSimilarity(benchmark::State& state) {
  nn::Sequential model = ZooModel(static_cast<int>(state.range(0)));
  std::vector<float> a = model.ParamsToFlat();
  std::vector<float> b = a;
  b[0] += 1.0f;
  for (auto _ : state) {
    double sim = ops::CosineSimilarity(a, b);
    benchmark::DoNotOptimize(sim);
  }
  state.SetBytesProcessed(state.iterations() * model.NumParams() *
                          static_cast<std::int64_t>(sizeof(float)) * 2);
}
BENCHMARK(BM_CosineSimilarity)->Arg(1)->Arg(2)->Arg(4);

// One K=8-client FedAvg round vs --fl_threads (the benchmark arg). The
// per-(round, slot) seeded client Rngs make every thread count produce the
// same model, so this measures pure scheduling speedup: on an N-core
// machine, throughput should scale until Arg reaches N.
constexpr int kFedRoundDim = 64;

constexpr int kFedRoundClients = 8;

data::FederatedDataset MakeFedRoundData(int num_clients = kFedRoundClients) {
  constexpr int kDim = kFedRoundDim;
  util::Rng rng(7);
  data::FederatedDataset federated;
  federated.num_classes = 2;
  auto fill = [&](int n, std::vector<float>& features,
                  std::vector<int>& labels) {
    for (int i = 0; i < n; ++i) {
      int k = static_cast<int>(rng.UniformInt(2));
      float mean = k == 0 ? -1.0f : 1.0f;
      for (int d = 0; d < kDim; ++d) {
        features.push_back(mean + static_cast<float>(rng.Normal(0.0, 1.0)));
      }
      labels.push_back(k);
    }
  };
  for (int c = 0; c < num_clients; ++c) {
    std::vector<float> features;
    std::vector<int> labels;
    fill(200, features, labels);
    federated.client_train.push_back(std::make_shared<data::InMemoryDataset>(
        Tensor::Shape{kDim}, std::move(features), std::move(labels), 2));
  }
  {
    std::vector<float> features;
    std::vector<int> labels;
    fill(50, features, labels);
    federated.test = std::make_shared<data::InMemoryDataset>(
        Tensor::Shape{kDim}, std::move(features), std::move(labels), 2);
  }
  return federated;
}

models::ModelFactory MakeFedRoundFactory() {
  return [] {
    util::Rng model_rng(1);
    nn::Sequential model;
    model.Add(std::make_unique<nn::Linear>(kFedRoundDim, 128, model_rng));
    model.Add(std::make_unique<nn::Relu>());
    model.Add(std::make_unique<nn::Linear>(128, 2, model_rng));
    return model;
  };
}

fl::AlgorithmConfig MakeFedRoundConfig() {
  fl::AlgorithmConfig config;
  config.clients_per_round = kFedRoundClients;
  config.train.local_epochs = 2;
  config.train.batch_size = 20;
  config.seed = 42;
  return config;
}

void RunFedRoundLoop(benchmark::State& state, fl::AlgorithmConfig config) {
  fl::SetFlThreads(static_cast<int>(state.range(0)));
  fl::FedAvg fedavg(config, MakeFedRoundData(), MakeFedRoundFactory());
  int round = 0;
  for (auto _ : state) {
    fedavg.RunRound(round++);
    benchmark::DoNotOptimize(round);
  }
  state.SetItemsProcessed(state.iterations() * kFedRoundClients);
  fl::SetFlThreads(1);
}

void BM_FedRound(benchmark::State& state) {
  RunFedRoundLoop(state, MakeFedRoundConfig());
}
BENCHMARK(BM_FedRound)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// The same round with the full robustness stack switched on: per-slot fault
// streams, upload screening (finite check + norm gate) and a trimmed-mean
// aggregator. The delta vs BM_FedRound is the price of resilience; the
// screening pass is O(P) per upload and the trimmed mean sorts one
// K-element column per coordinate.
void BM_FedRoundRobust(benchmark::State& state) {
  fl::AlgorithmConfig config = MakeFedRoundConfig();
  config.faults.profile.dropout_prob = 0.05;
  config.faults.profile.corrupt_prob = 0.05;
  config.faults.profile.corruption = fl::CorruptionKind::kSignFlip;
  config.screening.check_finite = true;
  config.screening.max_update_norm = 100.0f;
  config.aggregator.kind = fl::AggregatorKind::kTrimmedMean;
  config.aggregator.trim_ratio = 0.2;
  RunFedRoundLoop(state, config);
}
BENCHMARK(BM_FedRoundRobust)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// The buffered-async engine on a heterogeneous fleet: per-dispatch clock
// draws, timeout + retry resolution, the arrival heap, and staleness-scaled
// aggregation. The delta vs BM_FedRound is the engine's wall-clock price
// (the virtual clock itself costs a few RNG draws per dispatch; the heap is
// O(log inflight) per upload).
void BM_FedRoundAsync(benchmark::State& state) {
  fl::AlgorithmConfig config = MakeFedRoundConfig();
  config.async.mode = fl::RoundMode::kAsync;
  config.async.buffer_size = kFedRoundClients / 2;
  config.async.dispatch_timeout = 2.0;
  config.async.max_retries = 1;
  config.async.clock.compute_speed_min = 25.0;
  config.async.clock.compute_speed_max = 400.0;
  config.async.clock.jitter = 0.1;
  config.faults.profile.straggler_prob = 0.3;
  RunFedRoundLoop(state, config);
}
BENCHMARK(BM_FedRoundAsync)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// The same round with every observability sink armed: metrics counters and
// histograms, phase/span tracing into the per-thread rings, and the round
// event stream (to /dev/null — the fprintf + fflush cost is real, the disk
// is not the point). The delta vs BM_FedRound is the full observability
// overhead; the acceptance bar is <= 5%.
void BM_FedRoundObs(benchmark::State& state) {
  obs::SetMetricsEnabled(true);
  obs::SetTracingEnabled(true);
  obs::SetEventsPath("/dev/null");
  RunFedRoundLoop(state, MakeFedRoundConfig());
  obs::SetEventsPath("");
  obs::SetTracingEnabled(false);
  obs::SetMetricsEnabled(false);
  obs::TraceRecorder::Global().Clear();
  obs::MetricsRegistry::Global().Reset();
}
BENCHMARK(BM_FedRoundObs)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// The same round shape against a lazily materialised virtual population;
// the arg is the REGISTERED client count N, while only K=8 clients per
// round ever hold data. Wall time should be flat in N (sampling is O(K)
// via Floyd, registration is ids + a shard factory) and the peak_rss_mb
// counter is the scale headline: memory tracks participation, not N.
data::FederatedDataset MakeVirtualFedRoundData(std::int64_t num_clients) {
  constexpr int kDim = kFedRoundDim;
  data::FederatedDataset federated;
  federated.num_classes = 2;
  federated.virtual_clients = num_clients;
  federated.make_shard = [](std::int64_t id) {
    util::Rng rng(0x5ca1e ^
                  (static_cast<std::uint64_t>(id) + 1) * 0x9e3779b97f4a7c15ULL);
    std::vector<float> features;
    std::vector<int> labels;
    for (int i = 0; i < 200; ++i) {
      int k = static_cast<int>(rng.UniformInt(2));
      float mean = k == 0 ? -1.0f : 1.0f;
      for (int d = 0; d < kDim; ++d) {
        features.push_back(mean + static_cast<float>(rng.Normal(0.0, 1.0)));
      }
      labels.push_back(k);
    }
    return std::make_shared<data::InMemoryDataset>(
        Tensor::Shape{kDim}, std::move(features), std::move(labels), 2);
  };
  {
    util::Rng rng(7);
    std::vector<float> features;
    std::vector<int> labels;
    for (int i = 0; i < 50; ++i) {
      int k = static_cast<int>(rng.UniformInt(2));
      float mean = k == 0 ? -1.0f : 1.0f;
      for (int d = 0; d < kDim; ++d) {
        features.push_back(mean + static_cast<float>(rng.Normal(0.0, 1.0)));
      }
      labels.push_back(k);
    }
    federated.test = std::make_shared<data::InMemoryDataset>(
        Tensor::Shape{kDim}, std::move(features), std::move(labels), 2);
  }
  return federated;
}

void BM_FedRoundScale(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  fl::SetFlThreads(4);
  fl::AlgorithmConfig config = MakeFedRoundConfig();
  config.population = fl::PopulationMode::kVirtual;
  fl::FedAvg fedavg(config, MakeVirtualFedRoundData(n),
                    MakeFedRoundFactory());
  int round = 0;
  for (auto _ : state) {
    fedavg.RunRound(round++);
    benchmark::DoNotOptimize(round);
  }
  state.SetItemsProcessed(state.iterations() * kFedRoundClients);
  state.counters["registered"] = static_cast<double>(n);
  state.counters["resident"] =
      static_cast<double>(fedavg.population().resident_clients());
  state.counters["peak_rss_mb"] =
      static_cast<double>(util::PeakRssBytes()) / (1024.0 * 1024.0);
  fl::SetFlThreads(1);
}
BENCHMARK(BM_FedRoundScale)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->UseRealTime();

// A full FedCross round sweeping the middleware-model count K, under both
// execution backends. K middleware models train on K sampled clients per
// round, so K is both the replica count the plan executor can fuse across
// and the cross-aggregation fan-in. Args: {K, exec} with exec 0 = layers,
// 1 = plan; the layers/plan delta at fixed K is the batched-executor
// speedup reported in EXPERIMENTS.md.
void BM_FedCrossRound(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  fl::SetFlThreads(1);
  fl::AlgorithmConfig config = MakeFedRoundConfig();
  config.clients_per_round = k;
  config.train.exec =
      state.range(1) == 1 ? fl::ExecMode::kPlan : fl::ExecMode::kLayers;
  core::FedCrossOptions options;
  options.alpha = 0.9;
  core::FedCross server(config, MakeFedRoundData(2 * k),
                        MakeFedRoundFactory(), options);
  int round = 0;
  for (auto _ : state) {
    server.RunRound(round++);
    benchmark::DoNotOptimize(round);
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_FedCrossRound)
    ->Args({5, 0})
    ->Args({5, 1})
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({20, 0})
    ->Args({20, 1})
    ->ArgNames({"K", "plan"})
    ->UseRealTime();

// The same K x exec sweep on the compiled zoo topologies: ResNet (residual
// skip refs + the cross-replica grouped-conv fusion) and the Embedding+LSTM
// head (bounded per-timestep loop with grouped gate GEMMs). Both lower
// natively, so plan:1 runs with zero interpreter fallbacks.
void RunFedCrossZooRound(benchmark::State& state,
                         const models::ModelFactory& factory,
                         data::FederatedDataset data) {
  const int k = static_cast<int>(state.range(0));
  fl::SetFlThreads(1);
  fl::AlgorithmConfig config;
  config.clients_per_round = k;
  config.train.local_epochs = 1;
  config.train.batch_size = 10;
  config.seed = 42;
  config.train.exec =
      state.range(1) == 1 ? fl::ExecMode::kPlan : fl::ExecMode::kLayers;
  core::FedCrossOptions options;
  options.alpha = 0.9;
  core::FedCross server(config, std::move(data), factory, options);
  int round = 0;
  for (auto _ : state) {
    server.RunRound(round++);
    benchmark::DoNotOptimize(round);
  }
  state.SetItemsProcessed(state.iterations() * k);
}

void BM_FedCrossRoundResNet(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  models::ResNetConfig resnet;
  resnet.height = resnet.width = 8;
  resnet.num_classes = 4;
  resnet.base_width = 4;
  data::SyntheticImageOptions image;
  image.num_classes = 4;
  image.height = image.width = 8;
  image.train_per_class = 10 * k;  // ~20 examples per client at 2K clients
  image.test_per_class = 8;
  image.seed = 11;
  data::ImageCorpus corpus = data::MakeSyntheticImageCorpus(image);
  util::Rng rng(12);
  data::FederatedDataset federated;
  federated.num_classes = 4;
  federated.client_train = data::MakeClientShards(
      corpus.train, data::IidPartition(*corpus.train, 2 * k, rng));
  federated.test = corpus.test;
  RunFedCrossZooRound(state, models::MakeResNet(resnet),
                      std::move(federated));
}
BENCHMARK(BM_FedCrossRoundResNet)
    ->Args({5, 0})
    ->Args({5, 1})
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({20, 0})
    ->Args({20, 1})
    ->ArgNames({"K", "plan"})
    ->UseRealTime();

void BM_FedCrossRoundLstm(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  models::LstmConfig lstm;  // vocab 32, seq 16, embed 16, hidden 32
  data::SyntheticCharLmOptions text;
  text.num_clients = 2 * k;
  text.mean_samples_per_client = 20;
  text.test_samples = 40;
  text.seed = 13;
  RunFedCrossZooRound(state, models::MakeLstm(lstm),
                      data::MakeSyntheticCharLm(text));
}
BENCHMARK(BM_FedCrossRoundLstm)
    ->Args({5, 0})
    ->Args({5, 1})
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({20, 0})
    ->Args({20, 1})
    ->ArgNames({"K", "plan"})
    ->UseRealTime();

// Parallel deterministic evaluation: EvaluateParams fans test batches over
// the FL pool, one pooled replica per worker slot, and reduces per-batch
// partials in batch order — results are bit-identical at every thread count
// (the arg), so this measures pure evaluation throughput. At Arg(1) it also
// shows the benefit of replica reuse over per-call model construction.
void BM_Evaluate(benchmark::State& state) {
  constexpr int kDim = kFedRoundDim;
  util::Rng rng(11);
  std::vector<float> features;
  std::vector<int> labels;
  for (int i = 0; i < 2000; ++i) {
    int k = static_cast<int>(rng.UniformInt(2));
    float mean = k == 0 ? -1.0f : 1.0f;
    for (int d = 0; d < kDim; ++d) {
      features.push_back(mean + static_cast<float>(rng.Normal(0.0, 1.0)));
    }
    labels.push_back(k);
  }
  data::InMemoryDataset dataset(Tensor::Shape{kDim}, std::move(features),
                                std::move(labels), 2);
  models::ModelFactory factory = [] {
    util::Rng model_rng(1);
    nn::Sequential model;
    model.Add(std::make_unique<nn::Linear>(kFedRoundDim, 128, model_rng));
    model.Add(std::make_unique<nn::Relu>());
    model.Add(std::make_unique<nn::Linear>(128, 2, model_rng));
    return model;
  };
  fl::ModelPool pool(factory);
  std::vector<float> params = factory().ParamsToFlat();

  fl::SetFlThreads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    fl::EvalResult result = fl::EvaluateParams(pool, params, dataset, 100);
    benchmark::DoNotOptimize(result.loss);
  }
  state.SetItemsProcessed(state.iterations() * dataset.size());
  fl::SetFlThreads(1);
}
BENCHMARK(BM_Evaluate)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// --- Wire codec (comm/wire.h) ----------------------------------------------
// Encode/decode cost per upload at a realistic model size, per scheme (the
// benchmark arg indexes kCodecSchemes). Bytes processed = the raw payload,
// so the reported GB/s is payload throughput, not frame throughput.

constexpr comm::Scheme kCodecSchemes[] = {
    comm::Scheme::kIdentity, comm::Scheme::kDelta, comm::Scheme::kInt8,
    comm::Scheme::kTopK, comm::Scheme::kInt8TopK};

struct CodecFixture {
  comm::ShapeTable shapes;
  std::vector<float> reference;
  std::vector<float> trained;

  CodecFixture() {
    nn::Sequential model = ZooModel(2);
    for (const nn::Param* param : model.Params()) {
      shapes.push_back(static_cast<std::uint32_t>(param->value.numel()));
    }
    reference = model.ParamsToFlat();
    trained = reference;
    util::Rng rng(5);
    // A plausible local update: small perturbation of every coordinate.
    for (float& v : trained) {
      v += 0.01f * static_cast<float>(rng.Normal(0.0, 1.0));
    }
  }
};

void BM_Encode(benchmark::State& state) {
  CodecFixture fx;
  comm::CodecOptions options;
  options.scheme = kCodecSchemes[state.range(0)];
  std::vector<float> residual;
  std::vector<std::uint8_t> frame;
  util::Rng rng(6);
  for (auto _ : state) {
    comm::EncodeUpload(options, fx.trained, fx.reference, fx.shapes, residual,
                       rng, frame);
    benchmark::DoNotOptimize(frame.data());
  }
  state.SetLabel(comm::SchemeName(options.scheme));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.trained.size()) *
                          static_cast<std::int64_t>(sizeof(float)));
}
BENCHMARK(BM_Encode)->DenseRange(0, 4);

void BM_Decode(benchmark::State& state) {
  CodecFixture fx;
  comm::CodecOptions options;
  options.scheme = kCodecSchemes[state.range(0)];
  std::vector<float> residual;
  std::vector<std::uint8_t> frame;
  util::Rng rng(6);
  comm::EncodeUpload(options, fx.trained, fx.reference, fx.shapes, residual,
                     rng, frame);
  std::vector<float> decoded;
  for (auto _ : state) {
    util::Status status =
        comm::DecodeUpload(frame, fx.reference, fx.shapes, decoded);
    benchmark::DoNotOptimize(status.ok());
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetLabel(comm::SchemeName(options.scheme));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.trained.size()) *
                          static_cast<std::int64_t>(sizeof(float)));
}
BENCHMARK(BM_Decode)->DenseRange(0, 4);

// DP-SGD sanitisation (privacy/dp.h): one clip-and-noise pass over a
// model-sized update. Arg is the parameter count in thousands; this is the
// per-upload cost DP adds to every client round.
void BM_SanitizeUpdate(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0)) * 1024;
  util::Rng init(11);
  fl::FlatParams reference(size);
  fl::FlatParams uploaded(size);
  for (std::size_t i = 0; i < size; ++i) {
    reference[i] = static_cast<float>(init.Normal(0.0, 1.0));
    uploaded[i] = reference[i] + static_cast<float>(init.Normal(0.0, 0.1));
  }
  privacy::DpOptions options;
  options.clip_norm = 1.0f;
  options.noise_multiplier = 1.0f;
  fl::FlatParams params;
  util::Rng rng(privacy::PrivacySeed(17, 1, 0, 0));
  for (auto _ : state) {
    params = uploaded;
    bool clipped =
        privacy::SanitizeUpdateInPlace(reference, params, options, rng);
    benchmark::DoNotOptimize(clipped);
    benchmark::DoNotOptimize(params.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(size) *
                          static_cast<std::int64_t>(sizeof(float)));
}
BENCHMARK(BM_SanitizeUpdate)->Arg(4)->Arg(16)->Arg(64);

// Masked fixed-point aggregation (privacy/masking.h): one full secure-
// aggregation round over a cohort of 8 model-sized uploads, including the
// word-exact cancellation check and one dropout's mask recovery. Arg is the
// parameter count in thousands.
void BM_MaskedSum(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0)) * 1024;
  const int cohort = 8;
  util::Rng init(13);
  std::vector<fl::FlatParams> uploads(cohort, fl::FlatParams(size));
  for (auto& upload : uploads) {
    for (float& v : upload) v = static_cast<float>(init.Normal(0.0, 1.0));
  }
  std::vector<const fl::FlatParams*> pointers;
  for (const auto& upload : uploads) pointers.push_back(&upload);
  pointers[3] = nullptr;  // one dropout exercises the recovery path
  privacy::MaskOptions options;
  options.enabled = true;
  for (auto _ : state) {
    privacy::MaskedSumReport report =
        privacy::SimulateMaskedAggregation(17, 1, 0, pointers, options);
    benchmark::DoNotOptimize(report.exact);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(size) * (cohort - 1) *
                          static_cast<std::int64_t>(sizeof(float)));
}
BENCHMARK(BM_MaskedSum)->Arg(4)->Arg(16)->Arg(64);

void BM_LossForwardBackward(benchmark::State& state) {
  util::Rng rng(4);
  Tensor logits = Tensor::RandomNormal({64, 100}, rng);
  std::vector<int> labels(64);
  for (int i = 0; i < 64; ++i) labels[i] = i % 100;
  nn::CrossEntropyLoss criterion;
  for (auto _ : state) {
    nn::LossResult result = criterion.Compute(logits, labels);
    benchmark::DoNotOptimize(result.loss);
  }
}
BENCHMARK(BM_LossForwardBackward);

}  // namespace
}  // namespace fedcross
