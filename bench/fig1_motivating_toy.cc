// Regenerates the Fig. 1 motivation on a measurable stand-in: a 2-client
// strongly-convex problem with far-apart client optima. FedAvg collapses
// both models to their mean every round (one-to-multi); FedCross keeps two
// middleware models that visit both clients (multi-to-multi). We report the
// optimality gap of the deployable (averaged) model and the per-client
// losses of the final model — the paper's story is that FedCross lands in
// a region acceptable to *both* clients.
#include <cstdio>

#include "core/quadratic.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace fedcross::bench {
namespace {

int Main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  int rounds = flags.GetInt("rounds", 120);
  double heterogeneity = flags.GetDouble("heterogeneity", 3.0);
  std::string csv_path = flags.GetString("csv", "fig1_motivating_toy.csv");
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }

  core::QuadraticProblem problem = core::QuadraticProblem::Make(
      /*dim=*/2, /*num_clients=*/2, /*mu=*/0.5, /*l=*/3.0, heterogeneity,
      /*seed=*/11);

  core::QuadraticSimOptions fedcross_options;
  fedcross_options.fedcross = true;
  fedcross_options.alpha = 0.7;
  core::QuadraticSimOptions fedavg_options = fedcross_options;
  fedavg_options.fedcross = false;

  std::vector<double> fedcross_gaps =
      core::RunQuadraticSimulation(problem, fedcross_options, rounds);
  std::vector<double> fedavg_gaps =
      core::RunQuadraticSimulation(problem, fedavg_options, rounds);

  util::CsvWriter csv(csv_path);
  csv.WriteRow({"round", "fedavg_gap", "fedcross_gap"});
  for (int r = 0; r < rounds; ++r) {
    csv.WriteRow({util::CsvWriter::Field(r + 1),
                  util::CsvWriter::Field(fedavg_gaps[r]),
                  util::CsvWriter::Field(fedcross_gaps[r])});
  }

  util::TablePrinter table({"Round", "FedAvg gap", "FedCross gap"});
  for (int r : {0, rounds / 4, rounds / 2, rounds - 1}) {
    table.AddRow({std::to_string(r + 1),
                  util::TablePrinter::Fixed(fedavg_gaps[r], 5),
                  util::TablePrinter::Fixed(fedcross_gaps[r], 5)});
  }
  std::printf("=== Fig. 1 stand-in: optimality gap of the deployable model "
              "on a 2-client heterogeneous convex problem ===\n");
  table.Print(stdout);
  std::printf("final gaps: FedAvg=%.6f FedCross=%.6f (lower is better)\n",
              fedavg_gaps.back(), fedcross_gaps.back());
  std::printf("CSV written to %s\n", csv_path.c_str());
  return 0;
}

}  // namespace
}  // namespace fedcross::bench

int main(int argc, char** argv) { return fedcross::bench::Main(argc, argv); }
