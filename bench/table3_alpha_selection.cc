// Regenerates Table III: FedCross accuracy for every combination of the
// cross-aggregation weight alpha in {0.5, 0.8, 0.9, 0.95, 0.99, 0.999} and
// the three collaborative-model selection strategies (in-order / highest /
// lowest similarity), on the CIFAR-10-like dataset with beta = 1.0 (CNN).
//
// Expected shape (paper): lowest-similarity wins at most alphas,
// highest-similarity degrades at large alpha, and alpha = 0.999 collapses.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace fedcross::bench {
namespace {

int Main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  fl::SetFlThreads(flags.GetInt("fl_threads", 0));
  int rounds = flags.GetInt("rounds", 120);
  int repeats = flags.GetInt("repeats", 1);
  int num_clients = flags.GetInt("clients", 50);
  int k = flags.GetInt("k", 5);
  std::string csv_path = flags.GetString("csv", "table3_alpha_selection.csv");
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }

  const std::vector<double> alphas = {0.5, 0.8, 0.9, 0.95, 0.99, 0.999};
  const std::vector<core::SelectionStrategy> strategies = {
      core::SelectionStrategy::kInOrder,
      core::SelectionStrategy::kHighestSimilarity,
      core::SelectionStrategy::kLowestSimilarity,
  };

  util::TablePrinter table(
      {"alpha", "In-Order", "Highest Similarity", "Lowest Similarity"});
  util::CsvWriter csv(csv_path);
  csv.WriteRow({"alpha", "strategy", "accuracy_mean", "accuracy_std"});

  for (double alpha : alphas) {
    std::vector<std::string> row = {util::TablePrinter::Fixed(alpha, 3)};
    for (core::SelectionStrategy strategy : strategies) {
      RunSpec spec;
      spec.method = "fedcross";
      spec.data.dataset = "cifar10";
      spec.data.beta = 1.0;
      spec.data.num_clients = num_clients;
      spec.model.arch = "cnn";
      spec.rounds = rounds;
      spec.clients_per_round = k;
      spec.data.train_per_class = 80;
      spec.eval_every = 4;
      spec.fedcross.alpha = alpha;
      spec.fedcross.strategy = strategy;
      auto cell = BestAccuracyCell(spec, repeats);
      if (!cell.ok()) {
        std::fprintf(stderr, "%s\n", cell.status().ToString().c_str());
        return 1;
      }
      row.push_back(util::TablePrinter::MeanStd(cell.value().mean,
                                                cell.value().stddev));
      csv.WriteRow({util::CsvWriter::Field(alpha),
                    core::SelectionStrategyName(strategy),
                    util::CsvWriter::Field(cell.value().mean),
                    util::CsvWriter::Field(cell.value().stddev)});
      std::printf(".");
      std::fflush(stdout);
    }
    table.AddRow(row);
  }

  std::printf("\n=== Table III: FedCross accuracy vs alpha x selection "
              "strategy (CIFAR-10-like, beta=1.0, CNN) ===\n");
  table.Print(stdout);
  std::printf("CSV written to %s\n", csv_path.c_str());
  return 0;
}

}  // namespace
}  // namespace fedcross::bench

int main(int argc, char** argv) { return fedcross::bench::Main(argc, argv); }
