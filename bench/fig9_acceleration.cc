// Regenerates Fig. 9: the two training-acceleration methods of Section
// III-D on the VGG model (CIFAR-10-like), beta = 0.1 and IID. Variants:
//   vanilla   — plain FedCross, alpha = 0.99
//   w/ PM     — propeller models for the first accel-window rounds
//   w/ DA     — dynamic alpha (0.5 -> 0.99) over the first accel-window
//   w/ PM-DA  — propellers for the first half of the window, dynamic alpha
//               for the second half
// Expected shape: all variants reach a usable accuracy earlier than
// vanilla, at a small cost in final accuracy.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace fedcross::bench {
namespace {

struct Variant {
  std::string name;
  core::FedCrossOptions options;
};

int Main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  fl::SetFlThreads(flags.GetInt("fl_threads", 0));
  int rounds = flags.GetInt("rounds", 60);
  int window = flags.GetInt("accel-window", 16);
  int num_clients = flags.GetInt("clients", 50);
  int k = flags.GetInt("k", 5);
  std::string csv_path = flags.GetString("csv", "fig9_acceleration.csv");
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }

  std::vector<Variant> variants;
  {
    Variant vanilla;
    vanilla.name = "FedCross";
    vanilla.options.alpha = 0.99;
    variants.push_back(vanilla);

    Variant pm = vanilla;
    pm.name = "FedCross w/ PM";
    pm.options.propeller_count = 3;
    pm.options.propeller_rounds = window;
    variants.push_back(pm);

    Variant da = vanilla;
    da.name = "FedCross w/ DA";
    da.options.dynamic_alpha_rounds = window;
    variants.push_back(da);

    Variant pmda = vanilla;
    pmda.name = "FedCross w/ PM-DA";
    pmda.options.propeller_count = 3;
    pmda.options.propeller_rounds = window / 2;
    pmda.options.dynamic_alpha_begin = window / 2;
    pmda.options.dynamic_alpha_rounds = window - window / 2;
    variants.push_back(pmda);
  }

  util::CsvWriter csv(csv_path);
  csv.WriteRow({"setting", "variant", "round", "test_accuracy"});
  util::TablePrinter table({"Setting", "Variant", "Best acc (%)",
                            "Acc @ window end (%)", "Rounds to 80% of best"});

  for (double beta : {0.1, 0.0}) {
    std::string setting = HeterogeneityLabel(beta);
    for (const Variant& variant : variants) {
      RunSpec spec;
      spec.data.dataset = "cifar10";
      spec.data.beta = beta;
      spec.data.num_clients = num_clients;
      spec.model.arch = "vgg";
      spec.method = "fedcross";
      spec.rounds = rounds;
      spec.clients_per_round = k;
      spec.data.train_per_class = 80;
      spec.eval_every = 2;
      spec.fedcross = variant.options;
      auto result = RunMethod(spec);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      const fl::MetricsHistory& history = result.value().history;
      float window_acc = 0.0f;
      for (const fl::RoundRecord& record : history.records()) {
        csv.WriteRow({setting, variant.name,
                      util::CsvWriter::Field(record.round),
                      util::CsvWriter::Field(record.test_accuracy)});
        if (record.round == window) window_acc = record.test_accuracy;
      }
      float best = history.BestAccuracy();
      table.AddRow({setting, variant.name,
                    util::TablePrinter::Fixed(best * 100),
                    util::TablePrinter::Fixed(window_acc * 100),
                    std::to_string(history.RoundsToAccuracy(0.8f * best))});
      std::printf(".");
      std::fflush(stdout);
    }
  }

  std::printf("\n=== Fig. 9: FedCross acceleration variants (VGG, "
              "CIFAR-10-like, window=%d rounds) ===\n",
              window);
  table.Print(stdout);
  std::printf("CSV written to %s (full curves)\n", csv_path.c_str());
  return 0;
}

}  // namespace
}  // namespace fedcross::bench

int main(int argc, char** argv) { return fedcross::bench::Main(argc, argv); }
