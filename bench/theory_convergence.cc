// Validates Theorem 1 (Section III-C) numerically: on a strongly-convex
// quadratic federated problem matching Assumptions 3.1-3.3, the optimality
// gap of the averaged FedCross model decays as O(1/t) under the
// eta_t = c/(t + lambda) schedule. We report gap(t) and the normalised
// gap(t) * t (bounded if the rate holds) for FedCross and FedAvg, plus an
// alpha sweep.
#include <cstdio>
#include <vector>

#include "core/quadratic.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace fedcross::bench {
namespace {

int Main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  int rounds = flags.GetInt("rounds", 400);
  int dim = flags.GetInt("dim", 16);
  int clients = flags.GetInt("clients", 8);
  std::string csv_path = flags.GetString("csv", "theory_convergence.csv");
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }

  core::QuadraticProblem problem = core::QuadraticProblem::Make(
      dim, clients, /*mu=*/0.5, /*l=*/2.0, /*heterogeneity=*/1.5, /*seed=*/9);

  util::CsvWriter csv(csv_path);
  csv.WriteRow({"series", "round", "gap", "gap_times_t"});

  auto run_series = [&](const std::string& name,
                        const core::QuadraticSimOptions& options) {
    std::vector<double> gaps =
        core::RunQuadraticSimulation(problem, options, rounds);
    for (int r = 0; r < rounds; ++r) {
      csv.WriteRow({name, util::CsvWriter::Field(r + 1),
                    util::CsvWriter::Field(gaps[r]),
                    util::CsvWriter::Field(gaps[r] * (r + 1))});
    }
    return gaps;
  };

  core::QuadraticSimOptions fedcross_options;
  std::vector<double> fedcross_gaps = run_series("fedcross", fedcross_options);
  core::QuadraticSimOptions fedavg_options;
  fedavg_options.fedcross = false;
  std::vector<double> fedavg_gaps = run_series("fedavg", fedavg_options);

  util::TablePrinter table({"Round t", "FedCross gap", "FedCross gap*t",
                            "FedAvg gap", "FedAvg gap*t"});
  for (int r : {10, 50, 100, 200, rounds - 1}) {
    if (r >= rounds) continue;
    table.AddRow({std::to_string(r + 1),
                  util::TablePrinter::Fixed(fedcross_gaps[r], 6),
                  util::TablePrinter::Fixed(fedcross_gaps[r] * (r + 1), 4),
                  util::TablePrinter::Fixed(fedavg_gaps[r], 6),
                  util::TablePrinter::Fixed(fedavg_gaps[r] * (r + 1), 4)});
  }
  std::printf("=== Theorem 1 check: optimality gap under the inverse-time "
              "schedule (gap*t bounded => O(1/t) rate) ===\n");
  table.Print(stdout);

  util::TablePrinter alpha_table({"alpha", "final gap"});
  for (double alpha : {0.5, 0.7, 0.9, 0.99}) {
    core::QuadraticSimOptions options;
    options.alpha = alpha;
    std::vector<double> gaps =
        core::RunQuadraticSimulation(problem, options, rounds);
    alpha_table.AddRow({util::TablePrinter::Fixed(alpha, 2),
                        util::TablePrinter::Fixed(gaps.back(), 6)});
    csv.WriteRow({"alpha=" + util::TablePrinter::Fixed(alpha, 2),
                  util::CsvWriter::Field(rounds),
                  util::CsvWriter::Field(gaps.back()),
                  util::CsvWriter::Field(gaps.back() * rounds)});
  }
  std::printf("\n=== FedCross convergence across alpha (all converge; "
              "Lemma 3.4 contraction) ===\n");
  alpha_table.Print(stdout);
  std::printf("CSV written to %s\n", csv_path.c_str());
  return 0;
}

}  // namespace
}  // namespace fedcross::bench

int main(int argc, char** argv) { return fedcross::bench::Main(argc, argv); }
