// Regenerates Fig. 6: impact of the number of activated clients K on the
// CIFAR-10-like dataset (ResNet, beta = 0.1). The paper sweeps K in
// {5, 10, 20, 50, 100} with N = 100; scaled default sweeps K in
// {2, 5, 10, 20} with N = 40. Expected shape: FedCross best everywhere;
// accuracy gains saturate once K is large enough.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace fedcross::bench {
namespace {

int Main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  fl::SetFlThreads(flags.GetInt("fl_threads", 0));
  int rounds = flags.GetInt("rounds", 60);
  int num_clients = flags.GetInt("clients", 40);
  bool all_methods = flags.GetBool("all", false);
  std::string csv_path = flags.GetString("csv", "fig6_activated.csv");
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }

  std::vector<int> ks = {2, 5, 10, 20};
  std::vector<std::string> methods =
      all_methods ? PaperMethods()
                  : std::vector<std::string>{"fedavg", "scaffold", "fedcross"};

  util::CsvWriter csv(csv_path);
  csv.WriteRow({"k", "method", "round", "test_accuracy"});
  std::vector<std::string> header = {"K"};
  for (const std::string& method : methods) header.push_back(method);
  util::TablePrinter table(header);

  for (int k : ks) {
    if (k > num_clients) continue;  // cannot activate more than N
    std::vector<std::string> row = {std::to_string(k)};
    for (const std::string& method : methods) {
      RunSpec spec;
      spec.data.dataset = "cifar10";
      spec.data.beta = 0.1;
      spec.data.num_clients = num_clients;
      spec.model.arch = "resnet";
      spec.method = method;
      spec.rounds = rounds;
      spec.clients_per_round = k;
      spec.data.train_per_class = 80;
      spec.eval_every = 2;
      spec.fedcross.alpha = 0.9;
      auto result = RunMethod(spec);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      const fl::MetricsHistory& history = result.value().history;
      for (const fl::RoundRecord& record : history.records()) {
        csv.WriteRow({util::CsvWriter::Field(k), method,
                      util::CsvWriter::Field(record.round),
                      util::CsvWriter::Field(record.test_accuracy)});
      }
      row.push_back(util::TablePrinter::Fixed(history.BestAccuracy() * 100));
      std::printf(".");
      std::fflush(stdout);
    }
    table.AddRow(row);
  }

  std::printf("\n=== Fig. 6: best accuracy (%%) vs activated clients K "
              "(ResNet, CIFAR-10-like, beta=0.1, N=%d) ===\n",
              num_clients);
  table.Print(stdout);
  std::printf("CSV written to %s (full curves)\n", csv_path.c_str());
  return 0;
}

}  // namespace
}  // namespace fedcross::bench

int main(int argc, char** argv) { return fedcross::bench::Main(argc, argv); }
