// Regenerates Fig. 7: impact of the total number of clients N with 10%
// participation on the CIFAR-10-like dataset (ResNet, beta = 0.5). The
// total sample count is held fixed, so larger N means smaller shards —
// the paper's finding: every method needs more rounds, FedCross stays
// best. Paper sweeps N in {50..1000}; scaled default {20, 50, 100}.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace fedcross::bench {
namespace {

int Main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  fl::SetFlThreads(flags.GetInt("fl_threads", 0));
  int rounds = flags.GetInt("rounds", 60);
  int total_per_class = flags.GetInt("total-per-class", 80);
  bool all_methods = flags.GetBool("all", false);
  std::string csv_path = flags.GetString("csv", "fig7_total_clients.csv");
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }

  std::vector<int> ns = {20, 50, 100};
  std::vector<std::string> methods =
      all_methods ? PaperMethods()
                  : std::vector<std::string>{"fedavg", "scaffold", "fedcross"};

  util::CsvWriter csv(csv_path);
  csv.WriteRow({"n", "method", "round", "test_accuracy"});
  std::vector<std::string> header = {"N", "K"};
  for (const std::string& method : methods) header.push_back(method);
  util::TablePrinter table(header);

  for (int n : ns) {
    int k = std::max(2, n / 10);
    std::vector<std::string> row = {std::to_string(n), std::to_string(k)};
    for (const std::string& method : methods) {
      RunSpec spec;
      spec.data.dataset = "cifar10";
      spec.data.beta = 0.5;
      spec.data.num_clients = n;
      spec.data.train_per_class = total_per_class;  // fixed total samples
      spec.model.arch = "resnet";
      spec.method = method;
      spec.rounds = rounds;
      spec.clients_per_round = k;
      spec.eval_every = 2;
      spec.fedcross.alpha = 0.9;
      auto result = RunMethod(spec);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      const fl::MetricsHistory& history = result.value().history;
      for (const fl::RoundRecord& record : history.records()) {
        csv.WriteRow({util::CsvWriter::Field(n), method,
                      util::CsvWriter::Field(record.round),
                      util::CsvWriter::Field(record.test_accuracy)});
      }
      row.push_back(util::TablePrinter::Fixed(history.BestAccuracy() * 100));
      std::printf(".");
      std::fflush(stdout);
    }
    table.AddRow(row);
  }

  std::printf("\n=== Fig. 7: best accuracy (%%) vs total clients N, 10%% "
              "participation (ResNet, CIFAR-10-like, beta=0.5, fixed total "
              "samples) ===\n");
  table.Print(stdout);
  std::printf("CSV written to %s (full curves)\n", csv_path.c_str());
  return 0;
}

}  // namespace
}  // namespace fedcross::bench

int main(int argc, char** argv) { return fedcross::bench::Main(argc, argv); }
