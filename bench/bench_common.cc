#include "bench_common.h"

#include <cmath>

#include "data/partition.h"
#include "data/synthetic_image.h"
#include "data/synthetic_text.h"
#include "fl/clusamp.h"
#include "fl/fedavg.h"
#include "fl/fedcluster.h"
#include "fl/fedgen.h"
#include "fl/scaffold.h"

namespace fedcross::bench {
namespace {

constexpr int kImageSize = 8;  // 3x8x8 synthetic images

data::FederatedDataset PartitionImages(const data::ImageCorpus& corpus,
                                       const DataSpec& spec) {
  util::Rng rng(spec.seed + 17);
  data::Partition partition =
      spec.beta > 0.0
          ? data::DirichletPartition(*corpus.train, spec.num_clients,
                                     spec.beta, rng)
          : data::IidPartition(*corpus.train, spec.num_clients, rng);
  data::FederatedDataset federated;
  federated.num_classes = corpus.train->num_classes();
  federated.client_train = data::MakeClientShards(corpus.train, partition);
  federated.test = corpus.test;
  return federated;
}

}  // namespace

const std::vector<std::string>& PaperMethods() {
  static const std::vector<std::string>* methods = new std::vector<std::string>{
      "fedavg", "fedprox", "scaffold", "fedgen", "clusamp", "fedcross"};
  return *methods;
}

std::string HeterogeneityLabel(double beta) {
  if (beta <= 0.0) return "IID";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "beta=%.1f", beta);
  return buffer;
}

util::StatusOr<data::FederatedDataset> BuildData(const DataSpec& spec) {
  if (spec.dataset == "cifar10" || spec.dataset == "cifar100") {
    data::SyntheticImageOptions options;
    options.num_classes = spec.dataset == "cifar10" ? 10 : 20;  // scaled 100
    options.channels = 3;
    options.height = options.width = kImageSize;
    options.train_per_class = spec.train_per_class;
    options.test_per_class = spec.test_per_class;
    options.noise_stddev = spec.noise;
    options.seed = spec.seed;
    return PartitionImages(data::MakeSyntheticImageCorpus(options), spec);
  }
  if (spec.dataset == "femnist") {
    data::SyntheticFemnistOptions options;
    options.num_writers = spec.num_clients;
    options.num_classes = 20;  // scaled 62
    options.classes_per_writer = 6;
    options.height = options.width = kImageSize;
    options.mean_samples_per_writer = 1.5 * spec.train_per_class;
    options.test_per_class = spec.test_per_class;
    options.seed = spec.seed;
    return data::MakeSyntheticFemnist(options);
  }
  if (spec.dataset == "shakespeare") {
    data::SyntheticCharLmOptions options;
    options.num_clients = spec.num_clients;
    options.vocab_size = 24;
    options.seq_len = 12;
    options.mean_samples_per_client = 2 * spec.train_per_class;
    options.test_samples = 15 * spec.test_per_class;
    options.seed = spec.seed;
    return data::MakeSyntheticCharLm(options);
  }
  if (spec.dataset == "sent140") {
    data::SyntheticSentimentOptions options;
    options.num_clients = spec.num_clients;
    options.vocab_size = 90;
    options.seq_len = 10;
    options.mean_samples_per_client = 3 * spec.train_per_class / 2;
    options.test_samples = 15 * spec.test_per_class;
    options.seed = spec.seed;
    return data::MakeSyntheticSentiment(options);
  }
  return util::Status::InvalidArgument("unknown dataset: " + spec.dataset);
}

util::StatusOr<models::ModelFactory> BuildModel(const DataSpec& data,
                                                const ModelChoice& model) {
  bool text = data.dataset == "shakespeare" || data.dataset == "sent140";
  if (text) {
    models::LstmConfig config;
    if (data.dataset == "shakespeare") {
      config.vocab_size = 24;
      config.num_classes = 24;
      config.seq_len = 12;
    } else {
      config.vocab_size = 90;
      config.num_classes = 2;
      config.seq_len = 10;
    }
    config.embed_dim = 12;
    config.hidden_dim = 24;
    config.seed = model.seed;
    return models::MakeLstm(config);
  }

  int num_classes = data.dataset == "cifar10" ? 10 : 20;
  int in_channels = data.dataset == "femnist" ? 1 : 3;
  if (model.arch == "cnn") {
    models::CnnConfig config;
    config.in_channels = in_channels;
    config.height = config.width = kImageSize;
    config.num_classes = num_classes;
    config.conv1_channels = 6;
    config.conv2_channels = 12;
    config.fc_dim = 32;
    config.seed = model.seed;
    return models::MakeCnn(config);
  }
  if (model.arch == "resnet") {
    models::ResNetConfig config;
    config.in_channels = in_channels;
    config.height = config.width = kImageSize;
    config.num_classes = num_classes;
    config.blocks_per_stage = 1;
    config.base_width = 6;
    config.gn_groups = 2;
    config.seed = model.seed;
    return models::MakeResNet(config);
  }
  if (model.arch == "vgg") {
    models::VggConfig config;
    config.in_channels = in_channels;
    config.height = config.width = kImageSize;
    config.num_classes = num_classes;
    config.base_width = 6;
    config.fc_dim = 48;
    config.seed = model.seed;
    return models::MakeVgg(config);
  }
  return util::Status::InvalidArgument("unknown arch: " + model.arch);
}

util::StatusOr<RunResult> RunMethod(const RunSpec& spec) {
  auto data_or = BuildData(spec.data);
  if (!data_or.ok()) return data_or.status();
  auto factory_or = BuildModel(spec.data, spec.model);
  if (!factory_or.ok()) return factory_or.status();
  data::FederatedDataset data = std::move(data_or).value();
  models::ModelFactory factory = std::move(factory_or).value();

  fl::AlgorithmConfig config;
  config.clients_per_round =
      spec.clients_per_round > 0
          ? spec.clients_per_round
          : std::max(2, spec.data.num_clients / 10);
  config.train.local_epochs = spec.local_epochs;
  config.train.batch_size = spec.batch_size;
  config.train.lr = spec.lr;
  config.train.momentum = spec.momentum;
  config.seed = spec.seed;
  config.codec = spec.codec;
  config.dp = spec.dp;
  config.secure_agg = spec.secure_agg;

  std::unique_ptr<fl::FlAlgorithm> algorithm;
  if (spec.method == "fedavg") {
    algorithm = std::make_unique<fl::FedAvg>(config, std::move(data), factory);
  } else if (spec.method == "fedprox") {
    algorithm = std::make_unique<fl::FedProx>(config, std::move(data), factory,
                                              spec.prox_mu);
  } else if (spec.method == "scaffold") {
    algorithm =
        std::make_unique<fl::Scaffold>(config, std::move(data), factory);
  } else if (spec.method == "fedgen") {
    algorithm = std::make_unique<fl::FedGen>(config, std::move(data), factory);
  } else if (spec.method == "fedcluster") {
    algorithm = std::make_unique<fl::FedCluster>(
        config, std::move(data), factory,
        std::max(2, config.clients_per_round / 2));
  } else if (spec.method == "clusamp") {
    algorithm =
        std::make_unique<fl::CluSamp>(config, std::move(data), factory);
  } else if (spec.method == "fedcross") {
    algorithm = std::make_unique<core::FedCross>(config, std::move(data),
                                                 factory, spec.fedcross);
  } else {
    return util::Status::InvalidArgument("unknown method: " + spec.method);
  }

  algorithm->Run(spec.rounds, spec.eval_every);
  RunResult result;
  result.history = algorithm->history();
  result.model_size = algorithm->model_size();
  if (!result.history.records().empty()) {
    result.round_bytes_up = result.history.records().back().bytes_up;
    result.round_bytes_down = result.history.records().back().bytes_down;
    result.final_accuracy = result.history.records().back().test_accuracy;
  }
  result.total_wire_bytes_up = algorithm->comm().total_wire_upload_bytes();
  result.total_wire_bytes_down =
      algorithm->comm().total_wire_download_bytes();
  result.total_raw_bytes_up = algorithm->comm().total_upload_bytes();
  result.total_raw_bytes_down = algorithm->comm().total_download_bytes();
  result.dp_epsilon = algorithm->privacy_epsilon();
  result.dp_clipped = algorithm->privacy_stats().clipped;
  result.mask_pairs = algorithm->privacy_stats().mask_pairs;
  return result;
}

util::StatusOr<AccuracyCell> BestAccuracyCell(RunSpec spec, int repeats) {
  std::vector<double> values;
  for (int r = 0; r < repeats; ++r) {
    spec.seed = spec.seed + r * 1000;
    spec.data.seed = spec.data.seed + r;
    auto result = RunMethod(spec);
    if (!result.ok()) return result.status();
    values.push_back(result.value().history.BestAccuracy() * 100.0);
  }
  AccuracyCell cell;
  for (double v : values) cell.mean += v;
  cell.mean /= values.size();
  if (values.size() > 1) {
    double var = 0.0;
    for (double v : values) var += (v - cell.mean) * (v - cell.mean);
    cell.stddev = std::sqrt(var / (values.size() - 1));
  }
  return cell;
}

}  // namespace fedcross::bench
