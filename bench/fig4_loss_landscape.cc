// Regenerates Fig. 4: loss landscapes of the global models trained by
// FedAvg and FedCross (ResNet family, CIFAR-10-like) under beta = 0.1 and
// IID. We emit the 2-D filter-normalised loss grid for each (model,
// setting) pair plus scalar sharpness summaries. The paper's claim to
// check: FedAvg's minima are sharper than FedCross's.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/landscape.h"
#include "fl/fedavg.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace fedcross::bench {
namespace {

int Main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  fl::SetFlThreads(flags.GetInt("fl_threads", 0));
  int rounds = flags.GetInt("rounds", 60);
  int grid = flags.GetInt("grid", 9);
  double radius = flags.GetDouble("radius", 0.8);
  int num_clients = flags.GetInt("clients", 50);
  int k = flags.GetInt("k", 5);
  std::string arch = flags.GetString("arch", "resnet");
  std::string csv_path = flags.GetString("csv", "fig4_landscape.csv");
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }

  util::CsvWriter csv(csv_path);
  csv.WriteRow({"setting", "method", "x", "y", "loss"});
  util::TablePrinter table({"Setting", "Method", "Center loss",
                            "Border sharpness", "Max increase"});

  for (double beta : {0.1, 0.0}) {
    for (const std::string& method : {"fedavg", "fedcross"}) {
      DataSpec data_spec;
      data_spec.dataset = "cifar10";
      data_spec.beta = beta;
      data_spec.num_clients = num_clients;
      data_spec.train_per_class = 80;
      auto data = BuildData(data_spec);
      auto factory = BuildModel(data_spec, ModelChoice{arch, 1});
      if (!data.ok() || !factory.ok()) {
        std::fprintf(stderr, "setup failed\n");
        return 1;
      }

      RunSpec spec;
      spec.data = data_spec;
      spec.model.arch = arch;
      spec.method = method;
      spec.rounds = rounds;
      spec.fedcross.alpha = 0.9;
      // Re-run through the shared driver to get the trained global model:
      // we rebuild the algorithm here so we can extract parameters.
      fl::AlgorithmConfig config;
      config.clients_per_round = k;
      config.train.local_epochs = spec.local_epochs;
      config.train.batch_size = spec.batch_size;
      config.train.lr = spec.lr;
      config.train.momentum = spec.momentum;
      config.seed = spec.seed;

      std::unique_ptr<fl::FlAlgorithm> algorithm;
      if (method == "fedavg") {
        algorithm = std::make_unique<fl::FedAvg>(
            config, std::move(data).value(), factory.value());
      } else {
        algorithm = std::make_unique<core::FedCross>(
            config, std::move(data).value(), factory.value(), spec.fedcross);
      }
      algorithm->Run(rounds, /*eval_every=*/rounds);
      fl::FlatParams params = algorithm->GlobalParams();

      core::LandscapeOptions landscape_options;
      landscape_options.grid = grid;
      landscape_options.radius = radius;
      landscape_options.max_examples = 100;
      core::LandscapeResult landscape = core::ProbeLossLandscape(
          factory.value(), params, algorithm->test_set(), landscape_options);

      std::string setting = HeterogeneityLabel(beta);
      int half = grid / 2;
      for (int yi = 0; yi < grid; ++yi) {
        for (int xi = 0; xi < grid; ++xi) {
          csv.WriteRow(
              {setting, method,
               util::CsvWriter::Field(radius * (xi - half) / half),
               util::CsvWriter::Field(radius * (yi - half) / half),
               util::CsvWriter::Field(landscape.loss[yi][xi])});
        }
      }
      table.AddRow({setting, method,
                    util::TablePrinter::Fixed(landscape.center_loss, 4),
                    util::TablePrinter::Fixed(landscape.border_sharpness, 4),
                    util::TablePrinter::Fixed(landscape.max_increase, 4)});
      std::printf(".");
      std::fflush(stdout);
    }
  }

  std::printf("\n=== Fig. 4: loss-landscape sharpness of trained global "
              "models (%s, CIFAR-10-like) ===\n",
              arch.c_str());
  table.Print(stdout);
  std::printf("Expected shape: FedAvg rows sharper (larger border "
              "sharpness / max increase) than FedCross rows.\n");
  std::printf("CSV written to %s\n", csv_path.c_str());
  return 0;
}

}  // namespace
}  // namespace fedcross::bench

int main(int argc, char** argv) { return fedcross::bench::Main(argc, argv); }
