// Regenerates Table I + the Section IV-C3 communication analysis: per-round
// communication of every method, measured by the CommTracker during a real
// run (not an analytic estimate). The paper's claim to verify: FedCross
// moves exactly 2K models per round — the same as FedAvg and less than
// SCAFFOLD (4K payloads) and FedGen (2K models + K generators).
//
// Supports the shared observability flags (--events_out/--trace_out/
// --metrics_out): with --events_out set, every measured round of every
// method lands in one JSONL file, so the table can be cross-checked against
// the per-round byte counts in the event stream.
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/obs_init.h"
#include "util/table_printer.h"

namespace fedcross::bench {
namespace {

const char* Category(const std::string& method) {
  if (method == "fedavg") return "Classic";
  if (method == "fedprox" || method == "scaffold") {
    return "Global Control Variable";
  }
  if (method == "fedgen") return "Knowledge Distillation";
  if (method == "clusamp") return "Client Grouping";
  return "Multi-Model Guided";
}

int Main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  fl::SetFlThreads(flags.GetInt("fl_threads", 0));
  int num_clients = flags.GetInt("clients", 20);
  std::string csv_path = flags.GetString("csv", "table1_comm.csv");
  util::Status obs_status = util::InitObservability(flags);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }
  if (!obs_status.ok()) {
    std::fprintf(stderr, "%s\n", obs_status.ToString().c_str());
    return 1;
  }

  util::TablePrinter table({"Method", "Category", "Round down (model-eq)",
                            "Round up (model-eq)", "Overhead class"});
  util::CsvWriter csv(csv_path);
  csv.WriteRow({"method", "category", "bytes_down", "bytes_up",
                "models_down", "models_up", "overhead"});

  for (const std::string& method : PaperMethods()) {
    RunSpec spec;
    spec.method = method;
    spec.data.num_clients = num_clients;
    spec.rounds = 2;  // round 2: FedGen's generator payload is active
    auto result = RunMethod(spec);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    double model_bytes =
        fl::CommTracker::FloatBytes(result.value().model_size);
    double down = result.value().round_bytes_down / model_bytes;
    double up = result.value().round_bytes_up / model_bytes;
    int k = std::max(2, num_clients / 10);
    double total = down + up;
    const char* overhead = total <= 2.0 * k + 0.01
                               ? "Low"
                               : (total < 3.5 * k ? "Medium" : "High");
    table.AddRow({method, Category(method), util::TablePrinter::Fixed(down),
                  util::TablePrinter::Fixed(up), overhead});
    csv.WriteRow({method, Category(method),
                  util::CsvWriter::Field(result.value().round_bytes_down),
                  util::CsvWriter::Field(result.value().round_bytes_up),
                  util::CsvWriter::Field(down), util::CsvWriter::Field(up),
                  overhead});
  }

  std::printf("=== Table I: methods, categories, measured per-round "
              "communication (in model-equivalents, K=%d) ===\n",
              std::max(2, num_clients / 10));
  table.Print(stdout);
  std::printf("CSV written to %s\n", csv_path.c_str());
  util::Status flushed = util::FlushObservability();
  if (!flushed.ok()) {
    std::fprintf(stderr, "%s\n", flushed.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fedcross::bench

int main(int argc, char** argv) { return fedcross::bench::Main(argc, argv); }
