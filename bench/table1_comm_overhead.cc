// Regenerates Table I + the Section IV-C3 communication analysis: per-round
// communication of every method, measured by the CommTracker during a real
// run (not an analytic estimate). The paper's claim to verify: FedCross
// moves exactly 2K models per round — the same as FedAvg and less than
// SCAFFOLD (4K payloads) and FedGen (2K models + K generators).
//
// With --codec set to one of the lossy schemes (int8 | topk | int8_topk)
// every method runs twice — once under the identity codec, once under the
// requested one — and the table gains the measured upload compression ratio
// (raw payload bytes / encoded wire bytes) plus the final-accuracy delta
// the compression cost. --codec delta measures the lossless scheme the same
// way (ratio only; the accuracy delta is zero by construction).
//
//   ./table1_comm_overhead [--clients 20] [--rounds 2] [--codec int8_topk]
//                          [--topk 0.1] [--csv table1_comm.csv]
//
// Supports the shared observability flags (--events_out/--trace_out/
// --metrics_out): with --events_out set, every measured round of every
// method lands in one JSONL file, so the table can be cross-checked against
// the per-round raw/wire byte counts in the event stream.
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "comm/wire.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/obs_init.h"
#include "util/table_printer.h"

namespace fedcross::bench {
namespace {

const char* Category(const std::string& method) {
  if (method == "fedavg") return "Classic";
  if (method == "fedprox" || method == "scaffold") {
    return "Global Control Variable";
  }
  if (method == "fedgen") return "Knowledge Distillation";
  if (method == "clusamp") return "Client Grouping";
  return "Multi-Model Guided";
}

int Main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  fl::SetFlThreads(flags.GetInt("fl_threads", 0));
  int num_clients = flags.GetInt("clients", 20);
  int rounds = flags.GetInt("rounds", 2);
  std::string csv_path = flags.GetString("csv", "table1_comm.csv");
  std::string codec_name = flags.GetString("codec", "identity");
  double topk = flags.GetDouble("topk", 0.1);
  util::Status obs_status = util::InitObservability(flags);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }
  if (!obs_status.ok()) {
    std::fprintf(stderr, "%s\n", obs_status.ToString().c_str());
    return 1;
  }
  util::StatusOr<comm::Scheme> scheme = comm::ParseScheme(codec_name);
  if (!scheme.ok()) {
    std::fprintf(stderr, "%s\n", scheme.status().ToString().c_str());
    return 1;
  }
  const bool compare = scheme.value() != comm::Scheme::kIdentity;

  util::TablePrinter table(
      compare ? std::vector<std::string>{"Method", "Category",
                                         "Round down (model-eq)",
                                         "Round up (model-eq)", "Up ratio",
                                         "Acc delta (pp)", "Overhead class"}
              : std::vector<std::string>{"Method", "Category",
                                         "Round down (model-eq)",
                                         "Round up (model-eq)",
                                         "Overhead class"});
  util::CsvWriter csv(csv_path);
  csv.WriteRow({"method", "category", "bytes_down", "bytes_up", "models_down",
                "models_up", "codec", "wire_bytes_down", "wire_bytes_up",
                "upload_ratio", "accuracy", "identity_accuracy", "overhead"});

  for (const std::string& method : PaperMethods()) {
    RunSpec spec;
    spec.method = method;
    spec.data.num_clients = num_clients;
    spec.rounds = rounds;  // >= 2: FedGen's generator payload is active
    auto identity = RunMethod(spec);
    if (!identity.ok()) {
      std::fprintf(stderr, "%s\n", identity.status().ToString().c_str());
      return 1;
    }
    // The codec run replays the identical round sequence (same seeds, same
    // client draws); only the uplink encoding differs.
    spec.codec.scheme = scheme.value();
    spec.codec.topk_fraction = topk;
    auto coded = compare ? RunMethod(spec) : identity;
    if (!coded.ok()) {
      std::fprintf(stderr, "%s\n", coded.status().ToString().c_str());
      return 1;
    }
    const RunResult& base = identity.value();
    const RunResult& wire = coded.value();

    double model_bytes =
        static_cast<double>(fl::CommTracker::FloatBytes(base.model_size));
    double down = base.round_bytes_down / model_bytes;
    double up = base.round_bytes_up / model_bytes;
    // Measured upload compression: raw payload bytes over encoded frame
    // bytes, across the whole run.
    double up_ratio = wire.total_wire_bytes_up > 0
                          ? static_cast<double>(wire.total_raw_bytes_up) /
                                static_cast<double>(wire.total_wire_bytes_up)
                          : 0.0;
    double acc_delta_pp =
        (wire.final_accuracy - base.final_accuracy) * 100.0;
    int k = std::max(2, num_clients / 10);
    double total = down + up;
    const char* overhead = total <= 2.0 * k + 0.01
                               ? "Low"
                               : (total < 3.5 * k ? "Medium" : "High");
    if (compare) {
      char ratio_cell[32];
      std::snprintf(ratio_cell, sizeof(ratio_cell), "%.1fx", up_ratio);
      char delta_cell[32];
      std::snprintf(delta_cell, sizeof(delta_cell), "%+.2f", acc_delta_pp);
      table.AddRow({method, Category(method), util::TablePrinter::Fixed(down),
                    util::TablePrinter::Fixed(up), ratio_cell, delta_cell,
                    overhead});
    } else {
      table.AddRow({method, Category(method), util::TablePrinter::Fixed(down),
                    util::TablePrinter::Fixed(up), overhead});
    }
    csv.WriteRow({method, Category(method),
                  util::CsvWriter::Field(base.round_bytes_down),
                  util::CsvWriter::Field(base.round_bytes_up),
                  util::CsvWriter::Field(down), util::CsvWriter::Field(up),
                  comm::SchemeName(spec.codec.scheme),
                  util::CsvWriter::Field(
                      static_cast<double>(wire.total_wire_bytes_down)),
                  util::CsvWriter::Field(
                      static_cast<double>(wire.total_wire_bytes_up)),
                  util::CsvWriter::Field(up_ratio),
                  util::CsvWriter::Field(wire.final_accuracy),
                  util::CsvWriter::Field(base.final_accuracy), overhead});
  }

  std::printf("=== Table I: methods, categories, measured per-round "
              "communication (in model-equivalents, K=%d%s%s) ===\n",
              std::max(2, num_clients / 10),
              compare ? ", codec=" : "",
              compare ? comm::SchemeName(scheme.value()) : "");
  table.Print(stdout);
  std::printf("CSV written to %s\n", csv_path.c_str());
  util::Status flushed = util::FlushObservability();
  if (!flushed.ok()) {
    std::fprintf(stderr, "%s\n", flushed.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fedcross::bench

int main(int argc, char** argv) { return fedcross::bench::Main(argc, argv); }
