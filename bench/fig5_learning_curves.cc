// Regenerates Fig. 5: round-by-round learning curves of the six FL methods
// on the CIFAR-10-like dataset for beta in {0.1, 0.5, 1.0} and IID.
// Default model: CNN (pass --arch resnet / vgg for the other rows of the
// figure). Curves go to CSV; stdout shows a best/final accuracy summary.
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace fedcross::bench {
namespace {

int Main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  fl::SetFlThreads(flags.GetInt("fl_threads", 0));
  int rounds = flags.GetInt("rounds", 100);
  int num_clients = flags.GetInt("clients", 50);
  int k = flags.GetInt("k", 5);
  std::string arch = flags.GetString("arch", "cnn");
  std::string csv_path = flags.GetString("csv", "fig5_curves.csv");
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }

  util::CsvWriter csv(csv_path);
  csv.WriteRow({"setting", "method", "round", "test_accuracy", "test_loss"});
  util::TablePrinter table({"Setting", "Method", "Best acc (%)",
                            "Final acc (%)", "Rounds to best-80%"});

  for (double beta : {0.1, 0.5, 1.0, 0.0}) {
    std::string setting = HeterogeneityLabel(beta);
    for (const std::string& method : PaperMethods()) {
      RunSpec spec;
      spec.data.dataset = "cifar10";
      spec.data.beta = beta;
      spec.data.num_clients = num_clients;
      spec.model.arch = arch;
      spec.method = method;
      spec.rounds = rounds;
      spec.clients_per_round = k;
      spec.data.train_per_class = 80;
      spec.eval_every = 2;
      spec.fedcross.alpha = 0.9;
      auto result = RunMethod(spec);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      const fl::MetricsHistory& history = result.value().history;
      for (const fl::RoundRecord& record : history.records()) {
        csv.WriteRow({setting, method, util::CsvWriter::Field(record.round),
                      util::CsvWriter::Field(record.test_accuracy),
                      util::CsvWriter::Field(record.test_loss)});
      }
      float best = history.BestAccuracy();
      table.AddRow({setting, method,
                    util::TablePrinter::Fixed(best * 100),
                    util::TablePrinter::Fixed(history.FinalAccuracy() * 100),
                    std::to_string(history.RoundsToAccuracy(0.8f * best))});
      std::printf(".");
      std::fflush(stdout);
    }
  }

  std::printf("\n=== Fig. 5: learning-curve summary (%s, CIFAR-10-like) "
              "===\n",
              arch.c_str());
  table.Print(stdout);
  std::printf("CSV written to %s (full curves)\n", csv_path.c_str());
  return 0;
}

}  // namespace
}  // namespace fedcross::bench

int main(int argc, char** argv) { return fedcross::bench::Main(argc, argv); }
