// Privacy/utility study: accuracy vs the RDP-accounted epsilon for every
// method of Table II, under DP-SGD clip-and-noise (src/privacy) and the
// secure-aggregation masking overlay. Each method runs once without DP and
// once per noise multiplier in the sweep; every cell reports the best test
// accuracy and the epsilon(delta) the accountant certifies after the run —
// the trade-off curve the DP-FL literature plots (more noise, smaller
// epsilon, lower accuracy).
//
// With --codec set to a lossy scheme the sweep measures DP composed with
// compressed uplinks (noise is added on-device *before* the codec, so
// quantisation acts on the noised update). --secure_agg=true (default) runs
// the masked-aggregation overlay in every cell, which FC_CHECKs the
// fixed-point cancellation each round — so the table doubles as an
// end-to-end masking verification across all six algorithms.
//
//   ./table_privacy [--clients 20] [--rounds 12] [--clip 1.0]
//                   [--noises 0.5,1.0,2.0] [--delta 1e-5]
//                   [--codec identity|delta|int8|topk|int8_topk] [--topk 0.1]
//                   [--secure_agg true] [--csv table_privacy.csv]
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "comm/wire.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/obs_init.h"
#include "util/table_printer.h"

namespace fedcross::bench {
namespace {

std::vector<double> ParseNoises(const std::string& csv) {
  std::vector<double> noises;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    std::string item = csv.substr(start, comma - start);
    if (!item.empty()) noises.push_back(std::stod(item));
    start = comma + 1;
  }
  return noises;
}

int Main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  fl::SetFlThreads(flags.GetInt("fl_threads", 0));
  int num_clients = flags.GetInt("clients", 20);
  int rounds = flags.GetInt("rounds", 12);
  double clip = flags.GetDouble("clip", 1.0);
  std::string noise_list = flags.GetString("noises", "0.5,1.0,2.0");
  double delta = flags.GetDouble("delta", 1e-5);
  std::string codec_name = flags.GetString("codec", "identity");
  double topk = flags.GetDouble("topk", 0.1);
  bool secure_agg = flags.GetBool("secure_agg", true);
  std::string csv_path = flags.GetString("csv", "table_privacy.csv");
  util::Status obs_status = util::InitObservability(flags);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }
  if (!obs_status.ok()) {
    std::fprintf(stderr, "%s\n", obs_status.ToString().c_str());
    return 1;
  }
  util::StatusOr<comm::Scheme> scheme = comm::ParseScheme(codec_name);
  if (!scheme.ok()) {
    std::fprintf(stderr, "%s\n", scheme.status().ToString().c_str());
    return 1;
  }
  std::vector<double> noises = ParseNoises(noise_list);
  if (noises.empty()) {
    std::fprintf(stderr, "--noises must name at least one multiplier\n");
    return 1;
  }

  std::vector<std::string> header = {"Method", "no-DP best (%)"};
  for (double noise : noises) {
    char cell[48];
    std::snprintf(cell, sizeof(cell), "s=%.2g best (%%) / eps", noise);
    header.push_back(cell);
  }
  util::TablePrinter table(header);
  util::CsvWriter csv(csv_path);
  csv.WriteRow({"method", "codec", "secure_agg", "clip", "noise", "delta",
                "epsilon", "best_accuracy", "final_accuracy", "dp_clipped",
                "mask_pairs"});

  for (const std::string& method : PaperMethods()) {
    std::vector<std::string> row = {method};
    for (int cell = 0; cell <= static_cast<int>(noises.size()); ++cell) {
      RunSpec spec;
      spec.method = method;
      spec.data.num_clients = num_clients;
      spec.rounds = rounds;
      spec.codec.scheme = scheme.value();
      spec.codec.topk_fraction = topk;
      spec.secure_agg.enabled = secure_agg;
      if (cell > 0) {
        spec.dp.clip_norm = static_cast<float>(clip);
        spec.dp.noise_multiplier =
            static_cast<float>(noises[static_cast<std::size_t>(cell - 1)]);
        spec.dp.delta = delta;
      }
      auto result = RunMethod(spec);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      const RunResult& run = result.value();
      double best = run.history.BestAccuracy() * 100.0;
      if (cell == 0) {
        row.push_back(util::TablePrinter::Fixed(best));
      } else {
        char text[48];
        std::snprintf(text, sizeof(text), "%.2f / %.2f", best,
                      run.dp_epsilon);
        row.push_back(text);
      }
      csv.WriteRow(
          {method, comm::SchemeName(spec.codec.scheme),
           secure_agg ? "1" : "0", util::CsvWriter::Field(spec.dp.clip_norm),
           util::CsvWriter::Field(spec.dp.noise_multiplier),
           util::CsvWriter::Field(delta),
           util::CsvWriter::Field(run.dp_epsilon),
           util::CsvWriter::Field(run.history.BestAccuracy()),
           util::CsvWriter::Field(run.final_accuracy),
           util::CsvWriter::Field(static_cast<double>(run.dp_clipped)),
           util::CsvWriter::Field(static_cast<double>(run.mask_pairs))});
    }
    table.AddRow(row);
    std::printf("finished: %s\n", method.c_str());
  }

  std::printf("=== Privacy/utility: best accuracy vs epsilon(delta=%g), "
              "clip=%g, codec=%s, secure_agg=%s, %d rounds ===\n",
              delta, clip, comm::SchemeName(scheme.value()),
              secure_agg ? "on" : "off", rounds);
  table.Print(stdout);
  std::printf("CSV written to %s\n", csv_path.c_str());
  util::Status flushed = util::FlushObservability();
  if (!flushed.ok()) {
    std::fprintf(stderr, "%s\n", flushed.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fedcross::bench

int main(int argc, char** argv) { return fedcross::bench::Main(argc, argv); }
