// Regenerates Fig. 3: per-client class distributions of the CIFAR-10-like
// dataset under Dirichlet heterogeneity. For 10 sampled clients we print
// the sample count of every class (the paper plots these counts as bubble
// sizes) for beta in {0.1, 0.5, 1.0} and the IID split.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "data/partition.h"
#include "data/synthetic_image.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace fedcross::bench {
namespace {

int Main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  fl::SetFlThreads(flags.GetInt("fl_threads", 0));
  int num_clients = flags.GetInt("clients", 100);
  int show_clients = flags.GetInt("show", 10);
  std::string csv_path = flags.GetString("csv", "fig3_distributions.csv");
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }

  data::SyntheticImageOptions image_options;
  image_options.num_classes = 10;
  image_options.train_per_class = 100;
  image_options.test_per_class = 1;
  image_options.height = image_options.width = 4;  // only labels matter here
  data::ImageCorpus corpus = data::MakeSyntheticImageCorpus(image_options);

  util::CsvWriter csv(csv_path);
  csv.WriteRow({"setting", "client", "class", "count"});

  for (double beta : {0.1, 0.5, 1.0, 0.0}) {
    util::Rng rng(7);
    data::Partition partition =
        beta > 0.0 ? data::DirichletPartition(*corpus.train, num_clients,
                                              beta, rng)
                   : data::IidPartition(*corpus.train, num_clients, rng);
    auto counts = data::PartitionLabelCounts(*corpus.train, partition);

    std::string label = HeterogeneityLabel(beta);
    std::printf("\n=== Fig. 3 (%s): samples per (client, class), first %d "
                "clients ===\n",
                label.c_str(), show_clients);
    std::vector<std::string> header = {"client"};
    for (int k = 0; k < 10; ++k) header.push_back("c" + std::to_string(k));
    util::TablePrinter table(header);
    for (int c = 0; c < show_clients && c < num_clients; ++c) {
      std::vector<std::string> row = {std::to_string(c)};
      for (int k = 0; k < 10; ++k) {
        row.push_back(std::to_string(counts[c][k]));
        csv.WriteRow({label, util::CsvWriter::Field(c),
                      util::CsvWriter::Field(k),
                      util::CsvWriter::Field(counts[c][k])});
      }
      table.AddRow(row);
    }
    table.Print(stdout);
  }
  std::printf("CSV written to %s\n", csv_path.c_str());
  return 0;
}

}  // namespace
}  // namespace fedcross::bench

int main(int argc, char** argv) { return fedcross::bench::Main(argc, argv); }
