// Regenerates Fig. 8: FedCross learning curves for six alpha settings with
// the in-order and lowest-similarity strategies (CNN, CIFAR-10-like,
// beta = 1.0). Expected shape: accuracy improves as alpha grows towards
// 0.99, then collapses at 0.999.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace fedcross::bench {
namespace {

int Main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  fl::SetFlThreads(flags.GetInt("fl_threads", 0));
  int rounds = flags.GetInt("rounds", 120);
  int num_clients = flags.GetInt("clients", 50);
  int k = flags.GetInt("k", 5);
  std::string csv_path = flags.GetString("csv", "fig8_alpha_curves.csv");
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }

  const std::vector<double> alphas = {0.5, 0.8, 0.9, 0.95, 0.99, 0.999};
  util::CsvWriter csv(csv_path);
  csv.WriteRow({"strategy", "alpha", "round", "test_accuracy"});
  util::TablePrinter table({"Strategy", "alpha", "Best acc (%)",
                            "Final acc (%)"});

  for (auto strategy : {core::SelectionStrategy::kInOrder,
                        core::SelectionStrategy::kLowestSimilarity}) {
    for (double alpha : alphas) {
      RunSpec spec;
      spec.data.dataset = "cifar10";
      spec.data.beta = 1.0;
      spec.data.num_clients = num_clients;
      spec.model.arch = "cnn";
      spec.method = "fedcross";
      spec.rounds = rounds;
      spec.clients_per_round = k;
      spec.data.train_per_class = 80;
      spec.eval_every = 4;
      spec.fedcross.alpha = alpha;
      spec.fedcross.strategy = strategy;
      auto result = RunMethod(spec);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      const fl::MetricsHistory& history = result.value().history;
      for (const fl::RoundRecord& record : history.records()) {
        csv.WriteRow({core::SelectionStrategyName(strategy),
                      util::CsvWriter::Field(alpha),
                      util::CsvWriter::Field(record.round),
                      util::CsvWriter::Field(record.test_accuracy)});
      }
      table.AddRow({core::SelectionStrategyName(strategy),
                    util::TablePrinter::Fixed(alpha, 3),
                    util::TablePrinter::Fixed(history.BestAccuracy() * 100),
                    util::TablePrinter::Fixed(history.FinalAccuracy() * 100)});
      std::printf(".");
      std::fflush(stdout);
    }
  }

  std::printf("\n=== Fig. 8: FedCross accuracy vs alpha (CNN, "
              "CIFAR-10-like, beta=1.0) ===\n");
  table.Print(stdout);
  std::printf("CSV written to %s (full curves)\n", csv_path.c_str());
  return 0;
}

}  // namespace
}  // namespace fedcross::bench

int main(int argc, char** argv) { return fedcross::bench::Main(argc, argv); }
