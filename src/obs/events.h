#ifndef FEDCROSS_OBS_EVENTS_H_
#define FEDCROSS_OBS_EVENTS_H_

#include <cstdint>
#include <string>

// Structured round-event export: one flat JSON record per completed FL
// round, streamed to a JSONL file. The record unifies what previously lived
// in three unrelated structs — phase wall times (this file's producer,
// FlAlgorithm::Run), CommTracker byte counts, and FaultStats tallies — so a
// single `--events_out` file reconstructs the whole round timeline.
// scripts/events_to_csv.sh renders it as the per-round phase-time table in
// EXPERIMENTS.md.

namespace fedcross::obs {

// Everything known about one completed round. Times are wall milliseconds
// on the monotonic clock; fault counts are this round's increments, not the
// run totals. `evaluated` marks rounds where the global model was scored
// (Run's eval_every cadence); accuracy/loss are only meaningful then.
struct RoundEvent {
  std::string algorithm;
  int round = 0;  // 1-based, matching MetricsHistory records

  double round_ms = 0.0;
  double dispatch_ms = 0.0;   // sampling + job building (subclass scope)
  double train_ms = 0.0;      // parallel local-training fan-out
  double screen_ms = 0.0;     // upload accounting + server-side screening
  double aggregate_ms = 0.0;  // server aggregation (incl. robust rules)
  double eval_ms = 0.0;       // test-set evaluation, when scheduled
  double checkpoint_ms = 0.0; // autosave, when scheduled

  bool evaluated = false;
  double test_accuracy = 0.0;
  double test_loss = 0.0;
  double mean_client_loss = 0.0;

  double bytes_down = 0.0;  // this round's dispatched bytes (raw payload)
  double bytes_up = 0.0;    // this round's uploaded bytes (raw payload)
  // Encoded frame bytes the comm/wire.h codec actually produced; the
  // wire/raw quotient is the round's measured compression ratio.
  double wire_bytes_down = 0.0;
  double wire_bytes_up = 0.0;
  // Frame bytes that crossed the wire but bought nothing this round:
  // dispatches to dropped/timed-out devices and uploads the server screened
  // away or abandoned (a view of the traffic above, not a third direction).
  double wire_bytes_wasted = 0.0;

  std::int64_t dropouts = 0;
  std::int64_t stragglers = 0;
  std::int64_t corrupted = 0;
  std::int64_t rejected = 0;
  // Async event engine (fl/clock.h; all zero in sync-mode runs except
  // virtual_time/model_version, which sync also advances): this round's
  // abandoned-deadline count and re-dispatches, plus the engine state at
  // round end — simulated seconds elapsed, aggregations performed, arrivals
  // still pending, and the staleness of the uploads aggregated this round.
  std::int64_t timeouts = 0;
  std::int64_t async_retries = 0;
  double virtual_time = 0.0;
  std::int64_t model_version = 0;
  std::int64_t inflight = 0;
  double staleness_mean = 0.0;
  std::int64_t staleness_max = 0;

  // Memory footprint of the virtual-population machinery: clients held
  // materialised at round end, and the process peak RSS so far (0 when the
  // platform cannot report it).
  std::int64_t resident_clients = 0;
  std::int64_t peak_rss_bytes = 0;

  // Privacy subsystem (src/privacy; all zero/-1 when DP and masking are
  // off): the RDP accountant's cumulative epsilon at dp_delta after this
  // round (-1 encodes "infinite / not yet bounded" — JSON has no inf), the
  // clipped uploads received this round, and the secure-aggregation overlay
  // counts — pair masks applied and dropout masks reconstructed from
  // revealed pair seeds.
  double dp_epsilon = -1.0;
  double dp_delta = 0.0;
  std::int64_t dp_clipped = 0;
  std::int64_t mask_pairs = 0;
  std::int64_t mask_recoveries = 0;
};

// Opens (truncating) the JSONL sink at `path`; an empty path flushes and
// closes the current sink. Returns false when the file cannot be opened
// (the sink is then disabled).
bool SetEventsPath(const std::string& path);

// True while a sink is open. One relaxed atomic load.
bool EventsEnabled();

// Appends one record as a single JSON line (mutex-serialised, flushed per
// line so a crash loses at most the in-progress record). No-op when no sink
// is open.
void EmitRoundEvent(const RoundEvent& event);

// Records emitted since the sink was last opened.
std::int64_t EventsEmitted();

}  // namespace fedcross::obs

#endif  // FEDCROSS_OBS_EVENTS_H_
