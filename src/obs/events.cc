#include "obs/events.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace fedcross::obs {
namespace {

std::mutex g_events_mutex;
std::FILE* g_events_file = nullptr;
std::int64_t g_events_emitted = 0;
std::atomic<bool> g_events_enabled{false};

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

bool SetEventsPath(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_events_mutex);
  if (g_events_file != nullptr) {
    std::fclose(g_events_file);
    g_events_file = nullptr;
  }
  g_events_enabled.store(false, std::memory_order_relaxed);
  g_events_emitted = 0;
  if (path.empty()) return true;
  g_events_file = std::fopen(path.c_str(), "w");
  if (g_events_file == nullptr) return false;
  g_events_enabled.store(true, std::memory_order_relaxed);
  return true;
}

bool EventsEnabled() {
  return g_events_enabled.load(std::memory_order_relaxed);
}

void EmitRoundEvent(const RoundEvent& e) {
  std::lock_guard<std::mutex> lock(g_events_mutex);
  if (g_events_file == nullptr) return;
  std::string algo;
  AppendEscaped(algo, e.algorithm);
  std::fprintf(
      g_events_file,
      "{\"algo\":\"%s\",\"round\":%d"
      ",\"round_ms\":%.3f,\"dispatch_ms\":%.3f,\"train_ms\":%.3f"
      ",\"screen_ms\":%.3f,\"aggregate_ms\":%.3f,\"eval_ms\":%.3f"
      ",\"checkpoint_ms\":%.3f,\"evaluated\":%s"
      ",\"test_accuracy\":%.9g,\"test_loss\":%.9g,\"mean_client_loss\":%.9g"
      ",\"bytes_down\":%.0f,\"bytes_up\":%.0f"
      ",\"wire_bytes_down\":%.0f,\"wire_bytes_up\":%.0f"
      ",\"wire_bytes_wasted\":%.0f"
      ",\"dropouts\":%lld,\"stragglers\":%lld,\"corrupted\":%lld"
      ",\"rejected\":%lld,\"timeouts\":%lld,\"async_retries\":%lld"
      ",\"virtual_time\":%.9g,\"model_version\":%lld,\"inflight\":%lld"
      ",\"staleness_mean\":%.9g,\"staleness_max\":%lld"
      ",\"resident_clients\":%lld,\"peak_rss_bytes\":%lld"
      ",\"dp_epsilon\":%.17g,\"dp_delta\":%.9g,\"dp_clipped\":%lld"
      ",\"mask_pairs\":%lld,\"mask_recoveries\":%lld}\n",
      algo.c_str(), e.round, e.round_ms, e.dispatch_ms, e.train_ms,
      e.screen_ms, e.aggregate_ms, e.eval_ms, e.checkpoint_ms,
      e.evaluated ? "true" : "false", e.test_accuracy, e.test_loss,
      e.mean_client_loss, e.bytes_down, e.bytes_up, e.wire_bytes_down,
      e.wire_bytes_up, e.wire_bytes_wasted,
      static_cast<long long>(e.dropouts),
      static_cast<long long>(e.stragglers),
      static_cast<long long>(e.corrupted),
      static_cast<long long>(e.rejected),
      static_cast<long long>(e.timeouts),
      static_cast<long long>(e.async_retries),
      e.virtual_time,
      static_cast<long long>(e.model_version),
      static_cast<long long>(e.inflight),
      e.staleness_mean,
      static_cast<long long>(e.staleness_max),
      static_cast<long long>(e.resident_clients),
      static_cast<long long>(e.peak_rss_bytes),
      e.dp_epsilon, e.dp_delta,
      static_cast<long long>(e.dp_clipped),
      static_cast<long long>(e.mask_pairs),
      static_cast<long long>(e.mask_recoveries));
  std::fflush(g_events_file);
  ++g_events_emitted;
}

std::int64_t EventsEmitted() {
  std::lock_guard<std::mutex> lock(g_events_mutex);
  return g_events_emitted;
}

}  // namespace fedcross::obs
