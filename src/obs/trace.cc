#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace fedcross::obs {
namespace {

std::atomic<bool> g_tracing_enabled{false};

// Minimal escaping for span names (instrumentation passes literals, but a
// stray quote must not corrupt the JSON).
void WriteEscaped(std::FILE* file, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') std::fputc('\\', file);
    std::fputc(*s, file);
  }
}

}  // namespace

void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

std::int64_t TraceNowMicros() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::ThreadRing* TraceRecorder::RingForThisThread() {
  thread_local ThreadRing* ring = nullptr;
  if (ring == nullptr) {
    auto owned = std::make_unique<ThreadRing>();
    owned->slots.resize(kRingCapacity);
    ring = owned.get();
    std::lock_guard<std::mutex> lock(mutex_);
    owned->tid = static_cast<std::uint32_t>(rings_.size());
    rings_.push_back(std::move(owned));
  }
  return ring;
}

void TraceRecorder::RecordComplete(const char* name, std::int64_t ts_us,
                                   std::int64_t dur_us, std::int64_t arg,
                                   bool has_arg) {
  ThreadRing* ring = RingForThisThread();
  std::uint64_t n = ring->count.load(std::memory_order_relaxed);
  TraceEvent& slot = ring->slots[n % kRingCapacity];
  slot.name = name;
  slot.ts_us = ts_us;
  slot.dur_us = dur_us;
  slot.arg = arg;
  slot.has_arg = has_arg;
  // Release: an exporter that acquires `count` sees the completed slot.
  ring->count.store(n + 1, std::memory_order_release);
}

bool TraceRecorder::WriteJson(const std::string& path) const {
  // Gather (event, tid) pairs under the lock, then sort by timestamp so the
  // file replays in wall order regardless of which ring held the span.
  struct Row {
    TraceEvent event;
    std::uint32_t tid;
  };
  std::vector<Row> rows;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::unique_ptr<ThreadRing>& ring : rings_) {
      std::uint64_t n = ring->count.load(std::memory_order_acquire);
      std::uint64_t keep = std::min<std::uint64_t>(n, kRingCapacity);
      for (std::uint64_t i = n - keep; i < n; ++i) {
        rows.push_back({ring->slots[i % kRingCapacity], ring->tid});
      }
    }
  }
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.event.ts_us < b.event.ts_us;
  });

  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", file);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    if (i > 0) std::fputc(',', file);
    std::fputs("\n{\"name\":\"", file);
    WriteEscaped(file, row.event.name);
    std::fprintf(file, "\",\"cat\":\"fedcross\",\"ph\":\"X\",\"ts\":%lld,"
                       "\"dur\":%lld,\"pid\":0,\"tid\":%u",
                 static_cast<long long>(row.event.ts_us),
                 static_cast<long long>(row.event.dur_us), row.tid);
    if (row.event.has_arg) {
      std::fprintf(file, ",\"args\":{\"v\":%lld}",
                   static_cast<long long>(row.event.arg));
    }
    std::fputc('}', file);
  }
  std::fputs("\n]}\n", file);
  bool ok = std::fflush(file) == 0;
  return std::fclose(file) == 0 && ok;
}

std::size_t TraceRecorder::EventCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const std::unique_ptr<ThreadRing>& ring : rings_) {
    total += static_cast<std::size_t>(std::min<std::uint64_t>(
        ring->count.load(std::memory_order_acquire), kRingCapacity));
  }
  return total;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<ThreadRing>& ring : rings_) {
    ring->count.store(0, std::memory_order_release);
  }
}

}  // namespace fedcross::obs
