#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace fedcross::obs {
namespace {

std::atomic<bool> g_metrics_enabled{false};

[[noreturn]] void Die(const char* what, const std::string& name) {
  std::fprintf(stderr, "obs::MetricsRegistry: %s: %s\n", what, name.c_str());
  std::abort();
}

}  // namespace

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

int ThreadShardIndex() {
  static std::atomic<unsigned> next{0};
  thread_local int shard = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards);
  return shard;
}

std::int64_t Counter::Value() const {
  std::int64_t total = 0;
  for (const internal::CountShard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (internal::CountShard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = DefaultMsBuckets();
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    Die("histogram bounds must be ascending", name_);
  }
  counts_ = std::vector<internal::CountShard>((bounds_.size() + 1) *
                                              kMetricShards);
}

void Histogram::Observe(double value) {
  if (!MetricsEnabled()) return;
  // First bucket whose upper edge admits the value; the extra slot past the
  // last edge is the overflow bucket.
  std::size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  int shard = ThreadShardIndex();
  counts_[bucket * kMetricShards + shard].value.fetch_add(
      1, std::memory_order_relaxed);
  sums_[shard].value.fetch_add(value, std::memory_order_relaxed);
}

std::int64_t Histogram::TotalCount() const {
  std::int64_t total = 0;
  for (const internal::CountShard& shard : counts_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  // Fixed shard order: the float merge is reproducible run-over-run.
  double total = 0.0;
  for (const internal::SumShard& shard : sums_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::int64_t> Histogram::BucketCounts() const {
  std::vector<std::int64_t> merged(bounds_.size() + 1, 0);
  for (std::size_t bucket = 0; bucket < merged.size(); ++bucket) {
    for (int shard = 0; shard < kMetricShards; ++shard) {
      merged[bucket] += counts_[bucket * kMetricShards + shard].value.load(
          std::memory_order_relaxed);
    }
  }
  return merged;
}

void Histogram::Reset() {
  for (internal::CountShard& shard : counts_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
  for (internal::SumShard& shard : sums_) {
    shard.value.store(0.0, std::memory_order_relaxed);
  }
}

const std::vector<double>& DefaultMsBuckets() {
  static const std::vector<double> buckets = {
      0.1, 0.25, 0.5, 1.0,    2.5,    5.0,    10.0,   25.0,
      50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0};
  return buckets;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = metrics_[name];
  if (entry.gauge != nullptr || entry.histogram != nullptr) {
    Die("metric already registered with a different kind", name);
  }
  if (entry.counter == nullptr) entry.counter.reset(new Counter(name));
  return *entry.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = metrics_[name];
  if (entry.counter != nullptr || entry.histogram != nullptr) {
    Die("metric already registered with a different kind", name);
  }
  if (entry.gauge == nullptr) entry.gauge.reset(new Gauge(name));
  return *entry.gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = metrics_[name];
  if (entry.counter != nullptr || entry.gauge != nullptr) {
    Die("metric already registered with a different kind", name);
  }
  if (entry.histogram == nullptr) {
    entry.histogram.reset(new Histogram(name, std::move(bounds)));
  }
  return *entry.histogram;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> snapshots;
  snapshots.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {  // map order == sorted names
    MetricSnapshot snapshot;
    snapshot.name = name;
    if (entry.counter != nullptr) {
      snapshot.kind = MetricSnapshot::Kind::kCounter;
      snapshot.count = entry.counter->Value();
    } else if (entry.gauge != nullptr) {
      snapshot.kind = MetricSnapshot::Kind::kGauge;
      snapshot.value = entry.gauge->Value();
    } else if (entry.histogram != nullptr) {
      snapshot.kind = MetricSnapshot::Kind::kHistogram;
      snapshot.count = entry.histogram->TotalCount();
      snapshot.value = entry.histogram->Sum();
      snapshot.bounds = entry.histogram->bounds();
      snapshot.bucket_counts = entry.histogram->BucketCounts();
    }
    snapshots.push_back(std::move(snapshot));
  }
  return snapshots;
}

bool MetricsRegistry::WriteJson(const std::string& path) const {
  std::vector<MetricSnapshot> snapshots = Snapshot();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::fputs("{\"metrics\":[", file);
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    const MetricSnapshot& m = snapshots[i];
    if (i > 0) std::fputc(',', file);
    std::fputs("\n", file);
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        std::fprintf(file, "{\"name\":\"%s\",\"kind\":\"counter\",\"value\":%lld}",
                     m.name.c_str(), static_cast<long long>(m.count));
        break;
      case MetricSnapshot::Kind::kGauge:
        std::fprintf(file, "{\"name\":\"%s\",\"kind\":\"gauge\",\"value\":%.10g}",
                     m.name.c_str(), m.value);
        break;
      case MetricSnapshot::Kind::kHistogram: {
        std::fprintf(
            file,
            "{\"name\":\"%s\",\"kind\":\"histogram\",\"count\":%lld,"
            "\"sum\":%.10g,\"buckets\":[",
            m.name.c_str(), static_cast<long long>(m.count), m.value);
        for (std::size_t b = 0; b < m.bucket_counts.size(); ++b) {
          if (b > 0) std::fputc(',', file);
          if (b < m.bounds.size()) {
            std::fprintf(file, "{\"le\":%.10g,\"count\":%lld}", m.bounds[b],
                         static_cast<long long>(m.bucket_counts[b]));
          } else {
            std::fprintf(file, "{\"le\":\"inf\",\"count\":%lld}",
                         static_cast<long long>(m.bucket_counts[b]));
          }
        }
        std::fputs("]}", file);
        break;
      }
    }
  }
  std::fputs("\n]}\n", file);
  bool ok = std::fflush(file) == 0;
  return std::fclose(file) == 0 && ok;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : metrics_) {
    if (entry.counter != nullptr) entry.counter->Reset();
    if (entry.gauge != nullptr) entry.gauge->Reset();
    if (entry.histogram != nullptr) entry.histogram->Reset();
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.size();
}

}  // namespace fedcross::obs
