#ifndef FEDCROSS_OBS_TRACE_H_
#define FEDCROSS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

// Scoped tracing over a monotonic clock. Spans are recorded into per-thread
// ring buffers — a fixed-size slot write plus one release store, no lock and
// no allocation on the measured path — and exported as Chrome trace-event
// JSON (loadable in Perfetto / chrome://tracing).
//
// Determinism contract: recording reads the clock and writes the ring; it
// never draws randomness, allocates, or synchronises with other recording
// threads, so enabling tracing cannot change training results. Export is
// meant for quiescent moments (end of run / between rounds); spans still in
// flight on other threads are simply not included.

namespace fedcross::obs {

// Master switch. Disabled spans compile to one relaxed atomic load.
void SetTracingEnabled(bool enabled);
bool TracingEnabled();

// Microseconds on the monotonic clock, measured from a process-wide epoch
// captured at first use. Shared by tracing and the round-phase timers.
std::int64_t TraceNowMicros();

// One completed span. `name` must be a string with static storage duration
// (instrumentation sites pass literals) — the ring stores the pointer.
struct TraceEvent {
  const char* name = nullptr;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::int64_t arg = 0;
  bool has_arg = false;
};

class TraceRecorder {
 public:
  // Ring capacity per thread; the newest spans win when a thread overflows.
  static constexpr std::size_t kRingCapacity = 8192;

  static TraceRecorder& Global();

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Records one completed span on the calling thread's ring buffer.
  void RecordComplete(const char* name, std::int64_t ts_us,
                      std::int64_t dur_us, std::int64_t arg = 0,
                      bool has_arg = false);

  // Writes every retained span, sorted by timestamp, in Chrome trace-event
  // format: {"displayTimeUnit":"ms","traceEvents":[...]}. False on I/O
  // failure.
  bool WriteJson(const std::string& path) const;

  // Spans currently retained across all rings (capped at kRingCapacity per
  // thread).
  std::size_t EventCount() const;

  // Drops all retained spans; thread rings stay registered.
  void Clear();

 private:
  struct ThreadRing {
    std::vector<TraceEvent> slots;       // kRingCapacity, allocated once
    std::atomic<std::uint64_t> count{0}; // total pushed; owner-thread writes
    std::uint32_t tid = 0;               // sequential registration id
  };

  ThreadRing* RingForThisThread();

  mutable std::mutex mutex_;  // guards ring registration and export
  std::vector<std::unique_ptr<ThreadRing>> rings_;
};

// RAII span: captures the clock on construction, records on destruction.
// A default-constructed (or disabled-at-construction) span records nothing.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  explicit ScopedSpan(const char* name) {
    if (TracingEnabled()) {
      name_ = name;
      start_us_ = TraceNowMicros();
    }
  }
  ScopedSpan(const char* name, std::int64_t arg) : ScopedSpan(name) {
    arg_ = arg;
    has_arg_ = true;
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      TraceRecorder::Global().RecordComplete(
          name_, start_us_, TraceNowMicros() - start_us_, arg_, has_arg_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;  // null: span disabled, destructor is a no-op
  std::int64_t start_us_ = 0;
  std::int64_t arg_ = 0;
  bool has_arg_ = false;
};

}  // namespace fedcross::obs

#define FC_TRACE_CONCAT_IMPL(a, b) a##b
#define FC_TRACE_CONCAT(a, b) FC_TRACE_CONCAT_IMPL(a, b)

// Traces the enclosing scope under `name` (a string literal).
#define FC_TRACE_SPAN(name) \
  ::fedcross::obs::ScopedSpan FC_TRACE_CONCAT(fc_trace_span_, __COUNTER__)(name)

// Same, attaching one integer argument (shown as args.v in the viewer).
#define FC_TRACE_SPAN_ARG(name, arg)                                    \
  ::fedcross::obs::ScopedSpan FC_TRACE_CONCAT(fc_trace_span_,           \
                                              __COUNTER__)(name, (arg))

#endif  // FEDCROSS_OBS_TRACE_H_
