#ifndef FEDCROSS_OBS_METRICS_H_
#define FEDCROSS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms, sharded per thread so the hot path is one relaxed atomic add
// with no lock and no allocation. Snapshots merge the shards in a fixed
// order and list metrics in stable (sorted-name) order, so deterministic
// quantities — event counts, byte totals, fault tallies — are identical for
// every thread count and schedule.
//
// The whole subsystem is runtime-toggleable: with metrics disabled (the
// default) every mutator is a no-op behind a single relaxed atomic load, so
// instrumented code never perturbs an un-observed run. This library depends
// on nothing else in the repository; util and fl layer on top of it.

namespace fedcross::obs {

// Number of per-thread shards per metric. Threads hash onto shards by a
// process-wide sequential thread index, so contention is rare at the pool
// sizes this simulator uses; collisions only cost an extra cache bounce,
// never correctness.
inline constexpr int kMetricShards = 16;

// Master switch. Disabled metrics perform zero registry mutations.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

// Stable per-thread shard index in [0, kMetricShards).
int ThreadShardIndex();

namespace internal {

// One cache line per shard so concurrent writers never false-share.
struct alignas(64) CountShard {
  std::atomic<std::int64_t> value{0};
};

struct alignas(64) SumShard {
  std::atomic<double> value{0.0};
};

}  // namespace internal

// Monotonic event counter.
class Counter {
 public:
  void Add(std::int64_t n = 1) {
    if (!MetricsEnabled()) return;
    shards_[ThreadShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  // Merged value (sum over shards; integer, so order-independent).
  std::int64_t Value() const;

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void Reset();

  std::string name_;
  std::array<internal::CountShard, kMetricShards> shards_;
};

// Last-write-wins instantaneous value (set from one thread at a time, e.g.
// at round end on the driver thread).
class Gauge {
 public:
  void Set(double value) {
    if (!MetricsEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: bucket i counts observations <= bounds[i], plus
// one overflow bucket. Bucket counts are integers and merge order-free;
// the sum is a double merged in fixed shard order.
class Histogram {
 public:
  void Observe(double value);

  std::int64_t TotalCount() const;
  double Sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  // Merged per-bucket counts, size bounds().size() + 1 (last = overflow).
  std::vector<std::int64_t> BucketCounts() const;

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds);
  void Reset();

  std::string name_;
  std::vector<double> bounds_;  // ascending upper edges
  // Bucket-major: counts_[bucket * kMetricShards + shard].
  std::vector<internal::CountShard> counts_;
  std::array<internal::SumShard, kMetricShards> sums_;
};

// Default duration buckets (milliseconds), 100us .. 10s.
const std::vector<double>& DefaultMsBuckets();

// One metric's merged state, as produced by MetricsRegistry::Snapshot.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Kind kind = Kind::kCounter;
  std::int64_t count = 0;  // counter value / histogram total count
  double value = 0.0;      // gauge value / histogram sum
  std::vector<double> bounds;              // histograms only
  std::vector<std::int64_t> bucket_counts; // histograms only (size bounds+1)
};

class MetricsRegistry {
 public:
  // The process-wide registry every instrumentation site uses.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registration is idempotent: the first call creates the metric, later
  // calls return the same object (stable address for the process lifetime,
  // surviving Reset). Registering one name as two different kinds aborts.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  // Deterministic snapshot: metrics sorted by name, shards merged in fixed
  // order. Thread-count-invariant for deterministic quantities.
  std::vector<MetricSnapshot> Snapshot() const;

  // Writes the snapshot as {"metrics":[...]} JSON. False on I/O failure.
  bool WriteJson(const std::string& path) const;

  // Zeroes every metric's value; registrations (and handles) survive.
  void Reset();

  std::size_t size() const;

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> metrics_;  // sorted => stable snapshot order
};

}  // namespace fedcross::obs

#endif  // FEDCROSS_OBS_METRICS_H_
