#ifndef FEDCROSS_FL_CLUSAMP_H_
#define FEDCROSS_FL_CLUSAMP_H_

#include <vector>

#include "fl/algorithm.h"
#include "fl/state_store.h"

namespace fedcross::fl {

// Clustered sampling (Fraboni et al., 2021), model-similarity variant —
// the configuration used by the paper's experiments (Section IV-A2).
//
// The server remembers each client's last model update direction. Every
// round it groups the N clients into K clusters by cosine similarity of
// those updates (k-means, cosine distance; clients with no history are
// spread round-robin), then samples one client per cluster. This lowers
// the variance of the aggregated model versus uniform sampling because
// similar clients are not double-counted. Aggregation is FedAvg-weighted.
class CluSamp : public FlAlgorithm {
 public:
  CluSamp(AlgorithmConfig config, data::FederatedDataset data,
          models::ModelFactory factory, int kmeans_iters = 5);

  void RunRound(int round) override;
  FlatParams GlobalParams() override { return global_; }

  // Exposed for tests: current cluster assignment (size N, values [0, K)).
  const std::vector<int>& cluster_assignment() const { return assignment_; }

 protected:
  // Checkpoint state: global model, cluster assignment, update history.
  void SaveExtraState(StateWriter& writer) override;
  util::Status LoadExtraState(StateReader& reader) override;

 private:
  // Re-clusters clients from their stored update directions.
  void UpdateClusters();

  int kmeans_iters_;
  FlatParams global_;
  // Last update direction per participating client, keyed by id. Only
  // clients that ever uploaded hold an entry, so the history scales with
  // the participating set rather than the registered population.
  ClientStateStore client_updates_;
  FlatParams update_scratch_;  // checkpoint staging for spilled entries
  std::vector<int> assignment_;  // cluster per client id (values [0, K))
};

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_CLUSAMP_H_
