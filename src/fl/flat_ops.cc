#include "fl/flat_ops.h"

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace fedcross::fl::flat_ops {

void LinearCombine(float a, const FlatParams& x, float b, const FlatParams& y,
                   FlatParams& dst) {
  FC_CHECK_EQ(x.size(), y.size());
  dst.resize(x.size());
  const float* __restrict__ xp = x.data();
  const float* __restrict__ yp = y.data();
  float* __restrict__ dp = dst.data();
  std::size_t size = x.size();
  for (std::size_t i = 0; i < size; ++i) dp[i] = a * xp[i] + b * yp[i];
}

void AddInto(FlatParams& dst, const FlatParams& src) {
  FC_CHECK_EQ(dst.size(), src.size());
  const float* __restrict__ sp = src.data();
  float* __restrict__ dp = dst.data();
  std::size_t size = dst.size();
  for (std::size_t i = 0; i < size; ++i) dp[i] += sp[i];
}

void Axpy(FlatParams& dst, float factor, const FlatParams& src) {
  FC_CHECK_EQ(dst.size(), src.size());
  AxpyRange(dst.data(), factor, src.data(), dst.size());
}

void AxpyRange(float* dst, float factor, const float* src, std::size_t n) {
  const float* __restrict__ sp = src;
  float* __restrict__ dp = dst;
  for (std::size_t i = 0; i < n; ++i) dp[i] += factor * sp[i];
}

void Scale(FlatParams& dst, float factor) {
  float* __restrict__ dp = dst.data();
  std::size_t size = dst.size();
  for (std::size_t i = 0; i < size; ++i) dp[i] *= factor;
}

void Subtract(const FlatParams& src, const FlatParams& ref, FlatParams& dst) {
  FC_CHECK_EQ(src.size(), ref.size());
  dst.resize(src.size());
  const float* __restrict__ sp = src.data();
  const float* __restrict__ rp = ref.data();
  float* __restrict__ dp = dst.data();
  std::size_t size = src.size();
  for (std::size_t i = 0; i < size; ++i) dp[i] = sp[i] - rp[i];
}

FlatParams Mean(const std::vector<FlatParams>& models) {
  FC_CHECK(!models.empty());
  FlatParams mean(models[0].size(), 0.0f);
  for (const FlatParams& model : models) AddInto(mean, model);
  Scale(mean, 1.0f / static_cast<float>(models.size()));
  return mean;
}

double CosineSimilarity(const FlatParams& x, const FlatParams& y) {
  // The fused multi-lane pass lives with the other raw-buffer numeric
  // kernels in tensor_ops; this is the fl-layer entry point.
  return ops::CosineSimilarity(x, y);
}

}  // namespace fedcross::fl::flat_ops
