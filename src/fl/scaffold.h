#ifndef FEDCROSS_FL_SCAFFOLD_H_
#define FEDCROSS_FL_SCAFFOLD_H_

#include "fl/algorithm.h"
#include "fl/state_store.h"

namespace fedcross::fl {

// SCAFFOLD (Karimireddy et al., 2020): stochastic controlled averaging.
// The server maintains a control variate c and each client a variate c_i;
// local SGD steps are corrected by (c - c_i), cancelling client drift. The
// client variate update uses the paper's Option II:
//   c_i+ = c_i - c + (x - y_i) / (steps * lr).
// Communication doubles relative to FedAvg (model + variate each way),
// which the communication benchmark (Table I) reproduces.
class Scaffold : public FlAlgorithm {
 public:
  Scaffold(AlgorithmConfig config, data::FederatedDataset data,
           models::ModelFactory factory);

  void RunRound(int round) override;
  FlatParams GlobalParams() override { return global_; }

  const FlatParams& server_variate() const { return server_c_; }

 protected:
  // Checkpoint state: global model plus the server and client variates.
  void SaveExtraState(StateWriter& writer) override;
  util::Status LoadExtraState(StateReader& reader) override;

 private:
  FlatParams global_;
  FlatParams server_c_;
  // Per-client variates, keyed by id and lazily created on first selection.
  // Cold entries spill with the rest of the client state, so memory tracks
  // the participating set, not the registered population.
  ClientStateStore client_c_;
  FlatParams c_scratch_;  // checkpoint staging for spilled variates
};

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_SCAFFOLD_H_
