#ifndef FEDCROSS_FL_PRIVACY_H_
#define FEDCROSS_FL_PRIVACY_H_

// Compatibility shim: the DP mechanism moved into the dedicated privacy
// subsystem (src/privacy — clip-and-noise, the subsampled-Gaussian RDP
// accountant, and secure-aggregation masking). Existing fl:: callers keep
// compiling; new code should include privacy/dp.h (and friends) directly.

#include "privacy/dp.h"

namespace fedcross::fl {

using privacy::DpOptions;
using privacy::GaussianMechanismEpsilon;
using privacy::SanitizeUpdate;
using privacy::SanitizeUpdateInPlace;
using privacy::UpdateNorm;

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_PRIVACY_H_
