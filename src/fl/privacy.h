#ifndef FEDCROSS_FL_PRIVACY_H_
#define FEDCROSS_FL_PRIVACY_H_

#include "fl/types.h"
#include "util/rng.h"

namespace fedcross::fl {

// Differential-privacy update sanitisation (paper Section IV-F1 notes that
// FedCross composes with the standard DP mechanisms used for FedAvg, since
// its dispatch/upload pattern is identical). The client-side mechanism is
// the classic clip-and-noise on the model *update*:
//
//   delta  = uploaded - reference            (what local training changed)
//   delta' = delta * min(1, clip / ||delta||)
//   upload = reference + delta' + N(0, (noise_multiplier * clip)^2 I)
//
// clip_norm <= 0 disables the mechanism entirely.
struct DpOptions {
  float clip_norm = 0.0f;
  float noise_multiplier = 0.0f;
};

// Returns the sanitised upload. reference and uploaded must be equal size.
FlatParams SanitizeUpdate(const FlatParams& reference,
                          const FlatParams& uploaded, const DpOptions& options,
                          util::Rng& rng);

// Classic Gaussian-mechanism bound: per-round epsilon for a given noise
// multiplier at privacy slack delta (sigma = sqrt(2 ln(1.25/delta)) / eps).
// A loose per-round figure for documentation, not a tight accountant.
double GaussianMechanismEpsilon(double noise_multiplier, double delta);

// L2 norm of (uploaded - reference); exposed for tests and diagnostics.
double UpdateNorm(const FlatParams& reference, const FlatParams& uploaded);

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_PRIVACY_H_
