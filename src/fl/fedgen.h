#ifndef FEDCROSS_FL_FEDGEN_H_
#define FEDCROSS_FL_FEDGEN_H_

#include <memory>
#include <vector>

#include "fl/algorithm.h"
#include "nn/sequential.h"

namespace fedcross::fl {

// FedGen (Zhu et al., 2021): data-free knowledge distillation with a
// server-side generator. After each aggregation the server trains a small
// conditional generator G(z, y) so that the current global model classifies
// G's outputs as their conditioning label (gradients flow through the
// global model into the generator via input backprop). The generator's
// synthetic examples are dispatched with the model and mixed into the next
// round's local training, transferring cross-client knowledge.
//
// Reproduction note (DESIGN.md §1): our generator emits *input-space*
// samples. For image models this is full data-free KD; for token-sequence
// models the embedding layer blocks input gradients, so the generator
// degenerates to label-conditioned random sequences (weak augmentation).
class FedGen : public FlAlgorithm {
 public:
  struct Options {
    int latent_dim = 8;
    int generator_hidden = 12;
    int generator_steps_per_round = 20;
    int generator_batch = 32;
    float generator_lr = 0.01f;
    int synthetic_samples = 128;   // size of the dispatched proxy set
    float augment_weight = 0.5f;   // KD loss weight on clients
    int augment_batches_per_epoch = 1;
  };

  FedGen(AlgorithmConfig config, data::FederatedDataset data,
         models::ModelFactory factory, Options options);
  FedGen(AlgorithmConfig config, data::FederatedDataset data,
         models::ModelFactory factory);

  void RunRound(int round) override;
  FlatParams GlobalParams() override { return global_; }

  // Size of the generator payload in floats (communication accounting).
  std::int64_t generator_size() const { return generator_size_; }

 protected:
  // Checkpoint state: global model, label weights, generator params, and
  // the current synthetic proxy set (it cannot be regenerated at load time
  // without disturbing the run RNG stream).
  void SaveExtraState(StateWriter& writer) override;
  util::Status LoadExtraState(StateReader& reader) override;

 private:
  void TrainGenerator();
  void RegenerateSyntheticSet();
  // Fills one generator batch input [batch, latent+classes] plus its
  // labels, reusing the caller's buffers.
  void SampleGeneratorInput(int batch, Tensor& input, std::vector<int>& labels);

  Options options_;
  FlatParams global_;
  nn::Sequential generator_;
  std::int64_t generator_size_ = 0;
  Tensor::Shape example_shape_;
  std::int64_t example_numel_ = 0;
  int num_classes_ = 0;
  bool discrete_inputs_ = false;  // token datasets: no input gradients
  std::vector<double> label_weights_;  // aggregated client label counts
  std::shared_ptr<data::InMemoryDataset> synthetic_;
};

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_FEDGEN_H_
