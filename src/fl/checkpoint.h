#ifndef FEDCROSS_FL_CHECKPOINT_H_
#define FEDCROSS_FL_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fl/types.h"
#include "util/status.h"

namespace fedcross::fl {

// Binary serialisation of full FL training state (crash-safe checkpoints).
//
// A training checkpoint stores everything a killed run needs to resume
// bit-identically: the config fingerprint, the completed-round counter, the
// run RNG state, communication totals, fault statistics, the metrics
// history, and each algorithm's model state (global params, SCAFFOLD
// variates, FedCross middleware, ...). FlAlgorithm::SaveCheckpoint /
// LoadCheckpoint drive these primitives; algorithm subclasses append their
// state through the SaveExtraState / LoadExtraState hooks.
//
// The file layout is magic ("FCRS") + format version + body. Writes go to
// `path + ".tmp"` and are renamed into place so a crash mid-write can never
// clobber the previous good checkpoint. All reads are bounds-checked and
// return util::Status on truncated or malformed input.
//
// Format versions: v5 (current) adds the privacy state — the RDP
// accountant's per-order totals and round counter (so a resumed DP run's
// epsilon is bit-identical to the uninterrupted run's), the privacy
// counters (clipped uploads, mask pairs, mask recoveries), and a
// dp-clipped flag on each in-flight dispatch record; v4 adds the async
// event-engine state — the
// virtual clock, model-version and dispatch counters, wasted-comm totals,
// the timeout/retry fault tallies, and the full in-flight dispatch table
// (so a buffered-async run resumes mid-buffer bit-identically); v3 stores
// per-client cold state — the codec error-feedback residuals, SCAFFOLD
// variates, CluSamp update history — as sparse tables (count, then id +
// payload per touched client) keyed by 64-bit client ids, so a
// million-client population costs bytes only for the clients that ever
// trained; v2 stored those tables densely over all N clients (and 32-bit
// cluster ids); v1 stored two f64 communication totals and no residuals.
// Readers accept all five — StateReader::version() lets load paths branch
// on what the file actually contains (pre-v4 files restore with a zeroed
// engine state; pre-v5 files with an empty privacy ledger). Writers normally stamp kCheckpointVersion; a StateWriter
// constructed with an older version lets FlAlgorithm::SaveCheckpoint
// produce downgraded files (compat tests, handing a checkpoint to an older
// build) — downgrading a mid-buffer async run loses its in-flight table.

// The version WriteStateFile stamps on new checkpoints.
inline constexpr std::uint32_t kCheckpointVersion = 5;

// Appends little-endian POD values to a byte buffer.
class StateWriter {
 public:
  StateWriter() = default;
  explicit StateWriter(std::uint32_t version) : version_(version) {}

  // The format version this checkpoint is being written as; save paths
  // branch on it the same way load paths branch on StateReader::version().
  std::uint32_t version() const { return version_; }

  void WriteU32(std::uint32_t value);
  void WriteU64(std::uint64_t value);
  void WriteI64(std::int64_t value);
  void WriteF32(float value);
  void WriteF64(double value);
  void WriteBool(bool value);
  // Length-prefixed vectors (u64 count + raw elements).
  void WriteFloats(const FlatParams& values);
  void WriteInts(const std::vector<int>& values);
  void WriteInts64(const std::vector<std::int64_t>& values);
  void WriteDoubles(const std::vector<double>& values);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint32_t version_ = kCheckpointVersion;
};

// Bounds-checked reader over a checkpoint body. Every read returns
// InvalidArgument("truncated checkpoint ...") when the buffer runs out.
class StateReader {
 public:
  StateReader() = default;
  explicit StateReader(std::vector<std::uint8_t> bytes,
                       std::uint32_t version = kCheckpointVersion)
      : bytes_(std::move(bytes)), version_(version) {}

  // The format version of the file this body came from (see the header
  // comment); ReadStateFile fills it in.
  std::uint32_t version() const { return version_; }

  util::Status ReadU32(std::uint32_t& value);
  util::Status ReadU64(std::uint64_t& value);
  util::Status ReadI64(std::int64_t& value);
  util::Status ReadF32(float& value);
  util::Status ReadF64(double& value);
  util::Status ReadBool(bool& value);
  util::Status ReadFloats(FlatParams& values);
  util::Status ReadInts(std::vector<int>& values);
  util::Status ReadInts64(std::vector<std::int64_t>& values);
  util::Status ReadDoubles(std::vector<double>& values);

  bool AtEnd() const { return offset_ == bytes_.size(); }

 private:
  util::Status ReadRaw(void* dst, std::size_t count);

  std::vector<std::uint8_t> bytes_;
  std::size_t offset_ = 0;
  std::uint32_t version_ = kCheckpointVersion;
};

// Atomically writes header + body to `path` (tmp file + rename). The header
// carries the writer's version.
util::Status WriteStateFile(const std::string& path, const StateWriter& writer);

// Reads `path`, validates magic and version, and returns a reader
// positioned at the body.
util::StatusOr<StateReader> ReadStateFile(const std::string& path);

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_CHECKPOINT_H_
