#include "fl/plan_runner.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "data/dataloader.h"
#include "nn/plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/sgd.h"
#include "util/check.h"

namespace fedcross::fl {
namespace {

struct PlanRunnerMetrics {
  obs::Counter& steps =
      obs::MetricsRegistry::Global().GetCounter("fl.plan.steps");
  obs::Counter& fused =
      obs::MetricsRegistry::Global().GetCounter("fl.plan.fused_steps");
  obs::Counter& fallbacks =
      obs::MetricsRegistry::Global().GetCounter("fl.plan.fallback_jobs");
};

PlanRunnerMetrics& Metrics() {
  static PlanRunnerMetrics* metrics = new PlanRunnerMetrics();
  return *metrics;
}

// One job's training progress. The state machine mirrors FlClient::Train's
// layer-path control flow exactly — same loader construction order, same
// Reset points, same augmentation retry rule — so the shared data_rng is
// consumed identically. Heap-allocated because DataLoader keeps a reference
// to data_rng: the address must survive vector growth.
struct Slot {
  enum class Phase { kMain, kAugment, kDone };

  const PlanJob* job = nullptr;
  ModelPool::Lease lease;
  util::Rng data_rng{0};
  std::optional<data::DataLoader> loader;
  std::optional<data::DataLoader> augment_loader;
  Phase phase = Phase::kMain;
  int epoch = 0;
  int augment_batch = 0;   // attempts made in the current augment phase
  bool batch_is_augment = false;
  double total_loss = 0.0;
  int steps = 0;
};

// Advances `slot` to its next mini-batch (written into the replica's
// features/labels buffers), or flips it to kDone. Returns true when a batch
// is ready. Follows client.cc's epoch loop step for step: the main loader
// resets after every epoch's sweep, then the augment loader contributes
// augment_batches_per_epoch batches (resetting once when exhausted; an
// empty reload ends the phase early, like the layer path's `break`).
bool NextSlotBatch(Slot& slot, Tensor& features, std::vector<int>& labels) {
  const ClientTrainSpec& spec = *slot.job->spec;
  for (;;) {
    if (slot.epoch >= spec.options.local_epochs) {
      slot.phase = Slot::Phase::kDone;
      return false;
    }
    if (slot.phase == Slot::Phase::kMain) {
      if (slot.loader->NextBatch(features, labels)) {
        slot.batch_is_augment = false;
        return true;
      }
      slot.loader->Reset();
      if (slot.augment_loader.has_value()) {
        slot.phase = Slot::Phase::kAugment;
        slot.augment_batch = 0;
      } else {
        ++slot.epoch;
      }
    } else {  // kAugment
      if (slot.augment_batch >= spec.augment_batches_per_epoch) {
        ++slot.epoch;
        slot.phase = Slot::Phase::kMain;
        continue;
      }
      ++slot.augment_batch;
      if (slot.augment_loader->NextBatch(features, labels)) {
        slot.batch_is_augment = true;
        return true;
      }
      slot.augment_loader->Reset();
      if (slot.augment_loader->NextBatch(features, labels)) {
        slot.batch_is_augment = true;
        return true;
      }
      ++slot.epoch;  // augment set empty even after reload: end the phase
      slot.phase = Slot::Phase::kMain;
    }
  }
}

// Layer-path fallback for topologies the plan runtime cannot compile (the
// whole current model zoo lowers, so this is reserved for future layer
// kinds): each job reruns under exec=kLayers with its untouched rng, so the
// results are exactly what the layer path would have produced.
void RunFallback(ModelPool& pool, const PlanJob* jobs, int count) {
  Metrics().fallbacks.Add(count);
  for (int i = 0; i < count; ++i) {
    ClientTrainSpec spec = *jobs[i].spec;
    spec.options.exec = ExecMode::kLayers;
    jobs[i].client->Train(pool, *jobs[i].init_params, spec, *jobs[i].rng,
                          *jobs[i].result);
  }
}

}  // namespace

void RunPlanJobs(ModelPool& pool, const PlanJob* jobs, int count) {
  FC_CHECK_GT(count, 0);
  FC_TRACE_SPAN_ARG("plan.lockstep", count);

  // Probe plan support once, before any job state (rngs included) is
  // touched, so the fallback replays the jobs from scratch. Support is a
  // topology property: if one valid shape compiles, they all do.
  {
    const data::Dataset& dataset = jobs[0].client->dataset();
    Tensor::Shape probe_shape = dataset.example_shape();
    int rows = std::min(jobs[0].spec->options.batch_size, dataset.size());
    probe_shape.insert(probe_shape.begin(), std::max(rows, 1));
    if (!pool.SupportsPlan(probe_shape)) {
      RunFallback(pool, jobs, count);
      return;
    }
  }

  // ---- Per-job setup, mirroring FlClient::Train ----
  std::vector<std::unique_ptr<Slot>> slots;
  slots.reserve(count);
  for (int i = 0; i < count; ++i) {
    auto slot = std::make_unique<Slot>();
    const PlanJob& job = jobs[i];
    FC_CHECK(job.client != nullptr && job.init_params != nullptr &&
             job.spec != nullptr && job.rng != nullptr &&
             job.result != nullptr);
    slot->job = &job;
    slot->lease = pool.Acquire();
    ModelPool::Replica& replica = *slot->lease;
    replica.model.ParamsFromFlat(*job.init_params);

    optim::SgdOptions sgd_options;
    sgd_options.lr = job.spec->options.lr;
    sgd_options.momentum = job.spec->options.momentum;
    sgd_options.weight_decay = job.spec->options.weight_decay;
    sgd_options.grad_clip_norm = job.spec->options.grad_clip_norm;
    if (replica.sgd == nullptr) {
      replica.sgd =
          std::make_unique<optim::Sgd>(replica.model.Params(), sgd_options);
    } else {
      replica.sgd->Configure(sgd_options);
    }

    slot->data_rng =
        job.rng->Fork(static_cast<std::uint64_t>(job.client->id()) + 1);
    slot->loader.emplace(job.client->dataset(), job.spec->options.batch_size,
                         slot->data_rng);
    if (job.spec->augment_data != nullptr && job.spec->augment_data->size() > 0) {
      slot->augment_loader.emplace(*job.spec->augment_data,
                                   job.spec->options.batch_size,
                                   slot->data_rng);
    }
    slots.push_back(std::move(slot));
  }

  // ---- Lockstep training ----
  // Every iteration advances each live slot by one mini-batch, then fuses
  // the steps whose batches share a shape into one ExecuteStep call. Fusion
  // only changes how many replicas one grouped GEMM covers — each replica's
  // arithmetic, RNG draws and reduction orders are those of a solo run.
  std::vector<Slot*> ready;
  std::vector<nn::plan::PlanState*> states;
  std::vector<nn::plan::BatchRef> batches;
  std::vector<float> grad_scales;
  std::vector<float> losses;
  std::vector<int> corrects;
  std::vector<Slot*> group;
  for (;;) {
    ready.clear();
    for (auto& slot : slots) {
      if (slot->phase == Slot::Phase::kDone) continue;
      ModelPool::Replica& replica = *slot->lease;
      if (NextSlotBatch(*slot, replica.features, replica.labels)) {
        ready.push_back(slot.get());
      }
    }
    if (ready.empty()) break;

    std::size_t done = 0;
    std::vector<bool> taken(ready.size(), false);
    while (done < ready.size()) {
      group.clear();
      const Tensor::Shape* key = nullptr;
      for (std::size_t i = 0; i < ready.size(); ++i) {
        if (taken[i]) continue;
        const Tensor::Shape& shape = (*ready[i]->lease).features.shape();
        if (key == nullptr) key = &shape;
        if (shape != *key) continue;
        taken[i] = true;
        ++done;
        group.push_back(ready[i]);
      }

      ModelPool::Replica& lead = *group[0]->lease;
      const nn::plan::Program* program =
          pool.ProgramFor(lead.features.shape(), lead.model);
      FC_CHECK(program != nullptr);  // support was established by the probe

      int n = static_cast<int>(group.size());
      states.resize(n);
      batches.resize(n);
      grad_scales.resize(n);
      losses.resize(n);
      corrects.resize(n);
      for (int g = 0; g < n; ++g) {
        Slot& slot = *group[g];
        ModelPool::Replica& replica = *slot.lease;
        replica.model.ZeroGrad();
        const bool want_bf16 = slot.job->spec->options.plan_bf16;
        nn::plan::PlanState& st = replica.plan_states[lead.features.shape()];
        if (st.program != program || st.model != &replica.model ||
            st.bf16 != want_bf16) {
          st.Bind(*program, replica.model, want_bf16);
        }
        states[g] = &st;
        batches[g] = {replica.features.data(), replica.labels.data()};
        grad_scales[g] =
            slot.batch_is_augment ? slot.job->spec->augment_weight : 1.0f;
      }
      nn::plan::ExecuteStep(*program, states.data(), batches.data(), n,
                            losses.data(), corrects.data(),
                            grad_scales.data());
      for (int g = 0; g < n; ++g) {
        Slot& slot = *group[g];
        ModelPool::Replica& replica = *slot.lease;
        detail::AdjustGradients(replica.model, *slot.job->spec);
        replica.sgd->Step();
        if (!slot.batch_is_augment) {
          slot.total_loss += losses[g];
          ++slot.steps;
        }
      }
      Metrics().steps.Add(n);
      if (n > 1) Metrics().fused.Add(n);
    }
  }

  // ---- Results, field for field what the layer path writes ----
  for (auto& slot : slots) {
    LocalTrainResult& result = *slot->job->result;
    ModelPool::Replica& replica = *slot->lease;
    replica.model.ParamsToFlat(result.params);
    result.num_samples = slot->job->client->num_samples();
    result.num_steps = slot->steps;
    result.lr = slot->job->spec->options.lr;
    result.mean_loss =
        slot->steps > 0 ? slot->total_loss / slot->steps : 0.0;
    result.dropped = false;
    result.fault = FaultKind::kNone;
  }
}

}  // namespace fedcross::fl
