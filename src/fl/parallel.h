#ifndef FEDCROSS_FL_PARALLEL_H_
#define FEDCROSS_FL_PARALLEL_H_

#include "util/thread_pool.h"

namespace fedcross::fl {

// Number of threads used for the FL simulation's parallel sections (client
// training fan-out, test-set evaluation). Process-wide; shared thread pool.
// n <= 0 selects std::thread::hardware_concurrency(); 1 runs the legacy
// in-line sequential paths with no pool involvement. Every parallel section
// is deterministic by construction (per-slot seeded Rngs for training,
// batch-order reduction for evaluation), so results are bit-identical for
// every thread count.
void SetFlThreads(int n);

// The resolved thread count SetFlThreads selected (never < 1).
int FlThreads();

// The shared worker pool sized to FlThreads(), or nullptr when FlThreads()
// == 1 (callers run their serial path). The pool is built lazily and
// rebuilt when SetFlThreads changes the size.
util::ThreadPool* AcquireFlPool();

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_PARALLEL_H_
