#ifndef FEDCROSS_FL_PARALLEL_H_
#define FEDCROSS_FL_PARALLEL_H_

#include <cstdint>
#include <functional>

#include "util/thread_pool.h"

namespace fedcross::fl {

// Number of threads used for the FL simulation's parallel sections (client
// training fan-out, test-set evaluation). Process-wide; shared thread pool.
// n <= 0 selects std::thread::hardware_concurrency(); 1 runs the legacy
// in-line sequential paths with no pool involvement. Every parallel section
// is deterministic by construction (per-slot seeded Rngs for training,
// batch-order reduction for evaluation), so results are bit-identical for
// every thread count.
void SetFlThreads(int n);

// The resolved thread count SetFlThreads selected (never < 1).
int FlThreads();

// The shared worker pool sized to FlThreads(), or nullptr when FlThreads()
// == 1 (callers run their serial path). The pool is built lazily and
// rebuilt when SetFlThreads changes the size.
util::ThreadPool* AcquireFlPool();

// Splits [0, n) into at most FlThreads() contiguous ranges of at least
// min_per_range elements each and runs fn(begin, end) on every range via the
// shared pool (inline when the pool is off or the range is too small). The
// range boundaries depend only on n, min_per_range, and FlThreads(), never on
// scheduling, so callers whose per-element work is order-independent across
// ranges (e.g. element-wise accumulation with a fixed per-element operand
// order) produce bit-identical results at every thread count.
void ParallelRanges(std::int64_t n, std::int64_t min_per_range,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_PARALLEL_H_
