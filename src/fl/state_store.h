#ifndef FEDCROSS_FL_STATE_STORE_H_
#define FEDCROSS_FL_STATE_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fl/types.h"

namespace fedcross::fl {

// Residency policy for a ClientStateStore.
struct StateStoreOptions {
  // Maximum number of entries kept in RAM between batches. <= 0 keeps every
  // touched entry resident and never creates a spill file (the default, and
  // the right choice for resident populations where N is small anyway).
  std::int64_t max_resident = 0;
};

// Cold per-client persistent state — SCAFFOLD control variates, codec
// error-feedback residuals, CluSamp update history — keyed by client id.
// Untouched clients cost nothing: an entry exists only once Touch(id) has
// been called. When max_resident is set, entries that were not touched in
// the current batch are spilled to an anonymous mmap-backed temp file
// (created with mkstemp and unlinked immediately, so it never outlives the
// process) and faulted back in on the next Touch. Spill and fault-in are
// raw float-bit copies, so residency is invisible to training: a run with
// max_resident=2 is bit-identical to a run with everything resident.
//
// All entries that ever hold data must have the same length (one flat model
// or variate vector); empty entries (touched but never written) are fine and
// occupy no spill slot.
//
// Not thread-safe. Callers resolve entry pointers on the coordinating thread
// before any parallel fan-out; references returned by Touch stay valid until
// the next BeginBatch()/Clear().
class ClientStateStore {
 public:
  ClientStateStore() = default;
  ~ClientStateStore();

  ClientStateStore(const ClientStateStore&) = delete;
  ClientStateStore& operator=(const ClientStateStore&) = delete;

  void Configure(const StateStoreOptions& options) { options_ = options; }

  // Mutable entry for this client, created empty on first touch and faulted
  // in from the spill file if currently cold. Marks the entry
  // most-recently-used.
  FlatParams& Touch(std::int64_t id);

  // Copies the entry's value into out without changing LRU order; returns
  // false (and clears out) if the client was never touched.
  bool Read(std::int64_t id, FlatParams& out) const;

  bool Contains(std::int64_t id) const {
    return entries_.find(id) != entries_.end();
  }

  // Advances the batch epoch: spills least-recently-touched resident entries
  // until at most max_resident remain. Call once per round (or per training
  // batch) from the coordinating thread; between calls nothing moves.
  void BeginBatch();

  // Every id ever touched, sorted ascending — the checkpoint iteration
  // order, which therefore does not depend on residency or LRU state.
  std::vector<std::int64_t> TouchedIds() const;

  // Drops all entries (spill slots are recycled). Checkpoint load starts
  // from a Clear() store and repopulates it via Touch.
  void Clear();

  std::int64_t touched() const {
    return static_cast<std::int64_t>(entries_.size());
  }
  std::int64_t resident() const { return resident_; }
  // Cumulative spill writes / fault-ins, for tests and gauges.
  std::int64_t spills() const { return spills_; }
  std::int64_t faultins() const { return faultins_; }

 private:
  struct Entry {
    FlatParams value;              // meaningful only while resident
    bool resident = false;
    std::int64_t slot = -1;        // spill-file slot, -1 until first spill
    std::uint64_t last_touch = 0;  // monotonic counter for LRU ordering
  };

  void Spill(std::int64_t id, Entry& entry);
  void FaultIn(Entry& entry);
  void EnsureSlotCapacity(std::int64_t slots);
  float* SlotData(std::int64_t slot) const;

  StateStoreOptions options_;
  std::unordered_map<std::int64_t, Entry> entries_;
  std::int64_t resident_ = 0;
  std::uint64_t touch_counter_ = 0;
  std::int64_t spills_ = 0;
  std::int64_t faultins_ = 0;

  // Spill file state (created lazily on the first spill).
  int fd_ = -1;
  void* map_ = nullptr;
  std::int64_t slot_floats_ = 0;     // uniform entry length, fixed on first spill
  std::int64_t slot_capacity_ = 0;   // slots the mapping can hold
  std::int64_t next_slot_ = 0;

  // Scratch for the eviction scan, recycled across batches.
  std::vector<std::pair<std::uint64_t, std::int64_t>> evict_scratch_;
};

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_STATE_STORE_H_
