#ifndef FEDCROSS_FL_EVALUATOR_H_
#define FEDCROSS_FL_EVALUATOR_H_

#include "data/dataset.h"
#include "fl/types.h"
#include "models/model_zoo.h"

namespace fedcross::fl {

// Evaluates flat parameters on a dataset: builds a model from the factory,
// loads the parameters, and runs inference in eval mode.
EvalResult EvaluateParams(const models::ModelFactory& factory,
                          const FlatParams& params,
                          const data::Dataset& dataset, int batch_size = 100);

// Evaluates an already-constructed model (avoids rebuild in tight loops).
EvalResult EvaluateModel(nn::Sequential& model, const data::Dataset& dataset,
                         int batch_size = 100);

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_EVALUATOR_H_
