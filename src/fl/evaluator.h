#ifndef FEDCROSS_FL_EVALUATOR_H_
#define FEDCROSS_FL_EVALUATOR_H_

#include "data/dataset.h"
#include "fl/model_pool.h"
#include "fl/types.h"
#include "models/model_zoo.h"

namespace fedcross::fl {

// Evaluates flat parameters on a dataset using pooled model replicas: test
// batches are fanned out over the shared FL thread pool (see fl/parallel.h),
// one replica per worker slot, and per-batch results are reduced in batch
// order with double accumulation — so the result is bit-identical for every
// thread count, including the serial path. At steady state no replica or
// batch-buffer allocations occur.
EvalResult EvaluateParams(ModelPool& pool, const FlatParams& params,
                          const data::Dataset& dataset, int batch_size = 100);

// Convenience overload: builds a model from the factory per call and runs
// the serial path. Kept for standalone callers; same math as above.
EvalResult EvaluateParams(const models::ModelFactory& factory,
                          const FlatParams& params,
                          const data::Dataset& dataset, int batch_size = 100);

// Evaluates an already-constructed model (avoids rebuild in tight loops).
EvalResult EvaluateModel(nn::Sequential& model, const data::Dataset& dataset,
                         int batch_size = 100);

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_EVALUATOR_H_
