#ifndef FEDCROSS_FL_FAULTS_H_
#define FEDCROSS_FL_FAULTS_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "fl/types.h"
#include "util/rng.h"
#include "util/status.h"

namespace fedcross::fl {

// ---------------------------------------------------------------------------
// Client fault model
//
// Every fault decision is drawn from a *dedicated* fault RNG stream seeded
// by (run seed, round, salt, slot) — never from the stream that drives local
// training. Consequences:
//   * enabling a fault profile cannot perturb the training trajectory of
//     clients that do not fault (a never-firing profile is bit-identical to
//     a disabled one), and
//   * fault draws are a pure function of the job slot, so runs stay
//     bit-identical across thread counts and schedules.
// ---------------------------------------------------------------------------

// How a corrupted client mangles its upload before sending it.
enum class CorruptionKind {
  kNanInject,       // poisons corrupt_coords coordinates with NaN
  kInfInject,       // poisons corrupt_coords coordinates with +/-Inf
  kExplodingNorm,   // scales the local update by corruption_scale
  kSignFlip,        // Byzantine: uploads reference - scale * update
};

const char* CorruptionKindName(CorruptionKind kind);
util::StatusOr<CorruptionKind> ParseCorruptionKind(const std::string& name);

// Per-client fault behaviour. All probabilities are per round.
struct FaultProfile {
  // Pre-upload dropout: the device receives the model but never uploads.
  double dropout_prob = 0.0;

  // Straggler: the device's (simulated) training time is multiplied by a
  // factor drawn uniformly from [slowdown_min, slowdown_max]. If the
  // resulting time exceeds FaultModel::round_deadline the upload misses the
  // round and the server treats the client exactly like a dropout.
  double straggler_prob = 0.0;
  double slowdown_min = 2.0;
  double slowdown_max = 8.0;

  // Corrupted upload: the device trains normally but uploads a mangled
  // model (bit flips, overflow bugs, or a Byzantine participant).
  double corrupt_prob = 0.0;
  CorruptionKind corruption = CorruptionKind::kNanInject;
  float corruption_scale = 1e6f;  // exploding-norm / sign-flip magnitude
  int corrupt_coords = 4;         // coordinates poisoned by NaN/Inf inject

  // True if any fault can fire under this profile.
  bool Active() const {
    return dropout_prob > 0.0 || straggler_prob > 0.0 || corrupt_prob > 0.0;
  }
};

// The run-wide fault model: a default profile, optional per-client
// overrides, and the server-side round deadline the stragglers race.
struct FaultModel {
  FaultProfile profile;  // applies to every client without an override
  // Keyed by client id; 64-bit so overrides address million-client virtual
  // populations.
  std::unordered_map<std::int64_t, FaultProfile> overrides;

  // Simulated per-round time budget (a fault-free client takes 1.0). A
  // straggler whose drawn slowdown exceeds the deadline misses the round.
  // <= 0 disables the deadline (stragglers are then harmless).
  double round_deadline = 0.0;

  // Over-provisioned selection: the server dispatches to K + over_provision
  // clients so the round still aggregates ~K uploads under faults. Applies
  // to the algorithms that sample through FlAlgorithm::SampleClients
  // (FedAvg, FedProx, SCAFFOLD, FedGen); FedCross pins one client per
  // middleware model and the cluster-driven samplers pick per cluster.
  int over_provision = 0;

  const FaultProfile& ProfileFor(std::int64_t client_id) const {
    auto it = overrides.find(client_id);
    return it == overrides.end() ? profile : it->second;
  }

  bool AnyActive() const;
};

// What actually happened to one client job this round.
enum class FaultKind {
  kNone = 0,
  kDropout,    // never uploaded (Bernoulli device failure)
  kStraggler,  // trained too slowly, missed the round deadline
  kCorrupted,  // uploaded a mangled model
  kRejected,   // upload screened out server-side (degrades like a dropout)
};

const char* FaultKindName(FaultKind kind);

// Seeds the dedicated fault stream of one client job. Tagged differently
// from the training-stream derivation so the two never collide.
std::uint64_t FaultSeed(std::uint64_t seed, int round, int salt, int slot);

// The fault draws for one client job, in a fixed consumption order
// (dropout, straggler trigger, slowdown, corruption trigger).
struct FaultDecision {
  bool dropped = false;    // pre-upload dropout fired
  bool timed_out = false;  // straggler missed the round deadline
  bool corrupt = false;    // upload will be mangled
  double duration = 1.0;   // simulated training time factor
};

FaultDecision DrawFaults(const FaultProfile& profile, double round_deadline,
                         util::Rng& fault_rng);

// Applies the profile's corruption to `params` in place. `reference` is the
// dispatched model (the corruption target for update-space attacks);
// poisoned coordinates are drawn from the fault stream.
void CorruptUpload(const FaultProfile& profile, const FlatParams& reference,
                   FlatParams& params, util::Rng& fault_rng);

// ---------------------------------------------------------------------------
// Server-side upload screening
// ---------------------------------------------------------------------------

// Cheap gate the server runs on every upload before aggregation. A rejected
// upload degrades exactly like a dropout: the client's contribution is
// discarded and (for FedCross) the server keeps its dispatched middleware
// copy. Disabled by default so the clean path is byte-for-byte unchanged.
struct ScreeningOptions {
  bool check_finite = false;     // reject any NaN/Inf coordinate
  float max_update_norm = 0.0f;  // reject ||upload - dispatched|| > gate; <=0 off

  bool Enabled() const { return check_finite || max_update_norm > 0.0f; }
};

// OK if the upload passes; InvalidArgument (non-finite) or OutOfRange
// (norm gate) with a diagnostic otherwise.
util::Status ScreenUpload(const FlatParams& reference, const FlatParams& upload,
                          const ScreeningOptions& options);

// Cumulative per-run fault accounting, kept by FlAlgorithm.
struct FaultStats {
  std::int64_t dropouts = 0;
  std::int64_t stragglers = 0;
  std::int64_t corrupted = 0;  // mangled uploads (whether or not screened)
  std::int64_t rejected = 0;   // uploads discarded by server screening
  // Async-engine accounting (always 0 in sync mode): dispatches abandoned
  // at the per-dispatch deadline, and re-dispatches issued for them.
  std::int64_t timeouts = 0;
  std::int64_t retries = 0;
};

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_FAULTS_H_
