#include "fl/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>

namespace fedcross::fl {
namespace {

constexpr std::uint32_t kMagic = 0x46435253;  // "FCRS"
constexpr std::uint32_t kMinVersion = 1;  // still readable

// Length prefixes are validated against the remaining buffer before any
// allocation, so a corrupted count cannot trigger a huge resize.
constexpr std::uint64_t kMaxReasonableCount = 1ULL << 40;

}  // namespace

void StateWriter::WriteU32(std::uint32_t value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  bytes_.insert(bytes_.end(), p, p + sizeof(value));
}

void StateWriter::WriteU64(std::uint64_t value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  bytes_.insert(bytes_.end(), p, p + sizeof(value));
}

void StateWriter::WriteI64(std::int64_t value) {
  WriteU64(static_cast<std::uint64_t>(value));
}

void StateWriter::WriteF32(float value) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  WriteU32(bits);
}

void StateWriter::WriteF64(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  WriteU64(bits);
}

void StateWriter::WriteBool(bool value) {
  bytes_.push_back(value ? 1 : 0);
}

void StateWriter::WriteFloats(const FlatParams& values) {
  WriteU64(values.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(values.data());
  bytes_.insert(bytes_.end(), p, p + values.size() * sizeof(float));
}

void StateWriter::WriteInts(const std::vector<int>& values) {
  WriteU64(values.size());
  for (int v : values) WriteU32(static_cast<std::uint32_t>(v));
}

void StateWriter::WriteInts64(const std::vector<std::int64_t>& values) {
  WriteU64(values.size());
  for (std::int64_t v : values) WriteI64(v);
}

void StateWriter::WriteDoubles(const std::vector<double>& values) {
  WriteU64(values.size());
  for (double v : values) WriteF64(v);
}

util::Status StateReader::ReadRaw(void* dst, std::size_t count) {
  if (offset_ + count > bytes_.size()) {
    return util::Status::InvalidArgument(
        "truncated checkpoint: need " + std::to_string(count) +
        " bytes at offset " + std::to_string(offset_) + ", have " +
        std::to_string(bytes_.size() - offset_));
  }
  std::memcpy(dst, bytes_.data() + offset_, count);
  offset_ += count;
  return util::Status::Ok();
}

util::Status StateReader::ReadU32(std::uint32_t& value) {
  return ReadRaw(&value, sizeof(value));
}

util::Status StateReader::ReadU64(std::uint64_t& value) {
  return ReadRaw(&value, sizeof(value));
}

util::Status StateReader::ReadI64(std::int64_t& value) {
  std::uint64_t bits = 0;
  FC_RETURN_IF_ERROR(ReadU64(bits));
  value = static_cast<std::int64_t>(bits);
  return util::Status::Ok();
}

util::Status StateReader::ReadF32(float& value) {
  std::uint32_t bits = 0;
  FC_RETURN_IF_ERROR(ReadU32(bits));
  std::memcpy(&value, &bits, sizeof(value));
  return util::Status::Ok();
}

util::Status StateReader::ReadF64(double& value) {
  std::uint64_t bits = 0;
  FC_RETURN_IF_ERROR(ReadU64(bits));
  std::memcpy(&value, &bits, sizeof(value));
  return util::Status::Ok();
}

util::Status StateReader::ReadBool(bool& value) {
  std::uint8_t byte = 0;
  FC_RETURN_IF_ERROR(ReadRaw(&byte, 1));
  value = byte != 0;
  return util::Status::Ok();
}

util::Status StateReader::ReadFloats(FlatParams& values) {
  std::uint64_t count = 0;
  FC_RETURN_IF_ERROR(ReadU64(count));
  if (count > kMaxReasonableCount ||
      offset_ + count * sizeof(float) > bytes_.size()) {
    return util::Status::InvalidArgument(
        "truncated checkpoint: float vector of " + std::to_string(count) +
        " elements exceeds remaining bytes");
  }
  values.resize(static_cast<std::size_t>(count));
  return ReadRaw(values.data(), values.size() * sizeof(float));
}

util::Status StateReader::ReadInts(std::vector<int>& values) {
  std::uint64_t count = 0;
  FC_RETURN_IF_ERROR(ReadU64(count));
  if (count > kMaxReasonableCount ||
      offset_ + count * sizeof(std::uint32_t) > bytes_.size()) {
    return util::Status::InvalidArgument(
        "truncated checkpoint: int vector of " + std::to_string(count) +
        " elements exceeds remaining bytes");
  }
  values.resize(static_cast<std::size_t>(count));
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::uint32_t v = 0;
    FC_RETURN_IF_ERROR(ReadU32(v));
    values[i] = static_cast<int>(v);
  }
  return util::Status::Ok();
}

util::Status StateReader::ReadInts64(std::vector<std::int64_t>& values) {
  std::uint64_t count = 0;
  FC_RETURN_IF_ERROR(ReadU64(count));
  if (count > kMaxReasonableCount ||
      offset_ + count * sizeof(std::uint64_t) > bytes_.size()) {
    return util::Status::InvalidArgument(
        "truncated checkpoint: int64 vector of " + std::to_string(count) +
        " elements exceeds remaining bytes");
  }
  values.resize(static_cast<std::size_t>(count));
  for (std::size_t i = 0; i < values.size(); ++i) {
    FC_RETURN_IF_ERROR(ReadI64(values[i]));
  }
  return util::Status::Ok();
}

util::Status StateReader::ReadDoubles(std::vector<double>& values) {
  std::uint64_t count = 0;
  FC_RETURN_IF_ERROR(ReadU64(count));
  if (count > kMaxReasonableCount ||
      offset_ + count * sizeof(double) > bytes_.size()) {
    return util::Status::InvalidArgument(
        "truncated checkpoint: double vector of " + std::to_string(count) +
        " elements exceeds remaining bytes");
  }
  values.resize(static_cast<std::size_t>(count));
  for (std::size_t i = 0; i < values.size(); ++i) {
    FC_RETURN_IF_ERROR(ReadF64(values[i]));
  }
  return util::Status::Ok();
}

util::Status WriteStateFile(const std::string& path,
                            const StateWriter& writer) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) return util::Status::Internal("cannot open " + tmp);
    std::uint32_t header[2] = {kMagic, writer.version()};
    out.write(reinterpret_cast<const char*>(header), sizeof(header));
    out.write(reinterpret_cast<const char*>(writer.bytes().data()),
              static_cast<std::streamsize>(writer.bytes().size()));
    if (!out.good()) return util::Status::Internal("short write to " + tmp);
  }
  // Atomic publish: the previous checkpoint stays intact until the new one
  // is fully on disk.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return util::Status::Internal("cannot rename " + tmp + " to " + path);
  }
  return util::Status::Ok();
}

util::StatusOr<StateReader> ReadStateFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) return util::Status::NotFound("cannot open " + path);
  std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in.good()) return util::Status::Internal("short read from " + path);

  if (bytes.size() < 2 * sizeof(std::uint32_t)) {
    return util::Status::InvalidArgument("truncated checkpoint header");
  }
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  std::memcpy(&version, bytes.data() + sizeof(magic), sizeof(version));
  if (magic != kMagic) {
    return util::Status::InvalidArgument("not a FedCross training checkpoint");
  }
  if (version < kMinVersion || version > kCheckpointVersion) {
    return util::Status::InvalidArgument(
        "unsupported training checkpoint version " + std::to_string(version));
  }
  bytes.erase(bytes.begin(), bytes.begin() + 2 * sizeof(std::uint32_t));
  return StateReader(std::move(bytes), version);
}

}  // namespace fedcross::fl
