#include "fl/model_pool.h"

#include <utility>

#include "util/check.h"

namespace fedcross::fl {

void ModelPool::Lease::Reset() {
  if (replica_ != nullptr && pool_ != nullptr) {
    pool_->Release(std::move(replica_));
  }
  replica_.reset();
  pool_ = nullptr;
}

ModelPool::ModelPool(models::ModelFactory factory)
    : factory_(std::move(factory)) {
  FC_CHECK(factory_ != nullptr);
}

ModelPool::Lease ModelPool::Acquire() {
  std::unique_ptr<Replica> replica;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      replica = std::move(free_.back());
      free_.pop_back();
    } else {
      ++created_;
    }
  }
  if (replica == nullptr) {
    // Construct outside the lock: factory() builds a full model.
    replica = std::make_unique<Replica>();
    replica->model = factory_();
  }
  // A recycled replica must be indistinguishable from a fresh factory model
  // once its parameters are overwritten; reset non-parameter state (dropout
  // RNG streams, ...) here so every checkout starts from the same point.
  replica->model.ResetState();
  return Lease(this, std::move(replica));
}

void ModelPool::Release(std::unique_ptr<Replica> replica) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(std::move(replica));
}

std::size_t ModelPool::replicas_created() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return created_;
}

std::size_t ModelPool::available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return free_.size();
}

}  // namespace fedcross::fl
