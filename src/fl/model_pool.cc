#include "fl/model_pool.h"

#include <utility>

#include "obs/metrics.h"
#include "util/check.h"

namespace fedcross::fl {
namespace {

struct PoolCheckoutMetrics {
  obs::Counter& hits =
      obs::MetricsRegistry::Global().GetCounter("fl.pool.checkout.hit");
  obs::Counter& misses =
      obs::MetricsRegistry::Global().GetCounter("fl.pool.checkout.miss");
};

PoolCheckoutMetrics& CheckoutMetrics() {
  static PoolCheckoutMetrics* metrics = new PoolCheckoutMetrics();
  return *metrics;
}

}  // namespace

void ModelPool::Lease::Reset() {
  if (replica_ != nullptr && pool_ != nullptr) {
    pool_->Release(std::move(replica_));
  }
  replica_.reset();
  pool_ = nullptr;
}

ModelPool::ModelPool(models::ModelFactory factory)
    : factory_(std::move(factory)) {
  FC_CHECK(factory_ != nullptr);
}

ModelPool::Lease ModelPool::Acquire() {
  std::unique_ptr<Replica> replica;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      replica = std::move(free_.back());
      free_.pop_back();
    } else {
      ++created_;
    }
  }
  // Checkout accounting (outside the lock): a miss is a full model build, so
  // the hit/miss ratio is the pool's whole value proposition.
  if (replica != nullptr) {
    CheckoutMetrics().hits.Add(1);
  } else {
    CheckoutMetrics().misses.Add(1);
  }
  if (replica == nullptr) {
    // Construct outside the lock: factory() builds a full model.
    replica = std::make_unique<Replica>();
    replica->model = factory_();
  }
  // A recycled replica must be indistinguishable from a fresh factory model
  // once its parameters are overwritten; reset non-parameter state (dropout
  // RNG streams, ...) here so every checkout starts from the same point.
  replica->model.ResetState();
  return Lease(this, std::move(replica));
}

void ModelPool::Release(std::unique_ptr<Replica> replica) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(std::move(replica));
}

std::size_t ModelPool::replicas_created() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return created_;
}

std::size_t ModelPool::available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return free_.size();
}

const nn::plan::Program* ModelPool::ProgramFor(const Tensor::Shape& input_shape,
                                               nn::Sequential& probe) {
  std::lock_guard<std::mutex> lock(plan_mutex_);
  auto it = programs_.find(input_shape);
  if (it == programs_.end()) {
    // Compile under the lock: a topology walk over one replica, cheap
    // relative to any training step and done once per shape.
    std::optional<nn::plan::Program> compiled =
        nn::plan::Program::Compile(probe, input_shape);
    std::unique_ptr<nn::plan::Program> slot;
    if (compiled.has_value()) {
      slot = std::make_unique<nn::plan::Program>(std::move(*compiled));
    }
    it = programs_.emplace(input_shape, std::move(slot)).first;
  }
  return it->second.get();
}

bool ModelPool::SupportsPlan(const Tensor::Shape& input_shape) {
  {
    std::lock_guard<std::mutex> lock(plan_mutex_);
    auto it = programs_.find(input_shape);
    if (it != programs_.end()) return it->second != nullptr;
  }
  // Cache miss: borrow a pooled replica as the compile probe (Acquire and
  // ProgramFor take different locks, so this cannot deadlock). The lease
  // returns the replica untouched — Compile only walks the topology.
  Lease probe = Acquire();
  return ProgramFor(input_shape, probe->model) != nullptr;
}

}  // namespace fedcross::fl
