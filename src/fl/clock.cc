#include "fl/clock.h"

#include <cmath>

namespace fedcross::fl {
namespace {

// SplitMix64 finalizer, the same bijective mix the other seed derivations
// use (duplicated here like fl/faults.cc does: the mix is a spec, not a
// shared utility, and must never drift).
std::uint64_t MixSeed(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Log-uniform draw over [lo, hi]; degenerate ranges cost no stream draws,
// so a homogeneous axis never consumes entropy.
double DrawLogUniform(double lo, double hi, util::Rng& rng) {
  if (lo >= hi) return lo;
  return std::exp(rng.Uniform(std::log(lo), std::log(hi)));
}

}  // namespace

const char* RoundModeName(RoundMode mode) {
  switch (mode) {
    case RoundMode::kSync:
      return "sync";
    case RoundMode::kAsync:
      return "async";
  }
  return "unknown";
}

bool ParseRoundMode(const std::string& name, RoundMode* mode) {
  if (name == "sync") {
    *mode = RoundMode::kSync;
    return true;
  }
  if (name == "async") {
    *mode = RoundMode::kAsync;
    return true;
  }
  return false;
}

const char* StalenessPolicyName(StalenessPolicy policy) {
  switch (policy) {
    case StalenessPolicy::kConstant:
      return "constant";
    case StalenessPolicy::kPolynomial:
      return "polynomial";
  }
  return "unknown";
}

bool ParseStalenessPolicy(const std::string& name, StalenessPolicy* policy) {
  if (name == "constant") {
    *policy = StalenessPolicy::kConstant;
    return true;
  }
  if (name == "polynomial" || name == "poly") {
    *policy = StalenessPolicy::kPolynomial;
    return true;
  }
  return false;
}

double StalenessWeight(StalenessPolicy policy, double exponent, int tau) {
  if (policy == StalenessPolicy::kConstant || tau <= 0) return 1.0;
  return std::pow(1.0 + static_cast<double>(tau), -exponent);
}

ClockProfile DrawClockProfile(const ClockModel& model, std::uint64_t seed,
                              std::int64_t client_id) {
  std::uint64_t h = MixSeed(seed ^ 0x636c6f636bULL);  // "clock"
  h = MixSeed(h + static_cast<std::uint64_t>(client_id));
  util::Rng rng(h);
  ClockProfile profile;
  profile.compute_speed =
      DrawLogUniform(model.compute_speed_min, model.compute_speed_max, rng);
  profile.bandwidth =
      DrawLogUniform(model.bandwidth_min, model.bandwidth_max, rng);
  return profile;
}

std::uint64_t ClockSeed(std::uint64_t seed, int round, int salt, int slot) {
  std::uint64_t h = MixSeed(seed ^ 0x636c6b6a74ULL);  // "clkjt"
  h = MixSeed(h + static_cast<std::uint64_t>(round));
  h = MixSeed(h + static_cast<std::uint64_t>(salt));
  return MixSeed(h + static_cast<std::uint64_t>(slot));
}

double SimulatedDuration(const ClockProfile& profile, double slowdown,
                         double steps, std::uint64_t wire_bytes_down,
                         std::uint64_t wire_bytes_up, double jitter_factor) {
  double comm = (static_cast<double>(wire_bytes_down) +
                 static_cast<double>(wire_bytes_up)) /
                profile.bandwidth;
  double compute = slowdown * steps / profile.compute_speed * jitter_factor;
  return comm + compute;
}

}  // namespace fedcross::fl
