#include "fl/fedcluster.h"

#include <limits>
#include <numeric>

namespace fedcross::fl {

FedCluster::FedCluster(AlgorithmConfig config, data::FederatedDataset data,
                       models::ModelFactory factory, int num_clusters)
    : FlAlgorithm("FedCluster", config, std::move(data), std::move(factory)),
      num_clusters_(num_clusters) {
  FC_CHECK_GT(num_clusters, 0);
  FC_CHECK_LE(num_clusters, config.clients_per_round)
      << "need at least one sampled client per cluster";
  global_ = InitialParams();

  // Random, size-balanced clusters, fixed for the whole run (the original
  // method clusters once; re-clustering variants exist but are not needed
  // for the baseline).
  std::vector<std::int64_t> order(static_cast<std::size_t>(num_clients()));
  std::iota(order.begin(), order.end(), std::int64_t{0});
  rng().Shuffle(order);
  clusters_.assign(num_clusters_, {});
  for (std::size_t i = 0; i < order.size(); ++i) {
    clusters_[i % num_clusters_].push_back(order[i]);
  }
}

void FedCluster::RunRound(int round) {
  int per_cluster =
      (config().clients_per_round + num_clusters_ - 1) / num_clusters_;
  ClientTrainSpec spec;
  spec.options = config().train;

  // Cycle through clusters, rotating the starting cluster each round so no
  // cluster permanently gets the "last word" within the cycle. Each step's
  // clients train in parallel; the steps themselves stay sequential because
  // every step aggregates into the model the next one dispatches.
  for (int step = 0; step < num_clusters_; ++step) {
    const std::vector<std::int64_t>& cluster =
        clusters_[(round + step) % num_clusters_];
    int take = std::min<int>(per_cluster, static_cast<int>(cluster.size()));
    if (take == 0) continue;

    std::vector<int> picks;
    std::vector<ClientJob> jobs;
    {
      PhaseScope phase(*this, RoundPhase::kDispatch);
      picks = rng().SampleWithoutReplacement(static_cast<int>(cluster.size()),
                                             take);
      jobs.resize(picks.size());
      for (std::size_t i = 0; i < picks.size(); ++i) {
        jobs[i] = {cluster[picks[i]], &global_, &spec};
      }
    }
    const std::vector<LocalTrainResult>& results =
        TrainClients(round, /*salt=*/step, jobs);

    std::vector<const FlatParams*> local_models;
    std::vector<double> weights;
    for (const LocalTrainResult& result : results) {
      if (result.dropped) continue;
      weights.push_back(result.num_samples * result.weight_scale);
      local_models.push_back(&result.params);
    }
    if (local_models.empty()) continue;  // whole cluster step dropped
    Aggregate(local_models, weights, global_, global_);
  }
}

void FedCluster::SaveExtraState(StateWriter& writer) {
  writer.WriteFloats(global_);
  writer.WriteU64(clusters_.size());
  if (writer.version() >= 3) {
    for (const std::vector<std::int64_t>& cluster : clusters_) {
      writer.WriteInts64(cluster);
    }
  } else {
    // Dense v2 downgrade: 32-bit member ids (the historical layout).
    for (const std::vector<std::int64_t>& cluster : clusters_) {
      std::vector<int> narrow;
      narrow.reserve(cluster.size());
      for (std::int64_t id : cluster) {
        FC_CHECK_LE(id, std::numeric_limits<int>::max());
        narrow.push_back(static_cast<int>(id));
      }
      writer.WriteInts(narrow);
    }
  }
}

util::Status FedCluster::LoadExtraState(StateReader& reader) {
  FC_RETURN_IF_ERROR(reader.ReadFloats(global_));
  std::uint64_t count = 0;
  FC_RETURN_IF_ERROR(reader.ReadU64(count));
  if (count != clusters_.size()) {
    return util::Status::FailedPrecondition(
        "checkpoint has " + std::to_string(count) + " clusters, run has " +
        std::to_string(clusters_.size()));
  }
  for (std::vector<std::int64_t>& cluster : clusters_) {
    if (reader.version() >= 3) {
      FC_RETURN_IF_ERROR(reader.ReadInts64(cluster));
    } else {
      std::vector<int> narrow;
      FC_RETURN_IF_ERROR(reader.ReadInts(narrow));
      cluster.assign(narrow.begin(), narrow.end());
    }
  }
  return util::Status::Ok();
}

}  // namespace fedcross::fl
