#include "fl/parallel.h"

#include <memory>
#include <mutex>
#include <thread>

namespace fedcross::fl {
namespace {

std::mutex g_pool_mutex;
int g_requested_threads = 0;  // <= 0: hardware_concurrency
std::unique_ptr<util::ThreadPool> g_pool;

int ResolveThreads(int requested) {
  int threads = requested;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  return threads < 1 ? 1 : threads;
}

}  // namespace

void SetFlThreads(int n) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_requested_threads = n;
  g_pool.reset();  // rebuilt lazily at the new size
}

int FlThreads() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  return ResolveThreads(g_requested_threads);
}

util::ThreadPool* AcquireFlPool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  int want = ResolveThreads(g_requested_threads);
  if (want == 1) return nullptr;
  if (g_pool == nullptr || g_pool->num_threads() != want) {
    g_pool = std::make_unique<util::ThreadPool>(want);
  }
  return g_pool.get();
}

void ParallelRanges(std::int64_t n, std::int64_t min_per_range,
                    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (n <= 0) return;
  if (min_per_range < 1) min_per_range = 1;
  util::ThreadPool* pool = AcquireFlPool();
  std::int64_t ranges = pool == nullptr ? 1 : n / min_per_range;
  if (ranges > FlThreads()) ranges = FlThreads();
  if (ranges <= 1) {
    fn(0, n);
    return;
  }
  pool->ParallelFor(static_cast<int>(ranges), [&](int r) {
    std::int64_t begin = n * r / ranges;
    std::int64_t end = n * (r + 1) / ranges;
    if (begin < end) fn(begin, end);
  });
}

}  // namespace fedcross::fl
