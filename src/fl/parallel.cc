#include "fl/parallel.h"

#include <memory>
#include <mutex>
#include <thread>

namespace fedcross::fl {
namespace {

std::mutex g_pool_mutex;
int g_requested_threads = 0;  // <= 0: hardware_concurrency
std::unique_ptr<util::ThreadPool> g_pool;

int ResolveThreads(int requested) {
  int threads = requested;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  return threads < 1 ? 1 : threads;
}

}  // namespace

void SetFlThreads(int n) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_requested_threads = n;
  g_pool.reset();  // rebuilt lazily at the new size
}

int FlThreads() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  return ResolveThreads(g_requested_threads);
}

util::ThreadPool* AcquireFlPool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  int want = ResolveThreads(g_requested_threads);
  if (want == 1) return nullptr;
  if (g_pool == nullptr || g_pool->num_threads() != want) {
    g_pool = std::make_unique<util::ThreadPool>(want);
  }
  return g_pool.get();
}

}  // namespace fedcross::fl
