#include "fl/faults.h"

#include <cmath>
#include <limits>

namespace fedcross::fl {
namespace {

// SplitMix64 finalizer (same bijective mix the training-stream derivation
// uses; the streams differ by their domain tag, not the mixer).
std::uint64_t MixSeed(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* CorruptionKindName(CorruptionKind kind) {
  switch (kind) {
    case CorruptionKind::kNanInject:
      return "nan";
    case CorruptionKind::kInfInject:
      return "inf";
    case CorruptionKind::kExplodingNorm:
      return "exploding";
    case CorruptionKind::kSignFlip:
      return "sign-flip";
  }
  return "unknown";
}

util::StatusOr<CorruptionKind> ParseCorruptionKind(const std::string& name) {
  if (name == "nan") return CorruptionKind::kNanInject;
  if (name == "inf") return CorruptionKind::kInfInject;
  if (name == "exploding" || name == "exploding-norm") {
    return CorruptionKind::kExplodingNorm;
  }
  if (name == "sign-flip" || name == "byzantine") {
    return CorruptionKind::kSignFlip;
  }
  return util::Status::InvalidArgument("unknown corruption kind: " + name);
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kDropout:
      return "dropout";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kCorrupted:
      return "corrupted";
    case FaultKind::kRejected:
      return "rejected";
  }
  return "unknown";
}

bool FaultModel::AnyActive() const {
  if (profile.Active()) return true;
  for (const auto& [id, override_profile] : overrides) {
    (void)id;
    if (override_profile.Active()) return true;
  }
  return false;
}

std::uint64_t FaultSeed(std::uint64_t seed, int round, int salt, int slot) {
  std::uint64_t h = MixSeed(seed ^ 0x6661756c74ULL);  // "fault"
  h = MixSeed(h + static_cast<std::uint64_t>(round));
  h = MixSeed(h + static_cast<std::uint64_t>(salt));
  return MixSeed(h + static_cast<std::uint64_t>(slot));
}

FaultDecision DrawFaults(const FaultProfile& profile, double round_deadline,
                         util::Rng& fault_rng) {
  FaultDecision decision;
  if (profile.dropout_prob > 0.0 &&
      fault_rng.Uniform() < profile.dropout_prob) {
    decision.dropped = true;
    return decision;  // the device is gone; nothing else can happen to it
  }
  if (profile.straggler_prob > 0.0 &&
      fault_rng.Uniform() < profile.straggler_prob) {
    FC_CHECK_GE(profile.slowdown_min, 1.0);
    FC_CHECK_GE(profile.slowdown_max, profile.slowdown_min);
    decision.duration = profile.slowdown_max > profile.slowdown_min
                            ? fault_rng.Uniform(profile.slowdown_min,
                                                profile.slowdown_max)
                            : profile.slowdown_min;
    decision.timed_out =
        round_deadline > 0.0 && decision.duration > round_deadline;
    if (decision.timed_out) return decision;  // the upload misses the round
  }
  if (profile.corrupt_prob > 0.0 &&
      fault_rng.Uniform() < profile.corrupt_prob) {
    decision.corrupt = true;
  }
  return decision;
}

void CorruptUpload(const FaultProfile& profile, const FlatParams& reference,
                   FlatParams& params, util::Rng& fault_rng) {
  FC_CHECK_EQ(reference.size(), params.size());
  if (params.empty()) return;
  switch (profile.corruption) {
    case CorruptionKind::kNanInject:
    case CorruptionKind::kInfInject: {
      float poison = profile.corruption == CorruptionKind::kNanInject
                         ? std::numeric_limits<float>::quiet_NaN()
                         : std::numeric_limits<float>::infinity();
      int coords = profile.corrupt_coords > 0 ? profile.corrupt_coords : 1;
      for (int c = 0; c < coords; ++c) {
        std::size_t j = static_cast<std::size_t>(
            fault_rng.UniformInt(static_cast<std::uint64_t>(params.size())));
        params[j] = (c % 2 == 0) ? poison : -poison;
      }
      break;
    }
    case CorruptionKind::kExplodingNorm:
      for (std::size_t j = 0; j < params.size(); ++j) {
        params[j] = reference[j] +
                    profile.corruption_scale * (params[j] - reference[j]);
      }
      break;
    case CorruptionKind::kSignFlip:
      for (std::size_t j = 0; j < params.size(); ++j) {
        params[j] = reference[j] -
                    profile.corruption_scale * (params[j] - reference[j]);
      }
      break;
  }
}

util::Status ScreenUpload(const FlatParams& reference, const FlatParams& upload,
                          const ScreeningOptions& options) {
  if (upload.size() != reference.size()) {
    return util::Status::InvalidArgument(
        "upload size " + std::to_string(upload.size()) +
        " does not match dispatched model size " +
        std::to_string(reference.size()));
  }
  if (options.check_finite) {
    for (std::size_t j = 0; j < upload.size(); ++j) {
      if (!std::isfinite(upload[j])) {
        return util::Status::InvalidArgument(
            "non-finite upload coordinate " + std::to_string(j));
      }
    }
  }
  if (options.max_update_norm > 0.0f) {
    double norm_sq = 0.0;
    for (std::size_t j = 0; j < upload.size(); ++j) {
      double d = static_cast<double>(upload[j]) - reference[j];
      norm_sq += d * d;
    }
    double norm = std::sqrt(norm_sq);
    if (!(norm <= static_cast<double>(options.max_update_norm))) {
      return util::Status::OutOfRange(
          "update norm " + std::to_string(norm) + " exceeds gate " +
          std::to_string(options.max_update_norm));
    }
  }
  return util::Status::Ok();
}

}  // namespace fedcross::fl
