#include "fl/aggregators.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "fl/parallel.h"
#include "util/check.h"

namespace fedcross::fl {
namespace {

// Minimum coordinates per shard for the coordinate-wise robust rules; the
// per-coordinate sort dominates, so a smaller floor than the dense-mean
// path still pays off.
constexpr std::int64_t kMinRobustRangeElems = 1024;

}  // namespace

const char* AggregatorKindName(AggregatorKind kind) {
  switch (kind) {
    case AggregatorKind::kWeightedMean:
      return "weighted-mean";
    case AggregatorKind::kTrimmedMean:
      return "trimmed-mean";
    case AggregatorKind::kCoordinateMedian:
      return "median";
    case AggregatorKind::kNormClippedMean:
      return "norm-clipped";
  }
  return "unknown";
}

util::StatusOr<AggregatorKind> ParseAggregatorKind(const std::string& name) {
  if (name == "weighted-mean" || name == "mean") {
    return AggregatorKind::kWeightedMean;
  }
  if (name == "trimmed-mean" || name == "trimmed") {
    return AggregatorKind::kTrimmedMean;
  }
  if (name == "median" || name == "coordinate-median") {
    return AggregatorKind::kCoordinateMedian;
  }
  if (name == "norm-clipped" || name == "clipped") {
    return AggregatorKind::kNormClippedMean;
  }
  return util::Status::InvalidArgument("unknown aggregator: " + name);
}

void TrimmedMeanInto(const std::vector<const FlatParams*>& models,
                     double trim_ratio, FlatParams& column, FlatParams& out) {
  FC_CHECK(!models.empty());
  FC_CHECK_GE(trim_ratio, 0.0);
  FC_CHECK_LT(trim_ratio, 0.5);
  std::size_t n = models.size();
  std::size_t dim = models[0]->size();
  std::size_t trim = static_cast<std::size_t>(trim_ratio * n);
  trim = std::min(trim, (n - 1) / 2);  // at least one value survives
  std::size_t keep = n - 2 * trim;
  float inv_keep = 1.0f / static_cast<float>(keep);

  column.resize(n);  // serial-path scratch; shards bring their own
  out.assign(dim, 0.0f);  // capacity-retaining
  // Coordinates are independent, so contiguous range shards reproduce the
  // serial result bit-for-bit regardless of --fl_threads.
  ParallelRanges(
      static_cast<std::int64_t>(dim), kMinRobustRangeElems,
      [&](std::int64_t begin, std::int64_t end) {
        FlatParams local(n);
        for (std::int64_t j = begin; j < end; ++j) {
          for (std::size_t m = 0; m < n; ++m) local[m] = (*models[m])[j];
          std::sort(local.begin(), local.end());
          float total = 0.0f;
          for (std::size_t m = trim; m < n - trim; ++m) total += local[m];
          out[j] = total * inv_keep;
        }
      });
}

void CoordinateMedianInto(const std::vector<const FlatParams*>& models,
                          FlatParams& column, FlatParams& out) {
  FC_CHECK(!models.empty());
  std::size_t n = models.size();
  std::size_t dim = models[0]->size();
  std::size_t mid = n / 2;

  column.resize(n);  // serial-path scratch; shards bring their own
  out.assign(dim, 0.0f);
  ParallelRanges(
      static_cast<std::int64_t>(dim), kMinRobustRangeElems,
      [&](std::int64_t begin, std::int64_t end) {
        FlatParams local(n);
        for (std::int64_t j = begin; j < end; ++j) {
          for (std::size_t m = 0; m < n; ++m) local[m] = (*models[m])[j];
          std::nth_element(local.begin(), local.begin() + mid, local.end());
          float median = local[mid];
          if (n % 2 == 0) {
            // Mean of the two middle values: the lower one is the max of
            // the left partition nth_element leaves behind.
            float lower =
                *std::max_element(local.begin(), local.begin() + mid);
            median = 0.5f * (lower + median);
          }
          out[j] = median;
        }
      });
}

void NormClippedWeightedAverageInto(
    const std::vector<const FlatParams*>& models,
    const std::vector<double>& weights, const FlatParams& reference,
    float clip_norm, FlatParams& scratch, FlatParams& out) {
  FC_CHECK(!models.empty());
  FC_CHECK_EQ(models.size(), weights.size());
  FC_CHECK_GT(clip_norm, 0.0f);
  std::size_t dim = reference.size();
  double total_weight = 0.0;
  for (double w : weights) {
    FC_CHECK_GE(w, 0.0);
    total_weight += w;
  }
  FC_CHECK_GT(total_weight, 0.0);

  // Per-model clip factors first. Each norm reduction keeps the serial
  // coordinate order (sharding a reduction would reassociate the sum), but
  // the models themselves are independent, so they fan out across the pool.
  std::vector<float> factors(models.size());
  ParallelRanges(
      static_cast<std::int64_t>(models.size()), /*min_per_range=*/1,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t m = begin; m < end; ++m) {
          const FlatParams& model = *models[m];
          FC_CHECK_EQ(model.size(), dim);
          double norm_sq = 0.0;
          for (std::size_t j = 0; j < dim; ++j) {
            double d = static_cast<double>(model[j]) - reference[j];
            norm_sq += d * d;
          }
          double norm = std::sqrt(norm_sq);
          double clip = norm > clip_norm ? clip_norm / norm : 1.0;
          factors[m] = static_cast<float>(weights[m] / total_weight * clip);
        }
      });

  // Accumulate the clipped updates into scratch first so `out` may alias
  // `reference`. Every coordinate sees the models in ascending order, the
  // same per-element order as the serial loop.
  scratch.assign(dim, 0.0f);
  ParallelRanges(
      static_cast<std::int64_t>(dim), kMinRobustRangeElems,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::size_t m = 0; m < models.size(); ++m) {
          const FlatParams& model = *models[m];
          const float factor = factors[m];
          for (std::int64_t j = begin; j < end; ++j) {
            scratch[j] += factor * (model[j] - reference[j]);
          }
        }
      });
  out.resize(dim);
  for (std::size_t j = 0; j < dim; ++j) out[j] = reference[j] + scratch[j];
}

}  // namespace fedcross::fl
