#ifndef FEDCROSS_FL_COMM_TRACKER_H_
#define FEDCROSS_FL_COMM_TRACKER_H_

#include <cstdint>

namespace fedcross::fl {

// Accounts the bytes every FL algorithm moves between cloud and clients,
// backing the paper's Table I / Section IV-C3 communication analysis.
// Algorithms call AddDownload for each dispatch (model, control variate,
// generator, ...) and AddUpload for each client upload.
class CommTracker {
 public:
  void AddDownload(double bytes) { round_down_ += bytes; total_down_ += bytes; }
  void AddUpload(double bytes) { round_up_ += bytes; total_up_ += bytes; }

  // Convenience: a payload of `floats` float32 values.
  static double FloatBytes(std::int64_t floats) {
    return static_cast<double>(floats) * sizeof(float);
  }

  // Per-round counters; reset at round start.
  void BeginRound() { round_down_ = 0.0; round_up_ = 0.0; }
  double round_download_bytes() const { return round_down_; }
  double round_upload_bytes() const { return round_up_; }

  // Cumulative counters.
  double total_download_bytes() const { return total_down_; }
  double total_upload_bytes() const { return total_up_; }

  // Checkpoint restore: resets to the given cumulative totals with the
  // per-round counters cleared.
  void Restore(double total_down, double total_up) {
    total_down_ = total_down;
    total_up_ = total_up;
    round_down_ = 0.0;
    round_up_ = 0.0;
  }

 private:
  double round_down_ = 0.0;
  double round_up_ = 0.0;
  double total_down_ = 0.0;
  double total_up_ = 0.0;
};

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_COMM_TRACKER_H_
