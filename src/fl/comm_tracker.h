#ifndef FEDCROSS_FL_COMM_TRACKER_H_
#define FEDCROSS_FL_COMM_TRACKER_H_

#include <cstdint>

namespace fedcross::fl {

// Accounts the bytes every FL algorithm moves between cloud and clients,
// backing the paper's Table I / Section IV-C3 communication analysis.
// Algorithms call AddDownload for each dispatch (model, control variate,
// generator, ...) and AddUpload for each client upload.
//
// Each direction keeps two exact integer counters: `raw` is the logical
// payload (float count x 4 — what the paper's analysis compares), `wire` is
// the encoded frame size actually produced by the comm/wire.h codec. With
// the identity codec wire exceeds raw only by the frame header; the lossy
// codecs push wire far below raw, and wire/raw is the measured compression
// ratio reported by table1_comm_overhead and the obs round events.
class CommTracker {
 public:
  void AddDownload(std::uint64_t raw_bytes, std::uint64_t wire_bytes) {
    round_down_ += raw_bytes;
    total_down_ += raw_bytes;
    round_wire_down_ += wire_bytes;
    total_wire_down_ += wire_bytes;
  }
  void AddUpload(std::uint64_t raw_bytes, std::uint64_t wire_bytes) {
    round_up_ += raw_bytes;
    total_up_ += raw_bytes;
    round_wire_up_ += wire_bytes;
    total_wire_up_ += wire_bytes;
  }
  // Lost work: bytes that crossed the wire but never reached aggregation —
  // dispatches to clients that dropped out or timed out, and uploads the
  // server screened away or abandoned. Wasted bytes are counted *in
  // addition to* the directional counters above (they are a view of the
  // same traffic, not a third direction), so wasted/wire is the fraction
  // of the round's traffic that bought nothing.
  void AddWasted(std::uint64_t raw_bytes, std::uint64_t wire_bytes) {
    round_wasted_ += raw_bytes;
    total_wasted_ += raw_bytes;
    round_wire_wasted_ += wire_bytes;
    total_wire_wasted_ += wire_bytes;
  }

  // Convenience: a payload of `floats` float32 values.
  static std::uint64_t FloatBytes(std::int64_t floats) {
    return static_cast<std::uint64_t>(floats) * sizeof(float);
  }

  // Per-round counters; reset at round start.
  void BeginRound() {
    round_down_ = 0;
    round_up_ = 0;
    round_wire_down_ = 0;
    round_wire_up_ = 0;
    round_wasted_ = 0;
    round_wire_wasted_ = 0;
  }
  std::uint64_t round_download_bytes() const { return round_down_; }
  std::uint64_t round_upload_bytes() const { return round_up_; }
  std::uint64_t round_wire_download_bytes() const { return round_wire_down_; }
  std::uint64_t round_wire_upload_bytes() const { return round_wire_up_; }
  std::uint64_t round_wasted_bytes() const { return round_wasted_; }
  std::uint64_t round_wire_wasted_bytes() const { return round_wire_wasted_; }

  // Cumulative counters.
  std::uint64_t total_download_bytes() const { return total_down_; }
  std::uint64_t total_upload_bytes() const { return total_up_; }
  std::uint64_t total_wire_download_bytes() const { return total_wire_down_; }
  std::uint64_t total_wire_upload_bytes() const { return total_wire_up_; }
  std::uint64_t total_wasted_bytes() const { return total_wasted_; }
  std::uint64_t total_wire_wasted_bytes() const { return total_wire_wasted_; }

  // Checkpoint restore: resets to the given cumulative totals with the
  // per-round counters cleared. Checkpoints older than FCRS v4 carry no
  // wasted totals; the defaults restart those counters at zero.
  void Restore(std::uint64_t total_down, std::uint64_t total_up,
               std::uint64_t total_wire_down, std::uint64_t total_wire_up,
               std::uint64_t total_wasted = 0,
               std::uint64_t total_wire_wasted = 0) {
    total_down_ = total_down;
    total_up_ = total_up;
    total_wire_down_ = total_wire_down;
    total_wire_up_ = total_wire_up;
    total_wasted_ = total_wasted;
    total_wire_wasted_ = total_wire_wasted;
    BeginRound();
  }

 private:
  std::uint64_t round_down_ = 0;
  std::uint64_t round_up_ = 0;
  std::uint64_t round_wire_down_ = 0;
  std::uint64_t round_wire_up_ = 0;
  std::uint64_t round_wasted_ = 0;
  std::uint64_t round_wire_wasted_ = 0;
  std::uint64_t total_down_ = 0;
  std::uint64_t total_up_ = 0;
  std::uint64_t total_wire_down_ = 0;
  std::uint64_t total_wire_up_ = 0;
  std::uint64_t total_wasted_ = 0;
  std::uint64_t total_wire_wasted_ = 0;
};

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_COMM_TRACKER_H_
