#include "fl/state_store.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/check.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#define FEDCROSS_STATE_STORE_HAS_MMAP 1
#endif

namespace fedcross::fl {
namespace {

constexpr std::int64_t kInitialSlots = 64;

}  // namespace

ClientStateStore::~ClientStateStore() {
#ifdef FEDCROSS_STATE_STORE_HAS_MMAP
  if (map_ != nullptr) {
    ::munmap(map_, static_cast<std::size_t>(slot_capacity_ * slot_floats_ *
                                            static_cast<std::int64_t>(
                                                sizeof(float))));
  }
  if (fd_ >= 0) ::close(fd_);
#endif
}

FlatParams& ClientStateStore::Touch(std::int64_t id) {
  Entry& entry = entries_[id];
  entry.last_touch = ++touch_counter_;
  if (!entry.resident) {
    // A brand-new entry starts empty; a cold one is faulted in from its slot.
    if (entry.slot >= 0) FaultIn(entry);
    entry.resident = true;
    ++resident_;
  }
  return entry.value;
}

bool ClientStateStore::Read(std::int64_t id, FlatParams& out) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    out.clear();
    return false;
  }
  const Entry& entry = it->second;
  if (entry.resident) {
    out = entry.value;
  } else if (entry.slot >= 0) {
    out.resize(static_cast<std::size_t>(slot_floats_));
    std::memcpy(out.data(), SlotData(entry.slot),
                static_cast<std::size_t>(slot_floats_) * sizeof(float));
  } else {
    out.clear();  // spilled while still empty
  }
  return true;
}

void ClientStateStore::BeginBatch() {
  if (options_.max_resident <= 0 || resident_ <= options_.max_resident) {
    return;
  }
  // Keep the max_resident most recently touched entries; spill the rest,
  // oldest first. The scan is O(resident), and resident is bounded by
  // max_resident plus one batch's worth of touches.
  evict_scratch_.clear();
  for (auto& [id, entry] : entries_) {
    if (entry.resident) evict_scratch_.emplace_back(entry.last_touch, id);
  }
  std::sort(evict_scratch_.begin(), evict_scratch_.end());
  std::int64_t excess =
      static_cast<std::int64_t>(evict_scratch_.size()) - options_.max_resident;
  for (std::int64_t i = 0; i < excess; ++i) {
    std::int64_t id = evict_scratch_[static_cast<std::size_t>(i)].second;
    Spill(id, entries_.at(id));
  }
}

std::vector<std::int64_t> ClientStateStore::TouchedIds() const {
  std::vector<std::int64_t> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void ClientStateStore::Clear() {
  entries_.clear();
  resident_ = 0;
  touch_counter_ = 0;
  next_slot_ = 0;  // slots are recycled; the mapping (if any) is kept
}

void ClientStateStore::Spill(std::int64_t id, Entry& entry) {
  FC_CHECK(entry.resident);
  if (!entry.value.empty()) {
#ifdef FEDCROSS_STATE_STORE_HAS_MMAP
    if (slot_floats_ == 0) {
      slot_floats_ = static_cast<std::int64_t>(entry.value.size());
    }
    FC_CHECK_EQ(static_cast<std::int64_t>(entry.value.size()), slot_floats_)
        << "ClientStateStore entries must share one length (client " << id
        << ")";
    if (entry.slot < 0) entry.slot = next_slot_++;
    EnsureSlotCapacity(entry.slot + 1);
    std::memcpy(SlotData(entry.slot), entry.value.data(),
                entry.value.size() * sizeof(float));
    ++spills_;
#else
    return;  // no spill support: keep the entry resident
#endif
  }
  entry.value.clear();
  entry.value.shrink_to_fit();
  entry.resident = false;
  --resident_;
}

void ClientStateStore::FaultIn(Entry& entry) {
  entry.value.resize(static_cast<std::size_t>(slot_floats_));
  std::memcpy(entry.value.data(), SlotData(entry.slot),
              entry.value.size() * sizeof(float));
  ++faultins_;
}

float* ClientStateStore::SlotData(std::int64_t slot) const {
  FC_CHECK(map_ != nullptr);
  FC_CHECK_LT(slot, slot_capacity_);
  return static_cast<float*>(map_) + slot * slot_floats_;
}

void ClientStateStore::EnsureSlotCapacity(std::int64_t slots) {
#ifdef FEDCROSS_STATE_STORE_HAS_MMAP
  if (slots <= slot_capacity_) return;
  if (fd_ < 0) {
    const char* tmpdir = std::getenv("TMPDIR");
    std::string path = (tmpdir != nullptr && *tmpdir != '\0')
                           ? std::string(tmpdir)
                           : std::string("/tmp");
    path += "/fedcross-state-XXXXXX";
    std::vector<char> buf(path.begin(), path.end());
    buf.push_back('\0');
    fd_ = ::mkstemp(buf.data());
    FC_CHECK_GE(fd_, 0) << "cannot create state spill file in " << path;
    // Unlink immediately: the file survives only as long as the fd, so a
    // killed run never leaves spill files behind.
    ::unlink(buf.data());
  }
  std::int64_t want = std::max<std::int64_t>(kInitialSlots, slot_capacity_ * 2);
  while (want < slots) want *= 2;
  std::int64_t bytes =
      want * slot_floats_ * static_cast<std::int64_t>(sizeof(float));
  FC_CHECK_EQ(::ftruncate(fd_, static_cast<off_t>(bytes)), 0)
      << "cannot grow state spill file to " << bytes << " bytes";
  if (map_ != nullptr) {
    ::munmap(map_, static_cast<std::size_t>(slot_capacity_ * slot_floats_ *
                                            static_cast<std::int64_t>(
                                                sizeof(float))));
  }
  map_ = ::mmap(nullptr, static_cast<std::size_t>(bytes),
                PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  FC_CHECK(map_ != MAP_FAILED) << "cannot mmap state spill file";
  slot_capacity_ = want;
#else
  (void)slots;
#endif
}

}  // namespace fedcross::fl
