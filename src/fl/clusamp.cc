#include "fl/clusamp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fl/flat_ops.h"

namespace fedcross::fl {
namespace {

// L2-normalises a vector in place; returns false if it is (near) zero.
bool Normalize(FlatParams& v) {
  double norm = 0.0;
  for (float x : v) norm += static_cast<double>(x) * x;
  norm = std::sqrt(norm);
  if (norm < 1e-12) return false;
  float inv = static_cast<float>(1.0 / norm);
  for (float& x : v) x *= inv;
  return true;
}

}  // namespace

CluSamp::CluSamp(AlgorithmConfig config, data::FederatedDataset data,
                 models::ModelFactory factory, int kmeans_iters)
    : FlAlgorithm("CluSamp", config, std::move(data), std::move(factory)),
      kmeans_iters_(kmeans_iters) {
  global_ = InitialParams();
  client_updates_.Configure(this->config().state_store);
  assignment_.assign(static_cast<std::size_t>(num_clients()), 0);
  // Initial assignment: round-robin (no history yet).
  for (std::int64_t i = 0; i < num_clients(); ++i) {
    assignment_[static_cast<std::size_t>(i)] =
        static_cast<int>(i % config.clients_per_round);
  }
}

void CluSamp::UpdateClusters() {
  int k = config().clients_per_round;
  std::int64_t n = num_clients();
  client_updates_.BeginBatch();  // refs stay valid until the next round

  // Clients with history (ever uploaded a non-zero update) participate in
  // k-means on normalised updates. TouchedIds is ascending, matching the
  // historical dense scan order; Touch pins every entry for this round.
  std::vector<std::int64_t> with_history = client_updates_.TouchedIds();
  std::vector<const FlatParams*> history(with_history.size());
  for (std::size_t h = 0; h < with_history.size(); ++h) {
    history[h] = &client_updates_.Touch(with_history[h]);
  }
  if (static_cast<int>(with_history.size()) >= k) {
    // Seed centroids from k distinct historied clients. The historical
    // full-shuffle draw keeps pre-Floyd goldens bit-compatible.
    FC_CHECK_LE(with_history.size(),
                static_cast<std::size_t>(std::numeric_limits<int>::max()));
    std::vector<FlatParams> centroids;
    std::vector<int> seeds =
        rng().SampleWithoutReplacement(static_cast<int>(with_history.size()), k);
    for (int seed : seeds) centroids.push_back(*history[seed]);

    for (int iter = 0; iter < kmeans_iters_; ++iter) {
      // Assign by max cosine similarity.
      for (std::size_t h = 0; h < with_history.size(); ++h) {
        double best = -2.0;
        int best_cluster = 0;
        for (int c = 0; c < k; ++c) {
          double sim = flat_ops::CosineSimilarity(*history[h], centroids[c]);
          if (sim > best) {
            best = sim;
            best_cluster = c;
          }
        }
        assignment_[static_cast<std::size_t>(with_history[h])] = best_cluster;
      }
      // Recompute centroids as normalised member means.
      std::vector<FlatParams> sums(k, FlatParams(global_.size(), 0.0f));
      std::vector<int> counts(k, 0);
      for (std::size_t h = 0; h < with_history.size(); ++h) {
        int cluster = assignment_[static_cast<std::size_t>(with_history[h])];
        const FlatParams& update = *history[h];
        FlatParams& sum = sums[cluster];
        for (std::size_t j = 0; j < sum.size(); ++j) sum[j] += update[j];
        ++counts[cluster];
      }
      for (int c = 0; c < k; ++c) {
        if (counts[c] == 0) continue;  // keep old centroid
        if (Normalize(sums[c])) centroids[c] = std::move(sums[c]);
      }
    }
  }
  // Clients without history: spread round-robin over clusters.
  std::int64_t next = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (!client_updates_.Contains(i)) {
      assignment_[static_cast<std::size_t>(i)] = static_cast<int>(next++ % k);
    }
  }
  // Guarantee no empty cluster: reassign from the largest cluster.
  std::vector<std::vector<std::int64_t>> members(k);
  for (std::int64_t i = 0; i < n; ++i) {
    members[assignment_[static_cast<std::size_t>(i)]].push_back(i);
  }
  for (int c = 0; c < k; ++c) {
    while (members[c].empty()) {
      int largest = 0;
      for (int d = 1; d < k; ++d) {
        if (members[d].size() > members[largest].size()) largest = d;
      }
      FC_CHECK_GT(members[largest].size(), 1u);
      std::int64_t moved = members[largest].back();
      members[largest].pop_back();
      members[c].push_back(moved);
      assignment_[static_cast<std::size_t>(moved)] = c;
    }
  }
}

void CluSamp::RunRound(int round) {
  int k = config().clients_per_round;
  ClientTrainSpec spec;
  spec.options = config().train;
  std::vector<ClientJob> jobs(k);
  {
    PhaseScope phase(*this, RoundPhase::kDispatch);
    UpdateClusters();

    // One uniformly sampled client per cluster (sampled on the run rng, on
    // the calling thread, before the parallel fan-out).
    std::vector<std::vector<std::int64_t>> members(k);
    for (std::int64_t i = 0; i < num_clients(); ++i) {
      members[assignment_[static_cast<std::size_t>(i)]].push_back(i);
    }
    for (int c = 0; c < k; ++c) {
      FC_CHECK(!members[c].empty());
      jobs[c] = {members[c][rng().UniformInt(members[c].size())], &global_,
                 &spec};
    }
  }
  const std::vector<LocalTrainResult>& results =
      TrainClients(round, /*salt=*/0, jobs);

  std::vector<const FlatParams*> local_models;
  std::vector<double> weights;
  FlatParams update;  // reused scratch across clusters
  // Keyed on result.client_id: async arrivals may belong to an earlier
  // cohort (sync keeps client_id == jobs[c].client_id slot-for-slot).
  for (const LocalTrainResult& result : results) {
    if (result.dropped) continue;  // device failed before uploading

    // Store the (normalised) update direction for the next clustering.
    flat_ops::Subtract(result.params, global_, update);
    if (Normalize(update)) client_updates_.Touch(result.client_id) = update;

    weights.push_back(result.num_samples * result.weight_scale);
    local_models.push_back(&result.params);
  }
  if (local_models.empty()) return;  // every client dropped
  Aggregate(local_models, weights, global_, global_);
}

void CluSamp::SaveExtraState(StateWriter& writer) {
  writer.WriteFloats(global_);
  writer.WriteInts(assignment_);
  if (writer.version() >= 3) {
    // Sparse id-keyed history: only clients that ever uploaded an update.
    std::vector<std::int64_t> ids = client_updates_.TouchedIds();
    writer.WriteU64(ids.size());
    for (std::int64_t id : ids) {
      writer.WriteI64(id);
      FC_CHECK(client_updates_.Read(id, update_scratch_));
      writer.WriteFloats(update_scratch_);
    }
  } else {
    // Dense v2 downgrade: one row per client, empty when no history.
    writer.WriteU64(static_cast<std::uint64_t>(num_clients()));
    for (std::int64_t id = 0; id < num_clients(); ++id) {
      update_scratch_.clear();
      client_updates_.Read(id, update_scratch_);
      writer.WriteFloats(update_scratch_);
    }
  }
}

util::Status CluSamp::LoadExtraState(StateReader& reader) {
  FC_RETURN_IF_ERROR(reader.ReadFloats(global_));
  FC_RETURN_IF_ERROR(reader.ReadInts(assignment_));
  if (assignment_.size() != static_cast<std::size_t>(num_clients())) {
    return util::Status::FailedPrecondition(
        "checkpoint assignment covers " + std::to_string(assignment_.size()) +
        " clients, run has " + std::to_string(num_clients()));
  }
  std::uint64_t count = 0;
  FC_RETURN_IF_ERROR(reader.ReadU64(count));
  client_updates_.Clear();
  if (reader.version() >= 3) {
    std::int64_t prev_id = -1;
    for (std::uint64_t i = 0; i < count; ++i) {
      std::int64_t id = 0;
      FC_RETURN_IF_ERROR(reader.ReadI64(id));
      if (id <= prev_id || id >= num_clients()) {
        return util::Status::InvalidArgument(
            "update-history ids must be ascending and in range");
      }
      prev_id = id;
      FC_RETURN_IF_ERROR(reader.ReadFloats(update_scratch_));
      client_updates_.Touch(id) = update_scratch_;
    }
  } else {
    if (count != static_cast<std::uint64_t>(num_clients())) {
      return util::Status::FailedPrecondition(
          "checkpoint has update history for " + std::to_string(count) +
          " clients, run has " + std::to_string(num_clients()));
    }
    for (std::uint64_t id = 0; id < count; ++id) {
      FC_RETURN_IF_ERROR(reader.ReadFloats(update_scratch_));
      if (!update_scratch_.empty()) {
        client_updates_.Touch(static_cast<std::int64_t>(id)) = update_scratch_;
      }
    }
  }
  return util::Status::Ok();
}

}  // namespace fedcross::fl
