#include "fl/clusamp.h"

#include <algorithm>
#include <cmath>

#include "fl/flat_ops.h"

namespace fedcross::fl {
namespace {

// L2-normalises a vector in place; returns false if it is (near) zero.
bool Normalize(FlatParams& v) {
  double norm = 0.0;
  for (float x : v) norm += static_cast<double>(x) * x;
  norm = std::sqrt(norm);
  if (norm < 1e-12) return false;
  float inv = static_cast<float>(1.0 / norm);
  for (float& x : v) x *= inv;
  return true;
}

}  // namespace

CluSamp::CluSamp(AlgorithmConfig config, data::FederatedDataset data,
                 models::ModelFactory factory, int kmeans_iters)
    : FlAlgorithm("CluSamp", config, std::move(data), std::move(factory)),
      kmeans_iters_(kmeans_iters) {
  global_ = InitialParams();
  client_updates_.assign(num_clients(), FlatParams());
  assignment_.assign(num_clients(), 0);
  // Initial assignment: round-robin (no history yet).
  for (int i = 0; i < num_clients(); ++i) {
    assignment_[i] = i % config.clients_per_round;
  }
}

void CluSamp::UpdateClusters() {
  int k = config().clients_per_round;
  int n = num_clients();

  // Clients with history participate in k-means on normalised updates.
  std::vector<int> with_history;
  for (int i = 0; i < n; ++i) {
    if (!client_updates_[i].empty()) with_history.push_back(i);
  }
  if (static_cast<int>(with_history.size()) >= k) {
    // Seed centroids from k distinct historied clients.
    std::vector<FlatParams> centroids;
    std::vector<int> seeds =
        rng().SampleWithoutReplacement(static_cast<int>(with_history.size()), k);
    for (int seed : seeds) centroids.push_back(client_updates_[with_history[seed]]);

    for (int iter = 0; iter < kmeans_iters_; ++iter) {
      // Assign by max cosine similarity.
      for (int i : with_history) {
        double best = -2.0;
        int best_cluster = 0;
        for (int c = 0; c < k; ++c) {
          double sim = flat_ops::CosineSimilarity(client_updates_[i], centroids[c]);
          if (sim > best) {
            best = sim;
            best_cluster = c;
          }
        }
        assignment_[i] = best_cluster;
      }
      // Recompute centroids as normalised member means.
      std::vector<FlatParams> sums(k, FlatParams(global_.size(), 0.0f));
      std::vector<int> counts(k, 0);
      for (int i : with_history) {
        const FlatParams& update = client_updates_[i];
        FlatParams& sum = sums[assignment_[i]];
        for (std::size_t j = 0; j < sum.size(); ++j) sum[j] += update[j];
        ++counts[assignment_[i]];
      }
      for (int c = 0; c < k; ++c) {
        if (counts[c] == 0) continue;  // keep old centroid
        if (Normalize(sums[c])) centroids[c] = std::move(sums[c]);
      }
    }
  }
  // Clients without history: spread round-robin over clusters.
  int next = 0;
  for (int i = 0; i < n; ++i) {
    if (client_updates_[i].empty()) assignment_[i] = next++ % k;
  }
  // Guarantee no empty cluster: reassign from the largest cluster.
  std::vector<std::vector<int>> members(k);
  for (int i = 0; i < n; ++i) members[assignment_[i]].push_back(i);
  for (int c = 0; c < k; ++c) {
    while (members[c].empty()) {
      int largest = 0;
      for (int d = 1; d < k; ++d) {
        if (members[d].size() > members[largest].size()) largest = d;
      }
      FC_CHECK_GT(members[largest].size(), 1u);
      int moved = members[largest].back();
      members[largest].pop_back();
      members[c].push_back(moved);
      assignment_[moved] = c;
    }
  }
}

void CluSamp::RunRound(int round) {
  int k = config().clients_per_round;
  ClientTrainSpec spec;
  spec.options = config().train;
  std::vector<ClientJob> jobs(k);
  {
    PhaseScope phase(*this, RoundPhase::kDispatch);
    UpdateClusters();

    // One uniformly sampled client per cluster (sampled on the run rng, on
    // the calling thread, before the parallel fan-out).
    std::vector<std::vector<int>> members(k);
    for (int i = 0; i < num_clients(); ++i) {
      members[assignment_[i]].push_back(i);
    }
    for (int c = 0; c < k; ++c) {
      FC_CHECK(!members[c].empty());
      jobs[c] = {members[c][rng().UniformInt(members[c].size())], &global_,
                 &spec};
    }
  }
  const std::vector<LocalTrainResult>& results =
      TrainClients(round, /*salt=*/0, jobs);

  std::vector<const FlatParams*> local_models;
  std::vector<double> weights;
  FlatParams update;  // reused scratch across clusters
  for (int c = 0; c < k; ++c) {
    const LocalTrainResult& result = results[c];
    if (result.dropped) continue;  // device failed before uploading

    // Store the (normalised) update direction for the next clustering.
    flat_ops::Subtract(result.params, global_, update);
    if (Normalize(update)) client_updates_[jobs[c].client_id] = update;

    weights.push_back(result.num_samples);
    local_models.push_back(&result.params);
  }
  if (local_models.empty()) return;  // every client dropped
  Aggregate(local_models, weights, global_, global_);
}

void CluSamp::SaveExtraState(StateWriter& writer) {
  writer.WriteFloats(global_);
  writer.WriteInts(assignment_);
  writer.WriteU64(client_updates_.size());
  for (const FlatParams& update : client_updates_) writer.WriteFloats(update);
}

util::Status CluSamp::LoadExtraState(StateReader& reader) {
  FC_RETURN_IF_ERROR(reader.ReadFloats(global_));
  FC_RETURN_IF_ERROR(reader.ReadInts(assignment_));
  std::uint64_t count = 0;
  FC_RETURN_IF_ERROR(reader.ReadU64(count));
  if (count != client_updates_.size() ||
      assignment_.size() != client_updates_.size()) {
    return util::Status::FailedPrecondition(
        "checkpoint has update history for " + std::to_string(count) +
        " clients, run has " + std::to_string(client_updates_.size()));
  }
  for (FlatParams& update : client_updates_) {
    FC_RETURN_IF_ERROR(reader.ReadFloats(update));
  }
  return util::Status::Ok();
}

}  // namespace fedcross::fl
