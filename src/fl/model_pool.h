#ifndef FEDCROSS_FL_MODEL_POOL_H_
#define FEDCROSS_FL_MODEL_POOL_H_

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "models/model_zoo.h"
#include "nn/loss.h"
#include "nn/plan.h"
#include "nn/sequential.h"
#include "optim/sgd.h"
#include "tensor/tensor.h"

namespace fedcross::fl {

// A pool of model replicas seeded from one ModelFactory. Client training
// jobs and the evaluator check a replica out instead of rebuilding the model
// (and all of its layer buffers) per job; at steady state a round performs
// zero tensor heap allocations.
//
// Checkout contract: Acquire() returns a replica whose observable behaviour
// is identical to a freshly constructed factory() model *after* the caller
// overwrites its parameters (ParamsFromFlat). Acquire resets all
// non-parameter layer state (e.g. dropout RNG streams) via
// Sequential::ResetState, so a recycled replica and a fresh model produce
// bit-identical outputs given the same parameters and inputs.
//
// Thread safety: Acquire/checkin are mutex-protected; concurrent jobs each
// hold a distinct replica. The pool grows to the high-water mark of
// concurrently outstanding leases and never shrinks.
class ModelPool {
 public:
  // A checked-out replica: the model plus per-job scratch buffers that ride
  // along so their capacity is recycled with the model.
  struct Replica {
    nn::Sequential model;
    std::unique_ptr<optim::Sgd> sgd;  // built lazily over model's params
    nn::LossResult loss;              // criterion output / softmax scratch
    Tensor features;                  // mini-batch features
    std::vector<int> labels;          // mini-batch labels
    std::vector<int> batch_indices;   // evaluator batch index scratch
    // Execution-plan state per input shape (the epoch-tail short batch gets
    // its own entry). Arenas ride along with the replica, so plan-mode
    // rounds reuse them allocation-free once warm.
    std::map<Tensor::Shape, nn::plan::PlanState> plan_states;
  };

  // RAII lease: returns the replica to the pool on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(ModelPool* pool, std::unique_ptr<Replica> replica)
        : pool_(pool), replica_(std::move(replica)) {}
    Lease(Lease&& other) noexcept = default;
    Lease& operator=(Lease&& other) noexcept {
      Reset();
      pool_ = other.pool_;
      replica_ = std::move(other.replica_);
      other.pool_ = nullptr;
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Reset(); }

    Replica& operator*() const { return *replica_; }
    Replica* operator->() const { return replica_.get(); }
    explicit operator bool() const { return replica_ != nullptr; }

   private:
    void Reset();

    ModelPool* pool_ = nullptr;
    std::unique_ptr<Replica> replica_;
  };

  explicit ModelPool(models::ModelFactory factory);

  // Checks a replica out, constructing one from the factory only when the
  // free list is empty. The replica's non-parameter state is reset; its
  // parameters are whatever the previous user left (callers overwrite them
  // with ParamsFromFlat before use).
  Lease Acquire();

  // Total replicas ever constructed (== high-water mark of concurrent
  // leases). Exposed for tests and diagnostics.
  std::size_t replicas_created() const;

  // Replicas currently sitting in the free list.
  std::size_t available() const;

  // The compiled execution plan for `input_shape`, or nullptr when the
  // pooled topology is unsupported by the plan runtime. `probe` must be a
  // replica of this pool's architecture; it is only inspected (dynamic
  // casts and shape walks), never mutated. Programs compile once per
  // distinct input shape and are cached for the pool's lifetime; returned
  // pointers stay valid until the pool is destroyed. Thread-safe.
  const nn::plan::Program* ProgramFor(const Tensor::Shape& input_shape,
                                      nn::Sequential& probe);

  // Whether the pooled topology compiles to an execution plan at
  // `input_shape`. Shares ProgramFor's memoised cache (including the
  // present-but-null negative entries), so repeated probes cost one map
  // lookup; a cache miss borrows a pooled replica internally instead of
  // building a throwaway model. Thread-safe.
  bool SupportsPlan(const Tensor::Shape& input_shape);

 private:
  friend class Lease;

  void Release(std::unique_ptr<Replica> replica);

  models::ModelFactory factory_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Replica>> free_;
  std::size_t created_ = 0;
  // Plan cache: present-but-null marks a shape whose compile failed
  // (unsupported topology), so the answer is memoised either way.
  std::mutex plan_mutex_;
  std::map<Tensor::Shape, std::unique_ptr<nn::plan::Program>> programs_;
};

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_MODEL_POOL_H_
