#include "fl/fedavg.h"

namespace fedcross::fl {

FedAvg::FedAvg(AlgorithmConfig config, data::FederatedDataset data,
               models::ModelFactory factory, std::string name)
    : FlAlgorithm(std::move(name), config, std::move(data),
                  std::move(factory)) {
  nn::Sequential initial = this->factory()();
  global_ = initial.ParamsToFlat();
}

ClientTrainSpec FedAvg::MakeClientSpec() const {
  ClientTrainSpec spec;
  spec.options = config().train;
  return spec;
}

void FedAvg::RunRound(int round) {
  (void)round;
  std::vector<int> selected = SampleClients();
  std::vector<FlatParams> local_models;
  std::vector<double> weights;
  local_models.reserve(selected.size());
  weights.reserve(selected.size());

  ClientTrainSpec spec = MakeClientSpec();
  for (int client_id : selected) {
    LocalTrainResult result = TrainClient(client_id, global_, spec);
    if (result.dropped) continue;  // device failed before uploading
    weights.push_back(result.num_samples);
    local_models.push_back(std::move(result.params));
  }
  if (local_models.empty()) return;  // every client dropped: keep the model
  global_ = WeightedAverage(local_models, weights);
}

FedProx::FedProx(AlgorithmConfig config, data::FederatedDataset data,
                 models::ModelFactory factory, float mu)
    : FedAvg(config, std::move(data), std::move(factory), "FedProx"),
      mu_(mu) {
  FC_CHECK_GE(mu, 0.0f);
}

ClientTrainSpec FedProx::MakeClientSpec() const {
  ClientTrainSpec spec = FedAvg::MakeClientSpec();
  spec.prox_anchor = &global_;
  spec.prox_mu = mu_;
  return spec;
}

}  // namespace fedcross::fl
