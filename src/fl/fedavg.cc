#include "fl/fedavg.h"

namespace fedcross::fl {

FedAvg::FedAvg(AlgorithmConfig config, data::FederatedDataset data,
               models::ModelFactory factory, std::string name)
    : FlAlgorithm(std::move(name), config, std::move(data),
                  std::move(factory)) {
  global_ = InitialParams();
}

ClientTrainSpec FedAvg::MakeClientSpec() const {
  ClientTrainSpec spec;
  spec.options = config().train;
  return spec;
}

void FedAvg::RunRound(int round) {
  std::vector<std::int64_t> selected;
  ClientTrainSpec spec = MakeClientSpec();
  std::vector<ClientJob> jobs;
  {
    PhaseScope phase(*this, RoundPhase::kDispatch);
    selected = SampleClients();
    jobs.resize(selected.size());
    for (std::size_t i = 0; i < selected.size(); ++i) {
      jobs[i] = {selected[i], &global_, &spec};
    }
  }
  const std::vector<LocalTrainResult>& results =
      TrainClients(round, /*salt=*/0, jobs);

  // Aggregate over pointers into the (recycled) results: no params copies.
  std::vector<const FlatParams*> local_models;
  std::vector<double> weights;
  local_models.reserve(results.size());
  weights.reserve(results.size());
  for (const LocalTrainResult& result : results) {
    if (result.dropped) continue;  // device failed before uploading
    // Staleness-scaled sample weight: scale is exactly 1.0 in sync mode, so
    // the product is bit-identical to the historical integer weight.
    weights.push_back(result.num_samples * result.weight_scale);
    local_models.push_back(&result.params);
  }
  if (local_models.empty()) return;  // every client dropped: keep the model
  Aggregate(local_models, weights, global_, global_);
}

void FedAvg::SaveExtraState(StateWriter& writer) {
  writer.WriteFloats(global_);
}

util::Status FedAvg::LoadExtraState(StateReader& reader) {
  FlatParams global;
  FC_RETURN_IF_ERROR(reader.ReadFloats(global));
  if (global.size() != global_.size()) {
    return util::Status::FailedPrecondition(
        "checkpointed global model has " + std::to_string(global.size()) +
        " params, model expects " + std::to_string(global_.size()));
  }
  global_ = std::move(global);
  return util::Status::Ok();
}

FedProx::FedProx(AlgorithmConfig config, data::FederatedDataset data,
                 models::ModelFactory factory, float mu)
    : FedAvg(config, std::move(data), std::move(factory), "FedProx"),
      mu_(mu) {
  FC_CHECK_GE(mu, 0.0f);
}

ClientTrainSpec FedProx::MakeClientSpec() const {
  ClientTrainSpec spec = FedAvg::MakeClientSpec();
  spec.prox_anchor = &global_;
  spec.prox_mu = mu_;
  return spec;
}

}  // namespace fedcross::fl
