#include "fl/evaluator.h"

#include <algorithm>
#include <numeric>

#include "fl/parallel.h"
#include "nn/loss.h"

namespace fedcross::fl {
namespace {

// Runs batches [batch_begin, batch_end) of the dataset through one replica
// and records each batch's (summed loss, correct count) at its batch index.
// Per-batch results are pure functions of (params, batch contents), so any
// partition of the batch range across replicas yields the same per-batch
// values; the caller's in-order reduction then makes the total independent
// of the thread count.
void EvalBatchRange(ModelPool::Replica& replica, const data::Dataset& dataset,
                    int batch_size, int batch_begin, int batch_end,
                    std::vector<double>& batch_loss,
                    std::vector<int>& batch_correct) {
  nn::CrossEntropyLoss criterion;
  int total = dataset.size();
  std::vector<int>& indices = replica.batch_indices;
  for (int batch = batch_begin; batch < batch_end; ++batch) {
    int start = batch * batch_size;
    int end = std::min(start + batch_size, total);
    indices.resize(end - start);
    std::iota(indices.begin(), indices.end(), start);
    dataset.GetBatch(indices, replica.features, replica.labels);
    const Tensor& logits = replica.model.Forward(replica.features,
                                                 /*train=*/false);
    criterion.Compute(logits, replica.labels, replica.loss,
                      /*compute_grad=*/false);
    batch_loss[batch] = static_cast<double>(replica.loss.loss) * (end - start);
    batch_correct[batch] = replica.loss.correct;
  }
}

}  // namespace

EvalResult EvaluateModel(nn::Sequential& model, const data::Dataset& dataset,
                         int batch_size) {
  FC_CHECK_GT(batch_size, 0);
  nn::CrossEntropyLoss criterion;
  nn::LossResult loss;
  Tensor features;
  std::vector<int> labels;
  double total_loss = 0.0;
  int total_correct = 0;
  int total = dataset.size();

  std::vector<int> indices;
  for (int start = 0; start < total; start += batch_size) {
    int end = std::min(start + batch_size, total);
    indices.resize(end - start);
    std::iota(indices.begin(), indices.end(), start);
    dataset.GetBatch(indices, features, labels);
    const Tensor& logits = model.Forward(features, /*train=*/false);
    criterion.Compute(logits, labels, loss, /*compute_grad=*/false);
    total_loss += static_cast<double>(loss.loss) * (end - start);
    total_correct += loss.correct;
  }

  EvalResult result;
  result.loss = total > 0 ? static_cast<float>(total_loss / total) : 0.0f;
  result.accuracy =
      total > 0 ? static_cast<float>(total_correct) / total : 0.0f;
  return result;
}

EvalResult EvaluateParams(ModelPool& pool, const FlatParams& params,
                          const data::Dataset& dataset, int batch_size) {
  FC_CHECK_GT(batch_size, 0);
  int total = dataset.size();
  if (total == 0) return EvalResult{};
  int num_batches = (total + batch_size - 1) / batch_size;

  util::ThreadPool* workers = AcquireFlPool();
  int shards = 1;
  if (workers != nullptr) {
    shards = std::min(workers->num_threads(), num_batches);
  }

  // Per-batch partials, indexed by batch number regardless of which shard
  // produced them.
  std::vector<double> batch_loss(num_batches, 0.0);
  std::vector<int> batch_correct(num_batches, 0);

  if (shards <= 1) {
    ModelPool::Lease lease = pool.Acquire();
    lease->model.ParamsFromFlat(params);
    EvalBatchRange(*lease, dataset, batch_size, 0, num_batches, batch_loss,
                   batch_correct);
  } else {
    // Contiguous batch shards: shard s gets batches [s*per + min(s, extra) +
    // ...) — each worker slot checks out its own replica.
    int per_shard = num_batches / shards;
    int extra = num_batches % shards;
    workers->ParallelFor(shards, [&](int shard) {
      int begin = shard * per_shard + std::min(shard, extra);
      int end = begin + per_shard + (shard < extra ? 1 : 0);
      ModelPool::Lease lease = pool.Acquire();
      lease->model.ParamsFromFlat(params);
      EvalBatchRange(*lease, dataset, batch_size, begin, end, batch_loss,
                     batch_correct);
    });
  }

  // Reduce in batch order with double accumulation: the summation order is
  // fixed by construction, never by thread scheduling.
  double total_loss = 0.0;
  int total_correct = 0;
  for (int batch = 0; batch < num_batches; ++batch) {
    total_loss += batch_loss[batch];
    total_correct += batch_correct[batch];
  }

  EvalResult result;
  result.loss = static_cast<float>(total_loss / total);
  result.accuracy = static_cast<float>(total_correct) / total;
  return result;
}

EvalResult EvaluateParams(const models::ModelFactory& factory,
                          const FlatParams& params,
                          const data::Dataset& dataset, int batch_size) {
  nn::Sequential model = factory();
  model.ParamsFromFlat(params);
  return EvaluateModel(model, dataset, batch_size);
}

}  // namespace fedcross::fl
