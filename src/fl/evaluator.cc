#include "fl/evaluator.h"

#include <numeric>

#include "nn/loss.h"

namespace fedcross::fl {

EvalResult EvaluateModel(nn::Sequential& model, const data::Dataset& dataset,
                         int batch_size) {
  FC_CHECK_GT(batch_size, 0);
  nn::CrossEntropyLoss criterion;
  Tensor features;
  std::vector<int> labels;
  double total_loss = 0.0;
  int total_correct = 0;
  int total = dataset.size();

  std::vector<int> indices;
  for (int start = 0; start < total; start += batch_size) {
    int end = std::min(start + batch_size, total);
    indices.resize(end - start);
    std::iota(indices.begin(), indices.end(), start);
    dataset.GetBatch(indices, features, labels);
    Tensor logits = model.Forward(features, /*train=*/false);
    nn::LossResult loss =
        criterion.Compute(logits, labels, /*compute_grad=*/false);
    total_loss += static_cast<double>(loss.loss) * (end - start);
    total_correct += loss.correct;
  }

  EvalResult result;
  result.loss = total > 0 ? static_cast<float>(total_loss / total) : 0.0f;
  result.accuracy =
      total > 0 ? static_cast<float>(total_correct) / total : 0.0f;
  return result;
}

EvalResult EvaluateParams(const models::ModelFactory& factory,
                          const FlatParams& params,
                          const data::Dataset& dataset, int batch_size) {
  nn::Sequential model = factory();
  model.ParamsFromFlat(params);
  return EvaluateModel(model, dataset, batch_size);
}

}  // namespace fedcross::fl
