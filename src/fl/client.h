#ifndef FEDCROSS_FL_CLIENT_H_
#define FEDCROSS_FL_CLIENT_H_

#include <memory>

#include "data/dataset.h"
#include "fl/faults.h"
#include "fl/model_pool.h"
#include "fl/types.h"
#include "models/model_zoo.h"
#include "util/rng.h"

namespace fedcross::fl {

// Extra ingredients some algorithms inject into local training.
struct ClientTrainSpec {
  TrainOptions options;

  // FedProx: adds (prox_mu/2)*||w - anchor||^2 to the local objective,
  // i.e. prox_mu*(w - anchor) to every gradient step.
  const FlatParams* prox_anchor = nullptr;
  float prox_mu = 0.0f;

  // SCAFFOLD: per-step flat gradient correction (c - c_i) added to the
  // model gradient, implementing the variance-reduced local update.
  const FlatParams* scaffold_correction = nullptr;

  // FedGen-style augmentation: synthetic examples mixed into each epoch,
  // loss-weighted by augment_weight.
  const data::Dataset* augment_data = nullptr;
  float augment_weight = 1.0f;
  int augment_batches_per_epoch = 1;
};

// Outcome of one client's local training.
struct LocalTrainResult {
  FlatParams params;        // trained model
  int num_samples = 0;      // |D_i|, the FedAvg aggregation weight
  int num_steps = 0;        // SGD steps taken (used by SCAFFOLD's c_i update)
  float lr = 0.0f;          // learning rate used
  double mean_loss = 0.0;   // mean training loss over all steps
  // Measured wire-frame sizes for this client's round (comm/wire.h codec):
  // the dispatch frame it received and the upload frame it produced (0 when
  // the upload never happened). Filled by FlAlgorithm::TrainClientJob.
  std::uint64_t wire_bytes_down = 0;
  std::uint64_t wire_bytes_up = 0;
  // True if the round produced no usable upload (dropout, straggler
  // timeout, or server-side rejection): params echo the dispatched model
  // and the client is excluded from aggregation.
  bool dropped = false;
  // What, if anything, went wrong (see fl/faults.h).
  FaultKind fault = FaultKind::kNone;

  // --- Filled by FlAlgorithm around Train (never by FlClient itself) ---
  // Which client and dispatch slot produced this result. In sync mode slot
  // s holds job s's result (client_id == jobs[s].client_id); in async mode
  // results arrive buffer-ordered, so algorithms must key on these instead
  // of positional job metadata.
  std::int64_t client_id = -1;
  int slot = 0;
  // Async-engine provenance: the global model version this job was
  // dispatched against, its staleness tau = versions aggregated since, and
  // the staleness weight multiplier applied on top of num_samples. Sync
  // mode keeps staleness 0 and weight_scale exactly 1.0, so
  // `num_samples * weight_scale` is bit-identical to the historical
  // integer weight.
  std::int64_t dispatch_version = 0;
  int staleness = 0;
  double weight_scale = 1.0;
  // Straggler slowdown factor drawn for this job (1.0 when none fired);
  // feeds the virtual clock's compute term.
  double slowdown = 1.0;
  // The upload left the device mangled (fl/faults.h corruption). Kept
  // separate from `fault` because a later screening rejection overwrites
  // it, and the async engine still counts the corruption at arrival.
  bool upload_corrupt = false;
  // The DP mechanism (privacy/dp.h) scaled this upload's update down to the
  // clipping bound. Counted when the upload reaches the server — at the
  // sync screen loop, or at arrival for a buffered async upload (so it
  // rides the in-flight checkpoint table, FCRS v5).
  bool dp_clipped = false;
};

// A simulated device: owns a training shard and can run local SGD on any
// dispatched model. Stateless across rounds (SCAFFOLD's c_i lives in the
// server, keyed by client id, mirroring the usual simulation setup).
class FlClient {
 public:
  FlClient(std::int64_t id, std::shared_ptr<const data::Dataset> dataset);

  std::int64_t id() const { return id_; }
  int num_samples() const { return dataset_->size(); }
  const data::Dataset& dataset() const { return *dataset_; }

  // Trains a pooled model replica initialised from `init_params` for
  // spec.options.local_epochs epochs, writing into `result` (whose buffers
  // are recycled round-over-round: at steady state this performs zero
  // tensor heap allocations). `rng` drives batch shuffling (forked
  // internally so client runs are reproducible). Resets every result field,
  // including dropped = false.
  void Train(ModelPool& pool, const FlatParams& init_params,
             const ClientTrainSpec& spec, util::Rng& rng,
             LocalTrainResult& result) const;

  // Convenience overload: trains a fresh factory-built model and returns
  // the result by value. Equivalent to the pooled overload with a one-shot
  // pool (bit-identical results); kept for tests and standalone callers.
  LocalTrainResult Train(const models::ModelFactory& factory,
                         const FlatParams& init_params,
                         const ClientTrainSpec& spec, util::Rng& rng) const;

 private:
  std::int64_t id_;
  std::shared_ptr<const data::Dataset> dataset_;
};

namespace detail {

// Adds the FedProx proximal gradient and/or the SCAFFOLD correction to
// freshly computed model gradients, walking the flat-offset layout. One
// compiled definition shared by the layer-path trainer and the execution-
// plan runner, so both paths apply bit-identical adjustments.
void AdjustGradients(nn::Sequential& model, const ClientTrainSpec& spec);

}  // namespace detail

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_CLIENT_H_
