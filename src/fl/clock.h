#ifndef FEDCROSS_FL_CLOCK_H_
#define FEDCROSS_FL_CLOCK_H_

#include <cstdint>
#include <string>

#include "fl/types.h"
#include "util/rng.h"

namespace fedcross::fl {

// ---------------------------------------------------------------------------
// Deterministic virtual clock
//
// The engine simulates wall time instead of measuring it: every dispatched
// client job gets a simulated duration
//
//   duration = wire_bytes_down / bandwidth
//            + slowdown * sgd_steps / compute_speed * jitter
//            + wire_bytes_up / bandwidth
//
// where (compute_speed, bandwidth) are a per-client hardware profile drawn
// as a pure function of (run seed, client id), slowdown is the straggler
// factor from the fault stream, the wire byte counts are the real framed
// codec sizes, and jitter comes from a dedicated ClockSeed(seed, round,
// salt, slot) stream. Nothing here reads a real clock, so virtual time is
// bit-identical across --fl_threads values and across reruns — and because
// the clock stream is independent of the training / fault / codec streams,
// enabling the clock cannot perturb a single training trajectory.
// ---------------------------------------------------------------------------

// How rounds advance (see FlAlgorithm::Run).
//   kSync:  the historical lock-step barrier — every sampled client reports
//           before aggregation; the virtual clock only observes the round
//           makespan (max over slots). Bit-identical to pre-engine builds.
//   kAsync: buffered FedBuff-style aggregation — the server aggregates as
//           soon as `buffer_size` uploads land, weighting each by its
//           staleness, and re-dispatches every slot against the newest
//           model version.
enum class RoundMode { kSync = 0, kAsync };

const char* RoundModeName(RoundMode mode);
bool ParseRoundMode(const std::string& name, RoundMode* mode);

// Down-weighting of stale uploads in async mode, as a function of the
// staleness tau = aggregations since the upload's model version was
// dispatched (tau = 0 for a fresh upload).
//   kConstant:   weight 1 regardless of tau (plain FedBuff averaging).
//   kPolynomial: weight (1 + tau)^-exponent (FedBuff's recommended family).
enum class StalenessPolicy { kConstant = 0, kPolynomial };

const char* StalenessPolicyName(StalenessPolicy policy);
bool ParseStalenessPolicy(const std::string& name, StalenessPolicy* policy);

// Weight multiplier for an upload of staleness `tau` (exactly 1.0 at
// tau = 0 under both policies, so fresh uploads aggregate unscaled).
double StalenessWeight(StalenessPolicy policy, double exponent, int tau);

// The population's hardware-heterogeneity model. Speeds are SGD steps per
// virtual second; bandwidths are wire bytes per virtual second. Both are
// drawn log-uniformly over [min, max] per client, so the defaults (min ==
// max) give a homogeneous fleet whose rounds take unit-scale virtual time
// and whose comm time is negligible.
struct ClockModel {
  double compute_speed_min = 100.0;
  double compute_speed_max = 100.0;
  double bandwidth_min = 1e9;
  double bandwidth_max = 1e9;
  // Per-dispatch multiplicative compute jitter: the drawn factor is uniform
  // in [1, 1 + jitter]. 0 disables (and draws nothing from the stream).
  double jitter = 0.0;

  bool Heterogeneous() const {
    return compute_speed_min != compute_speed_max ||
           bandwidth_min != bandwidth_max || jitter > 0.0;
  }
};

// One client's drawn hardware profile.
struct ClockProfile {
  double compute_speed = 100.0;  // SGD steps per virtual second
  double bandwidth = 1e9;        // wire bytes per virtual second
};

// Draws the client's profile as a pure function of (seed, client_id):
// stable across rounds, reruns and thread counts, and independent of every
// other RNG stream.
ClockProfile DrawClockProfile(const ClockModel& model, std::uint64_t seed,
                              std::int64_t client_id);

// Seeds the per-dispatch clock-jitter stream. Tagged differently from the
// training / fault / codec derivations so the streams never collide.
std::uint64_t ClockSeed(std::uint64_t seed, int round, int salt, int slot);

// Simulated duration of one completed dispatch: comm both ways at the
// client's bandwidth plus `slowdown * steps` work at its compute speed,
// with `jitter_factor` multiplying the compute term only.
double SimulatedDuration(const ClockProfile& profile, double slowdown,
                         double steps, std::uint64_t wire_bytes_down,
                         std::uint64_t wire_bytes_up, double jitter_factor);

// Configuration of the buffered-async engine (AlgorithmConfig::async).
struct AsyncOptions {
  RoundMode mode = RoundMode::kSync;

  // Uploads to buffer before aggregating. 0 = this round's dispatch count
  // (so a fault-free async round aggregates the same K uploads sync does).
  int buffer_size = 0;

  StalenessPolicy staleness = StalenessPolicy::kPolynomial;
  double staleness_exponent = 0.5;

  // Per-dispatch deadline in virtual seconds. A dispatch whose simulated
  // duration exceeds it is abandoned at the deadline and the slot is
  // re-dispatched (against the same round's model) up to max_retries
  // times; the abandoned attempt's bytes count as wasted. <= 0 waits
  // forever (stragglers land late instead of timing out).
  double dispatch_timeout = 0.0;
  int max_retries = 1;

  ClockModel clock;
};

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_CLOCK_H_
