#include "fl/history.h"

#include <algorithm>

#include "util/csv_writer.h"

namespace fedcross::fl {

float MetricsHistory::BestAccuracy() const {
  float best = 0.0f;
  for (const RoundRecord& record : records_) {
    best = std::max(best, record.test_accuracy);
  }
  return best;
}

float MetricsHistory::FinalAccuracy(int window) const {
  if (records_.empty()) return 0.0f;
  int count = std::min<int>(window, static_cast<int>(records_.size()));
  double total = 0.0;
  for (int i = static_cast<int>(records_.size()) - count;
       i < static_cast<int>(records_.size()); ++i) {
    total += records_[i].test_accuracy;
  }
  return static_cast<float>(total / count);
}

int MetricsHistory::RoundsToAccuracy(float target) const {
  for (const RoundRecord& record : records_) {
    if (record.test_accuracy >= target) return record.round;
  }
  return -1;
}

util::Status MetricsHistory::WriteCsv(const std::string& path,
                                      const std::string& series_name) const {
  util::CsvWriter csv(path);
  if (!csv.ok()) return util::Status::Internal("cannot open " + path);
  csv.WriteRow({"series", "round", "test_accuracy", "test_loss", "bytes_up",
                "bytes_down", "client_loss"});
  for (const RoundRecord& record : records_) {
    csv.WriteRow({series_name, util::CsvWriter::Field(record.round),
                  util::CsvWriter::Field(record.test_accuracy),
                  util::CsvWriter::Field(record.test_loss),
                  util::CsvWriter::Field(record.bytes_up),
                  util::CsvWriter::Field(record.bytes_down),
                  util::CsvWriter::Field(record.mean_client_loss)});
  }
  return util::Status::Ok();
}

}  // namespace fedcross::fl
