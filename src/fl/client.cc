#include "fl/client.h"

#include <optional>

#include "data/dataloader.h"
#include "fl/plan_runner.h"
#include "nn/loss.h"
#include "obs/trace.h"
#include "optim/sgd.h"

namespace fedcross::fl {
namespace detail {

void AdjustGradients(nn::Sequential& model, const ClientTrainSpec& spec) {
  if (spec.prox_anchor == nullptr && spec.scaffold_correction == nullptr) {
    return;
  }
  std::size_t offset = 0;
  for (nn::Param* param : model.Params()) {
    float* grad = param->grad.data();
    const float* value = param->value.data();
    std::int64_t count = param->value.numel();
    if (spec.prox_anchor != nullptr) {
      const float* anchor = spec.prox_anchor->data() + offset;
      for (std::int64_t j = 0; j < count; ++j) {
        grad[j] += spec.prox_mu * (value[j] - anchor[j]);
      }
    }
    if (spec.scaffold_correction != nullptr) {
      const float* correction = spec.scaffold_correction->data() + offset;
      for (std::int64_t j = 0; j < count; ++j) grad[j] += correction[j];
    }
    offset += count;
  }
}

}  // namespace detail

FlClient::FlClient(std::int64_t id,
                   std::shared_ptr<const data::Dataset> dataset)
    : id_(id), dataset_(std::move(dataset)) {
  FC_CHECK(dataset_ != nullptr);
  FC_CHECK_GT(dataset_->size(), 0) << "client " << id << " has no data";
}

void FlClient::Train(ModelPool& pool, const FlatParams& init_params,
                     const ClientTrainSpec& spec, util::Rng& rng,
                     LocalTrainResult& result) const {
  FC_TRACE_SPAN_ARG("client.train", id_);
  if (spec.options.exec == ExecMode::kPlan) {
    // Plan-mode single job: a lockstep batch of one. RunPlanJobs falls back
    // here with exec rewritten to kLayers when the topology is unsupported.
    PlanJob job;
    job.client = this;
    job.init_params = &init_params;
    job.spec = &spec;
    job.rng = &rng;
    job.result = &result;
    RunPlanJobs(pool, &job, 1);
    return;
  }
  ModelPool::Lease lease = pool.Acquire();
  ModelPool::Replica& replica = *lease;
  nn::Sequential& model = replica.model;
  model.ParamsFromFlat(init_params);

  optim::SgdOptions sgd_options;
  sgd_options.lr = spec.options.lr;
  sgd_options.momentum = spec.options.momentum;
  sgd_options.weight_decay = spec.options.weight_decay;
  sgd_options.grad_clip_norm = spec.options.grad_clip_norm;
  if (replica.sgd == nullptr) {
    replica.sgd = std::make_unique<optim::Sgd>(model.Params(), sgd_options);
  } else {
    // Re-arm the pooled optimiser: same options semantics as construction,
    // momentum buffers zeroed in place.
    replica.sgd->Configure(sgd_options);
  }
  optim::Sgd& sgd = *replica.sgd;

  util::Rng data_rng = rng.Fork(static_cast<std::uint64_t>(id_) + 1);
  data::DataLoader loader(*dataset_, spec.options.batch_size, data_rng);
  std::optional<data::DataLoader> augment_loader;
  if (spec.augment_data != nullptr && spec.augment_data->size() > 0) {
    augment_loader.emplace(*spec.augment_data, spec.options.batch_size,
                           data_rng);
  }

  nn::CrossEntropyLoss criterion;
  Tensor& features = replica.features;
  std::vector<int>& labels = replica.labels;
  nn::LossResult& loss = replica.loss;
  double total_loss = 0.0;
  int steps = 0;

  for (int epoch = 0; epoch < spec.options.local_epochs; ++epoch) {
    while (loader.NextBatch(features, labels)) {
      model.ZeroGrad();
      const Tensor& logits = model.Forward(features, /*train=*/true);
      criterion.Compute(logits, labels, loss);
      model.Backward(loss.grad_logits);
      detail::AdjustGradients(model, spec);
      sgd.Step();
      total_loss += loss.loss;
      ++steps;
    }
    loader.Reset();

    // FedGen-style synthetic augmentation: a few weighted batches of
    // generator data per epoch, reusing the main loop's batch buffers.
    if (augment_loader.has_value()) {
      for (int b = 0; b < spec.augment_batches_per_epoch; ++b) {
        if (!augment_loader->NextBatch(features, labels)) {
          augment_loader->Reset();
          if (!augment_loader->NextBatch(features, labels)) break;
        }
        model.ZeroGrad();
        const Tensor& logits = model.Forward(features, /*train=*/true);
        criterion.Compute(logits, labels, loss);
        loss.grad_logits.Scale(spec.augment_weight);
        model.Backward(loss.grad_logits);
        detail::AdjustGradients(model, spec);
        sgd.Step();
      }
    }
  }

  model.ParamsToFlat(result.params);
  result.num_samples = dataset_->size();
  result.num_steps = steps;
  result.lr = spec.options.lr;
  result.mean_loss = steps > 0 ? total_loss / steps : 0.0;
  result.dropped = false;
  result.fault = FaultKind::kNone;
}

LocalTrainResult FlClient::Train(const models::ModelFactory& factory,
                                 const FlatParams& init_params,
                                 const ClientTrainSpec& spec,
                                 util::Rng& rng) const {
  ModelPool pool(factory);
  LocalTrainResult result;
  Train(pool, init_params, spec, rng, result);
  return result;
}

}  // namespace fedcross::fl
