#include "fl/client.h"

#include "data/dataloader.h"
#include "nn/loss.h"
#include "optim/sgd.h"

namespace fedcross::fl {
namespace {

// Adds the FedProx proximal gradient and/or the SCAFFOLD correction to the
// freshly computed model gradients, walking the flat-offset layout.
void AdjustGradients(nn::Sequential& model, const ClientTrainSpec& spec) {
  if (spec.prox_anchor == nullptr && spec.scaffold_correction == nullptr) {
    return;
  }
  std::size_t offset = 0;
  for (nn::Param* param : model.Params()) {
    float* grad = param->grad.data();
    const float* value = param->value.data();
    std::int64_t count = param->value.numel();
    if (spec.prox_anchor != nullptr) {
      const float* anchor = spec.prox_anchor->data() + offset;
      for (std::int64_t j = 0; j < count; ++j) {
        grad[j] += spec.prox_mu * (value[j] - anchor[j]);
      }
    }
    if (spec.scaffold_correction != nullptr) {
      const float* correction = spec.scaffold_correction->data() + offset;
      for (std::int64_t j = 0; j < count; ++j) grad[j] += correction[j];
    }
    offset += count;
  }
}

}  // namespace

FlClient::FlClient(int id, std::shared_ptr<const data::Dataset> dataset)
    : id_(id), dataset_(std::move(dataset)) {
  FC_CHECK(dataset_ != nullptr);
  FC_CHECK_GT(dataset_->size(), 0) << "client " << id << " has no data";
}

LocalTrainResult FlClient::Train(const models::ModelFactory& factory,
                                 const FlatParams& init_params,
                                 const ClientTrainSpec& spec,
                                 util::Rng& rng) const {
  nn::Sequential model = factory();
  model.ParamsFromFlat(init_params);

  optim::SgdOptions sgd_options;
  sgd_options.lr = spec.options.lr;
  sgd_options.momentum = spec.options.momentum;
  sgd_options.weight_decay = spec.options.weight_decay;
  sgd_options.grad_clip_norm = spec.options.grad_clip_norm;
  optim::Sgd sgd(model.Params(), sgd_options);

  util::Rng data_rng = rng.Fork(static_cast<std::uint64_t>(id_) + 1);
  data::DataLoader loader(*dataset_, spec.options.batch_size, data_rng);
  std::unique_ptr<data::DataLoader> augment_loader;
  if (spec.augment_data != nullptr && spec.augment_data->size() > 0) {
    augment_loader = std::make_unique<data::DataLoader>(
        *spec.augment_data, spec.options.batch_size, data_rng);
  }

  nn::CrossEntropyLoss criterion;
  Tensor features;
  std::vector<int> labels;
  double total_loss = 0.0;
  int steps = 0;

  for (int epoch = 0; epoch < spec.options.local_epochs; ++epoch) {
    while (loader.NextBatch(features, labels)) {
      model.ZeroGrad();
      Tensor logits = model.Forward(features, /*train=*/true);
      nn::LossResult loss = criterion.Compute(logits, labels);
      model.Backward(loss.grad_logits);
      AdjustGradients(model, spec);
      sgd.Step();
      total_loss += loss.loss;
      ++steps;
    }
    loader.Reset();

    // FedGen-style synthetic augmentation: a few weighted batches of
    // generator data per epoch.
    if (augment_loader != nullptr) {
      for (int b = 0; b < spec.augment_batches_per_epoch; ++b) {
        if (!augment_loader->NextBatch(features, labels)) {
          augment_loader->Reset();
          if (!augment_loader->NextBatch(features, labels)) break;
        }
        model.ZeroGrad();
        Tensor logits = model.Forward(features, /*train=*/true);
        nn::LossResult loss = criterion.Compute(logits, labels);
        loss.grad_logits.Scale(spec.augment_weight);
        model.Backward(loss.grad_logits);
        AdjustGradients(model, spec);
        sgd.Step();
      }
    }
  }

  LocalTrainResult result;
  result.params = model.ParamsToFlat();
  result.num_samples = dataset_->size();
  result.num_steps = steps;
  result.lr = spec.options.lr;
  result.mean_loss = steps > 0 ? total_loss / steps : 0.0;
  return result;
}

}  // namespace fedcross::fl
