#ifndef FEDCROSS_FL_PLAN_RUNNER_H_
#define FEDCROSS_FL_PLAN_RUNNER_H_

#include "fl/client.h"
#include "fl/model_pool.h"
#include "fl/types.h"
#include "util/rng.h"

namespace fedcross::fl {

// One client's local-training job for the execution-plan runner. All
// pointed-to data must stay valid until RunPlanJobs returns; `rng` is the
// job's own training stream (the same object the layer path would fork),
// consumed identically so both paths draw the same bits.
struct PlanJob {
  const FlClient* client = nullptr;
  const FlatParams* init_params = nullptr;
  const ClientTrainSpec* spec = nullptr;
  util::Rng* rng = nullptr;
  LocalTrainResult* result = nullptr;
};

// Trains `count` jobs in lockstep on the execution-plan runtime: every job
// holds a pooled replica, advances one mini-batch per step, and steps whose
// batches share a shape are fused so each GEMM runs once across all of them
// (ops::GemmGrouped). Each job's parameter trajectory, loss accounting and
// RNG consumption are bit-identical to FlClient::Train's layer path. When
// the pooled topology has no plan (LSTM, residual, ...), every job falls
// back to the layer path transparently. Thread-compatible: concurrent calls
// on disjoint job ranges share only the (internally locked) pool.
void RunPlanJobs(ModelPool& pool, const PlanJob* jobs, int count);

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_PLAN_RUNNER_H_
