#ifndef FEDCROSS_FL_TYPES_H_
#define FEDCROSS_FL_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fedcross::fl {

// A model's parameters as one flat float vector — the unit that crosses the
// (simulated) network and that all aggregation rules operate on.
using FlatParams = std::vector<float>;

// How local SGD executes. kLayers walks Layer::Forward/Backward per model
// (the historical path). kPlan compiles the model once into a static
// execution plan (nn/plan.h) and runs all of a round's replicas in
// lockstep, fusing each GEMM across replicas into one grouped call. Both
// modes train bit-identically at every --fl_threads value. The whole model
// zoo compiles — MLP/CNN/VGG straight lines, ResNet residual blocks, the
// Embedding+LSTM head — so the per-job kLayers fallback is reserved for
// future layer kinds (e.g. batch-norm). Not part of the checkpoint
// fingerprint: a run may switch modes across resume boundaries.
enum class ExecMode { kLayers = 0, kPlan = 1 };

// --exec flag plumbing for the example binaries.
inline bool ParseExecMode(const std::string& name, ExecMode* out) {
  if (name == "layers") {
    *out = ExecMode::kLayers;
    return true;
  }
  if (name == "plan") {
    *out = ExecMode::kPlan;
    return true;
  }
  return false;
}

inline const char* ExecModeName(ExecMode mode) {
  return mode == ExecMode::kPlan ? "plan" : "layers";
}

// Client-side local training hyperparameters. Defaults follow the paper's
// experimental settings (Section IV-A): B=50, E=5 epochs, SGD lr=0.01 with
// momentum 0.5.
struct TrainOptions {
  int local_epochs = 5;
  int batch_size = 50;
  float lr = 0.01f;
  float momentum = 0.5f;
  float weight_decay = 0.0f;
  float grad_clip_norm = 5.0f;  // stabilises small-width CPU models
  ExecMode exec = ExecMode::kLayers;
  // Plan mode only: store replica activation arenas as bfloat16 (packed on
  // write with round-to-nearest-even, computed in fp32), roughly halving
  // pooled replica memory. Master weights, gradients and optimizer state
  // stay fp32. Training remains deterministic across --fl_threads but is
  // NOT bit-identical to fp32 runs, so the flag perturbs the checkpoint
  // config fingerprint.
  bool plan_bf16 = false;
};

// Test-set metrics of one global model.
struct EvalResult {
  float loss = 0.0f;
  float accuracy = 0.0f;  // fraction in [0, 1]
};

// One FL round's record, kept by MetricsHistory.
struct RoundRecord {
  int round = 0;
  float test_loss = 0.0f;
  float test_accuracy = 0.0f;
  double bytes_up = 0.0;
  double bytes_down = 0.0;
  double mean_client_loss = 0.0;
};

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_TYPES_H_
