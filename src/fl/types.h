#ifndef FEDCROSS_FL_TYPES_H_
#define FEDCROSS_FL_TYPES_H_

#include <cstdint>
#include <vector>

namespace fedcross::fl {

// A model's parameters as one flat float vector — the unit that crosses the
// (simulated) network and that all aggregation rules operate on.
using FlatParams = std::vector<float>;

// Client-side local training hyperparameters. Defaults follow the paper's
// experimental settings (Section IV-A): B=50, E=5 epochs, SGD lr=0.01 with
// momentum 0.5.
struct TrainOptions {
  int local_epochs = 5;
  int batch_size = 50;
  float lr = 0.01f;
  float momentum = 0.5f;
  float weight_decay = 0.0f;
  float grad_clip_norm = 5.0f;  // stabilises small-width CPU models
};

// Test-set metrics of one global model.
struct EvalResult {
  float loss = 0.0f;
  float accuracy = 0.0f;  // fraction in [0, 1]
};

// One FL round's record, kept by MetricsHistory.
struct RoundRecord {
  int round = 0;
  float test_loss = 0.0f;
  float test_accuracy = 0.0f;
  double bytes_up = 0.0;
  double bytes_down = 0.0;
  double mean_client_loss = 0.0;
};

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_TYPES_H_
