#ifndef FEDCROSS_FL_AGGREGATORS_H_
#define FEDCROSS_FL_AGGREGATORS_H_

#include <string>
#include <vector>

#include "fl/types.h"
#include "util/status.h"

namespace fedcross::fl {

// Pluggable server-side aggregation rules. The default (sample-weighted
// mean) is FedAvg's rule and is byte-for-byte the pre-existing path; the
// robust rules bound the influence of corrupted or Byzantine uploads that
// slip past screening. Selected through AlgorithmConfig::aggregator; every
// mean-style algorithm (FedAvg, FedProx, SCAFFOLD, FedGen, CluSamp,
// FedCluster) dispatches through FlAlgorithm::Aggregate. FedCross's
// pairwise cross-aggregation is not a mean and keeps its own rule.
enum class AggregatorKind {
  kWeightedMean,      // sum-weighted average (the FedAvg default)
  kTrimmedMean,       // coordinate-wise trimmed mean (unweighted)
  kCoordinateMedian,  // coordinate-wise median (unweighted)
  kNormClippedMean,   // weighted mean of norm-clipped updates
};

const char* AggregatorKindName(AggregatorKind kind);
util::StatusOr<AggregatorKind> ParseAggregatorKind(const std::string& name);

struct AggregatorOptions {
  AggregatorKind kind = AggregatorKind::kWeightedMean;
  double trim_ratio = 0.2;   // fraction trimmed from EACH end (trimmed mean)
  float clip_norm = 10.0f;   // per-update L2 clip (norm-clipped mean)
};

// Coordinate-wise trimmed mean: per coordinate, drop the floor(trim_ratio*n)
// smallest and largest values (clamped so at least one survives) and average
// the rest. `column` is caller-provided scratch (resized to n) so the round
// loop stays allocation-free; `out` is resized capacity-retaining.
void TrimmedMeanInto(const std::vector<const FlatParams*>& models,
                     double trim_ratio, FlatParams& column, FlatParams& out);

// Coordinate-wise median (mean of the two middle values for even n).
void CoordinateMedianInto(const std::vector<const FlatParams*>& models,
                          FlatParams& column, FlatParams& out);

// Weighted mean of updates clipped to clip_norm around `reference` (the
// dispatched model):
//   out = reference + sum_i (w_i / W) * min(1, clip/||m_i - ref||) * (m_i - ref)
// Safe when `out` aliases `reference`; `scratch` is caller-provided.
void NormClippedWeightedAverageInto(
    const std::vector<const FlatParams*>& models,
    const std::vector<double>& weights, const FlatParams& reference,
    float clip_norm, FlatParams& scratch, FlatParams& out);

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_AGGREGATORS_H_
