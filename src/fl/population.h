#ifndef FEDCROSS_FL_POPULATION_H_
#define FEDCROSS_FL_POPULATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "fl/client.h"

namespace fedcross::fl {

// How the registered client population is held in memory.
//   kResident — every FlClient and its shard lives in RAM for the whole run
//               (the historical layout; memory is O(N)).
//   kVirtual  — registration stores only a count; a client materialises from
//               the federation's shard factory when a round first touches it
//               and is dropped again a batch later, so memory tracks the
//               sampled cohort (~K), not the registered population (N).
// Shard factories are pure in the client id, so the two modes train
// bit-identically; the mode is not part of the checkpoint fingerprint.
enum class PopulationMode { kResident = 0, kVirtual = 1 };

// --population flag plumbing for the example binaries.
bool ParsePopulationMode(const std::string& name, PopulationMode* out);
const char* PopulationModeName(PopulationMode mode);

// Which distinct-sampling routine SampleClients uses. kFullShuffle is the
// historical partial-Fisher-Yates draw sequence (O(N) per round, kept for
// bit-compat with existing seeds); kFloyd is Floyd's O(K) algorithm whose
// cost is independent of N. Both consume the same run RNG but produce
// different (equally uniform) draw sequences. kAuto picks kFullShuffle for
// resident populations and kFloyd for virtual ones.
enum class ClientSampler { kAuto = 0, kFullShuffle = 1, kFloyd = 2 };

// The client population behind FlAlgorithm: ids [0, size()) plus on-demand
// access to each client's FlClient. Construction consumes the federation's
// client data (shards or the shard factory); the test set and metadata are
// left untouched for the caller.
//
// Not thread-safe: Client() and BeginBatch() run on the coordinating thread
// only. TrainClients resolves per-slot FlClient pointers before its parallel
// fan-out, so workers never touch the cache.
class ClientPopulation {
 public:
  ClientPopulation(PopulationMode mode, data::FederatedDataset& data);

  std::int64_t size() const { return size_; }
  PopulationMode mode() const { return mode_; }

  // The client, materialising its shard in virtual mode. The reference (and
  // the shard behind it) stays valid until the second BeginBatch() after the
  // last Client(id) call — entries survive one full batch beyond the one
  // that touched them, so post-training reads within the same round (e.g.
  // FedGen's label counts) hit the cache.
  const FlClient& Client(std::int64_t id);

  // Advances the batch epoch and releases virtual clients that were last
  // touched before the previous epoch. No-op for resident populations.
  void BeginBatch();

  // Clients currently held in RAM: N when resident, the cache size when
  // virtual. Exported as the fl.population.resident_clients gauge.
  std::int64_t resident_clients() const {
    return mode_ == PopulationMode::kResident
               ? size_
               : static_cast<std::int64_t>(cache_.size());
  }

  // Cumulative shard materialisations (virtual mode), for tests and gauges.
  std::int64_t materializations() const { return materializations_; }

 private:
  struct CacheEntry {
    FlClient client;
    std::uint64_t epoch;
  };

  PopulationMode mode_;
  std::int64_t size_ = 0;
  std::vector<FlClient> clients_;  // resident mode
  data::ShardFactory make_shard_;  // virtual mode
  std::unordered_map<std::int64_t, CacheEntry> cache_;
  std::uint64_t epoch_ = 0;
  std::int64_t materializations_ = 0;
};

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_POPULATION_H_
