#include "fl/scaffold.h"

#include "fl/flat_ops.h"

namespace fedcross::fl {

Scaffold::Scaffold(AlgorithmConfig config, data::FederatedDataset data,
                   models::ModelFactory factory)
    : FlAlgorithm("SCAFFOLD", config, std::move(data), std::move(factory)) {
  global_ = InitialParams();
  server_c_.assign(global_.size(), 0.0f);
  client_c_.Configure(this->config().state_store);
}

void Scaffold::RunRound(int round) {
  std::vector<std::int64_t> selected;
  std::vector<FlatParams> corrections;
  std::vector<ClientTrainSpec> specs;
  std::vector<ClientJob> jobs;
  int count = 0;
  {
    PhaseScope phase(*this, RoundPhase::kDispatch);
    selected = SampleClients();
    count = static_cast<int>(selected.size());
    client_c_.BeginBatch();  // evicts only here: refs stay valid all round

    // Materialise every client's per-step correction c - c_i before the
    // (possibly parallel) training fan-out; the buffers must stay stable for
    // its whole duration.
    corrections.resize(count);
    specs.resize(count);
    jobs.resize(count);
    for (int i = 0; i < count; ++i) {
      FlatParams& c_i = client_c_.Touch(selected[i]);
      if (c_i.empty()) c_i.assign(global_.size(), 0.0f);
      flat_ops::Subtract(server_c_, c_i, corrections[i]);
      specs[i].options = config().train;
      specs[i].scaffold_correction = &corrections[i];
      jobs[i] = {selected[i], &global_, &specs[i]};
    }
  }
  const std::vector<LocalTrainResult>& results =
      TrainClients(round, /*salt=*/0, jobs);

  std::vector<const FlatParams*> local_models;
  std::vector<double> weights;
  FlatParams c_delta_sum(global_.size(), 0.0f);
  // Keyed on result.client_id, not the slot: async arrivals may belong to
  // an earlier round's cohort (sync keeps client_id == selected[i], so this
  // is the historical walk bit-for-bit).
  for (const LocalTrainResult& result : results) {
    if (result.dropped) continue;  // no upload, no variate update
    // Variate traffic: one variate down (c), one up (c_i+). Variates move
    // outside the model codec, so wire == raw for this side channel.
    comm().AddDownload(CommTracker::FloatBytes(model_size()),
                       CommTracker::FloatBytes(model_size()));
    comm().AddUpload(CommTracker::FloatBytes(model_size()),
                     CommTracker::FloatBytes(model_size()));

    // Option II variate update.
    FlatParams& c_i = client_c_.Touch(result.client_id);
    if (c_i.empty()) c_i.assign(global_.size(), 0.0f);
    float inv_step =
        result.num_steps > 0 ? 1.0f / (result.num_steps * result.lr) : 0.0f;
    for (std::size_t j = 0; j < c_i.size(); ++j) {
      float c_new =
          c_i[j] - server_c_[j] + (global_[j] - result.params[j]) * inv_step;
      c_delta_sum[j] += c_new - c_i[j];
      c_i[j] = c_new;
    }

    weights.push_back(result.num_samples * result.weight_scale);
    local_models.push_back(&result.params);
  }

  if (local_models.empty()) return;  // every client dropped
  Aggregate(local_models, weights, global_, global_);
  // c += (|S| / N) * mean_i(c_i+ - c_i), over the clients that uploaded.
  flat_ops::Axpy(server_c_, 1.0f / static_cast<float>(num_clients()),
                 c_delta_sum);
}

void Scaffold::SaveExtraState(StateWriter& writer) {
  writer.WriteFloats(global_);
  writer.WriteFloats(server_c_);
  if (writer.version() >= 3) {
    // Sparse id-keyed table: only clients that were ever selected carry a
    // variate. Spilled entries round-trip through Read.
    std::vector<std::int64_t> ids = client_c_.TouchedIds();
    writer.WriteU64(ids.size());
    for (std::int64_t id : ids) {
      writer.WriteI64(id);
      FC_CHECK(client_c_.Read(id, c_scratch_));
      writer.WriteFloats(c_scratch_);
    }
  } else {
    // Dense v2 downgrade: one row per client, empty for never-selected.
    writer.WriteU64(static_cast<std::uint64_t>(num_clients()));
    for (std::int64_t id = 0; id < num_clients(); ++id) {
      c_scratch_.clear();
      client_c_.Read(id, c_scratch_);
      writer.WriteFloats(c_scratch_);
    }
  }
}

util::Status Scaffold::LoadExtraState(StateReader& reader) {
  FC_RETURN_IF_ERROR(reader.ReadFloats(global_));
  FC_RETURN_IF_ERROR(reader.ReadFloats(server_c_));
  std::uint64_t count = 0;
  FC_RETURN_IF_ERROR(reader.ReadU64(count));
  client_c_.Clear();
  if (reader.version() >= 3) {
    std::int64_t prev_id = -1;
    for (std::uint64_t i = 0; i < count; ++i) {
      std::int64_t id = 0;
      FC_RETURN_IF_ERROR(reader.ReadI64(id));
      if (id <= prev_id || id >= num_clients()) {
        return util::Status::InvalidArgument(
            "variate table ids must be ascending and in range");
      }
      prev_id = id;
      FC_RETURN_IF_ERROR(reader.ReadFloats(c_scratch_));
      client_c_.Touch(id) = c_scratch_;
    }
  } else {
    if (count != static_cast<std::uint64_t>(num_clients())) {
      return util::Status::FailedPrecondition(
          "checkpoint has variates for " + std::to_string(count) +
          " clients, run has " + std::to_string(num_clients()));
    }
    for (std::uint64_t id = 0; id < count; ++id) {
      FC_RETURN_IF_ERROR(reader.ReadFloats(c_scratch_));
      if (!c_scratch_.empty()) {
        client_c_.Touch(static_cast<std::int64_t>(id)) = c_scratch_;
      }
    }
  }
  return util::Status::Ok();
}

}  // namespace fedcross::fl
