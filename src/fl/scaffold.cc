#include "fl/scaffold.h"

namespace fedcross::fl {

Scaffold::Scaffold(AlgorithmConfig config, data::FederatedDataset data,
                   models::ModelFactory factory)
    : FlAlgorithm("SCAFFOLD", config, std::move(data), std::move(factory)) {
  nn::Sequential initial = this->factory()();
  global_ = initial.ParamsToFlat();
  server_c_.assign(global_.size(), 0.0f);
  client_c_.assign(num_clients(), FlatParams());
}

void Scaffold::RunRound(int round) {
  (void)round;
  std::vector<int> selected = SampleClients();
  std::vector<FlatParams> local_models;
  std::vector<double> weights;
  FlatParams c_delta_sum(global_.size(), 0.0f);

  for (int client_id : selected) {
    FlatParams& c_i = client_c_[client_id];
    if (c_i.empty()) c_i.assign(global_.size(), 0.0f);

    // Per-step correction c - c_i.
    FlatParams correction(global_.size());
    for (std::size_t j = 0; j < correction.size(); ++j) {
      correction[j] = server_c_[j] - c_i[j];
    }

    ClientTrainSpec spec;
    spec.options = config().train;
    spec.scaffold_correction = &correction;
    LocalTrainResult result = TrainClient(client_id, global_, spec);
    if (result.dropped) continue;  // no upload, no variate update
    // Variate traffic: one variate down (c), one up (c_i+).
    comm().AddDownload(CommTracker::FloatBytes(model_size()));
    comm().AddUpload(CommTracker::FloatBytes(model_size()));

    // Option II variate update.
    float inv_step =
        result.num_steps > 0 ? 1.0f / (result.num_steps * result.lr) : 0.0f;
    for (std::size_t j = 0; j < c_i.size(); ++j) {
      float c_new =
          c_i[j] - server_c_[j] + (global_[j] - result.params[j]) * inv_step;
      c_delta_sum[j] += c_new - c_i[j];
      c_i[j] = c_new;
    }

    weights.push_back(result.num_samples);
    local_models.push_back(std::move(result.params));
  }

  if (local_models.empty()) return;  // every client dropped
  global_ = WeightedAverage(local_models, weights);
  // c += (|S| / N) * mean_i(c_i+ - c_i), over the clients that uploaded.
  float scale = 1.0f / static_cast<float>(num_clients());
  for (std::size_t j = 0; j < server_c_.size(); ++j) {
    server_c_[j] += scale * c_delta_sum[j];
  }
}

}  // namespace fedcross::fl
