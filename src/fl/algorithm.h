#ifndef FEDCROSS_FL_ALGORITHM_H_
#define FEDCROSS_FL_ALGORITHM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "comm/wire.h"
#include "data/dataset.h"
#include "fl/aggregators.h"
#include "fl/checkpoint.h"
#include "fl/client.h"
#include "fl/clock.h"
#include "fl/comm_tracker.h"
#include "fl/evaluator.h"
#include "fl/faults.h"
#include "fl/history.h"
#include "fl/model_pool.h"
#include "fl/parallel.h"  // SetFlThreads / FlThreads
#include "fl/population.h"
#include "fl/privacy.h"
#include "fl/state_store.h"
#include "fl/types.h"
#include "models/model_zoo.h"
#include "privacy/accountant.h"
#include "privacy/masking.h"
#include "util/rng.h"
#include "util/status.h"

namespace fedcross::fl {

// Shared configuration for all FL algorithms.
struct AlgorithmConfig {
  int clients_per_round = 10;  // K; the paper activates 10% of N clients
  TrainOptions train;
  std::uint64_t seed = 42;
  int eval_batch_size = 100;

  // Legacy shorthand for faults.profile.dropout_prob (kept so existing
  // callers keep working); merged into `faults` at construction.
  double dropout_prob = 0.0;

  // Fault injection (see fl/faults.h): per-client dropout / straggler /
  // corrupted-upload profiles, drawn from a dedicated fault RNG stream so
  // enabling faults never perturbs surviving clients' training and results
  // stay bit-identical across thread counts. All disabled by default.
  FaultModel faults;

  // Server-side upload screening: finite-check plus update-norm gate.
  // Rejected uploads degrade exactly like dropouts. Disabled by default.
  ScreeningOptions screening;

  // Server aggregation rule for the mean-style algorithms (see
  // fl/aggregators.h). Defaults to the classic sample-weighted mean.
  AggregatorOptions aggregator;

  // Differential privacy: clip-and-noise applied to every client upload
  // (see privacy/dp.h). Noise rides a dedicated per-(round, salt, slot)
  // privacy stream, so DP-enabled runs stay bit-identical across
  // --fl_threads; when noise_multiplier > 0 the subsampled-Gaussian RDP
  // accountant composes eps(delta) across rounds at the actual sampling
  // rate K/N. clip_norm <= 0 disables.
  DpOptions dp;

  // Secure-aggregation-style pairwise masking (see privacy/masking.h): the
  // server sum is recomputed in a fixed-point domain under seed-derived
  // pairwise masks and checked to unmask exactly, with dropped members'
  // masks recovered from surviving peers' pair seeds. Verification overlay:
  // the float aggregation path is untouched, so enabling masking is
  // bit-identical to a masking-off run. Disabled by default.
  privacy::MaskOptions secure_agg;

  // Wire codec for the communication path (see comm/wire.h). Every
  // dispatch and upload round-trips through the framed codec; the default
  // identity scheme is bit-identical to uncoded training, while the lossy
  // schemes (int8 / topk / int8_topk) compress the uplink under per-client
  // error feedback. Stochastic rounding draws come from a dedicated
  // per-(round, client) RNG stream, so every scheme stays bit-identical
  // across --fl_threads values.
  comm::CodecOptions codec;

  // Client-population residency (see fl/population.h). kResident keeps the
  // historical everything-in-RAM layout; kVirtual materialises a sampled
  // client's shard on first touch each round and drops it a batch later, so
  // peak memory is flat in the registered population size. Shard factories
  // are pure in the client id, so both modes train bit-identically; the
  // mode is not part of the checkpoint fingerprint and may change across a
  // resume.
  PopulationMode population = PopulationMode::kResident;

  // Distinct-sampling routine for SampleClients. kAuto keeps the historical
  // full-shuffle draw sequence on resident populations (bit-compat with
  // existing seeds) and switches to Floyd's O(K) sampler on virtual ones;
  // set explicitly to pin one sampler regardless of population mode.
  ClientSampler sampler = ClientSampler::kAuto;

  // Residency cap for cold per-client state (codec error-feedback
  // residuals, SCAFFOLD control variates, CluSamp update history). The
  // default keeps everything in RAM; a positive max_resident spills
  // least-recently-used entries to an mmap-backed temp file between rounds
  // (bit-identical either way; see fl/state_store.h).
  StateStoreOptions state_store;

  // Virtual-clock event engine (see fl/clock.h): round mode (lock-step sync
  // vs buffered async), staleness weighting, per-dispatch timeout + retry
  // budget, and the population's simulated hardware-heterogeneity model.
  // The default (sync, homogeneous clock) is bit-identical to pre-engine
  // builds; in sync mode the clock only *observes* the round makespan.
  AsyncOptions async;
};

// Cumulative per-run privacy accounting, kept by FlAlgorithm alongside
// FaultStats: uploads the DP mechanism clipped, pairwise masks the
// secure-aggregation overlay applied, and dangling masks it recovered from
// dropped members' pair seeds.
struct PrivacyStats {
  std::int64_t clipped = 0;
  std::int64_t mask_pairs = 0;
  std::int64_t mask_recoveries = 0;
};

// Base class of every FL algorithm in the repository (the five baselines in
// src/fl plus FedCross in src/core). Owns the simulated clients, the global
// test set, communication accounting and the metrics history; subclasses
// implement one training round and expose their deployable global model.
class FlAlgorithm {
 public:
  FlAlgorithm(std::string name, AlgorithmConfig config,
              data::FederatedDataset data, models::ModelFactory factory);
  virtual ~FlAlgorithm() = default;

  FlAlgorithm(const FlAlgorithm&) = delete;
  FlAlgorithm& operator=(const FlAlgorithm&) = delete;

  // Executes one FL round: client sampling, local training, aggregation.
  // Communication must be logged through comm(). `round` is 0-based.
  virtual void RunRound(int round) = 0;

  // The deployable global model (for FedCross: the average of the
  // middleware models, generated on demand).
  virtual FlatParams GlobalParams() = 0;

  // Driver: runs rounds [completed_rounds(), rounds), evaluating the global
  // model on the test set every `eval_every` rounds and recording a
  // RoundRecord. Returns the accumulated history. On a freshly constructed
  // instance this runs all `rounds` rounds; after LoadCheckpoint it resumes
  // where the checkpoint left off and produces a history bit-identical to
  // an uninterrupted run.
  const MetricsHistory& Run(int rounds, int eval_every = 1,
                            bool verbose = false);

  // Rounds completed by Run() so far (restored by LoadCheckpoint).
  int completed_rounds() const { return completed_rounds_; }

  // Checkpoint/resume. SaveCheckpoint serialises the full training state —
  // config fingerprint, completed rounds, run RNG state, communication
  // totals, fault statistics, metrics history, and the subclass model state
  // — atomically (tmp file + rename). LoadCheckpoint restores it into a
  // freshly constructed instance of the *same* configuration; a fingerprint
  // mismatch returns FailedPrecondition, truncated or malformed files
  // return InvalidArgument. On a non-OK load the training state is
  // unspecified: construct a fresh instance before retrying.
  util::Status SaveCheckpoint(const std::string& path);
  // Writes a downgraded checkpoint in an older format version (>= 2), e.g.
  // to hand a run to a build that predates the sparse v3 state tables.
  util::Status SaveCheckpoint(const std::string& path, std::uint32_t version);
  util::Status LoadCheckpoint(const std::string& path);

  // Enables periodic checkpointing inside Run(): the training state is
  // saved to `path` after every `every_rounds` completed rounds and after
  // the final round. `every_rounds <= 0` disables.
  void EnableAutoCheckpoint(std::string path, int every_rounds);

  // Cumulative fault accounting (dropouts, stragglers, corrupted uploads,
  // server-side rejections) across the whole run.
  const FaultStats& fault_stats() const { return fault_stats_; }

  // Cumulative privacy accounting (DP clips, mask pairs, mask recoveries).
  const PrivacyStats& privacy_stats() const { return privacy_stats_; }

  // The RDP ledger behind privacy_epsilon(); restored bit-exactly by
  // LoadCheckpoint (FCRS v5).
  const privacy::RdpAccountant& accountant() const { return accountant_; }

  // eps(config.dp.delta) spent so far under the subsampled-Gaussian RDP
  // accountant: 0 before any noised aggregation, +infinity if a round ever
  // ran with clipping but no noise. Deterministic in the run config — the
  // same value at every --fl_threads.
  double privacy_epsilon() const {
    return accountant_.Epsilon(config_.dp.delta);
  }

  const std::string& name() const { return name_; }
  // 64-bit: virtual populations register far more clients than int holds.
  std::int64_t num_clients() const { return population_.size(); }
  std::int64_t model_size() const { return model_size_; }
  // Per-tensor element counts of the flattened model — what every wire
  // frame carries and validates.
  const comm::ShapeTable& shape_table() const { return shape_table_; }
  const MetricsHistory& history() const { return history_; }
  CommTracker& comm() { return comm_; }
  const data::Dataset& test_set() const { return *test_; }
  const models::ModelFactory& factory() const { return factory_; }

  // Evaluates arbitrary flat params on the held-out test set.
  EvalResult Evaluate(const FlatParams& params);

  // Population statistics (mode, resident count) for observability.
  const ClientPopulation& population() const { return population_; }

  // Virtual-clock engine state (fl/clock.h): simulated seconds elapsed,
  // aggregations performed (the global model's version), and dispatches
  // whose outcome the server has not yet consumed (always 0 in sync mode).
  // All three are deterministic: bit-identical across --fl_threads values.
  double virtual_now() const { return virtual_now_; }
  std::int64_t model_version() const { return model_version_; }
  std::int64_t inflight_dispatches() const {
    return static_cast<std::int64_t>(inflight_.size());
  }

 protected:
  const AlgorithmConfig& config() const { return config_; }
  util::Rng& rng() { return rng_; }
  // Materialises the client in virtual mode; the reference stays valid
  // until the second TrainClients call after this one (see
  // ClientPopulation::Client).
  const FlClient& client(std::int64_t id) { return population_.Client(id); }

  // The phases a round decomposes into for observability. The base class
  // times kTrain/kScreen (TrainClients), kAggregate (Aggregate), kEval and
  // kCheckpoint (Run); subclasses wrap their sampling / job construction in
  // a kDispatch scope, and bespoke aggregation (FedCross's cross-aggregation)
  // in a kAggregate scope.
  enum class RoundPhase {
    kDispatch = 0,
    kTrain,
    kScreen,
    kAggregate,
    kEval,
    kCheckpoint,
  };
  static constexpr int kNumRoundPhases = 6;

  // RAII phase timer: accumulates elapsed wall-ms into the current round's
  // per-phase totals (exported in the round event) and, when tracing is on,
  // records a span named after the phase. When no observability sink is
  // active the constructor reduces to three relaxed atomic loads and the
  // destructor to one branch — no clock reads on unobserved runs.
  class PhaseScope {
   public:
    PhaseScope(FlAlgorithm& algo, RoundPhase phase);
    ~PhaseScope();

    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

   private:
    FlAlgorithm* algo_ = nullptr;  // null: observability off, dtor no-ops
    RoundPhase phase_ = RoundPhase::kDispatch;
    std::int64_t start_us_ = 0;
  };

  // Samples K distinct client ids uniformly (the paper's random selection),
  // plus faults.over_provision extras (capped at N) when over-provisioned
  // selection is enabled. The draw routine follows config().sampler: the
  // historical full shuffle (O(N)) or Floyd's algorithm (O(K)).
  std::vector<std::int64_t> SampleClients();

  // One client-training job of a round: which client, which dispatched
  // model, and the algorithm-specific training ingredients. The pointed-to
  // data must stay valid (and unmodified) until TrainClients returns.
  struct ClientJob {
    std::int64_t client_id = -1;
    const FlatParams* init_params = nullptr;
    const ClientTrainSpec* spec = nullptr;
  };

  // Runs every job's local training — in parallel across the shared pool
  // when SetFlThreads allows — and returns the results in job order. Each
  // job trains under an independent Rng seeded deterministically from
  // (config.seed, round, salt, slot), so the outcome is bit-identical
  // regardless of thread count or schedule. `salt` distinguishes multiple
  // batches issued within one round (e.g. FedCluster's per-cluster steps).
  // Model down/up traffic and the round's mean client loss are accounted on
  // the calling thread, in job order.
  //
  // Under RoundMode::kAsync this delegates to the buffered event engine:
  // every job is dispatched against the current model version, and the
  // returned results are the next `buffer_size` *arrivals* in virtual-time
  // order — possibly stragglers from earlier rounds, possibly fewer than
  // jobs.size(), never positionally aligned with `jobs`. Async consumers
  // must key on result.client_id / result.slot and weight by
  // result.num_samples * result.weight_scale (sync keeps slot order,
  // client_id == jobs[slot].client_id and weight_scale == 1.0, so the
  // same consumer code is bit-identical to the historical integer weight).
  //
  // Returns a reference to an internal results vector that is recycled on
  // the next TrainClients call: read (or copy) what you need before then.
  // Round-over-round buffer reuse is what keeps the steady-state round free
  // of tensor/params heap allocations.
  const std::vector<LocalTrainResult>& TrainClients(
      int round, int salt, const std::vector<ClientJob>& jobs);

  // The factory model's initial parameters (captured once at construction);
  // subclass constructors copy these into their global/middleware state.
  const FlatParams& InitialParams() const { return initial_params_; }

  // The shared replica pool (for subclasses with bespoke model passes, e.g.
  // FedGen's generator training against the global model).
  ModelPool& pool() { return pool_; }

  // Sample-count-weighted average of client models (FedAvg aggregation).
  static FlatParams WeightedAverage(const std::vector<FlatParams>& models,
                                    const std::vector<double>& weights);
  // Unweighted mean.
  static FlatParams Average(const std::vector<FlatParams>& models);

  // In-place variants over pointers into the results vector: `out` is
  // resized (capacity-retaining) and overwritten, so aggregation adds no
  // steady-state allocations and no params copies.
  static void WeightedAverageInto(const std::vector<const FlatParams*>& models,
                                  const std::vector<double>& weights,
                                  FlatParams& out);
  static void AverageInto(const std::vector<const FlatParams*>& models,
                          FlatParams& out);

  // Aggregates client models under the configured rule (fl/aggregators.h).
  // `reference` is the model the round dispatched (the norm-clipped rule's
  // clipping centre); `out` may alias it. The default kWeightedMean path is
  // byte-for-byte WeightedAverageInto.
  void Aggregate(const std::vector<const FlatParams*>& models,
                 const std::vector<double>& weights,
                 const FlatParams& reference, FlatParams& out);

  double TakeRoundClientLoss();  // mean loss over the round's clients

  // Checkpoint hooks: subclasses append/restore their algorithm state
  // (global params, variates, middleware, ...). LoadExtraState must consume
  // exactly what SaveExtraState wrote.
  virtual void SaveExtraState(StateWriter& writer) { (void)writer; }
  virtual util::Status LoadExtraState(StateReader& reader) {
    (void)reader;
    return util::Status::Ok();
  }

 private:
  // Per-slot wire-codec scratch: the encoded frame plus the decode targets,
  // recycled round-over-round so the codec path adds no steady-state
  // allocations.
  struct WireScratch {
    std::vector<std::uint8_t> frame;
    FlatParams dispatched;  // dispatch frame decoded client-side
    FlatParams decoded;     // upload frame decoded server-side
  };

  // Body of one ClientJob: dispatch-frame round trip, fault draws
  // (dedicated fault stream), local SGD, DP sanitisation, upload
  // corruption, and the upload-frame round trip — all driven by the job's
  // own rngs so jobs are order- and thread-independent. `client` and
  // `residual` are resolved per slot on the coordinating thread before the
  // parallel fan-out (population cache and state store are not
  // thread-safe). `round_deadline` is the sync straggler budget (the async
  // engine passes 0: its own dispatch_timeout replaces it, so stragglers
  // train slowly and land late instead of being dropped by the fault
  // model). Writes into `result`, recycling its buffers.
  void TrainClientJob(const ClientJob& job, const FlClient& client,
                      FlatParams* residual, util::Rng& rng,
                      util::Rng& fault_rng, util::Rng& codec_rng,
                      util::Rng& privacy_rng, double round_deadline,
                      WireScratch& wire, LocalTrainResult& result);

  // TrainClientJob split at the training boundary, so the plan-mode path
  // can run all surviving jobs' local SGD as one lockstep cohort between
  // the two halves. Prepare draws faults and round-trips the dispatch
  // frame; it returns false (echoing the dispatch into `result`) when the
  // job resolved to a dropout/straggler. Finish applies DP sanitisation,
  // upload corruption and the upload round trip. Each consumes exactly the
  // rng draws the corresponding region of TrainClientJob consumes.
  bool PrepareClientJob(const ClientJob& job, const FlClient& client,
                        util::Rng& fault_rng, double round_deadline,
                        WireScratch& wire, LocalTrainResult& result,
                        FaultDecision& decision);
  void FinishClientJob(const ClientJob& job, FlatParams* residual,
                       const FaultDecision& decision, util::Rng& fault_rng,
                       util::Rng& codec_rng, util::Rng& privacy_rng,
                       WireScratch& wire, LocalTrainResult& result);

  // The secure-aggregation verification overlay for one aggregation event:
  // recomputes the cohort's sum under pairwise fixed-point masks, recovers
  // dropped members' masks from their pair seeds, checks the unmasked total
  // equals the direct fixed-point sum bit-for-bit, and folds pair/recovery
  // tallies into privacy_stats_ (revealed recovery seeds are charged to the
  // uplink). `uploads[m]` is cohort member m's accepted upload or nullptr
  // when it dropped / timed out / was screened away.
  void ApplyMaskingOverlay(int round, int salt,
                           const std::vector<const FlatParams*>& uploads);

  // One resolved dispatch whose outcome the (async) server has not yet
  // consumed. Clients are simulations, so the whole dispatch — training,
  // screening, every timeout retry — executes inside the TrainClients call
  // that issued it; "in flight" is purely an arrival timestamp on the
  // virtual clock. Only the terminal LocalTrainResult is buffered, so no
  // job pointer (init_params, spec, SCAFFOLD corrections) ever outlives
  // its round.
  struct PendingUpload {
    double arrival = 0.0;  // virtual time the server learns the outcome
    std::int64_t seq = 0;  // dispatch order: the deterministic tie-break
    LocalTrainResult result;
  };

  // Per-slot async dispatch scratch (recycled): the terminal outcome plus
  // one comm log entry per attempt, folded into the trackers in slot order
  // on the coordinating thread after the parallel fan-out.
  struct AsyncAttempt {
    std::uint64_t wire_down = 0;
    std::uint64_t wire_up = 0;
    bool uploaded = false;   // an upload frame crossed the wire
    bool timed_out = false;  // abandoned at the per-dispatch deadline
  };
  struct AsyncOutcome {
    std::vector<AsyncAttempt> attempts;
    LocalTrainResult result;
    double arrival = 0.0;
    int retries = 0;
  };

  // The buffered event engine behind TrainClients in RoundMode::kAsync:
  // dispatches every job (running retry chains to termination), pushes the
  // terminal events onto the in-flight min-heap, then pops arrivals in
  // (arrival, seq) order — advancing the virtual clock — until buffer_size
  // usable uploads are collected (drops and rejections free their slot and
  // are tallied in passing). Increments model_version_ for the aggregation
  // that follows.
  const std::vector<LocalTrainResult>& TrainClientsAsync(
      int round, int salt, const std::vector<ClientJob>& jobs);

  // The kTrain phase body for ExecMode::kPlan: Prepare every slot, run the
  // surviving jobs through the lockstep plan runner (contiguous chunks
  // across the FL thread pool), then Finish in slot order. Bit-identical
  // to the layer path for every job at every --fl_threads value.
  void TrainClientsPlan(int round, int salt,
                        const std::vector<ClientJob>& jobs);

  // Deterministic fingerprint of (name, seed, K, N, model size, train
  // options); a checkpoint only restores into a matching configuration.
  std::uint64_t ConfigFingerprint() const;

  // End-of-round export: emits the structured round event (phase wall times,
  // accuracy, comm bytes, this round's fault increments) and folds the
  // CommTracker totals and cumulative FaultStats into the metrics registry
  // as gauges. Called from Run() only when a sink is active.
  void RecordRoundObservations(int round, std::int64_t round_start_us,
                               const FaultStats& faults_before,
                               const PrivacyStats& privacy_before,
                               bool evaluated, const EvalResult& eval,
                               double mean_client_loss);

  std::string name_;
  AlgorithmConfig config_;
  models::ModelFactory factory_;
  ModelPool pool_;  // replica pool shared by training jobs and evaluation
  ClientPopulation population_;  // resident clients or the virtual cache
  std::shared_ptr<data::Dataset> test_;
  std::int64_t model_size_;
  FlatParams initial_params_;  // factory init, captured once
  comm::ShapeTable shape_table_;  // per-tensor lengths, captured once
  std::uint64_t dispatch_wire_bytes_ = 0;  // identity-framed model size
  util::Rng rng_;
  CommTracker comm_;
  MetricsHistory history_;
  std::vector<LocalTrainResult> results_;  // recycled across TrainClients
  std::vector<WireScratch> wire_scratch_;  // per-slot, recycled
  // Per-client error-feedback residuals for the lossy codecs, keyed by
  // client id in a spillable store (untouched clients cost nothing). A
  // client trains at most once per TrainClients batch in every algorithm,
  // and entry pointers are resolved per slot before the parallel fan-out,
  // so parallel jobs touch disjoint, pinned entries.
  ClientStateStore residual_store_;
  // Per-slot pointers resolved on the coordinating thread each batch.
  std::vector<const FlClient*> client_slots_;
  std::vector<FlatParams*> residual_slots_;
  FlatParams state_scratch_;  // checkpoint copy-out scratch, recycled
  FlatParams agg_scratch_;   // robust-aggregator scratch, recycled
  FlatParams agg_column_;    // per-coordinate gather scratch, recycled
  FaultStats fault_stats_;
  PrivacyStats privacy_stats_;
  // Subsampled-Gaussian RDP ledger: one AccumulateRound per noised
  // aggregation event, at that event's actual sampling rate. Serialised in
  // FCRS v5 so a resumed run's eps(delta) is bit-exact.
  privacy::RdpAccountant accountant_;
  // Masking-overlay cohort scratch, recycled: per-member upload pointers
  // (sync) and popped-arrival result indices (async; -1 = dropped member).
  std::vector<const FlatParams*> mask_slots_;
  std::vector<int> mask_indices_;
  int completed_rounds_ = 0;
  std::string checkpoint_path_;  // autosave target; empty = disabled
  int checkpoint_every_ = 0;
  double round_loss_sum_ = 0.0;
  int round_loss_count_ = 0;
  double phase_ms_[kNumRoundPhases] = {};  // current round, reset by Run()
  // Virtual-clock event engine (fl/clock.h). inflight_ is a binary min-heap
  // over (arrival, seq) kept in std::push_heap/pop_heap array layout; the
  // checkpoint serialises the array verbatim, so a resumed heap pops in
  // exactly the original order.
  std::vector<PendingUpload> inflight_;
  std::vector<AsyncOutcome> async_outcomes_;  // per-slot scratch, recycled
  double virtual_now_ = 0.0;
  std::int64_t model_version_ = 0;
  std::int64_t dispatch_seq_ = 0;
  // Current round's staleness tallies (async), reset by Run().
  double round_staleness_sum_ = 0.0;
  int round_staleness_count_ = 0;
  int round_staleness_max_ = 0;
};

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_ALGORITHM_H_
