#ifndef FEDCROSS_FL_ALGORITHM_H_
#define FEDCROSS_FL_ALGORITHM_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "fl/client.h"
#include "fl/comm_tracker.h"
#include "fl/evaluator.h"
#include "fl/history.h"
#include "fl/privacy.h"
#include "fl/types.h"
#include "models/model_zoo.h"
#include "util/rng.h"

namespace fedcross::fl {

// Shared configuration for all FL algorithms.
struct AlgorithmConfig {
  int clients_per_round = 10;  // K; the paper activates 10% of N clients
  TrainOptions train;
  std::uint64_t seed = 42;
  int eval_batch_size = 100;

  // Fault injection: probability that a selected client fails before
  // uploading (TrainClient reports dropped=true; algorithms degrade
  // gracefully). 0 disables.
  double dropout_prob = 0.0;

  // Differential privacy: clip-and-noise applied to every client upload
  // (see fl/privacy.h). clip_norm <= 0 disables.
  DpOptions dp;
};

// Base class of every FL algorithm in the repository (the five baselines in
// src/fl plus FedCross in src/core). Owns the simulated clients, the global
// test set, communication accounting and the metrics history; subclasses
// implement one training round and expose their deployable global model.
class FlAlgorithm {
 public:
  FlAlgorithm(std::string name, AlgorithmConfig config,
              data::FederatedDataset data, models::ModelFactory factory);
  virtual ~FlAlgorithm() = default;

  FlAlgorithm(const FlAlgorithm&) = delete;
  FlAlgorithm& operator=(const FlAlgorithm&) = delete;

  // Executes one FL round: client sampling, local training, aggregation.
  // Communication must be logged through comm(). `round` is 0-based.
  virtual void RunRound(int round) = 0;

  // The deployable global model (for FedCross: the average of the
  // middleware models, generated on demand).
  virtual FlatParams GlobalParams() = 0;

  // Driver: runs `rounds` rounds, evaluating the global model on the test
  // set every `eval_every` rounds and recording a RoundRecord. Returns the
  // accumulated history.
  const MetricsHistory& Run(int rounds, int eval_every = 1,
                            bool verbose = false);

  const std::string& name() const { return name_; }
  int num_clients() const { return static_cast<int>(clients_.size()); }
  std::int64_t model_size() const { return model_size_; }
  const MetricsHistory& history() const { return history_; }
  CommTracker& comm() { return comm_; }
  const data::Dataset& test_set() const { return *test_; }
  const models::ModelFactory& factory() const { return factory_; }

  // Evaluates arbitrary flat params on the held-out test set.
  EvalResult Evaluate(const FlatParams& params);

 protected:
  const AlgorithmConfig& config() const { return config_; }
  util::Rng& rng() { return rng_; }
  const FlClient& client(int id) const { return clients_[id]; }

  // Samples K distinct client ids uniformly (the paper's random selection).
  std::vector<int> SampleClients();

  // Runs local training on one client, logging model down/up traffic and
  // accumulating the round's mean client loss.
  LocalTrainResult TrainClient(int client_id, const FlatParams& init_params,
                               const ClientTrainSpec& spec);

  // Sample-count-weighted average of client models (FedAvg aggregation).
  static FlatParams WeightedAverage(const std::vector<FlatParams>& models,
                                    const std::vector<double>& weights);
  // Unweighted mean.
  static FlatParams Average(const std::vector<FlatParams>& models);

  double TakeRoundClientLoss();  // mean loss over the round's clients

 private:
  std::string name_;
  AlgorithmConfig config_;
  models::ModelFactory factory_;
  std::vector<FlClient> clients_;
  std::shared_ptr<data::Dataset> test_;
  std::int64_t model_size_;
  util::Rng rng_;
  CommTracker comm_;
  MetricsHistory history_;
  double round_loss_sum_ = 0.0;
  int round_loss_count_ = 0;
};

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_ALGORITHM_H_
