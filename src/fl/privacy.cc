#include "fl/privacy.h"

#include <cmath>

#include "util/check.h"

namespace fedcross::fl {

double UpdateNorm(const FlatParams& reference, const FlatParams& uploaded) {
  FC_CHECK_EQ(reference.size(), uploaded.size());
  double total = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    double d = static_cast<double>(uploaded[i]) - reference[i];
    total += d * d;
  }
  return std::sqrt(total);
}

FlatParams SanitizeUpdate(const FlatParams& reference,
                          const FlatParams& uploaded, const DpOptions& options,
                          util::Rng& rng) {
  FC_CHECK_EQ(reference.size(), uploaded.size());
  if (options.clip_norm <= 0.0f) return uploaded;

  double norm = UpdateNorm(reference, uploaded);
  double scale = norm > options.clip_norm && norm > 0.0
                     ? options.clip_norm / norm
                     : 1.0;
  double sigma = static_cast<double>(options.noise_multiplier) *
                 options.clip_norm;

  FlatParams sanitised(reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    double delta = (static_cast<double>(uploaded[i]) - reference[i]) * scale;
    if (sigma > 0.0) delta += rng.Normal(0.0, sigma);
    sanitised[i] = static_cast<float>(reference[i] + delta);
  }
  return sanitised;
}

double GaussianMechanismEpsilon(double noise_multiplier, double delta) {
  FC_CHECK_GT(noise_multiplier, 0.0);
  FC_CHECK_GT(delta, 0.0);
  FC_CHECK_LT(delta, 1.0);
  return std::sqrt(2.0 * std::log(1.25 / delta)) / noise_multiplier;
}

}  // namespace fedcross::fl
