#ifndef FEDCROSS_FL_HISTORY_H_
#define FEDCROSS_FL_HISTORY_H_

#include <string>
#include <vector>

#include "fl/types.h"
#include "util/status.h"

namespace fedcross::fl {

// Round-by-round metrics of one FL run — the data behind the paper's
// learning-curve figures (Fig. 5-9).
class MetricsHistory {
 public:
  void Add(RoundRecord record) { records_.push_back(record); }

  const std::vector<RoundRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }

  // Highest test accuracy seen so far (the paper reports best accuracy).
  float BestAccuracy() const;

  // Mean accuracy over the last `window` rounds (stability metric).
  float FinalAccuracy(int window = 5) const;

  // First round whose accuracy reached `target`, or -1 (rounds-to-target,
  // used by the communication-savings analysis).
  int RoundsToAccuracy(float target) const;

  // Writes "round,test_accuracy,test_loss,bytes_up,bytes_down,client_loss".
  util::Status WriteCsv(const std::string& path,
                        const std::string& series_name) const;

 private:
  std::vector<RoundRecord> records_;
};

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_HISTORY_H_
