#ifndef FEDCROSS_FL_FLAT_OPS_H_
#define FEDCROSS_FL_FLAT_OPS_H_

#include <cstddef>
#include <vector>

#include "fl/types.h"

namespace fedcross::fl::flat_ops {

// Fused single-loop kernels over flat parameter vectors — the server-side
// hot path of every aggregation rule (CrossAggr, propeller means, FedAvg
// weighted averages, similarity-based CoModelSel). Each helper makes exactly
// one pass over its operands with branch-free bodies so the compiler
// vectorizes them; at typical model sizes these passes are memory-bound, so
// one fused pass is the optimum.

// dst = a * x + b * y. dst is resized to x's size; x and y must match.
void LinearCombine(float a, const FlatParams& x, float b, const FlatParams& y,
                   FlatParams& dst);

// dst += src.
void AddInto(FlatParams& dst, const FlatParams& src);

// dst += factor * src.
void Axpy(FlatParams& dst, float factor, const FlatParams& src);

// dst[i] += factor * src[i] for i in [0, n). Raw-pointer form so the
// range-sharded aggregators run the exact same inner loop (same codegen,
// same rounding) on each contiguous shard as Axpy runs on a full vector.
void AxpyRange(float* dst, float factor, const float* src, std::size_t n);

// dst *= factor.
void Scale(FlatParams& dst, float factor);

// dst = src - ref (update direction), single pass.
void Subtract(const FlatParams& src, const FlatParams& ref, FlatParams& dst);

// Unweighted mean of K equally-sized models: one accumulate pass per model
// plus one scaling pass.
FlatParams Mean(const std::vector<FlatParams>& models);

// Cosine similarity via one fused dot/norm/norm pass (the paper's
// Similarity(.) measure); 0 if either vector has zero norm.
double CosineSimilarity(const FlatParams& x, const FlatParams& y);

}  // namespace fedcross::fl::flat_ops

#endif  // FEDCROSS_FL_FLAT_OPS_H_
