#ifndef FEDCROSS_FL_FEDAVG_H_
#define FEDCROSS_FL_FEDAVG_H_

#include <string>

#include "fl/algorithm.h"

namespace fedcross::fl {

// FedAvg (McMahan et al., 2017): the classic one-to-multi scheme. Each
// round the server dispatches the single global model to K sampled clients
// and replaces it with the sample-count-weighted average of their locally
// trained models.
class FedAvg : public FlAlgorithm {
 public:
  FedAvg(AlgorithmConfig config, data::FederatedDataset data,
         models::ModelFactory factory, std::string name = "FedAvg");

  void RunRound(int round) override;
  FlatParams GlobalParams() override { return global_; }

 protected:
  // Hook for subclasses that modify the client objective (FedProx).
  virtual ClientTrainSpec MakeClientSpec() const;

  // Checkpoint state: the global model (FedProx adds nothing on top).
  void SaveExtraState(StateWriter& writer) override;
  util::Status LoadExtraState(StateReader& reader) override;

  FlatParams global_;
};

// FedProx (Li et al., 2020): FedAvg plus a proximal term
// (mu/2)*||w - w_global||^2 in every client objective, stabilising local
// training under heterogeneity.
class FedProx : public FedAvg {
 public:
  FedProx(AlgorithmConfig config, data::FederatedDataset data,
          models::ModelFactory factory, float mu);

 protected:
  ClientTrainSpec MakeClientSpec() const override;

 private:
  float mu_;
};

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_FEDAVG_H_
