#include "fl/algorithm.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "fl/flat_ops.h"
#include "fl/parallel.h"
#include "fl/plan_runner.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "privacy/dp.h"
#include "util/logging.h"
#include "util/mem_stats.h"
#include "util/thread_pool.h"

namespace fedcross::fl {
namespace {

// Span names for PhaseScope, indexed by RoundPhase. Static storage: the
// trace ring stores the pointer.
constexpr const char* kPhaseSpanNames[] = {
    "phase.dispatch", "phase.train",     "phase.screen",
    "phase.aggregate", "phase.eval",     "phase.checkpoint",
};

// Minimum coordinates per aggregation shard: below this the per-task
// overhead of the pool outweighs the bandwidth win, and tiny models keep
// the historical single-range walk.
constexpr std::int64_t kMinAggRangeElems = 4096;

// True when any observability sink wants per-phase timings.
bool ObservabilityActive() {
  return obs::MetricsEnabled() || obs::TracingEnabled() ||
         obs::EventsEnabled();
}

// Registry handles are resolved once per process; the addresses are stable
// across MetricsRegistry::Reset.
struct FlMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& rounds = reg.GetCounter("fl.rounds");
  obs::Counter& client_jobs = reg.GetCounter("fl.clients.jobs");
  obs::Counter& uploads_accepted = reg.GetCounter("fl.uploads.accepted");
  obs::Counter& robust_aggregations = reg.GetCounter("fl.agg.robust");
  obs::Gauge& comm_down = reg.GetGauge("fl.comm.total_down_bytes");
  obs::Gauge& comm_up = reg.GetGauge("fl.comm.total_up_bytes");
  obs::Gauge& comm_wire_down = reg.GetGauge("fl.comm.total_wire_down_bytes");
  obs::Gauge& comm_wire_up = reg.GetGauge("fl.comm.total_wire_up_bytes");
  obs::Gauge& comm_wasted = reg.GetGauge("fl.comm.wasted_raw_bytes");
  obs::Gauge& comm_wire_wasted = reg.GetGauge("fl.comm.wasted_wire_bytes");
  obs::Gauge& faults_dropouts = reg.GetGauge("fl.faults.dropouts");
  obs::Gauge& faults_stragglers = reg.GetGauge("fl.faults.stragglers");
  obs::Gauge& faults_corrupted = reg.GetGauge("fl.faults.corrupted");
  obs::Gauge& faults_rejected = reg.GetGauge("fl.faults.rejected");
  obs::Gauge& faults_timeouts = reg.GetGauge("fl.faults.timeouts");
  obs::Gauge& faults_retries = reg.GetGauge("fl.faults.retries");
  obs::Gauge& virtual_time = reg.GetGauge("fl.clock.virtual_time");
  obs::Histogram& staleness = reg.GetHistogram("fl.staleness");
  obs::Gauge& population_resident =
      reg.GetGauge("fl.population.resident_clients");
  obs::Gauge& peak_rss = reg.GetGauge("fl.mem.peak_rss_bytes");
  obs::Histogram& round_ms = reg.GetHistogram("fl.round_ms");
  obs::Histogram& checkpoint_save_ms =
      reg.GetHistogram("fl.checkpoint.save_ms");
  obs::Histogram& checkpoint_load_ms =
      reg.GetHistogram("fl.checkpoint.load_ms");
  // Privacy subsystem: the RDP accountant's running eps(delta) and the
  // cumulative clip / mask tallies.
  obs::Gauge& privacy_epsilon = reg.GetGauge("fl.privacy.epsilon");
  obs::Gauge& privacy_clipped = reg.GetGauge("fl.privacy.clipped_uploads");
  obs::Gauge& privacy_mask_pairs = reg.GetGauge("fl.privacy.mask_pairs");
  obs::Gauge& privacy_mask_recoveries =
      reg.GetGauge("fl.privacy.mask_recoveries");
};

FlMetrics& Metrics() {
  static FlMetrics* metrics = new FlMetrics();
  return *metrics;
}

// SplitMix64 finalizer: bijective avalanche mix.
std::uint64_t MixSeed(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Deterministic per-(run, round, batch, slot) seed for one client job. This
// derivation — not the shared run Rng — is what makes the parallel schedule
// bit-identical to the sequential one.
std::uint64_t ClientJobSeed(std::uint64_t seed, int round, int salt,
                            int slot) {
  std::uint64_t h = MixSeed(seed ^ 0x636c69656e74ULL);  // "client"
  h = MixSeed(h + static_cast<std::uint64_t>(round));
  h = MixSeed(h + static_cast<std::uint64_t>(salt));
  return MixSeed(h + static_cast<std::uint64_t>(slot));
}

// Seed for the codec's stochastic-rounding stream. Independent of both the
// training and the fault streams, so switching codecs never perturbs a
// client's training trajectory, and the identity codec (which draws
// nothing) is bit-identical to pre-codec runs.
std::uint64_t CodecSeed(std::uint64_t seed, int round, int salt, int slot) {
  std::uint64_t h = MixSeed(seed ^ 0x636f646563ULL);  // "codec"
  h = MixSeed(h + static_cast<std::uint64_t>(round));
  h = MixSeed(h + static_cast<std::uint64_t>(salt));
  return MixSeed(h + static_cast<std::uint64_t>(slot));
}

// Salt stride between async retry attempts of the same slot. Every in-round
// salt is tiny (FedCluster uses salt = cluster step < K), so attempt k's
// streams — derived from salt + k * stride — can never collide with another
// job's.
constexpr int kAsyncRetrySaltStride = 1 << 16;

// Local-work estimate for a job that never trained (sync deadline miss):
// what FlClient::Train would have counted — epochs times per-epoch batches,
// including the ragged tail batch.
double NominalSteps(const TrainOptions& train, int num_samples) {
  int batch = std::max(1, train.batch_size);
  int batches = (num_samples + batch - 1) / batch;
  return static_cast<double>(train.local_epochs) * batches;
}

// Per-dispatch compute jitter factor, uniform in [1, 1 + jitter]. A zero
// jitter draws nothing, so the default clock consumes no stream entropy.
double DrawJitter(const ClockModel& clock, util::Rng& clock_rng) {
  if (clock.jitter <= 0.0) return 1.0;
  return 1.0 + clock_rng.Uniform(0.0, clock.jitter);
}

}  // namespace

FlAlgorithm::PhaseScope::PhaseScope(FlAlgorithm& algo, RoundPhase phase)
    : phase_(phase) {
  if (ObservabilityActive()) {
    algo_ = &algo;
    start_us_ = obs::TraceNowMicros();
  }
}

FlAlgorithm::PhaseScope::~PhaseScope() {
  if (algo_ == nullptr) return;
  std::int64_t end_us = obs::TraceNowMicros();
  algo_->phase_ms_[static_cast<int>(phase_)] +=
      static_cast<double>(end_us - start_us_) / 1000.0;
  if (obs::TracingEnabled()) {
    obs::TraceRecorder::Global().RecordComplete(
        kPhaseSpanNames[static_cast<int>(phase_)], start_us_,
        end_us - start_us_);
  }
}

FlAlgorithm::FlAlgorithm(std::string name, AlgorithmConfig config,
                         data::FederatedDataset data,
                         models::ModelFactory factory)
    : name_(std::move(name)),
      config_(config),
      factory_(std::move(factory)),
      pool_(factory_),
      population_(config.population, data),
      test_(std::move(data.test)),
      rng_(config.seed) {
  // Legacy shorthand: fold dropout_prob into the default fault profile.
  if (config_.dropout_prob > 0.0 && config_.faults.profile.dropout_prob == 0.0) {
    config_.faults.profile.dropout_prob = config_.dropout_prob;
  }
  FC_CHECK(test_ != nullptr);
  FC_CHECK_GT(config_.clients_per_round, 0);
  FC_CHECK_LE(static_cast<std::int64_t>(config_.clients_per_round),
              population_.size())
      << "K exceeds the number of clients";
  residual_store_.Configure(config_.state_store);
  // Probe the pool's first replica once for the model size and the factory's
  // initial parameters; the replica is recycled by every later job.
  ModelPool::Lease probe = pool_.Acquire();
  model_size_ = probe->model.NumParams();
  initial_params_ = probe->model.ParamsToFlat();
  // The wire shape table: per-tensor lengths of the flattened model, in
  // flattening order. Every frame carries and validates it.
  for (const nn::Param* param : probe->model.Params()) {
    shape_table_.push_back(static_cast<std::uint32_t>(param->value.numel()));
  }
  dispatch_wire_bytes_ = comm::DispatchWireBytes(
      static_cast<std::uint64_t>(model_size_), shape_table_);
}

const MetricsHistory& FlAlgorithm::Run(int rounds, int eval_every,
                                       bool verbose) {
  FC_CHECK_GT(eval_every, 0);
  for (int round = completed_rounds_; round < rounds; ++round) {
    // Snapshot observability state once per round: sinks toggled mid-round
    // would otherwise leave a half-timed event.
    const bool observe = ObservabilityActive();
    const std::int64_t round_start_us = observe ? obs::TraceNowMicros() : 0;
    const FaultStats faults_before = fault_stats_;
    const PrivacyStats privacy_before = privacy_stats_;
    if (observe) {
      for (double& ms : phase_ms_) ms = 0.0;
    }

    comm_.BeginRound();
    round_loss_sum_ = 0.0;
    round_loss_count_ = 0;
    round_staleness_sum_ = 0.0;
    round_staleness_count_ = 0;
    round_staleness_max_ = 0;
    bool evaluated = false;
    EvalResult eval;
    double mean_client_loss = 0.0;
    {
      obs::ScopedSpan round_span("fl.round", round + 1);
      RunRound(round);
      completed_rounds_ = round + 1;
      if (observe) {
        // Read-only preview of what TakeRoundClientLoss() would return, so
        // the event carries the round's mean client loss without consuming
        // the accumulator eval rounds read below.
        mean_client_loss = round_loss_count_ > 0
                               ? round_loss_sum_ / round_loss_count_
                               : 0.0;
      }
      if ((round + 1) % eval_every == 0 || round == rounds - 1) {
        {
          PhaseScope phase(*this, RoundPhase::kEval);
          eval = Evaluate(GlobalParams());
        }
        evaluated = true;
        RoundRecord record;
        record.round = round + 1;
        record.test_loss = eval.loss;
        record.test_accuracy = eval.accuracy;
        record.bytes_up = static_cast<double>(comm_.round_upload_bytes());
        record.bytes_down = static_cast<double>(comm_.round_download_bytes());
        record.mean_client_loss = TakeRoundClientLoss();
        history_.Add(record);
        if (verbose) {
          FC_LOG(Info) << name_ << " round " << record.round << " acc "
                       << record.test_accuracy << " loss " << record.test_loss;
        }
      }
      if (checkpoint_every_ > 0 &&
          ((round + 1) % checkpoint_every_ == 0 || round == rounds - 1)) {
        PhaseScope phase(*this, RoundPhase::kCheckpoint);
        util::Status saved = SaveCheckpoint(checkpoint_path_);
        if (!saved.ok()) {
          FC_LOG(Warning) << name_ << " checkpoint to " << checkpoint_path_
                          << " failed: " << saved.ToString();
        }
      }
    }
    if (observe) {
      RecordRoundObservations(round, round_start_us, faults_before,
                              privacy_before, evaluated, eval,
                              mean_client_loss);
    }
  }
  return history_;
}

void FlAlgorithm::RecordRoundObservations(int round,
                                          std::int64_t round_start_us,
                                          const FaultStats& faults_before,
                                          const PrivacyStats& privacy_before,
                                          bool evaluated,
                                          const EvalResult& eval,
                                          double mean_client_loss) {
  const double round_ms =
      static_cast<double>(obs::TraceNowMicros() - round_start_us) / 1000.0;

  if (obs::MetricsEnabled()) {
    FlMetrics& m = Metrics();
    m.rounds.Add(1);
    m.round_ms.Observe(round_ms);
    // Satellite fold: communication totals and cumulative fault stats become
    // gauges, so one metrics snapshot carries the whole run's accounting.
    // CommTracker itself stays the source of truth for Table I.
    m.comm_down.Set(static_cast<double>(comm_.total_download_bytes()));
    m.comm_up.Set(static_cast<double>(comm_.total_upload_bytes()));
    m.comm_wire_down.Set(
        static_cast<double>(comm_.total_wire_download_bytes()));
    m.comm_wire_up.Set(static_cast<double>(comm_.total_wire_upload_bytes()));
    m.comm_wasted.Set(static_cast<double>(comm_.total_wasted_bytes()));
    m.comm_wire_wasted.Set(
        static_cast<double>(comm_.total_wire_wasted_bytes()));
    m.faults_dropouts.Set(static_cast<double>(fault_stats_.dropouts));
    m.faults_stragglers.Set(static_cast<double>(fault_stats_.stragglers));
    m.faults_corrupted.Set(static_cast<double>(fault_stats_.corrupted));
    m.faults_rejected.Set(static_cast<double>(fault_stats_.rejected));
    m.faults_timeouts.Set(static_cast<double>(fault_stats_.timeouts));
    m.faults_retries.Set(static_cast<double>(fault_stats_.retries));
    m.virtual_time.Set(virtual_now_);
    m.population_resident.Set(
        static_cast<double>(population_.resident_clients()));
    m.peak_rss.Set(static_cast<double>(util::PeakRssBytes()));
    // eps gauge follows the event encoding: -1 stands in for +infinity
    // (clip-only runs carry no guarantee).
    const double eps = privacy_epsilon();
    m.privacy_epsilon.Set(std::isfinite(eps) ? eps : -1.0);
    m.privacy_clipped.Set(static_cast<double>(privacy_stats_.clipped));
    m.privacy_mask_pairs.Set(static_cast<double>(privacy_stats_.mask_pairs));
    m.privacy_mask_recoveries.Set(
        static_cast<double>(privacy_stats_.mask_recoveries));
  }

  if (obs::EventsEnabled()) {
    obs::RoundEvent event;
    event.algorithm = name_;
    event.round = round + 1;
    event.round_ms = round_ms;
    event.dispatch_ms = phase_ms_[static_cast<int>(RoundPhase::kDispatch)];
    event.train_ms = phase_ms_[static_cast<int>(RoundPhase::kTrain)];
    event.screen_ms = phase_ms_[static_cast<int>(RoundPhase::kScreen)];
    event.aggregate_ms = phase_ms_[static_cast<int>(RoundPhase::kAggregate)];
    event.eval_ms = phase_ms_[static_cast<int>(RoundPhase::kEval)];
    event.checkpoint_ms =
        phase_ms_[static_cast<int>(RoundPhase::kCheckpoint)];
    event.evaluated = evaluated;
    event.test_accuracy = evaluated ? eval.accuracy : 0.0;
    event.test_loss = evaluated ? eval.loss : 0.0;
    event.mean_client_loss = mean_client_loss;
    event.bytes_down = static_cast<double>(comm_.round_download_bytes());
    event.bytes_up = static_cast<double>(comm_.round_upload_bytes());
    event.wire_bytes_down =
        static_cast<double>(comm_.round_wire_download_bytes());
    event.wire_bytes_up = static_cast<double>(comm_.round_wire_upload_bytes());
    event.wire_bytes_wasted =
        static_cast<double>(comm_.round_wire_wasted_bytes());
    event.dropouts = fault_stats_.dropouts - faults_before.dropouts;
    event.stragglers = fault_stats_.stragglers - faults_before.stragglers;
    event.corrupted = fault_stats_.corrupted - faults_before.corrupted;
    event.rejected = fault_stats_.rejected - faults_before.rejected;
    event.timeouts = fault_stats_.timeouts - faults_before.timeouts;
    event.async_retries = fault_stats_.retries - faults_before.retries;
    event.virtual_time = virtual_now_;
    event.model_version = model_version_;
    event.inflight = inflight_dispatches();
    event.staleness_mean = round_staleness_count_ > 0
                               ? round_staleness_sum_ / round_staleness_count_
                               : 0.0;
    event.staleness_max = round_staleness_max_;
    event.resident_clients = population_.resident_clients();
    event.peak_rss_bytes = util::PeakRssBytes();
    // JSON has no infinity: -1 encodes "no guarantee" (clip without noise).
    const double eps = privacy_epsilon();
    event.dp_epsilon = std::isfinite(eps) ? eps : -1.0;
    event.dp_delta = config_.dp.delta;
    event.dp_clipped = privacy_stats_.clipped - privacy_before.clipped;
    event.mask_pairs = privacy_stats_.mask_pairs - privacy_before.mask_pairs;
    event.mask_recoveries =
        privacy_stats_.mask_recoveries - privacy_before.mask_recoveries;
    obs::EmitRoundEvent(event);
  }
}

void FlAlgorithm::EnableAutoCheckpoint(std::string path, int every_rounds) {
  checkpoint_path_ = std::move(path);
  checkpoint_every_ = checkpoint_path_.empty() ? 0 : every_rounds;
}

EvalResult FlAlgorithm::Evaluate(const FlatParams& params) {
  return EvaluateParams(pool_, params, *test_, config_.eval_batch_size);
}

std::vector<std::int64_t> FlAlgorithm::SampleClients() {
  std::int64_t want = config_.clients_per_round;
  if (config_.faults.over_provision > 0) {
    want = std::min(num_clients(),
                    want + static_cast<std::int64_t>(
                               config_.faults.over_provision));
  }
  ClientSampler sampler = config_.sampler;
  if (sampler == ClientSampler::kAuto) {
    sampler = population_.mode() == PopulationMode::kVirtual
                  ? ClientSampler::kFloyd
                  : ClientSampler::kFullShuffle;
  }
  if (sampler == ClientSampler::kFloyd) {
    return rng_.SampleDistinct(num_clients(), want);
  }
  // Historical full-shuffle draw sequence: O(N) per round, bit-compatible
  // with checkpoints and golden results recorded before the Floyd sampler.
  FC_CHECK_LE(num_clients(),
              static_cast<std::int64_t>(std::numeric_limits<int>::max()))
      << "full-shuffle sampling caps N at int range; use the Floyd sampler";
  std::vector<int> legacy = rng_.SampleWithoutReplacement(
      static_cast<int>(num_clients()), static_cast<int>(want));
  return std::vector<std::int64_t>(legacy.begin(), legacy.end());
}

const std::vector<LocalTrainResult>& FlAlgorithm::TrainClients(
    int round, int salt, const std::vector<ClientJob>& jobs) {
  if (config_.async.mode == RoundMode::kAsync) {
    return TrainClientsAsync(round, salt, jobs);
  }
  int count = static_cast<int>(jobs.size());
  Metrics().client_jobs.Add(count);
  // resize keeps surviving elements' params capacity from the last round.
  results_.resize(count);
  if (static_cast<int>(wire_scratch_.size()) < count) {
    wire_scratch_.resize(count);
  }
  // Resolve every slot's client and residual entry on the calling thread
  // before the fan-out: the population cache and the state store are not
  // thread-safe, and both guarantee pointer stability until their next
  // BeginBatch. Workers then only dereference pre-pinned pointers.
  population_.BeginBatch();
  residual_store_.BeginBatch();
  const bool lossy = comm::SchemeIsLossy(config_.codec.scheme);
  client_slots_.resize(count);
  residual_slots_.resize(count);
  for (int slot = 0; slot < count; ++slot) {
    FC_CHECK_GE(jobs[slot].client_id, 0);
    FC_CHECK_LT(jobs[slot].client_id, num_clients());
    client_slots_[slot] = &population_.Client(jobs[slot].client_id);
    residual_slots_[slot] =
        lossy ? &residual_store_.Touch(jobs[slot].client_id) : nullptr;
  }
  auto train_slot = [&](int slot) {
    util::Rng job_rng(ClientJobSeed(config_.seed, round, salt, slot));
    // The fault stream is derived independently of the training stream, so
    // fault draws can never perturb a surviving client's trajectory. The
    // privacy stream is independent of all three, so DP noise never skews
    // batch shuffling and DP runs stay thread-count invariant.
    util::Rng fault_rng(FaultSeed(config_.seed, round, salt, slot));
    util::Rng codec_rng(CodecSeed(config_.seed, round, salt, slot));
    util::Rng privacy_rng(
        privacy::PrivacySeed(config_.seed, round, salt, slot));
    TrainClientJob(jobs[slot], *client_slots_[slot], residual_slots_[slot],
                   job_rng, fault_rng, codec_rng, privacy_rng,
                   config_.faults.round_deadline, wire_scratch_[slot],
                   results_[slot]);
  };
  bool use_plan = count > 0 && jobs[0].spec != nullptr &&
                  jobs[0].spec->options.exec == ExecMode::kPlan;
  {
    PhaseScope phase(*this, RoundPhase::kTrain);
    if (use_plan) {
      TrainClientsPlan(round, salt, jobs);
    } else {
      util::ThreadPool* pool = AcquireFlPool();
      if (pool != nullptr && count > 1) {
        pool->ParallelFor(count, train_slot);
      } else {
        for (int slot = 0; slot < count; ++slot) train_slot(slot);
      }
    }
  }
  // Bookkeeping and upload screening on the calling thread, in job order,
  // so accounting is race-free and independent of the parallel schedule.
  PhaseScope phase(*this, RoundPhase::kScreen);
  bool screen = config_.screening.Enabled();
  double makespan = 0.0;
  for (int slot = 0; slot < count; ++slot) {
    LocalTrainResult& result = results_[slot];
    result.client_id = jobs[slot].client_id;
    result.slot = slot;
    result.dispatch_version = model_version_;
    comm_.AddDownload(CommTracker::FloatBytes(model_size_),
                      result.wire_bytes_down);
    // Sync clock observation: the barrier waits for the slowest slot, so
    // the round's virtual makespan is the max simulated duration. A dropout
    // costs only its dispatch transfer; a deadline-missing straggler holds
    // the barrier for the full budget (deadline x the fault-free compute
    // time of the work it was sent) before the server gives up on it.
    {
      ClockProfile profile = DrawClockProfile(
          config_.async.clock, config_.seed, jobs[slot].client_id);
      util::Rng clock_rng(ClockSeed(config_.seed, round, salt, slot));
      double jitter = DrawJitter(config_.async.clock, clock_rng);
      double steps = static_cast<double>(result.num_steps);
      double slowdown = result.slowdown;
      if (result.fault == FaultKind::kDropout) {
        steps = 0.0;
      } else if (result.fault == FaultKind::kStraggler) {
        steps = NominalSteps(jobs[slot].spec->options, result.num_samples);
        slowdown = config_.faults.round_deadline;
      }
      makespan = std::max(
          makespan,
          SimulatedDuration(profile, slowdown, steps, result.wire_bytes_down,
                            result.wire_bytes_up, jitter));
    }
    if (result.fault == FaultKind::kDropout) ++fault_stats_.dropouts;
    if (result.fault == FaultKind::kStraggler) ++fault_stats_.stragglers;
    if (result.dropped) {
      // the device never uploads; its dispatch bought nothing
      comm_.AddWasted(CommTracker::FloatBytes(model_size_),
                      result.wire_bytes_down);
      continue;
    }
    comm_.AddUpload(CommTracker::FloatBytes(model_size_),
                    result.wire_bytes_up);
    if (result.fault == FaultKind::kCorrupted) ++fault_stats_.corrupted;
    // Counted at upload receipt, before the screening verdict: a clipped
    // upload the screener then rejects was still clipped on-device.
    if (result.dp_clipped) ++privacy_stats_.clipped;
    if (screen) {
      util::Status verdict = ScreenUpload(*jobs[slot].init_params,
                                          result.params, config_.screening);
      if (!verdict.ok()) {
        // Degrade exactly like a dropout: the contribution is discarded and
        // params echo the dispatched model (so FedCross keeps its
        // middleware copy). Both legs of the round trip bought nothing.
        result.params = *jobs[slot].init_params;
        result.dropped = true;
        result.fault = FaultKind::kRejected;
        ++fault_stats_.rejected;
        comm_.AddWasted(CommTracker::FloatBytes(model_size_) * 2,
                        result.wire_bytes_down + result.wire_bytes_up);
        continue;
      }
    }
    Metrics().uploads_accepted.Add(1);
    round_loss_sum_ += result.mean_loss;
    ++round_loss_count_;
  }
  // Secure-aggregation overlay over the dispatch cohort: members whose
  // upload survived screening contribute; dropouts, deadline stragglers and
  // rejections are the dropped members whose masks recovery reconstructs.
  if (config_.secure_agg.Enabled() && count > 0) {
    mask_slots_.resize(count);
    for (int slot = 0; slot < count; ++slot) {
      mask_slots_[slot] =
          results_[slot].dropped ? nullptr : &results_[slot].params;
    }
    ApplyMaskingOverlay(round, salt, mask_slots_);
  }
  // One noised aggregation event enters the RDP ledger at this batch's
  // actual sampling rate (FedCluster's per-cluster batches compose as
  // separate events, exactly as the mechanism fires).
  if (config_.dp.Noised() && count > 0) {
    accountant_.AccumulateRound(
        std::min(1.0, static_cast<double>(count) /
                          static_cast<double>(num_clients())),
        config_.dp.noise_multiplier);
  }
  // The barrier releases when the slowest slot reports; the aggregation
  // that follows is one global-model version.
  virtual_now_ += makespan;
  ++model_version_;
  return results_;
}

void FlAlgorithm::ApplyMaskingOverlay(
    int round, int salt, const std::vector<const FlatParams*>& uploads) {
  privacy::MaskedSumReport report = privacy::SimulateMaskedAggregation(
      config_.seed, round, salt, uploads, config_.secure_agg);
  FC_CHECK(report.exact)
      << "masked aggregate failed to unmask to the direct fixed-point sum "
         "(cohort "
      << report.cohort << ", survivors " << report.survivors << ", pairs "
      << report.pairs << ", recovered " << report.recovered_pairs << ")";
  privacy_stats_.mask_pairs += report.pairs;
  privacy_stats_.mask_recoveries += report.recovered_pairs;
  // Recovery is the only masking step that costs extra wire traffic: the
  // surviving peers upload 8 bytes of revealed pair seed per dangling mask.
  if (report.recovery_seed_bytes > 0) {
    comm_.AddUpload(report.recovery_seed_bytes, report.recovery_seed_bytes);
  }
}

void FlAlgorithm::TrainClientJob(const ClientJob& job, const FlClient& client,
                                 FlatParams* residual, util::Rng& rng,
                                 util::Rng& fault_rng, util::Rng& codec_rng,
                                 util::Rng& privacy_rng, double round_deadline,
                                 WireScratch& wire, LocalTrainResult& result) {
  FaultDecision decision;
  if (!PrepareClientJob(job, client, fault_rng, round_deadline, wire, result,
                        decision)) {
    return;
  }
  client.Train(pool_, wire.dispatched, *job.spec, rng, result);
  FinishClientJob(job, residual, decision, fault_rng, codec_rng, privacy_rng,
                  wire, result);
}

bool FlAlgorithm::PrepareClientJob(const ClientJob& job,
                                   const FlClient& client,
                                   util::Rng& fault_rng,
                                   double round_deadline, WireScratch& wire,
                                   LocalTrainResult& result,
                                   FaultDecision& decision) {
  FC_CHECK(job.init_params != nullptr);
  FC_CHECK(job.spec != nullptr);

  const FaultProfile& profile = config_.faults.ProfileFor(job.client_id);
  decision = DrawFaults(profile, round_deadline, fault_rng);

  // Dropout / straggler timeout: the device received the model (the
  // dispatch frame still crossed the wire) but its upload never reaches the
  // round. params echo the dispatch so FedCross keeps its middleware copy.
  if (decision.dropped || decision.timed_out) {
    result.params = *job.init_params;  // copy-assign recycles the buffer
    result.num_samples = client.num_samples();
    result.num_steps = 0;
    result.lr = 0.0f;
    result.mean_loss = 0.0;
    result.wire_bytes_down = dispatch_wire_bytes_;
    result.wire_bytes_up = 0;
    result.dropped = true;
    result.fault =
        decision.dropped ? FaultKind::kDropout : FaultKind::kStraggler;
    result.staleness = 0;
    result.weight_scale = 1.0;
    result.slowdown = decision.duration;
    result.upload_corrupt = false;
    result.dp_clipped = false;
    return false;
  }

  // Dispatch round trip: the client trains on the decoded frame, never on
  // the server's in-process pointer. Dispatch frames are identity-coded, so
  // the decoded params are bit-identical to *job.init_params.
  comm::EncodeDispatch(*job.init_params, shape_table_, wire.frame);
  result.wire_bytes_down = wire.frame.size();
  util::Status dispatched =
      comm::DecodeDispatch(wire.frame, shape_table_, wire.dispatched);
  FC_CHECK(dispatched.ok()) << dispatched.ToString();
  return true;
}

void FlAlgorithm::FinishClientJob(const ClientJob& job, FlatParams* residual,
                                  const FaultDecision& decision,
                                  util::Rng& fault_rng, util::Rng& codec_rng,
                                  util::Rng& privacy_rng, WireScratch& wire,
                                  LocalTrainResult& result) {
  // DP sanitisation before corruption and the upload codec: the mechanism
  // runs on-device against the dispatched reference, and its noise comes
  // from the dedicated privacy stream — never the training rng, whose draw
  // position must not depend on whether DP is enabled.
  result.dp_clipped = false;
  if (config_.dp.Enabled()) {
    result.dp_clipped = privacy::SanitizeUpdateInPlace(
        wire.dispatched, result.params, config_.dp, privacy_rng);
  }
  if (decision.corrupt) {
    const FaultProfile& profile = config_.faults.ProfileFor(job.client_id);
    CorruptUpload(profile, wire.dispatched, result.params, fault_rng);
    result.fault = FaultKind::kCorrupted;
  }

  // Upload round trip under the configured scheme: what enters aggregation
  // (and server-side screening) is the decoded frame, so lossy compression
  // noise — and corrupted payloads — reach the server exactly as the wire
  // carries them. The error-feedback residual belongs to the client and is
  // touched by at most one job per batch; it was pinned in the state store
  // before the fan-out (null for lossless schemes, which never read it).
  if (residual == nullptr) residual = &wire.decoded;
  comm::EncodeUpload(config_.codec, result.params, wire.dispatched,
                     shape_table_, *residual, codec_rng, wire.frame);
  result.wire_bytes_up = wire.frame.size();
  util::Status uploaded = comm::DecodeUpload(wire.frame, wire.dispatched,
                                             shape_table_, wire.decoded);
  FC_CHECK(uploaded.ok()) << uploaded.ToString();
  result.params.swap(wire.decoded);
  // Engine provenance (client.Train never touches these; reset them so a
  // recycled result slot carries no stale values).
  result.staleness = 0;
  result.weight_scale = 1.0;
  result.slowdown = decision.duration;
  result.upload_corrupt = decision.corrupt;
}

void FlAlgorithm::TrainClientsPlan(int round, int salt,
                                   const std::vector<ClientJob>& jobs) {
  int count = static_cast<int>(jobs.size());
  struct SlotCtx {
    util::Rng job_rng;
    util::Rng fault_rng;
    util::Rng codec_rng;
    util::Rng privacy_rng;
    FaultDecision decision;
    bool trains = false;
  };
  // Same per-slot streams as the layer path, constructed from the same
  // seeds; Prepare/train/Finish consume each stream in the same order a
  // monolithic TrainClientJob would.
  std::vector<SlotCtx> ctx;
  ctx.reserve(count);
  for (int slot = 0; slot < count; ++slot) {
    ctx.push_back(SlotCtx{
        util::Rng(ClientJobSeed(config_.seed, round, salt, slot)),
        util::Rng(FaultSeed(config_.seed, round, salt, slot)),
        util::Rng(CodecSeed(config_.seed, round, salt, slot)),
        util::Rng(privacy::PrivacySeed(config_.seed, round, salt, slot)),
        FaultDecision{}, false});
  }
  std::vector<PlanJob> plan_jobs;
  plan_jobs.reserve(count);
  for (int slot = 0; slot < count; ++slot) {
    if (!PrepareClientJob(jobs[slot], *client_slots_[slot],
                          ctx[slot].fault_rng, config_.faults.round_deadline,
                          wire_scratch_[slot], results_[slot],
                          ctx[slot].decision)) {
      continue;
    }
    ctx[slot].trains = true;
    PlanJob pj;
    pj.client = client_slots_[slot];
    pj.init_params = &wire_scratch_[slot].dispatched;
    pj.spec = jobs[slot].spec;
    pj.rng = &ctx[slot].job_rng;
    pj.result = &results_[slot];
    plan_jobs.push_back(pj);
  }

  int n = static_cast<int>(plan_jobs.size());
  if (n > 0) {
    util::ThreadPool* tp = AcquireFlPool();
    if (tp != nullptr && n > 1) {
      // One lockstep cohort per contiguous chunk. Chunking only changes how
      // many replicas each fused GEMM spans; every job's bits come from its
      // own per-slot streams, so the split is schedule-invariant.
      int chunks = std::min(n, std::max(1, FlThreads()));
      tp->ParallelFor(chunks, [&](int c) {
        int begin =
            static_cast<int>(static_cast<std::int64_t>(n) * c / chunks);
        int end =
            static_cast<int>(static_cast<std::int64_t>(n) * (c + 1) / chunks);
        if (end > begin) {
          RunPlanJobs(pool_, plan_jobs.data() + begin, end - begin);
        }
      });
    } else {
      RunPlanJobs(pool_, plan_jobs.data(), n);
    }
  }

  for (int slot = 0; slot < count; ++slot) {
    if (!ctx[slot].trains) continue;
    FinishClientJob(jobs[slot], residual_slots_[slot], ctx[slot].decision,
                    ctx[slot].fault_rng, ctx[slot].codec_rng,
                    ctx[slot].privacy_rng, wire_scratch_[slot],
                    results_[slot]);
  }
}

const std::vector<LocalTrainResult>& FlAlgorithm::TrainClientsAsync(
    int round, int salt, const std::vector<ClientJob>& jobs) {
  int count = static_cast<int>(jobs.size());
  Metrics().client_jobs.Add(count);
  if (static_cast<int>(wire_scratch_.size()) < count) {
    wire_scratch_.resize(count);
  }
  population_.BeginBatch();
  residual_store_.BeginBatch();
  const bool lossy = comm::SchemeIsLossy(config_.codec.scheme);
  client_slots_.resize(count);
  residual_slots_.resize(count);
  for (int slot = 0; slot < count; ++slot) {
    FC_CHECK_GE(jobs[slot].client_id, 0);
    FC_CHECK_LT(jobs[slot].client_id, num_clients());
    client_slots_[slot] = &population_.Client(jobs[slot].client_id);
    residual_slots_[slot] =
        lossy ? &residual_store_.Touch(jobs[slot].client_id) : nullptr;
  }
  async_outcomes_.resize(count);

  const AsyncOptions& async = config_.async;
  const double timeout = async.dispatch_timeout;
  const double t_round = virtual_now_;
  const std::int64_t version = model_version_;
  const bool screen = config_.screening.Enabled();

  // Dispatch every slot, running its whole timeout/retry chain to a
  // terminal outcome on the worker: clients are simulations, so nothing
  // actually waits — "in flight" is just an arrival timestamp. Each attempt
  // derives its training / fault / codec / clock streams from
  // `salt + attempt * stride`, making the outcome a pure function of
  // (seed, round, salt, slot, attempt) — bit-identical across thread
  // counts — with retry streams that cannot collide with other batches'.
  auto dispatch_slot = [&](int slot) {
    AsyncOutcome& out = async_outcomes_[slot];
    out.attempts.clear();
    out.retries = 0;
    const ClientJob& job = jobs[slot];
    ClockProfile profile =
        DrawClockProfile(async.clock, config_.seed, job.client_id);
    double t_dispatch = t_round;
    for (int attempt = 0;; ++attempt) {
      int attempt_salt = salt + attempt * kAsyncRetrySaltStride;
      util::Rng job_rng(ClientJobSeed(config_.seed, round, attempt_salt, slot));
      util::Rng fault_rng(FaultSeed(config_.seed, round, attempt_salt, slot));
      util::Rng codec_rng(CodecSeed(config_.seed, round, attempt_salt, slot));
      util::Rng clock_rng(ClockSeed(config_.seed, round, attempt_salt, slot));
      util::Rng privacy_rng(
          privacy::PrivacySeed(config_.seed, round, attempt_salt, slot));
      LocalTrainResult& result = out.result;
      // The engine owns the deadline race (round_deadline = 0): stragglers
      // train slowly and land late instead of being dropped at a barrier.
      TrainClientJob(job, *client_slots_[slot], residual_slots_[slot],
                     job_rng, fault_rng, codec_rng, privacy_rng,
                     /*round_deadline=*/0.0, wire_scratch_[slot], result);
      result.client_id = job.client_id;
      result.slot = slot;
      result.dispatch_version = version;
      double jitter = DrawJitter(async.clock, clock_rng);
      double duration = SimulatedDuration(
          profile, result.slowdown, static_cast<double>(result.num_steps),
          result.wire_bytes_down, result.wire_bytes_up, jitter);
      const bool vanished = result.dropped;  // dropout: no upload, ever
      // A dropout under a timeout is retried like a straggler: the server
      // cannot tell a vanished device from a slow one — both just miss the
      // deadline. Without a timeout the server notices the silence at the
      // would-be transfer time.
      const bool late = timeout > 0.0 && (vanished || duration > timeout);
      AsyncAttempt log;
      log.wire_down = result.wire_bytes_down;
      log.wire_up = vanished ? 0 : result.wire_bytes_up;
      log.uploaded = !vanished;
      log.timed_out = late;
      out.attempts.push_back(log);
      if (!late && !vanished) {
        // The upload arrives. Screen it now: the dispatched reference dies
        // with this TrainClients call, and rejection is terminal (a
        // Byzantine device is not worth a retry).
        if (screen) {
          util::Status verdict = ScreenUpload(*job.init_params, result.params,
                                              config_.screening);
          if (!verdict.ok()) {
            result.params = *job.init_params;
            result.dropped = true;
            result.fault = FaultKind::kRejected;
          }
        }
        out.arrival = t_dispatch + duration;
        return;
      }
      double t_fail = late ? t_dispatch + timeout : t_dispatch + duration;
      if (late && attempt < async.max_retries) {
        ++out.retries;
        t_dispatch = t_fail;
        continue;
      }
      if (late && !vanished) {
        // Terminal timeout of a device that did train: degrade like a sync
        // straggler — params echo the dispatch, which every consumer
        // already handles.
        result.params = *job.init_params;
        result.dropped = true;
        result.fault = FaultKind::kStraggler;
      }
      out.arrival = t_fail;
      return;
    }
  };
  {
    PhaseScope phase(*this, RoundPhase::kTrain);
    util::ThreadPool* pool = AcquireFlPool();
    if (pool != nullptr && count > 1) {
      pool->ParallelFor(count, dispatch_slot);
    } else {
      for (int slot = 0; slot < count; ++slot) dispatch_slot(slot);
    }
  }

  PhaseScope phase(*this, RoundPhase::kScreen);
  // Fold the dispatch logs serially in slot order — comm accounting, wasted
  // bytes (every non-final attempt bought nothing; so did the final one
  // when the slot terminally failed), timeout/retry tallies — then push the
  // terminal event onto the in-flight heap.
  auto after = [](const PendingUpload& a, const PendingUpload& b) {
    return a.arrival != b.arrival ? a.arrival > b.arrival : a.seq > b.seq;
  };
  for (int slot = 0; slot < count; ++slot) {
    AsyncOutcome& out = async_outcomes_[slot];
    int attempts = static_cast<int>(out.attempts.size());
    for (int a = 0; a < attempts; ++a) {
      const AsyncAttempt& log = out.attempts[a];
      comm_.AddDownload(CommTracker::FloatBytes(model_size_), log.wire_down);
      if (log.uploaded) {
        comm_.AddUpload(CommTracker::FloatBytes(model_size_), log.wire_up);
      }
      if (log.timed_out) ++fault_stats_.timeouts;
      if (a + 1 < attempts || out.result.dropped) {
        std::uint64_t raw = CommTracker::FloatBytes(model_size_);
        comm_.AddWasted(log.uploaded ? raw * 2 : raw,
                        log.wire_down + (log.uploaded ? log.wire_up : 0));
      }
    }
    fault_stats_.retries += out.retries;
    inflight_.push_back(
        PendingUpload{out.arrival, dispatch_seq_++, std::move(out.result)});
    std::push_heap(inflight_.begin(), inflight_.end(), after);
  }

  // Collect arrivals in (arrival, seq) order — advancing the virtual clock
  // — until `buffer_size` usable uploads land or the sky empties. Dropped /
  // rejected arrivals free their buffer slot: they are tallied and skipped
  // without counting against the buffer, so a straggler-heavy cohort
  // degrades the round instead of stalling it.
  const int want = async.buffer_size > 0 ? async.buffer_size : count;
  results_.clear();
  mask_indices_.clear();
  int collected = 0;
  while (collected < want && !inflight_.empty()) {
    std::pop_heap(inflight_.begin(), inflight_.end(), after);
    PendingUpload event = std::move(inflight_.back());
    inflight_.pop_back();
    virtual_now_ = std::max(virtual_now_, event.arrival);
    LocalTrainResult& result = event.result;
    // Corruption is counted when the mangled upload reaches the server,
    // whether or not screening then discarded it.
    if (result.upload_corrupt && (result.fault == FaultKind::kCorrupted ||
                                  result.fault == FaultKind::kRejected)) {
      ++fault_stats_.corrupted;
    }
    // Clipping mirrors corruption: tallied when the clipped upload reaches
    // the server. A rejected arrival did reach it (screening then discarded
    // it); a dropout or terminal straggler never uploaded at all.
    if (result.dp_clipped &&
        (!result.dropped || result.fault == FaultKind::kRejected)) {
      ++privacy_stats_.clipped;
    }
    if (result.dropped) {
      if (result.fault == FaultKind::kDropout) ++fault_stats_.dropouts;
      if (result.fault == FaultKind::kStraggler) ++fault_stats_.stragglers;
      if (result.fault == FaultKind::kRejected) ++fault_stats_.rejected;
      // A rejected arrival is a dropped member of this collection event's
      // masking cohort: its pair masks dangle and recovery reconstructs
      // them. (Dropouts and terminal stragglers never uploaded a masked
      // sum, so they were never in the cohort.)
      if (config_.secure_agg.Enabled() &&
          result.fault == FaultKind::kRejected) {
        mask_indices_.push_back(-1);
      }
      continue;
    }
    const int tau = static_cast<int>(model_version_ - result.dispatch_version);
    result.staleness = tau;
    result.weight_scale =
        StalenessWeight(async.staleness, async.staleness_exponent, tau);
    round_staleness_sum_ += tau;
    ++round_staleness_count_;
    round_staleness_max_ = std::max(round_staleness_max_, tau);
    if (obs::MetricsEnabled()) {
      Metrics().staleness.Observe(static_cast<double>(tau));
    }
    Metrics().uploads_accepted.Add(1);
    round_loss_sum_ += result.mean_loss;
    ++round_loss_count_;
    if (config_.secure_agg.Enabled()) {
      mask_indices_.push_back(static_cast<int>(results_.size()));
    }
    results_.push_back(std::move(result));
    ++collected;
  }
  // Secure-aggregation overlay over this collection event's cohort — the
  // arrivals popped above, in pop order. Indices (not pointers) were
  // recorded because results_ reallocates as it grows; pair masks key on
  // cohort position, so duplicate client ids (the same client sampled by
  // overlapping rounds) still cancel exactly.
  if (config_.secure_agg.Enabled() && !mask_indices_.empty()) {
    mask_slots_.clear();
    mask_slots_.reserve(mask_indices_.size());
    for (int index : mask_indices_) {
      mask_slots_.push_back(index < 0 ? nullptr : &results_[index].params);
    }
    ApplyMaskingOverlay(round, salt, mask_slots_);
  }
  // Every dispatched job ran the DP mechanism once, so one noised event at
  // this dispatch batch's sampling rate enters the ledger — regardless of
  // when its upload is collected.
  if (config_.dp.Noised() && count > 0) {
    accountant_.AccumulateRound(
        std::min(1.0, static_cast<double>(count) /
                          static_cast<double>(num_clients())),
        config_.dp.noise_multiplier);
  }
  // The aggregation the caller performs on these results is one version.
  ++model_version_;
  return results_;
}

FlatParams FlAlgorithm::WeightedAverage(const std::vector<FlatParams>& models,
                                        const std::vector<double>& weights) {
  FC_CHECK_EQ(models.size(), weights.size());
  std::vector<const FlatParams*> pointers(models.size());
  for (std::size_t m = 0; m < models.size(); ++m) pointers[m] = &models[m];
  FlatParams result;
  WeightedAverageInto(pointers, weights, result);
  return result;
}

FlatParams FlAlgorithm::Average(const std::vector<FlatParams>& models) {
  FC_CHECK(!models.empty());
  return flat_ops::Mean(models);
}

void FlAlgorithm::WeightedAverageInto(
    const std::vector<const FlatParams*>& models,
    const std::vector<double>& weights, FlatParams& out) {
  FC_CHECK(!models.empty());
  FC_CHECK_EQ(models.size(), weights.size());
  double total_weight = 0.0;
  for (double w : weights) {
    FC_CHECK_GE(w, 0.0);
    total_weight += w;
  }
  FC_CHECK_GT(total_weight, 0.0);

  out.assign(models[0]->size(), 0.0f);  // capacity-retaining
  // Range-sharded accumulation: each contiguous coordinate range walks the
  // models in ascending order, exactly the element-wise order of the serial
  // loop (AxpyRange is the serial Axpy's inner loop), so the result is
  // bit-identical across --fl_threads.
  ParallelRanges(
      static_cast<std::int64_t>(out.size()), kMinAggRangeElems,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::size_t m = 0; m < models.size(); ++m) {
          float factor = static_cast<float>(weights[m] / total_weight);
          flat_ops::AxpyRange(out.data() + begin, factor,
                              models[m]->data() + begin,
                              static_cast<std::size_t>(end - begin));
        }
      });
}

void FlAlgorithm::AverageInto(const std::vector<const FlatParams*>& models,
                              FlatParams& out) {
  FC_CHECK(!models.empty());
  float factor = 1.0f / static_cast<float>(models.size());
  out.assign(models[0]->size(), 0.0f);
  ParallelRanges(
      static_cast<std::int64_t>(out.size()), kMinAggRangeElems,
      [&](std::int64_t begin, std::int64_t end) {
        for (const FlatParams* model : models) {
          flat_ops::AxpyRange(out.data() + begin, factor,
                              model->data() + begin,
                              static_cast<std::size_t>(end - begin));
        }
      });
}

void FlAlgorithm::Aggregate(const std::vector<const FlatParams*>& models,
                            const std::vector<double>& weights,
                            const FlatParams& reference, FlatParams& out) {
  PhaseScope phase(*this, RoundPhase::kAggregate);
  switch (config_.aggregator.kind) {
    case AggregatorKind::kWeightedMean:
      WeightedAverageInto(models, weights, out);
      return;
    case AggregatorKind::kTrimmedMean: {
      FC_TRACE_SPAN("agg.trimmed_mean");
      Metrics().robust_aggregations.Add(1);
      TrimmedMeanInto(models, config_.aggregator.trim_ratio, agg_column_, out);
      return;
    }
    case AggregatorKind::kCoordinateMedian: {
      FC_TRACE_SPAN("agg.coordinate_median");
      Metrics().robust_aggregations.Add(1);
      CoordinateMedianInto(models, agg_column_, out);
      return;
    }
    case AggregatorKind::kNormClippedMean: {
      FC_TRACE_SPAN("agg.norm_clipped_mean");
      Metrics().robust_aggregations.Add(1);
      NormClippedWeightedAverageInto(models, weights, reference,
                                     config_.aggregator.clip_norm,
                                     agg_scratch_, out);
      return;
    }
  }
  FC_CHECK(false) << "unreachable";
}

std::uint64_t FlAlgorithm::ConfigFingerprint() const {
  auto mix_float = [](std::uint64_t h, float value) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    return MixSeed(h ^ bits);
  };
  std::uint64_t h = MixSeed(0x666370ULL);  // "fcp"
  for (char c : name_) h = MixSeed(h ^ static_cast<std::uint8_t>(c));
  h = MixSeed(h ^ config_.seed);
  h = MixSeed(h ^ static_cast<std::uint64_t>(config_.clients_per_round));
  h = MixSeed(h ^ static_cast<std::uint64_t>(num_clients()));
  h = MixSeed(h ^ static_cast<std::uint64_t>(model_size_));
  h = MixSeed(h ^ static_cast<std::uint64_t>(config_.train.local_epochs));
  h = MixSeed(h ^ static_cast<std::uint64_t>(config_.train.batch_size));
  h = mix_float(h, config_.train.lr);
  h = mix_float(h, config_.train.momentum);
  h = mix_float(h, config_.train.weight_decay);
  h = mix_float(h, config_.train.grad_clip_norm);
  h = MixSeed(h ^ static_cast<std::uint64_t>(config_.eval_batch_size));
  // Only a non-default codec perturbs the fingerprint, so checkpoints from
  // builds that predate the wire codec (implicitly identity) keep loading.
  if (config_.codec.scheme != comm::Scheme::kIdentity) {
    h = MixSeed(h ^ (0x636f646563ULL +
                     static_cast<std::uint64_t>(config_.codec.scheme)));
    h = mix_float(h, static_cast<float>(config_.codec.topk_fraction));
  }
  // Only the async engine perturbs the fingerprint: it reshapes the
  // training trajectory itself, while the sync clock is observation-only
  // (virtual time rides in the v4 body), so pre-engine checkpoints keep
  // loading into sync runs.
  if (config_.async.mode == RoundMode::kAsync) {
    h = MixSeed(h ^ (0x6173796e63ULL +  // "async"
                     static_cast<std::uint64_t>(config_.async.buffer_size)));
    h = MixSeed(h ^ static_cast<std::uint64_t>(config_.async.staleness));
    h = mix_float(h, static_cast<float>(config_.async.staleness_exponent));
    h = mix_float(h, static_cast<float>(config_.async.dispatch_timeout));
    h = MixSeed(h ^ static_cast<std::uint64_t>(config_.async.max_retries));
    h = mix_float(h,
                  static_cast<float>(config_.async.clock.compute_speed_min));
    h = mix_float(h,
                  static_cast<float>(config_.async.clock.compute_speed_max));
    h = mix_float(h, static_cast<float>(config_.async.clock.bandwidth_min));
    h = mix_float(h, static_cast<float>(config_.async.clock.bandwidth_max));
    h = mix_float(h, static_cast<float>(config_.async.clock.jitter));
  }
  // Privacy follows the codec precedent: only enabled DP / masking perturb
  // the fingerprint, so checkpoints from builds that predate the privacy
  // subsystem (both features implicitly off) keep loading.
  if (config_.dp.Enabled()) {
    h = MixSeed(h ^ 0x70726976616379ULL);  // "privacy"
    h = mix_float(h, config_.dp.clip_norm);
    h = mix_float(h, config_.dp.noise_multiplier);
    h = mix_float(h, static_cast<float>(config_.dp.delta));
  }
  if (config_.secure_agg.Enabled()) {
    h = MixSeed(h ^ (0x7061697273656564ULL +  // "pairseed"
                     static_cast<std::uint64_t>(
                         config_.secure_agg.fixed_point_bits)));
  }
  // bf16 replica arenas change the training trajectory (activations round
  // on every arena store), so the flag perturbs the fingerprint; exec mode
  // itself stays out of it, fp32 plan == layers bit-for-bit.
  if (config_.train.plan_bf16) {
    h = MixSeed(h ^ 0x62663136ULL);  // "bf16"
  }
  return h;
}

util::Status FlAlgorithm::SaveCheckpoint(const std::string& path) {
  return SaveCheckpoint(path, kCheckpointVersion);
}

util::Status FlAlgorithm::SaveCheckpoint(const std::string& path,
                                         std::uint32_t version) {
  FC_TRACE_SPAN("checkpoint.save");
  FC_CHECK_GE(version, 2u);
  FC_CHECK_LE(version, kCheckpointVersion);
  const std::int64_t start_us =
      obs::MetricsEnabled() ? obs::TraceNowMicros() : 0;
  StateWriter writer(version);
  writer.WriteU64(ConfigFingerprint());
  writer.WriteI64(completed_rounds_);

  util::Rng::State rng_state = rng_.GetState();
  for (std::uint64_t word : rng_state.words) writer.WriteU64(word);
  writer.WriteBool(rng_state.has_cached_normal);
  writer.WriteF64(rng_state.cached_normal);

  writer.WriteU64(comm_.total_download_bytes());
  writer.WriteU64(comm_.total_upload_bytes());
  writer.WriteU64(comm_.total_wire_download_bytes());
  writer.WriteU64(comm_.total_wire_upload_bytes());
  if (writer.version() >= 4) {
    writer.WriteU64(comm_.total_wasted_bytes());
    writer.WriteU64(comm_.total_wire_wasted_bytes());
  }

  writer.WriteI64(fault_stats_.dropouts);
  writer.WriteI64(fault_stats_.stragglers);
  writer.WriteI64(fault_stats_.corrupted);
  writer.WriteI64(fault_stats_.rejected);
  if (writer.version() >= 4) {
    writer.WriteI64(fault_stats_.timeouts);
    writer.WriteI64(fault_stats_.retries);
  }

  const std::vector<RoundRecord>& records = history_.records();
  writer.WriteU64(records.size());
  for (const RoundRecord& record : records) {
    writer.WriteI64(record.round);
    writer.WriteF32(record.test_loss);
    writer.WriteF32(record.test_accuracy);
    writer.WriteF64(record.bytes_up);
    writer.WriteF64(record.bytes_down);
    writer.WriteF64(record.mean_client_loss);
  }

  // Error-feedback residuals: without them a resumed lossy-codec run would
  // re-quantise against zeroed residuals and diverge from the uninterrupted
  // run. v3 writes a sparse id-keyed table covering only clients that ever
  // held a residual (spilled entries are read back through the store, so
  // residency is invisible); v2 wrote one dense row per client.
  const bool lossy = comm::SchemeIsLossy(config_.codec.scheme);
  if (writer.version() >= 3) {
    std::vector<std::int64_t> ids = residual_store_.TouchedIds();
    writer.WriteU64(ids.size());
    for (std::int64_t id : ids) {
      writer.WriteI64(id);
      FC_CHECK(residual_store_.Read(id, state_scratch_));
      writer.WriteFloats(state_scratch_);
    }
  } else {
    // Dense v2 downgrade: only valid while N fits the historical format.
    const std::uint64_t dense =
        lossy ? static_cast<std::uint64_t>(num_clients()) : 0;
    writer.WriteU64(dense);
    for (std::uint64_t id = 0; id < dense; ++id) {
      state_scratch_.clear();
      residual_store_.Read(static_cast<std::int64_t>(id), state_scratch_);
      writer.WriteFloats(state_scratch_);
    }
  }

  // v4 event-engine state: the virtual clock, the version/dispatch
  // counters, and the in-flight heap serialised in array order (so a
  // resumed run pops bit-identically). Downgraded files drop it: a
  // mid-buffer async run loses its pending arrivals.
  if (writer.version() >= 4) {
    writer.WriteF64(virtual_now_);
    writer.WriteI64(model_version_);
    writer.WriteI64(dispatch_seq_);
    writer.WriteU64(inflight_.size());
    for (const PendingUpload& pending : inflight_) {
      writer.WriteF64(pending.arrival);
      writer.WriteI64(pending.seq);
      const LocalTrainResult& r = pending.result;
      writer.WriteFloats(r.params);
      writer.WriteI64(r.num_samples);
      writer.WriteI64(r.num_steps);
      writer.WriteF32(r.lr);
      writer.WriteF64(r.mean_loss);
      writer.WriteU64(r.wire_bytes_down);
      writer.WriteU64(r.wire_bytes_up);
      writer.WriteBool(r.dropped);
      writer.WriteU32(static_cast<std::uint32_t>(r.fault));
      writer.WriteI64(r.client_id);
      writer.WriteI64(static_cast<std::int64_t>(r.slot));
      writer.WriteI64(r.dispatch_version);
      writer.WriteF64(r.slowdown);
      writer.WriteBool(r.upload_corrupt);
      if (writer.version() >= 5) writer.WriteBool(r.dp_clipped);
    }
  }

  // v5 privacy state: the RDP accountant's per-order totals (exact f64
  // bits, so the restored epsilon is bit-identical) and the privacy
  // counters. Downgraded files drop it: a resumed DP run restarts its
  // ledger, under-reporting the spent budget.
  if (writer.version() >= 5) {
    writer.WriteI64(accountant_.rounds());
    writer.WriteDoubles(accountant_.order_totals());
    writer.WriteI64(privacy_stats_.clipped);
    writer.WriteI64(privacy_stats_.mask_pairs);
    writer.WriteI64(privacy_stats_.mask_recoveries);
  }

  SaveExtraState(writer);
  util::Status status = WriteStateFile(path, writer);
  if (obs::MetricsEnabled()) {
    Metrics().checkpoint_save_ms.Observe(
        static_cast<double>(obs::TraceNowMicros() - start_us) / 1000.0);
  }
  return status;
}

util::Status FlAlgorithm::LoadCheckpoint(const std::string& path) {
  FC_TRACE_SPAN("checkpoint.load");
  const std::int64_t start_us =
      obs::MetricsEnabled() ? obs::TraceNowMicros() : 0;
  util::StatusOr<StateReader> reader_or = ReadStateFile(path);
  if (!reader_or.ok()) return reader_or.status();
  StateReader reader = std::move(reader_or).value();

  std::uint64_t fingerprint = 0;
  FC_RETURN_IF_ERROR(reader.ReadU64(fingerprint));
  if (fingerprint != ConfigFingerprint()) {
    return util::Status::FailedPrecondition(
        "checkpoint was written by a different run configuration (algorithm, "
        "seed, client count, model, or training options differ)");
  }

  std::int64_t completed = 0;
  FC_RETURN_IF_ERROR(reader.ReadI64(completed));
  if (completed < 0) {
    return util::Status::InvalidArgument("negative completed-round counter");
  }

  util::Rng::State rng_state;
  for (std::uint64_t& word : rng_state.words) {
    FC_RETURN_IF_ERROR(reader.ReadU64(word));
  }
  FC_RETURN_IF_ERROR(reader.ReadBool(rng_state.has_cached_normal));
  FC_RETURN_IF_ERROR(reader.ReadF64(rng_state.cached_normal));

  std::uint64_t total_down = 0;
  std::uint64_t total_up = 0;
  std::uint64_t total_wire_down = 0;
  std::uint64_t total_wire_up = 0;
  if (reader.version() >= 2) {
    FC_RETURN_IF_ERROR(reader.ReadU64(total_down));
    FC_RETURN_IF_ERROR(reader.ReadU64(total_up));
    FC_RETURN_IF_ERROR(reader.ReadU64(total_wire_down));
    FC_RETURN_IF_ERROR(reader.ReadU64(total_wire_up));
  } else {
    // v1 stored the totals as doubles and predates wire accounting; the
    // integers are exact below 2^53 and wire falls back to raw.
    double down = 0.0;
    double up = 0.0;
    FC_RETURN_IF_ERROR(reader.ReadF64(down));
    FC_RETURN_IF_ERROR(reader.ReadF64(up));
    if (down < 0.0 || up < 0.0) {
      return util::Status::InvalidArgument("negative checkpoint byte totals");
    }
    total_down = static_cast<std::uint64_t>(down);
    total_up = static_cast<std::uint64_t>(up);
    total_wire_down = total_down;
    total_wire_up = total_up;
  }
  std::uint64_t total_wasted = 0;
  std::uint64_t total_wire_wasted = 0;
  if (reader.version() >= 4) {
    FC_RETURN_IF_ERROR(reader.ReadU64(total_wasted));
    FC_RETURN_IF_ERROR(reader.ReadU64(total_wire_wasted));
  }

  FaultStats stats;
  FC_RETURN_IF_ERROR(reader.ReadI64(stats.dropouts));
  FC_RETURN_IF_ERROR(reader.ReadI64(stats.stragglers));
  FC_RETURN_IF_ERROR(reader.ReadI64(stats.corrupted));
  FC_RETURN_IF_ERROR(reader.ReadI64(stats.rejected));
  if (reader.version() >= 4) {
    FC_RETURN_IF_ERROR(reader.ReadI64(stats.timeouts));
    FC_RETURN_IF_ERROR(reader.ReadI64(stats.retries));
  }

  std::uint64_t record_count = 0;
  FC_RETURN_IF_ERROR(reader.ReadU64(record_count));
  MetricsHistory restored;
  for (std::uint64_t i = 0; i < record_count; ++i) {
    RoundRecord record;
    std::int64_t round = 0;
    FC_RETURN_IF_ERROR(reader.ReadI64(round));
    record.round = static_cast<int>(round);
    FC_RETURN_IF_ERROR(reader.ReadF32(record.test_loss));
    FC_RETURN_IF_ERROR(reader.ReadF32(record.test_accuracy));
    FC_RETURN_IF_ERROR(reader.ReadF64(record.bytes_up));
    FC_RETURN_IF_ERROR(reader.ReadF64(record.bytes_down));
    FC_RETURN_IF_ERROR(reader.ReadF64(record.mean_client_loss));
    restored.Add(record);
  }

  // Residual table: v3 sparse (id-keyed, ascending), v2 dense (one row per
  // client, empty rows for clients that never uploaded). Staged into
  // (id, residual) pairs and committed to the store only after every read
  // succeeds.
  std::vector<std::pair<std::int64_t, FlatParams>> residuals;
  if (reader.version() >= 3) {
    std::uint64_t residual_count = 0;
    FC_RETURN_IF_ERROR(reader.ReadU64(residual_count));
    residuals.reserve(static_cast<std::size_t>(residual_count));
    std::int64_t prev_id = -1;
    for (std::uint64_t i = 0; i < residual_count; ++i) {
      std::int64_t id = 0;
      FC_RETURN_IF_ERROR(reader.ReadI64(id));
      if (id <= prev_id || id >= num_clients()) {
        return util::Status::InvalidArgument(
            "checkpoint residual table ids must be ascending and in range");
      }
      prev_id = id;
      FlatParams residual;
      FC_RETURN_IF_ERROR(reader.ReadFloats(residual));
      if (!residual.empty() &&
          residual.size() != static_cast<std::size_t>(model_size_)) {
        return util::Status::InvalidArgument(
            "checkpoint residual does not match the model size");
      }
      residuals.emplace_back(id, std::move(residual));
    }
  } else if (reader.version() >= 2) {
    std::uint64_t residual_count = 0;
    FC_RETURN_IF_ERROR(reader.ReadU64(residual_count));
    if (residual_count != 0 &&
        residual_count != static_cast<std::uint64_t>(num_clients())) {
      return util::Status::InvalidArgument(
          "checkpoint residual table has " + std::to_string(residual_count) +
          " clients, expected " + std::to_string(num_clients()));
    }
    for (std::uint64_t id = 0; id < residual_count; ++id) {
      FlatParams residual;
      FC_RETURN_IF_ERROR(reader.ReadFloats(residual));
      if (!residual.empty() &&
          residual.size() != static_cast<std::size_t>(model_size_)) {
        return util::Status::InvalidArgument(
            "checkpoint residual does not match the model size");
      }
      if (!residual.empty()) {
        residuals.emplace_back(static_cast<std::int64_t>(id),
                               std::move(residual));
      }
    }
  }

  // v4 event-engine state; pre-v4 files restore with a zeroed engine (the
  // defaults below), which is exactly the state a sync run never left.
  double virtual_now = 0.0;
  std::int64_t model_version = 0;
  std::int64_t dispatch_seq = 0;
  std::vector<PendingUpload> inflight;
  if (reader.version() >= 4) {
    FC_RETURN_IF_ERROR(reader.ReadF64(virtual_now));
    FC_RETURN_IF_ERROR(reader.ReadI64(model_version));
    FC_RETURN_IF_ERROR(reader.ReadI64(dispatch_seq));
    std::uint64_t inflight_count = 0;
    FC_RETURN_IF_ERROR(reader.ReadU64(inflight_count));
    inflight.reserve(static_cast<std::size_t>(inflight_count));
    for (std::uint64_t i = 0; i < inflight_count; ++i) {
      PendingUpload pending;
      FC_RETURN_IF_ERROR(reader.ReadF64(pending.arrival));
      FC_RETURN_IF_ERROR(reader.ReadI64(pending.seq));
      LocalTrainResult& r = pending.result;
      FC_RETURN_IF_ERROR(reader.ReadFloats(r.params));
      if (r.params.size() != static_cast<std::size_t>(model_size_)) {
        return util::Status::InvalidArgument(
            "checkpoint in-flight params do not match the model size");
      }
      std::int64_t num_samples = 0;
      std::int64_t num_steps = 0;
      FC_RETURN_IF_ERROR(reader.ReadI64(num_samples));
      FC_RETURN_IF_ERROR(reader.ReadI64(num_steps));
      r.num_samples = static_cast<int>(num_samples);
      r.num_steps = static_cast<int>(num_steps);
      FC_RETURN_IF_ERROR(reader.ReadF32(r.lr));
      FC_RETURN_IF_ERROR(reader.ReadF64(r.mean_loss));
      FC_RETURN_IF_ERROR(reader.ReadU64(r.wire_bytes_down));
      FC_RETURN_IF_ERROR(reader.ReadU64(r.wire_bytes_up));
      FC_RETURN_IF_ERROR(reader.ReadBool(r.dropped));
      std::uint32_t fault = 0;
      FC_RETURN_IF_ERROR(reader.ReadU32(fault));
      if (fault > static_cast<std::uint32_t>(FaultKind::kRejected)) {
        return util::Status::InvalidArgument(
            "checkpoint in-flight fault kind out of range");
      }
      r.fault = static_cast<FaultKind>(fault);
      FC_RETURN_IF_ERROR(reader.ReadI64(r.client_id));
      std::int64_t slot = 0;
      FC_RETURN_IF_ERROR(reader.ReadI64(slot));
      r.slot = static_cast<int>(slot);
      FC_RETURN_IF_ERROR(reader.ReadI64(r.dispatch_version));
      FC_RETURN_IF_ERROR(reader.ReadF64(r.slowdown));
      FC_RETURN_IF_ERROR(reader.ReadBool(r.upload_corrupt));
      if (reader.version() >= 5) {
        FC_RETURN_IF_ERROR(reader.ReadBool(r.dp_clipped));
      }
      inflight.push_back(std::move(pending));
    }
  }

  // v5 privacy state; pre-v5 files restore with an empty ledger and zeroed
  // counters — exactly the state a pre-privacy run never left.
  std::int64_t accountant_rounds = 0;
  std::vector<double> order_totals;
  PrivacyStats privacy_stats;
  if (reader.version() >= 5) {
    FC_RETURN_IF_ERROR(reader.ReadI64(accountant_rounds));
    FC_RETURN_IF_ERROR(reader.ReadDoubles(order_totals));
    if (accountant_rounds < 0) {
      return util::Status::InvalidArgument(
          "negative checkpoint accountant round counter");
    }
    if (order_totals.size() != privacy::RdpAccountant::Orders().size()) {
      return util::Status::InvalidArgument(
          "checkpoint accountant order grid does not match this build");
    }
    FC_RETURN_IF_ERROR(reader.ReadI64(privacy_stats.clipped));
    FC_RETURN_IF_ERROR(reader.ReadI64(privacy_stats.mask_pairs));
    FC_RETURN_IF_ERROR(reader.ReadI64(privacy_stats.mask_recoveries));
  }

  FC_RETURN_IF_ERROR(LoadExtraState(reader));
  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument("trailing bytes in checkpoint");
  }

  // Commit the base state only after every read (including the subclass
  // state) succeeded.
  completed_rounds_ = static_cast<int>(completed);
  rng_.SetState(rng_state);
  comm_.Restore(total_down, total_up, total_wire_down, total_wire_up,
                total_wasted, total_wire_wasted);
  fault_stats_ = stats;
  privacy_stats_ = privacy_stats;
  if (reader.version() >= 5) {
    accountant_.Restore(order_totals, accountant_rounds);
  } else {
    accountant_.Reset();
  }
  history_ = std::move(restored);
  virtual_now_ = virtual_now;
  model_version_ = model_version;
  dispatch_seq_ = dispatch_seq;
  inflight_ = std::move(inflight);
  residual_store_.Clear();
  for (auto& [id, residual] : residuals) {
    residual_store_.Touch(id) = std::move(residual);
  }
  if (obs::MetricsEnabled()) {
    Metrics().checkpoint_load_ms.Observe(
        static_cast<double>(obs::TraceNowMicros() - start_us) / 1000.0);
  }
  return util::Status::Ok();
}

double FlAlgorithm::TakeRoundClientLoss() {
  double mean =
      round_loss_count_ > 0 ? round_loss_sum_ / round_loss_count_ : 0.0;
  round_loss_sum_ = 0.0;
  round_loss_count_ = 0;
  return mean;
}

}  // namespace fedcross::fl
