#include "fl/algorithm.h"

#include <algorithm>
#include <cstring>

#include "fl/flat_ops.h"
#include "fl/parallel.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace fedcross::fl {
namespace {

// SplitMix64 finalizer: bijective avalanche mix.
std::uint64_t MixSeed(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Deterministic per-(run, round, batch, slot) seed for one client job. This
// derivation — not the shared run Rng — is what makes the parallel schedule
// bit-identical to the sequential one.
std::uint64_t ClientJobSeed(std::uint64_t seed, int round, int salt,
                            int slot) {
  std::uint64_t h = MixSeed(seed ^ 0x636c69656e74ULL);  // "client"
  h = MixSeed(h + static_cast<std::uint64_t>(round));
  h = MixSeed(h + static_cast<std::uint64_t>(salt));
  return MixSeed(h + static_cast<std::uint64_t>(slot));
}

}  // namespace

FlAlgorithm::FlAlgorithm(std::string name, AlgorithmConfig config,
                         data::FederatedDataset data,
                         models::ModelFactory factory)
    : name_(std::move(name)),
      config_(config),
      factory_(std::move(factory)),
      pool_(factory_),
      test_(std::move(data.test)),
      rng_(config.seed) {
  // Legacy shorthand: fold dropout_prob into the default fault profile.
  if (config_.dropout_prob > 0.0 && config_.faults.profile.dropout_prob == 0.0) {
    config_.faults.profile.dropout_prob = config_.dropout_prob;
  }
  FC_CHECK(test_ != nullptr);
  FC_CHECK_GT(config_.clients_per_round, 0);
  FC_CHECK_LE(config_.clients_per_round,
              static_cast<int>(data.client_train.size()))
      << "K exceeds the number of clients";
  clients_.reserve(data.client_train.size());
  for (std::size_t i = 0; i < data.client_train.size(); ++i) {
    clients_.emplace_back(static_cast<int>(i), data.client_train[i]);
  }
  // Probe the pool's first replica once for the model size and the factory's
  // initial parameters; the replica is recycled by every later job.
  ModelPool::Lease probe = pool_.Acquire();
  model_size_ = probe->model.NumParams();
  initial_params_ = probe->model.ParamsToFlat();
}

const MetricsHistory& FlAlgorithm::Run(int rounds, int eval_every,
                                       bool verbose) {
  FC_CHECK_GT(eval_every, 0);
  for (int round = completed_rounds_; round < rounds; ++round) {
    comm_.BeginRound();
    round_loss_sum_ = 0.0;
    round_loss_count_ = 0;
    RunRound(round);
    completed_rounds_ = round + 1;
    if ((round + 1) % eval_every == 0 || round == rounds - 1) {
      EvalResult eval = Evaluate(GlobalParams());
      RoundRecord record;
      record.round = round + 1;
      record.test_loss = eval.loss;
      record.test_accuracy = eval.accuracy;
      record.bytes_up = comm_.round_upload_bytes();
      record.bytes_down = comm_.round_download_bytes();
      record.mean_client_loss = TakeRoundClientLoss();
      history_.Add(record);
      if (verbose) {
        FC_LOG(Info) << name_ << " round " << record.round << " acc "
                     << record.test_accuracy << " loss " << record.test_loss;
      }
    }
    if (checkpoint_every_ > 0 &&
        ((round + 1) % checkpoint_every_ == 0 || round == rounds - 1)) {
      util::Status saved = SaveCheckpoint(checkpoint_path_);
      if (!saved.ok()) {
        FC_LOG(Warning) << name_ << " checkpoint to " << checkpoint_path_
                        << " failed: " << saved.ToString();
      }
    }
  }
  return history_;
}

void FlAlgorithm::EnableAutoCheckpoint(std::string path, int every_rounds) {
  checkpoint_path_ = std::move(path);
  checkpoint_every_ = checkpoint_path_.empty() ? 0 : every_rounds;
}

EvalResult FlAlgorithm::Evaluate(const FlatParams& params) {
  return EvaluateParams(pool_, params, *test_, config_.eval_batch_size);
}

std::vector<int> FlAlgorithm::SampleClients() {
  int want = config_.clients_per_round;
  if (config_.faults.over_provision > 0) {
    want = std::min(num_clients(), want + config_.faults.over_provision);
  }
  return rng_.SampleWithoutReplacement(num_clients(), want);
}

const std::vector<LocalTrainResult>& FlAlgorithm::TrainClients(
    int round, int salt, const std::vector<ClientJob>& jobs) {
  int count = static_cast<int>(jobs.size());
  // resize keeps surviving elements' params capacity from the last round.
  results_.resize(count);
  auto train_slot = [&](int slot) {
    util::Rng job_rng(ClientJobSeed(config_.seed, round, salt, slot));
    // The fault stream is derived independently of the training stream, so
    // fault draws can never perturb a surviving client's trajectory.
    util::Rng fault_rng(FaultSeed(config_.seed, round, salt, slot));
    TrainClientJob(jobs[slot], job_rng, fault_rng, results_[slot]);
  };
  util::ThreadPool* pool = AcquireFlPool();
  if (pool != nullptr && count > 1) {
    pool->ParallelFor(count, train_slot);
  } else {
    for (int slot = 0; slot < count; ++slot) train_slot(slot);
  }
  // Bookkeeping and upload screening on the calling thread, in job order,
  // so accounting is race-free and independent of the parallel schedule.
  bool screen = config_.screening.Enabled();
  for (int slot = 0; slot < count; ++slot) {
    LocalTrainResult& result = results_[slot];
    comm_.AddDownload(CommTracker::FloatBytes(model_size_));
    if (result.fault == FaultKind::kDropout) ++fault_stats_.dropouts;
    if (result.fault == FaultKind::kStraggler) ++fault_stats_.stragglers;
    if (result.dropped) continue;  // the device never uploads
    comm_.AddUpload(CommTracker::FloatBytes(model_size_));
    if (result.fault == FaultKind::kCorrupted) ++fault_stats_.corrupted;
    if (screen) {
      util::Status verdict = ScreenUpload(*jobs[slot].init_params,
                                          result.params, config_.screening);
      if (!verdict.ok()) {
        // Degrade exactly like a dropout: the contribution is discarded and
        // params echo the dispatched model (so FedCross keeps its
        // middleware copy).
        result.params = *jobs[slot].init_params;
        result.dropped = true;
        result.fault = FaultKind::kRejected;
        ++fault_stats_.rejected;
        continue;
      }
    }
    round_loss_sum_ += result.mean_loss;
    ++round_loss_count_;
  }
  return results_;
}

void FlAlgorithm::TrainClientJob(const ClientJob& job, util::Rng& rng,
                                 util::Rng& fault_rng,
                                 LocalTrainResult& result) {
  FC_CHECK_GE(job.client_id, 0);
  FC_CHECK_LT(job.client_id, num_clients());
  FC_CHECK(job.init_params != nullptr);
  FC_CHECK(job.spec != nullptr);

  const FaultProfile& profile = config_.faults.ProfileFor(job.client_id);
  FaultDecision decision =
      DrawFaults(profile, config_.faults.round_deadline, fault_rng);

  // Dropout / straggler timeout: the device received the model but its
  // upload never reaches the round. params echo the dispatch so FedCross
  // keeps its middleware copy.
  if (decision.dropped || decision.timed_out) {
    result.params = *job.init_params;  // copy-assign recycles the buffer
    result.num_samples = clients_[job.client_id].num_samples();
    result.num_steps = 0;
    result.lr = 0.0f;
    result.mean_loss = 0.0;
    result.dropped = true;
    result.fault =
        decision.dropped ? FaultKind::kDropout : FaultKind::kStraggler;
    return;
  }

  clients_[job.client_id].Train(pool_, *job.init_params, *job.spec, rng,
                                result);
  if (config_.dp.clip_norm > 0.0f) {
    result.params =
        SanitizeUpdate(*job.init_params, result.params, config_.dp, rng);
  }
  if (decision.corrupt) {
    CorruptUpload(profile, *job.init_params, result.params, fault_rng);
    result.fault = FaultKind::kCorrupted;
  }
}

FlatParams FlAlgorithm::WeightedAverage(const std::vector<FlatParams>& models,
                                        const std::vector<double>& weights) {
  FC_CHECK_EQ(models.size(), weights.size());
  std::vector<const FlatParams*> pointers(models.size());
  for (std::size_t m = 0; m < models.size(); ++m) pointers[m] = &models[m];
  FlatParams result;
  WeightedAverageInto(pointers, weights, result);
  return result;
}

FlatParams FlAlgorithm::Average(const std::vector<FlatParams>& models) {
  FC_CHECK(!models.empty());
  return flat_ops::Mean(models);
}

void FlAlgorithm::WeightedAverageInto(
    const std::vector<const FlatParams*>& models,
    const std::vector<double>& weights, FlatParams& out) {
  FC_CHECK(!models.empty());
  FC_CHECK_EQ(models.size(), weights.size());
  double total_weight = 0.0;
  for (double w : weights) {
    FC_CHECK_GE(w, 0.0);
    total_weight += w;
  }
  FC_CHECK_GT(total_weight, 0.0);

  out.assign(models[0]->size(), 0.0f);  // capacity-retaining
  for (std::size_t m = 0; m < models.size(); ++m) {
    float factor = static_cast<float>(weights[m] / total_weight);
    flat_ops::Axpy(out, factor, *models[m]);
  }
}

void FlAlgorithm::AverageInto(const std::vector<const FlatParams*>& models,
                              FlatParams& out) {
  FC_CHECK(!models.empty());
  float factor = 1.0f / static_cast<float>(models.size());
  out.assign(models[0]->size(), 0.0f);
  for (const FlatParams* model : models) {
    flat_ops::Axpy(out, factor, *model);
  }
}

void FlAlgorithm::Aggregate(const std::vector<const FlatParams*>& models,
                            const std::vector<double>& weights,
                            const FlatParams& reference, FlatParams& out) {
  switch (config_.aggregator.kind) {
    case AggregatorKind::kWeightedMean:
      WeightedAverageInto(models, weights, out);
      return;
    case AggregatorKind::kTrimmedMean:
      TrimmedMeanInto(models, config_.aggregator.trim_ratio, agg_column_, out);
      return;
    case AggregatorKind::kCoordinateMedian:
      CoordinateMedianInto(models, agg_column_, out);
      return;
    case AggregatorKind::kNormClippedMean:
      NormClippedWeightedAverageInto(models, weights, reference,
                                     config_.aggregator.clip_norm,
                                     agg_scratch_, out);
      return;
  }
  FC_CHECK(false) << "unreachable";
}

std::uint64_t FlAlgorithm::ConfigFingerprint() const {
  auto mix_float = [](std::uint64_t h, float value) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    return MixSeed(h ^ bits);
  };
  std::uint64_t h = MixSeed(0x666370ULL);  // "fcp"
  for (char c : name_) h = MixSeed(h ^ static_cast<std::uint8_t>(c));
  h = MixSeed(h ^ config_.seed);
  h = MixSeed(h ^ static_cast<std::uint64_t>(config_.clients_per_round));
  h = MixSeed(h ^ static_cast<std::uint64_t>(num_clients()));
  h = MixSeed(h ^ static_cast<std::uint64_t>(model_size_));
  h = MixSeed(h ^ static_cast<std::uint64_t>(config_.train.local_epochs));
  h = MixSeed(h ^ static_cast<std::uint64_t>(config_.train.batch_size));
  h = mix_float(h, config_.train.lr);
  h = mix_float(h, config_.train.momentum);
  h = mix_float(h, config_.train.weight_decay);
  h = mix_float(h, config_.train.grad_clip_norm);
  h = MixSeed(h ^ static_cast<std::uint64_t>(config_.eval_batch_size));
  return h;
}

util::Status FlAlgorithm::SaveCheckpoint(const std::string& path) {
  StateWriter writer;
  writer.WriteU64(ConfigFingerprint());
  writer.WriteI64(completed_rounds_);

  util::Rng::State rng_state = rng_.GetState();
  for (std::uint64_t word : rng_state.words) writer.WriteU64(word);
  writer.WriteBool(rng_state.has_cached_normal);
  writer.WriteF64(rng_state.cached_normal);

  writer.WriteF64(comm_.total_download_bytes());
  writer.WriteF64(comm_.total_upload_bytes());

  writer.WriteI64(fault_stats_.dropouts);
  writer.WriteI64(fault_stats_.stragglers);
  writer.WriteI64(fault_stats_.corrupted);
  writer.WriteI64(fault_stats_.rejected);

  const std::vector<RoundRecord>& records = history_.records();
  writer.WriteU64(records.size());
  for (const RoundRecord& record : records) {
    writer.WriteI64(record.round);
    writer.WriteF32(record.test_loss);
    writer.WriteF32(record.test_accuracy);
    writer.WriteF64(record.bytes_up);
    writer.WriteF64(record.bytes_down);
    writer.WriteF64(record.mean_client_loss);
  }

  SaveExtraState(writer);
  return WriteStateFile(path, writer);
}

util::Status FlAlgorithm::LoadCheckpoint(const std::string& path) {
  util::StatusOr<StateReader> reader_or = ReadStateFile(path);
  if (!reader_or.ok()) return reader_or.status();
  StateReader reader = std::move(reader_or).value();

  std::uint64_t fingerprint = 0;
  FC_RETURN_IF_ERROR(reader.ReadU64(fingerprint));
  if (fingerprint != ConfigFingerprint()) {
    return util::Status::FailedPrecondition(
        "checkpoint was written by a different run configuration (algorithm, "
        "seed, client count, model, or training options differ)");
  }

  std::int64_t completed = 0;
  FC_RETURN_IF_ERROR(reader.ReadI64(completed));
  if (completed < 0) {
    return util::Status::InvalidArgument("negative completed-round counter");
  }

  util::Rng::State rng_state;
  for (std::uint64_t& word : rng_state.words) {
    FC_RETURN_IF_ERROR(reader.ReadU64(word));
  }
  FC_RETURN_IF_ERROR(reader.ReadBool(rng_state.has_cached_normal));
  FC_RETURN_IF_ERROR(reader.ReadF64(rng_state.cached_normal));

  double total_down = 0.0;
  double total_up = 0.0;
  FC_RETURN_IF_ERROR(reader.ReadF64(total_down));
  FC_RETURN_IF_ERROR(reader.ReadF64(total_up));

  FaultStats stats;
  FC_RETURN_IF_ERROR(reader.ReadI64(stats.dropouts));
  FC_RETURN_IF_ERROR(reader.ReadI64(stats.stragglers));
  FC_RETURN_IF_ERROR(reader.ReadI64(stats.corrupted));
  FC_RETURN_IF_ERROR(reader.ReadI64(stats.rejected));

  std::uint64_t record_count = 0;
  FC_RETURN_IF_ERROR(reader.ReadU64(record_count));
  MetricsHistory restored;
  for (std::uint64_t i = 0; i < record_count; ++i) {
    RoundRecord record;
    std::int64_t round = 0;
    FC_RETURN_IF_ERROR(reader.ReadI64(round));
    record.round = static_cast<int>(round);
    FC_RETURN_IF_ERROR(reader.ReadF32(record.test_loss));
    FC_RETURN_IF_ERROR(reader.ReadF32(record.test_accuracy));
    FC_RETURN_IF_ERROR(reader.ReadF64(record.bytes_up));
    FC_RETURN_IF_ERROR(reader.ReadF64(record.bytes_down));
    FC_RETURN_IF_ERROR(reader.ReadF64(record.mean_client_loss));
    restored.Add(record);
  }

  FC_RETURN_IF_ERROR(LoadExtraState(reader));
  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument("trailing bytes in checkpoint");
  }

  // Commit the base state only after every read (including the subclass
  // state) succeeded.
  completed_rounds_ = static_cast<int>(completed);
  rng_.SetState(rng_state);
  comm_.Restore(total_down, total_up);
  fault_stats_ = stats;
  history_ = std::move(restored);
  return util::Status::Ok();
}

double FlAlgorithm::TakeRoundClientLoss() {
  double mean =
      round_loss_count_ > 0 ? round_loss_sum_ / round_loss_count_ : 0.0;
  round_loss_sum_ = 0.0;
  round_loss_count_ = 0;
  return mean;
}

}  // namespace fedcross::fl
