#include "fl/algorithm.h"

#include "util/logging.h"

namespace fedcross::fl {

FlAlgorithm::FlAlgorithm(std::string name, AlgorithmConfig config,
                         data::FederatedDataset data,
                         models::ModelFactory factory)
    : name_(std::move(name)),
      config_(config),
      factory_(std::move(factory)),
      test_(std::move(data.test)),
      rng_(config.seed) {
  FC_CHECK(test_ != nullptr);
  FC_CHECK_GT(config_.clients_per_round, 0);
  FC_CHECK_LE(config_.clients_per_round,
              static_cast<int>(data.client_train.size()))
      << "K exceeds the number of clients";
  clients_.reserve(data.client_train.size());
  for (std::size_t i = 0; i < data.client_train.size(); ++i) {
    clients_.emplace_back(static_cast<int>(i), data.client_train[i]);
  }
  nn::Sequential probe = factory_();
  model_size_ = probe.NumParams();
}

const MetricsHistory& FlAlgorithm::Run(int rounds, int eval_every,
                                       bool verbose) {
  FC_CHECK_GT(eval_every, 0);
  for (int round = 0; round < rounds; ++round) {
    comm_.BeginRound();
    round_loss_sum_ = 0.0;
    round_loss_count_ = 0;
    RunRound(round);
    if ((round + 1) % eval_every == 0 || round == rounds - 1) {
      EvalResult eval = Evaluate(GlobalParams());
      RoundRecord record;
      record.round = round + 1;
      record.test_loss = eval.loss;
      record.test_accuracy = eval.accuracy;
      record.bytes_up = comm_.round_upload_bytes();
      record.bytes_down = comm_.round_download_bytes();
      record.mean_client_loss = TakeRoundClientLoss();
      history_.Add(record);
      if (verbose) {
        FC_LOG(Info) << name_ << " round " << record.round << " acc "
                     << record.test_accuracy << " loss " << record.test_loss;
      }
    }
  }
  return history_;
}

EvalResult FlAlgorithm::Evaluate(const FlatParams& params) {
  return EvaluateParams(factory_, params, *test_, config_.eval_batch_size);
}

std::vector<int> FlAlgorithm::SampleClients() {
  return rng_.SampleWithoutReplacement(num_clients(),
                                       config_.clients_per_round);
}

LocalTrainResult FlAlgorithm::TrainClient(int client_id,
                                          const FlatParams& init_params,
                                          const ClientTrainSpec& spec) {
  FC_CHECK_GE(client_id, 0);
  FC_CHECK_LT(client_id, num_clients());
  comm_.AddDownload(CommTracker::FloatBytes(model_size_));

  // Fault injection: the device received the model but never uploads.
  if (config_.dropout_prob > 0.0 && rng_.Uniform() < config_.dropout_prob) {
    LocalTrainResult dropped;
    dropped.params = init_params;
    dropped.num_samples = clients_[client_id].num_samples();
    dropped.dropped = true;
    return dropped;
  }

  LocalTrainResult result =
      clients_[client_id].Train(factory_, init_params, spec, rng_);
  if (config_.dp.clip_norm > 0.0f) {
    result.params = SanitizeUpdate(init_params, result.params, config_.dp,
                                   rng_);
  }
  comm_.AddUpload(CommTracker::FloatBytes(model_size_));
  round_loss_sum_ += result.mean_loss;
  ++round_loss_count_;
  return result;
}

FlatParams FlAlgorithm::WeightedAverage(const std::vector<FlatParams>& models,
                                        const std::vector<double>& weights) {
  FC_CHECK(!models.empty());
  FC_CHECK_EQ(models.size(), weights.size());
  double total_weight = 0.0;
  for (double w : weights) {
    FC_CHECK_GE(w, 0.0);
    total_weight += w;
  }
  FC_CHECK_GT(total_weight, 0.0);

  FlatParams result(models[0].size(), 0.0f);
  for (std::size_t m = 0; m < models.size(); ++m) {
    FC_CHECK_EQ(models[m].size(), result.size());
    float factor = static_cast<float>(weights[m] / total_weight);
    const float* src = models[m].data();
    for (std::size_t i = 0; i < result.size(); ++i) {
      result[i] += factor * src[i];
    }
  }
  return result;
}

FlatParams FlAlgorithm::Average(const std::vector<FlatParams>& models) {
  return WeightedAverage(models, std::vector<double>(models.size(), 1.0));
}

double FlAlgorithm::TakeRoundClientLoss() {
  double mean =
      round_loss_count_ > 0 ? round_loss_sum_ / round_loss_count_ : 0.0;
  round_loss_sum_ = 0.0;
  round_loss_count_ = 0;
  return mean;
}

}  // namespace fedcross::fl
