#include "fl/algorithm.h"

#include "fl/flat_ops.h"
#include "fl/parallel.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace fedcross::fl {
namespace {

// SplitMix64 finalizer: bijective avalanche mix.
std::uint64_t MixSeed(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Deterministic per-(run, round, batch, slot) seed for one client job. This
// derivation — not the shared run Rng — is what makes the parallel schedule
// bit-identical to the sequential one.
std::uint64_t ClientJobSeed(std::uint64_t seed, int round, int salt,
                            int slot) {
  std::uint64_t h = MixSeed(seed ^ 0x636c69656e74ULL);  // "client"
  h = MixSeed(h + static_cast<std::uint64_t>(round));
  h = MixSeed(h + static_cast<std::uint64_t>(salt));
  return MixSeed(h + static_cast<std::uint64_t>(slot));
}

}  // namespace

FlAlgorithm::FlAlgorithm(std::string name, AlgorithmConfig config,
                         data::FederatedDataset data,
                         models::ModelFactory factory)
    : name_(std::move(name)),
      config_(config),
      factory_(std::move(factory)),
      pool_(factory_),
      test_(std::move(data.test)),
      rng_(config.seed) {
  FC_CHECK(test_ != nullptr);
  FC_CHECK_GT(config_.clients_per_round, 0);
  FC_CHECK_LE(config_.clients_per_round,
              static_cast<int>(data.client_train.size()))
      << "K exceeds the number of clients";
  clients_.reserve(data.client_train.size());
  for (std::size_t i = 0; i < data.client_train.size(); ++i) {
    clients_.emplace_back(static_cast<int>(i), data.client_train[i]);
  }
  // Probe the pool's first replica once for the model size and the factory's
  // initial parameters; the replica is recycled by every later job.
  ModelPool::Lease probe = pool_.Acquire();
  model_size_ = probe->model.NumParams();
  initial_params_ = probe->model.ParamsToFlat();
}

const MetricsHistory& FlAlgorithm::Run(int rounds, int eval_every,
                                       bool verbose) {
  FC_CHECK_GT(eval_every, 0);
  for (int round = 0; round < rounds; ++round) {
    comm_.BeginRound();
    round_loss_sum_ = 0.0;
    round_loss_count_ = 0;
    RunRound(round);
    if ((round + 1) % eval_every == 0 || round == rounds - 1) {
      EvalResult eval = Evaluate(GlobalParams());
      RoundRecord record;
      record.round = round + 1;
      record.test_loss = eval.loss;
      record.test_accuracy = eval.accuracy;
      record.bytes_up = comm_.round_upload_bytes();
      record.bytes_down = comm_.round_download_bytes();
      record.mean_client_loss = TakeRoundClientLoss();
      history_.Add(record);
      if (verbose) {
        FC_LOG(Info) << name_ << " round " << record.round << " acc "
                     << record.test_accuracy << " loss " << record.test_loss;
      }
    }
  }
  return history_;
}

EvalResult FlAlgorithm::Evaluate(const FlatParams& params) {
  return EvaluateParams(pool_, params, *test_, config_.eval_batch_size);
}

std::vector<int> FlAlgorithm::SampleClients() {
  return rng_.SampleWithoutReplacement(num_clients(),
                                       config_.clients_per_round);
}

const std::vector<LocalTrainResult>& FlAlgorithm::TrainClients(
    int round, int salt, const std::vector<ClientJob>& jobs) {
  int count = static_cast<int>(jobs.size());
  // resize keeps surviving elements' params capacity from the last round.
  results_.resize(count);
  auto train_slot = [&](int slot) {
    util::Rng job_rng(ClientJobSeed(config_.seed, round, salt, slot));
    TrainClientJob(jobs[slot], job_rng, results_[slot]);
  };
  util::ThreadPool* pool = AcquireFlPool();
  if (pool != nullptr && count > 1) {
    pool->ParallelFor(count, train_slot);
  } else {
    for (int slot = 0; slot < count; ++slot) train_slot(slot);
  }
  // Bookkeeping on the calling thread, in job order, so accounting is
  // race-free and independent of the parallel schedule.
  for (const LocalTrainResult& result : results_) {
    comm_.AddDownload(CommTracker::FloatBytes(model_size_));
    if (result.dropped) continue;  // the device never uploads
    comm_.AddUpload(CommTracker::FloatBytes(model_size_));
    round_loss_sum_ += result.mean_loss;
    ++round_loss_count_;
  }
  return results_;
}

void FlAlgorithm::TrainClientJob(const ClientJob& job, util::Rng& rng,
                                 LocalTrainResult& result) {
  FC_CHECK_GE(job.client_id, 0);
  FC_CHECK_LT(job.client_id, num_clients());
  FC_CHECK(job.init_params != nullptr);
  FC_CHECK(job.spec != nullptr);

  // Fault injection: the device received the model but never uploads.
  if (config_.dropout_prob > 0.0 && rng.Uniform() < config_.dropout_prob) {
    result.params = *job.init_params;  // copy-assign recycles the buffer
    result.num_samples = clients_[job.client_id].num_samples();
    result.num_steps = 0;
    result.lr = 0.0f;
    result.mean_loss = 0.0;
    result.dropped = true;
    return;
  }

  clients_[job.client_id].Train(pool_, *job.init_params, *job.spec, rng,
                                result);
  if (config_.dp.clip_norm > 0.0f) {
    result.params =
        SanitizeUpdate(*job.init_params, result.params, config_.dp, rng);
  }
}

FlatParams FlAlgorithm::WeightedAverage(const std::vector<FlatParams>& models,
                                        const std::vector<double>& weights) {
  FC_CHECK_EQ(models.size(), weights.size());
  std::vector<const FlatParams*> pointers(models.size());
  for (std::size_t m = 0; m < models.size(); ++m) pointers[m] = &models[m];
  FlatParams result;
  WeightedAverageInto(pointers, weights, result);
  return result;
}

FlatParams FlAlgorithm::Average(const std::vector<FlatParams>& models) {
  FC_CHECK(!models.empty());
  return flat_ops::Mean(models);
}

void FlAlgorithm::WeightedAverageInto(
    const std::vector<const FlatParams*>& models,
    const std::vector<double>& weights, FlatParams& out) {
  FC_CHECK(!models.empty());
  FC_CHECK_EQ(models.size(), weights.size());
  double total_weight = 0.0;
  for (double w : weights) {
    FC_CHECK_GE(w, 0.0);
    total_weight += w;
  }
  FC_CHECK_GT(total_weight, 0.0);

  out.assign(models[0]->size(), 0.0f);  // capacity-retaining
  for (std::size_t m = 0; m < models.size(); ++m) {
    float factor = static_cast<float>(weights[m] / total_weight);
    flat_ops::Axpy(out, factor, *models[m]);
  }
}

void FlAlgorithm::AverageInto(const std::vector<const FlatParams*>& models,
                              FlatParams& out) {
  FC_CHECK(!models.empty());
  float factor = 1.0f / static_cast<float>(models.size());
  out.assign(models[0]->size(), 0.0f);
  for (const FlatParams* model : models) {
    flat_ops::Axpy(out, factor, *model);
  }
}

double FlAlgorithm::TakeRoundClientLoss() {
  double mean =
      round_loss_count_ > 0 ? round_loss_sum_ / round_loss_count_ : 0.0;
  round_loss_sum_ = 0.0;
  round_loss_count_ = 0;
  return mean;
}

}  // namespace fedcross::fl
