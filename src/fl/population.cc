#include "fl/population.h"

#include <utility>

#include "util/check.h"

namespace fedcross::fl {

bool ParsePopulationMode(const std::string& name, PopulationMode* out) {
  if (name == "resident") {
    *out = PopulationMode::kResident;
    return true;
  }
  if (name == "virtual") {
    *out = PopulationMode::kVirtual;
    return true;
  }
  return false;
}

const char* PopulationModeName(PopulationMode mode) {
  return mode == PopulationMode::kVirtual ? "virtual" : "resident";
}

ClientPopulation::ClientPopulation(PopulationMode mode,
                                   data::FederatedDataset& data)
    : mode_(mode) {
  if (mode_ == PopulationMode::kResident) {
    // Resident over a virtual federation: materialise everything up front
    // (small-N comparisons and the --population=resident escape hatch).
    data::MaterializeVirtualClients(data);
    size_ = static_cast<std::int64_t>(data.client_train.size());
    clients_.reserve(data.client_train.size());
    for (std::size_t i = 0; i < data.client_train.size(); ++i) {
      clients_.emplace_back(static_cast<std::int64_t>(i),
                            data.client_train[i]);
    }
    return;
  }
  if (data.make_shard) {
    size_ = data.virtual_clients;
    make_shard_ = std::move(data.make_shard);
  } else {
    // Virtual over pre-partitioned shards: the shards stay alive in the
    // captured vector (no memory win), but clients flow through the same
    // materialise-on-touch path, which is what the bit-identity tests and
    // mixed setups exercise.
    auto shards =
        std::make_shared<std::vector<std::shared_ptr<data::Dataset>>>(
            std::move(data.client_train));
    size_ = static_cast<std::int64_t>(shards->size());
    make_shard_ = [shards](std::int64_t id) { return (*shards)[id]; };
  }
  FC_CHECK_GT(size_, 0) << "empty client population";
}

const FlClient& ClientPopulation::Client(std::int64_t id) {
  FC_CHECK_GE(id, 0);
  FC_CHECK_LT(id, size_);
  if (mode_ == PopulationMode::kResident) {
    return clients_[static_cast<std::size_t>(id)];
  }
  auto it = cache_.find(id);
  if (it == cache_.end()) {
    std::shared_ptr<data::Dataset> shard = make_shard_(id);
    FC_CHECK(shard != nullptr);
    it = cache_.emplace(id, CacheEntry{FlClient(id, std::move(shard)), epoch_})
             .first;
    ++materializations_;
  }
  it->second.epoch = epoch_;
  return it->second.client;
}

void ClientPopulation::BeginBatch() {
  if (mode_ == PopulationMode::kResident) return;
  ++epoch_;
  for (auto it = cache_.begin(); it != cache_.end();) {
    // Keep the previous batch's clients one extra epoch: the round that
    // trained them may still read them after TrainClients returns.
    if (it->second.epoch + 1 < epoch_) {
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace fedcross::fl
