#include "fl/fedgen.h"

#include <cmath>
#include <cstring>
#include <numeric>

#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "obs/trace.h"
#include "optim/sgd.h"

namespace fedcross::fl {

FedGen::FedGen(AlgorithmConfig config, data::FederatedDataset data,
               models::ModelFactory factory)
    : FedGen(config, std::move(data), std::move(factory), Options()) {}

FedGen::FedGen(AlgorithmConfig config, data::FederatedDataset data,
               models::ModelFactory factory, Options options)
    : FlAlgorithm("FedGen", config, std::move(data), std::move(factory)),
      options_(options) {
  global_ = InitialParams();

  example_shape_ = test_set().example_shape();
  example_numel_ = 1;
  for (int dim : example_shape_) example_numel_ *= dim;
  num_classes_ = test_set().num_classes();
  // Single-axis examples are token sequences: embedding blocks input grads.
  discrete_inputs_ = example_shape_.size() == 1;
  label_weights_.assign(num_classes_, 1.0);

  util::Rng gen_rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  generator_.Add(std::make_unique<nn::Linear>(
      options_.latent_dim + num_classes_, options_.generator_hidden, gen_rng));
  generator_.Add(std::make_unique<nn::Relu>());
  generator_.Add(std::make_unique<nn::Linear>(
      options_.generator_hidden, static_cast<int>(example_numel_), gen_rng));
  generator_size_ = generator_.NumParams();
}

void FedGen::SampleGeneratorInput(int batch, Tensor& input,
                                  std::vector<int>& labels) {
  input.ResizeTo({batch, options_.latent_dim + num_classes_});
  input.Fill(0.0f);  // reused buffer: clear the one-hot block
  labels.resize(batch);
  float* data = input.data();
  for (int b = 0; b < batch; ++b) {
    int label = rng().Categorical(label_weights_);
    labels[b] = label;
    float* row =
        data + static_cast<std::int64_t>(b) * (options_.latent_dim + num_classes_);
    for (int z = 0; z < options_.latent_dim; ++z) {
      row[z] = static_cast<float>(rng().Normal());
    }
    row[options_.latent_dim + label] = 1.0f;
  }
}

void FedGen::TrainGenerator() {
  if (discrete_inputs_) return;  // no input gradients through embeddings

  // The teacher pass borrows a pooled replica instead of rebuilding the
  // global model every round.
  ModelPool::Lease lease = pool().Acquire();
  nn::Sequential& global_model = lease->model;
  global_model.ParamsFromFlat(global_);

  optim::SgdOptions sgd_options;
  sgd_options.lr = options_.generator_lr;
  sgd_options.momentum = 0.9f;
  sgd_options.grad_clip_norm = 5.0f;
  optim::Sgd sgd(generator_.Params(), sgd_options);

  nn::CrossEntropyLoss criterion;
  nn::LossResult loss;
  std::vector<int> labels;
  // Hoisted copies of the layer-owned outputs: both get reshaped, which
  // must not disturb the layers' cached buffers. Copy-assign inside the
  // loop reuses their capacity after the first step.
  Tensor input;
  Tensor fake;
  Tensor grad_input;
  Tensor::Shape batch_shape;
  batch_shape.push_back(options_.generator_batch);
  batch_shape.insert(batch_shape.end(), example_shape_.begin(),
                     example_shape_.end());
  for (int step = 0; step < options_.generator_steps_per_round; ++step) {
    SampleGeneratorInput(options_.generator_batch, input, labels);
    generator_.ZeroGrad();
    fake = generator_.Forward(input, /*train=*/true);
    fake.Reshape(batch_shape);

    // Teacher pass: the global model should classify fakes as their label.
    global_model.ZeroGrad();
    const Tensor& logits = global_model.Forward(fake, /*train=*/false);
    criterion.Compute(logits, labels, loss);
    grad_input = global_model.Backward(loss.grad_logits);
    grad_input.Reshape(
        {options_.generator_batch, static_cast<int>(example_numel_)});
    generator_.Backward(grad_input);
    sgd.Step();
  }
}

void FedGen::RegenerateSyntheticSet() {
  std::vector<int> labels;
  Tensor input;
  SampleGeneratorInput(options_.synthetic_samples, input, labels);
  const Tensor& fake = generator_.Forward(input, /*train=*/false);

  std::vector<float> features(
      static_cast<std::size_t>(options_.synthetic_samples) * example_numel_);
  const float* data = fake.data();
  if (discrete_inputs_) {
    // Round into valid token ids (label-conditioned random sequences).
    int vocab = num_classes_;
    for (std::size_t i = 0; i < features.size(); ++i) {
      float scaled = (std::tanh(data[i]) * 0.5f + 0.5f) * (vocab - 1);
      features[i] = std::floor(std::max(0.0f, std::min(scaled, vocab - 1.0f)));
    }
  } else {
    for (std::size_t i = 0; i < features.size(); ++i) features[i] = data[i];
  }
  synthetic_ = std::make_shared<data::InMemoryDataset>(
      example_shape_, std::move(features), std::move(labels), num_classes_);
}

void FedGen::RunRound(int round) {
  std::vector<std::int64_t> selected;
  std::vector<double> new_label_weights(num_classes_, 1e-3);

  ClientTrainSpec spec;
  std::vector<ClientJob> jobs;
  {
    PhaseScope phase(*this, RoundPhase::kDispatch);
    selected = SampleClients();
    spec.options = config().train;
    spec.augment_data = synthetic_.get();  // null in round 0
    spec.augment_weight = options_.augment_weight;
    spec.augment_batches_per_epoch = options_.augment_batches_per_epoch;

    jobs.resize(selected.size());
    for (std::size_t i = 0; i < selected.size(); ++i) {
      jobs[i] = {selected[i], &global_, &spec};
    }
  }
  const std::vector<LocalTrainResult>& results =
      TrainClients(round, /*salt=*/0, jobs);

  std::vector<const FlatParams*> local_models;
  std::vector<double> weights;
  // Generator payload rides along with every model dispatch, outside the
  // model codec (wire == raw) — counted per dispatched job, since async
  // arrivals are not positionally aligned with this round's dispatches.
  if (synthetic_ != nullptr) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      comm().AddDownload(CommTracker::FloatBytes(generator_size_),
                         CommTracker::FloatBytes(generator_size_));
    }
  }
  for (const LocalTrainResult& result : results) {
    if (result.dropped) continue;  // device failed before uploading
    weights.push_back(result.num_samples * result.weight_scale);
    local_models.push_back(&result.params);

    std::vector<int> counts =
        client(result.client_id).dataset().LabelCounts();
    for (int k = 0; k < num_classes_; ++k) new_label_weights[k] += counts[k];
  }

  if (local_models.empty()) return;  // every client dropped
  Aggregate(local_models, weights, global_, global_);
  label_weights_ = std::move(new_label_weights);
  {
    FC_TRACE_SPAN("fedgen.train_generator");
    TrainGenerator();
  }
  {
    FC_TRACE_SPAN("fedgen.regenerate_synthetic");
    RegenerateSyntheticSet();
  }
}

void FedGen::SaveExtraState(StateWriter& writer) {
  writer.WriteFloats(global_);
  writer.WriteDoubles(label_weights_);
  writer.WriteFloats(generator_.ParamsToFlat());
  writer.WriteBool(synthetic_ != nullptr);
  if (synthetic_ != nullptr) {
    int n = synthetic_->size();
    std::vector<int> indices(n);
    std::iota(indices.begin(), indices.end(), 0);
    Tensor features;
    std::vector<int> labels;
    synthetic_->GetBatch(indices, features, labels);
    FlatParams flat(static_cast<std::size_t>(features.numel()));
    std::memcpy(flat.data(), features.data(), flat.size() * sizeof(float));
    writer.WriteFloats(flat);
    writer.WriteInts(labels);
  }
}

util::Status FedGen::LoadExtraState(StateReader& reader) {
  FC_RETURN_IF_ERROR(reader.ReadFloats(global_));
  FC_RETURN_IF_ERROR(reader.ReadDoubles(label_weights_));
  FlatParams generator_params;
  FC_RETURN_IF_ERROR(reader.ReadFloats(generator_params));
  if (static_cast<std::int64_t>(generator_params.size()) != generator_size_) {
    return util::Status::FailedPrecondition(
        "checkpointed generator has " +
        std::to_string(generator_params.size()) + " params, expected " +
        std::to_string(generator_size_));
  }
  generator_.ParamsFromFlat(generator_params);
  bool has_synthetic = false;
  FC_RETURN_IF_ERROR(reader.ReadBool(has_synthetic));
  if (has_synthetic) {
    FlatParams features;
    std::vector<int> labels;
    FC_RETURN_IF_ERROR(reader.ReadFloats(features));
    FC_RETURN_IF_ERROR(reader.ReadInts(labels));
    if (labels.empty() ||
        features.size() !=
            labels.size() * static_cast<std::size_t>(example_numel_)) {
      return util::Status::InvalidArgument(
          "checkpointed synthetic set is inconsistent");
    }
    synthetic_ = std::make_shared<data::InMemoryDataset>(
        example_shape_, std::move(features), std::move(labels), num_classes_);
  } else {
    synthetic_ = nullptr;
  }
  return util::Status::Ok();
}

}  // namespace fedcross::fl
