#ifndef FEDCROSS_FL_FEDCLUSTER_H_
#define FEDCROSS_FL_FEDCLUSTER_H_

#include <vector>

#include "fl/algorithm.h"

namespace fedcross::fl {

// FedCluster (Chen et al., 2020) — the other client-grouping method in the
// paper's related work (Section II-B): clients are split into m clusters
// that "perform federated learning cyclically in each learning round".
// One round here = one full cycle: for each cluster in (rotating) order, a
// few of its clients train the current model and their FedAvg aggregate
// becomes the model handed to the next cluster. The intra-round sequencing
// gives every cluster's data a chance to correct the model within a single
// round, at the same per-round communication as FedAvg.
class FedCluster : public FlAlgorithm {
 public:
  // num_clusters m; each cluster contributes ceil(K/m) clients per cycle
  // (total per-round client count stays ~K). m must be <= K.
  FedCluster(AlgorithmConfig config, data::FederatedDataset data,
             models::ModelFactory factory, int num_clusters);

  void RunRound(int round) override;
  FlatParams GlobalParams() override { return global_; }

  const std::vector<std::vector<std::int64_t>>& clusters() const {
    return clusters_;
  }

 protected:
  // Checkpoint state: global model plus the fixed cluster partition (it was
  // drawn from the run RNG at construction, which the checkpoint rewinds).
  void SaveExtraState(StateWriter& writer) override;
  util::Status LoadExtraState(StateReader& reader) override;

 private:
  int num_clusters_;
  FlatParams global_;
  // Random, fixed at construction; 64-bit ids for virtual populations.
  std::vector<std::vector<std::int64_t>> clusters_;
};

}  // namespace fedcross::fl

#endif  // FEDCROSS_FL_FEDCLUSTER_H_
