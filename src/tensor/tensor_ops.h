#ifndef FEDCROSS_TENSOR_TENSOR_OPS_H_
#define FEDCROSS_TENSOR_TENSOR_OPS_H_

#include "tensor/tensor.h"

namespace fedcross::ops {

// General matrix multiply on raw row-major buffers:
//   C(m,n) = alpha * op(A)(m,k) * op(B)(k,n) + beta * C(m,n)
// where op(X) is X or X^T as selected by trans_a / trans_b. Leading
// dimensions are those of the *stored* (untransposed) matrices.
void Gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta,
          float* c, int ldc);

// 2-d tensor product: result(m,n) = a(m,k) * b(k,n).
Tensor MatMul(const Tensor& a, const Tensor& b);

// Unrolls conv patches of a single image (channels x height x width) into a
// column matrix of shape (channels*kh*kw) x (out_h*out_w), zero-padding the
// borders. out_h/out_w follow the usual conv arithmetic.
void Im2Col(const float* image, int channels, int height, int width,
            int kernel_h, int kernel_w, int stride, int pad, float* columns);

// Adjoint of Im2Col: accumulates columns back into the (pre-zeroed) image
// gradient buffer.
void Col2Im(const float* columns, int channels, int height, int width,
            int kernel_h, int kernel_w, int stride, int pad, float* image);

// Output spatial size for a conv/pool dimension.
int ConvOutSize(int in_size, int kernel, int stride, int pad);

// Numerically-stable in-place softmax over the last dimension of a 2-d
// tensor (each row becomes a probability distribution).
void SoftmaxRows(Tensor& logits);

// Index of the maximum element in `row` of a 2-d tensor.
int ArgMaxRow(const Tensor& t, int row);

// Cosine similarity between two equally-sized flat vectors; 0 if either has
// zero norm. This is the Similarity(.) measure of the paper (Section
// III-B1) used by the highest/lowest-similarity CoModelSel strategies.
double CosineSimilarity(const std::vector<float>& x,
                        const std::vector<float>& y);

}  // namespace fedcross::ops

#endif  // FEDCROSS_TENSOR_TENSOR_OPS_H_
