#ifndef FEDCROSS_TENSOR_TENSOR_OPS_H_
#define FEDCROSS_TENSOR_TENSOR_OPS_H_

#include "tensor/tensor.h"

namespace fedcross::ops {

// ---------------------------------------------------------------------------
// SIMD tier dispatch
//
// The GEMM kernels are compiled three times — generic (the project's
// default flags), AVX2+FMA (-march=x86-64-v3) and AVX-512
// (-march=x86-64-v4) — and the widest tier the CPU supports is selected
// once at startup. The environment variable FEDCROSS_SIMD
// (generic|avx2|avx512) pins a tier explicitly; requesting an unsupported
// tier falls back to detection. The generic tier on a portable build is
// bit-identical to the pre-tier code path.
// ---------------------------------------------------------------------------
enum class SimdTier { kGeneric = 0, kAvx2 = 1, kAvx512 = 2 };

// The tier every Gemm/GemmGrouped call dispatches to.
SimdTier ActiveSimdTier();
const char* SimdTierName(SimdTier tier);

namespace testing {
// Pins the dispatch tier for equivalence tests. Returns false (and leaves
// the dispatch unchanged) when the tier is not available on this
// build/CPU. Not thread-safe; call only from single-threaded test setup.
bool ForceSimdTier(SimdTier tier);
// Restores startup detection (including the FEDCROSS_SIMD override).
void ResetForcedSimdTier();
}  // namespace testing

// General matrix multiply on raw row-major buffers:
//   C(m,n) = alpha * op(A)(m,k) * op(B)(k,n) + beta * C(m,n)
// where op(X) is X or X^T as selected by trans_a / trans_b. Leading
// dimensions are those of the *stored* (untransposed) matrices.
void Gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta,
          float* c, int ldc);

// One instance of a grouped GEMM: the per-replica operand pointers. All
// instances of a group share shape, trans flags, leading dimensions, alpha
// and beta.
struct GemmGroup {
  const float* a = nullptr;
  const float* b = nullptr;
  float* c = nullptr;
};

// Runs `count` independent GEMMs of one shape — the same-op-across-replicas
// call the cross-replica batched executor makes. Guarantee: instance i's
// output is bit-identical to Gemm() on (groups[i].a, groups[i].b,
// groups[i].c) alone. Small problems run replica-interleaved across SIMD
// lanes (on FMA tiers); large problems loop the blocked kernel, which is
// already compute-bound per instance.
void GemmGrouped(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
                 int lda, int ldb, float beta, int ldc,
                 const GemmGroup* groups, int count);

// One instance of a grouped conv forward: the per-replica operand pointers.
// `columns` holds the caller-filled im2col patches for the whole mini-batch
// ([batch, patch * out_area], kept for the backward pass) and `output` the
// pre-bias conv result ([batch, out_channels * out_area]).
struct ConvGroup {
  const float* weights = nullptr;  // [out_channels, patch]
  const float* columns = nullptr;  // [batch, patch * out_area]
  float* output = nullptr;         // [batch, out_channels * out_area]
};

// Runs, for every instance, the per-image GEMM chain of the conv forward:
//   output_b = weights * columns_b      (b = 0..batch-1, alpha = 1, beta = 0)
// Guarantee: instance i's output is bit-identical to per-image Gemm() calls
// on instance i alone. Small per-image shapes run replica-interleaved across
// SIMD lanes with the weight interleave hoisted out of the image loop (the
// weights are the only operand shared by all batch images); large shapes
// loop the blocked kernel, which is already compute-bound per instance.
void ConvGrouped(int batch, int out_channels, int out_area, int patch,
                 const ConvGroup* groups, int count);

// 2-d tensor product: result(m,n) = a(m,k) * b(k,n).
Tensor MatMul(const Tensor& a, const Tensor& b);

// Unrolls conv patches of a single image (channels x height x width) into a
// column matrix of shape (channels*kh*kw) x (out_h*out_w), zero-padding the
// borders. out_h/out_w follow the usual conv arithmetic.
void Im2Col(const float* image, int channels, int height, int width,
            int kernel_h, int kernel_w, int stride, int pad, float* columns);

// Adjoint of Im2Col: accumulates columns back into the (pre-zeroed) image
// gradient buffer.
void Col2Im(const float* columns, int channels, int height, int width,
            int kernel_h, int kernel_w, int stride, int pad, float* image);

// Output spatial size for a conv/pool dimension.
int ConvOutSize(int in_size, int kernel, int stride, int pad);

// Numerically-stable in-place softmax over the last dimension of a 2-d
// tensor (each row becomes a probability distribution).
void SoftmaxRows(Tensor& logits);

// Raw-buffer form of SoftmaxRows: `data` is rows x cols, row-major. The
// Tensor overload forwards here, so arena-resident logits (the plan
// executor) and Tensor logits (the layer path) take the same code path.
void SoftmaxRowsRaw(float* data, int rows, int cols);

// Index of the maximum element in `row` of a 2-d tensor.
int ArgMaxRow(const Tensor& t, int row);

// Raw-buffer form of ArgMaxRow over one row of `cols` floats.
int ArgMaxRowRaw(const float* row, int cols);

// Cosine similarity between two equally-sized flat vectors; 0 if either has
// zero norm. This is the Similarity(.) measure of the paper (Section
// III-B1) used by the highest/lowest-similarity CoModelSel strategies.
double CosineSimilarity(const std::vector<float>& x,
                        const std::vector<float>& y);

}  // namespace fedcross::ops

#endif  // FEDCROSS_TENSOR_TENSOR_OPS_H_
