// AVX-512 tier: CMake compiles this file with -march=x86-64-v4. When the
// flag is unavailable (non-x86 target or an old compiler) the guard below
// degrades the accessor to the generic tier.
#include "tensor/gemm_kernels.h"

#if defined(__AVX512F__) && defined(__FMA__)
#define FEDCROSS_TIER_GETTER Avx512GemmKernels
#define FEDCROSS_TIER_ENUM SimdTier::kAvx512
#include "tensor/gemm_tiers.inc"
#else
namespace fedcross::ops::detail {
const GemmKernels& Avx512GemmKernels() { return GenericGemmKernels(); }
}  // namespace fedcross::ops::detail
#endif
