#ifndef FEDCROSS_TENSOR_TENSOR_H_
#define FEDCROSS_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace fedcross {

// Dense float32 tensor with row-major contiguous storage. This is the
// numeric workhorse of the DL substrate: activations, weights, and
// gradients are all Tensors.
//
// Design notes:
//  - Always contiguous; views are not supported. Reshape is metadata-only.
//  - Copyable (deep copy) and movable. FL aggregation relies on cheap moves.
//  - Indexing helpers are bounds-checked via FC_CHECK in all builds; the
//    hot loops in tensor_ops.cc and the layers use raw data() pointers.
//  - Storage is capacity-retaining: ResizeTo and copy-assignment reuse the
//    existing heap block whenever it is large enough, so steady-state
//    training loops (fixed batch geometry) perform zero allocations. The
//    HeapAllocations() counter below makes that claim testable.
class Tensor {
 public:
  using Shape = std::vector<int>;

  // Empty 0-d tensor (numel() == 0). Assign before use.
  Tensor() = default;

  // Zero-initialised tensor of the given shape. All dims must be positive.
  explicit Tensor(Shape shape);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  // ---- Factories ----------------------------------------------------------
  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Full(Shape shape, float value);
  // Takes ownership of `values`; its size must equal the shape's numel.
  static Tensor FromVector(Shape shape, std::vector<float> values);
  // I.i.d. N(mean, stddev^2) entries.
  static Tensor RandomNormal(Shape shape, util::Rng& rng, float mean = 0.0f,
                             float stddev = 1.0f);
  // I.i.d. U[lo, hi) entries.
  static Tensor RandomUniform(Shape shape, util::Rng& rng, float lo,
                              float hi);

  // ---- Metadata -----------------------------------------------------------
  const Shape& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int dim(int axis) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }
  std::string ShapeString() const;

  // Metadata-only reshape; the new shape must preserve numel.
  Tensor& Reshape(Shape shape);

  // Resizes to `shape`, retaining the existing heap block when its capacity
  // suffices (buffers shrink and regrow without freeing). Element values are
  // unspecified afterwards — callers are expected to overwrite (or Fill)
  // the tensor. This is the workspace-reuse primitive behind the per-layer
  // activation/gradient caches.
  Tensor& ResizeTo(const Shape& shape);

  // ---- Allocation instrumentation -----------------------------------------
  // Process-wide count of Tensor data-buffer heap allocations (construction,
  // deep copies, and capacity growth; moves and capacity-reusing resizes do
  // not count). Used by tests to assert that warmed-up training loops are
  // allocation-free.
  static std::uint64_t HeapAllocations();
  static void ResetHeapAllocations();

  // ---- Element access -----------------------------------------------------
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(std::int64_t flat_index);
  float at(std::int64_t flat_index) const;
  // 2-d convenience accessors (rows x cols).
  float& at(int row, int col);
  float at(int row, int col) const;

  // ---- Whole-tensor operations (in-place, return *this) -------------------
  Tensor& Fill(float value);
  Tensor& AddInPlace(const Tensor& other);           // this += other
  Tensor& SubInPlace(const Tensor& other);           // this -= other
  Tensor& MulInPlace(const Tensor& other);           // elementwise
  Tensor& Scale(float factor);                       // this *= factor
  Tensor& Axpy(float alpha, const Tensor& other);    // this += alpha * other

  // ---- Reductions ---------------------------------------------------------
  float Sum() const;
  float Mean() const;
  float Max() const;
  float SquaredL2Norm() const;
  float L2Norm() const;

  // ---- Serialization ------------------------------------------------------
  // Appends shape (ndim, dims) and raw float data to `out`.
  void SerializeTo(std::vector<std::uint8_t>& out) const;
  // Reads a tensor back; advances `offset`. Returns false on malformed input.
  static bool DeserializeFrom(const std::vector<std::uint8_t>& in,
                              std::size_t& offset, Tensor& result);

 private:
  Shape shape_;
  std::vector<float> data_;
};

// Elementwise out-of-place helpers.
Tensor operator+(const Tensor& a, const Tensor& b);
Tensor operator-(const Tensor& a, const Tensor& b);
Tensor operator*(float scalar, const Tensor& t);

}  // namespace fedcross

#endif  // FEDCROSS_TENSOR_TENSOR_H_
