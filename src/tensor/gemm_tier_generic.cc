// Generic tier: compiled with the project's default flags, so on a
// portable (non -march=native) build this is exactly the pre-tier SSE2
// code path, bit for bit. Always available; the dispatcher falls back here
// when the CPU lacks AVX2/AVX-512 or FEDCROSS_SIMD=generic is set.
#define FEDCROSS_TIER_GETTER GenericGemmKernels
#define FEDCROSS_TIER_ENUM SimdTier::kGeneric
#include "tensor/gemm_tiers.inc"
