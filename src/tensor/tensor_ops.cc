#include "tensor/tensor_ops.h"

#include <cmath>

namespace fedcross::ops {

void Gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta,
          float* c, int ldc) {
  FC_CHECK_GE(m, 0);
  FC_CHECK_GE(n, 0);
  FC_CHECK_GE(k, 0);
  for (int i = 0; i < m; ++i) {
    float* c_row = c + static_cast<std::int64_t>(i) * ldc;
    if (beta == 0.0f) {
      for (int j = 0; j < n; ++j) c_row[j] = 0.0f;
    } else if (beta != 1.0f) {
      for (int j = 0; j < n; ++j) c_row[j] *= beta;
    }
  }
  if (!trans_b) {
    // Inner loop walks contiguous rows of B: cache-friendly i-p-j order.
    for (int i = 0; i < m; ++i) {
      float* c_row = c + static_cast<std::int64_t>(i) * ldc;
      for (int p = 0; p < k; ++p) {
        float a_ip = trans_a ? a[static_cast<std::int64_t>(p) * lda + i]
                             : a[static_cast<std::int64_t>(i) * lda + p];
        if (a_ip == 0.0f) continue;
        float scaled = alpha * a_ip;
        const float* b_row = b + static_cast<std::int64_t>(p) * ldb;
        for (int j = 0; j < n; ++j) c_row[j] += scaled * b_row[j];
      }
    }
  } else {
    // B is transposed: dot products over contiguous rows of B.
    for (int i = 0; i < m; ++i) {
      float* c_row = c + static_cast<std::int64_t>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        const float* b_row = b + static_cast<std::int64_t>(j) * ldb;
        double acc = 0.0;
        if (!trans_a) {
          const float* a_row = a + static_cast<std::int64_t>(i) * lda;
          for (int p = 0; p < k; ++p) acc += static_cast<double>(a_row[p]) * b_row[p];
        } else {
          for (int p = 0; p < k; ++p) {
            acc += static_cast<double>(a[static_cast<std::int64_t>(p) * lda + i]) *
                   b_row[p];
          }
        }
        c_row[j] += alpha * static_cast<float>(acc);
      }
    }
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  FC_CHECK_EQ(a.ndim(), 2);
  FC_CHECK_EQ(b.ndim(), 2);
  FC_CHECK_EQ(a.dim(1), b.dim(0));
  int m = a.dim(0);
  int k = a.dim(1);
  int n = b.dim(1);
  Tensor c({m, n});
  Gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(),
       n);
  return c;
}

int ConvOutSize(int in_size, int kernel, int stride, int pad) {
  FC_CHECK_GT(stride, 0);
  int out = (in_size + 2 * pad - kernel) / stride + 1;
  FC_CHECK_GT(out, 0) << "conv output collapsed: in=" << in_size
                      << " kernel=" << kernel << " stride=" << stride
                      << " pad=" << pad;
  return out;
}

void Im2Col(const float* image, int channels, int height, int width,
            int kernel_h, int kernel_w, int stride, int pad, float* columns) {
  int out_h = ConvOutSize(height, kernel_h, stride, pad);
  int out_w = ConvOutSize(width, kernel_w, stride, pad);
  int out_area = out_h * out_w;
  // Row r = (c, kh, kw) of the patch; column = output pixel.
  for (int c = 0; c < channels; ++c) {
    const float* channel = image + static_cast<std::int64_t>(c) * height * width;
    for (int kh = 0; kh < kernel_h; ++kh) {
      for (int kw = 0; kw < kernel_w; ++kw) {
        float* out_row =
            columns + (static_cast<std::int64_t>(c) * kernel_h * kernel_w +
                       kh * kernel_w + kw) *
                          out_area;
        for (int oh = 0; oh < out_h; ++oh) {
          int ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= height) {
            for (int ow = 0; ow < out_w; ++ow) out_row[oh * out_w + ow] = 0.0f;
            continue;
          }
          const float* in_row = channel + static_cast<std::int64_t>(ih) * width;
          for (int ow = 0; ow < out_w; ++ow) {
            int iw = ow * stride - pad + kw;
            out_row[oh * out_w + ow] =
                (iw >= 0 && iw < width) ? in_row[iw] : 0.0f;
          }
        }
      }
    }
  }
}

void Col2Im(const float* columns, int channels, int height, int width,
            int kernel_h, int kernel_w, int stride, int pad, float* image) {
  int out_h = ConvOutSize(height, kernel_h, stride, pad);
  int out_w = ConvOutSize(width, kernel_w, stride, pad);
  int out_area = out_h * out_w;
  for (int c = 0; c < channels; ++c) {
    float* channel = image + static_cast<std::int64_t>(c) * height * width;
    for (int kh = 0; kh < kernel_h; ++kh) {
      for (int kw = 0; kw < kernel_w; ++kw) {
        const float* in_row =
            columns + (static_cast<std::int64_t>(c) * kernel_h * kernel_w +
                       kh * kernel_w + kw) *
                          out_area;
        for (int oh = 0; oh < out_h; ++oh) {
          int ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= height) continue;
          float* out_row = channel + static_cast<std::int64_t>(ih) * width;
          for (int ow = 0; ow < out_w; ++ow) {
            int iw = ow * stride - pad + kw;
            if (iw >= 0 && iw < width) out_row[iw] += in_row[oh * out_w + ow];
          }
        }
      }
    }
  }
}

void SoftmaxRows(Tensor& logits) {
  FC_CHECK_EQ(logits.ndim(), 2);
  int rows = logits.dim(0);
  int cols = logits.dim(1);
  float* data = logits.data();
  for (int r = 0; r < rows; ++r) {
    float* row = data + static_cast<std::int64_t>(r) * cols;
    float max_value = row[0];
    for (int c = 1; c < cols; ++c) max_value = std::max(max_value, row[c]);
    double total = 0.0;
    for (int c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - max_value);
      total += row[c];
    }
    float inv = static_cast<float>(1.0 / total);
    for (int c = 0; c < cols; ++c) row[c] *= inv;
  }
}

int ArgMaxRow(const Tensor& t, int row) {
  FC_CHECK_EQ(t.ndim(), 2);
  FC_CHECK_GE(row, 0);
  FC_CHECK_LT(row, t.dim(0));
  int cols = t.dim(1);
  const float* data = t.data() + static_cast<std::int64_t>(row) * cols;
  int best = 0;
  for (int c = 1; c < cols; ++c) {
    if (data[c] > data[best]) best = c;
  }
  return best;
}

double CosineSimilarity(const std::vector<float>& x,
                        const std::vector<float>& y) {
  FC_CHECK_EQ(x.size(), y.size());
  double dot = 0.0;
  double norm_x = 0.0;
  double norm_y = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    dot += static_cast<double>(x[i]) * y[i];
    norm_x += static_cast<double>(x[i]) * x[i];
    norm_y += static_cast<double>(y[i]) * y[i];
  }
  if (norm_x <= 0.0 || norm_y <= 0.0) return 0.0;
  return dot / (std::sqrt(norm_x) * std::sqrt(norm_y));
}

}  // namespace fedcross::ops
