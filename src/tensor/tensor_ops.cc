#include "tensor/tensor_ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "tensor/gemm_kernels.h"

namespace fedcross::ops {
namespace {

using detail::GemmKernels;
using detail::kSmallGemmOps;

// True when the running CPU can execute the given tier's code. The tier
// translation units compile to the generic tier when their ISA flags are
// unavailable, so a tier is usable iff it actually carries its own enum
// (the build got the ISA) and the CPU supports it.
bool TierSupported(const GemmKernels& kernels, SimdTier want) {
  if (kernels.tier != want) return false;  // build fell back to generic
  if (want == SimdTier::kGeneric) return true;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (want == SimdTier::kAvx2) return __builtin_cpu_supports("x86-64-v3");
  if (want == SimdTier::kAvx512) return __builtin_cpu_supports("x86-64-v4");
  return false;
#else
  return false;
#endif
}

const GemmKernels* DetectKernels() {
  // Explicit pin via the environment, used by benchmarks and CI to compare
  // tiers; an unsupported request falls back to detection.
  if (const char* env = std::getenv("FEDCROSS_SIMD")) {
    if (std::strcmp(env, "generic") == 0 || std::strcmp(env, "scalar") == 0) {
      return &detail::GenericGemmKernels();
    }
    if (std::strcmp(env, "avx2") == 0 &&
        TierSupported(detail::Avx2GemmKernels(), SimdTier::kAvx2)) {
      return &detail::Avx2GemmKernels();
    }
    if (std::strcmp(env, "avx512") == 0 &&
        TierSupported(detail::Avx512GemmKernels(), SimdTier::kAvx512)) {
      return &detail::Avx512GemmKernels();
    }
  }
  if (TierSupported(detail::Avx512GemmKernels(), SimdTier::kAvx512)) {
    return &detail::Avx512GemmKernels();
  }
  if (TierSupported(detail::Avx2GemmKernels(), SimdTier::kAvx2)) {
    return &detail::Avx2GemmKernels();
  }
  return &detail::GenericGemmKernels();
}

// Test override; null means "use startup detection".
std::atomic<const GemmKernels*> g_forced_kernels{nullptr};

const GemmKernels& ActiveKernels() {
  const GemmKernels* forced = g_forced_kernels.load(std::memory_order_relaxed);
  if (forced != nullptr) return *forced;
  static const GemmKernels* detected = DetectKernels();
  return *detected;
}

// Shared beta pass: C = beta * C, with the beta == 1 fast path. Runs before
// the kernels so every kernel is pure-accumulate.
inline void ScaleC(int m, int n, float beta, float* c, int ldc) {
  if (beta == 0.0f) {
    for (int i = 0; i < m; ++i) {
      float* c_row = c + static_cast<std::int64_t>(i) * ldc;
      for (int j = 0; j < n; ++j) c_row[j] = 0.0f;
    }
  } else if (beta != 1.0f) {
    for (int i = 0; i < m; ++i) {
      float* c_row = c + static_cast<std::int64_t>(i) * ldc;
      for (int j = 0; j < n; ++j) c_row[j] *= beta;
    }
  }
}

}  // namespace

SimdTier ActiveSimdTier() { return ActiveKernels().tier; }

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kGeneric: return "generic";
    case SimdTier::kAvx2: return "avx2";
    case SimdTier::kAvx512: return "avx512";
  }
  return "unknown";
}

namespace testing {

bool ForceSimdTier(SimdTier tier) {
  const GemmKernels* kernels = nullptr;
  switch (tier) {
    case SimdTier::kGeneric: kernels = &detail::GenericGemmKernels(); break;
    case SimdTier::kAvx2: kernels = &detail::Avx2GemmKernels(); break;
    case SimdTier::kAvx512: kernels = &detail::Avx512GemmKernels(); break;
  }
  if (kernels == nullptr || !TierSupported(*kernels, tier)) return false;
  g_forced_kernels.store(kernels, std::memory_order_relaxed);
  return true;
}

void ResetForcedSimdTier() {
  g_forced_kernels.store(nullptr, std::memory_order_relaxed);
}

}  // namespace testing

void Gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta,
          float* c, int ldc) {
  FC_CHECK_GE(m, 0);
  FC_CHECK_GE(n, 0);
  FC_CHECK_GE(k, 0);
  // beta pass; beta == 1 (accumulating layers, e.g. Conv2d::Backward's dW)
  // skips the traversal entirely.
  ScaleC(m, n, beta, c, ldc);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;
  const GemmKernels& kernels = ActiveKernels();
  std::int64_t ops = static_cast<std::int64_t>(m) * n * k;
  if (ops <= kSmallGemmOps) {
    kernels.gemm_small(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, c,
                       ldc);
  } else {
    kernels.gemm_blocked(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, c,
                         ldc);
  }
}

void GemmGrouped(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
                 int lda, int ldb, float beta, int ldc,
                 const GemmGroup* groups, int count) {
  FC_CHECK_GE(m, 0);
  FC_CHECK_GE(n, 0);
  FC_CHECK_GE(k, 0);
  FC_CHECK_GE(count, 0);
  for (int g = 0; g < count; ++g) ScaleC(m, n, beta, groups[g].c, ldc);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f || count == 0) return;
  const GemmKernels& kernels = ActiveKernels();
  std::int64_t ops = static_cast<std::int64_t>(m) * n * k;
  if (ops <= kSmallGemmOps) {
    // Same shape threshold as Gemm, so each instance runs the kernel the
    // standalone call would have picked. The interleaved kernel pays an
    // L-fold gather of every operand, which only earns its keep where the
    // standalone loop serialises on FP latency: untransposed B with a
    // narrow n (each output element is a long ascending-p chain). Wider
    // shapes and transposed B vectorise fine standalone, so the gather is
    // pure overhead there — measured crossover is n ~ 8-16. Both paths are
    // bit-identical per instance, so this is purely a speed choice.
    const bool interleave_pays = !trans_b && n <= 8;
    if (kernels.gemm_grouped_small != nullptr && count > 1 &&
        interleave_pays) {
      kernels.gemm_grouped_small(trans_a, trans_b, m, n, k, alpha, lda, ldb,
                                 ldc, groups, count);
    } else {
      for (int g = 0; g < count; ++g) {
        kernels.gemm_small(trans_a, trans_b, m, n, k, alpha, groups[g].a, lda,
                           groups[g].b, ldb, groups[g].c, ldc);
      }
    }
  } else {
    // Large instances are compute-bound in the blocked kernel already;
    // batching would only re-pack shared-size panels without reuse.
    for (int g = 0; g < count; ++g) {
      kernels.gemm_blocked(trans_a, trans_b, m, n, k, alpha, groups[g].a, lda,
                           groups[g].b, ldb, groups[g].c, ldc);
    }
  }
}

void ConvGrouped(int batch, int out_channels, int out_area, int patch,
                 const ConvGroup* groups, int count) {
  FC_CHECK_GE(batch, 0);
  FC_CHECK_GE(out_channels, 0);
  FC_CHECK_GE(out_area, 0);
  FC_CHECK_GE(patch, 0);
  FC_CHECK_GE(count, 0);
  if (batch == 0 || out_channels == 0 || out_area == 0 || patch == 0 ||
      count == 0) {
    return;
  }
  const GemmKernels& kernels = ActiveKernels();
  // Same per-image shape threshold as Gemm, so each instance runs the
  // kernel the standalone per-image call would have picked; that shared
  // choice is what keeps the grouped path bit-identical per instance. The
  // interleave condition mirrors GemmGrouped's: n here is out_area, so the
  // cross-replica gather only pays on late, spatially-small conv stages
  // (area <= 8), where the standalone loop serialises each output element
  // on a long ascending-patch FP chain. Early wide-area stages vectorise
  // fine standalone, so they take the per-image loop below.
  std::int64_t ops =
      static_cast<std::int64_t>(out_channels) * out_area * patch;
  if (ops <= kSmallGemmOps && out_area <= 8 &&
      kernels.conv_grouped_small != nullptr && count > 1) {
    kernels.conv_grouped_small(batch, out_channels, out_area, patch, groups,
                               count);
    return;
  }
  // Large per-image shapes (or a single replica): the exact standalone
  // calls — Gemm applies the beta == 0 zero-fill and picks small/blocked by
  // the shared threshold.
  const std::int64_t col_size = static_cast<std::int64_t>(patch) * out_area;
  const std::int64_t out_size =
      static_cast<std::int64_t>(out_channels) * out_area;
  for (int b = 0; b < batch; ++b) {
    for (int g = 0; g < count; ++g) {
      Gemm(false, false, out_channels, out_area, patch, 1.0f,
           groups[g].weights, patch, groups[g].columns + b * col_size,
           out_area, 0.0f, groups[g].output + b * out_size, out_area);
    }
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  FC_CHECK_EQ(a.ndim(), 2);
  FC_CHECK_EQ(b.ndim(), 2);
  FC_CHECK_EQ(a.dim(1), b.dim(0));
  int m = a.dim(0);
  int k = a.dim(1);
  int n = b.dim(1);
  Tensor c({m, n});
  Gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(),
       n);
  return c;
}

int ConvOutSize(int in_size, int kernel, int stride, int pad) {
  FC_CHECK_GT(stride, 0);
  int out = (in_size + 2 * pad - kernel) / stride + 1;
  FC_CHECK_GT(out, 0) << "conv output collapsed: in=" << in_size
                      << " kernel=" << kernel << " stride=" << stride
                      << " pad=" << pad;
  return out;
}

void Im2Col(const float* image, int channels, int height, int width,
            int kernel_h, int kernel_w, int stride, int pad, float* columns) {
  int out_h = ConvOutSize(height, kernel_h, stride, pad);
  int out_w = ConvOutSize(width, kernel_w, stride, pad);
  int out_area = out_h * out_w;
  // Row r = (c, kh, kw) of the patch; column = output pixel.
  for (int c = 0; c < channels; ++c) {
    const float* channel = image + static_cast<std::int64_t>(c) * height * width;
    for (int kh = 0; kh < kernel_h; ++kh) {
      for (int kw = 0; kw < kernel_w; ++kw) {
        float* out_row =
            columns + (static_cast<std::int64_t>(c) * kernel_h * kernel_w +
                       kh * kernel_w + kw) *
                          out_area;
        for (int oh = 0; oh < out_h; ++oh) {
          int ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= height) {
            for (int ow = 0; ow < out_w; ++ow) out_row[oh * out_w + ow] = 0.0f;
            continue;
          }
          const float* in_row = channel + static_cast<std::int64_t>(ih) * width;
          for (int ow = 0; ow < out_w; ++ow) {
            int iw = ow * stride - pad + kw;
            out_row[oh * out_w + ow] =
                (iw >= 0 && iw < width) ? in_row[iw] : 0.0f;
          }
        }
      }
    }
  }
}

void Col2Im(const float* columns, int channels, int height, int width,
            int kernel_h, int kernel_w, int stride, int pad, float* image) {
  int out_h = ConvOutSize(height, kernel_h, stride, pad);
  int out_w = ConvOutSize(width, kernel_w, stride, pad);
  int out_area = out_h * out_w;
  for (int c = 0; c < channels; ++c) {
    float* channel = image + static_cast<std::int64_t>(c) * height * width;
    for (int kh = 0; kh < kernel_h; ++kh) {
      for (int kw = 0; kw < kernel_w; ++kw) {
        const float* in_row =
            columns + (static_cast<std::int64_t>(c) * kernel_h * kernel_w +
                       kh * kernel_w + kw) *
                          out_area;
        for (int oh = 0; oh < out_h; ++oh) {
          int ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= height) continue;
          float* out_row = channel + static_cast<std::int64_t>(ih) * width;
          for (int ow = 0; ow < out_w; ++ow) {
            int iw = ow * stride - pad + kw;
            if (iw >= 0 && iw < width) out_row[iw] += in_row[oh * out_w + ow];
          }
        }
      }
    }
  }
}

void SoftmaxRowsRaw(float* data, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    float* row = data + static_cast<std::int64_t>(r) * cols;
    float max_value = row[0];
    for (int c = 1; c < cols; ++c) max_value = std::max(max_value, row[c]);
    double total = 0.0;
    for (int c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - max_value);
      total += row[c];
    }
    float inv = static_cast<float>(1.0 / total);
    for (int c = 0; c < cols; ++c) row[c] *= inv;
  }
}

void SoftmaxRows(Tensor& logits) {
  FC_CHECK_EQ(logits.ndim(), 2);
  SoftmaxRowsRaw(logits.data(), logits.dim(0), logits.dim(1));
}

int ArgMaxRowRaw(const float* row, int cols) {
  int best = 0;
  for (int c = 1; c < cols; ++c) {
    if (row[c] > row[best]) best = c;
  }
  return best;
}

int ArgMaxRow(const Tensor& t, int row) {
  FC_CHECK_EQ(t.ndim(), 2);
  FC_CHECK_GE(row, 0);
  FC_CHECK_LT(row, t.dim(0));
  int cols = t.dim(1);
  return ArgMaxRowRaw(t.data() + static_cast<std::int64_t>(row) * cols, cols);
}

double CosineSimilarity(const std::vector<float>& x,
                        const std::vector<float>& y) {
  FC_CHECK_EQ(x.size(), y.size());
  // Single fused pass with 4 independent accumulator lanes per reduction so
  // the compiler can vectorize the double-precision sums.
  constexpr std::size_t kLanes = 4;
  double dot[kLanes] = {0.0};
  double norm_x[kLanes] = {0.0};
  double norm_y[kLanes] = {0.0};
  const float* __restrict__ xp = x.data();
  const float* __restrict__ yp = y.data();
  std::size_t size = x.size();
  std::size_t main = size - size % kLanes;
  for (std::size_t i = 0; i < main; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      double xv = xp[i + l];
      double yv = yp[i + l];
      dot[l] += xv * yv;
      norm_x[l] += xv * xv;
      norm_y[l] += yv * yv;
    }
  }
  for (std::size_t i = main; i < size; ++i) {
    double xv = xp[i];
    double yv = yp[i];
    dot[0] += xv * yv;
    norm_x[0] += xv * xv;
    norm_y[0] += yv * yv;
  }
  double dot_total = (dot[0] + dot[1]) + (dot[2] + dot[3]);
  double norm_x_total = (norm_x[0] + norm_x[1]) + (norm_x[2] + norm_x[3]);
  double norm_y_total = (norm_y[0] + norm_y[1]) + (norm_y[2] + norm_y[3]);
  if (norm_x_total <= 0.0 || norm_y_total <= 0.0) return 0.0;
  return dot_total / (std::sqrt(norm_x_total) * std::sqrt(norm_y_total));
}

}  // namespace fedcross::ops
