#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace fedcross::ops {
namespace {

// Cache-blocked GEMM (BLIS-style): op(A)/op(B) panels are packed into
// contiguous, zero-padded strips so one micro-kernel serves all four trans
// combinations, the inner loops are branch-free, and the compiler can keep
// the kMr x kNr accumulator tile in vector registers.
//
// Blocking parameters: kMr x kNr is the register tile (4x16 floats = 8 YMM
// accumulators under AVX2, 16 XMM under SSE2); kKc keeps an A strip
// (kMr * kKc floats) plus a B strip (kNr * kKc floats) resident in L1/L2;
// kMc x kKc bounds the packed A panel (~128 KiB); kNc bounds the packed B
// panel (~2 MiB, L3-resident).
constexpr int kMr = 4;
constexpr int kNr = 16;
constexpr int kMc = 128;
constexpr int kKc = 256;
constexpr int kNc = 2048;

// Below this op-count the packing overhead dominates; use the simple loops.
constexpr std::int64_t kSmallGemmOps = 16 * 1024;

constexpr int RoundUp(int value, int multiple) {
  return (value + multiple - 1) / multiple * multiple;
}

inline float OpA(const float* a, int lda, bool trans_a, int i, int p) {
  return trans_a ? a[static_cast<std::int64_t>(p) * lda + i]
                 : a[static_cast<std::int64_t>(i) * lda + p];
}

inline float OpB(const float* b, int ldb, bool trans_b, int p, int j) {
  return trans_b ? b[static_cast<std::int64_t>(j) * ldb + p]
                 : b[static_cast<std::int64_t>(p) * ldb + j];
}

// Packs op(A)[i0:i0+mc, p0:p0+kc] into kMr-row strips, each strip stored
// p-major (packed[p * kMr + r]), zero-padding partial strips so the
// micro-kernel never needs a row mask.
void PackA(bool trans_a, const float* a, int lda, int i0, int mc, int p0,
           int kc, float* packed) {
  for (int i = 0; i < mc; i += kMr) {
    int rows = std::min(kMr, mc - i);
    for (int p = 0; p < kc; ++p) {
      for (int r = 0; r < rows; ++r) {
        packed[p * kMr + r] = OpA(a, lda, trans_a, i0 + i + r, p0 + p);
      }
      for (int r = rows; r < kMr; ++r) packed[p * kMr + r] = 0.0f;
    }
    packed += static_cast<std::int64_t>(kc) * kMr;
  }
}

// Packs op(B)[p0:p0+kc, j0:j0+nc] into kNr-column strips, each strip stored
// p-major (packed[p * kNr + c]), zero-padded like PackA.
void PackB(bool trans_b, const float* b, int ldb, int p0, int kc, int j0,
           int nc, float* packed) {
  for (int j = 0; j < nc; j += kNr) {
    int cols = std::min(kNr, nc - j);
    if (!trans_b && cols == kNr) {
      // Full strip of an untransposed B: contiguous row copies.
      for (int p = 0; p < kc; ++p) {
        const float* src = b + static_cast<std::int64_t>(p0 + p) * ldb + j0 + j;
        float* dst = packed + p * kNr;
        for (int c = 0; c < kNr; ++c) dst[c] = src[c];
      }
    } else {
      for (int p = 0; p < kc; ++p) {
        for (int c = 0; c < cols; ++c) {
          packed[p * kNr + c] = OpB(b, ldb, trans_b, p0 + p, j0 + j + c);
        }
        for (int c = cols; c < kNr; ++c) packed[p * kNr + c] = 0.0f;
      }
    }
    packed += static_cast<std::int64_t>(kc) * kNr;
  }
}

// acc[kMr][kNr] += sum_p a_strip[p][*] (outer) b_strip[p][*]. Both strips
// are packed and padded, so the loops are fixed-trip and branch-free; the
// accumulator tile stays in registers across the whole p loop.
#if defined(__GNUC__) || defined(__clang__)
// GNU vector extension: one logical kNr-wide lane per A row. The compiler
// lowers it to however many native vectors the target ISA needs (4x SSE,
// 2x AVX2, 1x AVX-512), keeping the B row broadcast-multiplied against all
// four accumulator chains.
typedef float VecNr __attribute__((vector_size(kNr * sizeof(float))));
static_assert(kMr == 4, "micro-kernel unroll assumes kMr == 4");

inline void MicroKernel(int kc, const float* __restrict__ a_strip,
                        const float* __restrict__ b_strip,
                        float* __restrict__ acc) {
  VecNr acc0 = {}, acc1 = {}, acc2 = {}, acc3 = {};
  for (int p = 0; p < kc; ++p) {
    VecNr b_vec;
    __builtin_memcpy(&b_vec, b_strip + p * kNr, sizeof(b_vec));
    const float* a_col = a_strip + p * kMr;
    acc0 += a_col[0] * b_vec;
    acc1 += a_col[1] * b_vec;
    acc2 += a_col[2] * b_vec;
    acc3 += a_col[3] * b_vec;
  }
  __builtin_memcpy(acc + 0 * kNr, &acc0, sizeof(acc0));
  __builtin_memcpy(acc + 1 * kNr, &acc1, sizeof(acc1));
  __builtin_memcpy(acc + 2 * kNr, &acc2, sizeof(acc2));
  __builtin_memcpy(acc + 3 * kNr, &acc3, sizeof(acc3));
}
#else
inline void MicroKernel(int kc, const float* __restrict__ a_strip,
                        const float* __restrict__ b_strip,
                        float* __restrict__ acc) {
  for (int p = 0; p < kc; ++p) {
    const float* a_col = a_strip + p * kMr;
    const float* b_row = b_strip + p * kNr;
    for (int r = 0; r < kMr; ++r) {
      float a_val = a_col[r];
      float* acc_row = acc + r * kNr;
      for (int c = 0; c < kNr; ++c) acc_row[c] += a_val * b_row[c];
    }
  }
}
#endif

void GemmBlocked(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
                 const float* a, int lda, const float* b, int ldb, float* c,
                 int ldc) {
  // Packing scratch is reused across calls; thread_local keeps concurrent
  // client-training threads from sharing buffers.
  thread_local std::vector<float> a_pack;
  thread_local std::vector<float> b_pack;

  for (int jc = 0; jc < n; jc += kNc) {
    int nc = std::min(kNc, n - jc);
    int nc_padded = RoundUp(nc, kNr);
    for (int pc = 0; pc < k; pc += kKc) {
      int kc = std::min(kKc, k - pc);
      b_pack.resize(static_cast<std::size_t>(nc_padded) * kc);
      PackB(trans_b, b, ldb, pc, kc, jc, nc, b_pack.data());
      for (int ic = 0; ic < m; ic += kMc) {
        int mc = std::min(kMc, m - ic);
        int mc_padded = RoundUp(mc, kMr);
        a_pack.resize(static_cast<std::size_t>(mc_padded) * kc);
        PackA(trans_a, a, lda, ic, mc, pc, kc, a_pack.data());
        for (int jr = 0; jr < nc; jr += kNr) {
          const float* b_strip =
              b_pack.data() + static_cast<std::int64_t>(jr / kNr) * kc * kNr;
          int cols = std::min(kNr, nc - jr);
          for (int ir = 0; ir < mc; ir += kMr) {
            const float* a_strip =
                a_pack.data() + static_cast<std::int64_t>(ir / kMr) * kc * kMr;
            int rows = std::min(kMr, mc - ir);
            float acc[kMr * kNr] = {0.0f};
            MicroKernel(kc, a_strip, b_strip, acc);
            // Write back the valid region of the tile; alpha == 1 (the
            // common case throughout the layers) skips the multiply.
            for (int r = 0; r < rows; ++r) {
              float* c_row =
                  c + static_cast<std::int64_t>(ic + ir + r) * ldc + jc + jr;
              const float* acc_row = acc + r * kNr;
              if (alpha == 1.0f) {
                for (int cc = 0; cc < cols; ++cc) c_row[cc] += acc_row[cc];
              } else {
                for (int cc = 0; cc < cols; ++cc) {
                  c_row[cc] += alpha * acc_row[cc];
                }
              }
            }
          }
        }
      }
    }
  }
}

// Reference loops for small problems, where packing costs more than it
// saves. No zero-skip branch: it defeats vectorization on dense inputs.
void GemmSmall(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
               const float* a, int lda, const float* b, int ldb, float* c,
               int ldc) {
  if (!trans_b) {
    // Inner loop walks contiguous rows of B: cache-friendly i-p-j order.
    for (int i = 0; i < m; ++i) {
      float* c_row = c + static_cast<std::int64_t>(i) * ldc;
      for (int p = 0; p < k; ++p) {
        float scaled = alpha * OpA(a, lda, trans_a, i, p);
        const float* b_row = b + static_cast<std::int64_t>(p) * ldb;
        for (int j = 0; j < n; ++j) c_row[j] += scaled * b_row[j];
      }
    }
  } else {
    // B is transposed: dot products over contiguous rows of B.
    for (int i = 0; i < m; ++i) {
      float* c_row = c + static_cast<std::int64_t>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        const float* b_row = b + static_cast<std::int64_t>(j) * ldb;
        double acc = 0.0;
        if (!trans_a) {
          const float* a_row = a + static_cast<std::int64_t>(i) * lda;
          for (int p = 0; p < k; ++p) {
            acc += static_cast<double>(a_row[p]) * b_row[p];
          }
        } else {
          for (int p = 0; p < k; ++p) {
            acc += static_cast<double>(a[static_cast<std::int64_t>(p) * lda + i]) *
                   b_row[p];
          }
        }
        c_row[j] += alpha * static_cast<float>(acc);
      }
    }
  }
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta,
          float* c, int ldc) {
  FC_CHECK_GE(m, 0);
  FC_CHECK_GE(n, 0);
  FC_CHECK_GE(k, 0);
  // beta pass; beta == 1 (accumulating layers, e.g. Conv2d::Backward's dW)
  // skips the traversal entirely.
  if (beta == 0.0f) {
    for (int i = 0; i < m; ++i) {
      float* c_row = c + static_cast<std::int64_t>(i) * ldc;
      for (int j = 0; j < n; ++j) c_row[j] = 0.0f;
    }
  } else if (beta != 1.0f) {
    for (int i = 0; i < m; ++i) {
      float* c_row = c + static_cast<std::int64_t>(i) * ldc;
      for (int j = 0; j < n; ++j) c_row[j] *= beta;
    }
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;
  std::int64_t ops = static_cast<std::int64_t>(m) * n * k;
  if (ops <= kSmallGemmOps) {
    GemmSmall(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else {
    GemmBlocked(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, c, ldc);
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  FC_CHECK_EQ(a.ndim(), 2);
  FC_CHECK_EQ(b.ndim(), 2);
  FC_CHECK_EQ(a.dim(1), b.dim(0));
  int m = a.dim(0);
  int k = a.dim(1);
  int n = b.dim(1);
  Tensor c({m, n});
  Gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(),
       n);
  return c;
}

int ConvOutSize(int in_size, int kernel, int stride, int pad) {
  FC_CHECK_GT(stride, 0);
  int out = (in_size + 2 * pad - kernel) / stride + 1;
  FC_CHECK_GT(out, 0) << "conv output collapsed: in=" << in_size
                      << " kernel=" << kernel << " stride=" << stride
                      << " pad=" << pad;
  return out;
}

void Im2Col(const float* image, int channels, int height, int width,
            int kernel_h, int kernel_w, int stride, int pad, float* columns) {
  int out_h = ConvOutSize(height, kernel_h, stride, pad);
  int out_w = ConvOutSize(width, kernel_w, stride, pad);
  int out_area = out_h * out_w;
  // Row r = (c, kh, kw) of the patch; column = output pixel.
  for (int c = 0; c < channels; ++c) {
    const float* channel = image + static_cast<std::int64_t>(c) * height * width;
    for (int kh = 0; kh < kernel_h; ++kh) {
      for (int kw = 0; kw < kernel_w; ++kw) {
        float* out_row =
            columns + (static_cast<std::int64_t>(c) * kernel_h * kernel_w +
                       kh * kernel_w + kw) *
                          out_area;
        for (int oh = 0; oh < out_h; ++oh) {
          int ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= height) {
            for (int ow = 0; ow < out_w; ++ow) out_row[oh * out_w + ow] = 0.0f;
            continue;
          }
          const float* in_row = channel + static_cast<std::int64_t>(ih) * width;
          for (int ow = 0; ow < out_w; ++ow) {
            int iw = ow * stride - pad + kw;
            out_row[oh * out_w + ow] =
                (iw >= 0 && iw < width) ? in_row[iw] : 0.0f;
          }
        }
      }
    }
  }
}

void Col2Im(const float* columns, int channels, int height, int width,
            int kernel_h, int kernel_w, int stride, int pad, float* image) {
  int out_h = ConvOutSize(height, kernel_h, stride, pad);
  int out_w = ConvOutSize(width, kernel_w, stride, pad);
  int out_area = out_h * out_w;
  for (int c = 0; c < channels; ++c) {
    float* channel = image + static_cast<std::int64_t>(c) * height * width;
    for (int kh = 0; kh < kernel_h; ++kh) {
      for (int kw = 0; kw < kernel_w; ++kw) {
        const float* in_row =
            columns + (static_cast<std::int64_t>(c) * kernel_h * kernel_w +
                       kh * kernel_w + kw) *
                          out_area;
        for (int oh = 0; oh < out_h; ++oh) {
          int ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= height) continue;
          float* out_row = channel + static_cast<std::int64_t>(ih) * width;
          for (int ow = 0; ow < out_w; ++ow) {
            int iw = ow * stride - pad + kw;
            if (iw >= 0 && iw < width) out_row[iw] += in_row[oh * out_w + ow];
          }
        }
      }
    }
  }
}

void SoftmaxRows(Tensor& logits) {
  FC_CHECK_EQ(logits.ndim(), 2);
  int rows = logits.dim(0);
  int cols = logits.dim(1);
  float* data = logits.data();
  for (int r = 0; r < rows; ++r) {
    float* row = data + static_cast<std::int64_t>(r) * cols;
    float max_value = row[0];
    for (int c = 1; c < cols; ++c) max_value = std::max(max_value, row[c]);
    double total = 0.0;
    for (int c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - max_value);
      total += row[c];
    }
    float inv = static_cast<float>(1.0 / total);
    for (int c = 0; c < cols; ++c) row[c] *= inv;
  }
}

int ArgMaxRow(const Tensor& t, int row) {
  FC_CHECK_EQ(t.ndim(), 2);
  FC_CHECK_GE(row, 0);
  FC_CHECK_LT(row, t.dim(0));
  int cols = t.dim(1);
  const float* data = t.data() + static_cast<std::int64_t>(row) * cols;
  int best = 0;
  for (int c = 1; c < cols; ++c) {
    if (data[c] > data[best]) best = c;
  }
  return best;
}

double CosineSimilarity(const std::vector<float>& x,
                        const std::vector<float>& y) {
  FC_CHECK_EQ(x.size(), y.size());
  // Single fused pass with 4 independent accumulator lanes per reduction so
  // the compiler can vectorize the double-precision sums.
  constexpr std::size_t kLanes = 4;
  double dot[kLanes] = {0.0};
  double norm_x[kLanes] = {0.0};
  double norm_y[kLanes] = {0.0};
  const float* __restrict__ xp = x.data();
  const float* __restrict__ yp = y.data();
  std::size_t size = x.size();
  std::size_t main = size - size % kLanes;
  for (std::size_t i = 0; i < main; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      double xv = xp[i + l];
      double yv = yp[i + l];
      dot[l] += xv * yv;
      norm_x[l] += xv * xv;
      norm_y[l] += yv * yv;
    }
  }
  for (std::size_t i = main; i < size; ++i) {
    double xv = xp[i];
    double yv = yp[i];
    dot[0] += xv * yv;
    norm_x[0] += xv * xv;
    norm_y[0] += yv * yv;
  }
  double dot_total = (dot[0] + dot[1]) + (dot[2] + dot[3]);
  double norm_x_total = (norm_x[0] + norm_x[1]) + (norm_x[2] + norm_x[3]);
  double norm_y_total = (norm_y[0] + norm_y[1]) + (norm_y[2] + norm_y[3]);
  if (norm_x_total <= 0.0 || norm_y_total <= 0.0) return 0.0;
  return dot_total / (std::sqrt(norm_x_total) * std::sqrt(norm_y_total));
}

}  // namespace fedcross::ops
