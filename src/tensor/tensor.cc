#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <numeric>
#include <sstream>

namespace fedcross {
namespace {

std::int64_t ShapeNumel(const Tensor::Shape& shape) {
  std::int64_t numel = 1;
  for (int dim : shape) {
    FC_CHECK_GT(dim, 0) << "tensor dims must be positive";
    numel *= dim;
  }
  return shape.empty() ? 0 : numel;
}

// Relaxed is enough: tests only read the counter from quiescent points.
std::atomic<std::uint64_t> g_heap_allocations{0};

void CountAllocation(std::size_t elements) {
  if (elements > 0) {
    g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

std::uint64_t Tensor::HeapAllocations() {
  return g_heap_allocations.load(std::memory_order_relaxed);
}

void Tensor::ResetHeapAllocations() {
  g_heap_allocations.store(0, std::memory_order_relaxed);
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  CountAllocation(static_cast<std::size_t>(ShapeNumel(shape_)));
  data_.assign(ShapeNumel(shape_), 0.0f);
}

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_), data_(other.data_) {
  CountAllocation(data_.size());
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  if (other.data_.size() > data_.capacity()) CountAllocation(other.data_.size());
  shape_ = other.shape_;
  data_ = other.data_;  // vector copy-assign reuses capacity when possible
  return *this;
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(Shape shape, std::vector<float> values) {
  Tensor t;
  FC_CHECK_EQ(ShapeNumel(shape), static_cast<std::int64_t>(values.size()));
  CountAllocation(values.size());  // adopts a caller-allocated buffer
  t.shape_ = std::move(shape);
  t.data_ = std::move(values);
  return t;
}

Tensor Tensor::RandomNormal(Shape shape, util::Rng& rng, float mean,
                            float stddev) {
  Tensor t(std::move(shape));
  for (float& value : t.data_) {
    value = static_cast<float>(rng.Normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::RandomUniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& value : t.data_) {
    value = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

int Tensor::dim(int axis) const {
  FC_CHECK_GE(axis, 0);
  FC_CHECK_LT(axis, ndim());
  return shape_[axis];
}

std::string Tensor::ShapeString() const {
  std::ostringstream out;
  out << "[";
  for (int i = 0; i < ndim(); ++i) {
    if (i > 0) out << ", ";
    out << shape_[i];
  }
  out << "]";
  return out.str();
}

Tensor& Tensor::Reshape(Shape shape) {
  FC_CHECK_EQ(ShapeNumel(shape), numel())
      << "reshape " << ShapeString() << " incompatible";
  shape_ = std::move(shape);
  return *this;
}

Tensor& Tensor::ResizeTo(const Shape& shape) {
  std::size_t count = static_cast<std::size_t>(ShapeNumel(shape));
  if (count > data_.capacity()) CountAllocation(count);
  data_.resize(count);
  shape_ = shape;  // small-vector copy-assign, reuses shape_'s capacity
  return *this;
}

float& Tensor::at(std::int64_t flat_index) {
  FC_CHECK_GE(flat_index, 0);
  FC_CHECK_LT(flat_index, numel());
  return data_[flat_index];
}

float Tensor::at(std::int64_t flat_index) const {
  FC_CHECK_GE(flat_index, 0);
  FC_CHECK_LT(flat_index, numel());
  return data_[flat_index];
}

float& Tensor::at(int row, int col) {
  FC_CHECK_EQ(ndim(), 2);
  FC_CHECK_GE(row, 0);
  FC_CHECK_LT(row, shape_[0]);
  FC_CHECK_GE(col, 0);
  FC_CHECK_LT(col, shape_[1]);
  return data_[static_cast<std::int64_t>(row) * shape_[1] + col];
}

float Tensor::at(int row, int col) const {
  return const_cast<Tensor*>(this)->at(row, col);
}

Tensor& Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
  return *this;
}

Tensor& Tensor::AddInPlace(const Tensor& other) {
  FC_CHECK(SameShape(other)) << ShapeString() << " vs " << other.ShapeString();
  const float* src = other.data();
  float* dst = data();
  for (std::int64_t i = 0; i < numel(); ++i) dst[i] += src[i];
  return *this;
}

Tensor& Tensor::SubInPlace(const Tensor& other) {
  FC_CHECK(SameShape(other)) << ShapeString() << " vs " << other.ShapeString();
  const float* src = other.data();
  float* dst = data();
  for (std::int64_t i = 0; i < numel(); ++i) dst[i] -= src[i];
  return *this;
}

Tensor& Tensor::MulInPlace(const Tensor& other) {
  FC_CHECK(SameShape(other)) << ShapeString() << " vs " << other.ShapeString();
  const float* src = other.data();
  float* dst = data();
  for (std::int64_t i = 0; i < numel(); ++i) dst[i] *= src[i];
  return *this;
}

Tensor& Tensor::Scale(float factor) {
  for (float& value : data_) value *= factor;
  return *this;
}

Tensor& Tensor::Axpy(float alpha, const Tensor& other) {
  FC_CHECK(SameShape(other)) << ShapeString() << " vs " << other.ShapeString();
  const float* src = other.data();
  float* dst = data();
  for (std::int64_t i = 0; i < numel(); ++i) dst[i] += alpha * src[i];
  return *this;
}

float Tensor::Sum() const {
  double total = 0.0;
  for (float value : data_) total += value;
  return static_cast<float>(total);
}

float Tensor::Mean() const {
  FC_CHECK_GT(numel(), 0);
  return Sum() / static_cast<float>(numel());
}

float Tensor::Max() const {
  FC_CHECK_GT(numel(), 0);
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::SquaredL2Norm() const {
  double total = 0.0;
  for (float value : data_) total += static_cast<double>(value) * value;
  return static_cast<float>(total);
}

float Tensor::L2Norm() const { return std::sqrt(SquaredL2Norm()); }

void Tensor::SerializeTo(std::vector<std::uint8_t>& out) const {
  auto append = [&out](const void* src, std::size_t size) {
    const auto* bytes = static_cast<const std::uint8_t*>(src);
    out.insert(out.end(), bytes, bytes + size);
  };
  std::int32_t ndims = ndim();
  append(&ndims, sizeof(ndims));
  for (int dim : shape_) {
    std::int32_t d = dim;
    append(&d, sizeof(d));
  }
  append(data_.data(), data_.size() * sizeof(float));
}

bool Tensor::DeserializeFrom(const std::vector<std::uint8_t>& in,
                             std::size_t& offset, Tensor& result) {
  auto read = [&](void* dst, std::size_t size) {
    if (offset + size > in.size()) return false;
    std::memcpy(dst, in.data() + offset, size);
    offset += size;
    return true;
  };
  std::int32_t ndims = 0;
  if (!read(&ndims, sizeof(ndims)) || ndims < 0 || ndims > 8) return false;
  Shape shape(ndims);
  std::int64_t numel = ndims == 0 ? 0 : 1;
  for (std::int32_t i = 0; i < ndims; ++i) {
    std::int32_t d = 0;
    if (!read(&d, sizeof(d)) || d <= 0) return false;
    shape[i] = d;
    numel *= d;
  }
  // Bounds-check before touching `result`, so a truncated buffer leaves it
  // untouched; then deserialize straight into its (possibly recycled)
  // storage instead of staging through a temporary vector.
  std::size_t payload = static_cast<std::size_t>(numel) * sizeof(float);
  if (offset + payload > in.size()) return false;
  result.ResizeTo(shape);
  return read(result.data(), payload);
}

Tensor operator+(const Tensor& a, const Tensor& b) {
  Tensor result = a;
  result.AddInPlace(b);
  return result;
}

Tensor operator-(const Tensor& a, const Tensor& b) {
  Tensor result = a;
  result.SubInPlace(b);
  return result;
}

Tensor operator*(float scalar, const Tensor& t) {
  Tensor result = t;
  result.Scale(scalar);
  return result;
}

}  // namespace fedcross
