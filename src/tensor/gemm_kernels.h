#ifndef FEDCROSS_TENSOR_GEMM_KERNELS_H_
#define FEDCROSS_TENSOR_GEMM_KERNELS_H_

#include <cstdint>

#include "tensor/tensor_ops.h"

namespace fedcross::ops::detail {

// Below this op-count (m*n*k) the packing overhead of the blocked kernel
// dominates; the drivers use the simple loops. Shared by Gemm and
// GemmGrouped so both pick the same kernel for the same shape — that shared
// choice is what makes the grouped path bit-identical per instance.
constexpr std::int64_t kSmallGemmOps = 16 * 1024;

// One ISA tier of the GEMM kernels. The function pointers are resolved once
// at startup (see ActiveSimdTier in tensor_ops.h); every tier is compiled
// from the same source include (gemm_tiers.inc) so the tiers differ only in
// the instruction set the compiler may use.
//
// Contract: within one tier, gemm_grouped_small applied to `count`
// instances produces, for every instance, exactly the bytes gemm_small
// produces on that instance alone, and conv_grouped_small produces exactly
// the bytes of per-image gemm_small calls (alpha = 1, beta = 0). Tiers
// achieve this by sharing the multiply-add helper (fused iff the tier has
// FMA) between all kernels. gemm_grouped_small may be null (the portable
// tier without FMA); the driver then loops gemm_small per instance.
// conv_grouped_small is non-null on every tier: the portable tier carries a
// scalar lane-interleaved body that the compiler may vectorise because each
// lane's ascending-p MAddF chain is independent.
struct GemmKernels {
  SimdTier tier;
  void (*gemm_small)(bool trans_a, bool trans_b, int m, int n, int k,
                     float alpha, const float* a, int lda, const float* b,
                     int ldb, float* c, int ldc);
  void (*gemm_blocked)(bool trans_a, bool trans_b, int m, int n, int k,
                       float alpha, const float* a, int lda, const float* b,
                       int ldb, float* c, int ldc);
  void (*gemm_grouped_small)(bool trans_a, bool trans_b, int m, int n, int k,
                             float alpha, int lda, int ldb, int ldc,
                             const GemmGroup* groups, int count);
  void (*conv_grouped_small)(int batch, int m, int n, int k,
                             const ConvGroup* groups, int count);
};

// Tier accessors. Each translation unit that fails to get its ISA at
// compile time (non-x86 target, or a compiler without the -march flag)
// returns the generic tier instead, so the accessors are always safe to
// call; runtime CPU support is checked separately by the dispatcher.
const GemmKernels& GenericGemmKernels();
const GemmKernels& Avx2GemmKernels();
const GemmKernels& Avx512GemmKernels();

}  // namespace fedcross::ops::detail

#endif  // FEDCROSS_TENSOR_GEMM_KERNELS_H_
