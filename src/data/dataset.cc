#include "data/dataset.h"

#include <cstring>

namespace fedcross::data {
namespace {

std::int64_t ShapeNumel(const Tensor::Shape& shape) {
  std::int64_t numel = 1;
  for (int dim : shape) numel *= dim;
  return numel;
}

Tensor::Shape BatchShape(const Tensor::Shape& example_shape, int batch) {
  Tensor::Shape shape;
  shape.reserve(example_shape.size() + 1);
  shape.push_back(batch);
  shape.insert(shape.end(), example_shape.begin(), example_shape.end());
  return shape;
}

}  // namespace

std::vector<int> Dataset::LabelCounts() const {
  std::vector<int> counts(num_classes(), 0);
  for (int i = 0; i < size(); ++i) {
    int label = LabelOf(i);
    FC_CHECK_GE(label, 0);
    FC_CHECK_LT(label, num_classes());
    ++counts[label];
  }
  return counts;
}

InMemoryDataset::InMemoryDataset(Tensor::Shape example_shape,
                                 std::vector<float> features,
                                 std::vector<int> labels, int num_classes)
    : example_shape_(std::move(example_shape)),
      example_numel_(ShapeNumel(example_shape_)),
      features_(std::move(features)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  FC_CHECK_GT(num_classes_, 0);
  FC_CHECK_EQ(static_cast<std::int64_t>(features_.size()),
              example_numel_ * static_cast<std::int64_t>(labels_.size()));
}

void InMemoryDataset::GetBatch(const std::vector<int>& indices,
                               Tensor& features,
                               std::vector<int>& labels) const {
  int batch = static_cast<int>(indices.size());
  features = Tensor(BatchShape(example_shape_, batch));
  labels.resize(batch);
  float* out = features.data();
  for (int b = 0; b < batch; ++b) {
    int index = indices[b];
    FC_CHECK_GE(index, 0);
    FC_CHECK_LT(index, size());
    std::memcpy(out + b * example_numel_,
                features_.data() + index * example_numel_,
                example_numel_ * sizeof(float));
    labels[b] = labels_[index];
  }
}

int InMemoryDataset::LabelOf(int index) const {
  FC_CHECK_GE(index, 0);
  FC_CHECK_LT(index, size());
  return labels_[index];
}

SubsetDataset::SubsetDataset(std::shared_ptr<const Dataset> base,
                             std::vector<int> indices)
    : base_(std::move(base)), indices_(std::move(indices)) {
  FC_CHECK(base_ != nullptr);
  for (int index : indices_) {
    FC_CHECK_GE(index, 0);
    FC_CHECK_LT(index, base_->size());
  }
}

void SubsetDataset::GetBatch(const std::vector<int>& indices, Tensor& features,
                             std::vector<int>& labels) const {
  std::vector<int> base_indices(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    int index = indices[i];
    FC_CHECK_GE(index, 0);
    FC_CHECK_LT(index, size());
    base_indices[i] = indices_[index];
  }
  base_->GetBatch(base_indices, features, labels);
}

int SubsetDataset::LabelOf(int index) const {
  FC_CHECK_GE(index, 0);
  FC_CHECK_LT(index, size());
  return base_->LabelOf(indices_[index]);
}

}  // namespace fedcross::data
