#include "data/dataset.h"

#include <cstring>

namespace fedcross::data {
namespace {

std::int64_t ShapeNumel(const Tensor::Shape& shape) {
  std::int64_t numel = 1;
  for (int dim : shape) numel *= dim;
  return numel;
}

}  // namespace

std::vector<int> Dataset::LabelCounts() const {
  std::vector<int> counts(num_classes(), 0);
  for (int i = 0; i < size(); ++i) {
    int label = LabelOf(i);
    FC_CHECK_GE(label, 0);
    FC_CHECK_LT(label, num_classes());
    ++counts[label];
  }
  return counts;
}

InMemoryDataset::InMemoryDataset(Tensor::Shape example_shape,
                                 std::vector<float> features,
                                 std::vector<int> labels, int num_classes)
    : example_shape_(std::move(example_shape)),
      example_numel_(ShapeNumel(example_shape_)),
      features_(std::move(features)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  FC_CHECK_GT(num_classes_, 0);
  FC_CHECK_EQ(static_cast<std::int64_t>(features_.size()),
              example_numel_ * static_cast<std::int64_t>(labels_.size()));
}

void InMemoryDataset::GetBatch(const std::vector<int>& indices,
                               Tensor& features,
                               std::vector<int>& labels) const {
  int batch = static_cast<int>(indices.size());
  // thread_local: the global test set is shared across eval worker threads.
  // Built in place (clear + push_back) so the scratch keeps its capacity.
  thread_local Tensor::Shape batch_shape;
  batch_shape.clear();
  batch_shape.push_back(batch);
  batch_shape.insert(batch_shape.end(), example_shape_.begin(),
                     example_shape_.end());
  features.ResizeTo(batch_shape);
  labels.resize(batch);
  float* out = features.data();
  for (int b = 0; b < batch; ++b) {
    int index = indices[b];
    FC_CHECK_GE(index, 0);
    FC_CHECK_LT(index, size());
    std::memcpy(out + b * example_numel_,
                features_.data() + index * example_numel_,
                example_numel_ * sizeof(float));
    labels[b] = labels_[index];
  }
}

int InMemoryDataset::LabelOf(int index) const {
  FC_CHECK_GE(index, 0);
  FC_CHECK_LT(index, size());
  return labels_[index];
}

SubsetDataset::SubsetDataset(std::shared_ptr<const Dataset> base,
                             std::vector<int> indices)
    : base_(std::move(base)), indices_(std::move(indices)) {
  FC_CHECK(base_ != nullptr);
  for (int index : indices_) {
    FC_CHECK_GE(index, 0);
    FC_CHECK_LT(index, base_->size());
  }
}

void SubsetDataset::GetBatch(const std::vector<int>& indices, Tensor& features,
                             std::vector<int>& labels) const {
  // thread_local: shards can be read concurrently by eval worker threads.
  thread_local std::vector<int> base_indices;
  base_indices.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    int index = indices[i];
    FC_CHECK_GE(index, 0);
    FC_CHECK_LT(index, size());
    base_indices[i] = indices_[index];
  }
  base_->GetBatch(base_indices, features, labels);
}

int SubsetDataset::LabelOf(int index) const {
  FC_CHECK_GE(index, 0);
  FC_CHECK_LT(index, size());
  return base_->LabelOf(indices_[index]);
}

void MaterializeVirtualClients(FederatedDataset& federated) {
  if (!federated.make_shard) return;
  federated.client_train.clear();
  federated.client_train.reserve(
      static_cast<std::size_t>(federated.virtual_clients));
  for (std::int64_t id = 0; id < federated.virtual_clients; ++id) {
    federated.client_train.push_back(federated.make_shard(id));
  }
  federated.make_shard = nullptr;
  federated.virtual_clients = 0;
}

}  // namespace fedcross::data
