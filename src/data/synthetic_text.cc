#include "data/synthetic_text.h"

#include <cmath>

#include "util/rng.h"

namespace fedcross::data {
namespace {

using TransitionMatrix = std::vector<std::vector<double>>;

// Row-stochastic base chain with a few dominant successors per token.
TransitionMatrix MakeBaseChain(int vocab, fedcross::util::Rng& rng) {
  TransitionMatrix chain(vocab);
  for (int token = 0; token < vocab; ++token) {
    chain[token] = rng.Dirichlet(0.3, vocab);
  }
  return chain;
}

// Per-role chain: elementwise log-normal perturbation of the base chain.
TransitionMatrix PerturbChain(const TransitionMatrix& base, double strength,
                              fedcross::util::Rng& rng) {
  TransitionMatrix chain = base;
  for (auto& row : chain) {
    double total = 0.0;
    for (double& p : row) {
      p *= std::exp(strength * rng.Normal());
      total += p;
    }
    for (double& p : row) p /= total;
  }
  return chain;
}

// Generates `count` sliding-window (sequence -> next token) examples from a
// Markov chain stream.
void GenerateCharLmExamples(const TransitionMatrix& chain, int seq_len,
                            int count, fedcross::util::Rng& rng,
                            std::vector<float>& features,
                            std::vector<int>& labels) {
  int vocab = static_cast<int>(chain.size());
  int stream_len = count + seq_len;
  std::vector<int> stream(stream_len);
  stream[0] = static_cast<int>(rng.UniformInt(vocab));
  for (int i = 1; i < stream_len; ++i) {
    stream[i] = rng.Categorical(chain[stream[i - 1]]);
  }
  std::size_t base_index = features.size();
  features.resize(base_index + static_cast<std::size_t>(count) * seq_len);
  for (int i = 0; i < count; ++i) {
    for (int t = 0; t < seq_len; ++t) {
      features[base_index + static_cast<std::size_t>(i) * seq_len + t] =
          static_cast<float>(stream[i + t]);
    }
    labels.push_back(stream[i + seq_len]);
  }
}

int VariedCount(int mean, fedcross::util::Rng& rng) {
  double factor = rng.Uniform(0.5, 1.5);
  return std::max(10, static_cast<int>(mean * factor));
}

}  // namespace

FederatedDataset MakeSyntheticCharLm(const SyntheticCharLmOptions& options) {
  FC_CHECK_GT(options.num_clients, 0);
  FC_CHECK_GT(options.vocab_size, 1);
  util::Rng rng(options.seed);
  TransitionMatrix base = MakeBaseChain(options.vocab_size, rng);

  FederatedDataset federated;
  federated.num_classes = options.vocab_size;

  std::vector<TransitionMatrix> role_chains;
  role_chains.reserve(options.num_clients);
  for (int c = 0; c < options.num_clients; ++c) {
    role_chains.push_back(PerturbChain(base, options.role_perturbation, rng));
    int count = VariedCount(options.mean_samples_per_client, rng);
    std::vector<float> features;
    std::vector<int> labels;
    GenerateCharLmExamples(role_chains.back(), options.seq_len, count, rng,
                           features, labels);
    federated.client_train.push_back(std::make_shared<InMemoryDataset>(
        Tensor::Shape{options.seq_len}, std::move(features), std::move(labels),
        options.vocab_size));
  }

  // Global test set: an even mixture over all roles.
  std::vector<float> features;
  std::vector<int> labels;
  int per_role = std::max(1, options.test_samples / options.num_clients);
  for (const TransitionMatrix& chain : role_chains) {
    GenerateCharLmExamples(chain, options.seq_len, per_role, rng, features,
                           labels);
  }
  federated.test = std::make_shared<InMemoryDataset>(
      Tensor::Shape{options.seq_len}, std::move(features), std::move(labels),
      options.vocab_size);
  return federated;
}

FederatedDataset MakeSyntheticSentiment(
    const SyntheticSentimentOptions& options) {
  FC_CHECK_GT(options.num_clients, 0);
  FC_CHECK_GE(options.vocab_size, 9);
  util::Rng rng(options.seed);

  // Lexicon split: [0, third) positive, [third, 2*third) negative, rest
  // neutral.
  int third = options.vocab_size / 3;
  auto sample_token = [&](int lexicon, const std::vector<int>& preferred) {
    // 70% of in-lexicon draws come from the client's preferred subset.
    if (!preferred.empty() && rng.Uniform() < 0.7) {
      return preferred[rng.UniformInt(preferred.size())];
    }
    switch (lexicon) {
      case 0:  // positive
        return static_cast<int>(rng.UniformInt(third));
      case 1:  // negative
        return third + static_cast<int>(rng.UniformInt(third));
      default:  // neutral
        return 2 * third +
               static_cast<int>(rng.UniformInt(options.vocab_size - 2 * third));
    }
  };

  auto generate_client = [&](double pos_prob, const std::vector<int>& pos_pref,
                             const std::vector<int>& neg_pref, int count,
                             std::vector<float>& features,
                             std::vector<int>& labels) {
    for (int i = 0; i < count; ++i) {
      int label = rng.Uniform() < pos_prob ? 1 : 0;
      int pos_count = 0;
      int neg_count = 0;
      std::vector<int> tokens(options.seq_len);
      for (int t = 0; t < options.seq_len; ++t) {
        double draw = rng.Uniform();
        int lexicon;
        if (draw < 0.45) {
          lexicon = label == 1 ? 0 : 1;  // dominant polarity
        } else if (draw < 0.6) {
          lexicon = label == 1 ? 1 : 0;  // minority polarity
        } else {
          lexicon = 2;  // neutral
        }
        int token = sample_token(
            lexicon, lexicon == 0 ? pos_pref
                                  : (lexicon == 1 ? neg_pref
                                                  : std::vector<int>{}));
        tokens[t] = token;
        if (token < third) ++pos_count;
        else if (token < 2 * third) ++neg_count;
      }
      // Guarantee the label matches the dominant polarity: force one token.
      if (label == 1 && pos_count <= neg_count) {
        tokens[0] = sample_token(0, pos_pref);
      } else if (label == 0 && neg_count <= pos_count) {
        tokens[0] = sample_token(1, neg_pref);
      }
      for (int t = 0; t < options.seq_len; ++t) {
        features.push_back(static_cast<float>(tokens[t]));
      }
      labels.push_back(label);
    }
  };

  FederatedDataset federated;
  federated.num_classes = 2;

  for (int c = 0; c < options.num_clients; ++c) {
    // Polarity mix skewed by a symmetric Beta-like draw.
    double u = rng.Gamma(options.polarity_skew);
    double v = rng.Gamma(options.polarity_skew);
    double pos_prob = u / (u + v);
    std::vector<int> pos_pref = rng.SampleWithoutReplacement(third, third / 3);
    std::vector<int> neg_pref = rng.SampleWithoutReplacement(third, third / 3);
    for (int& token : neg_pref) token += third;
    int count = VariedCount(options.mean_samples_per_client, rng);

    std::vector<float> features;
    std::vector<int> labels;
    generate_client(pos_prob, pos_pref, neg_pref, count, features, labels);
    federated.client_train.push_back(std::make_shared<InMemoryDataset>(
        Tensor::Shape{options.seq_len}, std::move(features), std::move(labels),
        /*num_classes=*/2));
  }

  // Balanced, style-free global test set.
  std::vector<float> features;
  std::vector<int> labels;
  generate_client(/*pos_prob=*/0.5, /*pos_pref=*/{}, /*neg_pref=*/{},
                  options.test_samples, features, labels);
  federated.test = std::make_shared<InMemoryDataset>(
      Tensor::Shape{options.seq_len}, std::move(features), std::move(labels),
      /*num_classes=*/2);
  return federated;
}

}  // namespace fedcross::data
