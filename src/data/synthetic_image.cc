#include "data/synthetic_image.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace fedcross::data {
namespace {

// Box-blurs a [channels, height, width] field in place (radius 1), giving
// prototypes local spatial correlation.
void SmoothField(std::vector<float>& field, int channels, int height,
                 int width) {
  std::vector<float> smoothed(field.size());
  for (int c = 0; c < channels; ++c) {
    const float* in = field.data() + static_cast<std::int64_t>(c) * height * width;
    float* out =
        smoothed.data() + static_cast<std::int64_t>(c) * height * width;
    for (int h = 0; h < height; ++h) {
      for (int w = 0; w < width; ++w) {
        double acc = 0.0;
        int count = 0;
        for (int dh = -1; dh <= 1; ++dh) {
          for (int dw = -1; dw <= 1; ++dw) {
            int hh = h + dh;
            int ww = w + dw;
            if (hh < 0 || hh >= height || ww < 0 || ww >= width) continue;
            acc += in[hh * width + ww];
            ++count;
          }
        }
        out[h * width + w] = static_cast<float>(acc / count);
      }
    }
  }
  field = std::move(smoothed);
}

// Per-class smoothed prototypes, unit-ish scale.
std::vector<std::vector<float>> MakePrototypes(int num_classes, int channels,
                                               int height, int width,
                                               fedcross::util::Rng& rng) {
  std::vector<std::vector<float>> prototypes(num_classes);
  std::int64_t numel = static_cast<std::int64_t>(channels) * height * width;
  for (int k = 0; k < num_classes; ++k) {
    std::vector<float> field(numel);
    for (float& value : field) value = static_cast<float>(rng.Normal(0.0, 1.5));
    SmoothField(field, channels, height, width);
    prototypes[k] = std::move(field);
  }
  return prototypes;
}

// Writes prototype `proto` shifted by (dh, dw) with gain/bias and noise
// into `out`.
void RenderSample(const std::vector<float>& proto, int channels, int height,
                  int width, int dh, int dw, float gain, float bias,
                  float noise_stddev, fedcross::util::Rng& rng, float* out) {
  for (int c = 0; c < channels; ++c) {
    const float* plane =
        proto.data() + static_cast<std::int64_t>(c) * height * width;
    float* out_plane = out + static_cast<std::int64_t>(c) * height * width;
    for (int h = 0; h < height; ++h) {
      for (int w = 0; w < width; ++w) {
        int sh = h + dh;
        int sw = w + dw;
        float base = (sh >= 0 && sh < height && sw >= 0 && sw < width)
                         ? plane[sh * width + sw]
                         : 0.0f;
        out_plane[h * width + w] =
            gain * base + bias +
            static_cast<float>(rng.Normal(0.0, noise_stddev));
      }
    }
  }
}

}  // namespace

ImageCorpus MakeSyntheticImageCorpus(const SyntheticImageOptions& options) {
  FC_CHECK_GT(options.num_classes, 0);
  util::Rng rng(options.seed);
  auto prototypes = MakePrototypes(options.num_classes, options.channels,
                                   options.height, options.width, rng);
  std::int64_t numel =
      static_cast<std::int64_t>(options.channels) * options.height * options.width;

  auto make_split = [&](int per_class) {
    int total = per_class * options.num_classes;
    std::vector<float> features(static_cast<std::size_t>(total) * numel);
    std::vector<int> labels(total);
    int index = 0;
    for (int k = 0; k < options.num_classes; ++k) {
      for (int i = 0; i < per_class; ++i) {
        int dh = options.max_shift == 0
                     ? 0
                     : static_cast<int>(rng.UniformInt(2 * options.max_shift + 1)) -
                           options.max_shift;
        int dw = options.max_shift == 0
                     ? 0
                     : static_cast<int>(rng.UniformInt(2 * options.max_shift + 1)) -
                           options.max_shift;
        float gain = 1.0f + static_cast<float>(rng.Normal(0.0, 0.1));
        RenderSample(prototypes[k], options.channels, options.height,
                     options.width, dh, dw, gain, /*bias=*/0.0f,
                     options.noise_stddev, rng,
                     features.data() + static_cast<std::int64_t>(index) * numel);
        labels[index] = k;
        ++index;
      }
    }
    return std::make_shared<InMemoryDataset>(
        Tensor::Shape{options.channels, options.height, options.width},
        std::move(features), std::move(labels), options.num_classes);
  };

  ImageCorpus corpus;
  corpus.train = make_split(options.train_per_class);
  corpus.test = make_split(options.test_per_class);
  return corpus;
}

FederatedDataset MakeSyntheticFemnist(const SyntheticFemnistOptions& options) {
  FC_CHECK_GT(options.num_writers, 0);
  FC_CHECK_LE(options.classes_per_writer, options.num_classes);
  util::Rng rng(options.seed);
  auto prototypes = MakePrototypes(options.num_classes, /*channels=*/1,
                                   options.height, options.width, rng);
  std::int64_t numel =
      static_cast<std::int64_t>(options.height) * options.width;

  FederatedDataset federated;
  federated.num_classes = options.num_classes;

  for (int writer = 0; writer < options.num_writers; ++writer) {
    // Writer style: gain/bias plus its own class subset and sample count.
    float gain = 1.0f + static_cast<float>(rng.Normal(0.0, 0.25));
    float bias = static_cast<float>(rng.Normal(0.0, 0.15));
    std::vector<int> writer_classes =
        rng.SampleWithoutReplacement(options.num_classes,
                                     options.classes_per_writer);
    // Lognormal sample count around the configured mean.
    double log_mean = std::log(options.mean_samples_per_writer) - 0.125;
    int samples =
        std::max(10, static_cast<int>(std::exp(rng.Normal(log_mean, 0.5))));

    std::vector<float> features(static_cast<std::size_t>(samples) * numel);
    std::vector<int> labels(samples);
    for (int i = 0; i < samples; ++i) {
      int label = writer_classes[rng.UniformInt(writer_classes.size())];
      int dh = static_cast<int>(rng.UniformInt(3)) - 1;
      int dw = static_cast<int>(rng.UniformInt(3)) - 1;
      RenderSample(prototypes[label], /*channels=*/1, options.height,
                   options.width, dh, dw, gain, bias, options.noise_stddev,
                   rng, features.data() + static_cast<std::int64_t>(i) * numel);
      labels[i] = label;
    }
    federated.client_train.push_back(std::make_shared<InMemoryDataset>(
        Tensor::Shape{1, options.height, options.width}, std::move(features),
        std::move(labels), options.num_classes));
  }

  // Global neutral-style test set across all classes.
  int test_total = options.test_per_class * options.num_classes;
  std::vector<float> features(static_cast<std::size_t>(test_total) * numel);
  std::vector<int> labels(test_total);
  int index = 0;
  for (int k = 0; k < options.num_classes; ++k) {
    for (int i = 0; i < options.test_per_class; ++i) {
      RenderSample(prototypes[k], /*channels=*/1, options.height,
                   options.width, /*dh=*/0, /*dw=*/0, /*gain=*/1.0f,
                   /*bias=*/0.0f, options.noise_stddev, rng,
                   features.data() + static_cast<std::int64_t>(index) * numel);
      labels[index] = k;
      ++index;
    }
  }
  federated.test = std::make_shared<InMemoryDataset>(
      Tensor::Shape{1, options.height, options.width}, std::move(features),
      std::move(labels), options.num_classes);
  return federated;
}

FederatedDataset MakeVirtualImageFederation(const VirtualImageOptions& options) {
  FC_CHECK_GT(options.num_clients, 0);
  FC_CHECK_GT(options.min_samples, 0);
  FC_CHECK_GE(options.max_samples, options.min_samples);
  FC_CHECK_GT(options.label_concentration, 0.0);
  const SyntheticImageOptions& image = options.image;
  FC_CHECK_GT(image.num_classes, 0);

  util::Rng rng(image.seed);
  // Prototypes are the only state shared by every client; they are built
  // once and captured by the shard factory. ~num_classes * C * H * W floats,
  // independent of the client count.
  auto prototypes = std::make_shared<std::vector<std::vector<float>>>(
      MakePrototypes(image.num_classes, image.channels, image.height,
                     image.width, rng));
  std::int64_t numel =
      static_cast<std::int64_t>(image.channels) * image.height * image.width;

  FederatedDataset federated;
  federated.num_classes = image.num_classes;
  federated.virtual_clients = options.num_clients;

  // Global neutral-style test set, rendered from the same prototypes with
  // the corpus rng so it is fixed regardless of the client count.
  {
    int test_total = image.test_per_class * image.num_classes;
    std::vector<float> features(static_cast<std::size_t>(test_total) * numel);
    std::vector<int> labels(test_total);
    int index = 0;
    for (int k = 0; k < image.num_classes; ++k) {
      for (int i = 0; i < image.test_per_class; ++i) {
        RenderSample((*prototypes)[k], image.channels, image.height,
                     image.width, /*dh=*/0, /*dw=*/0, /*gain=*/1.0f,
                     /*bias=*/0.0f, image.noise_stddev, rng,
                     features.data() +
                         static_cast<std::int64_t>(index) * numel);
        labels[index] = k;
        ++index;
      }
    }
    federated.test = std::make_shared<InMemoryDataset>(
        Tensor::Shape{image.channels, image.height, image.width},
        std::move(features), std::move(labels), image.num_classes);
  }

  // The shard factory is pure in the client id: every draw comes from a
  // per-client generator seeded with mix(seed, id), so materialising a shard
  // twice (or in a different round order) yields bit-identical data.
  federated.make_shard = [prototypes, options,
                          numel](std::int64_t id) -> std::shared_ptr<Dataset> {
    const SyntheticImageOptions& img = options.image;
    std::uint64_t mixed = img.seed ^
                          (static_cast<std::uint64_t>(id) + 1) *
                              0x9e3779b97f4a7c15ULL;
    util::Rng client_rng(mixed);
    int span = options.max_samples - options.min_samples + 1;
    int samples = options.min_samples +
                  static_cast<int>(client_rng.UniformInt(span));
    std::vector<double> mix =
        client_rng.Dirichlet(options.label_concentration, img.num_classes);
    std::vector<float> features(static_cast<std::size_t>(samples) * numel);
    std::vector<int> labels(samples);
    for (int i = 0; i < samples; ++i) {
      int label = client_rng.Categorical(mix);
      int dh = img.max_shift == 0
                   ? 0
                   : static_cast<int>(
                         client_rng.UniformInt(2 * img.max_shift + 1)) -
                         img.max_shift;
      int dw = img.max_shift == 0
                   ? 0
                   : static_cast<int>(
                         client_rng.UniformInt(2 * img.max_shift + 1)) -
                         img.max_shift;
      float gain = 1.0f + static_cast<float>(client_rng.Normal(0.0, 0.1));
      RenderSample((*prototypes)[label], img.channels, img.height, img.width,
                   dh, dw, gain, /*bias=*/0.0f, img.noise_stddev, client_rng,
                   features.data() + static_cast<std::int64_t>(i) * numel);
      labels[i] = label;
    }
    return std::make_shared<InMemoryDataset>(
        Tensor::Shape{img.channels, img.height, img.width},
        std::move(features), std::move(labels), img.num_classes);
  };
  return federated;
}

}  // namespace fedcross::data
