#ifndef FEDCROSS_DATA_SYNTHETIC_IMAGE_H_
#define FEDCROSS_DATA_SYNTHETIC_IMAGE_H_

#include <cstdint>
#include <memory>

#include "data/dataset.h"

namespace fedcross::data {

// Synthetic stand-in for CIFAR-10 / CIFAR-100 (see DESIGN.md §1): each
// class has a smoothed random prototype image; examples are the prototype
// plus a random per-sample gain, pixel translation, and Gaussian noise.
// The noise level controls task difficulty; spatial smoothing gives conv
// layers real spatial structure to exploit.
struct SyntheticImageOptions {
  int num_classes = 10;
  int channels = 3;
  int height = 16;
  int width = 16;
  int train_per_class = 100;
  int test_per_class = 20;
  float noise_stddev = 0.8f;   // within-class noise
  int max_shift = 1;           // random translation in pixels
  std::uint64_t seed = 1;
};

struct ImageCorpus {
  std::shared_ptr<InMemoryDataset> train;
  std::shared_ptr<InMemoryDataset> test;
};

// Builds matched train/test sets drawn from the same class prototypes.
ImageCorpus MakeSyntheticImageCorpus(const SyntheticImageOptions& options);

// Synthetic stand-in for FEMNIST (LEAF): 62-class single-channel images
// with a *natural* writer partition — every writer (client) draws from its
// own class subset, has a lognormal sample count, and applies a writer
// style (gain/bias/stroke noise). Returns per-client shards plus a global
// test set covering all classes.
struct SyntheticFemnistOptions {
  int num_writers = 30;
  int num_classes = 62;
  int height = 14;
  int width = 14;
  int classes_per_writer = 15;
  double mean_samples_per_writer = 120.0;  // lognormal mean
  int test_per_class = 6;
  float noise_stddev = 0.7f;
  std::uint64_t seed = 1;
};

FederatedDataset MakeSyntheticFemnist(const SyntheticFemnistOptions& options);

// A virtual federation over the synthetic image task: registering a client
// stores nothing — each client's shard is rendered on demand from the shared
// class prototypes by a pure per-client generator seeded with
// mix(image.seed, client id). Registration is O(1) in num_clients, so this
// scales to millions of clients; only sampled clients ever materialise.
// Clients are non-IID: each draws its label mix from
// Dirichlet(label_concentration) and its shard size uniformly from
// [min_samples, max_samples].
struct VirtualImageOptions {
  SyntheticImageOptions image;  // prototypes and the global test set
  std::int64_t num_clients = 1000;
  int min_samples = 20;
  int max_samples = 60;
  double label_concentration = 0.5;
};

FederatedDataset MakeVirtualImageFederation(const VirtualImageOptions& options);

}  // namespace fedcross::data

#endif  // FEDCROSS_DATA_SYNTHETIC_IMAGE_H_
