#ifndef FEDCROSS_DATA_DATASET_H_
#define FEDCROSS_DATA_DATASET_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace fedcross::data {

// A labelled supervised dataset. Features of one example have a fixed shape
// (e.g. {3, 16, 16} for images, {seq_len} for token sequences); GetBatch
// stacks them into [batch, ...shape].
class Dataset {
 public:
  virtual ~Dataset() = default;

  virtual int size() const = 0;
  virtual int num_classes() const = 0;
  virtual Tensor::Shape example_shape() const = 0;

  // Fills `features` ([indices.size(), ...example_shape]) and `labels`.
  virtual void GetBatch(const std::vector<int>& indices, Tensor& features,
                        std::vector<int>& labels) const = 0;

  virtual int LabelOf(int index) const = 0;

  // Label histogram (size num_classes); used by partition statistics and
  // FedGen's label-count aggregation.
  std::vector<int> LabelCounts() const;
};

// Dataset materialised in memory: one contiguous feature buffer plus labels.
class InMemoryDataset : public Dataset {
 public:
  // features.size() must equal size * prod(example_shape).
  InMemoryDataset(Tensor::Shape example_shape, std::vector<float> features,
                  std::vector<int> labels, int num_classes);

  int size() const override { return static_cast<int>(labels_.size()); }
  int num_classes() const override { return num_classes_; }
  Tensor::Shape example_shape() const override { return example_shape_; }
  void GetBatch(const std::vector<int>& indices, Tensor& features,
                std::vector<int>& labels) const override;
  int LabelOf(int index) const override;

 private:
  Tensor::Shape example_shape_;
  std::int64_t example_numel_;
  std::vector<float> features_;
  std::vector<int> labels_;
  int num_classes_;
};

// Non-owning view of a subset of another dataset (a client's shard).
class SubsetDataset : public Dataset {
 public:
  SubsetDataset(std::shared_ptr<const Dataset> base, std::vector<int> indices);

  int size() const override { return static_cast<int>(indices_.size()); }
  int num_classes() const override { return base_->num_classes(); }
  Tensor::Shape example_shape() const override {
    return base_->example_shape();
  }
  void GetBatch(const std::vector<int>& indices, Tensor& features,
                std::vector<int>& labels) const override;
  int LabelOf(int index) const override;

 private:
  std::shared_ptr<const Dataset> base_;
  std::vector<int> indices_;
};

// Builds one client's training shard on demand. Must be pure in the client
// id: calling it twice for the same id yields bit-identical data, so a
// shard can be dropped after a round and rebuilt later without changing the
// simulation.
using ShardFactory = std::function<std::shared_ptr<Dataset>(std::int64_t)>;

// A complete federated learning corpus: one training shard per client plus
// a held-out global test set. Two representations:
//   - resident: client_train holds every shard in memory (the historical
//     form, produced by the partitioners);
//   - virtual: make_shard is set and the federation registers
//     virtual_clients ids whose shards are materialised lazily, so
//     registering a million clients costs nothing until they are sampled.
struct FederatedDataset {
  std::vector<std::shared_ptr<Dataset>> client_train;
  std::shared_ptr<Dataset> test;
  int num_classes = 0;

  std::int64_t virtual_clients = 0;
  ShardFactory make_shard;

  std::int64_t num_clients() const {
    return make_shard ? virtual_clients
                      : static_cast<std::int64_t>(client_train.size());
  }
};

// Converts a virtual federation into its resident twin by materialising
// every shard into client_train (bit-identical data, since shard factories
// are pure). Used by tests and small-N runs that want the resident path.
void MaterializeVirtualClients(FederatedDataset& federated);

}  // namespace fedcross::data

#endif  // FEDCROSS_DATA_DATASET_H_
