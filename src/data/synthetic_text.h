#ifndef FEDCROSS_DATA_SYNTHETIC_TEXT_H_
#define FEDCROSS_DATA_SYNTHETIC_TEXT_H_

#include <cstdint>

#include "data/dataset.h"

namespace fedcross::data {

// Synthetic stand-in for LEAF Shakespeare (see DESIGN.md §1): next-character
// prediction over Markov-chain character streams. Each client is a "role"
// whose transition matrix is a perturbation of a shared base chain, so the
// task is naturally non-IID while remaining globally learnable.
// Examples: features = [seq_len] token ids, label = next token;
// num_classes = vocab_size.
struct SyntheticCharLmOptions {
  int num_clients = 16;
  int vocab_size = 32;
  int seq_len = 16;
  int mean_samples_per_client = 120;
  int test_samples = 400;
  double role_perturbation = 1.2;  // strength of per-role chain skew
  std::uint64_t seed = 1;
};

FederatedDataset MakeSyntheticCharLm(const SyntheticCharLmOptions& options);

// Synthetic stand-in for Sent140: binary sentiment over token sequences.
// Tokens split into positive / negative / neutral lexicons; a sequence's
// label is the dominant polarity among its non-neutral tokens. Clients have
// skewed polarity mixes and preferred vocabulary subsets (user style).
struct SyntheticSentimentOptions {
  int num_clients = 24;
  int vocab_size = 120;
  int seq_len = 12;
  int mean_samples_per_client = 100;
  int test_samples = 400;
  double polarity_skew = 0.8;  // Beta-like skew of per-client pos/neg mix
  std::uint64_t seed = 1;
};

FederatedDataset MakeSyntheticSentiment(const SyntheticSentimentOptions& options);

}  // namespace fedcross::data

#endif  // FEDCROSS_DATA_SYNTHETIC_TEXT_H_
