#include "data/dataloader.h"

#include <numeric>

namespace fedcross::data {

DataLoader::DataLoader(const Dataset& dataset, int batch_size, util::Rng& rng,
                       bool drop_last)
    : dataset_(dataset),
      batch_size_(batch_size),
      rng_(rng),
      drop_last_(drop_last),
      order_(dataset.size()) {
  FC_CHECK_GT(batch_size, 0);
  FC_CHECK_GT(dataset.size(), 0);
  std::iota(order_.begin(), order_.end(), 0);
  rng_.Shuffle(order_);
}

bool DataLoader::NextBatch(Tensor& features, std::vector<int>& labels) {
  if (cursor_ >= order_.size()) return false;
  std::size_t end = std::min(cursor_ + batch_size_, order_.size());
  if (drop_last_ && end - cursor_ < static_cast<std::size_t>(batch_size_) &&
      cursor_ != 0) {
    return false;
  }
  batch_indices_.assign(order_.begin() + cursor_, order_.begin() + end);
  cursor_ = end;
  dataset_.GetBatch(batch_indices_, features, labels);
  return true;
}

void DataLoader::Reset() {
  cursor_ = 0;
  rng_.Shuffle(order_);
}

int DataLoader::batches_per_epoch() const {
  int full = dataset_.size() / batch_size_;
  int remainder = dataset_.size() % batch_size_;
  if (remainder == 0) return full;
  if (drop_last_ && full > 0) return full;
  return full + 1;
}

}  // namespace fedcross::data
