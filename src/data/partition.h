#ifndef FEDCROSS_DATA_PARTITION_H_
#define FEDCROSS_DATA_PARTITION_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace fedcross::data {

// Client index assignments over a base dataset.
using Partition = std::vector<std::vector<int>>;

// Shuffles the base dataset and deals examples round-robin: every client
// gets (approximately) the same size and label mix.
Partition IidPartition(const Dataset& base, int num_clients, util::Rng& rng);

// Label-skew partition via Dir(beta) (Hsu et al., 2019), the paper's non-IID
// generator: for each class, a Dirichlet draw over clients decides what
// fraction of that class each client receives. Smaller beta = more skew.
// Re-draws until every client has at least `min_size` samples (guarding
// against empty shards at extreme beta), up to 100 attempts.
Partition DirichletPartition(const Dataset& base, int num_clients, double beta,
                             util::Rng& rng, int min_size = 2);

// Wraps partition index lists as per-client SubsetDataset shards.
std::vector<std::shared_ptr<Dataset>> MakeClientShards(
    std::shared_ptr<const Dataset> base, const Partition& partition);

// Per-client per-class sample counts — the data behind the paper's Fig. 3
// bubble plot.
std::vector<std::vector<int>> PartitionLabelCounts(const Dataset& base,
                                                   const Partition& partition);

}  // namespace fedcross::data

#endif  // FEDCROSS_DATA_PARTITION_H_
