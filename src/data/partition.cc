#include "data/partition.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace fedcross::data {

Partition IidPartition(const Dataset& base, int num_clients, util::Rng& rng) {
  FC_CHECK_GT(num_clients, 0);
  std::vector<int> order(base.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  Partition partition(num_clients);
  for (std::size_t i = 0; i < order.size(); ++i) {
    partition[i % num_clients].push_back(order[i]);
  }
  return partition;
}

Partition DirichletPartition(const Dataset& base, int num_clients, double beta,
                             util::Rng& rng, int min_size) {
  FC_CHECK_GT(num_clients, 0);
  FC_CHECK_GT(beta, 0.0);

  // Group example indices by class.
  std::vector<std::vector<int>> by_class(base.num_classes());
  for (int i = 0; i < base.size(); ++i) by_class[base.LabelOf(i)].push_back(i);

  Partition partition;
  for (int attempt = 0; attempt < 20; ++attempt) {
    partition.assign(num_clients, {});
    for (auto& class_indices : by_class) {
      if (class_indices.empty()) continue;
      std::vector<int> shuffled = class_indices;
      rng.Shuffle(shuffled);
      std::vector<double> proportions = rng.Dirichlet(beta, num_clients);
      // Convert proportions to contiguous slice boundaries.
      std::size_t start = 0;
      double cumulative = 0.0;
      for (int c = 0; c < num_clients; ++c) {
        cumulative += proportions[c];
        std::size_t end =
            c == num_clients - 1
                ? shuffled.size()
                : static_cast<std::size_t>(cumulative * shuffled.size());
        end = std::min(end, shuffled.size());
        for (std::size_t i = start; i < end; ++i) {
          partition[c].push_back(shuffled[i]);
        }
        start = end;
      }
    }
    int smallest = base.size();
    for (const auto& shard : partition) {
      smallest = std::min(smallest, static_cast<int>(shard.size()));
    }
    if (smallest >= min_size) return partition;
  }
  // At extreme skew some client is empty in every draw (expected for small
  // beta and many clients). Keep the skewed draw and rebalance: move
  // samples from the largest shards into undersized ones. This preserves
  // the heterogeneity instead of collapsing to IID.
  FC_LOG(Debug) << "DirichletPartition: rebalancing undersized shards "
                << "(min_size=" << min_size << ")";
  for (int c = 0; c < num_clients; ++c) {
    while (static_cast<int>(partition[c].size()) < min_size) {
      int largest = 0;
      for (int d = 1; d < num_clients; ++d) {
        if (partition[d].size() > partition[largest].size()) largest = d;
      }
      FC_CHECK_GT(partition[largest].size(), static_cast<std::size_t>(1));
      partition[c].push_back(partition[largest].back());
      partition[largest].pop_back();
    }
  }
  return partition;
}

std::vector<std::shared_ptr<Dataset>> MakeClientShards(
    std::shared_ptr<const Dataset> base, const Partition& partition) {
  std::vector<std::shared_ptr<Dataset>> shards;
  shards.reserve(partition.size());
  for (const auto& indices : partition) {
    shards.push_back(std::make_shared<SubsetDataset>(base, indices));
  }
  return shards;
}

std::vector<std::vector<int>> PartitionLabelCounts(
    const Dataset& base, const Partition& partition) {
  std::vector<std::vector<int>> counts;
  counts.reserve(partition.size());
  for (const auto& indices : partition) {
    std::vector<int> client_counts(base.num_classes(), 0);
    for (int index : indices) ++client_counts[base.LabelOf(index)];
    counts.push_back(std::move(client_counts));
  }
  return counts;
}

}  // namespace fedcross::data
