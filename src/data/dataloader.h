#ifndef FEDCROSS_DATA_DATALOADER_H_
#define FEDCROSS_DATA_DATALOADER_H_

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace fedcross::data {

// Iterates a dataset in shuffled mini-batches. One pass:
//
//   DataLoader loader(dataset, 50, rng);
//   Tensor features; std::vector<int> labels;
//   while (loader.NextBatch(features, labels)) { ... }
//   loader.Reset();  // reshuffles for the next epoch
//
// The final batch of an epoch may be smaller than batch_size. A dataset
// smaller than one batch yields a single short batch.
class DataLoader {
 public:
  // `rng` must outlive the loader. drop_last drops a trailing short batch
  // (except when it is the only batch of the epoch).
  DataLoader(const Dataset& dataset, int batch_size, util::Rng& rng,
             bool drop_last = false);

  // Fills the next batch; returns false at epoch end.
  bool NextBatch(Tensor& features, std::vector<int>& labels);

  // Starts a new (reshuffled) epoch.
  void Reset();

  int batches_per_epoch() const;

 private:
  const Dataset& dataset_;
  int batch_size_;
  util::Rng& rng_;
  bool drop_last_;
  std::vector<int> order_;
  std::vector<int> batch_indices_;  // reused batch slice of order_
  std::size_t cursor_ = 0;
};

}  // namespace fedcross::data

#endif  // FEDCROSS_DATA_DATALOADER_H_
