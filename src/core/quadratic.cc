#include "core/quadratic.h"

#include <cmath>

#include "util/check.h"

namespace fedcross::core {

QuadraticProblem QuadraticProblem::Make(int dim, int num_clients, double mu,
                                        double l, double heterogeneity,
                                        std::uint64_t seed) {
  FC_CHECK_GT(dim, 0);
  FC_CHECK_GT(num_clients, 0);
  FC_CHECK_GT(mu, 0.0);
  FC_CHECK_GE(l, mu);
  util::Rng rng(seed);

  QuadraticProblem problem;
  problem.dim_ = dim;
  problem.num_clients_ = num_clients;
  problem.curvature_.assign(num_clients, std::vector<double>(dim));
  problem.center_.assign(num_clients, std::vector<double>(dim));
  for (int i = 0; i < num_clients; ++i) {
    for (int d = 0; d < dim; ++d) {
      problem.curvature_[i][d] = rng.Uniform(mu, l);
      problem.center_[i][d] = heterogeneity * rng.Normal();
    }
  }
  return problem;
}

double QuadraticProblem::ClientLoss(int client,
                                    const std::vector<double>& w) const {
  FC_CHECK_GE(client, 0);
  FC_CHECK_LT(client, num_clients_);
  FC_CHECK_EQ(static_cast<int>(w.size()), dim_);
  double loss = 0.0;
  for (int d = 0; d < dim_; ++d) {
    double diff = w[d] - center_[client][d];
    loss += 0.5 * curvature_[client][d] * diff * diff;
  }
  return loss;
}

std::vector<double> QuadraticProblem::ClientStochasticGrad(
    int client, const std::vector<double>& w, double noise,
    util::Rng& rng) const {
  FC_CHECK_GE(client, 0);
  FC_CHECK_LT(client, num_clients_);
  std::vector<double> grad(dim_);
  for (int d = 0; d < dim_; ++d) {
    grad[d] = curvature_[client][d] * (w[d] - center_[client][d]) +
              (noise > 0.0 ? rng.Normal(0.0, noise) : 0.0);
  }
  return grad;
}

double QuadraticProblem::GlobalLoss(const std::vector<double>& w) const {
  double total = 0.0;
  for (int i = 0; i < num_clients_; ++i) total += ClientLoss(i, w);
  return total / num_clients_;
}

std::vector<double> QuadraticProblem::OptimalPoint() const {
  // Minimiser of (1/N) sum 0.5*a_i (w-b_i)^2: weighted mean per coordinate.
  std::vector<double> w(dim_);
  for (int d = 0; d < dim_; ++d) {
    double numerator = 0.0;
    double denominator = 0.0;
    for (int i = 0; i < num_clients_; ++i) {
      numerator += curvature_[i][d] * center_[i][d];
      denominator += curvature_[i][d];
    }
    w[d] = numerator / denominator;
  }
  return w;
}

double QuadraticProblem::OptimalLoss() const {
  return GlobalLoss(OptimalPoint());
}

std::vector<double> RunQuadraticSimulation(const QuadraticProblem& problem,
                                           const QuadraticSimOptions& options,
                                           int rounds) {
  FC_CHECK_GT(rounds, 0);
  FC_CHECK_GT(options.local_steps, 0);
  util::Rng rng(options.seed);
  int n = problem.num_clients();
  int dim = problem.dim();

  // Every client hosts one model (full participation, as in the proof).
  std::vector<std::vector<double>> models(n, std::vector<double>(dim, 0.0));
  double f_star = problem.OptimalLoss();

  std::vector<double> gaps;
  gaps.reserve(rounds);
  std::int64_t step = 0;
  for (int round = 0; round < rounds; ++round) {
    // E local SGD steps per client with the Theorem-1 schedule.
    for (int e = 0; e < options.local_steps; ++e) {
      double eta =
          options.eta_c / (static_cast<double>(step) + options.eta_lambda);
      for (int i = 0; i < n; ++i) {
        std::vector<double> grad = problem.ClientStochasticGrad(
            i, models[i], options.grad_noise, rng);
        for (int d = 0; d < dim; ++d) models[i][d] -= eta * grad[d];
      }
      ++step;
    }

    if (options.fedcross) {
      // In-order cross-aggregation: w_i = alpha*v_i + (1-alpha)*v_i'.
      std::vector<std::vector<double>> next(n, std::vector<double>(dim));
      for (int i = 0; i < n; ++i) {
        int co = (i + (round % (n - 1) + 1)) % n;
        for (int d = 0; d < dim; ++d) {
          next[i][d] = options.alpha * models[i][d] +
                       (1.0 - options.alpha) * models[co][d];
        }
      }
      models = std::move(next);
    } else {
      // FedAvg: every model collapses to the mean.
      std::vector<double> mean(dim, 0.0);
      for (const auto& model : models) {
        for (int d = 0; d < dim; ++d) mean[d] += model[d];
      }
      for (int d = 0; d < dim; ++d) mean[d] /= n;
      for (auto& model : models) model = mean;
    }

    // Optimality gap of the deployable (averaged) model.
    std::vector<double> average(dim, 0.0);
    for (const auto& model : models) {
      for (int d = 0; d < dim; ++d) average[d] += model[d];
    }
    for (int d = 0; d < dim; ++d) average[d] /= n;
    gaps.push_back(problem.GlobalLoss(average) - f_star);
  }
  return gaps;
}

}  // namespace fedcross::core
