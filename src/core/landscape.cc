#include "core/landscape.h"

#include <cmath>
#include <memory>
#include <numeric>

#include "fl/evaluator.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace fedcross::core {
namespace {

// Gaussian direction rescaled per parameter tensor so that each tensor's
// slice has the same norm as the corresponding weight slice ("filter
// normalisation" collapsed to tensor granularity).
fl::FlatParams FilterNormalizedDirection(nn::Sequential& model,
                                         const fl::FlatParams& params,
                                         util::Rng& rng) {
  fl::FlatParams direction(params.size());
  for (float& value : direction) value = static_cast<float>(rng.Normal());

  std::size_t offset = 0;
  for (nn::Param* param : model.Params()) {
    std::int64_t count = param->value.numel();
    double weight_norm = 0.0;
    double dir_norm = 0.0;
    for (std::int64_t j = 0; j < count; ++j) {
      weight_norm += static_cast<double>(params[offset + j]) * params[offset + j];
      dir_norm +=
          static_cast<double>(direction[offset + j]) * direction[offset + j];
    }
    weight_norm = std::sqrt(weight_norm);
    dir_norm = std::sqrt(dir_norm);
    float scale =
        dir_norm > 1e-12 ? static_cast<float>(weight_norm / dir_norm) : 0.0f;
    for (std::int64_t j = 0; j < count; ++j) direction[offset + j] *= scale;
    offset += count;
  }
  return direction;
}

void OrthogonalizeAgainst(fl::FlatParams& direction,
                          const fl::FlatParams& reference) {
  double dot = 0.0;
  double ref_norm = 0.0;
  for (std::size_t i = 0; i < direction.size(); ++i) {
    dot += static_cast<double>(direction[i]) * reference[i];
    ref_norm += static_cast<double>(reference[i]) * reference[i];
  }
  if (ref_norm < 1e-12) return;
  float factor = static_cast<float>(dot / ref_norm);
  for (std::size_t i = 0; i < direction.size(); ++i) {
    direction[i] -= factor * reference[i];
  }
}

// The evaluation dataset, optionally truncated to max_examples.
std::shared_ptr<const data::Dataset> EvalSubset(const data::Dataset& dataset,
                                                int max_examples) {
  struct Wrapper : data::Dataset {
    const data::Dataset* base;
    int limit;
    int size() const override { return limit; }
    int num_classes() const override { return base->num_classes(); }
    Tensor::Shape example_shape() const override {
      return base->example_shape();
    }
    void GetBatch(const std::vector<int>& indices, Tensor& features,
                  std::vector<int>& labels) const override {
      base->GetBatch(indices, features, labels);
    }
    int LabelOf(int index) const override { return base->LabelOf(index); }
  };
  auto wrapper = std::make_shared<Wrapper>();
  wrapper->base = &dataset;
  wrapper->limit = max_examples > 0 ? std::min(max_examples, dataset.size())
                                    : dataset.size();
  return wrapper;
}

double LossAt(nn::Sequential& model, const fl::FlatParams& base,
              const fl::FlatParams& d1, const fl::FlatParams& d2, double x,
              double y, const data::Dataset& dataset, int batch_size) {
  fl::FlatParams shifted(base.size());
  float fx = static_cast<float>(x);
  float fy = static_cast<float>(y);
  for (std::size_t i = 0; i < base.size(); ++i) {
    shifted[i] = base[i] + fx * d1[i] + fy * d2[i];
  }
  model.ParamsFromFlat(shifted);
  return fl::EvaluateModel(model, dataset, batch_size).loss;
}

}  // namespace

LandscapeResult ProbeLossLandscape(const models::ModelFactory& factory,
                                   const fl::FlatParams& params,
                                   const data::Dataset& dataset,
                                   const LandscapeOptions& options) {
  FC_CHECK_GE(options.grid, 3);
  FC_CHECK_GT(options.radius, 0.0);

  nn::Sequential model = factory();
  util::Rng rng(options.seed);
  fl::FlatParams d1 = FilterNormalizedDirection(model, params, rng);
  fl::FlatParams d2 = FilterNormalizedDirection(model, params, rng);
  OrthogonalizeAgainst(d2, d1);

  auto subset = EvalSubset(dataset, options.max_examples);

  LandscapeResult result;
  result.grid = options.grid;
  result.radius = options.radius;
  result.loss.assign(options.grid, std::vector<double>(options.grid, 0.0));

  int half = options.grid / 2;
  for (int yi = 0; yi < options.grid; ++yi) {
    double y = options.radius * (yi - half) / half;
    for (int xi = 0; xi < options.grid; ++xi) {
      double x = options.radius * (xi - half) / half;
      result.loss[yi][xi] = LossAt(model, params, d1, d2, x, y, *subset,
                                   options.batch_size);
    }
  }
  result.center_loss = result.loss[half][half];

  double border_total = 0.0;
  int border_count = 0;
  double max_increase = 0.0;
  for (int yi = 0; yi < options.grid; ++yi) {
    for (int xi = 0; xi < options.grid; ++xi) {
      double increase = result.loss[yi][xi] - result.center_loss;
      max_increase = std::max(max_increase, increase);
      bool border = yi == 0 || xi == 0 || yi == options.grid - 1 ||
                    xi == options.grid - 1;
      if (border) {
        border_total += increase;
        ++border_count;
      }
    }
  }
  result.border_sharpness = border_total / border_count;
  result.max_increase = max_increase;
  return result;
}

double DirectionalSharpness(const models::ModelFactory& factory,
                            const fl::FlatParams& params,
                            const data::Dataset& dataset, double radius,
                            int count, std::uint64_t seed, int max_examples) {
  FC_CHECK_GT(count, 0);
  nn::Sequential model = factory();
  util::Rng rng(seed);
  auto subset = EvalSubset(dataset, max_examples);

  model.ParamsFromFlat(params);
  double center = fl::EvaluateModel(model, *subset, /*batch_size=*/100).loss;

  fl::FlatParams zero(params.size(), 0.0f);
  double total = 0.0;
  for (int i = 0; i < count; ++i) {
    fl::FlatParams direction = FilterNormalizedDirection(model, params, rng);
    // Average the +r and -r probes to cancel the linear term.
    double up = LossAt(model, params, direction, zero, radius, 0.0, *subset,
                       /*batch_size=*/100);
    double down = LossAt(model, params, direction, zero, -radius, 0.0,
                         *subset, /*batch_size=*/100);
    total += 0.5 * (up + down) - center;
  }
  return total / count;
}

}  // namespace fedcross::core
