#ifndef FEDCROSS_CORE_FEDCROSS_H_
#define FEDCROSS_CORE_FEDCROSS_H_

#include <string>
#include <vector>

#include "fl/algorithm.h"
#include "util/status.h"

namespace fedcross::core {

// Collaborative-model selection criteria (paper Section III-B1).
enum class SelectionStrategy {
  kInOrder,             // W[(i + (r%(K-1) + 1)) % K]
  kHighestSimilarity,   // argmax cosine similarity (flawed; kept for Table III)
  kLowestSimilarity,    // argmin cosine similarity (recommended)
};

const char* SelectionStrategyName(SelectionStrategy strategy);
util::StatusOr<SelectionStrategy> ParseSelectionStrategy(
    const std::string& name);

// Model-similarity measures for the similarity-based strategies. The paper
// uses cosine similarity and explicitly leaves "other measures (e.g.,
// Euclidean Distance)" as future work — both are implemented here.
enum class SimilarityMeasure {
  kCosine,             // angle between parameter vectors (paper default)
  kNegativeEuclidean,  // -||x - y||; higher = more similar
};

const char* SimilarityMeasureName(SimilarityMeasure measure);
util::StatusOr<SimilarityMeasure> ParseSimilarityMeasure(
    const std::string& name);

// Similarity(x, y) under the chosen measure (higher = more similar).
double ModelSimilarity(const fl::FlatParams& x, const fl::FlatParams& y,
                       SimilarityMeasure measure);

// Hyperparameters of FedCross (Algorithm 1 plus the Section III-D
// acceleration methods).
struct FedCrossOptions {
  // Cross-aggregation weight: w_i = alpha*v_i + (1-alpha)*v_co. The paper
  // requires alpha in [0.5, 1.0) and recommends 0.99.
  double alpha = 0.99;
  SelectionStrategy strategy = SelectionStrategy::kLowestSimilarity;
  SimilarityMeasure similarity = SimilarityMeasure::kCosine;

  // Propeller-model acceleration: for the first propeller_rounds rounds,
  // each middleware model aggregates with propeller_count in-order-selected
  // propeller models (sharing the (1-alpha) mass) instead of one
  // collaborative model. 0 disables.
  int propeller_count = 0;
  int propeller_rounds = 0;

  // Dynamic-alpha acceleration: alpha ramps linearly from
  // dynamic_alpha_start to `alpha` across rounds
  // [dynamic_alpha_begin, dynamic_alpha_begin + dynamic_alpha_rounds).
  // 0 rounds disables (alpha is constant).
  int dynamic_alpha_rounds = 0;
  int dynamic_alpha_begin = 0;
  double dynamic_alpha_start = 0.5;
};

// FedCross (the paper's contribution): multi-to-multi FL training via
// multi-model cross-aggregation. The server maintains K homogeneous
// middleware models; each round they are dispatched to K randomly selected
// clients (with a shuffle so models migrate across clients), trained
// locally, and pairwise fused with a collaborative model chosen by the
// selection strategy. A deployable global model is generated on demand by
// averaging the middleware models (GlobalModelGen) — it never participates
// in training.
class FedCross : public fl::FlAlgorithm {
 public:
  FedCross(fl::AlgorithmConfig config, data::FederatedDataset data,
           models::ModelFactory factory, FedCrossOptions options);

  void RunRound(int round) override;

  // GlobalModelGen: the unweighted average of all middleware models.
  fl::FlatParams GlobalParams() override;

  const FedCrossOptions& options() const { return options_; }
  const std::vector<fl::FlatParams>& middleware() const { return middleware_; }

  // Effective cross-aggregation weight in `round` (dynamic-alpha schedule).
  double AlphaAt(int round) const;

  // CoModelSel: index of the collaborative model for uploaded model i in
  // `round` under the configured strategy. Exposed for tests/ablation.
  int SelectCollaborator(int model_index, int round,
                         const std::vector<fl::FlatParams>& uploaded) const;

  // CrossAggr: alpha*v + (1-alpha)*co.
  static fl::FlatParams CrossAggregate(const fl::FlatParams& model,
                                       const fl::FlatParams& collaborator,
                                       double alpha);

  // Propeller selection: the `count` distinct in-order propeller indices
  // for `model_index` in `round` (never includes model_index itself; capped
  // at k-1). Exposed for the dedup regression test.
  static std::vector<int> SelectPropellerIndices(int model_index, int round,
                                                 int k, int count);

 protected:
  // Checkpoint state: the K middleware models (everything else — selection
  // order, alpha schedule — is a pure function of config and round).
  void SaveExtraState(fl::StateWriter& writer) override;
  util::Status LoadExtraState(fl::StateReader& reader) override;

 private:
  FedCrossOptions options_;
  std::vector<fl::FlatParams> middleware_;  // the dispatched model list W
  // Round-recycled scratch: uploads copied out of the shared results vector
  // (middleware_ must stay intact during collaborator selection) and the
  // next middleware generation, swapped in at the end of the round.
  std::vector<fl::FlatParams> uploaded_;
  std::vector<fl::FlatParams> next_;
  fl::FlatParams propeller_mean_;
};

}  // namespace fedcross::core

#endif  // FEDCROSS_CORE_FEDCROSS_H_
