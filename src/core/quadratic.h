#ifndef FEDCROSS_CORE_QUADRATIC_H_
#define FEDCROSS_CORE_QUADRATIC_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace fedcross::core {

// Synthetic strongly-convex federated optimisation problem matching the
// assumptions of the paper's convergence analysis (Section III-C): each
// client i holds f_i(w) = 0.5 * sum_d a_i[d] * (w[d] - b_i[d])^2 with
// mu <= a_i[d] <= L. Stochastic gradients add bounded Gaussian noise
// (Assumption 3.3). Used by the theory bench and property tests to verify
// Theorem 1's O(1/t) convergence and Lemma 3.4's mean-preservation.
class QuadraticProblem {
 public:
  // heterogeneity scales how far apart the client optima b_i are.
  static QuadraticProblem Make(int dim, int num_clients, double mu, double l,
                               double heterogeneity, std::uint64_t seed);

  int dim() const { return dim_; }
  int num_clients() const { return num_clients_; }

  double ClientLoss(int client, const std::vector<double>& w) const;
  // Exact gradient plus N(0, noise^2) per-coordinate stochastic noise.
  std::vector<double> ClientStochasticGrad(int client,
                                           const std::vector<double>& w,
                                           double noise,
                                           util::Rng& rng) const;

  // F(w) = (1/N) sum_i f_i(w).
  double GlobalLoss(const std::vector<double>& w) const;
  // Closed-form global minimiser (diagonal quadratics).
  std::vector<double> OptimalPoint() const;
  double OptimalLoss() const;

 private:
  int dim_ = 0;
  int num_clients_ = 0;
  std::vector<std::vector<double>> curvature_;  // a_i
  std::vector<std::vector<double>> center_;     // b_i
};

// Simulation of FedAvg / FedCross (in-order selection, full participation)
// on a QuadraticProblem with local SGD, matching the setting of the
// convergence proof: E local steps between aggregations and the Theorem-1
// learning-rate schedule eta_t = eta_c / (t + lambda).
struct QuadraticSimOptions {
  bool fedcross = true;     // false = FedAvg aggregation
  double alpha = 0.7;       // cross-aggregation weight
  int local_steps = 5;      // E
  double grad_noise = 0.05;
  double eta_c = 1.0;       // schedule numerator
  double eta_lambda = 10.0; // schedule shift
  std::uint64_t seed = 3;
};

// Runs `rounds` FL rounds and returns the optimality gap
// F(w_bar_t) - F* after every round (monotone-ish, O(1/t) under the
// schedule). w_bar is the average of the per-client models.
std::vector<double> RunQuadraticSimulation(const QuadraticProblem& problem,
                                           const QuadraticSimOptions& options,
                                           int rounds);

}  // namespace fedcross::core

#endif  // FEDCROSS_CORE_QUADRATIC_H_
