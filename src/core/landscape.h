#ifndef FEDCROSS_CORE_LANDSCAPE_H_
#define FEDCROSS_CORE_LANDSCAPE_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "fl/types.h"
#include "models/model_zoo.h"

namespace fedcross::core {

// 2-D loss-landscape probe with filter normalisation (Li et al., 2018),
// backing the paper's Fig. 4 (FedAvg converges into sharper minima than
// FedCross) and the Fig. 1 motivation.
//
// Two random directions are drawn and rescaled per parameter tensor to
// match that tensor's norm, the second is orthogonalised against the
// first, and the loss F(w + x*d1 + y*d2) is evaluated on a grid of
// (x, y) in [-radius, radius]^2.
struct LandscapeOptions {
  int grid = 9;          // odd, so the centre point is on the grid
  double radius = 0.5;   // in filter-normalised units
  int max_examples = 0;  // cap evaluation cost; 0 = whole dataset
  int batch_size = 100;
  std::uint64_t seed = 7;
};

struct LandscapeResult {
  int grid = 0;
  double radius = 0.0;
  // loss[y][x], row-major; centre = loss[grid/2][grid/2].
  std::vector<std::vector<double>> loss;
  double center_loss = 0.0;

  // Sharpness summaries (larger = sharper minimum):
  // mean loss increase over the grid border relative to the centre...
  double border_sharpness = 0.0;
  // ...and the maximum increase anywhere on the grid.
  double max_increase = 0.0;
};

LandscapeResult ProbeLossLandscape(const models::ModelFactory& factory,
                                   const fl::FlatParams& params,
                                   const data::Dataset& dataset,
                                   const LandscapeOptions& options);

// 1-D sharpness proxy: expected loss increase when perturbing the
// parameters by `count` random filter-normalised directions of the given
// radius. Cheaper than the full grid; used by tests.
double DirectionalSharpness(const models::ModelFactory& factory,
                            const fl::FlatParams& params,
                            const data::Dataset& dataset, double radius,
                            int count, std::uint64_t seed,
                            int max_examples = 0);

}  // namespace fedcross::core

#endif  // FEDCROSS_CORE_LANDSCAPE_H_
