#include "core/fedcross.h"

#include <algorithm>
#include <cmath>

#include "fl/flat_ops.h"
#include "tensor/tensor_ops.h"

namespace fedcross::core {

const char* SelectionStrategyName(SelectionStrategy strategy) {
  switch (strategy) {
    case SelectionStrategy::kInOrder:
      return "in-order";
    case SelectionStrategy::kHighestSimilarity:
      return "highest-similarity";
    case SelectionStrategy::kLowestSimilarity:
      return "lowest-similarity";
  }
  return "unknown";
}

util::StatusOr<SelectionStrategy> ParseSelectionStrategy(
    const std::string& name) {
  if (name == "in-order" || name == "inorder") {
    return SelectionStrategy::kInOrder;
  }
  if (name == "highest-similarity" || name == "highest") {
    return SelectionStrategy::kHighestSimilarity;
  }
  if (name == "lowest-similarity" || name == "lowest") {
    return SelectionStrategy::kLowestSimilarity;
  }
  return util::Status::InvalidArgument("unknown selection strategy: " + name);
}

const char* SimilarityMeasureName(SimilarityMeasure measure) {
  switch (measure) {
    case SimilarityMeasure::kCosine:
      return "cosine";
    case SimilarityMeasure::kNegativeEuclidean:
      return "euclidean";
  }
  return "unknown";
}

util::StatusOr<SimilarityMeasure> ParseSimilarityMeasure(
    const std::string& name) {
  if (name == "cosine") return SimilarityMeasure::kCosine;
  if (name == "euclidean" || name == "negative-euclidean") {
    return SimilarityMeasure::kNegativeEuclidean;
  }
  return util::Status::InvalidArgument("unknown similarity measure: " + name);
}

double ModelSimilarity(const fl::FlatParams& x, const fl::FlatParams& y,
                       SimilarityMeasure measure) {
  FC_CHECK_EQ(x.size(), y.size());
  switch (measure) {
    case SimilarityMeasure::kCosine:
      return ops::CosineSimilarity(x, y);
    case SimilarityMeasure::kNegativeEuclidean: {
      double total = 0.0;
      for (std::size_t i = 0; i < x.size(); ++i) {
        double d = static_cast<double>(x[i]) - y[i];
        total += d * d;
      }
      return -std::sqrt(total);
    }
  }
  FC_CHECK(false) << "unreachable";
  return 0.0;
}

FedCross::FedCross(fl::AlgorithmConfig config, data::FederatedDataset data,
                   models::ModelFactory factory, FedCrossOptions options)
    : FlAlgorithm("FedCross", config, std::move(data), std::move(factory)),
      options_(options) {
  FC_CHECK_GE(options_.alpha, 0.0);
  FC_CHECK_LT(options_.alpha, 1.0);
  FC_CHECK_GE(options_.propeller_count, 0);
  FC_CHECK_GE(options_.dynamic_alpha_rounds, 0);
  FC_CHECK_GT(config.clients_per_round, 1)
      << "FedCross needs at least two middleware models";
  // Initialise the K middleware models from the common factory seed (the
  // paper dispatches homogeneous models; identical initialisation mirrors
  // FedAvg's single starting point).
  middleware_.assign(config.clients_per_round, InitialParams());
}

double FedCross::AlphaAt(int round) const {
  if (options_.dynamic_alpha_rounds <= 0) return options_.alpha;
  if (round < options_.dynamic_alpha_begin) return options_.alpha;
  int progress = round - options_.dynamic_alpha_begin;
  if (progress >= options_.dynamic_alpha_rounds) return options_.alpha;
  double fraction =
      static_cast<double>(progress + 1) / options_.dynamic_alpha_rounds;
  return options_.dynamic_alpha_start +
         (options_.alpha - options_.dynamic_alpha_start) * fraction;
}

int FedCross::SelectCollaborator(
    int model_index, int round,
    const std::vector<fl::FlatParams>& uploaded) const {
  int k = static_cast<int>(uploaded.size());
  FC_CHECK_GT(k, 1);
  switch (options_.strategy) {
    case SelectionStrategy::kInOrder:
      return (model_index + (round % (k - 1) + 1)) % k;
    case SelectionStrategy::kHighestSimilarity:
    case SelectionStrategy::kLowestSimilarity: {
      bool highest = options_.strategy == SelectionStrategy::kHighestSimilarity;
      int best = -1;
      double best_sim = highest ? -1e300 : 1e300;
      for (int j = 0; j < k; ++j) {
        if (j == model_index) continue;
        double sim = ModelSimilarity(uploaded[model_index], uploaded[j],
                                     options_.similarity);
        if ((highest && sim > best_sim) || (!highest && sim < best_sim)) {
          best_sim = sim;
          best = j;
        }
      }
      return best;
    }
  }
  FC_CHECK(false) << "unreachable";
  return -1;
}

fl::FlatParams FedCross::CrossAggregate(const fl::FlatParams& model,
                                        const fl::FlatParams& collaborator,
                                        double alpha) {
  FC_CHECK_EQ(model.size(), collaborator.size());
  fl::FlatParams fused;
  float a = static_cast<float>(alpha);
  fl::flat_ops::LinearCombine(a, model, 1.0f - a, collaborator, fused);
  return fused;
}

std::vector<int> FedCross::SelectPropellerIndices(int model_index, int round,
                                                  int k, int count) {
  FC_CHECK_GT(k, 1);
  FC_CHECK_GE(model_index, 0);
  FC_CHECK_LT(model_index, k);
  count = std::min(count, k - 1);
  // Walk forward from the in-order collaborator, skipping the model itself;
  // each other index is visited at most once per lap, so the selection is
  // duplicate-free by construction.
  std::vector<int> indices;
  indices.reserve(count);
  int j = (model_index + (round % (k - 1) + 1)) % k;
  while (static_cast<int>(indices.size()) < count) {
    if (j != model_index) indices.push_back(j);
    j = (j + 1) % k;
  }
  return indices;
}

void FedCross::RunRound(int round) {
  int k = config().clients_per_round;

  fl::ClientTrainSpec spec;
  spec.options = config().train;
  std::vector<ClientJob> jobs(k);
  {
    PhaseScope phase(*this, RoundPhase::kDispatch);
    // Algorithm 1 lines 4-5: random client selection, then shuffle so each
    // middleware model meets a fresh client (model i trains on L_c[i]).
    std::vector<std::int64_t> selected = SampleClients();
    rng().Shuffle(selected);
    for (int i = 0; i < k; ++i) {
      jobs[i] = {selected[i], &middleware_[i], &spec};
    }
  }

  // Lines 7-10: local training of every middleware model — the K clients
  // are independent, so they fan out across the client-training pool. A
  // dropped client simply never uploads, so the server keeps its dispatched
  // copy of that middleware model (result.params echoes the dispatch).
  const std::vector<fl::LocalTrainResult>& results =
      TrainClients(round, /*salt=*/0, jobs);

  PhaseScope phase(*this, RoundPhase::kAggregate);
  // Copy the uploads out of the shared (recycled) results vector: the
  // similarity-based selection reads all of them while the new generation
  // is built. Copy-assign reuses last round's buffers.
  uploaded_.resize(k);
  if (config().async.mode == fl::RoundMode::kAsync) {
    // Buffered arrivals are keyed by lane (result.slot), not position, and
    // may be missing or stale. A lane without an arrival keeps its current
    // middleware model; a stale arrival is staleness-blended toward it
    // (weight_scale -> 1 recovers the fresh-upload behaviour exactly).
    for (int i = 0; i < k; ++i) uploaded_[i] = middleware_[i];
    for (const fl::LocalTrainResult& result : results) {
      const int lane = result.slot;
      FC_CHECK_GE(lane, 0);
      FC_CHECK_LT(lane, k);
      const double w = result.weight_scale;
      if (w >= 1.0) {
        uploaded_[lane] = result.params;
      } else {
        fl::flat_ops::LinearCombine(static_cast<float>(w), result.params,
                                    static_cast<float>(1.0 - w),
                                    middleware_[lane], uploaded_[lane]);
      }
    }
  } else {
    for (int i = 0; i < k; ++i) uploaded_[i] = results[i].params;
  }

  // Lines 11-15: CoModelSel + CrossAggr.
  double alpha = AlphaAt(round);
  float a = static_cast<float>(alpha);
  bool use_propellers = options_.propeller_count > 0 &&
                        round < options_.propeller_rounds;
  next_.resize(k);
  for (int i = 0; i < k; ++i) {
    if (use_propellers) {
      // Propeller acceleration: average propeller_count distinct in-order-
      // selected models to share the (1 - alpha) mass.
      std::vector<int> propellers =
          SelectPropellerIndices(i, round, k, options_.propeller_count);
      propeller_mean_.assign(uploaded_[i].size(), 0.0f);
      for (int j : propellers) {
        fl::flat_ops::AddInto(propeller_mean_, uploaded_[j]);
      }
      fl::flat_ops::Scale(propeller_mean_,
                          1.0f / static_cast<float>(propellers.size()));
      fl::flat_ops::LinearCombine(a, uploaded_[i], 1.0f - a, propeller_mean_,
                                  next_[i]);
    } else {
      int co = SelectCollaborator(i, round, uploaded_);
      fl::flat_ops::LinearCombine(a, uploaded_[i], 1.0f - a, uploaded_[co],
                                  next_[i]);
    }
  }
  // Swap, don't move-assign: middleware_'s buffers become next round's
  // next_ scratch, so the pair recycles indefinitely.
  middleware_.swap(next_);
}

fl::FlatParams FedCross::GlobalParams() { return Average(middleware_); }

void FedCross::SaveExtraState(fl::StateWriter& writer) {
  writer.WriteU64(middleware_.size());
  for (const fl::FlatParams& model : middleware_) writer.WriteFloats(model);
}

util::Status FedCross::LoadExtraState(fl::StateReader& reader) {
  std::uint64_t count = 0;
  FC_RETURN_IF_ERROR(reader.ReadU64(count));
  if (count != middleware_.size()) {
    return util::Status::FailedPrecondition(
        "checkpoint has " + std::to_string(count) +
        " middleware models, run has " + std::to_string(middleware_.size()));
  }
  for (fl::FlatParams& model : middleware_) {
    FC_RETURN_IF_ERROR(reader.ReadFloats(model));
    if (model.size() != static_cast<std::size_t>(model_size())) {
      return util::Status::FailedPrecondition(
          "checkpointed middleware model has " + std::to_string(model.size()) +
          " params, model expects " + std::to_string(model_size()));
    }
  }
  return util::Status::Ok();
}

}  // namespace fedcross::core
