#ifndef FEDCROSS_NN_LSTM_H_
#define FEDCROSS_NN_LSTM_H_

#include <string>
#include <vector>

#include "nn/layer.h"
#include "util/rng.h"

namespace fedcross::nn {

// Single-layer LSTM that consumes a full sequence and emits the final
// hidden state (sequence classification head).
// input:  [batch, time, input_dim]
// output: [batch, hidden_dim]  (h_T)
//
// Gate layout in the fused weight matrices is [i | f | g | o] along the
// 4*hidden axis. Backward is full BPTT from the final hidden state. The
// forget-gate bias is initialised to 1 (standard trick for gradient flow).
class Lstm : public Layer {
 public:
  Lstm(int input_dim, int hidden_dim, util::Rng& rng);

  const Tensor& Forward(const Tensor& input, bool train) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  void CollectParams(std::vector<Param*>& out) override;
  std::string Name() const override { return "Lstm"; }

  int hidden_dim() const { return hidden_dim_; }
  int input_dim() const { return input_dim_; }

  // Plan-executor access to the fused parameter blocks.
  Param& weight_x_param() { return weight_x_; }
  Param& weight_h_param() { return weight_h_; }
  Param& bias_param() { return bias_; }

 private:
  int input_dim_;
  int hidden_dim_;
  Param weight_x_;  // [input_dim, 4*hidden]
  Param weight_h_;  // [hidden, 4*hidden]
  Param bias_;      // [4*hidden]

  // Per-timestep caches from the last Forward. The vectors are resized only
  // when the sequence length changes and each slot tensor keeps its storage
  // across batches, so steady-state BPTT training is allocation-free.
  Tensor cached_input_;          // [batch, time, input_dim]
  std::vector<Tensor> gates_;    // t -> [batch, 4*hidden], post-activation
  std::vector<Tensor> cells_;    // t -> [batch, hidden] (c_t)
  std::vector<Tensor> hiddens_;  // t -> [batch, hidden] (h_t); index 0 = h_{-1}=0

  // Step workspaces shared by Forward and Backward.
  Tensor x_t_;         // gathered [batch, input_dim] timestep slice
  Tensor dx_t_;        // [batch, input_dim]
  Tensor dz_;          // [batch, 4*hidden]
  Tensor dh_;          // [batch, hidden]
  Tensor dh_prev_;     // [batch, hidden]
  Tensor dc_;          // [batch, hidden]
  Tensor grad_input_;  // [batch, time, input_dim]
};

}  // namespace fedcross::nn

#endif  // FEDCROSS_NN_LSTM_H_
