#include "nn/embedding.h"

#include <cmath>
#include <cstring>

namespace fedcross::nn {

Embedding::Embedding(int vocab_size, int embed_dim, util::Rng& rng)
    : vocab_size_(vocab_size),
      embed_dim_(embed_dim),
      table_(Tensor::RandomNormal({vocab_size, embed_dim}, rng, 0.0f,
                                  1.0f / std::sqrt(static_cast<float>(embed_dim)))) {
  FC_CHECK_GT(vocab_size, 0);
  FC_CHECK_GT(embed_dim, 0);
}

const Tensor& Embedding::Forward(const Tensor& input, bool train) {
  (void)train;
  FC_CHECK_EQ(input.ndim(), 2);
  cached_batch_ = input.dim(0);
  cached_time_ = input.dim(1);
  std::int64_t tokens = input.numel();
  cached_ids_.resize(tokens);

  output_.ResizeTo({cached_batch_, cached_time_, embed_dim_});
  const float* ids = input.data();
  const float* table = table_.value.data();
  float* out = output_.data();
  for (std::int64_t i = 0; i < tokens; ++i) {
    int id = static_cast<int>(ids[i]);
    FC_CHECK_GE(id, 0);
    FC_CHECK_LT(id, vocab_size_);
    cached_ids_[i] = id;
    std::memcpy(out + i * embed_dim_,
                table + static_cast<std::int64_t>(id) * embed_dim_,
                embed_dim_ * sizeof(float));
  }
  return output_;
}

const Tensor& Embedding::Backward(const Tensor& grad_output) {
  FC_CHECK_EQ(grad_output.ndim(), 3);
  FC_CHECK_EQ(grad_output.dim(0), cached_batch_);
  FC_CHECK_EQ(grad_output.dim(1), cached_time_);
  FC_CHECK_EQ(grad_output.dim(2), embed_dim_);

  float* table_grad = table_.grad.data();
  const float* grad = grad_output.data();
  for (std::size_t i = 0; i < cached_ids_.size(); ++i) {
    float* row = table_grad +
                 static_cast<std::int64_t>(cached_ids_[i]) * embed_dim_;
    const float* src = grad + static_cast<std::int64_t>(i) * embed_dim_;
    for (int d = 0; d < embed_dim_; ++d) row[d] += src[d];
  }
  return empty_grad_;  // no gradient for discrete token ids
}

void Embedding::CollectParams(std::vector<Param*>& out) {
  out.push_back(&table_);
}

}  // namespace fedcross::nn
