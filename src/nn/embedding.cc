#include "nn/embedding.h"

#include <cmath>

#include "nn/kernels.h"

namespace fedcross::nn {

Embedding::Embedding(int vocab_size, int embed_dim, util::Rng& rng)
    : vocab_size_(vocab_size),
      embed_dim_(embed_dim),
      table_(Tensor::RandomNormal({vocab_size, embed_dim}, rng, 0.0f,
                                  1.0f / std::sqrt(static_cast<float>(embed_dim)))) {
  FC_CHECK_GT(vocab_size, 0);
  FC_CHECK_GT(embed_dim, 0);
}

const Tensor& Embedding::Forward(const Tensor& input, bool train) {
  (void)train;
  FC_CHECK_EQ(input.ndim(), 2);
  cached_batch_ = input.dim(0);
  cached_time_ = input.dim(1);
  std::int64_t tokens = input.numel();
  cached_ids_.resize(tokens);

  output_.ResizeTo({cached_batch_, cached_time_, embed_dim_});
  kernels::EmbeddingGather(input.data(), tokens, vocab_size_,
                           table_.value.data(), embed_dim_,
                           cached_ids_.data(), output_.data());
  return output_;
}

const Tensor& Embedding::Backward(const Tensor& grad_output) {
  FC_CHECK_EQ(grad_output.ndim(), 3);
  FC_CHECK_EQ(grad_output.dim(0), cached_batch_);
  FC_CHECK_EQ(grad_output.dim(1), cached_time_);
  FC_CHECK_EQ(grad_output.dim(2), embed_dim_);

  kernels::EmbeddingScatterAdd(cached_ids_.data(),
                               static_cast<std::int64_t>(cached_ids_.size()),
                               grad_output.data(), embed_dim_,
                               table_.grad.data());
  return empty_grad_;  // no gradient for discrete token ids
}

void Embedding::CollectParams(std::vector<Param*>& out) {
  out.push_back(&table_);
}

}  // namespace fedcross::nn
