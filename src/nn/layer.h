#ifndef FEDCROSS_NN_LAYER_H_
#define FEDCROSS_NN_LAYER_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace fedcross::nn {

// A model parameter: value and accumulated gradient, always the same
// shape. Layers own their Params; optimizers and the FL aggregation code
// access them through Layer::CollectParams pointers.
//
// `trainable == false` marks state that is part of the model but not
// touched by optimizers (e.g. BatchNorm running statistics). Such state
// still participates in the flat parameter vector, so FL aggregation
// transfers and averages it — the standard (if imperfect) treatment of
// BatchNorm statistics in federated learning.
struct Param {
  Tensor value;
  Tensor grad;
  bool trainable = true;

  explicit Param(Tensor initial, bool is_trainable = true)
      : value(std::move(initial)),
        grad(Tensor::Zeros(value.shape())),
        trainable(is_trainable) {}

  void ZeroGrad() { grad.Fill(0.0f); }
};

// Base class for differentiable layers using module-style manual backprop.
//
// Contract:
//  - Forward(input, train) caches whatever Backward needs and returns the
//    layer output. `train` toggles training-only behaviour (dropout).
//  - Backward(grad_output) consumes the cached state from the most recent
//    Forward, accumulates parameter gradients (+=), and returns the
//    gradient w.r.t. the layer input. Calling Backward twice without an
//    intervening Forward is undefined.
//  - Layers process one mini-batch at a time and are not thread-safe; each
//    simulated client owns its own model instance.
class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor Forward(const Tensor& input, bool train) = 0;
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  // Appends pointers to this layer's parameters (stable for the layer's
  // lifetime). Default: no parameters.
  virtual void CollectParams(std::vector<Param*>& out) { (void)out; }

  // Human-readable layer type for debugging / summaries.
  virtual std::string Name() const = 0;
};

}  // namespace fedcross::nn

#endif  // FEDCROSS_NN_LAYER_H_
