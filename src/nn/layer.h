#ifndef FEDCROSS_NN_LAYER_H_
#define FEDCROSS_NN_LAYER_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace fedcross::nn {

// A model parameter: value and accumulated gradient, always the same
// shape. Layers own their Params; optimizers and the FL aggregation code
// access them through Layer::CollectParams pointers.
//
// `trainable == false` marks state that is part of the model but not
// touched by optimizers (e.g. BatchNorm running statistics). Such state
// still participates in the flat parameter vector, so FL aggregation
// transfers and averages it — the standard (if imperfect) treatment of
// BatchNorm statistics in federated learning.
struct Param {
  Tensor value;
  Tensor grad;
  bool trainable = true;

  explicit Param(Tensor initial, bool is_trainable = true)
      : value(std::move(initial)),
        grad(Tensor::Zeros(value.shape())),
        trainable(is_trainable) {}

  void ZeroGrad() { grad.Fill(0.0f); }
};

// Base class for differentiable layers using module-style manual backprop.
//
// Contract:
//  - Forward(input, train) caches whatever Backward needs and returns the
//    layer output. `train` toggles training-only behaviour (dropout).
//  - Backward(grad_output) consumes the cached state from the most recent
//    Forward, accumulates parameter gradients (+=), and returns the
//    gradient w.r.t. the layer input. Calling Backward twice without an
//    intervening Forward is undefined.
//  - Forward/Backward return references to layer-owned output buffers (or,
//    for identity layers, to the argument itself). The reference stays
//    valid until the layer's next Forward/Backward call; callers that need
//    a longer-lived value copy it. Layers reuse these buffers across
//    batches via Tensor::ResizeTo, so steady-state training allocates
//    nothing.
//  - Layers process one mini-batch at a time and are not thread-safe; each
//    simulated client owns its own model instance (fl::ModelPool hands out
//    per-job replicas).
class Layer {
 public:
  virtual ~Layer() = default;

  virtual const Tensor& Forward(const Tensor& input, bool train) = 0;
  virtual const Tensor& Backward(const Tensor& grad_output) = 0;

  // Appends pointers to this layer's parameters (stable for the layer's
  // lifetime). Default: no parameters.
  virtual void CollectParams(std::vector<Param*>& out) { (void)out; }

  // Restores any non-parameter state (e.g. Dropout's mask RNG) to its
  // just-constructed value, so a pooled model replica behaves exactly like
  // a freshly built one after ParamsFromFlat. Cached activations need no
  // reset: every Forward fully overwrites them. Default: nothing to reset.
  virtual void ResetState() {}

  // Human-readable layer type for debugging / summaries.
  virtual std::string Name() const = 0;
};

}  // namespace fedcross::nn

#endif  // FEDCROSS_NN_LAYER_H_
