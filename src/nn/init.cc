#include "nn/init.h"

#include <cmath>

namespace fedcross::nn {

Tensor KaimingNormal(Tensor::Shape shape, int fan_in, util::Rng& rng) {
  FC_CHECK_GT(fan_in, 0);
  float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::RandomNormal(std::move(shape), rng, 0.0f, stddev);
}

Tensor XavierUniform(Tensor::Shape shape, int fan_in, int fan_out,
                     util::Rng& rng) {
  FC_CHECK_GT(fan_in + fan_out, 0);
  float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::RandomUniform(std::move(shape), rng, -bound, bound);
}

}  // namespace fedcross::nn
