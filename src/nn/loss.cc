#include "nn/loss.h"

#include <cmath>

#include "nn/kernels.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace fedcross::nn {

LossResult CrossEntropyLoss::Compute(const Tensor& logits,
                                     const std::vector<int>& labels,
                                     bool compute_grad) const {
  LossResult result;
  Compute(logits, labels, result, compute_grad);
  return result;
}

void CrossEntropyLoss::Compute(const Tensor& logits,
                               const std::vector<int>& labels,
                               LossResult& result, bool compute_grad) const {
  FC_CHECK_EQ(logits.ndim(), 2);
  int batch = logits.dim(0);
  int classes = logits.dim(1);
  FC_CHECK_EQ(batch, static_cast<int>(labels.size()));

  // Softmax in the caller-owned grad buffer: it doubles as probs scratch and
  // (when compute_grad) becomes the gradient in place. The arithmetic lives
  // in nn/kernels.cc, shared with the execution-plan runtime.
  Tensor& probs = result.grad_logits;
  probs = logits;  // capacity-reusing copy
  kernels::CrossEntropyInPlace(probs.data(), batch, classes, labels.data(),
                               compute_grad, &result.loss, &result.correct);
}

LossResult SoftCrossEntropyLoss::Compute(const Tensor& logits,
                                         const Tensor& targets,
                                         bool compute_grad) const {
  LossResult result;
  Compute(logits, targets, result, compute_grad);
  return result;
}

void SoftCrossEntropyLoss::Compute(const Tensor& logits, const Tensor& targets,
                                   LossResult& result,
                                   bool compute_grad) const {
  FC_CHECK_EQ(logits.ndim(), 2);
  FC_CHECK(logits.SameShape(targets));
  int batch = logits.dim(0);
  int classes = logits.dim(1);

  Tensor& probs = result.grad_logits;
  probs = logits;
  ops::SoftmaxRows(probs);

  result.loss = 0.0f;
  result.correct = 0;
  double total_loss = 0.0;
  const float* p = probs.data();
  const float* t = targets.data();
  for (int b = 0; b < batch; ++b) {
    const float* prob_row = p + static_cast<std::int64_t>(b) * classes;
    const float* target_row = t + static_cast<std::int64_t>(b) * classes;
    int target_argmax = 0;
    for (int c = 0; c < classes; ++c) {
      total_loss -=
          target_row[c] * std::log(std::max(prob_row[c], 1e-12f));
      if (target_row[c] > target_row[target_argmax]) target_argmax = c;
    }
    if (ops::ArgMaxRow(probs, b) == target_argmax) ++result.correct;
  }
  result.loss = static_cast<float>(total_loss / batch);

  if (compute_grad) {
    probs.SubInPlace(targets);
    probs.Scale(1.0f / static_cast<float>(batch));
  }
}

}  // namespace fedcross::nn
