#ifndef FEDCROSS_NN_RESIDUAL_H_
#define FEDCROSS_NN_RESIDUAL_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/norm.h"

namespace fedcross::nn {

// Basic ResNet block (He et al., 2016):
//   main: conv3x3(stride) -> GN -> ReLU -> conv3x3(1) -> GN
//   skip: identity, or conv1x1(stride) -> GN when channels/stride change
//   out:  ReLU(main + skip)
class ResidualBlock : public Layer {
 public:
  ResidualBlock(int in_channels, int out_channels, int stride, int gn_groups,
                util::Rng& rng);

  const Tensor& Forward(const Tensor& input, bool train) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  void CollectParams(std::vector<Param*>& out) override;
  std::string Name() const override { return "ResidualBlock"; }

  // Plan-compiler access to the sub-layers, indexed in CollectParams order
  // (the contract the plan's sub-op bindings rely on). The projection
  // accessors return null for identity-skip blocks.
  enum SubLayer {
    kConv1 = 0,
    kNorm1 = 1,
    kConv2 = 2,
    kNorm2 = 3,
    kProjConv = 4,
    kProjNorm = 5,
  };
  Layer* sub_layer(int index);
  bool has_projection() const { return has_projection_; }

 private:
  bool has_projection_;
  Conv2d conv1_;
  GroupNorm norm1_;
  Relu relu1_;
  Conv2d conv2_;
  GroupNorm norm2_;
  std::unique_ptr<Conv2d> proj_conv_;
  std::unique_ptr<GroupNorm> proj_norm_;
  Relu relu_out_;
  Tensor sum_;         // main-path output + skip, reused across batches
  Tensor grad_input_;  // main-path input grad + skip grad
};

}  // namespace fedcross::nn

#endif  // FEDCROSS_NN_RESIDUAL_H_
