#ifndef FEDCROSS_NN_PLAN_H_
#define FEDCROSS_NN_PLAN_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "nn/sequential.h"
#include "tensor/tensor.h"

namespace fedcross::nn {

class Conv2d;
class Dropout;
class GroupNorm;
class Linear;

namespace plan {

// -----------------------------------------------------------------------
// Execution plans: a Sequential model compiled, for one fixed input shape,
// into a flat list of ops with pre-assigned offsets into a single
// per-replica float arena. The plan executor then runs K same-topology
// replicas in lockstep, fusing each GEMM across replicas into one
// ops::GemmGrouped call (replica-interleaved SIMD lanes for small shapes).
//
// Invariant: a plan step is bit-identical to Layer::Forward / loss /
// Layer::Backward on the same replica. Three mechanisms enforce this:
//  * every GEMM goes through ops::Gemm / ops::GemmGrouped, whose grouped
//    instances are bit-identical to standalone calls;
//  * every non-GEMM arithmetic loop is a shared out-of-line kernel in
//    nn/kernels.cc, called by both the layer classes and the executor, so
//    no expression can be FP-contracted differently in two TUs;
//  * dropout masks are drawn from the layer's own RNG in layer order, so
//    both paths consume the same stream.
// The plan also skips work the layer path wastes: the input gradient of
// the first layer (nothing consumes it) and the copy-in/copy-out of
// elementwise layers (ops read and write arena buffers out of place).
// -----------------------------------------------------------------------

// A float-buffer reference: either the mini-batch input tensor (read-only)
// or an offset into the per-replica arena.
struct Ref {
  enum class Space : std::uint8_t { kNone, kInput, kArena };
  Space space = Space::kNone;
  std::int64_t offset = 0;
};

enum class OpKind : std::uint8_t {
  kLinear,
  kConv,
  kRelu,
  kTanh,
  kSigmoid,
  kDropout,
  kMaxPool,
  kGlobalAvgPool,
  kGroupNorm,
};

// One compiled op. Offsets and geometry are shared by all replicas; the
// per-replica parameter pointers come from PlanState bindings.
struct Op {
  OpKind kind;
  int layer = -1;        // index into the source Sequential
  bool skip_dx = false;  // input gradient provably unused: skip computing it

  Ref x, y;    // input / output activations
  Ref dx, dy;  // their gradients (dx may be kNone when skip_dx)
  Ref s0, s1;  // float scratch: conv columns+dcolumns, dropout mask,
               // groupnorm xhat+inv_std
  int argmax_slot = -1;  // MaxPool: index into PlanState::argmax

  // Geometry (fields unused by a kind stay zero).
  std::int64_t numel = 0;             // elementwise ops
  int batch = 0;
  int cols_in = 0, cols_out = 0;      // linear
  int channels = 0, height = 0, width = 0;  // conv/pool/groupnorm input
  int out_channels = 0, out_h = 0, out_w = 0;
  int kernel = 0, stride = 0, pad = 0;
  int groups = 0;                     // groupnorm
  float rate = 0.0f, scale = 0.0f;    // dropout
  float eps = 0.0f;                   // groupnorm
};

// The compiled, topology-level plan. Shared (read-only) by every replica of
// one architecture at one batch geometry.
struct Program {
  std::vector<Op> ops;
  std::int64_t arena_floats = 0;           // per-replica arena size
  std::vector<std::int64_t> argmax_sizes;  // per MaxPool slot
  Tensor::Shape input_shape;               // includes the batch dim
  std::int64_t input_floats = 0;
  int batch = 0;
  int classes = 0;    // final logits width
  Ref logits, dlogits;

  // Compiles `model` for `input_shape` (training semantics: dropout
  // active). Returns nullopt when the topology contains a layer kind the
  // plan runtime does not support (LSTM, Residual, BatchNorm, Embedding);
  // callers then fall back to layer-by-layer execution.
  static std::optional<Program> Compile(Sequential& model,
                                        const Tensor::Shape& input_shape);
};

// Per-replica executor state: the arena, MaxPool argmax slots, and borrowed
// layer pointers (parameters and the dropout RNG live in the model). Bind()
// reuses storage capacity, so rebinding the same program is allocation-free
// after the first call.
struct PlanState {
  struct OpBinding {
    Linear* linear = nullptr;
    Conv2d* conv = nullptr;
    GroupNorm* gn = nullptr;
    Dropout* dropout = nullptr;
  };

  const Program* program = nullptr;
  Sequential* model = nullptr;
  Tensor arena;
  std::vector<std::vector<std::int64_t>> argmax;
  std::vector<OpBinding> bindings;

  // Binds `model`'s layers to `program`'s ops (type-checked) and sizes the
  // arena. The program must outlive this state.
  void Bind(const Program& prog, Sequential& m);
};

// One replica's mini-batch: borrowed pointers into the caller's feature
// tensor ([batch, ...] row-major) and label array (batch ints).
struct BatchRef {
  const float* features = nullptr;
  const int* labels = nullptr;
};

// Runs forward + softmax-cross-entropy + backward for `count` replicas in
// lockstep on same-shape batches. Parameter gradients accumulate (+=) into
// each replica's layers — the caller zeroes grads and applies the optimizer
// step, exactly as with the layer path. loss[i]/correct[i] receive each
// replica's mean batch loss and argmax-accuracy count. grad_scales, when
// non-null, multiplies replica i's logits gradient by grad_scales[i] before
// backprop (FedGen weights its augmentation batches this way). All states
// must be bound to `program`. Allocation-free in steady state.
void ExecuteStep(const Program& program, PlanState* const* states,
                 const BatchRef* batches, int count, float* loss,
                 int* correct, const float* grad_scales = nullptr);

}  // namespace plan
}  // namespace fedcross::nn

#endif  // FEDCROSS_NN_PLAN_H_
