#ifndef FEDCROSS_NN_PLAN_H_
#define FEDCROSS_NN_PLAN_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "nn/sequential.h"
#include "tensor/tensor.h"

namespace fedcross::nn {

class Conv2d;
class Dropout;
class Embedding;
class GroupNorm;
class Linear;
class Lstm;

namespace plan {

// -----------------------------------------------------------------------
// Execution plans: a Sequential model compiled, for one fixed input shape,
// into a step graph with pre-assigned offsets into a single per-replica
// arena. Most ops form a straight line (each consumes the previous op's
// output), but the graph also carries saved-branch refs — a second input
// ref (kAdd joins a residual skip branch back into the main path; branch
// gradient refs alias so the join's backward is free) — and one bounded
// per-timestep loop (kLstm walks T gate steps over arena slabs). The plan
// executor runs K same-topology replicas in lockstep, fusing each GEMM
// across replicas into one ops::GemmGrouped call and each conv-forward
// image batch into one ops::ConvGrouped call (replica-interleaved SIMD
// lanes for small shapes).
//
// Invariant: a plan step is bit-identical to Layer::Forward / loss /
// Layer::Backward on the same replica. Three mechanisms enforce this:
//  * every GEMM goes through ops::Gemm / ops::GemmGrouped / ops::ConvGrouped,
//    whose grouped instances are bit-identical to standalone calls;
//  * every non-GEMM arithmetic loop is a shared out-of-line kernel in
//    nn/kernels.cc, called by both the layer classes and the executor, so
//    no expression can be FP-contracted differently in two TUs;
//  * dropout masks are drawn from the layer's own RNG in layer order, so
//    both paths consume the same stream.
// The plan also skips work the layer path wastes: the input gradient of
// the first layer (nothing consumes it) and the copy-in/copy-out of
// elementwise layers (ops read and write arena buffers out of place).
//
// bf16 arena storage (PlanState::Bind with use_bf16): the arena holds
// bfloat16 instead of fp32 — every arena store rounds to nearest-even at
// pack time, every op computes in fp32 on thread-local staged views.
// Parameters (and their gradients) stay fp32, so the optimizer state and
// master weights are untouched; only activations/activation-gradients
// round. A bf16 run is still bit-identical across --fl_threads values
// (staging round-trips are per-replica, independent of fusion grouping)
// but is NOT bit-identical to an fp32 run — callers mix the flag into
// their config fingerprint.
// -----------------------------------------------------------------------

// A float-buffer reference: either the mini-batch input tensor (read-only)
// or an offset into the per-replica arena.
struct Ref {
  enum class Space : std::uint8_t { kNone, kInput, kArena };
  Space space = Space::kNone;
  std::int64_t offset = 0;
};

enum class OpKind : std::uint8_t {
  kLinear,
  kConv,
  kRelu,
  kTanh,
  kSigmoid,
  kDropout,
  kMaxPool,
  kGlobalAvgPool,
  kGroupNorm,
  // Step-graph extensions:
  kAdd,        // y = x + x2 (residual skip join). Backward is a no-op: both
               // branch dy refs alias this op's dy, so writing dy once (by
               // the op above the join) fans out for free.
  kAccumGrad,  // backward-only: dx += dy (residual input-grad merge; the
               // second branch's input gradient folds into the first's).
               // Forward is a no-op. Emitted first in a block so it runs
               // last in the reverse-order backward sweep.
  kLstm,       // full BPTT recurrence: a bounded per-timestep loop over
               // gate GEMMs and the fused 4-gate kernel, slabs in s0/s1/s2.
  kEmbedding,  // token-id gather; ids live in an argmax slot. First layer
               // only (the layer path stops backprop at the embedding, so
               // lowering it mid-network would diverge on param grads).
};

// One compiled op. Offsets and geometry are shared by all replicas; the
// per-replica parameter pointers come from PlanState bindings.
struct Op {
  OpKind kind;
  int layer = -1;        // index into the source Sequential
  int sub = -1;          // sub-layer within a composite layer (ResidualBlock)
  bool skip_dx = false;  // input gradient provably unused: skip computing it

  Ref x, y;    // input / output activations
  Ref x2;      // second input (kAdd: the skip branch)
  Ref dx, dy;  // their gradients (dx may be kNone when skip_dx)
  Ref s0, s1;  // float scratch: conv columns+dcolumns, dropout mask,
               // groupnorm xhat+inv_std, lstm gates+cells
  Ref s2;      // lstm hiddens slab ((time+1) windows; window 0 is h_{-1}=0)
  int argmax_slot = -1;  // MaxPool argmax / Embedding token ids

  // Geometry (fields unused by a kind stay zero).
  std::int64_t numel = 0;             // elementwise ops
  int batch = 0;
  int cols_in = 0, cols_out = 0;      // linear; lstm input/hidden dims
  int time = 0;                       // lstm / embedding sequence length
  int vocab = 0;                      // embedding table rows
  int channels = 0, height = 0, width = 0;  // conv/pool/groupnorm input
  int out_channels = 0, out_h = 0, out_w = 0;
  int kernel = 0, stride = 0, pad = 0;
  int groups = 0;                     // groupnorm
  float rate = 0.0f, scale = 0.0f;    // dropout
  float eps = 0.0f;                   // groupnorm
};

// The compiled, topology-level plan. Shared (read-only) by every replica of
// one architecture at one batch geometry.
struct Program {
  std::vector<Op> ops;
  std::int64_t arena_floats = 0;           // per-replica arena size
  std::vector<std::int64_t> argmax_sizes;  // per MaxPool/Embedding slot
  Tensor::Shape input_shape;               // includes the batch dim
  std::int64_t input_floats = 0;
  int batch = 0;
  int classes = 0;    // final logits width
  Ref logits, dlogits;

  // Compiles `model` for `input_shape` (training semantics: dropout
  // active). The whole model zoo lowers — MLP/CNN/VGG straight lines,
  // ResNet residual blocks (skip-branch refs), LSTM heads (embedding
  // gather + bounded timestep loop). Returns nullopt only for layer kinds
  // the runtime has no lowering for (BatchNorm, mid-network embeddings,
  // ...); callers then fall back to layer-by-layer execution.
  static std::optional<Program> Compile(Sequential& model,
                                        const Tensor::Shape& input_shape);
};

// Per-replica executor state: the arena (fp32, or packed bf16), MaxPool
// argmax / Embedding id slots, and borrowed layer pointers (parameters and
// the dropout RNG live in the model). Bind() reuses storage capacity, so
// rebinding the same program is allocation-free after the first call.
// Non-copyable: each state accounts its arena bytes in the process-wide
// fl.pool.arena_bytes gauge and settles up in the destructor.
struct PlanState {
  struct OpBinding {
    Linear* linear = nullptr;
    Conv2d* conv = nullptr;
    GroupNorm* gn = nullptr;
    Dropout* dropout = nullptr;
    Lstm* lstm = nullptr;
    Embedding* embedding = nullptr;
  };

  PlanState() = default;
  PlanState(const PlanState&) = delete;
  PlanState& operator=(const PlanState&) = delete;
  ~PlanState();

  const Program* program = nullptr;
  Sequential* model = nullptr;
  bool bf16 = false;
  Tensor arena;                       // fp32 storage (bf16 == false)
  std::vector<std::uint16_t> arena16; // bf16 storage (bf16 == true)
  std::vector<std::vector<std::int64_t>> argmax;
  std::vector<OpBinding> bindings;
  std::int64_t accounted_bytes = 0;   // this state's arena-gauge contribution

  // Binds `model`'s layers to `program`'s ops (type-checked) and sizes the
  // arena — as packed bf16 when use_bf16 (fp32 compute on staged views; see
  // the header comment). The program must outlive this state.
  void Bind(const Program& prog, Sequential& m, bool use_bf16 = false);
};

// One replica's mini-batch: borrowed pointers into the caller's feature
// tensor ([batch, ...] row-major) and label array (batch ints).
struct BatchRef {
  const float* features = nullptr;
  const int* labels = nullptr;
};

// Runs forward + softmax-cross-entropy + backward for `count` replicas in
// lockstep on same-shape batches. Parameter gradients accumulate (+=) into
// each replica's layers — the caller zeroes grads and applies the optimizer
// step, exactly as with the layer path. loss[i]/correct[i] receive each
// replica's mean batch loss and argmax-accuracy count. grad_scales, when
// non-null, multiplies replica i's logits gradient by grad_scales[i] before
// backprop (FedGen weights its augmentation batches this way). All states
// must be bound to `program`. Allocation-free in steady state.
void ExecuteStep(const Program& program, PlanState* const* states,
                 const BatchRef* batches, int count, float* loss,
                 int* correct, const float* grad_scales = nullptr);

namespace testing {
// Number of capacity-growth events across the executor's thread-local
// scratch (grouped-GEMM/conv instance tables, bf16 staging slots). Warmed-up
// steady-state training must not grow scratch; the steady-state test pins
// this alongside Tensor::HeapAllocations.
std::int64_t ScratchReallocEvents();
}  // namespace testing

}  // namespace plan
}  // namespace fedcross::nn

#endif  // FEDCROSS_NN_PLAN_H_
