#include "nn/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace fedcross::nn::kernels {

void ReluForward(const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    float v = x[i];
    y[i] = v < 0.0f ? 0.0f : v;
  }
}

void ReluBackward(const float* y, const float* dy, float* dx, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    dx[i] = y[i] <= 0.0f ? 0.0f : dy[i];
  }
}

void TanhForward(const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
}

void TanhBackward(const float* y, const float* dy, float* dx, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    dx[i] = dy[i] * (1.0f - y[i] * y[i]);
  }
}

void SigmoidForward(const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] = 1.0f / (1.0f + std::exp(-x[i]));
  }
}

void SigmoidBackward(const float* y, const float* dy, float* dx,
                     std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    dx[i] = dy[i] * (y[i] * (1.0f - y[i]));
  }
}

void DropoutMask(util::Rng& rng, float rate, float scale, float* mask,
                 std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    mask[i] = rng.Uniform() < rate ? 0.0f : scale;
  }
}

void DropoutApply(const float* x, const float* mask, float* y,
                  std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = x[i] * mask[i];
}

void BiasAddRows(float* y, const float* bias, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    for (int j = 0; j < cols; ++j) {
      y[static_cast<std::int64_t>(r) * cols + j] += bias[j];
    }
  }
}

void BiasGradRows(const float* dy, float* dbias, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    for (int j = 0; j < cols; ++j) {
      dbias[j] += dy[static_cast<std::int64_t>(r) * cols + j];
    }
  }
}

void ConvBiasAdd(float* y, const float* bias, int batch, int channels,
                 int area) {
  for (int b = 0; b < batch; ++b) {
    for (int c = 0; c < channels; ++c) {
      float* plane = y + (static_cast<std::int64_t>(b) * channels + c) * area;
      for (int i = 0; i < area; ++i) plane[i] += bias[c];
    }
  }
}

void ConvBiasGradImage(const float* dy_image, float* dbias, int channels,
                       int area) {
  for (int c = 0; c < channels; ++c) {
    const float* plane = dy_image + static_cast<std::int64_t>(c) * area;
    double acc = 0.0;
    for (int i = 0; i < area; ++i) acc += plane[i];
    dbias[c] += static_cast<float>(acc);
  }
}

void MaxPoolForward(const float* x, float* y, std::int64_t* argmax, int batch,
                    int channels, int height, int width, int out_h, int out_w,
                    int kernel, int stride) {
  std::int64_t out_index = 0;
  for (int b = 0; b < batch; ++b) {
    for (int c = 0; c < channels; ++c) {
      const float* plane =
          x + (static_cast<std::int64_t>(b) * channels + c) * height * width;
      std::int64_t plane_offset =
          (static_cast<std::int64_t>(b) * channels + c) * height * width;
      for (int oh = 0; oh < out_h; ++oh) {
        for (int ow = 0; ow < out_w; ++ow) {
          int h0 = oh * stride;
          int w0 = ow * stride;
          float best = plane[h0 * width + w0];
          int best_h = h0;
          int best_w = w0;
          for (int kh = 0; kh < kernel; ++kh) {
            int ih = h0 + kh;
            if (ih >= height) break;
            for (int kw = 0; kw < kernel; ++kw) {
              int iw = w0 + kw;
              if (iw >= width) break;
              float value = plane[ih * width + iw];
              if (value > best) {
                best = value;
                best_h = ih;
                best_w = iw;
              }
            }
          }
          y[out_index] = best;
          argmax[out_index] = plane_offset + best_h * width + best_w;
          ++out_index;
        }
      }
    }
  }
}

void MaxPoolBackward(const float* dy, const std::int64_t* argmax,
                     std::int64_t out_numel, float* dx,
                     std::int64_t in_numel) {
  for (std::int64_t i = 0; i < in_numel; ++i) dx[i] = 0.0f;
  for (std::int64_t i = 0; i < out_numel; ++i) {
    dx[argmax[i]] += dy[i];
  }
}

void GlobalAvgPoolForward(const float* x, float* y, int batch, int channels,
                          int area) {
  for (int b = 0; b < batch; ++b) {
    for (int c = 0; c < channels; ++c) {
      const float* plane =
          x + (static_cast<std::int64_t>(b) * channels + c) * area;
      double acc = 0.0;
      for (int i = 0; i < area; ++i) acc += plane[i];
      y[static_cast<std::int64_t>(b) * channels + c] =
          static_cast<float>(acc / area);
    }
  }
}

void GlobalAvgPoolBackward(const float* dy, float* dx, int batch, int channels,
                           int area) {
  float inv_area = 1.0f / static_cast<float>(area);
  for (int b = 0; b < batch; ++b) {
    for (int c = 0; c < channels; ++c) {
      float g = dy[static_cast<std::int64_t>(b) * channels + c] * inv_area;
      float* plane = dx + (static_cast<std::int64_t>(b) * channels + c) * area;
      for (int i = 0; i < area; ++i) plane[i] = g;
    }
  }
}

void GroupNormForward(const float* x, float* y, float* xhat, float* inv_std,
                      const float* gamma, const float* beta, int batch,
                      int channels, int groups, int area, float eps) {
  int chans_per_group = channels / groups;
  std::int64_t group_size = static_cast<std::int64_t>(chans_per_group) * area;
  for (int b = 0; b < batch; ++b) {
    for (int g = 0; g < groups; ++g) {
      std::int64_t base =
          (static_cast<std::int64_t>(b) * channels + g * chans_per_group) *
          area;
      double mean = 0.0;
      for (std::int64_t i = 0; i < group_size; ++i) mean += x[base + i];
      mean /= group_size;
      double var = 0.0;
      for (std::int64_t i = 0; i < group_size; ++i) {
        double d = x[base + i] - mean;
        var += d * d;
      }
      var /= group_size;
      float istd = static_cast<float>(1.0 / std::sqrt(var + eps));
      inv_std[static_cast<std::size_t>(b) * groups + g] = istd;
      for (int c = 0; c < chans_per_group; ++c) {
        int channel = g * chans_per_group + c;
        std::int64_t offset = base + static_cast<std::int64_t>(c) * area;
        for (int i = 0; i < area; ++i) {
          float normalized =
              (x[offset + i] - static_cast<float>(mean)) * istd;
          xhat[offset + i] = normalized;
          y[offset + i] = gamma[channel] * normalized + beta[channel];
        }
      }
    }
  }
}

void GroupNormBackward(const float* dy, const float* xhat,
                       const float* inv_std, const float* gamma, float* dgamma,
                       float* dbeta, float* dx, int batch, int channels,
                       int groups, int area) {
  int chans_per_group = channels / groups;
  std::int64_t group_size = static_cast<std::int64_t>(chans_per_group) * area;
  for (int b = 0; b < batch; ++b) {
    for (int g = 0; g < groups; ++g) {
      std::int64_t base =
          (static_cast<std::int64_t>(b) * channels + g * chans_per_group) *
          area;
      float istd = inv_std[static_cast<std::size_t>(b) * groups + g];

      // Accumulate the two per-group reductions of dxhat = dy * gamma.
      double sum_dxhat = 0.0;
      double sum_dxhat_xhat = 0.0;
      for (int c = 0; c < chans_per_group; ++c) {
        int channel = g * chans_per_group + c;
        std::int64_t offset = base + static_cast<std::int64_t>(c) * area;
        for (int i = 0; i < area; ++i) {
          float dxhat = dy[offset + i] * gamma[channel];
          sum_dxhat += dxhat;
          sum_dxhat_xhat += static_cast<double>(dxhat) * xhat[offset + i];
        }
      }
      float mean_dxhat = static_cast<float>(sum_dxhat / group_size);
      float mean_dxhat_xhat = static_cast<float>(sum_dxhat_xhat / group_size);

      for (int c = 0; c < chans_per_group; ++c) {
        int channel = g * chans_per_group + c;
        std::int64_t offset = base + static_cast<std::int64_t>(c) * area;
        for (int i = 0; i < area; ++i) {
          float dyv = dy[offset + i];
          float xh = xhat[offset + i];
          dgamma[channel] += dyv * xh;
          dbeta[channel] += dyv;
          float dxhat = dyv * gamma[channel];
          dx[offset + i] = istd * (dxhat - mean_dxhat - xh * mean_dxhat_xhat);
        }
      }
    }
  }
}

void Add(const float* a, const float* b, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = a[i] + b[i];
}

namespace {
inline float SigmoidScalar(float x) { return 1.0f / (1.0f + std::exp(-x)); }
}  // namespace

void LstmGateForward(float* z, const float* c_prev, float* c, float* h,
                     int batch, int hidden) {
  int h4 = 4 * hidden;
  for (int b = 0; b < batch; ++b) {
    float* row = z + static_cast<std::int64_t>(b) * h4;
    std::int64_t base = static_cast<std::int64_t>(b) * hidden;
    for (int j = 0; j < hidden; ++j) {
      float i_gate = SigmoidScalar(row[j]);
      float f_gate = SigmoidScalar(row[hidden + j]);
      float g_gate = std::tanh(row[2 * hidden + j]);
      float o_gate = SigmoidScalar(row[3 * hidden + j]);
      row[j] = i_gate;
      row[hidden + j] = f_gate;
      row[2 * hidden + j] = g_gate;
      row[3 * hidden + j] = o_gate;
      float c_new =
          f_gate * (c_prev ? c_prev[base + j] : 0.0f) + i_gate * g_gate;
      c[base + j] = c_new;
      h[base + j] = o_gate * std::tanh(c_new);
    }
  }
}

void LstmGateBackward(const float* gates, const float* cell,
                      const float* cell_prev, const float* dh, float* dc,
                      float* dz, int batch, int hidden) {
  int h4 = 4 * hidden;
  for (int b = 0; b < batch; ++b) {
    std::int64_t base = static_cast<std::int64_t>(b) * hidden;
    const float* grow = gates + static_cast<std::int64_t>(b) * h4;
    float* dzrow = dz + static_cast<std::int64_t>(b) * h4;
    for (int j = 0; j < hidden; ++j) {
      float i_gate = grow[j];
      float f_gate = grow[hidden + j];
      float g_gate = grow[2 * hidden + j];
      float o_gate = grow[3 * hidden + j];
      float tanh_c = std::tanh(cell[base + j]);
      float dh_val = dh[base + j];

      float dc_val = dc[base + j] + dh_val * o_gate * (1.0f - tanh_c * tanh_c);
      float c_prev = cell_prev ? cell_prev[base + j] : 0.0f;

      // Pre-activation gate gradients.
      dzrow[j] = dc_val * g_gate * i_gate * (1.0f - i_gate);
      dzrow[hidden + j] = dc_val * c_prev * f_gate * (1.0f - f_gate);
      dzrow[2 * hidden + j] = dc_val * i_gate * (1.0f - g_gate * g_gate);
      dzrow[3 * hidden + j] = dh_val * tanh_c * o_gate * (1.0f - o_gate);

      dc[base + j] = dc_val * f_gate;  // becomes dc_{t-1}
    }
  }
}

void EmbeddingGather(const float* ids_f, std::int64_t tokens, int vocab,
                     const float* table, int embed, std::int64_t* ids,
                     float* y) {
  for (std::int64_t i = 0; i < tokens; ++i) {
    int id = static_cast<int>(ids_f[i]);
    FC_CHECK_GE(id, 0);
    FC_CHECK_LT(id, vocab);
    ids[i] = id;
    std::memcpy(y + i * embed, table + static_cast<std::int64_t>(id) * embed,
                embed * sizeof(float));
  }
}

void EmbeddingScatterAdd(const std::int64_t* ids, std::int64_t tokens,
                         const float* dy, int embed, float* table_grad) {
  for (std::int64_t i = 0; i < tokens; ++i) {
    float* row = table_grad + ids[i] * embed;
    const float* src = dy + i * embed;
    for (int d = 0; d < embed; ++d) row[d] += src[d];
  }
}

std::uint16_t Bf16FromFloat(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  if ((bits & 0x7F800000u) == 0x7F800000u) {
    // NaN/Inf: truncate (keeps the exponent all-ones; the high mantissa bit
    // of a quiet NaN lives in the top 16 bits, so quietness survives).
    return static_cast<std::uint16_t>(bits >> 16);
  }
  bits += 0x7FFFu + ((bits >> 16) & 1u);  // round to nearest, ties to even
  return static_cast<std::uint16_t>(bits >> 16);
}

float Bf16ToFloat(std::uint16_t v) {
  std::uint32_t bits = static_cast<std::uint32_t>(v) << 16;
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

void PackBf16(const float* src, std::uint16_t* dst, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = Bf16FromFloat(src[i]);
}

void UnpackBf16(const std::uint16_t* src, float* dst, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = Bf16ToFloat(src[i]);
}

void CrossEntropyInPlace(float* probs, int batch, int classes,
                         const int* labels, bool compute_grad, float* loss,
                         int* correct) {
  ops::SoftmaxRowsRaw(probs, batch, classes);
  double total_loss = 0.0;
  int correct_count = 0;
  for (int b = 0; b < batch; ++b) {
    int label = labels[b];
    FC_CHECK_GE(label, 0);
    FC_CHECK_LT(label, classes);
    const float* row = probs + static_cast<std::int64_t>(b) * classes;
    total_loss -= std::log(std::max(row[label], 1e-12f));
    if (ops::ArgMaxRowRaw(row, classes) == label) ++correct_count;
  }
  *loss = static_cast<float>(total_loss / batch);
  *correct = correct_count;

  if (compute_grad) {
    float inv_batch = 1.0f / static_cast<float>(batch);
    for (int b = 0; b < batch; ++b) {
      float* row = probs + static_cast<std::int64_t>(b) * classes;
      row[labels[b]] -= 1.0f;
      for (int c = 0; c < classes; ++c) row[c] *= inv_batch;
    }
  }
}

}  // namespace fedcross::nn::kernels
