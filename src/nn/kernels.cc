#include "nn/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace fedcross::nn::kernels {

void ReluForward(const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    float v = x[i];
    y[i] = v < 0.0f ? 0.0f : v;
  }
}

void ReluBackward(const float* y, const float* dy, float* dx, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    dx[i] = y[i] <= 0.0f ? 0.0f : dy[i];
  }
}

void TanhForward(const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
}

void TanhBackward(const float* y, const float* dy, float* dx, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    dx[i] = dy[i] * (1.0f - y[i] * y[i]);
  }
}

void SigmoidForward(const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] = 1.0f / (1.0f + std::exp(-x[i]));
  }
}

void SigmoidBackward(const float* y, const float* dy, float* dx,
                     std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    dx[i] = dy[i] * (y[i] * (1.0f - y[i]));
  }
}

void DropoutMask(util::Rng& rng, float rate, float scale, float* mask,
                 std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    mask[i] = rng.Uniform() < rate ? 0.0f : scale;
  }
}

void DropoutApply(const float* x, const float* mask, float* y,
                  std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = x[i] * mask[i];
}

void BiasAddRows(float* y, const float* bias, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    for (int j = 0; j < cols; ++j) {
      y[static_cast<std::int64_t>(r) * cols + j] += bias[j];
    }
  }
}

void BiasGradRows(const float* dy, float* dbias, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    for (int j = 0; j < cols; ++j) {
      dbias[j] += dy[static_cast<std::int64_t>(r) * cols + j];
    }
  }
}

void ConvBiasAdd(float* y, const float* bias, int batch, int channels,
                 int area) {
  for (int b = 0; b < batch; ++b) {
    for (int c = 0; c < channels; ++c) {
      float* plane = y + (static_cast<std::int64_t>(b) * channels + c) * area;
      for (int i = 0; i < area; ++i) plane[i] += bias[c];
    }
  }
}

void ConvBiasGradImage(const float* dy_image, float* dbias, int channels,
                       int area) {
  for (int c = 0; c < channels; ++c) {
    const float* plane = dy_image + static_cast<std::int64_t>(c) * area;
    double acc = 0.0;
    for (int i = 0; i < area; ++i) acc += plane[i];
    dbias[c] += static_cast<float>(acc);
  }
}

void MaxPoolForward(const float* x, float* y, std::int64_t* argmax, int batch,
                    int channels, int height, int width, int out_h, int out_w,
                    int kernel, int stride) {
  std::int64_t out_index = 0;
  for (int b = 0; b < batch; ++b) {
    for (int c = 0; c < channels; ++c) {
      const float* plane =
          x + (static_cast<std::int64_t>(b) * channels + c) * height * width;
      std::int64_t plane_offset =
          (static_cast<std::int64_t>(b) * channels + c) * height * width;
      for (int oh = 0; oh < out_h; ++oh) {
        for (int ow = 0; ow < out_w; ++ow) {
          int h0 = oh * stride;
          int w0 = ow * stride;
          float best = plane[h0 * width + w0];
          int best_h = h0;
          int best_w = w0;
          for (int kh = 0; kh < kernel; ++kh) {
            int ih = h0 + kh;
            if (ih >= height) break;
            for (int kw = 0; kw < kernel; ++kw) {
              int iw = w0 + kw;
              if (iw >= width) break;
              float value = plane[ih * width + iw];
              if (value > best) {
                best = value;
                best_h = ih;
                best_w = iw;
              }
            }
          }
          y[out_index] = best;
          argmax[out_index] = plane_offset + best_h * width + best_w;
          ++out_index;
        }
      }
    }
  }
}

void MaxPoolBackward(const float* dy, const std::int64_t* argmax,
                     std::int64_t out_numel, float* dx,
                     std::int64_t in_numel) {
  for (std::int64_t i = 0; i < in_numel; ++i) dx[i] = 0.0f;
  for (std::int64_t i = 0; i < out_numel; ++i) {
    dx[argmax[i]] += dy[i];
  }
}

void GlobalAvgPoolForward(const float* x, float* y, int batch, int channels,
                          int area) {
  for (int b = 0; b < batch; ++b) {
    for (int c = 0; c < channels; ++c) {
      const float* plane =
          x + (static_cast<std::int64_t>(b) * channels + c) * area;
      double acc = 0.0;
      for (int i = 0; i < area; ++i) acc += plane[i];
      y[static_cast<std::int64_t>(b) * channels + c] =
          static_cast<float>(acc / area);
    }
  }
}

void GlobalAvgPoolBackward(const float* dy, float* dx, int batch, int channels,
                           int area) {
  float inv_area = 1.0f / static_cast<float>(area);
  for (int b = 0; b < batch; ++b) {
    for (int c = 0; c < channels; ++c) {
      float g = dy[static_cast<std::int64_t>(b) * channels + c] * inv_area;
      float* plane = dx + (static_cast<std::int64_t>(b) * channels + c) * area;
      for (int i = 0; i < area; ++i) plane[i] = g;
    }
  }
}

void GroupNormForward(const float* x, float* y, float* xhat, float* inv_std,
                      const float* gamma, const float* beta, int batch,
                      int channels, int groups, int area, float eps) {
  int chans_per_group = channels / groups;
  std::int64_t group_size = static_cast<std::int64_t>(chans_per_group) * area;
  for (int b = 0; b < batch; ++b) {
    for (int g = 0; g < groups; ++g) {
      std::int64_t base =
          (static_cast<std::int64_t>(b) * channels + g * chans_per_group) *
          area;
      double mean = 0.0;
      for (std::int64_t i = 0; i < group_size; ++i) mean += x[base + i];
      mean /= group_size;
      double var = 0.0;
      for (std::int64_t i = 0; i < group_size; ++i) {
        double d = x[base + i] - mean;
        var += d * d;
      }
      var /= group_size;
      float istd = static_cast<float>(1.0 / std::sqrt(var + eps));
      inv_std[static_cast<std::size_t>(b) * groups + g] = istd;
      for (int c = 0; c < chans_per_group; ++c) {
        int channel = g * chans_per_group + c;
        std::int64_t offset = base + static_cast<std::int64_t>(c) * area;
        for (int i = 0; i < area; ++i) {
          float normalized =
              (x[offset + i] - static_cast<float>(mean)) * istd;
          xhat[offset + i] = normalized;
          y[offset + i] = gamma[channel] * normalized + beta[channel];
        }
      }
    }
  }
}

void GroupNormBackward(const float* dy, const float* xhat,
                       const float* inv_std, const float* gamma, float* dgamma,
                       float* dbeta, float* dx, int batch, int channels,
                       int groups, int area) {
  int chans_per_group = channels / groups;
  std::int64_t group_size = static_cast<std::int64_t>(chans_per_group) * area;
  for (int b = 0; b < batch; ++b) {
    for (int g = 0; g < groups; ++g) {
      std::int64_t base =
          (static_cast<std::int64_t>(b) * channels + g * chans_per_group) *
          area;
      float istd = inv_std[static_cast<std::size_t>(b) * groups + g];

      // Accumulate the two per-group reductions of dxhat = dy * gamma.
      double sum_dxhat = 0.0;
      double sum_dxhat_xhat = 0.0;
      for (int c = 0; c < chans_per_group; ++c) {
        int channel = g * chans_per_group + c;
        std::int64_t offset = base + static_cast<std::int64_t>(c) * area;
        for (int i = 0; i < area; ++i) {
          float dxhat = dy[offset + i] * gamma[channel];
          sum_dxhat += dxhat;
          sum_dxhat_xhat += static_cast<double>(dxhat) * xhat[offset + i];
        }
      }
      float mean_dxhat = static_cast<float>(sum_dxhat / group_size);
      float mean_dxhat_xhat = static_cast<float>(sum_dxhat_xhat / group_size);

      for (int c = 0; c < chans_per_group; ++c) {
        int channel = g * chans_per_group + c;
        std::int64_t offset = base + static_cast<std::int64_t>(c) * area;
        for (int i = 0; i < area; ++i) {
          float dyv = dy[offset + i];
          float xh = xhat[offset + i];
          dgamma[channel] += dyv * xh;
          dbeta[channel] += dyv;
          float dxhat = dyv * gamma[channel];
          dx[offset + i] = istd * (dxhat - mean_dxhat - xh * mean_dxhat_xhat);
        }
      }
    }
  }
}

void CrossEntropyInPlace(float* probs, int batch, int classes,
                         const int* labels, bool compute_grad, float* loss,
                         int* correct) {
  ops::SoftmaxRowsRaw(probs, batch, classes);
  double total_loss = 0.0;
  int correct_count = 0;
  for (int b = 0; b < batch; ++b) {
    int label = labels[b];
    FC_CHECK_GE(label, 0);
    FC_CHECK_LT(label, classes);
    const float* row = probs + static_cast<std::int64_t>(b) * classes;
    total_loss -= std::log(std::max(row[label], 1e-12f));
    if (ops::ArgMaxRowRaw(row, classes) == label) ++correct_count;
  }
  *loss = static_cast<float>(total_loss / batch);
  *correct = correct_count;

  if (compute_grad) {
    float inv_batch = 1.0f / static_cast<float>(batch);
    for (int b = 0; b < batch; ++b) {
      float* row = probs + static_cast<std::int64_t>(b) * classes;
      row[labels[b]] -= 1.0f;
      for (int c = 0; c < classes; ++c) row[c] *= inv_batch;
    }
  }
}

}  // namespace fedcross::nn::kernels
