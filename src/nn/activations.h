#ifndef FEDCROSS_NN_ACTIVATIONS_H_
#define FEDCROSS_NN_ACTIVATIONS_H_

#include <string>

#include "nn/layer.h"

namespace fedcross::nn {

// Elementwise max(0, x). Works on tensors of any rank. Backward derives the
// mask from the cached output (out == 0 iff in <= 0), so no input copy is
// kept.
class Relu : public Layer {
 public:
  const Tensor& Forward(const Tensor& input, bool train) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "Relu"; }

 private:
  Tensor output_;
  Tensor grad_input_;
};

// Elementwise tanh(x).
class Tanh : public Layer {
 public:
  const Tensor& Forward(const Tensor& input, bool train) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "Tanh"; }

 private:
  Tensor output_;
  Tensor grad_input_;
};

// Elementwise logistic sigmoid.
class Sigmoid : public Layer {
 public:
  const Tensor& Forward(const Tensor& input, bool train) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "Sigmoid"; }

 private:
  Tensor output_;
  Tensor grad_input_;
};

}  // namespace fedcross::nn

#endif  // FEDCROSS_NN_ACTIVATIONS_H_
