#ifndef FEDCROSS_NN_ACTIVATIONS_H_
#define FEDCROSS_NN_ACTIVATIONS_H_

#include <string>

#include "nn/layer.h"

namespace fedcross::nn {

// Elementwise max(0, x). Works on tensors of any rank.
class Relu : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "Relu"; }

 private:
  Tensor cached_input_;
};

// Elementwise tanh(x).
class Tanh : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

// Elementwise logistic sigmoid.
class Sigmoid : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "Sigmoid"; }

 private:
  Tensor cached_output_;
};

}  // namespace fedcross::nn

#endif  // FEDCROSS_NN_ACTIVATIONS_H_
