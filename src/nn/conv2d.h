#ifndef FEDCROSS_NN_CONV2D_H_
#define FEDCROSS_NN_CONV2D_H_

#include <string>
#include <vector>

#include "nn/layer.h"
#include "util/rng.h"

namespace fedcross::nn {

// 2-d convolution via im2col + GEMM.
// input:  [batch, in_channels, height, width]
// weight: [out_channels, in_channels * kernel * kernel]
// bias:   [out_channels]
// output: [batch, out_channels, out_h, out_w]
class Conv2d : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int stride, int pad,
         util::Rng& rng);

  const Tensor& Forward(const Tensor& input, bool train) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  void CollectParams(std::vector<Param*>& out) override;
  std::string Name() const override { return "Conv2d"; }

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }
  int stride() const { return stride_; }
  int pad() const { return pad_; }

  // Direct parameter access for the execution-plan runtime.
  Param& weight_param() { return weight_; }
  Param& bias_param() { return bias_; }

 private:
  int in_channels_;
  int out_channels_;
  int kernel_;
  int stride_;
  int pad_;
  Param weight_;
  Param bias_;
  // Cached per-image im2col matrices from the last Forward (one per batch
  // element), plus the input spatial geometry. Both this and the backward
  // dColumns scratch are reused across steps instead of reallocated.
  std::vector<Tensor> cached_columns_;
  Tensor grad_columns_;
  Tensor output_;
  Tensor grad_input_;
  int cached_height_ = 0;
  int cached_width_ = 0;
};

}  // namespace fedcross::nn

#endif  // FEDCROSS_NN_CONV2D_H_
