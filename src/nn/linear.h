#ifndef FEDCROSS_NN_LINEAR_H_
#define FEDCROSS_NN_LINEAR_H_

#include <string>
#include <vector>

#include "nn/layer.h"
#include "util/rng.h"

namespace fedcross::nn {

// Fully-connected layer: output = input * W + b.
// input:  [batch, in_features]
// W:      [in_features, out_features]
// b:      [out_features]
// output: [batch, out_features]
class Linear : public Layer {
 public:
  Linear(int in_features, int out_features, util::Rng& rng);

  const Tensor& Forward(const Tensor& input, bool train) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  void CollectParams(std::vector<Param*>& out) override;
  std::string Name() const override { return "Linear"; }

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

  // Direct parameter access for the execution-plan runtime.
  Param& weight_param() { return weight_; }
  Param& bias_param() { return bias_; }

 private:
  int in_features_;
  int out_features_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
  Tensor output_;
  Tensor grad_input_;
};

}  // namespace fedcross::nn

#endif  // FEDCROSS_NN_LINEAR_H_
