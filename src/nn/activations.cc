#include "nn/activations.h"

#include <cmath>

namespace fedcross::nn {

Tensor Relu::Forward(const Tensor& input, bool train) {
  (void)train;
  cached_input_ = input;
  Tensor output = input;
  float* data = output.data();
  for (std::int64_t i = 0; i < output.numel(); ++i) {
    if (data[i] < 0.0f) data[i] = 0.0f;
  }
  return output;
}

Tensor Relu::Backward(const Tensor& grad_output) {
  FC_CHECK(grad_output.SameShape(cached_input_));
  Tensor grad_input = grad_output;
  float* grad = grad_input.data();
  const float* input = cached_input_.data();
  for (std::int64_t i = 0; i < grad_input.numel(); ++i) {
    if (input[i] <= 0.0f) grad[i] = 0.0f;
  }
  return grad_input;
}

Tensor Tanh::Forward(const Tensor& input, bool train) {
  (void)train;
  Tensor output = input;
  float* data = output.data();
  for (std::int64_t i = 0; i < output.numel(); ++i) data[i] = std::tanh(data[i]);
  cached_output_ = output;
  return output;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  FC_CHECK(grad_output.SameShape(cached_output_));
  Tensor grad_input = grad_output;
  float* grad = grad_input.data();
  const float* out = cached_output_.data();
  for (std::int64_t i = 0; i < grad_input.numel(); ++i) {
    grad[i] *= 1.0f - out[i] * out[i];
  }
  return grad_input;
}

Tensor Sigmoid::Forward(const Tensor& input, bool train) {
  (void)train;
  Tensor output = input;
  float* data = output.data();
  for (std::int64_t i = 0; i < output.numel(); ++i) {
    data[i] = 1.0f / (1.0f + std::exp(-data[i]));
  }
  cached_output_ = output;
  return output;
}

Tensor Sigmoid::Backward(const Tensor& grad_output) {
  FC_CHECK(grad_output.SameShape(cached_output_));
  Tensor grad_input = grad_output;
  float* grad = grad_input.data();
  const float* out = cached_output_.data();
  for (std::int64_t i = 0; i < grad_input.numel(); ++i) {
    grad[i] *= out[i] * (1.0f - out[i]);
  }
  return grad_input;
}

}  // namespace fedcross::nn
