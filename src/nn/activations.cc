#include "nn/activations.h"

#include <cmath>

namespace fedcross::nn {

const Tensor& Relu::Forward(const Tensor& input, bool train) {
  (void)train;
  output_ = input;  // capacity-reusing copy
  float* data = output_.data();
  for (std::int64_t i = 0; i < output_.numel(); ++i) {
    if (data[i] < 0.0f) data[i] = 0.0f;
  }
  return output_;
}

const Tensor& Relu::Backward(const Tensor& grad_output) {
  FC_CHECK(grad_output.SameShape(output_));
  grad_input_ = grad_output;
  float* grad = grad_input_.data();
  const float* out = output_.data();
  // out[i] <= 0 exactly when the forward input was <= 0 (ReLU maps
  // positives to themselves and everything else to 0).
  for (std::int64_t i = 0; i < grad_input_.numel(); ++i) {
    if (out[i] <= 0.0f) grad[i] = 0.0f;
  }
  return grad_input_;
}

const Tensor& Tanh::Forward(const Tensor& input, bool train) {
  (void)train;
  output_ = input;
  float* data = output_.data();
  for (std::int64_t i = 0; i < output_.numel(); ++i) data[i] = std::tanh(data[i]);
  return output_;
}

const Tensor& Tanh::Backward(const Tensor& grad_output) {
  FC_CHECK(grad_output.SameShape(output_));
  grad_input_ = grad_output;
  float* grad = grad_input_.data();
  const float* out = output_.data();
  for (std::int64_t i = 0; i < grad_input_.numel(); ++i) {
    grad[i] *= 1.0f - out[i] * out[i];
  }
  return grad_input_;
}

const Tensor& Sigmoid::Forward(const Tensor& input, bool train) {
  (void)train;
  output_ = input;
  float* data = output_.data();
  for (std::int64_t i = 0; i < output_.numel(); ++i) {
    data[i] = 1.0f / (1.0f + std::exp(-data[i]));
  }
  return output_;
}

const Tensor& Sigmoid::Backward(const Tensor& grad_output) {
  FC_CHECK(grad_output.SameShape(output_));
  grad_input_ = grad_output;
  float* grad = grad_input_.data();
  const float* out = output_.data();
  for (std::int64_t i = 0; i < grad_input_.numel(); ++i) {
    grad[i] *= out[i] * (1.0f - out[i]);
  }
  return grad_input_;
}

}  // namespace fedcross::nn
