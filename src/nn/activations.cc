#include "nn/activations.h"

#include "nn/kernels.h"

namespace fedcross::nn {

// The arithmetic lives in nn/kernels.cc so the execution-plan runtime and
// this layer path share one compiled loop per op (bit-identical results).

const Tensor& Relu::Forward(const Tensor& input, bool train) {
  (void)train;
  output_.ResizeTo(input.shape());
  kernels::ReluForward(input.data(), output_.data(), output_.numel());
  return output_;
}

const Tensor& Relu::Backward(const Tensor& grad_output) {
  FC_CHECK(grad_output.SameShape(output_));
  grad_input_.ResizeTo(grad_output.shape());
  kernels::ReluBackward(output_.data(), grad_output.data(),
                        grad_input_.data(), grad_input_.numel());
  return grad_input_;
}

const Tensor& Tanh::Forward(const Tensor& input, bool train) {
  (void)train;
  output_.ResizeTo(input.shape());
  kernels::TanhForward(input.data(), output_.data(), output_.numel());
  return output_;
}

const Tensor& Tanh::Backward(const Tensor& grad_output) {
  FC_CHECK(grad_output.SameShape(output_));
  grad_input_.ResizeTo(grad_output.shape());
  kernels::TanhBackward(output_.data(), grad_output.data(),
                        grad_input_.data(), grad_input_.numel());
  return grad_input_;
}

const Tensor& Sigmoid::Forward(const Tensor& input, bool train) {
  (void)train;
  output_.ResizeTo(input.shape());
  kernels::SigmoidForward(input.data(), output_.data(), output_.numel());
  return output_;
}

const Tensor& Sigmoid::Backward(const Tensor& grad_output) {
  FC_CHECK(grad_output.SameShape(output_));
  grad_input_.ResizeTo(grad_output.shape());
  kernels::SigmoidBackward(output_.data(), grad_output.data(),
                           grad_input_.data(), grad_input_.numel());
  return grad_input_;
}

}  // namespace fedcross::nn
