#include "nn/plan.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/flatten.h"
#include "nn/kernels.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/norm.h"
#include "nn/pooling.h"
#include "nn/residual.h"
#include "obs/metrics.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace fedcross::nn::plan {
namespace {

std::int64_t NumelOf(const Tensor::Shape& shape) {
  std::int64_t n = 1;
  for (int d : shape) n *= d;
  return n;
}

// Counts capacity growth across ALL executor scratch (grouped instance
// tables, staging slots) so the steady-state test can pin it at zero.
std::atomic<std::int64_t> g_scratch_reallocs{0};

// Process-wide logical arena bytes across live PlanStates, mirrored to the
// fl.pool.arena_bytes gauge by Bind() and ~PlanState().
std::atomic<std::int64_t> g_arena_bytes{0};

void AccountArenaBytes(std::int64_t delta) {
  std::int64_t now =
      g_arena_bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
  obs::MetricsRegistry::Global()
      .GetGauge("fl.pool.arena_bytes")
      .Set(static_cast<double>(now));
}

// Scratch for the per-op GemmGrouped instance table. Thread-local so
// concurrent plan runners never share it; capacity is retained, so the
// steady state allocates nothing.
std::vector<ops::GemmGroup>& GroupScratch(int count) {
  thread_local std::vector<ops::GemmGroup> groups;
  if (static_cast<int>(groups.capacity()) < count) {
    g_scratch_reallocs.fetch_add(1, std::memory_order_relaxed);
  }
  groups.resize(count);
  return groups;
}

// Same, for the fused cross-replica conv-forward instance table.
std::vector<ops::ConvGroup>& ConvScratch(int count) {
  thread_local std::vector<ops::ConvGroup> groups;
  if (static_cast<int>(groups.capacity()) < count) {
    g_scratch_reallocs.fetch_add(1, std::memory_order_relaxed);
  }
  groups.resize(count);
  return groups;
}

float* Resolve(PlanState& state, const BatchRef& batch, Ref ref) {
  switch (ref.space) {
    case Ref::Space::kArena:
      return state.arena.data() + ref.offset;
    case Ref::Space::kInput:
      // The input is only ever read (skip_dx guarantees no gradient is
      // written back into it); const_cast keeps Resolve's signature single.
      return const_cast<float*>(batch.features + ref.offset);
    case Ref::Space::kNone:
      break;
  }
  return nullptr;
}

// ---- bf16 staging -----------------------------------------------------------
// In bf16 mode every op computes in fp32 on thread-local staged views of the
// packed arena: StageIn unpacks an operand, StageOut hands out a write view,
// StageFlush rounds the view back (RNE) into the arena. In fp32 mode all
// three degenerate to Resolve()/no-op, so the fp32 path touches the same
// bytes it always did. A slot holds one operand role for all `count`
// replicas (replica r's view at offset r*n; r == 0 sizes the slot), so the
// staged values — and therefore the packed results — are independent of how
// replicas were grouped, which keeps bf16 runs --fl_threads-invariant.

constexpr int kStageSlots = 16;

struct StageBuf {
  std::vector<float> data;
  std::int64_t n = 0;  // per-replica element count of the current role
};

float* SlotPtr(int slot, std::int64_t n, int r, int count) {
  thread_local StageBuf bufs[kStageSlots];
  FC_CHECK_GE(slot, 0);
  FC_CHECK_LT(slot, kStageSlots);
  StageBuf& b = bufs[slot];
  if (r == 0) {
    std::size_t need = static_cast<std::size_t>(n) * count;
    if (b.data.capacity() < need) {
      g_scratch_reallocs.fetch_add(1, std::memory_order_relaxed);
    }
    if (b.data.size() < need) b.data.resize(need);
    b.n = n;
  }
  FC_CHECK_EQ(b.n, n);
  return b.data.data() + static_cast<std::int64_t>(r) * n;
}

// Read view of `ref` for replica r: unpacks bf16 arena refs into `slot`;
// fp32 mode and kInput refs pass through untouched.
float* StageIn(int slot, PlanState& st, const BatchRef& batch, Ref ref,
               std::int64_t n, int r, int count) {
  if (!st.bf16 || ref.space != Ref::Space::kArena) {
    return Resolve(st, batch, ref);
  }
  float* dst = SlotPtr(slot, n, r, count);
  kernels::UnpackBf16(st.arena16.data() + ref.offset, dst, n);
  return dst;
}

// Write view of `ref` for replica r — same addressing as StageIn but no
// unpack. Also the idempotent re-derive: once an operand is staged, calling
// StageOut with the same (slot, n, r) returns the same pointer.
float* StageOut(int slot, PlanState& st, const BatchRef& batch, Ref ref,
                std::int64_t n, int r, int count) {
  if (!st.bf16 || ref.space != Ref::Space::kArena) {
    return Resolve(st, batch, ref);
  }
  return SlotPtr(slot, n, r, count);
}

// Rounds replica r's staged view back into the bf16 arena. No-op in fp32
// mode (the op already wrote the arena directly).
void StageFlush(int slot, PlanState& st, Ref ref, std::int64_t n, int r,
                int count) {
  if (!st.bf16 || ref.space != Ref::Space::kArena) return;
  kernels::PackBf16(SlotPtr(slot, n, r, count),
                    st.arena16.data() + ref.offset, n);
}

// Plain fp32 compute scratch in both modes (LSTM step workspaces).
float* ScratchSlot(int slot, std::int64_t n, int r, int count) {
  return SlotPtr(slot, n, r, count);
}

// A window into an arena slab: the ref `base.offset + delta`.
Ref Window(Ref base, std::int64_t delta) {
  FC_CHECK(base.space == Ref::Space::kArena);
  return Ref{Ref::Space::kArena, base.offset + delta};
}

}  // namespace

namespace testing {
std::int64_t ScratchReallocEvents() {
  return g_scratch_reallocs.load(std::memory_order_relaxed);
}
}  // namespace testing

std::optional<Program> Program::Compile(Sequential& model,
                                        const Tensor::Shape& input_shape) {
  FC_CHECK_GE(static_cast<int>(input_shape.size()), 2);
  Program p;
  p.input_shape = input_shape;
  p.batch = input_shape[0];
  p.input_floats = NumelOf(input_shape);
  FC_CHECK_GT(p.batch, 0);

  auto alloc = [&p](std::int64_t n) {
    Ref ref{Ref::Space::kArena, p.arena_floats};
    p.arena_floats += n;
    return ref;
  };

  // Geometry + scratch for a conv step (shared by the straight-line branch
  // and the residual lowering). Leaves y/dy for the caller.
  auto make_conv = [&](int layer_idx, int sub, Conv2d* conv,
                       const Tensor::Shape& in, Ref x, Ref dx) {
    Op op;
    op.kind = OpKind::kConv;
    op.layer = layer_idx;
    op.sub = sub;
    op.x = x;
    op.dx = dx;
    op.skip_dx = dx.space == Ref::Space::kNone;
    op.batch = in[0];
    op.channels = in[1];
    op.height = in[2];
    op.width = in[3];
    op.out_channels = conv->out_channels();
    op.kernel = conv->kernel();
    op.stride = conv->stride();
    op.pad = conv->pad();
    op.out_h = ops::ConvOutSize(op.height, op.kernel, op.stride, op.pad);
    op.out_w = ops::ConvOutSize(op.width, op.kernel, op.stride, op.pad);
    std::int64_t patch =
        static_cast<std::int64_t>(op.channels) * op.kernel * op.kernel;
    std::int64_t out_area = static_cast<std::int64_t>(op.out_h) * op.out_w;
    op.s0 = alloc(op.batch * patch * out_area);  // im2col, kept for backward
    if (!op.skip_dx) op.s1 = alloc(patch * out_area);  // dColumns, per image
    return op;
  };

  // Geometry + scratch for a groupnorm step. dx must be a real buffer
  // (dgamma/dbeta ride on the backward kernel); callers that would skip it
  // allocate one.
  auto make_gn = [&](int layer_idx, int sub, GroupNorm* gn,
                     const Tensor::Shape& in, Ref x, Ref dx) {
    Op op;
    op.kind = OpKind::kGroupNorm;
    op.layer = layer_idx;
    op.sub = sub;
    op.x = x;
    op.dx = dx;
    op.skip_dx = false;
    op.batch = in[0];
    op.channels = in[1];
    op.height = in[2];
    op.width = in[3];
    op.groups = gn->groups();
    op.eps = gn->eps();
    op.numel = NumelOf(in);
    op.s0 = alloc(op.numel);                                          // xhat
    op.s1 = alloc(static_cast<std::int64_t>(op.batch) * op.groups);   // inv_std
    return op;
  };

  Tensor::Shape shape = input_shape;  // current activation shape
  Ref cur{Ref::Space::kInput, 0};
  Ref cur_grad;  // kNone until the first compute op

  for (int i = 0; i < model.num_layers(); ++i) {
    Layer* layer = model.layer(i);
    Op op;
    op.layer = i;
    op.x = cur;
    op.dx = cur_grad;
    op.skip_dx = cur_grad.space == Ref::Space::kNone;

    if (auto* lin = dynamic_cast<Linear*>(layer)) {
      if (shape.size() != 2 || shape[1] != lin->in_features()) return std::nullopt;
      op.kind = OpKind::kLinear;
      op.batch = shape[0];
      op.cols_in = lin->in_features();
      op.cols_out = lin->out_features();
      shape = {op.batch, op.cols_out};
    } else if (auto* conv = dynamic_cast<Conv2d*>(layer)) {
      if (shape.size() != 4 || shape[1] != conv->in_channels()) return std::nullopt;
      op = make_conv(i, -1, conv, shape, cur, cur_grad);
      shape = {op.batch, op.out_channels, op.out_h, op.out_w};
    } else if (dynamic_cast<Relu*>(layer) != nullptr) {
      op.kind = OpKind::kRelu;
      op.numel = NumelOf(shape);
    } else if (dynamic_cast<Tanh*>(layer) != nullptr) {
      op.kind = OpKind::kTanh;
      op.numel = NumelOf(shape);
    } else if (dynamic_cast<Sigmoid*>(layer) != nullptr) {
      op.kind = OpKind::kSigmoid;
      op.numel = NumelOf(shape);
    } else if (auto* drop = dynamic_cast<Dropout*>(layer)) {
      if (drop->rate() <= 0.0f) continue;  // identity under training too
      op.kind = OpKind::kDropout;
      op.numel = NumelOf(shape);
      op.rate = drop->rate();
      op.scale = 1.0f / (1.0f - drop->rate());
      op.s0 = alloc(op.numel);  // mask, kept for backward
    } else if (dynamic_cast<Flatten*>(layer) != nullptr) {
      // Metadata-only on contiguous row-major buffers: alias, no op.
      std::int64_t features = NumelOf(shape) / shape[0];
      shape = {shape[0], static_cast<int>(features)};
      continue;
    } else if (auto* pool = dynamic_cast<MaxPool2d*>(layer)) {
      if (shape.size() != 4) return std::nullopt;
      op.kind = OpKind::kMaxPool;
      op.batch = shape[0];
      op.channels = shape[1];
      op.height = shape[2];
      op.width = shape[3];
      op.kernel = pool->kernel();
      op.stride = pool->stride();
      op.out_h = ops::ConvOutSize(op.height, op.kernel, op.stride, /*pad=*/0);
      op.out_w = ops::ConvOutSize(op.width, op.kernel, op.stride, /*pad=*/0);
      op.argmax_slot = static_cast<int>(p.argmax_sizes.size());
      p.argmax_sizes.push_back(static_cast<std::int64_t>(op.batch) *
                               op.channels * op.out_h * op.out_w);
      shape = {op.batch, op.channels, op.out_h, op.out_w};
    } else if (dynamic_cast<GlobalAvgPool*>(layer) != nullptr) {
      if (shape.size() != 4) return std::nullopt;
      op.kind = OpKind::kGlobalAvgPool;
      op.batch = shape[0];
      op.channels = shape[1];
      op.height = shape[2];
      op.width = shape[3];
      shape = {op.batch, op.channels};
    } else if (auto* gn = dynamic_cast<GroupNorm*>(layer)) {
      if (shape.size() != 4 || shape[1] != gn->channels()) return std::nullopt;
      op = make_gn(i, -1, gn, shape, cur, cur_grad);
      // dgamma/dbeta always need the backward pass; give the kernel a dx
      // buffer even when the input gradient itself is unused.
      if (op.dx.space == Ref::Space::kNone) op.dx = alloc(op.numel);
    } else if (auto* block = dynamic_cast<ResidualBlock*>(layer)) {
      // Residual lowering: a short branch in the step graph.
      //   main: conv1 -> gn1 -> relu -> conv2 -> gn2 ----\
      //   skip: input, or proj_conv -> proj_gn ----------- kAdd -> relu_out
      // The two branch outputs' gradient refs BOTH alias dSum (written once
      // by relu_out's backward), so kAdd needs no backward work; the two
      // branch input gradients are merged by a trailing kAccumGrad
      // (emitted first => runs last in the reverse sweep), the same
      // kernels::Add the layer path uses.
      if (shape.size() != 4) return std::nullopt;
      auto* conv1 = dynamic_cast<Conv2d*>(block->sub_layer(ResidualBlock::kConv1));
      auto* norm1 = dynamic_cast<GroupNorm*>(block->sub_layer(ResidualBlock::kNorm1));
      auto* conv2 = dynamic_cast<Conv2d*>(block->sub_layer(ResidualBlock::kConv2));
      auto* norm2 = dynamic_cast<GroupNorm*>(block->sub_layer(ResidualBlock::kNorm2));
      if (conv1 == nullptr || norm1 == nullptr || conv2 == nullptr ||
          norm2 == nullptr || shape[1] != conv1->in_channels()) {
        return std::nullopt;
      }
      std::int64_t in_numel = NumelOf(shape);
      bool have_din = cur_grad.space != Ref::Space::kNone;

      // conv1 fixes the block's output geometry.
      Op c1 = make_conv(i, ResidualBlock::kConv1, conv1, shape, cur, cur_grad);
      Tensor::Shape out_shape = {c1.batch, c1.out_channels, c1.out_h, c1.out_w};
      std::int64_t out_numel = NumelOf(out_shape);

      Ref sum = alloc(out_numel);    // E2 + skip
      Ref dsum = alloc(out_numel);   // shared gradient of both branch outputs
      Ref out = alloc(out_numel);    // relu_out activation (block output)
      Ref dout = alloc(out_numel);
      Ref dpin;                      // projection-path input gradient
      if (block->has_projection() && have_din) dpin = alloc(in_numel);

      if (have_din) {
        Op acc;
        acc.kind = OpKind::kAccumGrad;
        acc.layer = i;
        acc.numel = in_numel;
        acc.dx = cur_grad;                                  // main-path dI
        acc.dy = block->has_projection() ? dpin : dsum;     // skip-path dI
        p.ops.push_back(acc);
      }

      c1.y = alloc(out_numel);
      c1.dy = alloc(out_numel);
      p.ops.push_back(c1);

      Op n1 = make_gn(i, ResidualBlock::kNorm1, norm1, out_shape, c1.y, c1.dy);
      if (norm1->channels() != c1.out_channels) return std::nullopt;
      n1.y = alloc(out_numel);
      n1.dy = alloc(out_numel);
      p.ops.push_back(n1);

      Op r1;
      r1.kind = OpKind::kRelu;
      r1.layer = i;
      r1.numel = out_numel;
      r1.x = n1.y;
      r1.dx = n1.dy;
      r1.y = alloc(out_numel);
      r1.dy = alloc(out_numel);
      p.ops.push_back(r1);

      if (conv2->in_channels() != c1.out_channels) return std::nullopt;
      Op c2 = make_conv(i, ResidualBlock::kConv2, conv2, out_shape, r1.y, r1.dy);
      if (c2.out_h != c1.out_h || c2.out_w != c1.out_w) return std::nullopt;
      c2.y = alloc(out_numel);
      c2.dy = alloc(out_numel);
      p.ops.push_back(c2);

      Op n2 = make_gn(i, ResidualBlock::kNorm2, norm2, out_shape, c2.y, c2.dy);
      n2.y = alloc(out_numel);
      n2.dy = dsum;  // ALIAS: main-branch output gradient IS dSum
      p.ops.push_back(n2);

      Ref skip = cur;  // identity skip by default
      if (block->has_projection()) {
        auto* pconv =
            dynamic_cast<Conv2d*>(block->sub_layer(ResidualBlock::kProjConv));
        auto* pnorm =
            dynamic_cast<GroupNorm*>(block->sub_layer(ResidualBlock::kProjNorm));
        if (pconv == nullptr || pnorm == nullptr) return std::nullopt;
        Op pc = make_conv(i, ResidualBlock::kProjConv, pconv, shape, cur, dpin);
        if (pc.out_h != c1.out_h || pc.out_w != c1.out_w ||
            pc.out_channels != c1.out_channels) {
          return std::nullopt;
        }
        pc.y = alloc(out_numel);
        pc.dy = alloc(out_numel);
        p.ops.push_back(pc);

        Op pn = make_gn(i, ResidualBlock::kProjNorm, pnorm, out_shape, pc.y,
                        pc.dy);
        pn.y = alloc(out_numel);
        pn.dy = dsum;  // ALIAS: skip-branch output gradient IS dSum
        p.ops.push_back(pn);
        skip = pn.y;
      }

      Op add;
      add.kind = OpKind::kAdd;
      add.layer = i;
      add.numel = out_numel;
      add.x = n2.y;
      add.x2 = skip;
      add.y = sum;
      add.dy = dsum;
      add.skip_dx = true;  // backward is the aliasing no-op
      p.ops.push_back(add);

      Op ro;
      ro.kind = OpKind::kRelu;
      ro.layer = i;
      ro.numel = out_numel;
      ro.x = sum;
      ro.dx = dsum;
      ro.y = out;
      ro.dy = dout;
      p.ops.push_back(ro);

      shape = out_shape;
      cur = out;
      cur_grad = dout;
      continue;
    } else if (auto* emb = dynamic_cast<Embedding*>(layer)) {
      // Only lowered as the FIRST layer: the layer path stops backprop at
      // the embedding (discrete ids), so a mid-network embedding would keep
      // accumulating parameter gradients below it in the plan while the
      // layer path would not — a divergence, so refuse and fall back.
      if (!p.ops.empty() || cur.space != Ref::Space::kInput ||
          shape.size() != 2) {
        return std::nullopt;
      }
      op.kind = OpKind::kEmbedding;
      op.batch = shape[0];
      op.time = shape[1];
      op.cols_out = emb->embed_dim();
      op.vocab = emb->vocab_size();
      op.skip_dx = true;  // token ids have no gradient
      op.dx = Ref{};
      op.argmax_slot = static_cast<int>(p.argmax_sizes.size());
      p.argmax_sizes.push_back(static_cast<std::int64_t>(op.batch) * op.time);
      shape = {op.batch, op.time, op.cols_out};
    } else if (auto* lstm = dynamic_cast<Lstm*>(layer)) {
      if (shape.size() != 3 || shape[2] != lstm->input_dim()) return std::nullopt;
      op.kind = OpKind::kLstm;
      op.batch = shape[0];
      op.time = shape[1];
      op.cols_in = lstm->input_dim();
      op.cols_out = lstm->hidden_dim();
      std::int64_t B = op.batch, T = op.time, H = op.cols_out;
      op.s0 = alloc(T * B * 4 * H);    // activated gates, one window per t
      op.s1 = alloc(T * B * H);        // cells
      op.s2 = alloc((T + 1) * B * H);  // hiddens; window 0 is h_{-1} = 0
      // The output h_T is the last hiddens window — alias it, no copy.
      op.y = Window(op.s2, T * B * H);
      op.dy = alloc(B * H);
      shape = {op.batch, static_cast<int>(H)};
      cur = op.y;
      cur_grad = op.dy;
      p.ops.push_back(op);
      continue;
    } else {
      return std::nullopt;  // BatchNorm / future layers: interpreter fallback
    }

    std::int64_t out_numel = NumelOf(shape);
    op.y = alloc(out_numel);
    op.dy = alloc(out_numel);
    cur = op.y;
    cur_grad = op.dy;
    p.ops.push_back(op);
  }

  if (p.ops.empty() || cur.space != Ref::Space::kArena) return std::nullopt;
  if (shape.size() != 2) return std::nullopt;  // loss wants [batch, classes]
  p.classes = shape[1];
  p.logits = cur;
  p.dlogits = cur_grad;
  return p;
}

PlanState::~PlanState() {
  if (accounted_bytes != 0) AccountArenaBytes(-accounted_bytes);
}

void PlanState::Bind(const Program& prog, Sequential& m, bool use_bf16) {
  program = &prog;
  model = &m;
  bf16 = use_bf16;
  FC_CHECK_GT(prog.arena_floats, 0);
  FC_CHECK_LE(prog.arena_floats, static_cast<std::int64_t>(1) << 31);
  if (use_bf16) {
    if (static_cast<std::int64_t>(arena16.size()) != prog.arena_floats) {
      arena16.resize(prog.arena_floats);
    }
  } else {
    arena.ResizeTo({static_cast<int>(prog.arena_floats)});
  }
  std::int64_t bytes = prog.arena_floats * (use_bf16 ? 2 : 4);
  if (bytes != accounted_bytes) {
    AccountArenaBytes(bytes - accounted_bytes);
    accounted_bytes = bytes;
  }
  if (argmax.size() != prog.argmax_sizes.size()) {
    argmax.resize(prog.argmax_sizes.size());
  }
  for (std::size_t i = 0; i < prog.argmax_sizes.size(); ++i) {
    if (static_cast<std::int64_t>(argmax[i].size()) != prog.argmax_sizes[i]) {
      argmax[i].resize(prog.argmax_sizes[i]);
    }
  }
  bindings.assign(prog.ops.size(), OpBinding{});
  for (std::size_t j = 0; j < prog.ops.size(); ++j) {
    const Op& op = prog.ops[j];
    Layer* layer = m.layer(op.layer);
    if (op.sub >= 0) {
      auto* block = dynamic_cast<ResidualBlock*>(layer);
      FC_CHECK(block != nullptr);
      layer = block->sub_layer(op.sub);
      FC_CHECK(layer != nullptr);
    }
    switch (op.kind) {
      case OpKind::kLinear:
        bindings[j].linear = dynamic_cast<Linear*>(layer);
        FC_CHECK(bindings[j].linear != nullptr);
        break;
      case OpKind::kConv:
        bindings[j].conv = dynamic_cast<Conv2d*>(layer);
        FC_CHECK(bindings[j].conv != nullptr);
        break;
      case OpKind::kGroupNorm:
        bindings[j].gn = dynamic_cast<GroupNorm*>(layer);
        FC_CHECK(bindings[j].gn != nullptr);
        break;
      case OpKind::kDropout:
        bindings[j].dropout = dynamic_cast<Dropout*>(layer);
        FC_CHECK(bindings[j].dropout != nullptr);
        break;
      case OpKind::kLstm:
        bindings[j].lstm = dynamic_cast<Lstm*>(layer);
        FC_CHECK(bindings[j].lstm != nullptr);
        break;
      case OpKind::kEmbedding:
        bindings[j].embedding = dynamic_cast<Embedding*>(layer);
        FC_CHECK(bindings[j].embedding != nullptr);
        break;
      default:
        break;  // paramless elementwise/pool/add ops need no binding
    }
  }
}

void ExecuteStep(const Program& p, PlanState* const* states,
                 const BatchRef* batches, int count, float* loss,
                 int* correct, const float* grad_scales) {
  FC_CHECK_GT(count, 0);

  // ---- Forward ----
  for (std::size_t j = 0; j < p.ops.size(); ++j) {
    const Op& op = p.ops[j];
    switch (op.kind) {
      case OpKind::kAccumGrad:
        break;  // backward-only
      case OpKind::kLinear: {
        auto& groups = GroupScratch(count);
        std::int64_t xn = static_cast<std::int64_t>(op.batch) * op.cols_in;
        std::int64_t yn = static_cast<std::int64_t>(op.batch) * op.cols_out;
        for (int r = 0; r < count; ++r) {
          Linear* lin = states[r]->bindings[j].linear;
          groups[r] = {StageIn(0, *states[r], batches[r], op.x, xn, r, count),
                       lin->weight_param().value.data(),
                       StageOut(1, *states[r], batches[r], op.y, yn, r, count)};
        }
        ops::GemmGrouped(false, false, op.batch, op.cols_out, op.cols_in,
                         1.0f, op.cols_in, op.cols_out, 0.0f, op.cols_out,
                         groups.data(), count);
        for (int r = 0; r < count; ++r) {
          kernels::BiasAddRows(
              StageOut(1, *states[r], batches[r], op.y, yn, r, count),
              states[r]->bindings[j].linear->bias_param().value.data(),
              op.batch, op.cols_out);
          StageFlush(1, *states[r], op.y, yn, r, count);
        }
        break;
      }
      case OpKind::kConv: {
        std::int64_t patch =
            static_cast<std::int64_t>(op.channels) * op.kernel * op.kernel;
        std::int64_t out_area = static_cast<std::int64_t>(op.out_h) * op.out_w;
        std::int64_t in_stride =
            static_cast<std::int64_t>(op.channels) * op.height * op.width;
        std::int64_t out_stride = op.out_channels * out_area;
        std::int64_t col_size = patch * out_area;
        std::int64_t xn = op.batch * in_stride;
        std::int64_t cn = op.batch * col_size;
        std::int64_t yn = op.batch * out_stride;
        for (int r = 0; r < count; ++r) {
          const float* x =
              StageIn(0, *states[r], batches[r], op.x, xn, r, count);
          float* cols =
              StageOut(1, *states[r], batches[r], op.s0, cn, r, count);
          for (int b = 0; b < op.batch; ++b) {
            ops::Im2Col(x + b * in_stride, op.channels, op.height, op.width,
                        op.kernel, op.kernel, op.stride, op.pad,
                        cols + b * col_size);
          }
        }
        // One fused cross-replica grouped conv over all images.
        auto& cgroups = ConvScratch(count);
        for (int r = 0; r < count; ++r) {
          cgroups[r] = {
              states[r]->bindings[j].conv->weight_param().value.data(),
              StageOut(1, *states[r], batches[r], op.s0, cn, r, count),
              StageOut(2, *states[r], batches[r], op.y, yn, r, count)};
        }
        ops::ConvGrouped(op.batch, op.out_channels, static_cast<int>(out_area),
                         static_cast<int>(patch), cgroups.data(), count);
        for (int r = 0; r < count; ++r) {
          kernels::ConvBiasAdd(
              StageOut(2, *states[r], batches[r], op.y, yn, r, count),
              states[r]->bindings[j].conv->bias_param().value.data(),
              op.batch, op.out_channels, static_cast<int>(out_area));
          StageFlush(1, *states[r], op.s0, cn, r, count);
          StageFlush(2, *states[r], op.y, yn, r, count);
        }
        break;
      }
      case OpKind::kRelu:
        for (int r = 0; r < count; ++r) {
          kernels::ReluForward(
              StageIn(0, *states[r], batches[r], op.x, op.numel, r, count),
              StageOut(1, *states[r], batches[r], op.y, op.numel, r, count),
              op.numel);
          StageFlush(1, *states[r], op.y, op.numel, r, count);
        }
        break;
      case OpKind::kTanh:
        for (int r = 0; r < count; ++r) {
          kernels::TanhForward(
              StageIn(0, *states[r], batches[r], op.x, op.numel, r, count),
              StageOut(1, *states[r], batches[r], op.y, op.numel, r, count),
              op.numel);
          StageFlush(1, *states[r], op.y, op.numel, r, count);
        }
        break;
      case OpKind::kSigmoid:
        for (int r = 0; r < count; ++r) {
          kernels::SigmoidForward(
              StageIn(0, *states[r], batches[r], op.x, op.numel, r, count),
              StageOut(1, *states[r], batches[r], op.y, op.numel, r, count),
              op.numel);
          StageFlush(1, *states[r], op.y, op.numel, r, count);
        }
        break;
      case OpKind::kAdd:
        for (int r = 0; r < count; ++r) {
          kernels::Add(
              StageIn(0, *states[r], batches[r], op.x, op.numel, r, count),
              StageIn(1, *states[r], batches[r], op.x2, op.numel, r, count),
              StageOut(2, *states[r], batches[r], op.y, op.numel, r, count),
              op.numel);
          StageFlush(2, *states[r], op.y, op.numel, r, count);
        }
        break;
      case OpKind::kDropout:
        for (int r = 0; r < count; ++r) {
          float* mask =
              StageOut(1, *states[r], batches[r], op.s0, op.numel, r, count);
          kernels::DropoutMask(states[r]->bindings[j].dropout->mask_rng(),
                               op.rate, op.scale, mask, op.numel);
          kernels::DropoutApply(
              StageIn(0, *states[r], batches[r], op.x, op.numel, r, count),
              mask,
              StageOut(2, *states[r], batches[r], op.y, op.numel, r, count),
              op.numel);
          StageFlush(1, *states[r], op.s0, op.numel, r, count);
          StageFlush(2, *states[r], op.y, op.numel, r, count);
        }
        break;
      case OpKind::kMaxPool: {
        std::int64_t yn = static_cast<std::int64_t>(op.batch) * op.channels *
                          op.out_h * op.out_w;
        std::int64_t xn = static_cast<std::int64_t>(op.batch) * op.channels *
                          op.height * op.width;
        for (int r = 0; r < count; ++r) {
          kernels::MaxPoolForward(
              StageIn(0, *states[r], batches[r], op.x, xn, r, count),
              StageOut(1, *states[r], batches[r], op.y, yn, r, count),
              states[r]->argmax[op.argmax_slot].data(), op.batch, op.channels,
              op.height, op.width, op.out_h, op.out_w, op.kernel, op.stride);
          StageFlush(1, *states[r], op.y, yn, r, count);
        }
        break;
      }
      case OpKind::kGlobalAvgPool: {
        std::int64_t xn = static_cast<std::int64_t>(op.batch) * op.channels *
                          op.height * op.width;
        std::int64_t yn = static_cast<std::int64_t>(op.batch) * op.channels;
        for (int r = 0; r < count; ++r) {
          kernels::GlobalAvgPoolForward(
              StageIn(0, *states[r], batches[r], op.x, xn, r, count),
              StageOut(1, *states[r], batches[r], op.y, yn, r, count),
              op.batch, op.channels, op.height * op.width);
          StageFlush(1, *states[r], op.y, yn, r, count);
        }
        break;
      }
      case OpKind::kGroupNorm: {
        std::int64_t sn = static_cast<std::int64_t>(op.batch) * op.groups;
        for (int r = 0; r < count; ++r) {
          GroupNorm* gn = states[r]->bindings[j].gn;
          kernels::GroupNormForward(
              StageIn(0, *states[r], batches[r], op.x, op.numel, r, count),
              StageOut(1, *states[r], batches[r], op.y, op.numel, r, count),
              StageOut(2, *states[r], batches[r], op.s0, op.numel, r, count),
              StageOut(3, *states[r], batches[r], op.s1, sn, r, count),
              gn->gamma_param().value.data(), gn->beta_param().value.data(),
              op.batch, op.channels, op.groups, op.height * op.width, op.eps);
          StageFlush(1, *states[r], op.y, op.numel, r, count);
          StageFlush(2, *states[r], op.s0, op.numel, r, count);
          StageFlush(3, *states[r], op.s1, sn, r, count);
        }
        break;
      }
      case OpKind::kEmbedding: {
        std::int64_t tokens = static_cast<std::int64_t>(op.batch) * op.time;
        std::int64_t yn = tokens * op.cols_out;
        for (int r = 0; r < count; ++r) {
          kernels::EmbeddingGather(
              batches[r].features + op.x.offset, tokens, op.vocab,
              states[r]->bindings[j].embedding->table_param().value.data(),
              op.cols_out, states[r]->argmax[op.argmax_slot].data(),
              StageOut(0, *states[r], batches[r], op.y, yn, r, count));
          StageFlush(0, *states[r], op.y, yn, r, count);
        }
        break;
      }
      case OpKind::kLstm: {
        const int B = op.batch, T = op.time, E = op.cols_in, H = op.cols_out;
        const int H4 = 4 * H;
        std::int64_t xn = static_cast<std::int64_t>(B) * T * E;
        std::int64_t zn = static_cast<std::int64_t>(B) * H4;
        std::int64_t hn = static_cast<std::int64_t>(B) * H;
        // Replica-outer, timestep-inner: the gate GEMMs are wider than the
        // interleaved grouped kernel's lane width (n = 4H), so fusing them
        // across replicas never engages the fast path — walking one replica
        // through all T steps instead keeps its weights and slabs hot, like
        // the layer path. Each standalone ops::Gemm is bit-identical to the
        // grouped instance by the GemmGrouped contract, so this ordering is
        // a pure locality win.
        for (int r = 0; r < count; ++r) {
          Lstm* lstm = states[r]->bindings[j].lstm;
          const float* wx = lstm->weight_x_param().value.data();
          const float* wh = lstm->weight_h_param().value.data();
          const float* bias = lstm->bias_param().value.data();
          // h_{-1} = 0 (hiddens window 0), exactly like the layer path's
          // hiddens_[0].Fill(0) — a pure store, done straight in the arena.
          if (states[r]->bf16) {
            std::memset(states[r]->arena16.data() + op.s2.offset, 0,
                        static_cast<std::size_t>(hn) * sizeof(std::uint16_t));
          } else {
            float* h0 = Resolve(*states[r], batches[r], op.s2);
            std::fill(h0, h0 + hn, 0.0f);
          }
          // Stage the whole input once (slot 0); timestep slices are
          // gathered from it below, same pure copy the layer performs.
          const float* x =
              StageIn(0, *states[r], batches[r], op.x, xn, r, count);
          for (int t = 0; t < T; ++t) {
            float* xt = ScratchSlot(6, static_cast<std::int64_t>(B) * E, r,
                                    count);
            for (int b = 0; b < B; ++b) {
              const float* src =
                  x + (static_cast<std::int64_t>(b) * T + t) * E;
              float* dst = xt + static_cast<std::int64_t>(b) * E;
              for (int d = 0; d < E; ++d) dst[d] = src[d];
            }
            Ref gate_w = Window(op.s0, static_cast<std::int64_t>(t) * zn);
            Ref cell_w = Window(op.s1, static_cast<std::int64_t>(t) * hn);
            Ref hid_w = Window(op.s2, static_cast<std::int64_t>(t + 1) * hn);
            // z = x_t Wx  (beta 0 overwrites the gate window)
            float* z =
                StageOut(1, *states[r], batches[r], gate_w, zn, r, count);
            ops::Gemm(false, false, B, H4, E, 1.0f, xt, E, wx, H4, 0.0f, z,
                      H4);
            // z += h_{t-1} Wh
            const float* h_prev =
                StageIn(2, *states[r], batches[r],
                        Window(op.s2, static_cast<std::int64_t>(t) * hn), hn,
                        r, count);
            ops::Gemm(false, false, B, H4, H, 1.0f, h_prev, H, wh, H4, 1.0f,
                      z, H4);
            // bias, fused gate activation + state update; then round the
            // activated gates / cell / hidden windows into the arena.
            kernels::BiasAddRows(z, bias, B, H4);
            const float* c_prev =
                t > 0 ? StageIn(3, *states[r], batches[r],
                                Window(op.s1,
                                       static_cast<std::int64_t>(t - 1) * hn),
                                hn, r, count)
                      : nullptr;
            float* c =
                StageOut(4, *states[r], batches[r], cell_w, hn, r, count);
            float* h =
                StageOut(5, *states[r], batches[r], hid_w, hn, r, count);
            kernels::LstmGateForward(z, c_prev, c, h, B, H);
            StageFlush(1, *states[r], gate_w, zn, r, count);
            StageFlush(4, *states[r], cell_w, hn, r, count);
            StageFlush(5, *states[r], hid_w, hn, r, count);
          }
        }
        break;
      }
    }
  }

  // ---- Loss (softmax cross-entropy, grad written into dlogits) ----
  {
    std::int64_t n = static_cast<std::int64_t>(p.batch) * p.classes;
    for (int r = 0; r < count; ++r) {
      float* dlogits =
          StageOut(0, *states[r], batches[r], p.dlogits, n, r, count);
      if (states[r]->bf16) {
        // The unpack doubles as the logits -> dlogits copy.
        kernels::UnpackBf16(states[r]->arena16.data() + p.logits.offset,
                            dlogits, n);
      } else {
        std::memcpy(dlogits, Resolve(*states[r], batches[r], p.logits),
                    static_cast<std::size_t>(n) * sizeof(float));
      }
      kernels::CrossEntropyInPlace(dlogits, p.batch, p.classes,
                                   batches[r].labels, /*compute_grad=*/true,
                                   &loss[r], &correct[r]);
      if (grad_scales != nullptr && grad_scales[r] != 1.0f) {
        for (std::int64_t i = 0; i < n; ++i) dlogits[i] *= grad_scales[r];
      }
      StageFlush(0, *states[r], p.dlogits, n, r, count);
    }
  }

  // ---- Backward ----
  for (std::size_t idx = p.ops.size(); idx-- > 0;) {
    const Op& op = p.ops[idx];
    std::size_t j = idx;
    switch (op.kind) {
      case OpKind::kAdd:
        break;  // both branch dy refs alias this op's dy: nothing to move
      case OpKind::kAccumGrad:
        // dx += dy — the residual skip-gradient merge, same kernels::Add the
        // layer path uses (and the same operand order).
        for (int r = 0; r < count; ++r) {
          float* dx =
              StageIn(0, *states[r], batches[r], op.dx, op.numel, r, count);
          kernels::Add(
              dx,
              StageIn(1, *states[r], batches[r], op.dy, op.numel, r, count),
              dx, op.numel);
          StageFlush(0, *states[r], op.dx, op.numel, r, count);
        }
        break;
      case OpKind::kLinear: {
        auto& groups = GroupScratch(count);
        std::int64_t xn = static_cast<std::int64_t>(op.batch) * op.cols_in;
        std::int64_t yn = static_cast<std::int64_t>(op.batch) * op.cols_out;
        // dW += X^T * dY
        for (int r = 0; r < count; ++r) {
          groups[r] = {
              StageIn(0, *states[r], batches[r], op.x, xn, r, count),
              StageIn(1, *states[r], batches[r], op.dy, yn, r, count),
              states[r]->bindings[j].linear->weight_param().grad.data()};
        }
        ops::GemmGrouped(true, false, op.cols_in, op.cols_out, op.batch, 1.0f,
                         op.cols_in, op.cols_out, 1.0f, op.cols_out,
                         groups.data(), count);
        // db += column sums of dY
        for (int r = 0; r < count; ++r) {
          kernels::BiasGradRows(
              StageOut(1, *states[r], batches[r], op.dy, yn, r, count),
              states[r]->bindings[j].linear->bias_param().grad.data(),
              op.batch, op.cols_out);
        }
        // dX = dY * W^T — skipped for the first layer (nothing reads it)
        if (!op.skip_dx) {
          for (int r = 0; r < count; ++r) {
            groups[r] = {
                StageOut(1, *states[r], batches[r], op.dy, yn, r, count),
                states[r]->bindings[j].linear->weight_param().value.data(),
                StageOut(2, *states[r], batches[r], op.dx, xn, r, count)};
          }
          ops::GemmGrouped(false, true, op.batch, op.cols_in, op.cols_out,
                           1.0f, op.cols_out, op.cols_out, 0.0f, op.cols_in,
                           groups.data(), count);
          for (int r = 0; r < count; ++r) {
            StageFlush(2, *states[r], op.dx, xn, r, count);
          }
        }
        break;
      }
      case OpKind::kConv: {
        std::int64_t patch =
            static_cast<std::int64_t>(op.channels) * op.kernel * op.kernel;
        std::int64_t out_area = static_cast<std::int64_t>(op.out_h) * op.out_w;
        std::int64_t in_stride =
            static_cast<std::int64_t>(op.channels) * op.height * op.width;
        std::int64_t out_stride = op.out_channels * out_area;
        std::int64_t col_size = patch * out_area;
        std::int64_t xn = op.batch * in_stride;
        std::int64_t cn = op.batch * col_size;
        std::int64_t yn = op.batch * out_stride;
        for (int r = 0; r < count; ++r) {
          StageIn(0, *states[r], batches[r], op.dy, yn, r, count);
          StageIn(1, *states[r], batches[r], op.s0, cn, r, count);
          if (!op.skip_dx) {
            float* dx =
                StageOut(2, *states[r], batches[r], op.dx, xn, r, count);
            std::fill(dx, dx + xn, 0.0f);
          }
        }
        auto& groups = GroupScratch(count);
        for (int b = 0; b < op.batch; ++b) {
          // dW += dY_b * columns_b^T
          for (int r = 0; r < count; ++r) {
            groups[r] = {
                StageOut(0, *states[r], batches[r], op.dy, yn, r, count) +
                    b * out_stride,
                StageOut(1, *states[r], batches[r], op.s0, cn, r, count) +
                    b * col_size,
                states[r]->bindings[j].conv->weight_param().grad.data()};
          }
          ops::GemmGrouped(false, true, op.out_channels,
                           static_cast<int>(patch),
                           static_cast<int>(out_area), 1.0f,
                           static_cast<int>(out_area),
                           static_cast<int>(out_area), 1.0f,
                           static_cast<int>(patch), groups.data(), count);
          // db += spatial sums of dY_b
          for (int r = 0; r < count; ++r) {
            kernels::ConvBiasGradImage(
                StageOut(0, *states[r], batches[r], op.dy, yn, r, count) +
                    b * out_stride,
                states[r]->bindings[j].conv->bias_param().grad.data(),
                op.out_channels, static_cast<int>(out_area));
          }
          if (!op.skip_dx) {
            // dColumns = W^T * dY_b, scattered back by Col2Im. In bf16 mode
            // the dColumns buffer is staged-only scratch (never flushed).
            for (int r = 0; r < count; ++r) {
              groups[r] = {
                  states[r]->bindings[j].conv->weight_param().value.data(),
                  StageOut(0, *states[r], batches[r], op.dy, yn, r, count) +
                      b * out_stride,
                  StageOut(3, *states[r], batches[r], op.s1, col_size, r,
                           count)};
            }
            ops::GemmGrouped(true, false, static_cast<int>(patch),
                             static_cast<int>(out_area), op.out_channels,
                             1.0f, static_cast<int>(patch),
                             static_cast<int>(out_area), 0.0f,
                             static_cast<int>(out_area), groups.data(),
                             count);
            for (int r = 0; r < count; ++r) {
              ops::Col2Im(
                  StageOut(3, *states[r], batches[r], op.s1, col_size, r,
                           count),
                  op.channels, op.height, op.width, op.kernel, op.kernel,
                  op.stride, op.pad,
                  StageOut(2, *states[r], batches[r], op.dx, xn, r, count) +
                      b * in_stride);
            }
          }
        }
        if (!op.skip_dx) {
          for (int r = 0; r < count; ++r) {
            StageFlush(2, *states[r], op.dx, xn, r, count);
          }
        }
        break;
      }
      case OpKind::kRelu:
        if (op.skip_dx) break;
        for (int r = 0; r < count; ++r) {
          kernels::ReluBackward(
              StageIn(0, *states[r], batches[r], op.y, op.numel, r, count),
              StageIn(1, *states[r], batches[r], op.dy, op.numel, r, count),
              StageOut(2, *states[r], batches[r], op.dx, op.numel, r, count),
              op.numel);
          StageFlush(2, *states[r], op.dx, op.numel, r, count);
        }
        break;
      case OpKind::kTanh:
        if (op.skip_dx) break;
        for (int r = 0; r < count; ++r) {
          kernels::TanhBackward(
              StageIn(0, *states[r], batches[r], op.y, op.numel, r, count),
              StageIn(1, *states[r], batches[r], op.dy, op.numel, r, count),
              StageOut(2, *states[r], batches[r], op.dx, op.numel, r, count),
              op.numel);
          StageFlush(2, *states[r], op.dx, op.numel, r, count);
        }
        break;
      case OpKind::kSigmoid:
        if (op.skip_dx) break;
        for (int r = 0; r < count; ++r) {
          kernels::SigmoidBackward(
              StageIn(0, *states[r], batches[r], op.y, op.numel, r, count),
              StageIn(1, *states[r], batches[r], op.dy, op.numel, r, count),
              StageOut(2, *states[r], batches[r], op.dx, op.numel, r, count),
              op.numel);
          StageFlush(2, *states[r], op.dx, op.numel, r, count);
        }
        break;
      case OpKind::kDropout:
        if (op.skip_dx) break;
        for (int r = 0; r < count; ++r) {
          kernels::DropoutApply(
              StageIn(0, *states[r], batches[r], op.dy, op.numel, r, count),
              StageIn(1, *states[r], batches[r], op.s0, op.numel, r, count),
              StageOut(2, *states[r], batches[r], op.dx, op.numel, r, count),
              op.numel);
          StageFlush(2, *states[r], op.dx, op.numel, r, count);
        }
        break;
      case OpKind::kMaxPool: {
        if (op.skip_dx) break;
        std::int64_t yn = static_cast<std::int64_t>(op.batch) * op.channels *
                          op.out_h * op.out_w;
        std::int64_t xn = static_cast<std::int64_t>(op.batch) * op.channels *
                          op.height * op.width;
        for (int r = 0; r < count; ++r) {
          kernels::MaxPoolBackward(
              StageIn(0, *states[r], batches[r], op.dy, yn, r, count),
              states[r]->argmax[op.argmax_slot].data(), yn,
              StageOut(1, *states[r], batches[r], op.dx, xn, r, count), xn);
          StageFlush(1, *states[r], op.dx, xn, r, count);
        }
        break;
      }
      case OpKind::kGlobalAvgPool: {
        if (op.skip_dx) break;
        std::int64_t yn = static_cast<std::int64_t>(op.batch) * op.channels;
        std::int64_t xn = static_cast<std::int64_t>(op.batch) * op.channels *
                          op.height * op.width;
        for (int r = 0; r < count; ++r) {
          kernels::GlobalAvgPoolBackward(
              StageIn(0, *states[r], batches[r], op.dy, yn, r, count),
              StageOut(1, *states[r], batches[r], op.dx, xn, r, count),
              op.batch, op.channels, op.height * op.width);
          StageFlush(1, *states[r], op.dx, xn, r, count);
        }
        break;
      }
      case OpKind::kGroupNorm: {
        // Never skipped: dgamma/dbeta ride on the same pass.
        std::int64_t sn = static_cast<std::int64_t>(op.batch) * op.groups;
        for (int r = 0; r < count; ++r) {
          GroupNorm* gn = states[r]->bindings[j].gn;
          kernels::GroupNormBackward(
              StageIn(0, *states[r], batches[r], op.dy, op.numel, r, count),
              StageIn(1, *states[r], batches[r], op.s0, op.numel, r, count),
              StageIn(2, *states[r], batches[r], op.s1, sn, r, count),
              gn->gamma_param().value.data(), gn->gamma_param().grad.data(),
              gn->beta_param().grad.data(),
              StageOut(3, *states[r], batches[r], op.dx, op.numel, r, count),
              op.batch, op.channels, op.groups, op.height * op.width);
          StageFlush(3, *states[r], op.dx, op.numel, r, count);
        }
        break;
      }
      case OpKind::kEmbedding: {
        // No input gradient (token ids are discrete) but the table gradient
        // always accumulates, exactly like the layer path.
        std::int64_t tokens = static_cast<std::int64_t>(op.batch) * op.time;
        std::int64_t yn = tokens * op.cols_out;
        for (int r = 0; r < count; ++r) {
          kernels::EmbeddingScatterAdd(
              states[r]->argmax[op.argmax_slot].data(), tokens,
              StageIn(0, *states[r], batches[r], op.dy, yn, r, count),
              op.cols_out,
              states[r]->bindings[j].embedding->table_param().grad.data());
        }
        break;
      }
      case OpKind::kLstm: {
        const int B = op.batch, T = op.time, E = op.cols_in, H = op.cols_out;
        const int H4 = 4 * H;
        std::int64_t xn = static_cast<std::int64_t>(B) * T * E;
        std::int64_t zn = static_cast<std::int64_t>(B) * H4;
        std::int64_t hn = static_cast<std::int64_t>(B) * H;
        std::int64_t en = static_cast<std::int64_t>(B) * E;
        // Replica-outer for the same locality reason as the forward pass:
        // the BPTT GEMMs are all wider than the interleave width, so the
        // grouped fast path never engages, and one replica's weights,
        // gradients, and slabs stay hot across the whole reverse sweep.
        for (int r = 0; r < count; ++r) {
          Lstm* lstm = states[r]->bindings[j].lstm;
          const float* wx = lstm->weight_x_param().value.data();
          const float* wh = lstm->weight_h_param().value.data();
          float* dwx = lstm->weight_x_param().grad.data();
          float* dwh = lstm->weight_h_param().grad.data();
          float* db = lstm->bias_param().grad.data();
          // Re-stage the full input (forward's slots were recycled) and the
          // full-sequence input gradient we scatter into.
          const float* x =
              StageIn(0, *states[r], batches[r], op.x, xn, r, count);
          float* gin = op.skip_dx
                           ? nullptr
                           : StageOut(1, *states[r], batches[r], op.dx, xn, r,
                                      count);
          // dh_T = this op's output gradient; dc_T = 0 (fp32 step scratch,
          // ping-ponged across timesteps below).
          const float* dy =
              StageIn(2, *states[r], batches[r], op.dy, hn, r, count);
          float* dh = ScratchSlot(8, hn, r, count);
          std::memcpy(dh, dy, static_cast<std::size_t>(hn) * sizeof(float));
          ScratchSlot(9, hn, r, count);  // dh_prev buffer
          float* dc = ScratchSlot(10, hn, r, count);
          std::fill(dc, dc + hn, 0.0f);
          int dh_slot = 8, dhp_slot = 9;
          for (int t = T - 1; t >= 0; --t) {
            Ref gate_w = Window(op.s0, static_cast<std::int64_t>(t) * zn);
            Ref cell_w = Window(op.s1, static_cast<std::int64_t>(t) * hn);
            const float* cell_prev =
                t > 0 ? StageIn(4, *states[r], batches[r],
                                Window(op.s1,
                                       static_cast<std::int64_t>(t - 1) * hn),
                                hn, r, count)
                      : nullptr;
            float* dz = ScratchSlot(11, zn, r, count);
            kernels::LstmGateBackward(
                StageIn(3, *states[r], batches[r], gate_w, zn, r, count),
                StageIn(5, *states[r], batches[r], cell_w, hn, r, count),
                cell_prev, ScratchSlot(dh_slot, hn, r, count),
                ScratchSlot(10, hn, r, count), dz, B, H);
            // Gather x_t for the weight gradient (pure copy).
            float* xt = ScratchSlot(6, en, r, count);
            for (int b = 0; b < B; ++b) {
              const float* src =
                  x + (static_cast<std::int64_t>(b) * T + t) * E;
              float* dst = xt + static_cast<std::int64_t>(b) * E;
              for (int d = 0; d < E; ++d) dst[d] = src[d];
            }
            // dWx += x_t^T dz
            ops::Gemm(true, false, E, H4, B, 1.0f, xt, E, dz, H4, 1.0f, dwx,
                      H4);
            // dWh += h_{t-1}^T dz (hiddens window t is h_{t-1})
            const float* h_prev =
                StageIn(7, *states[r], batches[r],
                        Window(op.s2, static_cast<std::int64_t>(t) * hn), hn,
                        r, count);
            ops::Gemm(true, false, H, H4, B, 1.0f, h_prev, H, dz, H4, 1.0f,
                      dwh, H4);
            // db += column sums of dz
            kernels::BiasGradRows(dz, db, B, H4);
            // dx_t = dz Wx^T, scattered back into [batch, time, input]
            if (!op.skip_dx) {
              float* dxt = ScratchSlot(12, en, r, count);
              ops::Gemm(false, true, B, E, H4, 1.0f, dz, H4, wx, H4, 0.0f,
                        dxt, E);
              for (int b = 0; b < B; ++b) {
                float* dst =
                    gin + (static_cast<std::int64_t>(b) * T + t) * E;
                const float* src = dxt + static_cast<std::int64_t>(b) * E;
                for (int d = 0; d < E; ++d) dst[d] = src[d];
              }
            }
            // dh_{t-1} = dz Wh^T
            ops::Gemm(false, true, B, H, H4, 1.0f, dz, H4, wh, H4, 0.0f,
                      ScratchSlot(dhp_slot, hn, r, count), H);
            std::swap(dh_slot, dhp_slot);  // buffers ping-pong; no allocation
          }
          if (!op.skip_dx) {
            StageFlush(1, *states[r], op.dx, xn, r, count);
          }
        }
        break;
      }
    }
  }
}

}  // namespace fedcross::nn::plan
