#include "nn/plan.h"

#include <algorithm>
#include <cstring>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/flatten.h"
#include "nn/kernels.h"
#include "nn/linear.h"
#include "nn/norm.h"
#include "nn/pooling.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace fedcross::nn::plan {
namespace {

std::int64_t NumelOf(const Tensor::Shape& shape) {
  std::int64_t n = 1;
  for (int d : shape) n *= d;
  return n;
}

// Scratch for the per-op GemmGrouped instance table. Thread-local so
// concurrent plan runners never share it; capacity is retained, so the
// steady state allocates nothing.
std::vector<ops::GemmGroup>& GroupScratch() {
  thread_local std::vector<ops::GemmGroup> groups;
  return groups;
}

float* Resolve(PlanState& state, const BatchRef& batch, Ref ref) {
  switch (ref.space) {
    case Ref::Space::kArena:
      return state.arena.data() + ref.offset;
    case Ref::Space::kInput:
      // The input is only ever read (skip_dx guarantees no gradient is
      // written back into it); const_cast keeps Resolve's signature single.
      return const_cast<float*>(batch.features + ref.offset);
    case Ref::Space::kNone:
      break;
  }
  return nullptr;
}

}  // namespace

std::optional<Program> Program::Compile(Sequential& model,
                                        const Tensor::Shape& input_shape) {
  FC_CHECK_GE(static_cast<int>(input_shape.size()), 2);
  Program p;
  p.input_shape = input_shape;
  p.batch = input_shape[0];
  p.input_floats = NumelOf(input_shape);
  FC_CHECK_GT(p.batch, 0);

  auto alloc = [&p](std::int64_t n) {
    Ref ref{Ref::Space::kArena, p.arena_floats};
    p.arena_floats += n;
    return ref;
  };

  Tensor::Shape shape = input_shape;  // current activation shape
  Ref cur{Ref::Space::kInput, 0};
  Ref cur_grad;  // kNone until the first compute op

  for (int i = 0; i < model.num_layers(); ++i) {
    Layer* layer = model.layer(i);
    Op op;
    op.layer = i;
    op.x = cur;
    op.dx = cur_grad;
    op.skip_dx = cur_grad.space == Ref::Space::kNone;

    if (auto* lin = dynamic_cast<Linear*>(layer)) {
      if (shape.size() != 2 || shape[1] != lin->in_features()) return std::nullopt;
      op.kind = OpKind::kLinear;
      op.batch = shape[0];
      op.cols_in = lin->in_features();
      op.cols_out = lin->out_features();
      shape = {op.batch, op.cols_out};
    } else if (auto* conv = dynamic_cast<Conv2d*>(layer)) {
      if (shape.size() != 4 || shape[1] != conv->in_channels()) return std::nullopt;
      op.kind = OpKind::kConv;
      op.batch = shape[0];
      op.channels = shape[1];
      op.height = shape[2];
      op.width = shape[3];
      op.out_channels = conv->out_channels();
      op.kernel = conv->kernel();
      op.stride = conv->stride();
      op.pad = conv->pad();
      op.out_h = ops::ConvOutSize(op.height, op.kernel, op.stride, op.pad);
      op.out_w = ops::ConvOutSize(op.width, op.kernel, op.stride, op.pad);
      std::int64_t patch =
          static_cast<std::int64_t>(op.channels) * op.kernel * op.kernel;
      std::int64_t out_area = static_cast<std::int64_t>(op.out_h) * op.out_w;
      op.s0 = alloc(op.batch * patch * out_area);  // im2col, kept for backward
      if (!op.skip_dx) op.s1 = alloc(patch * out_area);  // dColumns, per image
      shape = {op.batch, op.out_channels, op.out_h, op.out_w};
    } else if (dynamic_cast<Relu*>(layer) != nullptr) {
      op.kind = OpKind::kRelu;
      op.numel = NumelOf(shape);
    } else if (dynamic_cast<Tanh*>(layer) != nullptr) {
      op.kind = OpKind::kTanh;
      op.numel = NumelOf(shape);
    } else if (dynamic_cast<Sigmoid*>(layer) != nullptr) {
      op.kind = OpKind::kSigmoid;
      op.numel = NumelOf(shape);
    } else if (auto* drop = dynamic_cast<Dropout*>(layer)) {
      if (drop->rate() <= 0.0f) continue;  // identity under training too
      op.kind = OpKind::kDropout;
      op.numel = NumelOf(shape);
      op.rate = drop->rate();
      op.scale = 1.0f / (1.0f - drop->rate());
      op.s0 = alloc(op.numel);  // mask, kept for backward
    } else if (dynamic_cast<Flatten*>(layer) != nullptr) {
      // Metadata-only on contiguous row-major buffers: alias, no op.
      std::int64_t features = NumelOf(shape) / shape[0];
      shape = {shape[0], static_cast<int>(features)};
      continue;
    } else if (auto* pool = dynamic_cast<MaxPool2d*>(layer)) {
      if (shape.size() != 4) return std::nullopt;
      op.kind = OpKind::kMaxPool;
      op.batch = shape[0];
      op.channels = shape[1];
      op.height = shape[2];
      op.width = shape[3];
      op.kernel = pool->kernel();
      op.stride = pool->stride();
      op.out_h = ops::ConvOutSize(op.height, op.kernel, op.stride, /*pad=*/0);
      op.out_w = ops::ConvOutSize(op.width, op.kernel, op.stride, /*pad=*/0);
      op.argmax_slot = static_cast<int>(p.argmax_sizes.size());
      p.argmax_sizes.push_back(static_cast<std::int64_t>(op.batch) *
                               op.channels * op.out_h * op.out_w);
      shape = {op.batch, op.channels, op.out_h, op.out_w};
    } else if (dynamic_cast<GlobalAvgPool*>(layer) != nullptr) {
      if (shape.size() != 4) return std::nullopt;
      op.kind = OpKind::kGlobalAvgPool;
      op.batch = shape[0];
      op.channels = shape[1];
      op.height = shape[2];
      op.width = shape[3];
      shape = {op.batch, op.channels};
    } else if (auto* gn = dynamic_cast<GroupNorm*>(layer)) {
      if (shape.size() != 4 || shape[1] != gn->channels()) return std::nullopt;
      op.kind = OpKind::kGroupNorm;
      op.batch = shape[0];
      op.channels = shape[1];
      op.height = shape[2];
      op.width = shape[3];
      op.groups = gn->groups();
      op.eps = gn->eps();
      op.numel = NumelOf(shape);
      op.s0 = alloc(op.numel);                      // xhat
      op.s1 = alloc(static_cast<std::int64_t>(op.batch) * op.groups);  // inv_std
      // dgamma/dbeta always need the backward pass; give the kernel a dx
      // buffer even when the input gradient itself is unused.
      if (op.skip_dx) {
        op.dx = alloc(op.numel);
        op.skip_dx = false;
      }
    } else {
      return std::nullopt;  // LSTM / Residual / BatchNorm / Embedding / ...
    }

    std::int64_t out_numel = NumelOf(shape);
    op.y = alloc(out_numel);
    op.dy = alloc(out_numel);
    cur = op.y;
    cur_grad = op.dy;
    p.ops.push_back(op);
  }

  if (p.ops.empty() || cur.space != Ref::Space::kArena) return std::nullopt;
  if (shape.size() != 2) return std::nullopt;  // loss wants [batch, classes]
  p.classes = shape[1];
  p.logits = cur;
  p.dlogits = cur_grad;
  return p;
}

void PlanState::Bind(const Program& prog, Sequential& m) {
  program = &prog;
  model = &m;
  FC_CHECK_GT(prog.arena_floats, 0);
  FC_CHECK_LE(prog.arena_floats, static_cast<std::int64_t>(1) << 31);
  arena.ResizeTo({static_cast<int>(prog.arena_floats)});
  if (argmax.size() != prog.argmax_sizes.size()) {
    argmax.resize(prog.argmax_sizes.size());
  }
  for (std::size_t i = 0; i < prog.argmax_sizes.size(); ++i) {
    if (static_cast<std::int64_t>(argmax[i].size()) != prog.argmax_sizes[i]) {
      argmax[i].resize(prog.argmax_sizes[i]);
    }
  }
  bindings.assign(prog.ops.size(), OpBinding{});
  for (std::size_t j = 0; j < prog.ops.size(); ++j) {
    const Op& op = prog.ops[j];
    Layer* layer = m.layer(op.layer);
    switch (op.kind) {
      case OpKind::kLinear:
        bindings[j].linear = dynamic_cast<Linear*>(layer);
        FC_CHECK(bindings[j].linear != nullptr);
        break;
      case OpKind::kConv:
        bindings[j].conv = dynamic_cast<Conv2d*>(layer);
        FC_CHECK(bindings[j].conv != nullptr);
        break;
      case OpKind::kGroupNorm:
        bindings[j].gn = dynamic_cast<GroupNorm*>(layer);
        FC_CHECK(bindings[j].gn != nullptr);
        break;
      case OpKind::kDropout:
        bindings[j].dropout = dynamic_cast<Dropout*>(layer);
        FC_CHECK(bindings[j].dropout != nullptr);
        break;
      default:
        break;  // paramless elementwise/pool ops need no binding
    }
  }
}

void ExecuteStep(const Program& p, PlanState* const* states,
                 const BatchRef* batches, int count, float* loss,
                 int* correct, const float* grad_scales) {
  FC_CHECK_GT(count, 0);
  auto& groups = GroupScratch();

  // ---- Forward ----
  for (std::size_t j = 0; j < p.ops.size(); ++j) {
    const Op& op = p.ops[j];
    switch (op.kind) {
      case OpKind::kLinear: {
        groups.resize(count);
        for (int r = 0; r < count; ++r) {
          Linear* lin = states[r]->bindings[j].linear;
          groups[r] = {Resolve(*states[r], batches[r], op.x),
                       lin->weight_param().value.data(),
                       Resolve(*states[r], batches[r], op.y)};
        }
        ops::GemmGrouped(false, false, op.batch, op.cols_out, op.cols_in,
                         1.0f, op.cols_in, op.cols_out, 0.0f, op.cols_out,
                         groups.data(), count);
        for (int r = 0; r < count; ++r) {
          kernels::BiasAddRows(Resolve(*states[r], batches[r], op.y),
                               states[r]->bindings[j].linear->bias_param()
                                   .value.data(),
                               op.batch, op.cols_out);
        }
        break;
      }
      case OpKind::kConv: {
        int patch = op.channels * op.kernel * op.kernel;
        int out_area = op.out_h * op.out_w;
        std::int64_t in_stride =
            static_cast<std::int64_t>(op.channels) * op.height * op.width;
        std::int64_t out_stride =
            static_cast<std::int64_t>(op.out_channels) * out_area;
        std::int64_t col_size = static_cast<std::int64_t>(patch) * out_area;
        groups.resize(count);
        for (int b = 0; b < op.batch; ++b) {
          for (int r = 0; r < count; ++r) {
            ops::Im2Col(
                Resolve(*states[r], batches[r], op.x) + b * in_stride,
                op.channels, op.height, op.width, op.kernel, op.kernel,
                op.stride, op.pad,
                Resolve(*states[r], batches[r], op.s0) + b * col_size);
          }
          for (int r = 0; r < count; ++r) {
            groups[r] = {
                states[r]->bindings[j].conv->weight_param().value.data(),
                Resolve(*states[r], batches[r], op.s0) + b * col_size,
                Resolve(*states[r], batches[r], op.y) + b * out_stride};
          }
          ops::GemmGrouped(false, false, op.out_channels, out_area, patch,
                           1.0f, patch, out_area, 0.0f, out_area,
                           groups.data(), count);
        }
        for (int r = 0; r < count; ++r) {
          kernels::ConvBiasAdd(
              Resolve(*states[r], batches[r], op.y),
              states[r]->bindings[j].conv->bias_param().value.data(),
              op.batch, op.out_channels, out_area);
        }
        break;
      }
      case OpKind::kRelu:
        for (int r = 0; r < count; ++r) {
          kernels::ReluForward(Resolve(*states[r], batches[r], op.x),
                               Resolve(*states[r], batches[r], op.y),
                               op.numel);
        }
        break;
      case OpKind::kTanh:
        for (int r = 0; r < count; ++r) {
          kernels::TanhForward(Resolve(*states[r], batches[r], op.x),
                               Resolve(*states[r], batches[r], op.y),
                               op.numel);
        }
        break;
      case OpKind::kSigmoid:
        for (int r = 0; r < count; ++r) {
          kernels::SigmoidForward(Resolve(*states[r], batches[r], op.x),
                                  Resolve(*states[r], batches[r], op.y),
                                  op.numel);
        }
        break;
      case OpKind::kDropout:
        for (int r = 0; r < count; ++r) {
          float* mask = Resolve(*states[r], batches[r], op.s0);
          kernels::DropoutMask(states[r]->bindings[j].dropout->mask_rng(),
                               op.rate, op.scale, mask, op.numel);
          kernels::DropoutApply(Resolve(*states[r], batches[r], op.x), mask,
                                Resolve(*states[r], batches[r], op.y),
                                op.numel);
        }
        break;
      case OpKind::kMaxPool:
        for (int r = 0; r < count; ++r) {
          kernels::MaxPoolForward(
              Resolve(*states[r], batches[r], op.x),
              Resolve(*states[r], batches[r], op.y),
              states[r]->argmax[op.argmax_slot].data(), op.batch, op.channels,
              op.height, op.width, op.out_h, op.out_w, op.kernel, op.stride);
        }
        break;
      case OpKind::kGlobalAvgPool:
        for (int r = 0; r < count; ++r) {
          kernels::GlobalAvgPoolForward(
              Resolve(*states[r], batches[r], op.x),
              Resolve(*states[r], batches[r], op.y), op.batch, op.channels,
              op.height * op.width);
        }
        break;
      case OpKind::kGroupNorm:
        for (int r = 0; r < count; ++r) {
          GroupNorm* gn = states[r]->bindings[j].gn;
          kernels::GroupNormForward(
              Resolve(*states[r], batches[r], op.x),
              Resolve(*states[r], batches[r], op.y),
              Resolve(*states[r], batches[r], op.s0),
              Resolve(*states[r], batches[r], op.s1),
              gn->gamma_param().value.data(), gn->beta_param().value.data(),
              op.batch, op.channels, op.groups, op.height * op.width, op.eps);
        }
        break;
    }
  }

  // ---- Loss (softmax cross-entropy, grad written into dlogits) ----
  for (int r = 0; r < count; ++r) {
    float* logits = Resolve(*states[r], batches[r], p.logits);
    float* dlogits = Resolve(*states[r], batches[r], p.dlogits);
    std::memcpy(dlogits, logits,
                static_cast<std::size_t>(p.batch) * p.classes *
                    sizeof(float));
    kernels::CrossEntropyInPlace(dlogits, p.batch, p.classes,
                                 batches[r].labels, /*compute_grad=*/true,
                                 &loss[r], &correct[r]);
    if (grad_scales != nullptr && grad_scales[r] != 1.0f) {
      std::int64_t n = static_cast<std::int64_t>(p.batch) * p.classes;
      for (std::int64_t i = 0; i < n; ++i) dlogits[i] *= grad_scales[r];
    }
  }

  // ---- Backward ----
  for (std::size_t idx = p.ops.size(); idx-- > 0;) {
    const Op& op = p.ops[idx];
    std::size_t j = idx;
    switch (op.kind) {
      case OpKind::kLinear: {
        groups.resize(count);
        // dW += X^T * dY
        for (int r = 0; r < count; ++r) {
          groups[r] = {Resolve(*states[r], batches[r], op.x),
                       Resolve(*states[r], batches[r], op.dy),
                       states[r]->bindings[j].linear->weight_param()
                           .grad.data()};
        }
        ops::GemmGrouped(true, false, op.cols_in, op.cols_out, op.batch, 1.0f,
                         op.cols_in, op.cols_out, 1.0f, op.cols_out,
                         groups.data(), count);
        // db += column sums of dY
        for (int r = 0; r < count; ++r) {
          kernels::BiasGradRows(
              Resolve(*states[r], batches[r], op.dy),
              states[r]->bindings[j].linear->bias_param().grad.data(),
              op.batch, op.cols_out);
        }
        // dX = dY * W^T — skipped for the first layer (nothing reads it)
        if (!op.skip_dx) {
          for (int r = 0; r < count; ++r) {
            groups[r] = {
                Resolve(*states[r], batches[r], op.dy),
                states[r]->bindings[j].linear->weight_param().value.data(),
                Resolve(*states[r], batches[r], op.dx)};
          }
          ops::GemmGrouped(false, true, op.batch, op.cols_in, op.cols_out,
                           1.0f, op.cols_out, op.cols_out, 0.0f, op.cols_in,
                           groups.data(), count);
        }
        break;
      }
      case OpKind::kConv: {
        int patch = op.channels * op.kernel * op.kernel;
        int out_area = op.out_h * op.out_w;
        std::int64_t in_stride =
            static_cast<std::int64_t>(op.channels) * op.height * op.width;
        std::int64_t out_stride =
            static_cast<std::int64_t>(op.out_channels) * out_area;
        std::int64_t col_size = static_cast<std::int64_t>(patch) * out_area;
        if (!op.skip_dx) {
          for (int r = 0; r < count; ++r) {
            float* dx = Resolve(*states[r], batches[r], op.dx);
            std::fill(dx, dx + op.batch * in_stride, 0.0f);
          }
        }
        groups.resize(count);
        for (int b = 0; b < op.batch; ++b) {
          // dW += dY_b * columns_b^T
          for (int r = 0; r < count; ++r) {
            groups[r] = {
                Resolve(*states[r], batches[r], op.dy) + b * out_stride,
                Resolve(*states[r], batches[r], op.s0) + b * col_size,
                states[r]->bindings[j].conv->weight_param().grad.data()};
          }
          ops::GemmGrouped(false, true, op.out_channels, patch, out_area,
                           1.0f, out_area, out_area, 1.0f, patch,
                           groups.data(), count);
          // db += spatial sums of dY_b
          for (int r = 0; r < count; ++r) {
            kernels::ConvBiasGradImage(
                Resolve(*states[r], batches[r], op.dy) + b * out_stride,
                states[r]->bindings[j].conv->bias_param().grad.data(),
                op.out_channels, out_area);
          }
          if (!op.skip_dx) {
            // dColumns = W^T * dY_b, scattered back by Col2Im
            for (int r = 0; r < count; ++r) {
              groups[r] = {
                  states[r]->bindings[j].conv->weight_param().value.data(),
                  Resolve(*states[r], batches[r], op.dy) + b * out_stride,
                  Resolve(*states[r], batches[r], op.s1)};
            }
            ops::GemmGrouped(true, false, patch, out_area, op.out_channels,
                             1.0f, patch, out_area, 0.0f, out_area,
                             groups.data(), count);
            for (int r = 0; r < count; ++r) {
              ops::Col2Im(
                  Resolve(*states[r], batches[r], op.s1), op.channels,
                  op.height, op.width, op.kernel, op.kernel, op.stride,
                  op.pad,
                  Resolve(*states[r], batches[r], op.dx) + b * in_stride);
            }
          }
        }
        break;
      }
      case OpKind::kRelu:
        if (op.skip_dx) break;
        for (int r = 0; r < count; ++r) {
          kernels::ReluBackward(Resolve(*states[r], batches[r], op.y),
                                Resolve(*states[r], batches[r], op.dy),
                                Resolve(*states[r], batches[r], op.dx),
                                op.numel);
        }
        break;
      case OpKind::kTanh:
        if (op.skip_dx) break;
        for (int r = 0; r < count; ++r) {
          kernels::TanhBackward(Resolve(*states[r], batches[r], op.y),
                                Resolve(*states[r], batches[r], op.dy),
                                Resolve(*states[r], batches[r], op.dx),
                                op.numel);
        }
        break;
      case OpKind::kSigmoid:
        if (op.skip_dx) break;
        for (int r = 0; r < count; ++r) {
          kernels::SigmoidBackward(Resolve(*states[r], batches[r], op.y),
                                   Resolve(*states[r], batches[r], op.dy),
                                   Resolve(*states[r], batches[r], op.dx),
                                   op.numel);
        }
        break;
      case OpKind::kDropout:
        if (op.skip_dx) break;
        for (int r = 0; r < count; ++r) {
          kernels::DropoutApply(Resolve(*states[r], batches[r], op.dy),
                                Resolve(*states[r], batches[r], op.s0),
                                Resolve(*states[r], batches[r], op.dx),
                                op.numel);
        }
        break;
      case OpKind::kMaxPool:
        if (op.skip_dx) break;
        for (int r = 0; r < count; ++r) {
          kernels::MaxPoolBackward(
              Resolve(*states[r], batches[r], op.dy),
              states[r]->argmax[op.argmax_slot].data(),
              static_cast<std::int64_t>(op.batch) * op.channels * op.out_h *
                  op.out_w,
              Resolve(*states[r], batches[r], op.dx),
              static_cast<std::int64_t>(op.batch) * op.channels * op.height *
                  op.width);
        }
        break;
      case OpKind::kGlobalAvgPool:
        if (op.skip_dx) break;
        for (int r = 0; r < count; ++r) {
          kernels::GlobalAvgPoolBackward(
              Resolve(*states[r], batches[r], op.dy),
              Resolve(*states[r], batches[r], op.dx), op.batch, op.channels,
              op.height * op.width);
        }
        break;
      case OpKind::kGroupNorm:
        // Never skipped: dgamma/dbeta ride on the same pass.
        for (int r = 0; r < count; ++r) {
          GroupNorm* gn = states[r]->bindings[j].gn;
          kernels::GroupNormBackward(
              Resolve(*states[r], batches[r], op.dy),
              Resolve(*states[r], batches[r], op.s0),
              Resolve(*states[r], batches[r], op.s1),
              gn->gamma_param().value.data(), gn->gamma_param().grad.data(),
              gn->beta_param().grad.data(),
              Resolve(*states[r], batches[r], op.dx), op.batch, op.channels,
              op.groups, op.height * op.width);
        }
        break;
    }
  }
}

}  // namespace fedcross::nn::plan
