#ifndef FEDCROSS_NN_LOSS_H_
#define FEDCROSS_NN_LOSS_H_

#include <vector>

#include "tensor/tensor.h"

namespace fedcross::nn {

// Result of a loss evaluation on one mini-batch.
struct LossResult {
  float loss = 0.0f;       // mean loss over the batch
  int correct = 0;         // argmax matches label
  Tensor grad_logits;      // dLoss/dlogits (mean-reduced), same shape as logits
};

// Softmax cross-entropy over logits [batch, classes] with integer labels.
// The returned gradient is (softmax - onehot) / batch, ready to feed into
// Sequential::Backward.
class CrossEntropyLoss {
 public:
  // `compute_grad=false` skips the gradient (evaluation-only passes).
  LossResult Compute(const Tensor& logits, const std::vector<int>& labels,
                     bool compute_grad = true) const;
  // In-place variant: reuses `result` (in particular result.grad_logits'
  // storage) instead of allocating a fresh LossResult per batch. The
  // grad_logits tensor is used as softmax scratch even when
  // compute_grad=false, so its contents are meaningful only when
  // compute_grad=true.
  void Compute(const Tensor& logits, const std::vector<int>& labels,
               LossResult& result, bool compute_grad = true) const;
};

// Cross-entropy against an arbitrary target distribution (soft labels);
// used by knowledge-distillation baselines (FedGen). targets must be a
// probability distribution per row.
class SoftCrossEntropyLoss {
 public:
  LossResult Compute(const Tensor& logits, const Tensor& targets,
                     bool compute_grad = true) const;
  // In-place variant; same contract as CrossEntropyLoss::Compute above.
  void Compute(const Tensor& logits, const Tensor& targets, LossResult& result,
               bool compute_grad = true) const;
};

}  // namespace fedcross::nn

#endif  // FEDCROSS_NN_LOSS_H_
