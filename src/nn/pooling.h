#ifndef FEDCROSS_NN_POOLING_H_
#define FEDCROSS_NN_POOLING_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace fedcross::nn {

// Max pooling over non-overlapping-or-strided square windows.
// input/output: [batch, channels, H, W] -> [batch, channels, H', W'].
class MaxPool2d : public Layer {
 public:
  MaxPool2d(int kernel, int stride);

  const Tensor& Forward(const Tensor& input, bool train) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "MaxPool2d"; }

  int kernel() const { return kernel_; }
  int stride() const { return stride_; }

 private:
  int kernel_;
  int stride_;
  Tensor::Shape cached_input_shape_;
  // Flat input index of the argmax for every output element.
  std::vector<std::int64_t> argmax_;
  Tensor output_;
  Tensor grad_input_;
};

// Global average pooling: [batch, channels, H, W] -> [batch, channels].
class GlobalAvgPool : public Layer {
 public:
  const Tensor& Forward(const Tensor& input, bool train) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "GlobalAvgPool"; }

 private:
  Tensor::Shape cached_input_shape_;
  Tensor output_;
  Tensor grad_input_;
};

}  // namespace fedcross::nn

#endif  // FEDCROSS_NN_POOLING_H_
