#include "nn/linear.h"

#include "nn/init.h"
#include "nn/kernels.h"
#include "tensor/tensor_ops.h"

namespace fedcross::nn {

Linear::Linear(int in_features, int out_features, util::Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(KaimingNormal({in_features, out_features}, in_features, rng)),
      bias_(Tensor::Zeros({out_features})) {
  FC_CHECK_GT(in_features, 0);
  FC_CHECK_GT(out_features, 0);
}

const Tensor& Linear::Forward(const Tensor& input, bool train) {
  (void)train;
  FC_CHECK_EQ(input.ndim(), 2);
  FC_CHECK_EQ(input.dim(1), in_features_);
  cached_input_ = input;
  int batch = input.dim(0);
  output_.ResizeTo({batch, out_features_});
  ops::Gemm(false, false, batch, out_features_, in_features_, 1.0f,
            input.data(), in_features_, weight_.value.data(), out_features_,
            0.0f, output_.data(), out_features_);
  kernels::BiasAddRows(output_.data(), bias_.value.data(), batch,
                       out_features_);
  return output_;
}

const Tensor& Linear::Backward(const Tensor& grad_output) {
  FC_CHECK_EQ(grad_output.ndim(), 2);
  FC_CHECK_EQ(grad_output.dim(1), out_features_);
  int batch = grad_output.dim(0);
  FC_CHECK_EQ(batch, cached_input_.dim(0));

  // dW += X^T * dY
  ops::Gemm(true, false, in_features_, out_features_, batch, 1.0f,
            cached_input_.data(), in_features_, grad_output.data(),
            out_features_, 1.0f, weight_.grad.data(), out_features_);
  // db += column sums of dY
  kernels::BiasGradRows(grad_output.data(), bias_.grad.data(), batch,
                        out_features_);
  // dX = dY * W^T
  grad_input_.ResizeTo({batch, in_features_});
  ops::Gemm(false, true, batch, in_features_, out_features_, 1.0f,
            grad_output.data(), out_features_, weight_.value.data(),
            out_features_, 0.0f, grad_input_.data(), in_features_);
  return grad_input_;
}

void Linear::CollectParams(std::vector<Param*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

}  // namespace fedcross::nn
