#ifndef FEDCROSS_NN_KERNELS_H_
#define FEDCROSS_NN_KERNELS_H_

#include <cstdint>

#include "util/rng.h"

namespace fedcross::nn::kernels {

// Raw-buffer kernels shared by the per-layer classes and the execution-plan
// runtime. Both paths must produce bit-identical floats, and floating-point
// expression trees may be contracted (e.g. into FMAs) differently in
// different translation units, so every non-GEMM arithmetic loop lives here,
// out of line, in exactly one TU. A kernel with y != x is the out-of-place
// form of the historical copy-then-mutate layer code; calling it with
// y == x reproduces the in-place form, and both evaluate the same
// per-element expression.

// ---- Activations ----------------------------------------------------------
void ReluForward(const float* x, float* y, std::int64_t n);
// dx from the cached *output* (y == 0 iff the forward input was <= 0).
void ReluBackward(const float* y, const float* dy, float* dx, std::int64_t n);
void TanhForward(const float* x, float* y, std::int64_t n);
void TanhBackward(const float* y, const float* dy, float* dx, std::int64_t n);
void SigmoidForward(const float* x, float* y, std::int64_t n);
void SigmoidBackward(const float* y, const float* dy, float* dx,
                     std::int64_t n);

// ---- Dropout --------------------------------------------------------------
// Draws the scaled keep-mask: mask[i] = Uniform() < rate ? 0 : scale.
// Consumes exactly n draws from `rng` — the contract that keeps the plan
// executor on the same mask stream as Dropout::Forward.
void DropoutMask(util::Rng& rng, float rate, float scale, float* mask,
                 std::int64_t n);
// y = x * mask (also the backward rule with x = dy).
void DropoutApply(const float* x, const float* mask, float* y, std::int64_t n);

// ---- Linear bias ----------------------------------------------------------
// y[r, j] += bias[j] over a rows x cols matrix.
void BiasAddRows(float* y, const float* bias, int rows, int cols);
// dbias[j] += sum_r dy[r, j], accumulated in ascending-row order.
void BiasGradRows(const float* dy, float* dbias, int rows, int cols);

// ---- Conv bias ------------------------------------------------------------
// y[b, c, i] += bias[c] over [batch, channels, area].
void ConvBiasAdd(float* y, const float* bias, int batch, int channels,
                 int area);
// dbias[c] += (double-accumulated) spatial sum of dy[b, c, :] for one image.
void ConvBiasGradImage(const float* dy_image, float* dbias, int channels,
                       int area);

// ---- Pooling --------------------------------------------------------------
// Strided square max pooling; records the flat input index of each window
// argmax (first-seen-wins on ties, matching the strict > comparison).
void MaxPoolForward(const float* x, float* y, std::int64_t* argmax, int batch,
                    int channels, int height, int width, int out_h, int out_w,
                    int kernel, int stride);
// Zeroes dx then scatter-adds dy through the recorded argmax indices.
void MaxPoolBackward(const float* dy, const std::int64_t* argmax,
                     std::int64_t out_numel, float* dx, std::int64_t in_numel);
// [batch, channels, area] -> [batch, channels] mean (double accumulator).
void GlobalAvgPoolForward(const float* x, float* y, int batch, int channels,
                          int area);
void GlobalAvgPoolBackward(const float* dy, float* dx, int batch, int channels,
                           int area);

// ---- GroupNorm ------------------------------------------------------------
// Normalises each (sample, group) slice; stores xhat and the per-(b, g)
// inv_std needed by the backward pass.
void GroupNormForward(const float* x, float* y, float* xhat, float* inv_std,
                      const float* gamma, const float* beta, int batch,
                      int channels, int groups, int area, float eps);
// Accumulates dgamma/dbeta (+=) and writes dx.
void GroupNormBackward(const float* dy, const float* xhat,
                       const float* inv_std, const float* gamma, float* dgamma,
                       float* dbeta, float* dx, int batch, int channels,
                       int groups, int area);

// ---- Elementwise add --------------------------------------------------------
// y[i] = a[i] + b[i]; y may alias a (the historical Tensor::AddInPlace form
// the residual block used). Also the residual gradient-accumulation rule.
void Add(const float* a, const float* b, float* y, std::int64_t n);

// ---- LSTM gates -------------------------------------------------------------
// Fused gate update for one timestep. `z` holds the [batch, 4*hidden]
// pre-activations ([i | f | g | o] layout) on entry and the activated gates
// on exit; c_prev may be null (c_{-1} = 0). Writes c_t and h_t
// ([batch, hidden] each).
void LstmGateForward(float* z, const float* c_prev, float* c, float* h,
                     int batch, int hidden);
// Backward gate update for one timestep: reads the activated gates, c_t,
// c_{t-1} (null = zeros) and dh_t, consumes/updates dc in place (in: dc_t,
// out: dc_{t-1}) and writes the pre-activation gradients dz.
void LstmGateBackward(const float* gates, const float* cell,
                      const float* cell_prev, const float* dh, float* dc,
                      float* dz, int batch, int hidden);

// ---- Embedding --------------------------------------------------------------
// Casts float-stored token ids to integers (bounds-checked against vocab),
// records them in `ids`, and gathers table rows: y[i, :] = table[ids[i], :].
void EmbeddingGather(const float* ids_f, std::int64_t tokens, int vocab,
                     const float* table, int embed, std::int64_t* ids,
                     float* y);
// table_grad[ids[i], :] += dy[i, :], accumulated in ascending token order.
void EmbeddingScatterAdd(const std::int64_t* ids, std::int64_t tokens,
                         const float* dy, int embed, float* table_grad);

// ---- bf16 storage -----------------------------------------------------------
// Round-to-nearest-even float -> bfloat16 (the top 16 bits of the fp32 bit
// pattern). NaN/Inf inputs truncate instead, so the rounding carry can never
// corrupt the exponent; a bf16 arena therefore stores the same specials the
// fp32 arena would.
std::uint16_t Bf16FromFloat(float v);
float Bf16ToFloat(std::uint16_t v);
void PackBf16(const float* src, std::uint16_t* dst, std::int64_t n);
void UnpackBf16(const std::uint16_t* src, float* dst, std::int64_t n);

// ---- Softmax cross-entropy ------------------------------------------------
// `probs` holds the logits on entry and is softmaxed in place; when
// compute_grad it then becomes (softmax - onehot) / batch. Returns the mean
// loss and the argmax-accuracy count. Labels are bounds-checked.
void CrossEntropyInPlace(float* probs, int batch, int classes,
                         const int* labels, bool compute_grad, float* loss,
                         int* correct);

}  // namespace fedcross::nn::kernels

#endif  // FEDCROSS_NN_KERNELS_H_
