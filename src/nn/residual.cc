#include "nn/residual.h"

#include "nn/kernels.h"

namespace fedcross::nn {

ResidualBlock::ResidualBlock(int in_channels, int out_channels, int stride,
                             int gn_groups, util::Rng& rng)
    : has_projection_(stride != 1 || in_channels != out_channels),
      conv1_(in_channels, out_channels, /*kernel=*/3, stride, /*pad=*/1, rng),
      norm1_(out_channels, gn_groups),
      conv2_(out_channels, out_channels, /*kernel=*/3, /*stride=*/1,
             /*pad=*/1, rng),
      norm2_(out_channels, gn_groups) {
  if (has_projection_) {
    proj_conv_ = std::make_unique<Conv2d>(in_channels, out_channels,
                                          /*kernel=*/1, stride, /*pad=*/0, rng);
    proj_norm_ = std::make_unique<GroupNorm>(out_channels, gn_groups);
  }
}

const Tensor& ResidualBlock::Forward(const Tensor& input, bool train) {
  const Tensor* x = &conv1_.Forward(input, train);
  x = &norm1_.Forward(*x, train);
  x = &relu1_.Forward(*x, train);
  x = &conv2_.Forward(*x, train);
  sum_ = norm2_.Forward(*x, train);  // copy: we mutate it with the skip add

  // The skip add goes through the shared kernel so the plan executor's kAdd
  // op evaluates the identical expression in the identical TU.
  if (has_projection_) {
    const Tensor& skip =
        proj_norm_->Forward(proj_conv_->Forward(input, train), train);
    kernels::Add(sum_.data(), skip.data(), sum_.data(), sum_.numel());
  } else {
    kernels::Add(sum_.data(), input.data(), sum_.data(), sum_.numel());
  }
  return relu_out_.Forward(sum_, train);
}

const Tensor& ResidualBlock::Backward(const Tensor& grad_output) {
  // grad_sum lives in relu_out_ and stays valid while both branch
  // backwards run (neither touches relu_out_).
  const Tensor& grad_sum = relu_out_.Backward(grad_output);

  // Main path.
  const Tensor* g = &norm2_.Backward(grad_sum);
  g = &conv2_.Backward(*g);
  g = &relu1_.Backward(*g);
  g = &norm1_.Backward(*g);
  grad_input_ = conv1_.Backward(*g);  // copy: we add the skip grad below

  // Skip path.
  if (has_projection_) {
    const Tensor& grad_skip =
        proj_conv_->Backward(proj_norm_->Backward(grad_sum));
    kernels::Add(grad_input_.data(), grad_skip.data(), grad_input_.data(),
                 grad_input_.numel());
  } else {
    kernels::Add(grad_input_.data(), grad_sum.data(), grad_input_.data(),
                 grad_input_.numel());
  }
  return grad_input_;
}

Layer* ResidualBlock::sub_layer(int index) {
  switch (index) {
    case kConv1: return &conv1_;
    case kNorm1: return &norm1_;
    case kConv2: return &conv2_;
    case kNorm2: return &norm2_;
    case kProjConv: return proj_conv_.get();
    case kProjNorm: return proj_norm_.get();
    default: return nullptr;
  }
}

void ResidualBlock::CollectParams(std::vector<Param*>& out) {
  conv1_.CollectParams(out);
  norm1_.CollectParams(out);
  conv2_.CollectParams(out);
  norm2_.CollectParams(out);
  if (has_projection_) {
    proj_conv_->CollectParams(out);
    proj_norm_->CollectParams(out);
  }
}

}  // namespace fedcross::nn
