#include "nn/residual.h"

namespace fedcross::nn {

ResidualBlock::ResidualBlock(int in_channels, int out_channels, int stride,
                             int gn_groups, util::Rng& rng)
    : has_projection_(stride != 1 || in_channels != out_channels),
      conv1_(in_channels, out_channels, /*kernel=*/3, stride, /*pad=*/1, rng),
      norm1_(out_channels, gn_groups),
      conv2_(out_channels, out_channels, /*kernel=*/3, /*stride=*/1,
             /*pad=*/1, rng),
      norm2_(out_channels, gn_groups) {
  if (has_projection_) {
    proj_conv_ = std::make_unique<Conv2d>(in_channels, out_channels,
                                          /*kernel=*/1, stride, /*pad=*/0, rng);
    proj_norm_ = std::make_unique<GroupNorm>(out_channels, gn_groups);
  }
}

Tensor ResidualBlock::Forward(const Tensor& input, bool train) {
  Tensor main = conv1_.Forward(input, train);
  main = norm1_.Forward(main, train);
  main = relu1_.Forward(main, train);
  main = conv2_.Forward(main, train);
  main = norm2_.Forward(main, train);

  Tensor skip;
  if (has_projection_) {
    skip = proj_conv_->Forward(input, train);
    skip = proj_norm_->Forward(skip, train);
  } else {
    skip = input;
  }
  main.AddInPlace(skip);
  return relu_out_.Forward(main, train);
}

Tensor ResidualBlock::Backward(const Tensor& grad_output) {
  Tensor grad_sum = relu_out_.Backward(grad_output);

  // Main path.
  Tensor grad_main = norm2_.Backward(grad_sum);
  grad_main = conv2_.Backward(grad_main);
  grad_main = relu1_.Backward(grad_main);
  grad_main = norm1_.Backward(grad_main);
  grad_main = conv1_.Backward(grad_main);

  // Skip path.
  if (has_projection_) {
    Tensor grad_skip = proj_norm_->Backward(grad_sum);
    grad_skip = proj_conv_->Backward(grad_skip);
    grad_main.AddInPlace(grad_skip);
  } else {
    grad_main.AddInPlace(grad_sum);
  }
  return grad_main;
}

void ResidualBlock::CollectParams(std::vector<Param*>& out) {
  conv1_.CollectParams(out);
  norm1_.CollectParams(out);
  conv2_.CollectParams(out);
  norm2_.CollectParams(out);
  if (has_projection_) {
    proj_conv_->CollectParams(out);
    proj_norm_->CollectParams(out);
  }
}

}  // namespace fedcross::nn
