#include "nn/residual.h"

namespace fedcross::nn {

ResidualBlock::ResidualBlock(int in_channels, int out_channels, int stride,
                             int gn_groups, util::Rng& rng)
    : has_projection_(stride != 1 || in_channels != out_channels),
      conv1_(in_channels, out_channels, /*kernel=*/3, stride, /*pad=*/1, rng),
      norm1_(out_channels, gn_groups),
      conv2_(out_channels, out_channels, /*kernel=*/3, /*stride=*/1,
             /*pad=*/1, rng),
      norm2_(out_channels, gn_groups) {
  if (has_projection_) {
    proj_conv_ = std::make_unique<Conv2d>(in_channels, out_channels,
                                          /*kernel=*/1, stride, /*pad=*/0, rng);
    proj_norm_ = std::make_unique<GroupNorm>(out_channels, gn_groups);
  }
}

const Tensor& ResidualBlock::Forward(const Tensor& input, bool train) {
  const Tensor* x = &conv1_.Forward(input, train);
  x = &norm1_.Forward(*x, train);
  x = &relu1_.Forward(*x, train);
  x = &conv2_.Forward(*x, train);
  sum_ = norm2_.Forward(*x, train);  // copy: we mutate it with the skip add

  if (has_projection_) {
    const Tensor& skip =
        proj_norm_->Forward(proj_conv_->Forward(input, train), train);
    sum_.AddInPlace(skip);
  } else {
    sum_.AddInPlace(input);
  }
  return relu_out_.Forward(sum_, train);
}

const Tensor& ResidualBlock::Backward(const Tensor& grad_output) {
  // grad_sum lives in relu_out_ and stays valid while both branch
  // backwards run (neither touches relu_out_).
  const Tensor& grad_sum = relu_out_.Backward(grad_output);

  // Main path.
  const Tensor* g = &norm2_.Backward(grad_sum);
  g = &conv2_.Backward(*g);
  g = &relu1_.Backward(*g);
  g = &norm1_.Backward(*g);
  grad_input_ = conv1_.Backward(*g);  // copy: we add the skip grad below

  // Skip path.
  if (has_projection_) {
    const Tensor& grad_skip =
        proj_conv_->Backward(proj_norm_->Backward(grad_sum));
    grad_input_.AddInPlace(grad_skip);
  } else {
    grad_input_.AddInPlace(grad_sum);
  }
  return grad_input_;
}

void ResidualBlock::CollectParams(std::vector<Param*>& out) {
  conv1_.CollectParams(out);
  norm1_.CollectParams(out);
  conv2_.CollectParams(out);
  norm2_.CollectParams(out);
  if (has_projection_) {
    proj_conv_->CollectParams(out);
    proj_norm_->CollectParams(out);
  }
}

}  // namespace fedcross::nn
