#include "nn/pooling.h"

#include "nn/kernels.h"
#include "tensor/tensor_ops.h"

namespace fedcross::nn {

MaxPool2d::MaxPool2d(int kernel, int stride) : kernel_(kernel), stride_(stride) {
  FC_CHECK_GT(kernel, 0);
  FC_CHECK_GT(stride, 0);
}

const Tensor& MaxPool2d::Forward(const Tensor& input, bool train) {
  (void)train;
  FC_CHECK_EQ(input.ndim(), 4);
  int batch = input.dim(0);
  int channels = input.dim(1);
  int height = input.dim(2);
  int width = input.dim(3);
  int out_h = ops::ConvOutSize(height, kernel_, stride_, /*pad=*/0);
  int out_w = ops::ConvOutSize(width, kernel_, stride_, /*pad=*/0);

  cached_input_shape_ = input.shape();
  output_.ResizeTo({batch, channels, out_h, out_w});
  if (static_cast<std::int64_t>(argmax_.size()) != output_.numel()) {
    argmax_.resize(output_.numel());
  }

  kernels::MaxPoolForward(input.data(), output_.data(), argmax_.data(), batch,
                          channels, height, width, out_h, out_w, kernel_,
                          stride_);
  return output_;
}

const Tensor& MaxPool2d::Backward(const Tensor& grad_output) {
  FC_CHECK_EQ(grad_output.numel(), static_cast<std::int64_t>(argmax_.size()));
  grad_input_.ResizeTo(cached_input_shape_);
  kernels::MaxPoolBackward(grad_output.data(), argmax_.data(),
                           grad_output.numel(), grad_input_.data(),
                           grad_input_.numel());
  return grad_input_;
}

const Tensor& GlobalAvgPool::Forward(const Tensor& input, bool train) {
  (void)train;
  FC_CHECK_EQ(input.ndim(), 4);
  int batch = input.dim(0);
  int channels = input.dim(1);
  int area = input.dim(2) * input.dim(3);
  cached_input_shape_ = input.shape();

  output_.ResizeTo({batch, channels});
  kernels::GlobalAvgPoolForward(input.data(), output_.data(), batch, channels,
                                area);
  return output_;
}

const Tensor& GlobalAvgPool::Backward(const Tensor& grad_output) {
  FC_CHECK_EQ(grad_output.ndim(), 2);
  int batch = cached_input_shape_[0];
  int channels = cached_input_shape_[1];
  int area = cached_input_shape_[2] * cached_input_shape_[3];
  FC_CHECK_EQ(grad_output.dim(0), batch);
  FC_CHECK_EQ(grad_output.dim(1), channels);

  grad_input_.ResizeTo(cached_input_shape_);
  kernels::GlobalAvgPoolBackward(grad_output.data(), grad_input_.data(), batch,
                                 channels, area);
  return grad_input_;
}

}  // namespace fedcross::nn
