#include "nn/pooling.h"

#include "tensor/tensor_ops.h"

namespace fedcross::nn {

MaxPool2d::MaxPool2d(int kernel, int stride) : kernel_(kernel), stride_(stride) {
  FC_CHECK_GT(kernel, 0);
  FC_CHECK_GT(stride, 0);
}

const Tensor& MaxPool2d::Forward(const Tensor& input, bool train) {
  (void)train;
  FC_CHECK_EQ(input.ndim(), 4);
  int batch = input.dim(0);
  int channels = input.dim(1);
  int height = input.dim(2);
  int width = input.dim(3);
  int out_h = ops::ConvOutSize(height, kernel_, stride_, /*pad=*/0);
  int out_w = ops::ConvOutSize(width, kernel_, stride_, /*pad=*/0);

  cached_input_shape_ = input.shape();
  output_.ResizeTo({batch, channels, out_h, out_w});
  argmax_.assign(output_.numel(), 0);

  const float* in = input.data();
  float* out = output_.data();
  std::int64_t out_index = 0;
  for (int b = 0; b < batch; ++b) {
    for (int c = 0; c < channels; ++c) {
      const float* plane =
          in + (static_cast<std::int64_t>(b) * channels + c) * height * width;
      std::int64_t plane_offset =
          (static_cast<std::int64_t>(b) * channels + c) * height * width;
      for (int oh = 0; oh < out_h; ++oh) {
        for (int ow = 0; ow < out_w; ++ow) {
          int h0 = oh * stride_;
          int w0 = ow * stride_;
          float best = plane[h0 * width + w0];
          int best_h = h0;
          int best_w = w0;
          for (int kh = 0; kh < kernel_; ++kh) {
            int ih = h0 + kh;
            if (ih >= height) break;
            for (int kw = 0; kw < kernel_; ++kw) {
              int iw = w0 + kw;
              if (iw >= width) break;
              float value = plane[ih * width + iw];
              if (value > best) {
                best = value;
                best_h = ih;
                best_w = iw;
              }
            }
          }
          out[out_index] = best;
          argmax_[out_index] = plane_offset + best_h * width + best_w;
          ++out_index;
        }
      }
    }
  }
  return output_;
}

const Tensor& MaxPool2d::Backward(const Tensor& grad_output) {
  FC_CHECK_EQ(grad_output.numel(), static_cast<std::int64_t>(argmax_.size()));
  grad_input_.ResizeTo(cached_input_shape_);
  grad_input_.Fill(0.0f);  // scatter-add below only touches argmax cells
  float* grad_in = grad_input_.data();
  const float* grad_out = grad_output.data();
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_in[argmax_[i]] += grad_out[i];
  }
  return grad_input_;
}

const Tensor& GlobalAvgPool::Forward(const Tensor& input, bool train) {
  (void)train;
  FC_CHECK_EQ(input.ndim(), 4);
  int batch = input.dim(0);
  int channels = input.dim(1);
  int area = input.dim(2) * input.dim(3);
  cached_input_shape_ = input.shape();

  output_.ResizeTo({batch, channels});
  const float* in = input.data();
  float* out = output_.data();
  for (int b = 0; b < batch; ++b) {
    for (int c = 0; c < channels; ++c) {
      const float* plane = in + (static_cast<std::int64_t>(b) * channels + c) * area;
      double acc = 0.0;
      for (int i = 0; i < area; ++i) acc += plane[i];
      out[static_cast<std::int64_t>(b) * channels + c] =
          static_cast<float>(acc / area);
    }
  }
  return output_;
}

const Tensor& GlobalAvgPool::Backward(const Tensor& grad_output) {
  FC_CHECK_EQ(grad_output.ndim(), 2);
  int batch = cached_input_shape_[0];
  int channels = cached_input_shape_[1];
  int area = cached_input_shape_[2] * cached_input_shape_[3];
  FC_CHECK_EQ(grad_output.dim(0), batch);
  FC_CHECK_EQ(grad_output.dim(1), channels);

  grad_input_.ResizeTo(cached_input_shape_);
  float* grad_in = grad_input_.data();
  const float* grad_out = grad_output.data();
  float inv_area = 1.0f / static_cast<float>(area);
  for (int b = 0; b < batch; ++b) {
    for (int c = 0; c < channels; ++c) {
      float g = grad_out[static_cast<std::int64_t>(b) * channels + c] * inv_area;
      float* plane =
          grad_in + (static_cast<std::int64_t>(b) * channels + c) * area;
      for (int i = 0; i < area; ++i) plane[i] = g;
    }
  }
  return grad_input_;
}

}  // namespace fedcross::nn
