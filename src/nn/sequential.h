#ifndef FEDCROSS_NN_SEQUENTIAL_H_
#define FEDCROSS_NN_SEQUENTIAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace fedcross::nn {

// Layer pipeline and the unit of FL exchange ("a model"). Besides chaining
// Forward/Backward it exposes the flat-parameter-vector view that the FL
// servers (FedAvg, FedCross, ...) aggregate, compare (cosine similarity)
// and dispatch.
class Sequential : public Layer {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<std::unique_ptr<Layer>> layers);

  // Move-only: a model owns its layers.
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;
  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;

  void Add(std::unique_ptr<Layer> layer);

  // ---- Layer interface ----------------------------------------------------
  // Chains layer-owned output buffers; the returned reference is owned by
  // the last layer (or is the input itself for an empty pipeline) and stays
  // valid until the next Forward call.
  const Tensor& Forward(const Tensor& input, bool train) override;
  // Propagates gradients back through the stack; stops early if a layer
  // (e.g. Embedding) reports an empty input gradient. Returns the gradient
  // w.r.t. the pipeline input (possibly empty).
  const Tensor& Backward(const Tensor& grad_output) override;
  void CollectParams(std::vector<Param*>& out) override;
  // Resets every layer's non-parameter state (see Layer::ResetState).
  void ResetState() override;
  std::string Name() const override { return "Sequential"; }

  // ---- Model utilities ----------------------------------------------------
  int num_layers() const { return static_cast<int>(layers_.size()); }

  // Borrowed pointer to layer `i` (0-based, registration order). Used by the
  // execution-plan compiler to inspect the topology and by the plan state to
  // bind per-replica parameters; the pointer stays valid for the model's
  // lifetime.
  Layer* layer(int i) {
    FC_CHECK_GE(i, 0);
    FC_CHECK_LT(i, num_layers());
    return layers_[static_cast<std::size_t>(i)].get();
  }

  // Stable parameter pointers (computed once, cached).
  const std::vector<Param*>& Params();

  // Total trainable scalar count.
  std::int64_t NumParams();

  // Clears every parameter gradient.
  void ZeroGrad();

  // Flat-vector interface: parameters are concatenated in registration
  // order. All models built from the same factory seed have identical
  // layouts, which is what makes cross-model arithmetic meaningful.
  std::vector<float> ParamsToFlat();
  void ParamsFromFlat(const std::vector<float>& flat);
  std::vector<float> GradsToFlat();

  // Out-parameter overloads that reuse the caller's storage (capacity is
  // retained across rounds). The hot FL paths use these to avoid per-round
  // flat-vector allocations.
  void ParamsToFlat(std::vector<float>& out);
  void GradsToFlat(std::vector<float>& out);

  // One-line architecture summary, e.g. "Conv2d->Relu->...->Linear (12345 params)".
  std::string Summary();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<Param*> params_cache_;
  bool params_cached_ = false;
};

}  // namespace fedcross::nn

#endif  // FEDCROSS_NN_SEQUENTIAL_H_
