#ifndef FEDCROSS_NN_FLATTEN_H_
#define FEDCROSS_NN_FLATTEN_H_

#include <string>

#include "nn/layer.h"

namespace fedcross::nn {

// Reshapes [batch, d1, d2, ...] to [batch, d1*d2*...]; backward restores the
// original shape. Metadata-only on contiguous tensors.
class Flatten : public Layer {
 public:
  const Tensor& Forward(const Tensor& input, bool train) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "Flatten"; }

 private:
  Tensor::Shape cached_input_shape_;
  Tensor output_;
  Tensor grad_input_;
};

}  // namespace fedcross::nn

#endif  // FEDCROSS_NN_FLATTEN_H_
