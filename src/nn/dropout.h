#ifndef FEDCROSS_NN_DROPOUT_H_
#define FEDCROSS_NN_DROPOUT_H_

#include <string>

#include "nn/layer.h"
#include "util/rng.h"

namespace fedcross::nn {

// Inverted dropout: during training each element is zeroed with probability
// `rate` and survivors are scaled by 1/(1-rate); evaluation is identity.
class Dropout : public Layer {
 public:
  // `seed` makes the mask stream reproducible per layer instance.
  Dropout(float rate, std::uint64_t seed);

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "Dropout"; }

 private:
  float rate_;
  util::Rng rng_;
  Tensor cached_mask_;  // scaled keep-mask from the last training Forward
  bool last_was_train_ = false;
};

}  // namespace fedcross::nn

#endif  // FEDCROSS_NN_DROPOUT_H_
