#ifndef FEDCROSS_NN_DROPOUT_H_
#define FEDCROSS_NN_DROPOUT_H_

#include <string>

#include "nn/layer.h"
#include "util/rng.h"

namespace fedcross::nn {

// Inverted dropout: during training each element is zeroed with probability
// `rate` and survivors are scaled by 1/(1-rate); evaluation is identity (the
// input reference is returned untouched).
class Dropout : public Layer {
 public:
  // `seed` makes the mask stream reproducible per layer instance.
  Dropout(float rate, std::uint64_t seed);

  const Tensor& Forward(const Tensor& input, bool train) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  // Rewinds the mask RNG to its construction seed, so a pooled replica draws
  // the same mask stream a freshly built model would.
  void ResetState() override { rng_ = util::Rng(seed_); }
  std::string Name() const override { return "Dropout"; }

  float rate() const { return rate_; }
  // The mask stream. The plan executor draws from this same generator so a
  // plan-mode step consumes exactly the masks a layer-mode step would.
  util::Rng& mask_rng() { return rng_; }

 private:
  float rate_;
  std::uint64_t seed_;
  util::Rng rng_;
  Tensor cached_mask_;  // scaled keep-mask from the last training Forward
  Tensor output_;
  Tensor grad_input_;
  bool last_was_train_ = false;
};

}  // namespace fedcross::nn

#endif  // FEDCROSS_NN_DROPOUT_H_
