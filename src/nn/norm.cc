#include "nn/norm.h"

#include <cmath>

#include "nn/kernels.h"

namespace fedcross::nn {

GroupNorm::GroupNorm(int channels, int groups, float eps)
    : channels_(channels),
      groups_(groups),
      eps_(eps),
      gamma_(Tensor::Full({channels}, 1.0f)),
      beta_(Tensor::Zeros({channels})) {
  FC_CHECK_GT(groups, 0);
  FC_CHECK_EQ(channels % groups, 0) << "channels must divide into groups";
}

const Tensor& GroupNorm::Forward(const Tensor& input, bool train) {
  (void)train;
  FC_CHECK_EQ(input.ndim(), 4);
  FC_CHECK_EQ(input.dim(1), channels_);
  int batch = input.dim(0);
  int area = input.dim(2) * input.dim(3);

  cached_xhat_.ResizeTo(input.shape());
  cached_inv_std_.assign(static_cast<std::size_t>(batch) * groups_, 0.0f);
  output_.ResizeTo(input.shape());

  kernels::GroupNormForward(input.data(), output_.data(), cached_xhat_.data(),
                            cached_inv_std_.data(), gamma_.value.data(),
                            beta_.value.data(), batch, channels_, groups_,
                            area, eps_);
  return output_;
}

const Tensor& GroupNorm::Backward(const Tensor& grad_output) {
  FC_CHECK(grad_output.SameShape(cached_xhat_));
  int batch = grad_output.dim(0);
  int area = grad_output.dim(2) * grad_output.dim(3);

  grad_input_.ResizeTo(grad_output.shape());
  kernels::GroupNormBackward(grad_output.data(), cached_xhat_.data(),
                             cached_inv_std_.data(), gamma_.value.data(),
                             gamma_.grad.data(), beta_.grad.data(),
                             grad_input_.data(), batch, channels_, groups_,
                             area);
  return grad_input_;
}

void GroupNorm::CollectParams(std::vector<Param*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

BatchNorm2d::BatchNorm2d(int channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(Tensor::Full({channels}, 1.0f)),
      beta_(Tensor::Zeros({channels})),
      running_mean_(Tensor::Zeros({channels}), /*is_trainable=*/false),
      running_var_(Tensor::Full({channels}, 1.0f), /*is_trainable=*/false) {
  FC_CHECK_GT(channels, 0);
  FC_CHECK_GT(momentum, 0.0f);
  FC_CHECK_LE(momentum, 1.0f);
}

const Tensor& BatchNorm2d::Forward(const Tensor& input, bool train) {
  FC_CHECK_EQ(input.ndim(), 4);
  FC_CHECK_EQ(input.dim(1), channels_);
  int batch = input.dim(0);
  int area = input.dim(2) * input.dim(3);
  std::int64_t per_channel = static_cast<std::int64_t>(batch) * area;
  last_was_train_ = train;

  output_.ResizeTo(input.shape());
  const float* in = input.data();
  float* out = output_.data();
  const float* gamma = gamma_.value.data();
  const float* beta = beta_.value.data();

  if (train) {
    cached_xhat_.ResizeTo(input.shape());
    cached_inv_std_.assign(channels_, 0.0f);
    float* xhat = cached_xhat_.data();
    float* run_mean = running_mean_.value.data();
    float* run_var = running_var_.value.data();
    for (int c = 0; c < channels_; ++c) {
      double mean = 0.0;
      for (int b = 0; b < batch; ++b) {
        const float* plane =
            in + (static_cast<std::int64_t>(b) * channels_ + c) * area;
        for (int i = 0; i < area; ++i) mean += plane[i];
      }
      mean /= per_channel;
      double var = 0.0;
      for (int b = 0; b < batch; ++b) {
        const float* plane =
            in + (static_cast<std::int64_t>(b) * channels_ + c) * area;
        for (int i = 0; i < area; ++i) {
          double d = plane[i] - mean;
          var += d * d;
        }
      }
      var /= per_channel;
      float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
      cached_inv_std_[c] = inv_std;
      run_mean[c] = (1.0f - momentum_) * run_mean[c] +
                    momentum_ * static_cast<float>(mean);
      run_var[c] =
          (1.0f - momentum_) * run_var[c] + momentum_ * static_cast<float>(var);
      for (int b = 0; b < batch; ++b) {
        std::int64_t base =
            (static_cast<std::int64_t>(b) * channels_ + c) * area;
        for (int i = 0; i < area; ++i) {
          float normalized =
              (in[base + i] - static_cast<float>(mean)) * inv_std;
          xhat[base + i] = normalized;
          out[base + i] = gamma[c] * normalized + beta[c];
        }
      }
    }
  } else {
    const float* run_mean = running_mean_.value.data();
    const float* run_var = running_var_.value.data();
    for (int c = 0; c < channels_; ++c) {
      float inv_std = 1.0f / std::sqrt(run_var[c] + eps_);
      for (int b = 0; b < batch; ++b) {
        std::int64_t base =
            (static_cast<std::int64_t>(b) * channels_ + c) * area;
        for (int i = 0; i < area; ++i) {
          out[base + i] =
              gamma[c] * (in[base + i] - run_mean[c]) * inv_std + beta[c];
        }
      }
    }
  }
  return output_;
}

const Tensor& BatchNorm2d::Backward(const Tensor& grad_output) {
  FC_CHECK(last_was_train_) << "BatchNorm2d::Backward after eval Forward";
  FC_CHECK(grad_output.SameShape(cached_xhat_));
  int batch = grad_output.dim(0);
  int area = grad_output.dim(2) * grad_output.dim(3);
  std::int64_t per_channel = static_cast<std::int64_t>(batch) * area;

  grad_input_.ResizeTo(grad_output.shape());
  const float* grad_out = grad_output.data();
  const float* xhat = cached_xhat_.data();
  const float* gamma = gamma_.value.data();
  float* gamma_grad = gamma_.grad.data();
  float* beta_grad = beta_.grad.data();
  float* grad_in = grad_input_.data();

  for (int c = 0; c < channels_; ++c) {
    double sum_dxhat = 0.0;
    double sum_dxhat_xhat = 0.0;
    for (int b = 0; b < batch; ++b) {
      std::int64_t base = (static_cast<std::int64_t>(b) * channels_ + c) * area;
      for (int i = 0; i < area; ++i) {
        float dy = grad_out[base + i];
        gamma_grad[c] += dy * xhat[base + i];
        beta_grad[c] += dy;
        float dxhat = dy * gamma[c];
        sum_dxhat += dxhat;
        sum_dxhat_xhat += static_cast<double>(dxhat) * xhat[base + i];
      }
    }
    float mean_dxhat = static_cast<float>(sum_dxhat / per_channel);
    float mean_dxhat_xhat = static_cast<float>(sum_dxhat_xhat / per_channel);
    float inv_std = cached_inv_std_[c];
    for (int b = 0; b < batch; ++b) {
      std::int64_t base = (static_cast<std::int64_t>(b) * channels_ + c) * area;
      for (int i = 0; i < area; ++i) {
        float dxhat = grad_out[base + i] * gamma[c];
        grad_in[base + i] =
            inv_std * (dxhat - mean_dxhat - xhat[base + i] * mean_dxhat_xhat);
      }
    }
  }
  return grad_input_;
}

void BatchNorm2d::CollectParams(std::vector<Param*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
  out.push_back(&running_mean_);
  out.push_back(&running_var_);
}

}  // namespace fedcross::nn
