#include "nn/conv2d.h"

#include "nn/init.h"
#include "nn/kernels.h"
#include "tensor/tensor_ops.h"

namespace fedcross::nn {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int pad, util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(KaimingNormal({out_channels, in_channels * kernel * kernel},
                            in_channels * kernel * kernel, rng)),
      bias_(Tensor::Zeros({out_channels})) {
  FC_CHECK_GT(in_channels, 0);
  FC_CHECK_GT(out_channels, 0);
  FC_CHECK_GT(kernel, 0);
}

const Tensor& Conv2d::Forward(const Tensor& input, bool train) {
  (void)train;
  FC_CHECK_EQ(input.ndim(), 4);
  FC_CHECK_EQ(input.dim(1), in_channels_);
  int batch = input.dim(0);
  int height = input.dim(2);
  int width = input.dim(3);
  int out_h = ops::ConvOutSize(height, kernel_, stride_, pad_);
  int out_w = ops::ConvOutSize(width, kernel_, stride_, pad_);
  int out_area = out_h * out_w;
  int patch = in_channels_ * kernel_ * kernel_;

  cached_height_ = height;
  cached_width_ = width;
  // Reuse the im2col scratch across Forward calls: every element is
  // overwritten by Im2Col, so stale contents are harmless, and steady-state
  // training (fixed batch geometry) never reallocates.
  if (static_cast<int>(cached_columns_.size()) != batch) {
    cached_columns_.resize(batch);
  }

  output_.ResizeTo({batch, out_channels_, out_h, out_w});
  std::int64_t in_stride = static_cast<std::int64_t>(in_channels_) * height * width;
  std::int64_t out_stride = static_cast<std::int64_t>(out_channels_) * out_area;
  for (int b = 0; b < batch; ++b) {
    Tensor& columns = cached_columns_[b];
    if (columns.ndim() != 2 || columns.dim(0) != patch ||
        columns.dim(1) != out_area) {
      columns = Tensor({patch, out_area});
    }
    ops::Im2Col(input.data() + b * in_stride, in_channels_, height, width,
                kernel_, kernel_, stride_, pad_, columns.data());
    // output_b = W(out_channels, patch) * columns(patch, out_area)
    ops::Gemm(false, false, out_channels_, out_area, patch, 1.0f,
              weight_.value.data(), patch, columns.data(), out_area, 0.0f,
              output_.data() + b * out_stride, out_area);
  }
  kernels::ConvBiasAdd(output_.data(), bias_.value.data(), batch,
                       out_channels_, out_area);
  return output_;
}

const Tensor& Conv2d::Backward(const Tensor& grad_output) {
  FC_CHECK_EQ(grad_output.ndim(), 4);
  int batch = grad_output.dim(0);
  FC_CHECK_EQ(batch, static_cast<int>(cached_columns_.size()));
  FC_CHECK_EQ(grad_output.dim(1), out_channels_);
  int out_h = grad_output.dim(2);
  int out_w = grad_output.dim(3);
  int out_area = out_h * out_w;
  int patch = in_channels_ * kernel_ * kernel_;

  grad_input_.ResizeTo({batch, in_channels_, cached_height_, cached_width_});
  grad_input_.Fill(0.0f);  // Col2Im accumulates into the image
  // Same scratch-reuse as Forward: the dColumns GEMM runs with beta = 0, so
  // the buffer is fully overwritten each iteration.
  if (grad_columns_.ndim() != 2 || grad_columns_.dim(0) != patch ||
      grad_columns_.dim(1) != out_area) {
    grad_columns_ = Tensor({patch, out_area});
  }
  Tensor& grad_columns = grad_columns_;
  std::int64_t in_stride =
      static_cast<std::int64_t>(in_channels_) * cached_height_ * cached_width_;
  std::int64_t out_stride = static_cast<std::int64_t>(out_channels_) * out_area;

  float* bias_grad = bias_.grad.data();
  for (int b = 0; b < batch; ++b) {
    const float* grad_b = grad_output.data() + b * out_stride;
    // dW += dY_b(out_channels, out_area) * columns_b^T(out_area, patch)
    ops::Gemm(false, true, out_channels_, patch, out_area, 1.0f, grad_b,
              out_area, cached_columns_[b].data(), out_area, 1.0f,
              weight_.grad.data(), patch);
    // db += spatial sums of dY_b
    kernels::ConvBiasGradImage(grad_b, bias_grad, out_channels_, out_area);
    // dColumns = W^T(patch, out_channels) * dY_b(out_channels, out_area)
    ops::Gemm(true, false, patch, out_area, out_channels_, 1.0f,
              weight_.value.data(), patch, grad_b, out_area, 0.0f,
              grad_columns.data(), out_area);
    ops::Col2Im(grad_columns.data(), in_channels_, cached_height_,
                cached_width_, kernel_, kernel_, stride_, pad_,
                grad_input_.data() + b * in_stride);
  }
  return grad_input_;
}

void Conv2d::CollectParams(std::vector<Param*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

}  // namespace fedcross::nn
