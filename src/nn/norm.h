#ifndef FEDCROSS_NN_NORM_H_
#define FEDCROSS_NN_NORM_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace fedcross::nn {

// Group normalisation (Wu & He, 2018) over [batch, channels, H, W].
// Channels are split into `groups`; each (sample, group) slice is
// normalised to zero mean / unit variance, then scaled and shifted by the
// learned per-channel gamma/beta.
//
// GroupNorm is chosen over BatchNorm for the ResNet/VGG substrates because
// it has no batch-statistics state, which keeps FL model aggregation a pure
// parameter-vector operation (no running-stat averaging subtleties).
class GroupNorm : public Layer {
 public:
  GroupNorm(int channels, int groups, float eps = 1e-5f);

  const Tensor& Forward(const Tensor& input, bool train) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  void CollectParams(std::vector<Param*>& out) override;
  std::string Name() const override { return "GroupNorm"; }

  int channels() const { return channels_; }
  int groups() const { return groups_; }
  float eps() const { return eps_; }

  // Direct parameter access for the execution-plan runtime.
  Param& gamma_param() { return gamma_; }
  Param& beta_param() { return beta_; }

 private:
  int channels_;
  int groups_;
  float eps_;
  Param gamma_;
  Param beta_;
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;  // per (batch, group)
  Tensor output_;
  Tensor grad_input_;
};

// Batch normalisation over [batch, channels, H, W] with per-channel
// statistics. Training normalises by the mini-batch mean/variance and
// updates exponential running statistics; evaluation uses the running
// statistics. The running stats are registered as non-trainable Params so
// they ride along in the flat parameter vector: FL aggregation averages
// them across clients (the standard, known-imperfect treatment — the
// GroupNorm models avoid the issue entirely; BatchNorm is provided for
// ablations).
class BatchNorm2d : public Layer {
 public:
  BatchNorm2d(int channels, float momentum = 0.1f, float eps = 1e-5f);

  const Tensor& Forward(const Tensor& input, bool train) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  void CollectParams(std::vector<Param*>& out) override;
  std::string Name() const override { return "BatchNorm2d"; }

 private:
  int channels_;
  float momentum_;
  float eps_;
  Param gamma_;
  Param beta_;
  Param running_mean_;  // non-trainable
  Param running_var_;   // non-trainable
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;  // per channel (training forward only)
  Tensor output_;
  Tensor grad_input_;
  bool last_was_train_ = false;
};

}  // namespace fedcross::nn

#endif  // FEDCROSS_NN_NORM_H_
