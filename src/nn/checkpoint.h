#ifndef FEDCROSS_NN_CHECKPOINT_H_
#define FEDCROSS_NN_CHECKPOINT_H_

#include <string>

#include "nn/sequential.h"
#include "util/status.h"

namespace fedcross::nn {

// Binary model checkpoints. A checkpoint stores a magic tag, a format
// version, and every parameter tensor (shape + float32 data) in
// registration order. Loading validates the magic, version, and that the
// stored tensors exactly match the target model's parameter layout — a
// checkpoint can only be restored into a model built by the same factory.
//
//   FC_RETURN_IF_ERROR(SaveModel(model, "global.fcpt"));
//   FC_RETURN_IF_ERROR(LoadModel(model, "global.fcpt"));

util::Status SaveModel(Sequential& model, const std::string& path);
util::Status LoadModel(Sequential& model, const std::string& path);

// Flat-parameter variants for FL servers that hold models as vectors.
util::Status SaveFlatParams(const std::vector<float>& params,
                            const std::string& path);
util::StatusOr<std::vector<float>> LoadFlatParams(const std::string& path);

}  // namespace fedcross::nn

#endif  // FEDCROSS_NN_CHECKPOINT_H_
