#include "nn/lstm.h"

#include <utility>

#include "nn/init.h"
#include "nn/kernels.h"
#include "tensor/tensor_ops.h"

namespace fedcross::nn {

Lstm::Lstm(int input_dim, int hidden_dim, util::Rng& rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      weight_x_(XavierUniform({input_dim, 4 * hidden_dim}, input_dim,
                              hidden_dim, rng)),
      weight_h_(XavierUniform({hidden_dim, 4 * hidden_dim}, hidden_dim,
                              hidden_dim, rng)),
      bias_(Tensor::Zeros({4 * hidden_dim})) {
  FC_CHECK_GT(input_dim, 0);
  FC_CHECK_GT(hidden_dim, 0);
  // Forget-gate bias = 1 so early training does not wipe cell state.
  float* bias = bias_.value.data();
  for (int j = hidden_dim_; j < 2 * hidden_dim_; ++j) bias[j] = 1.0f;
}

const Tensor& Lstm::Forward(const Tensor& input, bool train) {
  (void)train;
  FC_CHECK_EQ(input.ndim(), 3);
  FC_CHECK_EQ(input.dim(2), input_dim_);
  int batch = input.dim(0);
  int time = input.dim(1);
  int h4 = 4 * hidden_dim_;

  cached_input_ = input;
  // Resize (not assign) so the per-step tensors keep their capacity when the
  // sequence length is stable.
  if (static_cast<int>(gates_.size()) != time) {
    gates_.resize(time);
    cells_.resize(time);
    hiddens_.resize(time + 1);
  }
  hiddens_[0].ResizeTo({batch, hidden_dim_});
  hiddens_[0].Fill(0.0f);

  x_t_.ResizeTo({batch, input_dim_});
  for (int t = 0; t < time; ++t) {
    // x_t is strided inside [batch, time, input]; gather per timestep.
    const float* in = input.data();
    float* xt = x_t_.data();
    for (int b = 0; b < batch; ++b) {
      const float* src =
          in + (static_cast<std::int64_t>(b) * time + t) * input_dim_;
      float* dst = xt + static_cast<std::int64_t>(b) * input_dim_;
      for (int d = 0; d < input_dim_; ++d) dst[d] = src[d];
    }

    // Pre-activations z = x_t Wx + h_{t-1} Wh + b (beta=0 overwrites the
    // reused gate buffer).
    Tensor& z = gates_[t];
    z.ResizeTo({batch, h4});
    ops::Gemm(false, false, batch, h4, input_dim_, 1.0f, x_t_.data(),
              input_dim_, weight_x_.value.data(), h4, 0.0f, z.data(), h4);
    ops::Gemm(false, false, batch, h4, hidden_dim_, 1.0f,
              hiddens_[t].data(), hidden_dim_, weight_h_.value.data(), h4,
              1.0f, z.data(), h4);
    kernels::BiasAddRows(z.data(), bias_.value.data(), batch, h4);

    // Activations and state update (shared fused-gate kernel: the plan
    // executor's kLstm step calls the same loop).
    Tensor& cell = cells_[t];
    Tensor& hidden = hiddens_[t + 1];
    cell.ResizeTo({batch, hidden_dim_});
    hidden.ResizeTo({batch, hidden_dim_});
    const float* c_prev = t > 0 ? cells_[t - 1].data() : nullptr;  // c_{-1}=0
    kernels::LstmGateForward(z.data(), c_prev, cell.data(), hidden.data(),
                             batch, hidden_dim_);
  }
  return hiddens_[time];
}

const Tensor& Lstm::Backward(const Tensor& grad_output) {
  int batch = cached_input_.dim(0);
  int time = cached_input_.dim(1);
  int h4 = 4 * hidden_dim_;
  FC_CHECK_EQ(grad_output.ndim(), 2);
  FC_CHECK_EQ(grad_output.dim(0), batch);
  FC_CHECK_EQ(grad_output.dim(1), hidden_dim_);

  grad_input_.ResizeTo({batch, time, input_dim_});
  dh_ = grad_output;  // dL/dh_t
  dc_.ResizeTo({batch, hidden_dim_});
  dc_.Fill(0.0f);  // dL/dc_t
  dz_.ResizeTo({batch, h4});
  x_t_.ResizeTo({batch, input_dim_});
  dx_t_.ResizeTo({batch, input_dim_});
  dh_prev_.ResizeTo({batch, hidden_dim_});

  for (int t = time - 1; t >= 0; --t) {
    const float* cell_prev_data =
        t > 0 ? cells_[t - 1].data() : nullptr;  // c_{-1} = 0
    kernels::LstmGateBackward(gates_[t].data(), cells_[t].data(),
                              cell_prev_data, dh_.data(), dc_.data(),
                              dz_.data(), batch, hidden_dim_);

    // Gather x_t for the weight gradient.
    const float* in = cached_input_.data();
    float* xt = x_t_.data();
    for (int b = 0; b < batch; ++b) {
      const float* src =
          in + (static_cast<std::int64_t>(b) * time + t) * input_dim_;
      float* dst = xt + static_cast<std::int64_t>(b) * input_dim_;
      for (int d = 0; d < input_dim_; ++d) dst[d] = src[d];
    }

    // dWx += x_t^T dz ; dWh += h_{t-1}^T dz ; db += colsum dz.
    ops::Gemm(true, false, input_dim_, h4, batch, 1.0f, x_t_.data(), input_dim_,
              dz_.data(), h4, 1.0f, weight_x_.grad.data(), h4);
    ops::Gemm(true, false, hidden_dim_, h4, batch, 1.0f, hiddens_[t].data(),
              hidden_dim_, dz_.data(), h4, 1.0f, weight_h_.grad.data(), h4);
    kernels::BiasGradRows(dz_.data(), bias_.grad.data(), batch, h4);

    // dx_t = dz Wx^T ; dh_{t-1} = dz Wh^T.
    ops::Gemm(false, true, batch, input_dim_, h4, 1.0f, dz_.data(), h4,
              weight_x_.value.data(), h4, 0.0f, dx_t_.data(), input_dim_);
    dh_prev_.ResizeTo({batch, hidden_dim_});
    ops::Gemm(false, true, batch, hidden_dim_, h4, 1.0f, dz_.data(), h4,
              weight_h_.value.data(), h4, 0.0f, dh_prev_.data(), hidden_dim_);
    std::swap(dh_, dh_prev_);  // buffers ping-pong; no allocation

    // Scatter dx_t back into [batch, time, input].
    float* gin = grad_input_.data();
    const float* dxt = dx_t_.data();
    for (int b = 0; b < batch; ++b) {
      float* dst = gin + (static_cast<std::int64_t>(b) * time + t) * input_dim_;
      const float* src = dxt + static_cast<std::int64_t>(b) * input_dim_;
      for (int d = 0; d < input_dim_; ++d) dst[d] = src[d];
    }
  }
  return grad_input_;
}

void Lstm::CollectParams(std::vector<Param*>& out) {
  out.push_back(&weight_x_);
  out.push_back(&weight_h_);
  out.push_back(&bias_);
}

}  // namespace fedcross::nn
