#ifndef FEDCROSS_NN_INIT_H_
#define FEDCROSS_NN_INIT_H_

#include "tensor/tensor.h"
#include "util/rng.h"

namespace fedcross::nn {

// Weight initialisers. fan_in is the number of inputs feeding one output
// unit (for conv: in_channels * kernel_h * kernel_w).

// Kaiming-He normal: N(0, sqrt(2 / fan_in)); suited to ReLU networks.
Tensor KaimingNormal(Tensor::Shape shape, int fan_in, util::Rng& rng);

// Xavier-Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out));
// suited to tanh/sigmoid (LSTM) networks.
Tensor XavierUniform(Tensor::Shape shape, int fan_in, int fan_out,
                     util::Rng& rng);

}  // namespace fedcross::nn

#endif  // FEDCROSS_NN_INIT_H_
