#include "nn/flatten.h"

namespace fedcross::nn {

Tensor Flatten::Forward(const Tensor& input, bool train) {
  (void)train;
  FC_CHECK_GE(input.ndim(), 2);
  cached_input_shape_ = input.shape();
  int batch = input.dim(0);
  int features = static_cast<int>(input.numel() / batch);
  Tensor output = input;
  output.Reshape({batch, features});
  return output;
}

Tensor Flatten::Backward(const Tensor& grad_output) {
  Tensor grad_input = grad_output;
  grad_input.Reshape(cached_input_shape_);
  return grad_input;
}

}  // namespace fedcross::nn
