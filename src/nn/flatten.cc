#include "nn/flatten.h"

namespace fedcross::nn {

const Tensor& Flatten::Forward(const Tensor& input, bool train) {
  (void)train;
  FC_CHECK_GE(input.ndim(), 2);
  cached_input_shape_ = input.shape();
  int batch = input.dim(0);
  int features = static_cast<int>(input.numel() / batch);
  output_ = input;  // capacity-reusing copy
  output_.Reshape({batch, features});
  return output_;
}

const Tensor& Flatten::Backward(const Tensor& grad_output) {
  grad_input_ = grad_output;
  grad_input_.Reshape(cached_input_shape_);
  return grad_input_;
}

}  // namespace fedcross::nn
