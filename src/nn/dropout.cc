#include "nn/dropout.h"

namespace fedcross::nn {

Dropout::Dropout(float rate, std::uint64_t seed)
    : rate_(rate), seed_(seed), rng_(seed) {
  FC_CHECK_GE(rate, 0.0f);
  FC_CHECK_LT(rate, 1.0f);
}

const Tensor& Dropout::Forward(const Tensor& input, bool train) {
  last_was_train_ = train && rate_ > 0.0f;
  if (!last_was_train_) return input;
  cached_mask_.ResizeTo(input.shape());
  float scale = 1.0f / (1.0f - rate_);
  float* mask = cached_mask_.data();
  for (std::int64_t i = 0; i < cached_mask_.numel(); ++i) {
    mask[i] = rng_.Uniform() < rate_ ? 0.0f : scale;
  }
  output_ = input;
  output_.MulInPlace(cached_mask_);
  return output_;
}

const Tensor& Dropout::Backward(const Tensor& grad_output) {
  if (!last_was_train_) return grad_output;
  grad_input_ = grad_output;
  grad_input_.MulInPlace(cached_mask_);
  return grad_input_;
}

}  // namespace fedcross::nn
