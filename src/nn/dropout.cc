#include "nn/dropout.h"

#include "nn/kernels.h"

namespace fedcross::nn {

Dropout::Dropout(float rate, std::uint64_t seed)
    : rate_(rate), seed_(seed), rng_(seed) {
  FC_CHECK_GE(rate, 0.0f);
  FC_CHECK_LT(rate, 1.0f);
}

const Tensor& Dropout::Forward(const Tensor& input, bool train) {
  last_was_train_ = train && rate_ > 0.0f;
  if (!last_was_train_) return input;
  cached_mask_.ResizeTo(input.shape());
  float scale = 1.0f / (1.0f - rate_);
  kernels::DropoutMask(rng_, rate_, scale, cached_mask_.data(),
                       cached_mask_.numel());
  output_.ResizeTo(input.shape());
  kernels::DropoutApply(input.data(), cached_mask_.data(), output_.data(),
                        output_.numel());
  return output_;
}

const Tensor& Dropout::Backward(const Tensor& grad_output) {
  if (!last_was_train_) return grad_output;
  grad_input_.ResizeTo(grad_output.shape());
  kernels::DropoutApply(grad_output.data(), cached_mask_.data(),
                        grad_input_.data(), grad_input_.numel());
  return grad_input_;
}

}  // namespace fedcross::nn
