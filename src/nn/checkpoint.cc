#include "nn/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace fedcross::nn {
namespace {

constexpr std::uint32_t kMagic = 0x46435054;  // "FCPT"
constexpr std::uint32_t kVersion = 1;

void AppendU32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(value));
}

bool ReadU32(const std::vector<std::uint8_t>& in, std::size_t& offset,
             std::uint32_t& value) {
  if (offset + sizeof(value) > in.size()) return false;
  std::memcpy(&value, in.data() + offset, sizeof(value));
  offset += sizeof(value);
  return true;
}

util::Status WriteFile(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) return util::Status::Internal("cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) return util::Status::Internal("short write to " + path);
  return util::Status::Ok();
}

util::StatusOr<std::vector<std::uint8_t>> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) return util::Status::NotFound("cannot open " + path);
  std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in.good()) return util::Status::Internal("short read from " + path);
  return bytes;
}

util::Status CheckHeader(const std::vector<std::uint8_t>& bytes,
                         std::size_t& offset, std::uint32_t& count) {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!ReadU32(bytes, offset, magic) || magic != kMagic) {
    return util::Status::InvalidArgument("not a FedCross checkpoint");
  }
  if (!ReadU32(bytes, offset, version) || version != kVersion) {
    return util::Status::InvalidArgument("unsupported checkpoint version");
  }
  if (!ReadU32(bytes, offset, count)) {
    return util::Status::InvalidArgument("truncated checkpoint header");
  }
  return util::Status::Ok();
}

}  // namespace

util::Status SaveModel(Sequential& model, const std::string& path) {
  std::vector<std::uint8_t> bytes;
  AppendU32(bytes, kMagic);
  AppendU32(bytes, kVersion);
  AppendU32(bytes, static_cast<std::uint32_t>(model.Params().size()));
  for (Param* param : model.Params()) {
    param->value.SerializeTo(bytes);
  }
  return WriteFile(path, bytes);
}

util::Status LoadModel(Sequential& model, const std::string& path) {
  auto bytes_or = ReadFile(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::vector<std::uint8_t>& bytes = bytes_or.value();

  std::size_t offset = 0;
  std::uint32_t count = 0;
  FC_RETURN_IF_ERROR(CheckHeader(bytes, offset, count));
  if (count != model.Params().size()) {
    return util::Status::FailedPrecondition(
        "checkpoint has " + std::to_string(count) + " tensors, model has " +
        std::to_string(model.Params().size()));
  }
  // Stage into temporaries first so a malformed file cannot leave the model
  // half-loaded.
  std::vector<Tensor> staged(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!Tensor::DeserializeFrom(bytes, offset, staged[i])) {
      return util::Status::InvalidArgument("corrupt tensor " +
                                           std::to_string(i));
    }
    if (!staged[i].SameShape(model.Params()[i]->value)) {
      return util::Status::FailedPrecondition(
          "tensor " + std::to_string(i) + " shape mismatch: checkpoint " +
          staged[i].ShapeString() + " vs model " +
          model.Params()[i]->value.ShapeString());
    }
  }
  if (offset != bytes.size()) {
    return util::Status::InvalidArgument("trailing bytes in checkpoint");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    model.Params()[i]->value = std::move(staged[i]);
  }
  return util::Status::Ok();
}

util::Status SaveFlatParams(const std::vector<float>& params,
                            const std::string& path) {
  std::vector<std::uint8_t> bytes;
  AppendU32(bytes, kMagic);
  AppendU32(bytes, kVersion);
  AppendU32(bytes, 1);
  Tensor wrapper = Tensor::FromVector(
      {static_cast<int>(params.size())}, std::vector<float>(params));
  wrapper.SerializeTo(bytes);
  return WriteFile(path, bytes);
}

util::StatusOr<std::vector<float>> LoadFlatParams(const std::string& path) {
  auto bytes_or = ReadFile(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::vector<std::uint8_t>& bytes = bytes_or.value();

  std::size_t offset = 0;
  std::uint32_t count = 0;
  FC_RETURN_IF_ERROR(CheckHeader(bytes, offset, count));
  if (count != 1) {
    return util::Status::InvalidArgument("expected a single flat tensor");
  }
  Tensor wrapper;
  if (!Tensor::DeserializeFrom(bytes, offset, wrapper)) {
    return util::Status::InvalidArgument("corrupt flat tensor");
  }
  std::vector<float> params(wrapper.numel());
  std::memcpy(params.data(), wrapper.data(), params.size() * sizeof(float));
  return params;
}

}  // namespace fedcross::nn
