#include "nn/sequential.h"

#include <cstring>

namespace fedcross::nn {

Sequential::Sequential(std::vector<std::unique_ptr<Layer>> layers)
    : layers_(std::move(layers)) {}

void Sequential::Add(std::unique_ptr<Layer> layer) {
  FC_CHECK(layer != nullptr);
  FC_CHECK(!params_cached_) << "Add after parameter access";
  layers_.push_back(std::move(layer));
}

const Tensor& Sequential::Forward(const Tensor& input, bool train) {
  const Tensor* activation = &input;
  for (auto& layer : layers_) {
    activation = &layer->Forward(*activation, train);
  }
  return *activation;
}

const Tensor& Sequential::Backward(const Tensor& grad_output) {
  const Tensor* grad = &grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = &(*it)->Backward(*grad);
    if (grad->numel() == 0) break;  // discrete-input layer: stop propagating
  }
  return *grad;
}

void Sequential::CollectParams(std::vector<Param*>& out) {
  for (auto& layer : layers_) layer->CollectParams(out);
}

void Sequential::ResetState() {
  for (auto& layer : layers_) layer->ResetState();
}

const std::vector<Param*>& Sequential::Params() {
  if (!params_cached_) {
    CollectParams(params_cache_);
    params_cached_ = true;
  }
  return params_cache_;
}

std::int64_t Sequential::NumParams() {
  std::int64_t total = 0;
  for (Param* param : Params()) total += param->value.numel();
  return total;
}

void Sequential::ZeroGrad() {
  for (Param* param : Params()) param->ZeroGrad();
}

std::vector<float> Sequential::ParamsToFlat() {
  std::vector<float> flat;
  ParamsToFlat(flat);
  return flat;
}

void Sequential::ParamsToFlat(std::vector<float>& out) {
  out.resize(NumParams());  // retains capacity across rounds
  std::size_t offset = 0;
  for (Param* param : Params()) {
    std::memcpy(out.data() + offset, param->value.data(),
                param->value.numel() * sizeof(float));
    offset += param->value.numel();
  }
}

void Sequential::ParamsFromFlat(const std::vector<float>& flat) {
  FC_CHECK_EQ(static_cast<std::int64_t>(flat.size()), NumParams());
  std::size_t offset = 0;
  for (Param* param : Params()) {
    std::memcpy(param->value.data(), flat.data() + offset,
                param->value.numel() * sizeof(float));
    offset += param->value.numel();
  }
}

std::vector<float> Sequential::GradsToFlat() {
  std::vector<float> flat;
  GradsToFlat(flat);
  return flat;
}

void Sequential::GradsToFlat(std::vector<float>& out) {
  out.resize(NumParams());
  std::size_t offset = 0;
  for (Param* param : Params()) {
    std::memcpy(out.data() + offset, param->grad.data(),
                param->grad.numel() * sizeof(float));
    offset += param->grad.numel();
  }
}

std::string Sequential::Summary() {
  std::string summary;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i > 0) summary += "->";
    summary += layers_[i]->Name();
  }
  summary += " (" + std::to_string(NumParams()) + " params)";
  return summary;
}

}  // namespace fedcross::nn
