#ifndef FEDCROSS_NN_EMBEDDING_H_
#define FEDCROSS_NN_EMBEDDING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "util/rng.h"

namespace fedcross::nn {

// Token embedding lookup.
// input:  [batch, time] of integer token ids stored as floats
// output: [batch, time, embed_dim]
//
// Backward accumulates into the embedding rows and returns an empty tensor
// (token ids are discrete, there is no input gradient); Sequential stops
// backpropagation when it sees the empty gradient.
class Embedding : public Layer {
 public:
  Embedding(int vocab_size, int embed_dim, util::Rng& rng);

  const Tensor& Forward(const Tensor& input, bool train) override;
  const Tensor& Backward(const Tensor& grad_output) override;
  void CollectParams(std::vector<Param*>& out) override;
  std::string Name() const override { return "Embedding"; }

  int vocab_size() const { return vocab_size_; }
  int embed_dim() const { return embed_dim_; }

  // Plan-executor access to the table parameter.
  Param& table_param() { return table_; }

 private:
  int vocab_size_;
  int embed_dim_;
  Param table_;
  // Batch-major token ids from last Forward (int64 so the plan executor's
  // argmax-slot storage and this cache share the gather/scatter kernels).
  std::vector<std::int64_t> cached_ids_;
  Tensor output_;
  Tensor empty_grad_;  // stays numel()==0: the stop-backprop sentinel
  int cached_batch_ = 0;
  int cached_time_ = 0;
};

}  // namespace fedcross::nn

#endif  // FEDCROSS_NN_EMBEDDING_H_
