#ifndef FEDCROSS_COMM_WIRE_H_
#define FEDCROSS_COMM_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

// Wire codec for the FL communication path. Every dispatch (server ->
// client) and upload (client -> server) in the simulator round-trips
// through the framed payload format defined here, so the CommTracker
// counts *encoded* bytes measured from real frames instead of the
// float-count estimates the paper's Table I analysis used to rely on.
//
// Frame layout (little-endian):
//
//   u32   magic "FCWP"
//   u8    format version (1)
//   u8    scheme (Scheme enum)
//   u16   reserved (0)
//   u32   tensor count T          -- the shape table: the payload is the
//   u32 x T  per-tensor lengths      flat concatenation of T tensors
//   u64   param count (== sum of lengths)
//   u64   body length in bytes
//   ...   scheme-specific body
//   u32   CRC-32 (IEEE) of every preceding byte
//
// Scheme bodies:
//   kIdentity  raw float32 payload (4 bytes per param)
//   kDelta     per-param zigzag varint of the wrapping int32 difference
//              between the payload's and the reference's float bit
//              patterns -- exactly invertible, so the codec is lossless
//   kInt8      per-tensor float32 scale followed by one stochastically
//              rounded int8 per param (update + error-feedback residual)
//   kTopK      u64 k, an index bitmap (1 bit per param), then the k
//              surviving float32 update values in index order
//   kInt8TopK  u64 k, index bitmap, one global float32 scale, then k
//              stochastically rounded int8 values
//
// Dispatches always use the kIdentity body (the broadcast must be exact:
// FedCross's cross-aggregation and the dropped-client "echo the dispatch"
// semantics both assume the server and the device hold the same bytes), so
// the compression schemes apply to the uplink -- the direction the sparse/
// quantized FL literature (QSGD, DGC, top-k EF-SGD) targets. Lossy uplink
// schemes encode the *update* (trained - dispatched) plus the client's
// error-feedback residual; the part the quantizer dropped goes back into
// the residual so compression noise is compensated across rounds instead
// of accumulating.
//
// Determinism: encoding is a pure function of (payload, reference,
// residual, rng); the stochastic rounding draws come from a caller-seeded
// per-(round, client) Rng, so results are bit-identical for every
// --fl_threads value and across encode orderings.
namespace fedcross::comm {

// Uplink encoding schemes, in wire-format order. Values are stored in
// frames; do not renumber.
enum class Scheme : std::uint8_t {
  kIdentity = 0,  // framed raw floats; bit-identical to uncoded training
  kDelta = 1,     // lossless bit-plane delta vs the dispatched model
  kInt8 = 2,      // 8-bit stochastic uniform quantization + error feedback
  kTopK = 3,      // top-k magnitude sparsification + error feedback
  kInt8TopK = 4,  // top-k selection, then int8 quantization of survivors
};

const char* SchemeName(Scheme scheme);

// Parses "identity" | "delta" | "int8" | "topk" | "int8_topk".
util::StatusOr<Scheme> ParseScheme(const std::string& name);

// True for the schemes whose decode is not bit-exact (kInt8 and the top-k
// family); these maintain per-client error-feedback residuals.
bool SchemeIsLossy(Scheme scheme);

// Per-algorithm codec configuration (AlgorithmConfig::codec).
struct CodecOptions {
  Scheme scheme = Scheme::kIdentity;
  // Fraction of coordinates the top-k schemes keep (k = max(1,
  // round(fraction * params))).
  double topk_fraction = 0.10;
};

// Per-tensor element counts of the flattened payload, captured once from
// the model factory. Every frame carries it, and decode validates it, so a
// frame can never be applied to a model with a different layout.
using ShapeTable = std::vector<std::uint32_t>;

// --- Dispatch path (server -> client) --------------------------------------

// Frames `params` as a kIdentity payload into `frame` (cleared first;
// capacity is reused across calls).
void EncodeDispatch(std::span<const float> params, const ShapeTable& shapes,
                    std::vector<std::uint8_t>& frame);

// Validates and unpacks a dispatch frame into `out` (resized; capacity
// reused). Returns InvalidArgument on truncation, CRC mismatch, a foreign
// magic/version, a non-identity scheme, or an inconsistent shape table.
util::Status DecodeDispatch(std::span<const std::uint8_t> frame,
                            const ShapeTable& shapes, std::vector<float>& out);

// The exact frame size EncodeDispatch produces for `params` elements --
// what a dropped client still costs in downlink bytes.
std::uint64_t DispatchWireBytes(std::uint64_t params, const ShapeTable& shapes);

// --- Upload path (client -> server) ----------------------------------------

// Encodes `trained` against the dispatched `reference` under
// `options.scheme`. `residual` is this client's error-feedback buffer: the
// lossy schemes add it to the update before quantizing and store the
// uncaptured remainder back; lossless schemes leave it untouched. An empty
// residual means zeros and is sized on first use. `rng` drives the
// stochastic rounding of the int8 schemes and must be seeded per
// (round, client) for thread-count-invariant results.
//
// Non-finite updates (NaN/Inf corrupted uploads) are framed so they decode
// to non-finite values -- upload screening stays effective through the
// codec -- and skip the residual update so one corrupted round cannot
// poison the client's error-feedback state.
void EncodeUpload(const CodecOptions& options, std::span<const float> trained,
                  std::span<const float> reference, const ShapeTable& shapes,
                  std::vector<float>& residual, util::Rng& rng,
                  std::vector<std::uint8_t>& frame);

// Validates an upload frame and reconstructs the uploaded model into `out`
// (resized; capacity reused; `out` may alias neither `frame` nor
// `reference`). The frame's scheme byte selects the decoder. Returns
// InvalidArgument on any malformed, truncated, or CRC-corrupt frame.
util::Status DecodeUpload(std::span<const std::uint8_t> frame,
                          std::span<const float> reference,
                          const ShapeTable& shapes, std::vector<float>& out);

// --- Helpers shared with tests ---------------------------------------------

// IEEE CRC-32 (the zlib polynomial) of `bytes`.
std::uint32_t Crc32(std::span<const std::uint8_t> bytes);

// The k the top-k schemes keep for `params` coordinates at `fraction`.
std::uint64_t TopKCount(std::uint64_t params, double fraction);

}  // namespace fedcross::comm

#endif  // FEDCROSS_COMM_WIRE_H_
