#include "comm/wire.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/check.h"

namespace fedcross::comm {
namespace {

constexpr std::uint32_t kMagic = 0x50574346;  // "FCWP"
constexpr std::uint8_t kFormatVersion = 1;
constexpr std::uint32_t kMaxTensors = 1u << 20;

// Thread-local scratch for the variable-size intermediates (scheme bodies,
// update vectors, top-k workspaces). Pool workers are long-lived, so the
// capacity is reused across rounds and the steady-state encode path
// allocates nothing.
struct EncodeScratch {
  std::vector<std::uint8_t> body;
  std::vector<float> update;
  std::vector<float> mags;
  std::vector<float> order;
};

EncodeScratch& Scratch() {
  thread_local EncodeScratch scratch;
  return scratch;
}

void AppendRaw(std::vector<std::uint8_t>& out, const void* src,
               std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(src);
  out.insert(out.end(), bytes, bytes + size);
}

template <typename T>
void AppendPod(std::vector<std::uint8_t>& out, T value) {
  AppendRaw(out, &value, sizeof(value));
}

template <typename T>
bool ReadPod(std::span<const std::uint8_t> in, std::size_t& offset, T& value) {
  if (offset + sizeof(T) > in.size()) return false;
  std::memcpy(&value, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return true;
}

util::Status Malformed(const std::string& what) {
  return util::Status::InvalidArgument("malformed wire frame: " + what);
}

std::uint64_t ShapeSum(const ShapeTable& shapes) {
  std::uint64_t sum = 0;
  for (std::uint32_t len : shapes) sum += len;
  return sum;
}

// Header bytes for a table of T tensors: fixed fields + the length list.
std::size_t HeaderBytes(std::size_t tensors) {
  return 8 + 4 + 4 * tensors + 8 + 8;
}

// Wraps a finished scheme body into a full frame (header + body + CRC).
void AssembleFrame(Scheme scheme, const ShapeTable& shapes,
                   std::uint64_t param_count,
                   const std::vector<std::uint8_t>& body,
                   std::vector<std::uint8_t>& frame) {
  frame.clear();
  frame.reserve(HeaderBytes(shapes.size()) + body.size() + 4);
  AppendPod(frame, kMagic);
  AppendPod(frame, kFormatVersion);
  AppendPod(frame, static_cast<std::uint8_t>(scheme));
  AppendPod(frame, static_cast<std::uint16_t>(0));  // reserved
  AppendPod(frame, static_cast<std::uint32_t>(shapes.size()));
  for (std::uint32_t len : shapes) AppendPod(frame, len);
  AppendPod(frame, param_count);
  AppendPod(frame, static_cast<std::uint64_t>(body.size()));
  AppendRaw(frame, body.data(), body.size());
  AppendPod(frame, Crc32({frame.data(), frame.size()}));
}

struct ParsedFrame {
  Scheme scheme = Scheme::kIdentity;
  std::uint64_t params = 0;
  std::span<const std::uint8_t> body;
};

// Validates CRC, magic/version, and the shape table against the decoder's
// expectation, and exposes the scheme body.
util::Status ParseFrame(std::span<const std::uint8_t> frame,
                        const ShapeTable& shapes, ParsedFrame& out) {
  if (frame.size() < HeaderBytes(0) + 4) return Malformed("truncated header");
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, frame.data() + frame.size() - 4, 4);
  if (Crc32(frame.subspan(0, frame.size() - 4)) != stored_crc) {
    return Malformed("CRC mismatch");
  }

  std::size_t offset = 0;
  std::uint32_t magic = 0;
  std::uint8_t version = 0;
  std::uint8_t scheme_byte = 0;
  std::uint16_t reserved = 0;
  std::uint32_t tensors = 0;
  ReadPod(frame, offset, magic);
  ReadPod(frame, offset, version);
  ReadPod(frame, offset, scheme_byte);
  ReadPod(frame, offset, reserved);
  ReadPod(frame, offset, tensors);
  if (magic != kMagic) return Malformed("bad magic");
  if (version != kFormatVersion) {
    return Malformed("unsupported format version " + std::to_string(version));
  }
  if (scheme_byte > static_cast<std::uint8_t>(Scheme::kInt8TopK)) {
    return Malformed("unknown scheme " + std::to_string(scheme_byte));
  }
  if (tensors > kMaxTensors || tensors != shapes.size()) {
    return Malformed("shape table has " + std::to_string(tensors) +
                     " tensors, expected " + std::to_string(shapes.size()));
  }
  for (std::uint32_t t = 0; t < tensors; ++t) {
    std::uint32_t len = 0;
    if (!ReadPod(frame, offset, len)) return Malformed("truncated shape table");
    if (len != shapes[t]) {
      return Malformed("tensor " + std::to_string(t) + " has " +
                       std::to_string(len) + " params, expected " +
                       std::to_string(shapes[t]));
    }
  }
  std::uint64_t params = 0;
  std::uint64_t body_bytes = 0;
  if (!ReadPod(frame, offset, params) || !ReadPod(frame, offset, body_bytes)) {
    return Malformed("truncated header");
  }
  if (params != ShapeSum(shapes)) {
    return Malformed("param count disagrees with shape table");
  }
  if (body_bytes != frame.size() - offset - 4) {
    return Malformed("body length disagrees with frame size");
  }
  out.scheme = static_cast<Scheme>(scheme_byte);
  out.params = params;
  out.body = frame.subspan(offset, static_cast<std::size_t>(body_bytes));
  return util::Status::Ok();
}

// --- varint + zigzag (kDelta) ----------------------------------------------

void AppendVarint(std::vector<std::uint8_t>& out, std::uint32_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

bool ReadVarint(std::span<const std::uint8_t> in, std::size_t& offset,
                std::uint32_t& value) {
  value = 0;
  for (int shift = 0; shift < 35; shift += 7) {
    if (offset >= in.size()) return false;
    std::uint8_t byte = in[offset++];
    value |= static_cast<std::uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;  // over-long varint
}

std::uint32_t ZigZag(std::uint32_t delta) {
  return (delta << 1) ^
         static_cast<std::uint32_t>(static_cast<std::int32_t>(delta) >> 31);
}

std::uint32_t UnZigZag(std::uint32_t z) { return (z >> 1) ^ (0u - (z & 1u)); }

std::uint32_t FloatBits(float value) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

float BitsFloat(std::uint32_t bits) {
  float value = 0.0f;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

// --- int8 stochastic rounding ----------------------------------------------

std::int8_t QuantizeStochastic(float value, float scale, util::Rng& rng) {
  float y = std::clamp(value / scale, -127.0f, 127.0f);
  float lo = std::floor(y);
  // One uniform draw per coordinate regardless of value keeps the draw
  // sequence aligned across clients with different payloads.
  int q = static_cast<int>(lo) + (rng.Uniform() < y - lo ? 1 : 0);
  return static_cast<std::int8_t>(std::clamp(q, -127, 127));
}

// The error-feedback input: update = (trained - reference) + residual.
// Returns true when every coordinate is finite; a corrupted (NaN/Inf)
// upload is still framed -- it must reach the server-side screen -- but the
// caller then skips the residual update.
bool BuildUpdate(std::span<const float> trained, std::span<const float> ref,
                 const std::vector<float>& residual,
                 std::vector<float>& update) {
  const std::size_t n = trained.size();
  update.resize(n);
  bool finite = true;
  for (std::size_t i = 0; i < n; ++i) {
    float e = trained[i] - ref[i];
    if (!residual.empty()) e += residual[i];
    update[i] = e;
    finite &= std::isfinite(e) != 0;
  }
  return finite;
}

void EncodeInt8Body(const ShapeTable& shapes, const std::vector<float>& update,
                    bool finite, util::Rng& rng, std::vector<float>& residual,
                    std::vector<std::uint8_t>& body) {
  std::size_t offset = 0;
  for (std::uint32_t len : shapes) {
    float maxabs = 0.0f;
    for (std::uint32_t i = 0; i < len; ++i) {
      float a = std::fabs(update[offset + i]);
      if (std::isfinite(a) && a > maxabs) maxabs = a;
    }
    // A non-finite chunk ships a NaN scale: the whole chunk decodes
    // non-finite and the screening gate rejects the upload.
    float scale = finite ? maxabs / 127.0f
                         : std::numeric_limits<float>::quiet_NaN();
    AppendPod(body, scale);
    if (!finite || scale == 0.0f) {
      body.insert(body.end(), len, 0);
      if (finite) {
        for (std::uint32_t i = 0; i < len; ++i) residual[offset + i] = 0.0f;
      }
    } else {
      for (std::uint32_t i = 0; i < len; ++i) {
        std::int8_t q = QuantizeStochastic(update[offset + i], scale, rng);
        body.push_back(static_cast<std::uint8_t>(q));
        residual[offset + i] = update[offset + i] - q * scale;
      }
    }
    offset += len;
  }
}

// Deterministic top-k selection over magnitudes: strictly-larger values
// first, ties broken toward the lowest index. Non-finite coordinates rank
// as +inf so corrupted values always survive into the frame (and get
// screened server-side). Fills `selected` as an n-bit bitmap.
void SelectTopK(const std::vector<float>& update, std::uint64_t k,
                std::vector<float>& mags, std::vector<float>& order,
                std::vector<std::uint8_t>& bitmap,
                std::vector<std::uint32_t>& indices) {
  const std::size_t n = update.size();
  mags.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    float a = std::fabs(update[i]);
    mags[i] = std::isfinite(a) ? a : std::numeric_limits<float>::infinity();
  }
  order = mags;
  std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                   std::greater<float>());
  const float threshold = order[k - 1];
  std::uint64_t above = 0;
  for (float m : mags) above += m > threshold ? 1 : 0;
  std::uint64_t at_threshold = k - above;

  bitmap.assign((n + 7) / 8, 0);
  indices.clear();
  for (std::size_t i = 0; i < n; ++i) {
    bool take = mags[i] > threshold;
    if (!take && mags[i] == threshold && at_threshold > 0) {
      take = true;
      --at_threshold;
    }
    if (take) {
      bitmap[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
      indices.push_back(static_cast<std::uint32_t>(i));
    }
  }
  FC_CHECK_EQ(indices.size(), k);
}

void EncodeTopKBody(bool quantize, double fraction,
                    const std::vector<float>& update, bool finite,
                    util::Rng& rng, std::vector<float>& residual,
                    std::vector<std::uint8_t>& body) {
  const std::size_t n = update.size();
  const std::uint64_t k = TopKCount(n, fraction);
  thread_local std::vector<std::uint8_t> bitmap;
  thread_local std::vector<std::uint32_t> indices;
  SelectTopK(update, k, Scratch().mags, Scratch().order, bitmap, indices);

  AppendPod(body, k);
  AppendRaw(body, bitmap.data(), bitmap.size());
  if (finite) {
    for (std::size_t i = 0; i < n; ++i) residual[i] = update[i];
  }
  if (!quantize) {
    for (std::uint32_t i : indices) {
      AppendPod(body, update[i]);
      if (finite) residual[i] = 0.0f;
    }
    return;
  }
  float maxabs = 0.0f;
  for (std::uint32_t i : indices) {
    float a = std::fabs(update[i]);
    if (std::isfinite(a) && a > maxabs) maxabs = a;
  }
  float scale =
      finite ? maxabs / 127.0f : std::numeric_limits<float>::quiet_NaN();
  AppendPod(body, scale);
  if (!finite || scale == 0.0f) {
    body.insert(body.end(), indices.size(), 0);
    if (finite) {
      for (std::uint32_t i : indices) residual[i] = update[i];
    }
  } else {
    for (std::uint32_t i : indices) {
      std::int8_t q = QuantizeStochastic(update[i], scale, rng);
      body.push_back(static_cast<std::uint8_t>(q));
      residual[i] = update[i] - q * scale;
    }
  }
}

util::Status DecodeIdentityBody(const ParsedFrame& frame,
                                std::vector<float>& out) {
  if (frame.body.size() != frame.params * sizeof(float)) {
    return Malformed("identity body size");
  }
  out.resize(static_cast<std::size_t>(frame.params));
  std::memcpy(out.data(), frame.body.data(), frame.body.size());
  return util::Status::Ok();
}

util::Status DecodeDeltaBody(const ParsedFrame& frame,
                             std::span<const float> reference,
                             std::vector<float>& out) {
  out.resize(static_cast<std::size_t>(frame.params));
  std::size_t offset = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint32_t z = 0;
    if (!ReadVarint(frame.body, offset, z)) {
      return Malformed("truncated delta stream");
    }
    out[i] = BitsFloat(FloatBits(reference[i]) + UnZigZag(z));
  }
  if (offset != frame.body.size()) return Malformed("trailing delta bytes");
  return util::Status::Ok();
}

util::Status DecodeInt8Body(const ParsedFrame& frame,
                            std::span<const float> reference,
                            const ShapeTable& shapes, std::vector<float>& out) {
  std::uint64_t expected = 0;
  for (std::uint32_t len : shapes) expected += 4 + len;
  if (frame.body.size() != expected) return Malformed("int8 body size");
  out.resize(static_cast<std::size_t>(frame.params));
  std::size_t offset = 0;
  std::size_t param = 0;
  for (std::uint32_t len : shapes) {
    float scale = 0.0f;
    ReadPod(frame.body, offset, scale);
    for (std::uint32_t i = 0; i < len; ++i, ++param) {
      auto q = static_cast<std::int8_t>(frame.body[offset++]);
      out[param] = reference[param] + q * scale;
    }
  }
  return util::Status::Ok();
}

util::Status DecodeTopKBody(bool quantized, const ParsedFrame& frame,
                            std::span<const float> reference,
                            std::vector<float>& out) {
  const std::size_t n = static_cast<std::size_t>(frame.params);
  std::size_t offset = 0;
  std::uint64_t k = 0;
  if (!ReadPod(frame.body, offset, k)) return Malformed("truncated top-k");
  if (k == 0 || k > n) return Malformed("top-k count out of range");
  const std::size_t bitmap_bytes = (n + 7) / 8;
  if (frame.body.size() < offset + bitmap_bytes) {
    return Malformed("truncated top-k bitmap");
  }
  std::span<const std::uint8_t> bitmap =
      frame.body.subspan(offset, bitmap_bytes);
  offset += bitmap_bytes;
  std::uint64_t set_bits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    set_bits += (bitmap[i / 8] >> (i % 8)) & 1u;
  }
  if (set_bits != k) return Malformed("top-k bitmap population mismatch");

  float scale = 0.0f;
  if (quantized && !ReadPod(frame.body, offset, scale)) {
    return Malformed("truncated top-k scale");
  }
  const std::size_t value_bytes = quantized ? k : k * sizeof(float);
  if (frame.body.size() != offset + value_bytes) {
    return Malformed("top-k body size");
  }
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    float delta = 0.0f;
    if ((bitmap[i / 8] >> (i % 8)) & 1u) {
      if (quantized) {
        delta = static_cast<std::int8_t>(frame.body[offset++]) * scale;
      } else {
        ReadPod(frame.body, offset, delta);
      }
    }
    out[i] = reference[i] + delta;
  }
  return util::Status::Ok();
}

}  // namespace

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kIdentity:
      return "identity";
    case Scheme::kDelta:
      return "delta";
    case Scheme::kInt8:
      return "int8";
    case Scheme::kTopK:
      return "topk";
    case Scheme::kInt8TopK:
      return "int8_topk";
  }
  return "unknown";
}

util::StatusOr<Scheme> ParseScheme(const std::string& name) {
  if (name == "identity" || name == "none") return Scheme::kIdentity;
  if (name == "delta") return Scheme::kDelta;
  if (name == "int8") return Scheme::kInt8;
  if (name == "topk" || name == "top-k") return Scheme::kTopK;
  if (name == "int8_topk" || name == "int8-topk") return Scheme::kInt8TopK;
  return util::Status::InvalidArgument(
      "unknown codec '" + name +
      "' (want identity|delta|int8|topk|int8_topk)");
}

bool SchemeIsLossy(Scheme scheme) {
  return scheme == Scheme::kInt8 || scheme == Scheme::kTopK ||
         scheme == Scheme::kInt8TopK;
}

std::uint32_t Crc32(std::span<const std::uint8_t> bytes) {
  // Slice-by-8: same polynomial and values as the textbook byte-at-a-time
  // loop, but eight table lookups per 8-byte block break the serial
  // crc -> crc dependency chain that made the checksum show up beside the
  // GEMMs in round profiles (every frame is checksummed twice per hop).
  static const auto* tables = [] {
    auto* t = new std::uint32_t[8][256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (int s = 1; s < 8; ++s) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        t[s][i] = t[0][t[s - 1][i] & 0xffu] ^ (t[s - 1][i] >> 8);
      }
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint32_t lo = 0;
      std::uint32_t hi = 0;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= crc;
      crc = tables[7][lo & 0xffu] ^ tables[6][(lo >> 8) & 0xffu] ^
            tables[5][(lo >> 16) & 0xffu] ^ tables[4][lo >> 24] ^
            tables[3][hi & 0xffu] ^ tables[2][(hi >> 8) & 0xffu] ^
            tables[1][(hi >> 16) & 0xffu] ^ tables[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  for (; n > 0; --n, ++p) {
    crc = tables[0][(crc ^ *p) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::uint64_t TopKCount(std::uint64_t params, double fraction) {
  if (params == 0) return 0;
  auto k = static_cast<std::uint64_t>(
      std::llround(fraction * static_cast<double>(params)));
  return std::clamp<std::uint64_t>(k, 1, params);
}

void EncodeDispatch(std::span<const float> params, const ShapeTable& shapes,
                    std::vector<std::uint8_t>& frame) {
  FC_CHECK_EQ(params.size(), ShapeSum(shapes));
  std::vector<std::uint8_t>& body = Scratch().body;
  body.clear();
  AppendRaw(body, params.data(), params.size() * sizeof(float));
  AssembleFrame(Scheme::kIdentity, shapes, params.size(), body, frame);
}

util::Status DecodeDispatch(std::span<const std::uint8_t> frame,
                            const ShapeTable& shapes,
                            std::vector<float>& out) {
  ParsedFrame parsed;
  FC_RETURN_IF_ERROR(ParseFrame(frame, shapes, parsed));
  if (parsed.scheme != Scheme::kIdentity) {
    return Malformed("dispatch frames must use the identity scheme");
  }
  return DecodeIdentityBody(parsed, out);
}

std::uint64_t DispatchWireBytes(std::uint64_t params,
                                const ShapeTable& shapes) {
  return HeaderBytes(shapes.size()) + params * sizeof(float) + 4;
}

void EncodeUpload(const CodecOptions& options, std::span<const float> trained,
                  std::span<const float> reference, const ShapeTable& shapes,
                  std::vector<float>& residual, util::Rng& rng,
                  std::vector<std::uint8_t>& frame) {
  const std::size_t n = trained.size();
  FC_CHECK_EQ(n, reference.size());
  FC_CHECK_EQ(n, ShapeSum(shapes));
  std::vector<std::uint8_t>& body = Scratch().body;
  body.clear();

  switch (options.scheme) {
    case Scheme::kIdentity:
      AppendRaw(body, trained.data(), n * sizeof(float));
      break;
    case Scheme::kDelta:
      for (std::size_t i = 0; i < n; ++i) {
        AppendVarint(body,
                     ZigZag(FloatBits(trained[i]) - FloatBits(reference[i])));
      }
      break;
    case Scheme::kInt8:
    case Scheme::kTopK:
    case Scheme::kInt8TopK: {
      if (residual.empty()) residual.assign(n, 0.0f);
      FC_CHECK_EQ(residual.size(), n);
      std::vector<float>& update = Scratch().update;
      bool finite = BuildUpdate(trained, reference, residual, update);
      if (options.scheme == Scheme::kInt8) {
        EncodeInt8Body(shapes, update, finite, rng, residual, body);
      } else {
        EncodeTopKBody(options.scheme == Scheme::kInt8TopK,
                       options.topk_fraction, update, finite, rng, residual,
                       body);
      }
      break;
    }
  }
  AssembleFrame(options.scheme, shapes, n, body, frame);
}

util::Status DecodeUpload(std::span<const std::uint8_t> frame,
                          std::span<const float> reference,
                          const ShapeTable& shapes, std::vector<float>& out) {
  ParsedFrame parsed;
  FC_RETURN_IF_ERROR(ParseFrame(frame, shapes, parsed));
  if (parsed.params != reference.size()) {
    return Malformed("param count disagrees with the dispatched model");
  }
  switch (parsed.scheme) {
    case Scheme::kIdentity:
      return DecodeIdentityBody(parsed, out);
    case Scheme::kDelta:
      return DecodeDeltaBody(parsed, reference, out);
    case Scheme::kInt8:
      return DecodeInt8Body(parsed, reference, shapes, out);
    case Scheme::kTopK:
      return DecodeTopKBody(/*quantized=*/false, parsed, reference, out);
    case Scheme::kInt8TopK:
      return DecodeTopKBody(/*quantized=*/true, parsed, reference, out);
  }
  return Malformed("unreachable scheme");
}

}  // namespace fedcross::comm
