#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>

namespace fedcross::util {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "d") {
    *out = LogLevel::kDebug;
  } else if (lower == "info" || lower == "i") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "w") {
    *out = LogLevel::kWarning;
  } else if (lower == "error" || lower == "e") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warning";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // The prefix is streamed into the same buffer as the message so the final
  // write is one contiguous fwrite; an early level check here would save the
  // formatting cost but FC_LOG sites below the threshold are rare and cheap.
  auto now = std::chrono::system_clock::now();
  std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm_utc{};
  gmtime_r(&seconds, &tm_utc);
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "%02d%02d %02d:%02d:%02d.%03d",
                tm_utc.tm_mon + 1, tm_utc.tm_mday, tm_utc.tm_hour,
                tm_utc.tm_min, tm_utc.tm_sec, millis);
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelTag(level) << stamp << " "
          << (base ? base + 1 : file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < GetLogLevel()) return;
  stream_ << '\n';
  std::string line = stream_.str();
  // Single fwrite: POSIX stdio streams lock per call, so whole lines from
  // concurrent threads cannot interleave (unlike the old printf of a
  // separately-appended "\n").
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace internal
}  // namespace fedcross::util
