#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>

namespace fedcross::util {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelTag(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < GetLogLevel()) return;
  std::string line = stream_.str();
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace internal
}  // namespace fedcross::util
