#ifndef FEDCROSS_UTIL_STATUS_H_
#define FEDCROSS_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

namespace fedcross::util {

// Error categories for recoverable failures. Mirrors the common subset of
// absl::StatusCode that this library needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
};

// Human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// A lightweight success-or-error result. The library is exception-free;
// functions that can fail on user input return Status (or StatusOr<T>).
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Value-or-error wrapper. Access to value() on an error status aborts, so
// callers must test ok() first (or use value_or()).
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT
    FC_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    FC_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T& value() & {
    FC_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T&& value() && {
    FC_CHECK(ok()) << status_.ToString();
    return std::move(value_);
  }

  T value_or(T fallback) const {
    return ok() ? value_ : std::move(fallback);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace fedcross::util

// Propagates a non-OK Status to the caller.
#define FC_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::fedcross::util::Status fc_status_ = (expr); \
    if (!fc_status_.ok()) return fc_status_;      \
  } while (false)

#endif  // FEDCROSS_UTIL_STATUS_H_
