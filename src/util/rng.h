#ifndef FEDCROSS_UTIL_RNG_H_
#define FEDCROSS_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace fedcross::util {

// Deterministic, seedable pseudo-random generator (xoshiro256**) with the
// distribution helpers this library needs. Every stochastic component of
// the simulator takes an explicit Rng (or seed) so runs are reproducible.
//
// Not thread-safe; use one Rng per thread (Fork() derives independent
// streams).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Derives an independent generator; deterministic in (current state, salt).
  Rng Fork(std::uint64_t salt);

  // Uniform on [0, 2^64).
  std::uint64_t NextUint64();

  // Uniform on [0, bound). Requires bound > 0.
  std::uint64_t UniformInt(std::uint64_t bound);

  // Uniform on [lo, hi). Requires lo < hi.
  double Uniform(double lo = 0.0, double hi = 1.0);

  // Standard normal via Box-Muller, scaled to N(mean, stddev^2).
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Gamma(shape, 1.0) via Marsaglia-Tsang; shape > 0.
  double Gamma(double shape);

  // Samples a probability vector from Dirichlet(alpha, ..., alpha) of the
  // given dimension. Requires alpha > 0 and dim > 0.
  std::vector<double> Dirichlet(double alpha, int dim);

  // Samples an index from an (unnormalised) non-negative weight vector.
  // Requires at least one strictly positive weight.
  int Categorical(const std::vector<double>& weights);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = UniformInt(i);
      std::swap(values[i - 1], values[j]);
    }
  }

  // Samples k distinct indices from [0, n) uniformly (partial Fisher-Yates).
  std::vector<int> SampleWithoutReplacement(int n, int k);

  // Samples k distinct indices from [0, n) uniformly in O(k) time and space
  // (Floyd's algorithm), so the cost is independent of the population size.
  // Draw order is fixed and documented: exactly k UniformInt(j + 1) calls for
  // j = n - k .. n - 1, in that order; on a collision the value j itself is
  // taken. Results are returned in insertion order, which is deterministic in
  // the generator state but is NOT the same sequence as
  // SampleWithoutReplacement for the same seed.
  std::vector<std::int64_t> SampleDistinct(std::int64_t n, std::int64_t k);

  // Full generator state, including the Box-Muller cache, so a restored
  // generator continues the exact draw sequence (checkpoint/resume).
  struct State {
    std::uint64_t words[4] = {0, 0, 0, 0};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };
  State GetState() const;
  void SetState(const State& state);

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fedcross::util

#endif  // FEDCROSS_UTIL_RNG_H_
