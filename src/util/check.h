#ifndef FEDCROSS_UTIL_CHECK_H_
#define FEDCROSS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

// Fatal-check macros for programming errors. The library is exception-free
// (Google style); invariant violations abort with a source location and a
// streamed message:
//
//   FC_CHECK(cond) << "details " << value;
//   FC_CHECK_EQ(a, b);
//
// The message stream is only evaluated on failure.

namespace fedcross::util::internal {

// Accumulates a failure message and aborts the process in its destructor.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* file, int line, const char* condition) {
    stream_ << "FC_CHECK failed at " << file << ":" << line << ": "
            << condition;
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    std::string message = stream_.str();
    std::fprintf(stderr, "%s\n", message.c_str());
    std::fflush(stderr);
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace fedcross::util::internal

#define FC_CHECK(condition)                                            \
  if (condition) {                                                     \
  } else /* NOLINT */                                                  \
    ::fedcross::util::internal::CheckFailureStream(__FILE__, __LINE__, \
                                                   #condition)

#define FC_CHECK_EQ(a, b) FC_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ")"
#define FC_CHECK_NE(a, b) FC_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ")"
#define FC_CHECK_LT(a, b) FC_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ")"
#define FC_CHECK_LE(a, b) FC_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ")"
#define FC_CHECK_GT(a, b) FC_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ")"
#define FC_CHECK_GE(a, b) FC_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ")"

#endif  // FEDCROSS_UTIL_CHECK_H_
