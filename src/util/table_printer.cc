#include "util/table_printer.h"

#include <cstdio>

#include "util/check.h"

namespace fedcross::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  FC_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  FC_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::string separator = "+";
  for (std::size_t width : widths) {
    separator.append(width + 2, '-');
    separator += '+';
  }
  separator += '\n';

  std::string out = separator + render_row(header_) + separator;
  for (const auto& row : rows_) out += render_row(row);
  out += separator;
  return out;
}

void TablePrinter::Print(std::FILE* out) const {
  std::string rendered = ToString();
  std::fwrite(rendered.data(), 1, rendered.size(), out);
  std::fflush(out);
}

std::string TablePrinter::MeanStd(double mean, double stddev) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f +- %.2f", mean, stddev);
  return buffer;
}

std::string TablePrinter::Fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

}  // namespace fedcross::util
