#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace fedcross::util {
namespace {

// Handles are resolved once; registration survives MetricsRegistry::Reset so
// the addresses stay valid for the process lifetime.
struct PoolMetrics {
  obs::Counter& tasks = obs::MetricsRegistry::Global().GetCounter(
      "util.pool.tasks");
  obs::Gauge& queue_depth = obs::MetricsRegistry::Global().GetGauge(
      "util.pool.queue_depth");
  obs::Histogram& task_ms = obs::MetricsRegistry::Global().GetHistogram(
      "util.pool.task_ms");
};

PoolMetrics& GetPoolMetrics() {
  static PoolMetrics* metrics = new PoolMetrics();
  return *metrics;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  FC_CHECK(task != nullptr);
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FC_CHECK(!shutting_down_) << "Schedule after shutdown";
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  work_available_.notify_one();
  if (obs::MetricsEnabled()) {
    PoolMetrics& metrics = GetPoolMetrics();
    metrics.tasks.Add(1);
    metrics.queue_depth.Set(static_cast<double>(depth));
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  // Work-sharing loop: indices are claimed from a shared atomic counter by
  // up to num_threads() helper tasks plus the calling thread itself. Caller
  // participation makes nested ParallelFor safe — an inner loop invoked from
  // a worker finishes all its indices inline even if no helper ever runs.
  struct State {
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    std::mutex mutex;
    std::condition_variable all_done;
  };
  auto state = std::make_shared<State>();
  auto run = [state, &fn, count] {
    for (;;) {
      int i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->all_done.notify_all();
      }
    }
  };
  // A helper scheduled after all indices are claimed exits via the counter
  // check without touching `fn`, so the captured reference cannot dangle.
  int helpers = std::min(count - 1, num_threads());
  for (int h = 0; h < helpers; ++h) Schedule(run);
  run();
  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) >= count;
  });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    if (obs::MetricsEnabled()) {
      std::int64_t start_us = obs::TraceNowMicros();
      {
        FC_TRACE_SPAN("pool.task");
        task();
      }
      GetPoolMetrics().task_ms.Observe(
          static_cast<double>(obs::TraceNowMicros() - start_us) / 1000.0);
    } else {
      FC_TRACE_SPAN("pool.task");
      task();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
    }
    work_done_.notify_all();
  }
}

}  // namespace fedcross::util
