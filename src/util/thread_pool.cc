#include "util/thread_pool.h"

#include <utility>

#include "util/check.h"

namespace fedcross::util {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  FC_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FC_CHECK(!shutting_down_) << "Schedule after shutdown";
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  for (int i = 0; i < count; ++i) {
    Schedule([&fn, i] { fn(i); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
    }
    work_done_.notify_all();
  }
}

}  // namespace fedcross::util
