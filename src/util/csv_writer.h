#ifndef FEDCROSS_UTIL_CSV_WRITER_H_
#define FEDCROSS_UTIL_CSV_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace fedcross::util {

// Writes simple CSV files (benchmark outputs). Fields containing commas,
// quotes or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  // Opens `path` for writing (truncates). Check ok() before use.
  explicit CsvWriter(const std::string& path);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool ok() const { return out_.good(); }
  const std::string& path() const { return path_; }

  // Writes one row; values are emitted in order.
  void WriteRow(const std::vector<std::string>& fields);

  // Convenience: formats doubles with 6 significant digits.
  static std::string Field(double value);
  static std::string Field(int value);

 private:
  std::string path_;
  std::ofstream out_;
};

}  // namespace fedcross::util

#endif  // FEDCROSS_UTIL_CSV_WRITER_H_
