#ifndef FEDCROSS_UTIL_LOGGING_H_
#define FEDCROSS_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace fedcross::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Sets the minimum level that reaches stderr (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// "debug" / "info" / "warning" / "error" (case-insensitive; single-letter
// abbreviations d/i/w/e also accepted, matching the line tags). Returns
// false — leaving *out untouched — on anything else.
bool ParseLogLevel(const std::string& text, LogLevel* out);

// Lowercase canonical name, inverse of ParseLogLevel.
const char* LogLevelName(LogLevel level);

namespace internal {

// One log line. The destructor assembles the complete line — wall-clock
// timestamp, level tag, file:line, message, trailing newline — into a single
// buffer and hands it to stderr with one fwrite, so concurrent FC_LOG calls
// from pool workers never interleave mid-line.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace fedcross::util

#define FC_LOG(severity)                                      \
  ::fedcross::util::internal::LogMessage(                     \
      ::fedcross::util::LogLevel::k##severity, __FILE__, __LINE__)

#endif  // FEDCROSS_UTIL_LOGGING_H_
