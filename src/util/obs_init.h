#ifndef FEDCROSS_UTIL_OBS_INIT_H_
#define FEDCROSS_UTIL_OBS_INIT_H_

#include <string>

#include "util/flags.h"
#include "util/status.h"

namespace fedcross::util {

// Default output paths a binary wants when the user passes no explicit
// flags. Empty string = that subsystem stays off.
struct ObsOptions {
  std::string metrics_out;
  std::string trace_out;
  std::string events_out;
};

// Wires the shared observability flags into the obs library:
//
//   --metrics_out=PATH   enable the metrics registry; write a JSON snapshot
//                        of all counters/gauges/histograms on Flush
//   --trace_out=PATH     enable scoped tracing; write Chrome trace-event
//                        JSON (chrome://tracing / Perfetto) on Flush
//   --events_out=PATH    stream one JSONL record per FL round as it ends
//   --log_level=LEVEL    debug|info|warning|error (default info)
//
// Flag values override `defaults`; "-" or "none" turns a default off.
// Returns InvalidArgument on an unparseable --log_level or an events path
// that cannot be opened. Call once near the top of main().
Status InitObservability(FlagParser& flags, const ObsOptions& defaults = {});

// Writes the metrics snapshot and trace file configured at Init time and
// closes the events sink. Idempotent; call once before exit.
Status FlushObservability();

}  // namespace fedcross::util

#endif  // FEDCROSS_UTIL_OBS_INIT_H_
