#ifndef FEDCROSS_UTIL_THREAD_POOL_H_
#define FEDCROSS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fedcross::util {

// Fixed-size worker pool for running independent client-training jobs in
// parallel. Tasks are void() closures; errors must be reported through the
// closure's captured state. Destruction waits for queued work to drain.
class ThreadPool {
 public:
  // num_threads <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task for asynchronous execution.
  void Schedule(std::function<void()> task);

  // Blocks until every scheduled task has finished.
  void Wait();

  // Runs fn(i) for i in [0, count), distributing across the pool, and
  // returns once every index has finished. The calling thread participates
  // in the loop, so ParallelFor may be called from inside a pool task
  // (nested parallelism) without deadlocking: the nested call drains its own
  // indices even when every other worker is busy.
  void ParallelFor(int count, const std::function<void(int)>& fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace fedcross::util

#endif  // FEDCROSS_UTIL_THREAD_POOL_H_
