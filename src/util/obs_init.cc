#include "util/obs_init.h"

#include <utility>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace fedcross::util {
namespace {

std::string g_metrics_out;
std::string g_trace_out;

// "-" / "none" let a caller suppress a binary-provided default from the
// command line without inventing a sentinel per binary.
std::string ResolvePath(FlagParser& flags, const std::string& name,
                        const std::string& default_value) {
  std::string value = flags.GetString(name, default_value);
  if (value == "-" || value == "none") return "";
  return value;
}

}  // namespace

Status InitObservability(FlagParser& flags, const ObsOptions& defaults) {
  std::string log_level = flags.GetString("log_level", "");
  if (!log_level.empty()) {
    LogLevel level = LogLevel::kInfo;
    if (!ParseLogLevel(log_level, &level)) {
      return Status::InvalidArgument("bad --log_level '" + log_level +
                                     "' (want debug|info|warning|error)");
    }
    SetLogLevel(level);
  }

  g_metrics_out = ResolvePath(flags, "metrics_out", defaults.metrics_out);
  g_trace_out = ResolvePath(flags, "trace_out", defaults.trace_out);
  std::string events_out =
      ResolvePath(flags, "events_out", defaults.events_out);

  obs::SetMetricsEnabled(!g_metrics_out.empty());
  obs::SetTracingEnabled(!g_trace_out.empty());
  if (!obs::SetEventsPath(events_out)) {
    return Status::InvalidArgument("cannot open --events_out '" + events_out +
                                   "'");
  }
  return Status::Ok();
}

Status FlushObservability() {
  Status status = Status::Ok();
  if (!g_metrics_out.empty()) {
    if (!obs::MetricsRegistry::Global().WriteJson(g_metrics_out)) {
      status = Status::Internal("cannot write metrics to " + g_metrics_out);
    }
    g_metrics_out.clear();
  }
  if (!g_trace_out.empty()) {
    if (!obs::TraceRecorder::Global().WriteJson(g_trace_out)) {
      status = Status::Internal("cannot write trace to " + g_trace_out);
    }
    g_trace_out.clear();
  }
  obs::SetEventsPath("");
  return status;
}

}  // namespace fedcross::util
