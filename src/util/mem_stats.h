#ifndef FEDCROSS_UTIL_MEM_STATS_H_
#define FEDCROSS_UTIL_MEM_STATS_H_

#include <cstdint>

namespace fedcross::util {

// Process memory probes for the scale experiments and the
// fl.population.* gauges. Both return 0 when the platform offers no
// counter, so callers can log the value unconditionally.

// High-water-mark resident set size in bytes (getrusage ru_maxrss).
std::int64_t PeakRssBytes();

// Current resident set size in bytes (/proc/self/statm; Linux only).
std::int64_t CurrentRssBytes();

}  // namespace fedcross::util

#endif  // FEDCROSS_UTIL_MEM_STATS_H_
