#include "util/mem_stats.h"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace fedcross::util {

std::int64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(usage.ru_maxrss);  // already bytes
#else
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;  // kilobytes
#endif
#else
  return 0;
#endif
}

std::int64_t CurrentRssBytes() {
#if defined(__linux__)
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  long long total_pages = 0;
  long long resident_pages = 0;
  int fields = std::fscanf(statm, "%lld %lld", &total_pages, &resident_pages);
  std::fclose(statm);
  if (fields != 2) return 0;
  long page = sysconf(_SC_PAGESIZE);
  return static_cast<std::int64_t>(resident_pages) * page;
#else
  return 0;
#endif
}

}  // namespace fedcross::util
