#include "util/flags.h"

#include <cstdlib>

namespace fedcross::util {

FlagParser::FlagParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument: " + arg;
      return;
    }
    std::string body = arg.substr(2);
    std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";  // bare boolean flag
    }
  }
}

int FlagParser::GetInt(const std::string& name, int default_value) {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  long value = std::strtol(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    error_ = "flag --" + name + " expects an integer, got '" + it->second + "'";
    return default_value;
  }
  return static_cast<int>(value);
}

double FlagParser::GetDouble(const std::string& name, double default_value) {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    error_ = "flag --" + name + " expects a number, got '" + it->second + "'";
    return default_value;
  }
  return value;
}

std::string FlagParser::GetString(const std::string& name,
                                  std::string default_value) {
  used_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& value = it->second;
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  error_ = "flag --" + name + " expects a boolean, got '" + value + "'";
  return default_value;
}

std::vector<std::string> FlagParser::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, _] : values_) {
    if (used_.count(name) == 0) unused.push_back(name);
  }
  return unused;
}

}  // namespace fedcross::util
