#ifndef FEDCROSS_UTIL_FLAGS_H_
#define FEDCROSS_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace fedcross::util {

// Minimal command-line flag parser for example and bench binaries.
// Accepts "--name=value" and "--name value"; "--help" support is the
// caller's job via Usage().
//
//   FlagParser flags(argc, argv);
//   int rounds = flags.GetInt("rounds", 40);
//   if (!flags.ok()) { fputs(flags.error().c_str(), stderr); return 1; }
class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  // Typed getters with defaults. Unknown names return the default; malformed
  // values set the error state.
  int GetInt(const std::string& name, int default_value);
  double GetDouble(const std::string& name, double default_value);
  std::string GetString(const std::string& name, std::string default_value);
  bool GetBool(const std::string& name, bool default_value);

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  // Parse errors (bad syntax or bad typed value).
  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  // Flags that were provided but never requested by a getter; useful for
  // catching typos in experiment scripts.
  std::vector<std::string> UnusedFlags() const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> used_;
  std::string error_;
};

}  // namespace fedcross::util

#endif  // FEDCROSS_UTIL_FLAGS_H_
