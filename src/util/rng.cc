#include "util/rng.h"

#include <cmath>
#include <numeric>
#include <unordered_set>

namespace fedcross::util {
namespace {

// SplitMix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

Rng::State Rng::GetState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.words[i] = state_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::SetState(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.words[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

Rng Rng::Fork(std::uint64_t salt) {
  return Rng(NextUint64() ^ (salt * 0x9e3779b97f4a7c15ULL));
}

std::uint64_t Rng::NextUint64() {
  // xoshiro256** step.
  std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  FC_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::Uniform(double lo, double hi) {
  FC_CHECK_LT(lo, hi);
  // 53-bit mantissa resolution in [0, 1).
  double unit = static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box-Muller; u1 in (0, 1] to keep the log finite.
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * radius * std::cos(theta);
}

double Rng::Gamma(double shape) {
  FC_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost via Gamma(shape + 1) * U^(1/shape).
    double u = Uniform(1e-12, 1.0);
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia-Tsang squeeze method.
  double d = shape - 1.0 / 3.0;
  double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = Uniform(1e-300, 1.0);
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

std::vector<double> Rng::Dirichlet(double alpha, int dim) {
  FC_CHECK_GT(alpha, 0.0);
  FC_CHECK_GT(dim, 0);
  std::vector<double> sample(dim);
  double total = 0.0;
  for (double& value : sample) {
    value = Gamma(alpha);
    total += value;
  }
  if (total <= 0.0) {
    // Degenerate draw (all zeros under extreme alpha): fall back to uniform.
    for (double& value : sample) value = 1.0 / dim;
    return sample;
  }
  for (double& value : sample) value /= total;
  return sample;
}

int Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    FC_CHECK_GE(w, 0.0);
    total += w;
  }
  FC_CHECK_GT(total, 0.0) << "Categorical needs a positive weight";
  double target = Uniform(0.0, total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  FC_CHECK_GE(n, k);
  FC_CHECK_GE(k, 0);
  std::vector<int> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  // Partial Fisher-Yates: first k positions become the sample.
  for (int i = 0; i < k; ++i) {
    int j = i + static_cast<int>(UniformInt(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::vector<std::int64_t> Rng::SampleDistinct(std::int64_t n, std::int64_t k) {
  FC_CHECK_GE(n, k);
  FC_CHECK_GE(k, 0);
  // Floyd's algorithm: for j in [n - k, n), draw t uniform on [0, j]; take t
  // unless it is already in the sample, in which case take j (which cannot
  // be). Each subset of size k is produced with equal probability, and only
  // O(k) state is touched no matter how large n is.
  std::unordered_set<std::int64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(k) * 2);
  std::vector<std::int64_t> sample;
  sample.reserve(static_cast<std::size_t>(k));
  for (std::int64_t j = n - k; j < n; ++j) {
    auto t = static_cast<std::int64_t>(
        UniformInt(static_cast<std::uint64_t>(j) + 1));
    if (!chosen.insert(t).second) {
      chosen.insert(j);
      sample.push_back(j);
    } else {
      sample.push_back(t);
    }
  }
  return sample;
}

}  // namespace fedcross::util
