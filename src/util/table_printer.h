#ifndef FEDCROSS_UTIL_TABLE_PRINTER_H_
#define FEDCROSS_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace fedcross::util {

// Renders fixed-width ASCII tables for benchmark stdout output, matching
// the row/column structure of the paper's tables.
//
//   TablePrinter table({"Method", "Accuracy"});
//   table.AddRow({"FedAvg", "46.12"});
//   table.Print(stdout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Renders header, separator, and rows with per-column padding.
  std::string ToString() const;
  void Print(std::FILE* out) const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

  // Formats "mean +- std" with two decimals, like the paper's accuracy cells.
  static std::string MeanStd(double mean, double stddev);
  // Fixed-precision helper.
  static std::string Fixed(double value, int decimals = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fedcross::util

#endif  // FEDCROSS_UTIL_TABLE_PRINTER_H_
