#include "util/csv_writer.h"

#include <cstdio>

namespace fedcross::util {
namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string Quote(const std::string& field) {
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << (NeedsQuoting(fields[i]) ? Quote(fields[i]) : fields[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::Field(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

std::string CsvWriter::Field(int value) { return std::to_string(value); }

}  // namespace fedcross::util
