#ifndef FEDCROSS_PRIVACY_DP_H_
#define FEDCROSS_PRIVACY_DP_H_

#include <cstdint>

#include "fl/types.h"
#include "util/rng.h"

namespace fedcross::privacy {

// ---------------------------------------------------------------------------
// Client-side differential privacy: clip-and-noise on the model update
//
// Paper Section IV-F1 notes that FedCross composes with the standard DP
// mechanisms used for FedAvg, since its dispatch/upload pattern is
// identical. The mechanism applied to every upload is the classic DP-SGD
// sanitisation of the model *update*:
//
//   delta  = uploaded - reference            (what local training changed)
//   delta' = delta * min(1, clip / ||delta||)
//   upload = reference + delta' + N(0, (noise_multiplier * clip)^2 I)
//
// Noise is drawn from a dedicated per-(seed, round, salt, slot) privacy
// stream (PrivacySeed below) — never from the stream that drives local
// training — so enabling DP cannot perturb batch shuffling, and DP-enabled
// runs stay bit-identical across --fl_threads values and schedules (the
// same invariant the fault and codec streams uphold).
// ---------------------------------------------------------------------------

struct DpOptions {
  // L2 clipping bound on the update. <= 0 disables the mechanism entirely.
  float clip_norm = 0.0f;
  // Noise scale relative to the clipping bound: sigma = noise_multiplier *
  // clip_norm per coordinate. 0 = clip only (no formal guarantee).
  float noise_multiplier = 0.0f;
  // Privacy slack the accountant converts Renyi guarantees at; the epsilon
  // surfaced in round events and gauges is eps(delta).
  double delta = 1e-5;

  bool Enabled() const { return clip_norm > 0.0f; }
  // True when the mechanism actually carries a differential-privacy
  // guarantee (noise on top of the clip).
  bool Noised() const { return Enabled() && noise_multiplier > 0.0f; }
};

// Seeds the dedicated privacy-noise stream of one client job. Tagged
// differently from the training / fault / codec / clock derivations so the
// streams never collide.
std::uint64_t PrivacySeed(std::uint64_t seed, int round, int salt, int slot);

// Sanitises `params` (the uploaded model) against `reference` (the
// dispatched model) in place. Returns true when the update exceeded the
// clipping bound and was scaled down. No-op returning false when the
// mechanism is disabled.
bool SanitizeUpdateInPlace(const fl::FlatParams& reference,
                           fl::FlatParams& params, const DpOptions& options,
                           util::Rng& rng);

// Value-returning convenience wrapper (the historical fl/privacy.h API).
fl::FlatParams SanitizeUpdate(const fl::FlatParams& reference,
                              const fl::FlatParams& uploaded,
                              const DpOptions& options, util::Rng& rng);

// L2 norm of (uploaded - reference); exposed for tests and diagnostics.
double UpdateNorm(const fl::FlatParams& reference,
                  const fl::FlatParams& uploaded);

// Classic Gaussian-mechanism bound: per-round epsilon for a given noise
// multiplier at privacy slack delta (sigma = sqrt(2 ln(1.25/delta)) / eps).
// A loose single-shot figure for documentation; the RDP accountant
// (privacy/accountant.h) is the tight multi-round ledger.
double GaussianMechanismEpsilon(double noise_multiplier, double delta);

}  // namespace fedcross::privacy

#endif  // FEDCROSS_PRIVACY_DP_H_
