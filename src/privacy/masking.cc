#include "privacy/masking.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace fedcross::privacy {
namespace {

std::uint64_t MixSeed(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t PairSeed(std::uint64_t seed, int round, int salt, int member_u,
                       int member_v) {
  FC_CHECK_LT(member_u, member_v);
  std::uint64_t h = MixSeed(seed ^ 0x7061697273656564ULL);  // "pairseed"
  h = MixSeed(h + static_cast<std::uint64_t>(round));
  h = MixSeed(h + static_cast<std::uint64_t>(salt));
  h = MixSeed(h + static_cast<std::uint64_t>(member_u));
  return MixSeed(h + static_cast<std::uint64_t>(member_v));
}

std::uint64_t FixedPointEncode(float value, int bits) {
  if (!std::isfinite(value)) return 0;
  double scaled = static_cast<double>(value) * std::ldexp(1.0, bits);
  constexpr double kSat = 4611686018427387904.0;  // 2^62
  if (scaled > kSat) scaled = kSat;
  if (scaled < -kSat) scaled = -kSat;
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(
      std::llround(scaled)));
}

MaskedSumReport SimulateMaskedAggregation(
    std::uint64_t run_seed, int round, int salt,
    const std::vector<const fl::FlatParams*>& uploads,
    const MaskOptions& options) {
  MaskedSumReport report;
  report.cohort = static_cast<std::int64_t>(uploads.size());
  std::size_t size = 0;
  for (const fl::FlatParams* upload : uploads) {
    if (upload == nullptr) continue;
    ++report.survivors;
    if (size == 0) {
      size = upload->size();
    } else {
      FC_CHECK_EQ(upload->size(), size);
    }
  }
  if (report.survivors == 0) {
    report.exact = true;  // an empty sum needs no unmasking
    return report;
  }

  // The direct fixed-point sum — the value the unmasked total must equal.
  std::vector<std::uint64_t> direct(size, 0);
  for (const fl::FlatParams* upload : uploads) {
    if (upload == nullptr) continue;
    for (std::size_t i = 0; i < size; ++i) {
      direct[i] += FixedPointEncode((*upload)[i], options.fixed_point_bits);
    }
  }

  // The masked server sum: every survivor contributes its quantised upload
  // plus its signed pairwise masks (lower member adds, higher subtracts).
  // A pair of survivors contributes +m and -m — cancelling in mod-2^64
  // arithmetic; a survivor-dropout pair leaves its mask dangling and is
  // queued for recovery.
  std::vector<std::uint64_t> masked = direct;
  const int members = static_cast<int>(uploads.size());
  std::vector<std::pair<int, int>> dangling;
  for (int u = 0; u < members; ++u) {
    for (int v = u + 1; v < members; ++v) {
      const bool u_alive = uploads[u] != nullptr;
      const bool v_alive = uploads[v] != nullptr;
      if (!u_alive && !v_alive) continue;  // no endpoint uploaded a mask
      ++report.pairs;
      util::Rng stream(PairSeed(run_seed, round, salt, u, v));
      if (u_alive && v_alive) {
        // Apply both endpoints' terms explicitly: the +m from u and the -m
        // from v must annihilate word-for-word, which is exactly what the
        // exactness check at the bottom verifies.
        for (std::size_t i = 0; i < size; ++i) {
          std::uint64_t m = stream.NextUint64();
          masked[i] += m;
          masked[i] -= m;
        }
      } else {
        // Only one endpoint reached the server; its mask term dangles.
        for (std::size_t i = 0; i < size; ++i) {
          std::uint64_t m = stream.NextUint64();
          masked[i] += u_alive ? m : static_cast<std::uint64_t>(0) - m;
        }
        dangling.emplace_back(u, v);
      }
    }
  }

  // Dropout recovery: the surviving peer reveals the pair seed (8 wire
  // bytes), the server regenerates the stream and subtracts the dangling
  // term.
  for (const auto& [u, v] : dangling) {
    util::Rng stream(PairSeed(run_seed, round, salt, u, v));
    const bool u_alive = uploads[u] != nullptr;
    for (std::size_t i = 0; i < size; ++i) {
      std::uint64_t m = stream.NextUint64();
      masked[i] -= u_alive ? m : static_cast<std::uint64_t>(0) - m;
    }
    ++report.recovered_pairs;
    report.recovery_seed_bytes += sizeof(std::uint64_t);
  }

  report.exact = masked == direct;
  return report;
}

}  // namespace fedcross::privacy
