#include "privacy/dp.h"

#include <cmath>

#include "util/check.h"

namespace fedcross::privacy {
namespace {

// SplitMix64 finalizer: bijective avalanche mix (the same derivation the
// training / fault / codec seed chains use, under a distinct tag).
std::uint64_t MixSeed(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t PrivacySeed(std::uint64_t seed, int round, int salt, int slot) {
  std::uint64_t h = MixSeed(seed ^ 0x70726976616379ULL);  // "privacy"
  h = MixSeed(h + static_cast<std::uint64_t>(round));
  h = MixSeed(h + static_cast<std::uint64_t>(salt));
  return MixSeed(h + static_cast<std::uint64_t>(slot));
}

double UpdateNorm(const fl::FlatParams& reference,
                  const fl::FlatParams& uploaded) {
  FC_CHECK_EQ(reference.size(), uploaded.size());
  double total = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    double d = static_cast<double>(uploaded[i]) - reference[i];
    total += d * d;
  }
  return std::sqrt(total);
}

bool SanitizeUpdateInPlace(const fl::FlatParams& reference,
                           fl::FlatParams& params, const DpOptions& options,
                           util::Rng& rng) {
  FC_CHECK_EQ(reference.size(), params.size());
  if (!options.Enabled()) return false;

  double norm = UpdateNorm(reference, params);
  const bool clipped = norm > options.clip_norm && norm > 0.0;
  double scale = clipped ? options.clip_norm / norm : 1.0;
  double sigma =
      static_cast<double>(options.noise_multiplier) * options.clip_norm;

  for (std::size_t i = 0; i < reference.size(); ++i) {
    double delta = (static_cast<double>(params[i]) - reference[i]) * scale;
    if (sigma > 0.0) delta += rng.Normal(0.0, sigma);
    params[i] = static_cast<float>(reference[i] + delta);
  }
  return clipped;
}

fl::FlatParams SanitizeUpdate(const fl::FlatParams& reference,
                              const fl::FlatParams& uploaded,
                              const DpOptions& options, util::Rng& rng) {
  fl::FlatParams sanitised = uploaded;
  SanitizeUpdateInPlace(reference, sanitised, options, rng);
  return sanitised;
}

double GaussianMechanismEpsilon(double noise_multiplier, double delta) {
  FC_CHECK_GT(noise_multiplier, 0.0);
  FC_CHECK_GT(delta, 0.0);
  FC_CHECK_LT(delta, 1.0);
  return std::sqrt(2.0 * std::log(1.25 / delta)) / noise_multiplier;
}

}  // namespace fedcross::privacy
