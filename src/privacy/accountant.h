#ifndef FEDCROSS_PRIVACY_ACCOUNTANT_H_
#define FEDCROSS_PRIVACY_ACCOUNTANT_H_

#include <cstdint>
#include <vector>

namespace fedcross::privacy {

// ---------------------------------------------------------------------------
// Subsampled-Gaussian RDP (moments) accountant
//
// Each FL aggregation applies the Gaussian mechanism (noise sigma relative
// to the clipping bound) to a uniformly sampled cohort of K out of N
// clients, i.e. sampling rate q = K / N. Renyi differential privacy
// composes additively across rounds at every order alpha, so the accountant
// keeps one running total per order and converts to (epsilon, delta)-DP on
// demand:
//
//   rdp_total(alpha) = sum over rounds of rdp_round(q, sigma, alpha)
//   epsilon(delta)   = min over alpha of
//                        rdp_total(alpha) + log(1/delta) / (alpha - 1)
//
// The per-round term is the exact integer-order bound for the sampled
// Gaussian mechanism (Mironov, Talwar & Zhang 2019, Table 1 / Abadi et
// al.'s moments accountant):
//
//   rdp(alpha) = 1/(alpha-1) * log( sum_{k=0..alpha} C(alpha,k)
//                  (1-q)^(alpha-k) q^k exp((k^2 - k) / (2 sigma^2)) )
//
// evaluated in log space (log-sum-exp over the binomial terms) so large
// alpha never overflows. Hand-checkable closed forms the tests pin down:
//   alpha = 2:  rdp = log(1 + q^2 (e^{1/sigma^2} - 1))
//   q = 1:      rdp = alpha / (2 sigma^2)   (the plain Gaussian mechanism)
//   q = 0:      rdp = 0                     (no one was sampled)
//
// All totals are exact f64 sums over a *fixed* order grid, so checkpointing
// the per-order totals (FCRS v5) and restoring them reproduces epsilon
// bit-exactly — the accountant is part of the deterministic training state.
// ---------------------------------------------------------------------------

class RdpAccountant {
 public:
  // The fixed Renyi order grid every accountant evaluates: integers 2..64
  // (dense where the minimum usually lands) plus a sparse high tail for
  // very low noise. Stable across builds — the checkpoint serialises one
  // total per order, in this order.
  static const std::vector<int>& Orders();

  // One round's RDP at integer order alpha >= 2 for sampling rate
  // q in [0, 1] and noise multiplier sigma. sigma <= 0 returns +infinity
  // (no noise, no guarantee).
  static double SubsampledGaussianRdp(double q, double sigma, int alpha);

  // Folds one aggregation with sampling rate q and noise multiplier sigma
  // into the running per-order totals.
  void AccumulateRound(double q, double sigma);

  // Converts the accumulated ledger to epsilon at slack delta (min over the
  // order grid). +infinity when any accumulated round had sigma <= 0;
  // 0 when no round has been accumulated.
  double Epsilon(double delta) const;

  // Rounds folded in so far.
  std::int64_t rounds() const { return rounds_; }

  // The running per-order totals, aligned with Orders() — what the
  // checkpoint serialises.
  const std::vector<double>& order_totals() const { return totals_; }

  // Restores a serialised ledger. `totals` must match Orders() in length.
  void Restore(std::vector<double> totals, std::int64_t rounds);

  void Reset();

 private:
  std::vector<double> totals_ = std::vector<double>(Orders().size(), 0.0);
  std::int64_t rounds_ = 0;
};

}  // namespace fedcross::privacy

#endif  // FEDCROSS_PRIVACY_ACCOUNTANT_H_
