#include "privacy/accountant.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace fedcross::privacy {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// log C(n, k) via lgamma — exact enough at the grid's n <= 1024 (relative
// error ~1e-14, far below the 1e-9 the tests pin).
double LogBinomial(int n, int k) {
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
         std::lgamma(n - k + 1.0);
}

}  // namespace

const std::vector<int>& RdpAccountant::Orders() {
  static const std::vector<int>* orders = [] {
    auto* grid = new std::vector<int>();
    for (int alpha = 2; alpha <= 64; ++alpha) grid->push_back(alpha);
    for (int alpha : {80, 96, 128, 192, 256, 512, 1024}) {
      grid->push_back(alpha);
    }
    return grid;
  }();
  return *orders;
}

double RdpAccountant::SubsampledGaussianRdp(double q, double sigma,
                                            int alpha) {
  FC_CHECK_GE(alpha, 2);
  FC_CHECK_GE(q, 0.0);
  FC_CHECK_LE(q, 1.0);
  if (sigma <= 0.0) return kInf;
  if (q == 0.0) return 0.0;
  const double inv_2s2 = 1.0 / (2.0 * sigma * sigma);
  if (q == 1.0) {
    // Every client participates: the plain Gaussian mechanism's RDP.
    return static_cast<double>(alpha) * inv_2s2;
  }
  // log A_alpha = logsumexp_k [ log C(alpha,k) + k log q
  //                             + (alpha-k) log(1-q) + (k^2-k)/(2 sigma^2) ]
  const double log_q = std::log(q);
  const double log_1mq = std::log1p(-q);
  double max_term = -kInf;
  std::vector<double> terms(static_cast<std::size_t>(alpha) + 1);
  for (int k = 0; k <= alpha; ++k) {
    double term = LogBinomial(alpha, k) + k * log_q + (alpha - k) * log_1mq +
                  static_cast<double>(k) * (k - 1.0) * inv_2s2;
    terms[static_cast<std::size_t>(k)] = term;
    max_term = std::max(max_term, term);
  }
  double sum = 0.0;
  for (double term : terms) sum += std::exp(term - max_term);
  double log_a = max_term + std::log(sum);
  // A_alpha >= 1 by construction (it is an expectation of e^{>=0} moments);
  // clamp the tiny negative residue float error can leave behind.
  return std::max(0.0, log_a) / (alpha - 1.0);
}

void RdpAccountant::AccumulateRound(double q, double sigma) {
  const std::vector<int>& orders = Orders();
  for (std::size_t i = 0; i < orders.size(); ++i) {
    totals_[i] += SubsampledGaussianRdp(q, sigma, orders[i]);
  }
  ++rounds_;
}

double RdpAccountant::Epsilon(double delta) const {
  FC_CHECK_GT(delta, 0.0);
  FC_CHECK_LT(delta, 1.0);
  if (rounds_ == 0) return 0.0;
  const std::vector<int>& orders = Orders();
  const double log_inv_delta = std::log(1.0 / delta);
  double best = kInf;
  for (std::size_t i = 0; i < orders.size(); ++i) {
    double eps = totals_[i] + log_inv_delta / (orders[i] - 1.0);
    best = std::min(best, eps);
  }
  return best;
}

void RdpAccountant::Restore(std::vector<double> totals, std::int64_t rounds) {
  FC_CHECK_EQ(totals.size(), Orders().size());
  FC_CHECK_GE(rounds, 0);
  totals_ = std::move(totals);
  rounds_ = rounds;
}

void RdpAccountant::Reset() {
  totals_.assign(Orders().size(), 0.0);
  rounds_ = 0;
}

}  // namespace fedcross::privacy
