#ifndef FEDCROSS_PRIVACY_MASKING_H_
#define FEDCROSS_PRIVACY_MASKING_H_

#include <cstdint>
#include <vector>

#include "fl/types.h"

namespace fedcross::privacy {

// ---------------------------------------------------------------------------
// Secure-aggregation-style pairwise masking (Bonawitz et al., simulated)
//
// Every pair (u, v) of cohort members shares a seed-derived mask vector
// m_uv; before uploading, member u adds sum_{v>u} m_uv - sum_{v<u} m_uv to
// its (fixed-point encoded) update. Each mask appears in the server sum
// once with each sign, so the pairwise terms cancel *exactly* — the server
// learns only the sum, never an individual update. Cancellation must be
// exact, which floats cannot promise, so masking operates in a fixed-point
// integer domain: updates are quantised to int64 at 2^fixed_point_bits
// scale and summed in wrapping uint64 arithmetic (mod 2^64), where
// +m then -m is identically zero.
//
// When a member drops mid-round its masks never reach the server, so every
// pair it shared with a survivor is left dangling in the sum. Recovery is
// the protocol's dropout path: the surviving peers reveal their pair seeds
// with the dropped member, the server regenerates those mask streams and
// subtracts them (8 bytes of seed per recovered pair cross the wire).
//
// This repository's clients are simulations sharing one address space, so
// masking here is a *protocol-faithful verification overlay*: the masked
// fixed-point sum is computed from exactly the uploads aggregation
// consumes (post-codec, post-screening — so masking composes with lossy
// compression, robust screening, and the async buffer), unmasked by
// cancellation + recovery, and checked bit-for-bit against the direct
// fixed-point sum. The float aggregation path is untouched, which is what
// makes masking-on runs bit-identical to masking-off runs by construction
// (the same observation-only contract the sync virtual clock keeps).
// ---------------------------------------------------------------------------

struct MaskOptions {
  bool enabled = false;
  // Fractional bits of the fixed-point encoding: values are quantised to
  // round(x * 2^bits) in int64. 20 bits keeps |x| < 2^42 exact enough for
  // any trained model while leaving 4 million quantisation steps per unit.
  int fixed_point_bits = 20;

  bool Enabled() const { return enabled; }
};

// Seeds the pairwise mask stream shared by cohort members u < v (positions
// within the dispatch cohort, so one client sampled twice in an async
// buffer holds distinct pair seeds per dispatch). Tagged differently from
// every other stream derivation.
std::uint64_t PairSeed(std::uint64_t seed, int round, int salt, int member_u,
                       int member_v);

// What one masked aggregation did; folded into privacy stats, round events
// and comm accounting by the caller.
struct MaskedSumReport {
  std::int64_t cohort = 0;     // dispatched members (uploads.size())
  std::int64_t survivors = 0;  // members whose upload entered the sum
  std::int64_t pairs = 0;      // pairwise masks applied by >= 1 member
  std::int64_t recovered_pairs = 0;  // dangling masks rebuilt from seeds
  // Wire cost of recovery: 8 bytes per revealed pair seed.
  std::uint64_t recovery_seed_bytes = 0;
  // The unmasked total matched the direct fixed-point sum bit-for-bit.
  bool exact = false;
};

// Runs one masked aggregation over a dispatch cohort. `uploads[m]` is
// member m's decoded upload as aggregation would consume it, or nullptr if
// the member dropped / timed out / was screened away (its masks are then
// recovered). All non-null uploads must be equal length. Deterministic in
// (run_seed, round, salt, cohort contents) — thread counts never touch it.
MaskedSumReport SimulateMaskedAggregation(
    std::uint64_t run_seed, int round, int salt,
    const std::vector<const fl::FlatParams*>& uploads,
    const MaskOptions& options);

// Fixed-point encoding of one float at 2^bits scale, exposed for tests:
// non-finite values (a corrupted upload the screener was disabled for)
// encode as 0, and the scaled magnitude saturates at +/-2^62 so llround
// stays in-domain. Wrapping uint64 domain.
std::uint64_t FixedPointEncode(float value, int bits);

}  // namespace fedcross::privacy

#endif  // FEDCROSS_PRIVACY_MASKING_H_
