#ifndef FEDCROSS_OPTIM_SCHEDULE_H_
#define FEDCROSS_OPTIM_SCHEDULE_H_

#include <cstdint>
#include <memory>

namespace fedcross::optim {

// Learning-rate schedule over global SGD iterations.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual float LrAt(std::int64_t step) const = 0;
};

// lr(t) = lr0.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float lr0);
  float LrAt(std::int64_t step) const override;

 private:
  float lr0_;
};

// lr(t) = c / (t + lambda) — the Theorem-1 schedule (eta_t = 2/(mu(t+lambda))
// corresponds to c = 2/mu). Used by the convergence-theory experiments.
class InverseTimeLr : public LrSchedule {
 public:
  InverseTimeLr(float c, float lambda);
  float LrAt(std::int64_t step) const override;

 private:
  float c_;
  float lambda_;
};

}  // namespace fedcross::optim

#endif  // FEDCROSS_OPTIM_SCHEDULE_H_
