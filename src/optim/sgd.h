#ifndef FEDCROSS_OPTIM_SGD_H_
#define FEDCROSS_OPTIM_SGD_H_

#include <vector>

#include "nn/layer.h"

namespace fedcross::optim {

struct SgdOptions {
  float lr = 0.01f;
  float momentum = 0.0f;       // classical momentum buffer
  float weight_decay = 0.0f;   // L2 coefficient added to the gradient
  float grad_clip_norm = 0.0f; // global-norm clipping; 0 disables
};

// Stochastic gradient descent with momentum, matching the paper's client
// optimiser (lr=0.01, momentum=0.5 in the experiments). Operates on the
// Param pointers of one model; callers zero gradients between steps.
class Sgd {
 public:
  Sgd(std::vector<nn::Param*> params, SgdOptions options);

  // Applies one update using the gradients currently stored in the params.
  void Step();

  // Re-arms the optimiser for a fresh training run: installs `options` and
  // zeroes the momentum buffers (keeping their storage). After Configure, a
  // pooled optimiser behaves exactly like a newly constructed one.
  void Configure(SgdOptions options);

  float lr() const { return options_.lr; }
  void set_lr(float lr) { options_.lr = lr; }

 private:
  std::vector<nn::Param*> params_;
  SgdOptions options_;
  std::vector<Tensor> velocity_;  // lazily sized to match params
};

}  // namespace fedcross::optim

#endif  // FEDCROSS_OPTIM_SGD_H_
