#include "optim/adam.h"

#include <cmath>

namespace fedcross::optim {

Adam::Adam(std::vector<nn::Param*> params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  first_moment_.reserve(params_.size());
  second_moment_.reserve(params_.size());
  for (nn::Param* param : params_) {
    first_moment_.push_back(Tensor::Zeros(param->value.shape()));
    second_moment_.push_back(Tensor::Zeros(param->value.shape()));
  }
}

void Adam::Step() {
  ++step_;
  float correction1 =
      1.0f - std::pow(options_.beta1, static_cast<float>(step_));
  float correction2 =
      1.0f - std::pow(options_.beta2, static_cast<float>(step_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    nn::Param* param = params_[i];
    if (!param->trainable) continue;
    float* value = param->value.data();
    const float* grad = param->grad.data();
    float* m = first_moment_[i].data();
    float* v = second_moment_[i].data();
    for (std::int64_t j = 0; j < param->value.numel(); ++j) {
      float g = grad[j] + options_.weight_decay * value[j];
      m[j] = options_.beta1 * m[j] + (1.0f - options_.beta1) * g;
      v[j] = options_.beta2 * v[j] + (1.0f - options_.beta2) * g * g;
      float m_hat = m[j] / correction1;
      float v_hat = v[j] / correction2;
      value[j] -= options_.lr * m_hat / (std::sqrt(v_hat) + options_.eps);
    }
  }
}

}  // namespace fedcross::optim
