#include "optim/sgd.h"

#include <cmath>

namespace fedcross::optim {

Sgd::Sgd(std::vector<nn::Param*> params, SgdOptions options)
    : params_(std::move(params)), options_(options) {
  velocity_.reserve(params_.size());
  for (nn::Param* param : params_) {
    velocity_.push_back(Tensor::Zeros(param->value.shape()));
  }
}

void Sgd::Configure(SgdOptions options) {
  options_ = options;
  for (Tensor& vel : velocity_) vel.Fill(0.0f);
}

void Sgd::Step() {
  // Optional global-norm gradient clipping.
  float clip_scale = 1.0f;
  if (options_.grad_clip_norm > 0.0f) {
    double total = 0.0;
    for (nn::Param* param : params_) {
      if (param->trainable) total += param->grad.SquaredL2Norm();
    }
    float norm = static_cast<float>(std::sqrt(total));
    if (norm > options_.grad_clip_norm) {
      clip_scale = options_.grad_clip_norm / norm;
    }
  }

  for (std::size_t i = 0; i < params_.size(); ++i) {
    nn::Param* param = params_[i];
    if (!param->trainable) continue;
    float* value = param->value.data();
    const float* grad = param->grad.data();
    float* vel = velocity_[i].data();
    for (std::int64_t j = 0; j < param->value.numel(); ++j) {
      float g = grad[j] * clip_scale + options_.weight_decay * value[j];
      if (options_.momentum != 0.0f) {
        vel[j] = options_.momentum * vel[j] + g;
        g = vel[j];
      }
      value[j] -= options_.lr * g;
    }
  }
}

}  // namespace fedcross::optim
