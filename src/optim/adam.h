#ifndef FEDCROSS_OPTIM_ADAM_H_
#define FEDCROSS_OPTIM_ADAM_H_

#include <vector>

#include "nn/layer.h"

namespace fedcross::optim {

struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

// Adam (Kingma & Ba, 2015) with bias correction. Provided as an
// alternative client optimiser; the paper's experiments use SGD+momentum,
// but Adam is useful for the synthetic text workloads and for ablations.
class Adam {
 public:
  Adam(std::vector<nn::Param*> params, AdamOptions options);

  // Applies one update using the gradients currently stored in the params.
  void Step();

  float lr() const { return options_.lr; }
  void set_lr(float lr) { options_.lr = lr; }
  std::int64_t step_count() const { return step_; }

 private:
  std::vector<nn::Param*> params_;
  AdamOptions options_;
  std::vector<Tensor> first_moment_;
  std::vector<Tensor> second_moment_;
  std::int64_t step_ = 0;
};

}  // namespace fedcross::optim

#endif  // FEDCROSS_OPTIM_ADAM_H_
