#include "optim/schedule.h"

#include "util/check.h"

namespace fedcross::optim {

ConstantLr::ConstantLr(float lr0) : lr0_(lr0) { FC_CHECK_GT(lr0, 0.0f); }

float ConstantLr::LrAt(std::int64_t step) const {
  (void)step;
  return lr0_;
}

InverseTimeLr::InverseTimeLr(float c, float lambda) : c_(c), lambda_(lambda) {
  FC_CHECK_GT(c, 0.0f);
  FC_CHECK_GE(lambda, 0.0f);
}

float InverseTimeLr::LrAt(std::int64_t step) const {
  FC_CHECK_GE(step, 0);
  return c_ / (static_cast<float>(step) + lambda_ + 1.0f);
}

}  // namespace fedcross::optim
