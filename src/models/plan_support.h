#ifndef FEDCROSS_MODELS_PLAN_SUPPORT_H_
#define FEDCROSS_MODELS_PLAN_SUPPORT_H_

#include "models/model_zoo.h"
#include "tensor/tensor.h"

namespace fedcross::models {

// True when `factory`'s topology compiles under the execution-plan runtime
// (nn/plan.h) for `input_shape` ([batch, ...example dims]). The whole model
// zoo now lowers — MLP/CNN/VGG, ResNet residual stacks, the Embedding+LSTM
// head — so this returns false only for layer kinds the runtime has no
// lowering for yet (e.g. batch-norm), which fall back to the layer path per
// job. Verdicts are memoised per (topology fingerprint, input shape); a
// probe model is still built to derive the fingerprint, so hot paths should
// prefer ModelPool::SupportsPlan, which reuses pooled replicas and the
// compiled-Program cache.
bool SupportsExecutionPlan(const ModelFactory& factory,
                           const Tensor::Shape& input_shape);

}  // namespace fedcross::models

#endif  // FEDCROSS_MODELS_PLAN_SUPPORT_H_
