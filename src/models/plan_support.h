#ifndef FEDCROSS_MODELS_PLAN_SUPPORT_H_
#define FEDCROSS_MODELS_PLAN_SUPPORT_H_

#include "models/model_zoo.h"
#include "tensor/tensor.h"

namespace fedcross::models {

// True when `factory`'s topology compiles under the execution-plan runtime
// (nn/plan.h) for `input_shape` ([batch, ...example dims]). Plan-supported
// models run ExecMode::kPlan natively; unsupported ones (LSTM, residual
// stacks, batch-norm) fall back to the layer path per job. Builds one
// throwaway model instance, so call it for capability checks, not in hot
// paths — the FL layer itself uses ModelPool::ProgramFor's cache.
bool SupportsExecutionPlan(const ModelFactory& factory,
                           const Tensor::Shape& input_shape);

}  // namespace fedcross::models

#endif  // FEDCROSS_MODELS_PLAN_SUPPORT_H_
