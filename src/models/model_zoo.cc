#include "models/model_zoo.h"

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/embedding.h"
#include "nn/flatten.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/norm.h"
#include "nn/pooling.h"
#include "nn/residual.h"
#include "util/rng.h"

namespace fedcross::models {
namespace {

int PoolOut(int size) { return size / 2; }

}  // namespace

ModelFactory MakeCnn(const CnnConfig& config) {
  return [config]() {
    util::Rng rng(config.seed);
    nn::Sequential model;
    model.Add(std::make_unique<nn::Conv2d>(config.in_channels,
                                           config.conv1_channels,
                                           /*kernel=*/5, /*stride=*/1,
                                           /*pad=*/2, rng));
    model.Add(std::make_unique<nn::Relu>());
    model.Add(std::make_unique<nn::MaxPool2d>(/*kernel=*/2, /*stride=*/2));
    model.Add(std::make_unique<nn::Conv2d>(config.conv1_channels,
                                           config.conv2_channels,
                                           /*kernel=*/5, /*stride=*/1,
                                           /*pad=*/2, rng));
    model.Add(std::make_unique<nn::Relu>());
    model.Add(std::make_unique<nn::MaxPool2d>(/*kernel=*/2, /*stride=*/2));
    model.Add(std::make_unique<nn::Flatten>());
    int spatial = PoolOut(PoolOut(config.height)) * PoolOut(PoolOut(config.width));
    model.Add(std::make_unique<nn::Linear>(config.conv2_channels * spatial,
                                           config.fc_dim, rng));
    model.Add(std::make_unique<nn::Relu>());
    model.Add(
        std::make_unique<nn::Linear>(config.fc_dim, config.num_classes, rng));
    return model;
  };
}

ModelFactory MakeResNet(const ResNetConfig& config) {
  return [config]() {
    util::Rng rng(config.seed);
    nn::Sequential model;
    int width = config.base_width;
    // Stem.
    model.Add(std::make_unique<nn::Conv2d>(config.in_channels, width,
                                           /*kernel=*/3, /*stride=*/1,
                                           /*pad=*/1, rng));
    model.Add(std::make_unique<nn::GroupNorm>(width, config.gn_groups));
    model.Add(std::make_unique<nn::Relu>());
    // Three stages; stages 2 and 3 downsample and double the width.
    int in_channels = width;
    for (int stage = 0; stage < 3; ++stage) {
      int out_channels = width << stage;
      int stride = stage == 0 ? 1 : 2;
      for (int block = 0; block < config.blocks_per_stage; ++block) {
        model.Add(std::make_unique<nn::ResidualBlock>(
            in_channels, out_channels, block == 0 ? stride : 1,
            config.gn_groups, rng));
        in_channels = out_channels;
      }
    }
    model.Add(std::make_unique<nn::GlobalAvgPool>());
    model.Add(
        std::make_unique<nn::Linear>(in_channels, config.num_classes, rng));
    return model;
  };
}

ModelFactory MakeVgg(const VggConfig& config) {
  return [config]() {
    util::Rng rng(config.seed);
    nn::Sequential model;
    int in_channels = config.in_channels;
    int height = config.height;
    int width_px = config.width;
    for (int stage = 0; stage < 3; ++stage) {
      int out_channels = config.base_width << stage;
      for (int conv = 0; conv < 2; ++conv) {
        model.Add(std::make_unique<nn::Conv2d>(in_channels, out_channels,
                                               /*kernel=*/3, /*stride=*/1,
                                               /*pad=*/1, rng));
        model.Add(std::make_unique<nn::Relu>());
        in_channels = out_channels;
      }
      model.Add(std::make_unique<nn::MaxPool2d>(/*kernel=*/2, /*stride=*/2));
      height = PoolOut(height);
      width_px = PoolOut(width_px);
    }
    model.Add(std::make_unique<nn::Flatten>());
    model.Add(std::make_unique<nn::Linear>(in_channels * height * width_px,
                                           config.fc_dim, rng));
    model.Add(std::make_unique<nn::Relu>());
    model.Add(
        std::make_unique<nn::Linear>(config.fc_dim, config.num_classes, rng));
    return model;
  };
}

ModelFactory MakeLstm(const LstmConfig& config) {
  return [config]() {
    util::Rng rng(config.seed);
    nn::Sequential model;
    model.Add(std::make_unique<nn::Embedding>(config.vocab_size,
                                              config.embed_dim, rng));
    model.Add(
        std::make_unique<nn::Lstm>(config.embed_dim, config.hidden_dim, rng));
    model.Add(std::make_unique<nn::Linear>(config.hidden_dim,
                                           config.num_classes, rng));
    return model;
  };
}

util::StatusOr<ModelFactory> MakeModelByName(const ModelSpec& spec) {
  if (spec.arch == "cnn") {
    CnnConfig config;
    config.in_channels = spec.in_channels;
    config.height = spec.height;
    config.width = spec.width;
    config.num_classes = spec.num_classes;
    config.seed = spec.seed;
    return MakeCnn(config);
  }
  if (spec.arch == "resnet") {
    ResNetConfig config;
    config.in_channels = spec.in_channels;
    config.height = spec.height;
    config.width = spec.width;
    config.num_classes = spec.num_classes;
    config.seed = spec.seed;
    return MakeResNet(config);
  }
  if (spec.arch == "vgg") {
    VggConfig config;
    config.in_channels = spec.in_channels;
    config.height = spec.height;
    config.width = spec.width;
    config.num_classes = spec.num_classes;
    config.seed = spec.seed;
    return MakeVgg(config);
  }
  if (spec.arch == "lstm") {
    LstmConfig config;
    config.vocab_size = spec.vocab_size;
    config.seq_len = spec.seq_len;
    config.num_classes = spec.num_classes;
    config.seed = spec.seed;
    return MakeLstm(config);
  }
  return util::Status::InvalidArgument("unknown model arch: " + spec.arch);
}

}  // namespace fedcross::models
