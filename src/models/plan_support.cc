#include "models/plan_support.h"

#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "nn/plan.h"

namespace fedcross::models {
namespace {

// Verdicts memoised by (topology fingerprint, input shape). The factory is
// opaque, so one probe model is still built to derive the fingerprint
// (Sequential::Summary names every layer and width), but the Compile walk —
// and its arena-layout bookkeeping — runs once per distinct topology/shape.
std::mutex g_mutex;
std::map<std::pair<std::string, Tensor::Shape>, bool>& VerdictCache() {
  static auto* cache =
      new std::map<std::pair<std::string, Tensor::Shape>, bool>();
  return *cache;
}

}  // namespace

bool SupportsExecutionPlan(const ModelFactory& factory,
                           const Tensor::Shape& input_shape) {
  nn::Sequential model = factory();
  auto key = std::make_pair(model.Summary(), input_shape);
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    auto it = VerdictCache().find(key);
    if (it != VerdictCache().end()) return it->second;
  }
  bool ok = nn::plan::Program::Compile(model, input_shape).has_value();
  std::lock_guard<std::mutex> lock(g_mutex);
  VerdictCache().emplace(std::move(key), ok);
  return ok;
}

}  // namespace fedcross::models
