#include "models/plan_support.h"

#include "nn/plan.h"

namespace fedcross::models {

bool SupportsExecutionPlan(const ModelFactory& factory,
                           const Tensor::Shape& input_shape) {
  nn::Sequential model = factory();
  return nn::plan::Program::Compile(model, input_shape).has_value();
}

}  // namespace fedcross::models
