#ifndef FEDCROSS_MODELS_MODEL_ZOO_H_
#define FEDCROSS_MODELS_MODEL_ZOO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "nn/sequential.h"
#include "util/status.h"

namespace fedcross::models {

// Builds a fresh model instance. All FL participants construct their models
// through the same factory (same seed), so every instance has an identical
// parameter layout — the precondition for flat-vector aggregation.
using ModelFactory = std::function<nn::Sequential()>;

// The evaluation models of the paper (Section IV-A3), width/depth-scaled
// for CPU simulation; see DESIGN.md §1.

struct CnnConfig {
  int in_channels = 3;
  int height = 16;
  int width = 16;
  int num_classes = 10;
  int conv1_channels = 16;  // paper CNN: 2 conv + 2 fc (McMahan et al.)
  int conv2_channels = 32;
  int fc_dim = 64;
  std::uint64_t seed = 1;
};

// FedAvg's CNN: conv5x5 -> maxpool -> conv5x5 -> maxpool -> fc -> fc.
ModelFactory MakeCnn(const CnnConfig& config);

struct ResNetConfig {
  int in_channels = 3;
  int height = 16;
  int width = 16;
  int num_classes = 10;
  int blocks_per_stage = 1;  // 3 => ResNet-20; 1 => ResNet-8
  int base_width = 8;
  int gn_groups = 4;
  std::uint64_t seed = 1;
};

// CIFAR-style ResNet (He et al.): stem conv, three stages of residual
// blocks with width doubling and stride-2 downsampling, global average
// pool, linear classifier.
ModelFactory MakeResNet(const ResNetConfig& config);

struct VggConfig {
  int in_channels = 3;
  int height = 16;
  int width = 16;
  int num_classes = 10;
  int base_width = 8;   // stage widths: w, 2w, 4w
  int fc_dim = 64;
  std::uint64_t seed = 1;
};

// VGG-style stack: three stages of (conv3x3, conv3x3, maxpool) followed by
// two fully-connected layers — the connection-heavy family of the paper.
ModelFactory MakeVgg(const VggConfig& config);

struct LstmConfig {
  int vocab_size = 32;
  int seq_len = 16;  // informational; the LSTM handles any length
  int embed_dim = 16;
  int hidden_dim = 32;
  int num_classes = 32;
  std::uint64_t seed = 1;
};

// Embedding -> LSTM -> Linear classifier (Shakespeare / Sent140 head).
ModelFactory MakeLstm(const LstmConfig& config);

// Name-based dispatch ("cnn" | "resnet" | "vgg" | "lstm") with the given
// image/text geometry; used by example binaries and the bench harness.
struct ModelSpec {
  std::string arch = "cnn";
  int num_classes = 10;
  // Image geometry.
  int in_channels = 3;
  int height = 16;
  int width = 16;
  // Text geometry.
  int vocab_size = 32;
  int seq_len = 16;
  std::uint64_t seed = 1;
};

util::StatusOr<ModelFactory> MakeModelByName(const ModelSpec& spec);

}  // namespace fedcross::models

#endif  // FEDCROSS_MODELS_MODEL_ZOO_H_
