#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace fedcross {
namespace {

TEST(TensorTest, ZeroInitialised) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.ndim(), 2);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, EmptyTensor) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.ndim(), 0);
}

TEST(TensorTest, FullFactory) {
  Tensor t = Tensor::Full({4}, 2.5f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.at(i), 2.5f);
}

TEST(TensorTest, FromVector) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, ShapeString) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.ShapeString(), "[2, 3, 4]");
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  t.Reshape({3, 2});
  EXPECT_EQ(t.at(2, 1), 6.0f);
  EXPECT_EQ(t.dim(0), 3);
}

TEST(TensorTest, DeepCopyOnAssignment) {
  Tensor a = Tensor::Full({2}, 1.0f);
  Tensor b = a;
  b.at(0) = 9.0f;
  EXPECT_EQ(a.at(0), 1.0f);
}

TEST(TensorTest, ElementwiseInPlace) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {4, 5, 6});
  a.AddInPlace(b);
  EXPECT_EQ(a.at(1), 7.0f);
  a.SubInPlace(b);
  EXPECT_EQ(a.at(1), 2.0f);
  a.MulInPlace(b);
  EXPECT_EQ(a.at(2), 18.0f);
  a.Scale(0.5f);
  EXPECT_EQ(a.at(0), 2.0f);
}

TEST(TensorTest, Axpy) {
  Tensor a = Tensor::FromVector({2}, {1, 1});
  Tensor b = Tensor::FromVector({2}, {2, 4});
  a.Axpy(0.5f, b);
  EXPECT_EQ(a.at(0), 2.0f);
  EXPECT_EQ(a.at(1), 3.0f);
}

TEST(TensorTest, Reductions) {
  Tensor t = Tensor::FromVector({4}, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(t.Sum(), -2.0f);
  EXPECT_FLOAT_EQ(t.Mean(), -0.5f);
  EXPECT_FLOAT_EQ(t.Max(), 3.0f);
  EXPECT_FLOAT_EQ(t.SquaredL2Norm(), 30.0f);
  EXPECT_FLOAT_EQ(t.L2Norm(), std::sqrt(30.0f));
}

TEST(TensorTest, OutOfPlaceOperators) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = Tensor::FromVector({2}, {3, 4});
  Tensor sum = a + b;
  Tensor diff = a - b;
  Tensor scaled = 2.0f * a;
  EXPECT_EQ(sum.at(0), 4.0f);
  EXPECT_EQ(diff.at(1), -2.0f);
  EXPECT_EQ(scaled.at(1), 4.0f);
  // Operands untouched.
  EXPECT_EQ(a.at(0), 1.0f);
}

TEST(TensorTest, RandomNormalStatistics) {
  util::Rng rng(1);
  Tensor t = Tensor::RandomNormal({10000}, rng, 1.0f, 2.0f);
  EXPECT_NEAR(t.Mean(), 1.0f, 0.1f);
  float var = t.SquaredL2Norm() / t.numel() - t.Mean() * t.Mean();
  EXPECT_NEAR(var, 4.0f, 0.3f);
}

TEST(TensorTest, RandomUniformBounds) {
  util::Rng rng(2);
  Tensor t = Tensor::RandomUniform({1000}, rng, -0.5f, 0.5f);
  EXPECT_LE(t.Max(), 0.5f);
  EXPECT_GE(-t.Max() - 1.0f, -1.5f);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_GE(t.at(i), -0.5f);
}

TEST(TensorTest, SerializeRoundTrip) {
  Tensor original = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  std::vector<std::uint8_t> bytes;
  original.SerializeTo(bytes);

  std::size_t offset = 0;
  Tensor restored;
  ASSERT_TRUE(Tensor::DeserializeFrom(bytes, offset, restored));
  EXPECT_EQ(offset, bytes.size());
  ASSERT_TRUE(restored.SameShape(original));
  for (std::int64_t i = 0; i < original.numel(); ++i) {
    EXPECT_EQ(restored.at(i), original.at(i));
  }
}

TEST(TensorTest, SerializeMultipleTensors) {
  Tensor a = Tensor::Full({2}, 1.0f);
  Tensor b = Tensor::Full({3}, 2.0f);
  std::vector<std::uint8_t> bytes;
  a.SerializeTo(bytes);
  b.SerializeTo(bytes);
  std::size_t offset = 0;
  Tensor ra, rb;
  ASSERT_TRUE(Tensor::DeserializeFrom(bytes, offset, ra));
  ASSERT_TRUE(Tensor::DeserializeFrom(bytes, offset, rb));
  EXPECT_EQ(ra.numel(), 2);
  EXPECT_EQ(rb.numel(), 3);
  EXPECT_EQ(rb.at(0), 2.0f);
}

TEST(TensorTest, DeserializeRejectsTruncated) {
  Tensor t = Tensor::Full({4}, 1.0f);
  std::vector<std::uint8_t> bytes;
  t.SerializeTo(bytes);
  bytes.resize(bytes.size() - 3);
  std::size_t offset = 0;
  Tensor restored;
  EXPECT_FALSE(Tensor::DeserializeFrom(bytes, offset, restored));
}

TEST(TensorTest, DeserializeIntoRecycledTensorAllocatesNothing) {
  // DeserializeFrom reads straight into the destination's storage via
  // ResizeTo, so deserializing into a tensor that already has the capacity
  // must not touch the heap (no staging copy, no reallocation).
  Tensor original = Tensor::Full({8, 4}, 3.5f);
  std::vector<std::uint8_t> bytes;
  original.SerializeTo(bytes);

  Tensor recycled = Tensor::Zeros({8, 4});
  std::size_t offset = 0;
  Tensor::ResetHeapAllocations();
  ASSERT_TRUE(Tensor::DeserializeFrom(bytes, offset, recycled));
  EXPECT_EQ(Tensor::HeapAllocations(), 0u);
  for (std::int64_t i = 0; i < original.numel(); ++i) {
    EXPECT_EQ(recycled.at(i), 3.5f);
  }
}

// -------------------------------------------------------------- ops::Gemm

TEST(GemmTest, PlainMatMul) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {5, 6, 7, 8});
  Tensor c = ops::MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(GemmTest, RectangularShapes) {
  Tensor a = Tensor::FromVector({1, 3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3, 2}, {1, 0, 0, 1, 1, 1});
  Tensor c = ops::MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 5.0f);
}

// Reference GEMM for randomized comparison.
void NaiveGemm(bool trans_a, bool trans_b, int m, int n, int k,
               const std::vector<float>& a, const std::vector<float>& b,
               std::vector<float>& c) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) {
        float av = trans_a ? a[p * m + i] : a[i * k + p];
        float bv = trans_b ? b[j * k + p] : b[p * n + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

struct GemmCase {
  bool trans_a;
  bool trans_b;
};

class GemmTransposeTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTransposeTest, MatchesNaive) {
  GemmCase config = GetParam();
  util::Rng rng(99);
  int m = 5, n = 7, k = 4;
  std::vector<float> a(m * k), b(k * n), expected(m * n), actual(m * n, 0.0f);
  for (float& value : a) value = static_cast<float>(rng.Normal());
  for (float& value : b) value = static_cast<float>(rng.Normal());

  NaiveGemm(config.trans_a, config.trans_b, m, n, k, a, b, expected);
  int lda = config.trans_a ? m : k;
  int ldb = config.trans_b ? k : n;
  ops::Gemm(config.trans_a, config.trans_b, m, n, k, 1.0f, a.data(), lda,
            b.data(), ldb, 0.0f, actual.data(), n);
  for (int i = 0; i < m * n; ++i) EXPECT_NEAR(actual[i], expected[i], 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, GemmTransposeTest,
                         ::testing::Values(GemmCase{false, false},
                                           GemmCase{true, false},
                                           GemmCase{false, true},
                                           GemmCase{true, true}));

TEST(GemmTest, AlphaBetaAccumulate) {
  int m = 2, n = 2, k = 2;
  std::vector<float> a = {1, 0, 0, 1};
  std::vector<float> b = {1, 2, 3, 4};
  std::vector<float> c = {10, 10, 10, 10};
  ops::Gemm(false, false, m, n, k, 2.0f, a.data(), k, b.data(), n, 1.0f,
            c.data(), n);
  EXPECT_FLOAT_EQ(c[0], 12.0f);
  EXPECT_FLOAT_EQ(c[3], 18.0f);
}

// ----------------------------------------------------------- Im2Col etc.

TEST(ConvOutSizeTest, StandardArithmetic) {
  EXPECT_EQ(ops::ConvOutSize(16, 3, 1, 1), 16);
  EXPECT_EQ(ops::ConvOutSize(16, 2, 2, 0), 8);
  EXPECT_EQ(ops::ConvOutSize(16, 5, 1, 2), 16);
  EXPECT_EQ(ops::ConvOutSize(16, 3, 2, 1), 8);
}

TEST(Im2ColTest, IdentityKernel) {
  // 1x1 kernel, stride 1, no pad: columns == image.
  std::vector<float> image = {1, 2, 3, 4};
  std::vector<float> columns(4);
  ops::Im2Col(image.data(), 1, 2, 2, 1, 1, 1, 0, columns.data());
  EXPECT_EQ(columns, image);
}

TEST(Im2ColTest, PaddingProducesZeros) {
  std::vector<float> image = {1.0f};
  // 1x1 image, 3x3 kernel, pad 1 => 1 output pixel, 9 patch rows.
  std::vector<float> columns(9, -1.0f);
  ops::Im2Col(image.data(), 1, 1, 1, 3, 3, 1, 1, columns.data());
  for (int i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(columns[i], i == 4 ? 1.0f : 0.0f);
  }
}

TEST(Col2ImTest, AdjointOfIm2Col) {
  // <Im2Col(x), y> == <x, Col2Im(y)> (adjoint property).
  util::Rng rng(5);
  int c = 2, h = 4, w = 4, kernel = 3, stride = 1, pad = 1;
  int out_h = ops::ConvOutSize(h, kernel, stride, pad);
  int out_w = ops::ConvOutSize(w, kernel, stride, pad);
  int cols_size = c * kernel * kernel * out_h * out_w;

  std::vector<float> x(c * h * w), y(cols_size);
  for (float& value : x) value = static_cast<float>(rng.Normal());
  for (float& value : y) value = static_cast<float>(rng.Normal());

  std::vector<float> cols(cols_size);
  ops::Im2Col(x.data(), c, h, w, kernel, kernel, stride, pad, cols.data());
  double lhs = 0.0;
  for (int i = 0; i < cols_size; ++i) lhs += static_cast<double>(cols[i]) * y[i];

  std::vector<float> back(c * h * w, 0.0f);
  ops::Col2Im(y.data(), c, h, w, kernel, kernel, stride, pad, back.data());
  double rhs = 0.0;
  for (int i = 0; i < c * h * w; ++i) rhs += static_cast<double>(x[i]) * back[i];

  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Tensor logits = Tensor::FromVector({2, 3}, {1, 2, 3, -1, 0, 1});
  ops::SoftmaxRows(logits);
  for (int r = 0; r < 2; ++r) {
    float total = 0.0f;
    for (int c = 0; c < 3; ++c) total += logits.at(r, c);
    EXPECT_NEAR(total, 1.0f, 1e-6f);
  }
}

TEST(SoftmaxTest, NumericallyStableWithLargeLogits) {
  Tensor logits = Tensor::FromVector({1, 3}, {1000.0f, 1000.0f, 999.0f});
  ops::SoftmaxRows(logits);
  EXPECT_FALSE(std::isnan(logits.at(0, 0)));
  EXPECT_GT(logits.at(0, 0), logits.at(0, 2));
}

TEST(ArgMaxRowTest, FindsMax) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 5, 2, 9, 0, 3});
  EXPECT_EQ(ops::ArgMaxRow(t, 0), 1);
  EXPECT_EQ(ops::ArgMaxRow(t, 1), 0);
}

TEST(CosineSimilarityTest, KnownValues) {
  EXPECT_NEAR(ops::CosineSimilarity({1, 0}, {1, 0}), 1.0, 1e-9);
  EXPECT_NEAR(ops::CosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-9);
  EXPECT_NEAR(ops::CosineSimilarity({1, 1}, {-1, -1}), -1.0, 1e-9);
}

TEST(CosineSimilarityTest, ZeroVectorYieldsZero) {
  EXPECT_EQ(ops::CosineSimilarity({0, 0}, {1, 2}), 0.0);
}

TEST(CosineSimilarityTest, ScaleInvariant) {
  std::vector<float> x = {1, 2, 3};
  std::vector<float> y = {4, -1, 2};
  std::vector<float> y2 = {8, -2, 4};
  EXPECT_NEAR(ops::CosineSimilarity(x, y), ops::CosineSimilarity(x, y2),
              1e-9);
}

}  // namespace
}  // namespace fedcross
