// The replica pool's checkout contract: a recycled replica must be
// indistinguishable from a freshly built factory model (once its parameters
// are loaded), including stateful layers like Dropout whose RNG stream is
// rewound by ResetState. The pool is also the backbone of the zero-churn
// round loop, so steady-state client training must perform zero tensor heap
// allocations.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "fl/client.h"
#include "fl/model_pool.h"
#include "nn/activations.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "test_util.h"

namespace fedcross::fl {
namespace {

// MLP with a Dropout layer: the stateful-layer worst case for pooling.
models::ModelFactory DropoutMlpFactory(int dim, std::uint64_t seed = 7) {
  return [dim, seed]() {
    util::Rng rng(seed);
    nn::Sequential model;
    model.Add(std::make_unique<nn::Linear>(dim, 8, rng));
    model.Add(std::make_unique<nn::Relu>());
    model.Add(std::make_unique<nn::Dropout>(0.5f, seed ^ 0xd80f));
    model.Add(std::make_unique<nn::Linear>(8, 2, rng));
    return model;
  };
}

Tensor MakeBatch(int batch, int dim, std::uint64_t seed) {
  Tensor features({batch, dim});
  util::Rng rng(seed);
  for (std::int64_t i = 0; i < features.numel(); ++i) {
    features.data()[i] = static_cast<float>(rng.Normal());
  }
  return features;
}

void ExpectBitIdentical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.numel(), b.numel());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.numel()) * sizeof(float)),
            0);
}

TEST(ModelPoolTest, RecycledReplicaMatchesFreshFactoryModel) {
  const int dim = 6;
  models::ModelFactory factory = DropoutMlpFactory(dim);
  ModelPool pool(factory);
  FlatParams init = factory().ParamsToFlat();

  // Dirty a replica: load shifted params and burn through the dropout mask
  // stream with several training-mode passes.
  Tensor batch = MakeBatch(10, dim, 99);
  {
    ModelPool::Lease lease = pool.Acquire();
    FlatParams shifted = init;
    for (float& w : shifted) w += 0.25f;
    lease->model.ParamsFromFlat(shifted);
    for (int pass = 0; pass < 5; ++pass) {
      lease->model.Forward(batch, /*train=*/true);
    }
  }
  EXPECT_EQ(pool.replicas_created(), 1u);

  // The recycled replica and a fresh factory model must now be
  // byte-identical: same params after loading, same eval output, and —
  // because ResetState rewinds the dropout RNG — the same training-mode
  // mask stream.
  nn::Sequential fresh = factory();
  fresh.ParamsFromFlat(init);
  ModelPool::Lease lease = pool.Acquire();
  EXPECT_EQ(pool.replicas_created(), 1u);  // recycled, not rebuilt
  lease->model.ParamsFromFlat(init);

  FlatParams recycled_params = lease->model.ParamsToFlat();
  FlatParams fresh_params = fresh.ParamsToFlat();
  ASSERT_EQ(recycled_params.size(), fresh_params.size());
  EXPECT_EQ(std::memcmp(recycled_params.data(), fresh_params.data(),
                        fresh_params.size() * sizeof(float)),
            0);

  ExpectBitIdentical(lease->model.Forward(batch, /*train=*/false),
                     fresh.Forward(batch, /*train=*/false));
  for (int pass = 0; pass < 3; ++pass) {
    ExpectBitIdentical(lease->model.Forward(batch, /*train=*/true),
                       fresh.Forward(batch, /*train=*/true));
  }
}

TEST(ModelPoolTest, ConcurrentCheckoutHandsOutDistinctReplicas) {
  const int kThreads = 4;
  models::ModelFactory factory = DropoutMlpFactory(4);
  ModelPool pool(factory);

  std::vector<ModelPool::Replica*> held(kThreads, nullptr);
  {
    std::vector<ModelPool::Lease> leases(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t]() {
        leases[t] = pool.Acquire();
        held[t] = &*leases[t];
      });
    }
    for (std::thread& thread : threads) thread.join();

    std::set<ModelPool::Replica*> distinct(held.begin(), held.end());
    EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kThreads));
    EXPECT_EQ(pool.replicas_created(), static_cast<std::size_t>(kThreads));
    EXPECT_EQ(pool.available(), 0u);
  }
  // All leases returned: the next burst recycles instead of growing.
  EXPECT_EQ(pool.available(), static_cast<std::size_t>(kThreads));
  ModelPool::Lease again = pool.Acquire();
  EXPECT_EQ(pool.replicas_created(), static_cast<std::size_t>(kThreads));
}

TEST(ModelPoolTest, SteadyStateClientTrainingAllocatesNoTensors) {
  const int dim = 5;
  auto dataset = testing::MakeToyDataset(30, dim, 0.4f, 3);
  FlClient client(0, dataset);
  models::ModelFactory factory = DropoutMlpFactory(dim);
  ModelPool pool(factory);
  FlatParams init = factory().ParamsToFlat();

  ClientTrainSpec spec;
  spec.options.local_epochs = 2;
  spec.options.batch_size = 10;
  spec.options.lr = 0.05f;

  // Warm-up rounds grow every buffer (replica, optimiser state, result
  // params, loader scratch) to its steady-state capacity.
  LocalTrainResult result;
  for (int round = 0; round < 2; ++round) {
    util::Rng rng(100 + round);
    client.Train(pool, init, spec, rng, result);
  }

  // Steady state: further rounds must not touch the tensor heap at all.
  Tensor::ResetHeapAllocations();
  for (int round = 2; round < 5; ++round) {
    util::Rng rng(100 + round);
    client.Train(pool, init, spec, rng, result);
  }
  EXPECT_EQ(Tensor::HeapAllocations(), 0u);
  EXPECT_EQ(pool.replicas_created(), 1u);
}

}  // namespace
}  // namespace fedcross::fl
