// Tests for the extension features: model checkpointing, the Adam
// optimizer, differential-privacy update sanitisation, client dropout
// fault-injection, and BatchNorm2d (including its non-trainable running
// statistics riding in the flat parameter vector).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "core/fedcross.h"
#include "fl/fedavg.h"
#include "fl/privacy.h"
#include "nn/activations.h"
#include "nn/checkpoint.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/norm.h"
#include "nn/pooling.h"
#include "optim/adam.h"
#include "test_util.h"

namespace fedcross {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

models::ModelFactory LinearFactory(int dim, std::uint64_t seed = 1) {
  return [dim, seed]() {
    util::Rng rng(seed);
    nn::Sequential model;
    model.Add(std::make_unique<nn::Linear>(dim, 2, rng));
    return model;
  };
}

data::FederatedDataset MakeToyFederated(int num_clients, int per_client,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  data::FederatedDataset federated;
  federated.num_classes = 2;
  auto gen = [&](int count, std::vector<float>& features,
                 std::vector<int>& labels) {
    for (int i = 0; i < count; ++i) {
      int k = static_cast<int>(rng.UniformInt(2));
      float mean = k == 0 ? -1.0f : 1.0f;
      for (int d = 0; d < 4; ++d) {
        features.push_back(mean + static_cast<float>(rng.Normal(0.0, 0.5)));
      }
      labels.push_back(k);
    }
  };
  for (int c = 0; c < num_clients; ++c) {
    std::vector<float> features;
    std::vector<int> labels;
    gen(per_client, features, labels);
    federated.client_train.push_back(std::make_shared<data::InMemoryDataset>(
        Tensor::Shape{4}, std::move(features), std::move(labels), 2));
  }
  std::vector<float> features;
  std::vector<int> labels;
  gen(60, features, labels);
  federated.test = std::make_shared<data::InMemoryDataset>(
      Tensor::Shape{4}, std::move(features), std::move(labels), 2);
  return federated;
}

// ------------------------------------------------------------- Checkpoint

TEST(CheckpointTest, SaveLoadRoundTrip) {
  util::Rng rng(1);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Linear>(4, 3, rng));
  model.Add(std::make_unique<nn::Relu>());
  model.Add(std::make_unique<nn::Linear>(3, 2, rng));
  std::vector<float> original = model.ParamsToFlat();

  std::string path = TempPath("roundtrip.fcpt");
  ASSERT_TRUE(nn::SaveModel(model, path).ok());

  // Perturb, reload, verify restoration.
  std::vector<float> perturbed = original;
  for (float& value : perturbed) value += 1.0f;
  model.ParamsFromFlat(perturbed);
  ASSERT_TRUE(nn::LoadModel(model, path).ok());
  EXPECT_EQ(model.ParamsToFlat(), original);
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadRejectsWrongArchitecture) {
  util::Rng rng(2);
  nn::Sequential small;
  small.Add(std::make_unique<nn::Linear>(2, 2, rng));
  std::string path = TempPath("arch.fcpt");
  ASSERT_TRUE(nn::SaveModel(small, path).ok());

  nn::Sequential big;
  big.Add(std::make_unique<nn::Linear>(5, 2, rng));
  util::Status status = nn::LoadModel(big, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadRejectsGarbageFile) {
  std::string path = TempPath("garbage.fcpt");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a checkpoint at all", f);
    std::fclose(f);
  }
  util::Rng rng(3);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Linear>(2, 2, rng));
  util::Status status = nn::LoadModel(model, path);
  EXPECT_FALSE(status.ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadMissingFileIsNotFound) {
  util::Rng rng(4);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Linear>(2, 2, rng));
  util::Status status = nn::LoadModel(model, TempPath("missing.fcpt"));
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
}

TEST(CheckpointTest, CorruptFileLeavesModelUntouched) {
  util::Rng rng(5);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Linear>(3, 3, rng));
  std::vector<float> original = model.ParamsToFlat();
  std::string path = TempPath("truncated.fcpt");
  ASSERT_TRUE(nn::SaveModel(model, path).ok());
  // Truncate the file.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size - 5), 0);
  }
  model.ParamsFromFlat(original);
  EXPECT_FALSE(nn::LoadModel(model, path).ok());
  EXPECT_EQ(model.ParamsToFlat(), original);  // staged load: no partial write
  std::remove(path.c_str());
}

TEST(CheckpointTest, FlatParamsRoundTrip) {
  std::vector<float> params = {1.5f, -2.0f, 3.25f};
  std::string path = TempPath("flat.fcpt");
  ASSERT_TRUE(nn::SaveFlatParams(params, path).ok());
  auto loaded = nn::LoadFlatParams(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), params);
  std::remove(path.c_str());
}

// ------------------------------------------------------------------ Adam

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimise (w - 3)^2 for a single scalar parameter.
  nn::Param w(Tensor::Full({1}, 0.0f));
  optim::AdamOptions options;
  options.lr = 0.1f;
  optim::Adam adam({&w}, options);
  for (int step = 0; step < 300; ++step) {
    w.grad = Tensor::Full({1}, 2.0f * (w.value.at(0) - 3.0f));
    adam.Step();
  }
  EXPECT_NEAR(w.value.at(0), 3.0f, 0.05f);
  EXPECT_EQ(adam.step_count(), 300);
}

TEST(AdamTest, FirstStepIsLrSized) {
  // With bias correction, the first Adam step magnitude is ~lr.
  nn::Param w(Tensor::Full({1}, 0.0f));
  optim::AdamOptions options;
  options.lr = 0.01f;
  optim::Adam adam({&w}, options);
  w.grad = Tensor::Full({1}, 123.0f);
  adam.Step();
  EXPECT_NEAR(w.value.at(0), -0.01f, 1e-4f);
}

TEST(AdamTest, SkipsNonTrainableParams) {
  nn::Param stat(Tensor::Full({1}, 7.0f), /*is_trainable=*/false);
  optim::Adam adam({&stat}, optim::AdamOptions());
  stat.grad = Tensor::Full({1}, 100.0f);
  adam.Step();
  EXPECT_EQ(stat.value.at(0), 7.0f);
}

TEST(AdamTest, TrainsToyClassifier) {
  util::Rng rng(6);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Linear>(4, 2, rng));
  auto dataset = testing::MakeToyDataset(40, 4, 0.3f, 7);
  optim::AdamOptions options;
  options.lr = 0.05f;
  optim::Adam adam(model.Params(), options);
  nn::CrossEntropyLoss criterion;

  Tensor features;
  std::vector<int> labels;
  std::vector<int> all(dataset->size());
  for (int i = 0; i < dataset->size(); ++i) all[i] = i;
  dataset->GetBatch(all, features, labels);
  float initial = criterion.Compute(model.Forward(features, false), labels,
                                    false).loss;
  for (int step = 0; step < 60; ++step) {
    model.ZeroGrad();
    nn::LossResult loss =
        criterion.Compute(model.Forward(features, true), labels);
    model.Backward(loss.grad_logits);
    adam.Step();
  }
  float final_loss = criterion.Compute(model.Forward(features, false), labels,
                                       false).loss;
  EXPECT_LT(final_loss, initial * 0.3f);
}

// --------------------------------------------------------------- Privacy

TEST(PrivacyTest, NoOpWhenDisabled) {
  fl::FlatParams reference = {0.0f, 0.0f};
  fl::FlatParams uploaded = {10.0f, 0.0f};
  util::Rng rng(8);
  fl::DpOptions options;  // clip_norm = 0: disabled
  EXPECT_EQ(fl::SanitizeUpdate(reference, uploaded, options, rng), uploaded);
}

TEST(PrivacyTest, ClipsLargeUpdates) {
  fl::FlatParams reference = {0.0f, 0.0f};
  fl::FlatParams uploaded = {10.0f, 0.0f};
  util::Rng rng(9);
  fl::DpOptions options;
  options.clip_norm = 1.0f;
  options.noise_multiplier = 0.0f;
  fl::FlatParams sanitised =
      fl::SanitizeUpdate(reference, uploaded, options, rng);
  EXPECT_NEAR(fl::UpdateNorm(reference, sanitised), 1.0, 1e-5);
  EXPECT_NEAR(sanitised[0], 1.0f, 1e-5f);
}

TEST(PrivacyTest, SmallUpdatesPassUnclipped) {
  fl::FlatParams reference = {1.0f, 1.0f};
  fl::FlatParams uploaded = {1.1f, 1.0f};
  util::Rng rng(10);
  fl::DpOptions options;
  options.clip_norm = 5.0f;
  fl::FlatParams sanitised =
      fl::SanitizeUpdate(reference, uploaded, options, rng);
  EXPECT_NEAR(sanitised[0], 1.1f, 1e-6f);
}

TEST(PrivacyTest, NoiseHasExpectedScale) {
  int dim = 5000;
  fl::FlatParams reference(dim, 0.0f);
  fl::FlatParams uploaded(dim, 0.0f);  // zero update: output is pure noise
  util::Rng rng(11);
  fl::DpOptions options;
  options.clip_norm = 2.0f;
  options.noise_multiplier = 0.5f;  // sigma = 1.0
  fl::FlatParams sanitised =
      fl::SanitizeUpdate(reference, uploaded, options, rng);
  double var = 0.0;
  for (float v : sanitised) var += static_cast<double>(v) * v;
  var /= dim;
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(PrivacyTest, EpsilonDecreasesWithNoise) {
  double strict = fl::GaussianMechanismEpsilon(2.0, 1e-5);
  double loose = fl::GaussianMechanismEpsilon(0.5, 1e-5);
  EXPECT_LT(strict, loose);
  EXPECT_GT(strict, 0.0);
}

TEST(PrivacyTest, FedAvgStillLearnsUnderMildDp) {
  fl::AlgorithmConfig config;
  config.clients_per_round = 3;
  config.train.local_epochs = 3;
  config.train.batch_size = 10;
  config.train.lr = 0.05f;
  config.dp.clip_norm = 5.0f;
  config.dp.noise_multiplier = 0.01f;
  fl::FedAvg fedavg(config, MakeToyFederated(6, 40, 12), LinearFactory(4));
  EXPECT_GT(fedavg.Run(8).BestAccuracy(), 0.8f);
}

// ---------------------------------------------------------------- Dropout

TEST(ClientDropoutTest, FullDropoutFreezesGlobalModel) {
  fl::AlgorithmConfig config;
  config.clients_per_round = 3;
  config.dropout_prob = 1.0;
  fl::FedAvg fedavg(config, MakeToyFederated(6, 20, 13), LinearFactory(4));
  fl::FlatParams before = fedavg.GlobalParams();
  fedavg.Run(3);
  EXPECT_EQ(fedavg.GlobalParams(), before);
}

TEST(ClientDropoutTest, PartialDropoutStillLearns) {
  fl::AlgorithmConfig config;
  config.clients_per_round = 4;
  config.train.local_epochs = 3;
  config.train.batch_size = 10;
  config.train.lr = 0.05f;
  config.dropout_prob = 0.3;
  fl::FedAvg fedavg(config, MakeToyFederated(8, 40, 14), LinearFactory(4));
  EXPECT_GT(fedavg.Run(10).BestAccuracy(), 0.8f);
}

TEST(ClientDropoutTest, FedCrossSurvivesDropout) {
  fl::AlgorithmConfig config;
  config.clients_per_round = 3;
  config.train.local_epochs = 3;
  config.train.batch_size = 10;
  config.train.lr = 0.05f;
  config.dropout_prob = 0.3;
  core::FedCrossOptions options;
  options.alpha = 0.9;
  core::FedCross fedcross(config, MakeToyFederated(8, 40, 15),
                          LinearFactory(4), options);
  EXPECT_GT(fedcross.Run(10).BestAccuracy(), 0.8f);
}

TEST(ClientDropoutTest, DroppedUploadsDoNotCountAsTraffic) {
  fl::AlgorithmConfig config;
  config.clients_per_round = 4;
  config.dropout_prob = 1.0;
  fl::FedAvg fedavg(config, MakeToyFederated(8, 20, 16), LinearFactory(4));
  fedavg.Run(1);
  const fl::RoundRecord& record = fedavg.history().records().back();
  EXPECT_GT(record.bytes_down, 0.0);  // models were dispatched
  EXPECT_EQ(record.bytes_up, 0.0);    // nothing came back
}

// -------------------------------------------------------------- BatchNorm

TEST(BatchNormTest, NormalisesPerChannelInTraining) {
  nn::BatchNorm2d norm(3);
  util::Rng rng(17);
  Tensor input = Tensor::RandomNormal({4, 3, 5, 5}, rng, 2.0f, 3.0f);
  Tensor output = norm.Forward(input, /*train=*/true);
  int area = 25;
  for (int c = 0; c < 3; ++c) {
    double mean = 0.0, var = 0.0;
    for (int b = 0; b < 4; ++b) {
      const float* plane = output.data() + (b * 3 + c) * area;
      for (int i = 0; i < area; ++i) mean += plane[i];
    }
    mean /= 4 * area;
    for (int b = 0; b < 4; ++b) {
      const float* plane = output.data() + (b * 3 + c) * area;
      for (int i = 0; i < area; ++i) var += (plane[i] - mean) * (plane[i] - mean);
    }
    var /= 4 * area;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, RunningStatsConvergeToDataStats) {
  nn::BatchNorm2d norm(1, /*momentum=*/0.5f);
  util::Rng rng(18);
  for (int step = 0; step < 30; ++step) {
    Tensor input = Tensor::RandomNormal({8, 1, 4, 4}, rng, 5.0f, 2.0f);
    norm.Forward(input, /*train=*/true);
  }
  std::vector<nn::Param*> params;
  norm.CollectParams(params);
  ASSERT_EQ(params.size(), 4u);
  EXPECT_NEAR(params[2]->value.at(0), 5.0f, 0.5f);  // running mean
  EXPECT_NEAR(params[3]->value.at(0), 4.0f, 1.0f);  // running var
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  nn::BatchNorm2d norm(1, /*momentum=*/1.0f);
  util::Rng rng(19);
  Tensor calibration = Tensor::RandomNormal({16, 1, 4, 4}, rng, 3.0f, 1.0f);
  norm.Forward(calibration, /*train=*/true);
  // In eval, an input equal to the running mean maps near beta (= 0).
  Tensor probe = Tensor::Full({1, 1, 4, 4}, 3.0f);
  Tensor output = norm.Forward(probe, /*train=*/false);
  EXPECT_NEAR(output.Mean(), 0.0f, 0.3f);
}

TEST(BatchNormTest, RunningStatsAreNonTrainableButInFlatVector) {
  util::Rng rng(20);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Conv2d>(1, 2, 3, 1, 1, rng));
  model.Add(std::make_unique<nn::BatchNorm2d>(2));
  int trainable = 0, frozen = 0;
  for (nn::Param* param : model.Params()) {
    (param->trainable ? trainable : frozen)++;
  }
  EXPECT_EQ(frozen, 2);  // running mean + var
  // Flat vector includes the stats: conv W,b + gamma,beta + mean,var.
  EXPECT_EQ(model.NumParams(),
            2 * 9 + 2 /*conv*/ + 2 + 2 /*gn*/ + 2 + 2 /*stats*/);
}

TEST(BatchNormTest, GradCheckThroughBatchNorm) {
  util::Rng rng(21);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Conv2d>(2, 4, 3, 1, 1, rng));
  model.Add(std::make_unique<nn::BatchNorm2d>(4));
  model.Add(std::make_unique<nn::Relu>());
  model.Add(std::make_unique<nn::GlobalAvgPool>());
  model.Add(std::make_unique<nn::Linear>(4, 2, rng));

  // BatchNorm caches depend on train mode; run the directional check with
  // train=true forward passes by priming the cache first.
  Tensor input = Tensor::RandomNormal({4, 2, 6, 6}, rng);
  std::vector<int> labels = {0, 1, 0, 1};
  nn::CrossEntropyLoss criterion;
  model.ZeroGrad();
  Tensor logits = model.Forward(input, true);
  nn::LossResult loss = criterion.Compute(logits, labels);
  model.Backward(loss.grad_logits);

  double worst = 0.0;
  for (nn::Param* param : model.Params()) {
    if (!param->trainable) continue;
    double norm = std::sqrt(param->grad.SquaredL2Norm());
    if (norm < 1e-2) continue;
    float eps = 1e-3f;
    Tensor original = param->value;
    param->value.Axpy(eps / static_cast<float>(norm), param->grad);
    float plus = criterion.Compute(model.Forward(input, true), labels,
                                   false).loss;
    param->value = original;
    param->value.Axpy(-eps / static_cast<float>(norm), param->grad);
    float minus = criterion.Compute(model.Forward(input, true), labels,
                                    false).loss;
    param->value = original;
    double numeric = (static_cast<double>(plus) - minus) / (2.0 * eps);
    worst = std::max(worst, std::abs(numeric - norm) / std::max(norm, 1e-4));
  }
  EXPECT_LT(worst, 0.1);
}

}  // namespace
}  // namespace fedcross
