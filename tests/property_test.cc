// Cross-cutting property tests: parameterized sweeps over architectures,
// K, alpha, and partition settings that pin down the invariants DESIGN.md
// §4 calls out.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <set>

#include "core/fedcross.h"
#include "data/partition.h"
#include "fl/fedavg.h"
#include "nn/checkpoint.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/loss.h"
#include "optim/adam.h"
#include "optim/sgd.h"
#include "test_util.h"

namespace fedcross {
namespace {

// ---------------------------------------------------- Flat layout per arch

class ZooArchTest : public ::testing::TestWithParam<std::string> {};

models::ModelFactory ZooFactory(const std::string& arch) {
  models::ModelSpec spec;
  spec.arch = arch;
  spec.height = spec.width = 8;
  spec.num_classes = 5;
  spec.vocab_size = 11;
  return models::MakeModelByName(spec).value();
}

TEST_P(ZooArchTest, FlatRoundTripIsIdentity) {
  models::ModelFactory factory = ZooFactory(GetParam());
  nn::Sequential model = factory();
  std::vector<float> flat = model.ParamsToFlat();
  util::Rng rng(1);
  for (float& value : flat) value += static_cast<float>(rng.Normal(0, 0.1));
  model.ParamsFromFlat(flat);
  EXPECT_EQ(model.ParamsToFlat(), flat);
}

TEST_P(ZooArchTest, TwoFactoryInstancesShareLayout) {
  models::ModelFactory factory = ZooFactory(GetParam());
  nn::Sequential a = factory();
  nn::Sequential b = factory();
  ASSERT_EQ(a.Params().size(), b.Params().size());
  for (std::size_t i = 0; i < a.Params().size(); ++i) {
    EXPECT_TRUE(a.Params()[i]->value.SameShape(b.Params()[i]->value));
  }
  EXPECT_EQ(a.ParamsToFlat(), b.ParamsToFlat());
}

TEST_P(ZooArchTest, CheckpointRoundTrip) {
  models::ModelFactory factory = ZooFactory(GetParam());
  nn::Sequential model = factory();
  std::string path =
      ::testing::TempDir() + "/prop_" + GetParam() + ".fcpt";
  ASSERT_TRUE(nn::SaveModel(model, path).ok());
  nn::Sequential other = factory();
  std::vector<float> flat = other.ParamsToFlat();
  for (float& value : flat) value = 0.0f;
  other.ParamsFromFlat(flat);
  ASSERT_TRUE(nn::LoadModel(other, path).ok());
  EXPECT_EQ(other.ParamsToFlat(), model.ParamsToFlat());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Architectures, ZooArchTest,
                         ::testing::Values("cnn", "resnet", "vgg", "lstm"));

// ------------------------------------------- CrossAggr invariants (sweeps)

struct CrossCase {
  int k;
  double alpha;
};

class CrossAggrSweep : public ::testing::TestWithParam<CrossCase> {};

TEST_P(CrossAggrSweep, InOrderPreservesMeanForAllKAndAlpha) {
  CrossCase config = GetParam();
  util::Rng rng(2);
  std::vector<fl::FlatParams> uploaded(config.k, fl::FlatParams(12));
  for (auto& model : uploaded) {
    for (float& value : model) value = static_cast<float>(rng.Normal());
  }
  for (int round = 0; round < 2 * (config.k - 1); ++round) {
    std::vector<fl::FlatParams> fused(config.k);
    for (int i = 0; i < config.k; ++i) {
      int co = (i + (round % (config.k - 1) + 1)) % config.k;
      fused[i] = core::FedCross::CrossAggregate(uploaded[i], uploaded[co],
                                                config.alpha);
    }
    for (std::size_t d = 0; d < 12; ++d) {
      double before = 0.0, after = 0.0;
      for (int i = 0; i < config.k; ++i) {
        before += uploaded[i][d];
        after += fused[i][d];
      }
      ASSERT_NEAR(before, after, 1e-4);
    }
    uploaded = fused;  // iterate: invariant must hold round over round
  }
}

TEST_P(CrossAggrSweep, InOrderCollaboratorsFormPermutation) {
  CrossCase config = GetParam();
  for (int round = 0; round < 3 * config.k; ++round) {
    std::set<int> collaborators;
    for (int i = 0; i < config.k; ++i) {
      collaborators.insert((i + (round % (config.k - 1) + 1)) % config.k);
    }
    // Every uploaded model is chosen exactly once (paper Eq. 2 premise).
    EXPECT_EQ(collaborators.size(), static_cast<std::size_t>(config.k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    KAlphaGrid, CrossAggrSweep,
    ::testing::Values(CrossCase{2, 0.5}, CrossCase{3, 0.8}, CrossCase{5, 0.9},
                      CrossCase{8, 0.99}, CrossCase{10, 0.7}));

// ------------------------------------------------ Partition rebalancing

struct PartitionCase {
  int clients;
  double beta;
};

class PartitionSweep : public ::testing::TestWithParam<PartitionCase> {};

TEST_P(PartitionSweep, MinSizeGuaranteedEvenAtExtremeSkew) {
  PartitionCase config = GetParam();
  util::Rng data_rng(3);
  std::vector<float> features(600);
  std::vector<int> labels(600);
  for (int i = 0; i < 600; ++i) labels[i] = i % 10;
  data::InMemoryDataset dataset({1}, std::move(features), std::move(labels),
                                10);
  util::Rng rng(4);
  data::Partition partition =
      data::DirichletPartition(dataset, config.clients, config.beta, rng, 2);
  ASSERT_EQ(partition.size(), static_cast<std::size_t>(config.clients));
  std::set<int> seen;
  std::size_t total = 0;
  for (const auto& shard : partition) {
    EXPECT_GE(shard.size(), 2u);
    seen.insert(shard.begin(), shard.end());
    total += shard.size();
  }
  // Still a partition after rebalancing.
  EXPECT_EQ(seen.size(), 600u);
  EXPECT_EQ(total, 600u);
}

INSTANTIATE_TEST_SUITE_P(
    SkewGrid, PartitionSweep,
    ::testing::Values(PartitionCase{10, 0.05}, PartitionCase{50, 0.05},
                      PartitionCase{100, 0.1}, PartitionCase{50, 0.5},
                      PartitionCase{200, 0.05}));

// --------------------------------------------- Communication invariance

class CommSweep : public ::testing::TestWithParam<int> {};

TEST_P(CommSweep, FedCrossMatchesFedAvgTrafficForAnyK) {
  int k = GetParam();
  auto factory = [] {
    util::Rng rng(5);
    nn::Sequential model;
    model.Add(std::make_unique<nn::Linear>(4, 2, rng));
    return model;
  };
  auto make_data = [] {
    data::FederatedDataset federated;
    federated.num_classes = 2;
    util::Rng rng(6);
    for (int c = 0; c < 12; ++c) {
      std::vector<float> features;
      std::vector<int> labels;
      for (int i = 0; i < 12; ++i) {
        int y = static_cast<int>(rng.UniformInt(2));
        for (int d = 0; d < 4; ++d) {
          features.push_back(y == 0 ? -1.0f : 1.0f);
        }
        labels.push_back(y);
      }
      federated.client_train.push_back(
          std::make_shared<data::InMemoryDataset>(
              Tensor::Shape{4}, std::move(features), std::move(labels), 2));
    }
    std::vector<float> features = {1, 1, 1, 1};
    federated.test = std::make_shared<data::InMemoryDataset>(
        Tensor::Shape{4}, std::move(features), std::vector<int>{1}, 2);
    return federated;
  };

  fl::AlgorithmConfig config;
  config.clients_per_round = k;
  config.train.local_epochs = 1;

  fl::FedAvg fedavg(config, make_data(), factory);
  fedavg.Run(1);
  core::FedCross fedcross(config, make_data(), factory,
                          core::FedCrossOptions());
  fedcross.Run(1);

  const fl::RoundRecord& avg_record = fedavg.history().records().back();
  const fl::RoundRecord& cross_record = fedcross.history().records().back();
  EXPECT_EQ(avg_record.bytes_down, cross_record.bytes_down);
  EXPECT_EQ(avg_record.bytes_up, cross_record.bytes_up);
}

INSTANTIATE_TEST_SUITE_P(Ks, CommSweep, ::testing::Values(2, 3, 6, 12));

// ------------------------------------------------- Serialization fuzzing

TEST(FuzzTest, TensorDeserializeNeverCrashesOnRandomBytes) {
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> bytes(rng.UniformInt(64));
    for (auto& byte : bytes) {
      byte = static_cast<std::uint8_t>(rng.UniformInt(256));
    }
    std::size_t offset = 0;
    Tensor result;
    // Must return cleanly (true or false), never abort or overflow.
    Tensor::DeserializeFrom(bytes, offset, result);
  }
  SUCCEED();
}

TEST(FuzzTest, CheckpointLoadNeverCrashesOnRandomFiles) {
  util::Rng rng(8);
  std::string path = ::testing::TempDir() + "/fuzz.fcpt";
  util::Rng model_rng(9);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Linear>(3, 2, model_rng));
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> bytes(rng.UniformInt(96));
    // Half the trials start with the real magic to reach deeper code.
    if (trial % 2 == 0 && bytes.size() >= 4) {
      bytes[0] = 0x54;
      bytes[1] = 0x50;
      bytes[2] = 0x43;
      bytes[3] = 0x46;
    }
    for (std::size_t i = 4; i < bytes.size(); ++i) {
      bytes[i] = static_cast<std::uint8_t>(rng.UniformInt(256));
    }
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    nn::LoadModel(model, path);  // must not crash
  }
  std::remove(path.c_str());
  SUCCEED();
}

// -------------------------------------------------- Optimizer equivalence

TEST(OptimizerPropertyTest, SgdAndAdamBothSolveToyProblem) {
  auto dataset = testing::MakeToyDataset(40, 4, 0.3f, 10);
  Tensor features;
  std::vector<int> labels;
  std::vector<int> all(dataset->size());
  for (int i = 0; i < dataset->size(); ++i) all[i] = i;
  dataset->GetBatch(all, features, labels);
  nn::CrossEntropyLoss criterion;

  for (const std::string& which : {"sgd", "adam"}) {
    util::Rng rng(11);
    nn::Sequential model;
    model.Add(std::make_unique<nn::Linear>(4, 2, rng));
    std::unique_ptr<optim::Sgd> sgd;
    std::unique_ptr<optim::Adam> adam;
    if (which == "sgd") {
      optim::SgdOptions options;
      options.lr = 0.1f;
      options.momentum = 0.9f;
      sgd = std::make_unique<optim::Sgd>(model.Params(), options);
    } else {
      optim::AdamOptions options;
      options.lr = 0.05f;
      adam = std::make_unique<optim::Adam>(model.Params(), options);
    }
    for (int step = 0; step < 80; ++step) {
      model.ZeroGrad();
      nn::LossResult loss =
          criterion.Compute(model.Forward(features, true), labels);
      model.Backward(loss.grad_logits);
      if (sgd) sgd->Step();
      if (adam) adam->Step();
    }
    float final_loss = criterion
                           .Compute(model.Forward(features, false), labels,
                                    false)
                           .loss;
    EXPECT_LT(final_loss, 0.2f) << which;
  }
}

// --------------------------------------------------- Long-sequence LSTM

TEST(LstmPropertyTest, GradCheckOnLongSequence) {
  util::Rng rng(12);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Embedding>(6, 4, rng));
  model.Add(std::make_unique<nn::Lstm>(4, 5, rng));
  model.Add(std::make_unique<nn::Linear>(5, 3, rng));
  std::vector<float> ids(2 * 24);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<float>(i % 6);
  }
  Tensor input = Tensor::FromVector({2, 24}, std::move(ids));
  double err =
      testing::CheckParamGradients(model, input, {0, 2}, rng);
  EXPECT_LT(err, 0.08);  // BPTT through 24 steps stays numerically correct
}

}  // namespace
}  // namespace fedcross
