#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace fedcross::util {
namespace {

TEST(ThreadPoolTest, ResolvesHardwareConcurrency) {
  ThreadPool pool;  // 0 = hardware_concurrency
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, ScheduleRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitWithEmptyQueueReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // nothing scheduled: must not block
  pool.Schedule([] {});
  pool.Wait();
  pool.Wait();  // drained queue: still must not block
}

TEST(ThreadPoolTest, DestructionDrainsQueuedWork) {
  std::atomic<int> count{0};
  {
    // One worker so tasks pile up in the queue, then destroy the pool while
    // most are still queued: the destructor must run them all, not drop them.
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.Schedule([&count] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        count.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&hits](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForNonPositiveCountIsNoOp) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(0, [&count](int) { count.fetch_add(1); });
  pool.ParallelFor(-5, [&count](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
}

TEST(ThreadPoolTest, ParallelForSingleIndexRunsOnCaller) {
  ThreadPool pool(2);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.ParallelFor(1, [&ran_on](int) { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);  // no helpers are scheduled for count == 1
}

TEST(ThreadPoolTest, ParallelForNestsWithoutDeadlock) {
  // Regression: an inner ParallelFor issued from inside a pool task must
  // complete even when every worker is occupied by the outer loop. The
  // caller-participation design drains the inner indices inline.
  ThreadPool pool(2);  // fewer workers than outer iterations
  constexpr int kOuter = 6;
  constexpr int kInner = 16;
  std::atomic<int> total{0};
  pool.ParallelFor(kOuter, [&](int) {
    pool.ParallelFor(kInner, [&total](int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(ThreadPoolTest, ParallelForUsesMultipleThreadsForSlowWork) {
  ThreadPool pool(4);
  if (pool.num_threads() < 2) GTEST_SKIP() << "single-threaded pool";
  std::mutex mutex;
  std::set<std::thread::id> seen;
  pool.ParallelFor(64, [&](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mutex);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_GE(seen.size(), 2u);
}

TEST(ThreadPoolTest, ParallelForBackToBackReusesPool) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int pass = 0; pass < 20; ++pass) {
    pool.ParallelFor(17, [&total](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 20 * 17);
}

}  // namespace
}  // namespace fedcross::util
