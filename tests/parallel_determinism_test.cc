// Parallel client training must be bit-identical to the sequential legacy
// path: every client job trains under an Rng seeded from
// (config.seed, round, salt, slot), so neither the thread count nor the
// execution schedule can leak into the results. These tests run the same
// federation under --fl_threads=1 and --fl_threads=4 and require exactly
// equal GlobalParams() after 5 rounds.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "comm/wire.h"
#include "core/fedcross.h"
#include "fl/algorithm.h"
#include "fl/fedavg.h"
#include "nn/linear.h"

namespace fedcross::fl {
namespace {

models::ModelFactory LinearFactory(int dim, std::uint64_t seed = 1) {
  return [dim, seed]() {
    util::Rng rng(seed);
    nn::Sequential model;
    model.Add(std::make_unique<nn::Linear>(dim, 2, rng));
    return model;
  };
}

data::FederatedDataset MakeToyFederated(int num_clients, int per_client,
                                        int dim, std::uint64_t seed) {
  util::Rng rng(seed);
  data::FederatedDataset federated;
  federated.num_classes = 2;
  auto gen_example = [&](int k, std::vector<float>& features) {
    float mean = k == 0 ? -1.0f : 1.0f;
    for (int d = 0; d < dim; ++d) {
      features.push_back(mean + static_cast<float>(rng.Normal(0.0, 0.6)));
    }
  };
  for (int c = 0; c < num_clients; ++c) {
    std::vector<float> features;
    std::vector<int> labels;
    for (int i = 0; i < per_client; ++i) {
      int k = rng.Uniform() < 0.9 ? c % 2 : 1 - c % 2;
      gen_example(k, features);
      labels.push_back(k);
    }
    federated.client_train.push_back(std::make_shared<data::InMemoryDataset>(
        Tensor::Shape{dim}, std::move(features), std::move(labels), 2));
  }
  std::vector<float> features;
  std::vector<int> labels;
  for (int i = 0; i < 40; ++i) {
    gen_example(i % 2, features);
    labels.push_back(i % 2);
  }
  federated.test = std::make_shared<data::InMemoryDataset>(
      Tensor::Shape{dim}, std::move(features), std::move(labels), 2);
  return federated;
}

AlgorithmConfig ToyConfig() {
  AlgorithmConfig config;
  config.clients_per_round = 4;
  config.train.local_epochs = 2;
  config.train.batch_size = 10;
  config.train.lr = 0.05f;
  config.seed = 17;
  // Nonzero dropout so the per-job dropout draw is exercised too: a
  // schedule-dependent draw would desynchronise the two runs immediately.
  config.dropout_prob = 0.2;
  return config;
}

// Restores the sequential default even if an assertion aborts the test body.
struct FlThreadsGuard {
  ~FlThreadsGuard() { SetFlThreads(1); }
};

void ExpectBitIdentical(const FlatParams& a, const FlatParams& b) {
  ASSERT_EQ(a.size(), b.size());
  if (a.empty()) return;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

FlatParams RunFedAvg(int threads, int rounds) {
  SetFlThreads(threads);
  FedAvg fedavg(ToyConfig(), MakeToyFederated(8, 40, 4, 41),
                LinearFactory(4));
  for (int r = 0; r < rounds; ++r) fedavg.RunRound(r);
  return fedavg.GlobalParams();
}

FlatParams RunFedCross(int threads, int rounds) {
  SetFlThreads(threads);
  core::FedCrossOptions options;
  options.alpha = 0.9;
  options.strategy = core::SelectionStrategy::kLowestSimilarity;
  core::FedCross fedcross(ToyConfig(), MakeToyFederated(8, 40, 4, 41),
                          LinearFactory(4), options);
  for (int r = 0; r < rounds; ++r) fedcross.RunRound(r);
  return fedcross.GlobalParams();
}

TEST(ParallelDeterminismTest, FlThreadsResolvesRequests) {
  FlThreadsGuard guard;
  SetFlThreads(1);
  EXPECT_EQ(FlThreads(), 1);
  SetFlThreads(4);
  EXPECT_EQ(FlThreads(), 4);
  SetFlThreads(0);  // auto: hardware_concurrency, never < 1
  EXPECT_GE(FlThreads(), 1);
}

TEST(ParallelDeterminismTest, FedAvgIsThreadCountInvariant) {
  FlThreadsGuard guard;
  FlatParams sequential = RunFedAvg(/*threads=*/1, /*rounds=*/5);
  FlatParams parallel = RunFedAvg(/*threads=*/4, /*rounds=*/5);
  ExpectBitIdentical(sequential, parallel);
}

TEST(ParallelDeterminismTest, FedCrossIsThreadCountInvariant) {
  FlThreadsGuard guard;
  FlatParams sequential = RunFedCross(/*threads=*/1, /*rounds=*/5);
  FlatParams parallel = RunFedCross(/*threads=*/4, /*rounds=*/5);
  ExpectBitIdentical(sequential, parallel);
}

TEST(ParallelDeterminismTest, EvaluationIsThreadCountInvariant) {
  // Parallel evaluation shards test batches across replicas but reduces the
  // per-batch partials in batch order, so loss and accuracy are exactly
  // equal at every thread count.
  FlThreadsGuard guard;
  SetFlThreads(1);
  AlgorithmConfig config = ToyConfig();
  config.eval_batch_size = 7;  // 40 test examples -> 6 uneven batches
  FedAvg fedavg(config, MakeToyFederated(8, 40, 4, 41), LinearFactory(4));
  for (int r = 0; r < 2; ++r) fedavg.RunRound(r);
  FlatParams params = fedavg.GlobalParams();

  EvalResult serial = fedavg.Evaluate(params);
  SetFlThreads(4);
  EvalResult four = fedavg.Evaluate(params);
  SetFlThreads(3);
  EvalResult three = fedavg.Evaluate(params);

  EXPECT_EQ(serial.loss, four.loss);
  EXPECT_EQ(serial.accuracy, four.accuracy);
  EXPECT_EQ(serial.loss, three.loss);
  EXPECT_EQ(serial.accuracy, three.accuracy);
}

TEST(ParallelDeterminismTest, OddThreadCountMatchesToo) {
  // The schedule changes completely between 3 and 4 threads; the params
  // must not.
  FlThreadsGuard guard;
  FlatParams three = RunFedCross(/*threads=*/3, /*rounds=*/3);
  FlatParams four = RunFedCross(/*threads=*/4, /*rounds=*/3);
  ExpectBitIdentical(three, four);
}

// A config that exercises every fault class at once: dropout, straggler
// racing a deadline, Byzantine sign-flip corruption, over-provisioned
// selection, server-side screening, and a robust aggregator. All fault
// draws come from the per-slot fault stream, so the whole stack must stay
// bit-identical across thread counts.
AlgorithmConfig FaultyConfig() {
  AlgorithmConfig config = ToyConfig();
  config.dropout_prob = 0.0;
  config.faults.profile.dropout_prob = 0.1;
  config.faults.profile.straggler_prob = 0.3;
  config.faults.profile.slowdown_min = 2.0;
  config.faults.profile.slowdown_max = 8.0;
  config.faults.round_deadline = 5.0;
  config.faults.profile.corrupt_prob = 0.25;
  config.faults.profile.corruption = CorruptionKind::kSignFlip;
  config.faults.profile.corruption_scale = 10.0f;
  config.faults.over_provision = 1;
  config.screening.check_finite = true;
  config.screening.max_update_norm = 50.0f;
  config.aggregator.kind = AggregatorKind::kTrimmedMean;
  config.aggregator.trim_ratio = 0.25;
  return config;
}

TEST(ParallelDeterminismTest, FaultInjectionIsThreadCountInvariant) {
  FlThreadsGuard guard;
  auto run = [](int threads) {
    SetFlThreads(threads);
    FedAvg fedavg(FaultyConfig(), MakeToyFederated(8, 40, 4, 41),
                  LinearFactory(4));
    for (int r = 0; r < 5; ++r) fedavg.RunRound(r);
    return fedavg.GlobalParams();
  };
  FlatParams one = run(1);
  FlatParams two = run(2);
  FlatParams four = run(4);
  ExpectBitIdentical(one, two);
  ExpectBitIdentical(one, four);
}

TEST(ParallelDeterminismTest, FaultyFedCrossIsThreadCountInvariant) {
  FlThreadsGuard guard;
  auto run = [](int threads) {
    SetFlThreads(threads);
    core::FedCrossOptions options;
    options.alpha = 0.9;
    core::FedCross fedcross(FaultyConfig(), MakeToyFederated(8, 40, 4, 41),
                            LinearFactory(4), options);
    for (int r = 0; r < 5; ++r) fedcross.RunRound(r);
    return fedcross.GlobalParams();
  };
  FlatParams one = run(1);
  FlatParams two = run(2);
  FlatParams four = run(4);
  ExpectBitIdentical(one, two);
  ExpectBitIdentical(one, four);
}

// --------------------------------------------------------------------------
// Differential-privacy determinism
// --------------------------------------------------------------------------

// DP noise is drawn from the dedicated per-(seed, round, salt, slot)
// privacy stream (privacy/dp.h), never from the training rng — so a noised
// run must be bit-identical across thread counts, exactly like the fault
// and codec streams.
TEST(ParallelDeterminismTest, DpNoiseIsThreadCountInvariant) {
  FlThreadsGuard guard;
  auto run = [](int threads) {
    SetFlThreads(threads);
    AlgorithmConfig config = ToyConfig();
    config.dp.clip_norm = 0.5f;
    config.dp.noise_multiplier = 1.0f;
    FedAvg fedavg(config, MakeToyFederated(8, 40, 4, 41), LinearFactory(4));
    for (int r = 0; r < 5; ++r) fedavg.RunRound(r);
    return fedavg.GlobalParams();
  };
  FlatParams one = run(1);
  FlatParams two = run(2);
  FlatParams four = run(4);
  ExpectBitIdentical(one, two);
  ExpectBitIdentical(one, four);
}

TEST(ParallelDeterminismTest, DpFedCrossWithFaultsIsThreadCountInvariant) {
  FlThreadsGuard guard;
  auto run = [](int threads) {
    SetFlThreads(threads);
    AlgorithmConfig config = FaultyConfig();
    config.dp.clip_norm = 0.5f;
    config.dp.noise_multiplier = 1.0f;
    config.secure_agg.enabled = true;
    core::FedCrossOptions options;
    options.alpha = 0.9;
    core::FedCross fedcross(config, MakeToyFederated(8, 40, 4, 41),
                            LinearFactory(4), options);
    for (int r = 0; r < 5; ++r) fedcross.RunRound(r);
    return fedcross.GlobalParams();
  };
  FlatParams one = run(1);
  FlatParams two = run(2);
  FlatParams four = run(4);
  ExpectBitIdentical(one, two);
  ExpectBitIdentical(one, four);
}

// --------------------------------------------------------------------------
// Wire codec determinism
// --------------------------------------------------------------------------

FlatParams RunFedCrossWithCodec(int threads, int rounds,
                                comm::Scheme scheme) {
  SetFlThreads(threads);
  AlgorithmConfig config = ToyConfig();
  config.codec.scheme = scheme;
  config.codec.topk_fraction = 0.25;
  core::FedCrossOptions options;
  options.alpha = 0.9;
  core::FedCross fedcross(config, MakeToyFederated(8, 40, 4, 41),
                          LinearFactory(4), options);
  for (int r = 0; r < rounds; ++r) fedcross.RunRound(r);
  return fedcross.GlobalParams();
}

TEST(ParallelDeterminismTest, EveryCodecSchemeIsThreadCountInvariant) {
  // The stochastic rounding draws come from the per-(round, client) codec
  // stream and the error-feedback residuals are indexed by client id, so a
  // lossy uplink must not reintroduce schedule sensitivity.
  FlThreadsGuard guard;
  for (comm::Scheme scheme :
       {comm::Scheme::kDelta, comm::Scheme::kInt8, comm::Scheme::kTopK,
        comm::Scheme::kInt8TopK}) {
    SCOPED_TRACE(comm::SchemeName(scheme));
    FlatParams sequential = RunFedCrossWithCodec(1, /*rounds=*/4, scheme);
    FlatParams parallel = RunFedCrossWithCodec(4, /*rounds=*/4, scheme);
    ExpectBitIdentical(sequential, parallel);
  }
}

TEST(ParallelDeterminismTest, DeltaCodecTrainsIdenticallyToIdentity) {
  // The delta codec is lossless, so the entire federation must be
  // bit-identical to the uncoded run -- only the wire bytes differ.
  FlThreadsGuard guard;
  FlatParams identity =
      RunFedCrossWithCodec(2, /*rounds=*/4, comm::Scheme::kIdentity);
  FlatParams delta =
      RunFedCrossWithCodec(2, /*rounds=*/4, comm::Scheme::kDelta);
  ExpectBitIdentical(identity, delta);
}

}  // namespace
}  // namespace fedcross::fl
