// End-to-end pipelines on the real model zoo and synthetic corpora —
// scaled-down versions of the paper's experimental setups.
#include <gtest/gtest.h>

#include "core/fedcross.h"
#include "data/partition.h"
#include "data/synthetic_image.h"
#include "data/synthetic_text.h"
#include "fl/fedavg.h"
#include "fl/scaffold.h"
#include "models/model_zoo.h"

namespace fedcross {
namespace {

// Small CIFAR-like corpus partitioned over clients.
data::FederatedDataset MakeImageFederated(int num_clients, double beta,
                                          std::uint64_t seed) {
  data::SyntheticImageOptions image_options;
  image_options.num_classes = 4;
  image_options.height = image_options.width = 8;
  image_options.train_per_class = 30;
  image_options.test_per_class = 15;
  image_options.noise_stddev = 0.6f;
  image_options.seed = seed;
  data::ImageCorpus corpus = data::MakeSyntheticImageCorpus(image_options);

  util::Rng rng(seed + 1);
  data::Partition partition =
      beta > 0 ? data::DirichletPartition(*corpus.train, num_clients, beta,
                                          rng)
               : data::IidPartition(*corpus.train, num_clients, rng);

  data::FederatedDataset federated;
  federated.num_classes = 4;
  federated.client_train = data::MakeClientShards(corpus.train, partition);
  federated.test = corpus.test;
  return federated;
}

models::ModelFactory SmallCnnFactory() {
  models::CnnConfig config;
  config.height = config.width = 8;
  config.num_classes = 4;
  config.conv1_channels = 4;
  config.conv2_channels = 8;
  config.fc_dim = 16;
  return models::MakeCnn(config);
}

fl::AlgorithmConfig SmallConfig(int k) {
  fl::AlgorithmConfig config;
  config.clients_per_round = k;
  config.train.local_epochs = 2;
  config.train.batch_size = 20;
  config.train.lr = 0.05f;
  config.train.momentum = 0.5f;
  config.seed = 5;
  return config;
}

TEST(IntegrationTest, FedAvgCnnOnImagesLearns) {
  fl::FedAvg fedavg(SmallConfig(3), MakeImageFederated(6, 0.0, 1),
                    SmallCnnFactory());
  const fl::MetricsHistory& history = fedavg.Run(6, /*eval_every=*/2);
  EXPECT_GT(history.BestAccuracy(), 0.5f);  // chance = 0.25
}

TEST(IntegrationTest, FedCrossCnnOnImagesLearnsNonIid) {
  core::FedCrossOptions options;
  options.alpha = 0.8;  // scaled-down rounds favour faster mixing
  options.strategy = core::SelectionStrategy::kLowestSimilarity;
  core::FedCross fedcross(SmallConfig(3), MakeImageFederated(6, 0.5, 2),
                          SmallCnnFactory(), options);
  const fl::MetricsHistory& history = fedcross.Run(6, /*eval_every=*/2);
  EXPECT_GT(history.BestAccuracy(), 0.45f);
}

TEST(IntegrationTest, FemnistPipelineRuns) {
  data::SyntheticFemnistOptions femnist_options;
  femnist_options.num_writers = 6;
  femnist_options.num_classes = 10;
  femnist_options.classes_per_writer = 4;
  femnist_options.mean_samples_per_writer = 40.0;
  femnist_options.height = femnist_options.width = 8;
  femnist_options.test_per_class = 4;
  data::FederatedDataset federated =
      data::MakeSyntheticFemnist(femnist_options);

  models::CnnConfig cnn_config;
  cnn_config.in_channels = 1;
  cnn_config.height = cnn_config.width = 8;
  cnn_config.num_classes = 10;
  cnn_config.conv1_channels = 4;
  cnn_config.conv2_channels = 8;
  cnn_config.fc_dim = 16;

  core::FedCross fedcross(SmallConfig(3), std::move(federated),
                          models::MakeCnn(cnn_config),
                          core::FedCrossOptions());
  const fl::MetricsHistory& history = fedcross.Run(3);
  EXPECT_GT(history.BestAccuracy(), 0.0f);
  EXPECT_EQ(history.records().size(), 3u);
}

TEST(IntegrationTest, CharLmLstmPipelineLearns) {
  data::SyntheticCharLmOptions text_options;
  text_options.num_clients = 6;
  text_options.vocab_size = 12;
  text_options.seq_len = 8;
  text_options.mean_samples_per_client = 60;
  text_options.test_samples = 120;
  data::FederatedDataset federated = data::MakeSyntheticCharLm(text_options);

  models::LstmConfig lstm_config;
  lstm_config.vocab_size = 12;
  lstm_config.embed_dim = 8;
  lstm_config.hidden_dim = 12;
  lstm_config.num_classes = 12;

  fl::AlgorithmConfig config = SmallConfig(3);
  config.train.lr = 0.2f;
  core::FedCross fedcross(config, std::move(federated),
                          models::MakeLstm(lstm_config),
                          core::FedCrossOptions());
  const fl::MetricsHistory& history = fedcross.Run(5);
  // Better than uniform guessing over 12 classes.
  EXPECT_GT(history.BestAccuracy(), 1.3f / 12);
}

TEST(IntegrationTest, SentimentLstmPipelineLearns) {
  data::SyntheticSentimentOptions text_options;
  text_options.num_clients = 6;
  text_options.vocab_size = 60;
  text_options.seq_len = 8;
  text_options.mean_samples_per_client = 60;
  text_options.test_samples = 120;
  data::FederatedDataset federated =
      data::MakeSyntheticSentiment(text_options);

  models::LstmConfig lstm_config;
  lstm_config.vocab_size = 60;
  lstm_config.embed_dim = 8;
  lstm_config.hidden_dim = 12;
  lstm_config.num_classes = 2;

  fl::AlgorithmConfig config = SmallConfig(3);
  config.train.lr = 0.2f;
  fl::FedAvg fedavg(config, std::move(federated),
                    models::MakeLstm(lstm_config));
  const fl::MetricsHistory& history = fedavg.Run(10);
  EXPECT_GT(history.BestAccuracy(), 0.6f);
}

TEST(IntegrationTest, ScaffoldResNetRuns) {
  models::ResNetConfig resnet_config;
  resnet_config.height = resnet_config.width = 8;
  resnet_config.num_classes = 4;
  resnet_config.base_width = 4;
  resnet_config.gn_groups = 2;

  fl::Scaffold scaffold(SmallConfig(2), MakeImageFederated(4, 0.5, 3),
                        models::MakeResNet(resnet_config));
  const fl::MetricsHistory& history = scaffold.Run(2);
  EXPECT_EQ(history.records().size(), 2u);
  EXPECT_GT(history.records().back().test_accuracy, 0.0f);
}

}  // namespace
}  // namespace fedcross
