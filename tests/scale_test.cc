// The million-client scaling stack: Floyd's O(K) sampler, the virtual
// (materialise-on-demand) client population, the spillable cold-state store,
// and the range-sharded aggregators. The contract under test throughout is
// bit-identity — residency, sampling routine (when pinned), spill pressure
// and thread count are performance knobs, never simulation inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "comm/wire.h"
#include "core/fedcross.h"
#include "data/dataset.h"
#include "fl/algorithm.h"
#include "fl/clusamp.h"
#include "fl/fedavg.h"
#include "fl/fedcluster.h"
#include "fl/fedgen.h"
#include "fl/scaffold.h"
#include "fl/state_store.h"
#include "nn/linear.h"
#include "util/rng.h"

namespace fedcross::fl {
namespace {

models::ModelFactory LinearFactory(int dim, std::uint64_t seed = 1) {
  return [dim, seed]() {
    util::Rng rng(seed);
    nn::Sequential model;
    model.Add(std::make_unique<nn::Linear>(dim, 2, rng));
    return model;
  };
}

// A pure-in-id shard factory (the virtual-population contract): the id seeds
// the generator, so materialising a shard twice yields bit-identical data.
data::ShardFactory ToyShardFactory(int dim, int per_client,
                                   std::uint64_t seed) {
  return [dim, per_client, seed](std::int64_t id) {
    util::Rng rng(seed ^ (static_cast<std::uint64_t>(id) + 1) *
                             0x9e3779b97f4a7c15ULL);
    std::vector<float> features;
    std::vector<int> labels;
    int majority = static_cast<int>(((id % 2) + 2) % 2);
    for (int i = 0; i < per_client; ++i) {
      int k = rng.Uniform() < 0.9 ? majority : 1 - majority;
      float mean = k == 0 ? -1.0f : 1.0f;
      for (int d = 0; d < dim; ++d) {
        features.push_back(mean + static_cast<float>(rng.Normal(0.0, 0.6)));
      }
      labels.push_back(k);
    }
    return std::make_shared<data::InMemoryDataset>(
        Tensor::Shape{dim}, std::move(features), std::move(labels), 2);
  };
}

data::FederatedDataset MakeVirtualToy(std::int64_t num_clients, int dim,
                                      int per_client) {
  data::FederatedDataset federated;
  federated.num_classes = 2;
  federated.virtual_clients = num_clients;
  federated.make_shard = ToyShardFactory(dim, per_client, /*seed=*/41);
  util::Rng rng(7);
  std::vector<float> features;
  std::vector<int> labels;
  for (int i = 0; i < 40; ++i) {
    int k = i % 2;
    float mean = k == 0 ? -1.0f : 1.0f;
    for (int d = 0; d < dim; ++d) {
      features.push_back(mean + static_cast<float>(rng.Normal(0.0, 0.6)));
    }
    labels.push_back(k);
  }
  federated.test = std::make_shared<data::InMemoryDataset>(
      Tensor::Shape{dim}, std::move(features), std::move(labels), 2);
  return federated;
}

AlgorithmConfig ScaleConfig() {
  AlgorithmConfig config;
  config.clients_per_round = 4;
  config.train.local_epochs = 1;
  config.train.batch_size = 10;
  config.train.lr = 0.05f;
  config.seed = 23;
  // Pin the sampler: resident mode would otherwise auto-select the legacy
  // full shuffle, which draws a different (equally uniform) cohort.
  config.sampler = ClientSampler::kFloyd;
  return config;
}

struct FlThreadsGuard {
  ~FlThreadsGuard() { SetFlThreads(1); }
};

void ExpectBitIdentical(const FlatParams& a, const FlatParams& b) {
  ASSERT_EQ(a.size(), b.size());
  if (a.empty()) return;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

// Builds each of the repo's algorithms over the given config + federation.
using ServerFactory = std::function<std::unique_ptr<FlAlgorithm>(
    AlgorithmConfig, data::FederatedDataset)>;

std::vector<std::pair<std::string, ServerFactory>> AllAlgorithms(int dim) {
  models::ModelFactory factory = LinearFactory(dim);
  std::vector<std::pair<std::string, ServerFactory>> algorithms;
  algorithms.emplace_back(
      "FedAvg", [factory](AlgorithmConfig config, data::FederatedDataset d) {
        return std::make_unique<FedAvg>(config, std::move(d), factory);
      });
  algorithms.emplace_back(
      "FedProx", [factory](AlgorithmConfig config, data::FederatedDataset d) {
        return std::make_unique<FedProx>(config, std::move(d), factory,
                                         /*mu=*/0.1f);
      });
  algorithms.emplace_back(
      "Scaffold", [factory](AlgorithmConfig config, data::FederatedDataset d) {
        return std::make_unique<Scaffold>(config, std::move(d), factory);
      });
  algorithms.emplace_back(
      "FedGen", [factory](AlgorithmConfig config, data::FederatedDataset d) {
        FedGen::Options options;
        options.generator_steps_per_round = 5;
        options.synthetic_samples = 16;
        return std::make_unique<FedGen>(config, std::move(d), factory,
                                        options);
      });
  algorithms.emplace_back(
      "CluSamp", [factory](AlgorithmConfig config, data::FederatedDataset d) {
        return std::make_unique<CluSamp>(config, std::move(d), factory,
                                         /*kmeans_iters=*/3);
      });
  algorithms.emplace_back(
      "FedCluster",
      [factory](AlgorithmConfig config, data::FederatedDataset d) {
        return std::make_unique<FedCluster>(config, std::move(d), factory,
                                            /*num_clusters=*/2);
      });
  algorithms.emplace_back(
      "FedCross", [factory](AlgorithmConfig config, data::FederatedDataset d) {
        core::FedCrossOptions options;
        options.alpha = 0.9;
        return std::make_unique<core::FedCross>(config, std::move(d), factory,
                                                options);
      });
  return algorithms;
}

// ------------------------------------------------------------ Floyd sampler

TEST(ScaleTest, FloydSamplerFollowsDocumentedDrawOrder) {
  // The draw order is part of the checkpoint contract (a resumed run must
  // continue the exact sequence), so it is pinned here against the
  // documented recipe: k draws UniformInt(j + 1) for j = n-k .. n-1, taking
  // j itself on a collision.
  const std::int64_t n = std::int64_t{1} << 40;
  const std::int64_t k = 64;
  util::Rng rng(99);
  util::Rng twin(99);
  std::vector<std::int64_t> sample = rng.SampleDistinct(n, k);
  std::set<std::int64_t> chosen;
  std::vector<std::int64_t> expected;
  for (std::int64_t j = n - k; j < n; ++j) {
    auto t = static_cast<std::int64_t>(
        twin.UniformInt(static_cast<std::uint64_t>(j) + 1));
    if (!chosen.insert(t).second) {
      chosen.insert(j);
      expected.push_back(j);
    } else {
      expected.push_back(t);
    }
  }
  EXPECT_EQ(sample, expected);
  std::set<std::int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(k));
  for (std::int64_t id : sample) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, n);
  }
}

TEST(ScaleTest, AutoSamplerResolvesByPopulationMode) {
  struct Probe : FedAvg {
    using FedAvg::FedAvg;
    using FedAvg::SampleClients;
  };
  auto make = [](PopulationMode mode, ClientSampler sampler) {
    AlgorithmConfig config = ScaleConfig();
    config.sampler = sampler;
    config.population = mode;
    config.clients_per_round = 8;
    return std::make_unique<Probe>(config, MakeVirtualToy(100000, 4, 10),
                                   LinearFactory(4));
  };
  // Resident + kAuto keeps the historical full-shuffle sequence (existing
  // seeds and golden results stay valid)...
  auto resident_auto = make(PopulationMode::kResident, ClientSampler::kAuto);
  auto resident_legacy =
      make(PopulationMode::kResident, ClientSampler::kFullShuffle);
  EXPECT_EQ(resident_auto->SampleClients(), resident_legacy->SampleClients());
  // ...and virtual + kAuto switches to Floyd's O(K) draw.
  auto virtual_auto = make(PopulationMode::kVirtual, ClientSampler::kAuto);
  auto virtual_floyd = make(PopulationMode::kVirtual, ClientSampler::kFloyd);
  EXPECT_EQ(virtual_auto->SampleClients(), virtual_floyd->SampleClients());
  // The two routines draw different cohorts from the same generator state.
  auto resident_floyd =
      make(PopulationMode::kResident, ClientSampler::kFloyd);
  EXPECT_NE(resident_legacy->SampleClients(),
            resident_floyd->SampleClients());
}

// ------------------------------------------------- virtual == resident

TEST(ScaleTest, VirtualPopulationIsBitIdenticalToResident) {
  // The headline contract: for every algorithm, materialising sampled
  // clients on demand (and dropping them after the round) trains
  // bit-identically to the everything-in-RAM layout, at every thread count.
  FlThreadsGuard guard;
  for (auto& [name, make] : AllAlgorithms(4)) {
    SCOPED_TRACE(name);
    for (int threads : {1, 4}) {
      SCOPED_TRACE("fl_threads=" + std::to_string(threads));
      SetFlThreads(threads);
      AlgorithmConfig resident_config = ScaleConfig();
      resident_config.population = PopulationMode::kResident;
      AlgorithmConfig virtual_config = ScaleConfig();
      virtual_config.population = PopulationMode::kVirtual;
      auto resident = make(resident_config, MakeVirtualToy(8, 4, 40));
      auto virtualized = make(virtual_config, MakeVirtualToy(8, 4, 40));
      for (int r = 0; r < 3; ++r) {
        resident->RunRound(r);
        virtualized->RunRound(r);
      }
      ExpectBitIdentical(resident->GlobalParams(),
                         virtualized->GlobalParams());
      // Resident holds all N; virtual holds only the cohort the cache has
      // not yet aged out.
      EXPECT_EQ(resident->population().resident_clients(), 8);
      EXPECT_LE(virtualized->population().resident_clients(), 8);
      EXPECT_GT(virtualized->population().materializations(), 0);
    }
  }
}

TEST(ScaleTest, HugePopulationRegistersBeyondIntRange) {
  // Registration is O(1) in N: five billion ids (beyond 32-bit range)
  // cost nothing until sampled, and only the cohort is ever resident.
  FlThreadsGuard guard;
  SetFlThreads(1);
  const std::int64_t n = std::int64_t{5} * 1000 * 1000 * 1000;
  AlgorithmConfig config = ScaleConfig();
  config.population = PopulationMode::kVirtual;
  config.clients_per_round = 2;
  FedAvg server(config, MakeVirtualToy(n, 4, 10), LinearFactory(4));
  EXPECT_EQ(server.num_clients(), n);
  server.RunRound(0);
  EXPECT_LE(server.population().resident_clients(), 4);
  FlatParams params = server.GlobalParams();
  ASSERT_FALSE(params.empty());
  for (float v : params) EXPECT_TRUE(std::isfinite(v));
}

// ----------------------------------------------------------- state store

TEST(ScaleTest, StateStoreSpillsAndFaultsInBitExact) {
  ClientStateStore store;
  StateStoreOptions options;
  options.max_resident = 2;
  store.Configure(options);
  auto fill = [](FlatParams& value, std::int64_t id) {
    value.assign(16, 0.0f);
    for (int i = 0; i < 16; ++i) {
      value[static_cast<std::size_t>(i)] =
          static_cast<float>(id) + static_cast<float>(i) * 0.25f;
    }
  };
  for (std::int64_t id = 0; id < 8; ++id) fill(store.Touch(id * 100), id);
  EXPECT_EQ(store.touched(), 8);
  EXPECT_EQ(store.spills(), 0);

  // Eviction happens only at the batch boundary, down to max_resident.
  store.BeginBatch();
  EXPECT_EQ(store.resident(), 2);
  EXPECT_EQ(store.spills(), 6);

  // Read() serves cold entries without changing residency.
  FlatParams out;
  for (std::int64_t id = 0; id < 8; ++id) {
    ASSERT_TRUE(store.Read(id * 100, out));
    ASSERT_EQ(out.size(), 16u);
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(out[static_cast<std::size_t>(i)],
                static_cast<float>(id) + static_cast<float>(i) * 0.25f);
    }
  }
  EXPECT_EQ(store.resident(), 2);
  EXPECT_FALSE(store.Read(12345, out));

  // Touch() faults a spilled entry back in, bit-exact.
  FlatParams& back = store.Touch(300);
  EXPECT_GT(store.faultins(), 0);
  ASSERT_EQ(back.size(), 16u);
  EXPECT_EQ(back[4], 4.0f);  // id 3 pattern: 3 + 4 * 0.25

  // TouchedIds is ascending and residency-independent.
  std::vector<std::int64_t> ids = store.TouchedIds();
  ASSERT_EQ(ids.size(), 8u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], static_cast<std::int64_t>(i) * 100);
  }

  store.Clear();
  EXPECT_EQ(store.touched(), 0);
  EXPECT_FALSE(store.Contains(300));
}

TEST(ScaleTest, SpillPressureDoesNotChangeTraining) {
  // SCAFFOLD variates + codec error-feedback residuals both live in
  // spillable stores; forcing near-total eviction every round must not
  // change a single bit of the training trajectory.
  FlThreadsGuard guard;
  SetFlThreads(2);
  auto run = [](std::int64_t max_resident) {
    AlgorithmConfig config = ScaleConfig();
    config.codec.scheme = comm::Scheme::kInt8TopK;
    config.codec.topk_fraction = 0.25;
    config.state_store.max_resident = max_resident;
    Scaffold scaffold(config, MakeVirtualToy(8, 4, 40), LinearFactory(4));
    for (int r = 0; r < 4; ++r) scaffold.RunRound(r);
    return scaffold.GlobalParams();
  };
  ExpectBitIdentical(run(/*max_resident=*/0), run(/*max_resident=*/1));
}

// ------------------------------------------------------ checkpoint/resume

std::unique_ptr<Scaffold> MakeSpillyScaffold() {
  AlgorithmConfig config = ScaleConfig();
  config.codec.scheme = comm::Scheme::kInt8TopK;
  config.codec.topk_fraction = 0.25;
  config.state_store.max_resident = 1;
  return std::make_unique<Scaffold>(config, MakeVirtualToy(8, 4, 40),
                                    LinearFactory(4));
}

TEST(ScaleTest, ResumeWithSpilledStateIsBitIdentical) {
  // Save fires while most variates and residuals sit in the spill file; the
  // checkpoint must capture them (via the residency-independent iteration)
  // and the resumed run must match an uninterrupted one exactly.
  FlThreadsGuard guard;
  SetFlThreads(1);
  std::string path = ::testing::TempDir() + "/scale_spill.fcpt";

  auto full = MakeSpillyScaffold();
  full->Run(6, /*eval_every=*/1);

  {
    auto first = MakeSpillyScaffold();
    first->Run(3, /*eval_every=*/1);
    ASSERT_TRUE(first->SaveCheckpoint(path).ok());
  }
  auto resumed = MakeSpillyScaffold();
  ASSERT_TRUE(resumed->LoadCheckpoint(path).ok());
  EXPECT_EQ(resumed->completed_rounds(), 3);
  resumed->Run(6, /*eval_every=*/1);
  ExpectBitIdentical(full->GlobalParams(), resumed->GlobalParams());
}

TEST(ScaleTest, VersionTwoCheckpointStillLoads) {
  // The v3 sparse id-keyed tables coexist with the v2 dense layout:
  // a downgraded save written by this build must restore exactly like the
  // native format.
  FlThreadsGuard guard;
  SetFlThreads(1);
  std::string path = ::testing::TempDir() + "/scale_v2.fcpt";

  auto full = MakeSpillyScaffold();
  full->Run(6, /*eval_every=*/1);

  {
    auto first = MakeSpillyScaffold();
    first->Run(3, /*eval_every=*/1);
    ASSERT_TRUE(first->SaveCheckpoint(path, /*version=*/2).ok());
  }
  auto resumed = MakeSpillyScaffold();
  ASSERT_TRUE(resumed->LoadCheckpoint(path).ok());
  EXPECT_EQ(resumed->completed_rounds(), 3);
  resumed->Run(6, /*eval_every=*/1);
  ExpectBitIdentical(full->GlobalParams(), resumed->GlobalParams());
}

TEST(ScaleTest, VersionTwoCheckpointRoundTripsCluSampHistory) {
  // CluSamp's per-client update history is the other sparse v3 table; the
  // dense v2 fallback must round-trip it too.
  FlThreadsGuard guard;
  SetFlThreads(1);
  std::string path = ::testing::TempDir() + "/scale_v2_clusamp.fcpt";
  auto make = []() {
    return std::make_unique<CluSamp>(ScaleConfig(), MakeVirtualToy(8, 4, 40),
                                     LinearFactory(4), /*kmeans_iters=*/3);
  };
  auto full = make();
  full->Run(5, /*eval_every=*/1);
  {
    auto first = make();
    first->Run(2, /*eval_every=*/1);
    ASSERT_TRUE(first->SaveCheckpoint(path, /*version=*/2).ok());
  }
  auto resumed = make();
  ASSERT_TRUE(resumed->LoadCheckpoint(path).ok());
  resumed->Run(5, /*eval_every=*/1);
  ExpectBitIdentical(full->GlobalParams(), resumed->GlobalParams());
}

// ------------------------------------------------- sharded aggregation

TEST(ScaleTest, ShardedAggregationIsThreadCountInvariant) {
  // The model is sized past the per-range minimums (8202 params > 2 * 4096)
  // so the mean path genuinely splits into multiple ranges and the robust
  // rules into many; every rule must still produce byte-identical output at
  // every thread count, because each coordinate's accumulation order is
  // unchanged — only which thread owns it moves.
  FlThreadsGuard guard;
  const int dim = 4100;
  for (AggregatorKind kind :
       {AggregatorKind::kWeightedMean, AggregatorKind::kTrimmedMean,
        AggregatorKind::kCoordinateMedian, AggregatorKind::kNormClippedMean}) {
    SCOPED_TRACE(AggregatorKindName(kind));
    auto run = [&](int threads) {
      SetFlThreads(threads);
      AlgorithmConfig config = ScaleConfig();
      config.aggregator.kind = kind;
      config.aggregator.trim_ratio = 0.25;
      config.aggregator.clip_norm = 5.0f;
      FedAvg server(config, MakeVirtualToy(6, dim, 10), LinearFactory(dim));
      for (int r = 0; r < 2; ++r) server.RunRound(r);
      return server.GlobalParams();
    };
    FlatParams one = run(1);
    FlatParams four = run(4);
    ExpectBitIdentical(one, four);
  }
}

}  // namespace
}  // namespace fedcross::fl
