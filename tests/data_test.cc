#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "data/dataloader.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "data/synthetic_image.h"
#include "data/synthetic_text.h"
#include "util/rng.h"

namespace fedcross::data {
namespace {

std::shared_ptr<InMemoryDataset> MakeLabelledDataset(int size,
                                                     int num_classes) {
  std::vector<float> features(size);
  std::vector<int> labels(size);
  for (int i = 0; i < size; ++i) {
    features[i] = static_cast<float>(i);
    labels[i] = i % num_classes;
  }
  return std::make_shared<InMemoryDataset>(Tensor::Shape{1},
                                           std::move(features),
                                           std::move(labels), num_classes);
}

// --------------------------------------------------------------- Datasets

TEST(InMemoryDatasetTest, SizeAndLabels) {
  auto dataset = MakeLabelledDataset(10, 3);
  EXPECT_EQ(dataset->size(), 10);
  EXPECT_EQ(dataset->num_classes(), 3);
  EXPECT_EQ(dataset->LabelOf(4), 1);
}

TEST(InMemoryDatasetTest, GetBatchStacksExamples) {
  auto dataset = MakeLabelledDataset(10, 2);
  Tensor features;
  std::vector<int> labels;
  dataset->GetBatch({3, 7}, features, labels);
  EXPECT_EQ(features.shape(), (Tensor::Shape{2, 1}));
  EXPECT_FLOAT_EQ(features.at(0), 3.0f);
  EXPECT_FLOAT_EQ(features.at(1), 7.0f);
  EXPECT_EQ(labels[0], 1);
  EXPECT_EQ(labels[1], 1);
}

TEST(InMemoryDatasetTest, LabelCounts) {
  auto dataset = MakeLabelledDataset(10, 3);
  std::vector<int> counts = dataset->LabelCounts();
  EXPECT_EQ(counts[0], 4);  // 0,3,6,9
  EXPECT_EQ(counts[1], 3);
  EXPECT_EQ(counts[2], 3);
}

TEST(SubsetDatasetTest, ViewsBaseIndices) {
  auto base = MakeLabelledDataset(10, 2);
  SubsetDataset subset(base, {9, 0, 5});
  EXPECT_EQ(subset.size(), 3);
  EXPECT_EQ(subset.LabelOf(0), 1);  // base index 9
  Tensor features;
  std::vector<int> labels;
  subset.GetBatch({0, 2}, features, labels);
  EXPECT_FLOAT_EQ(features.at(0), 9.0f);
  EXPECT_FLOAT_EQ(features.at(1), 5.0f);
}

// ------------------------------------------------------------- Partitions

TEST(IidPartitionTest, CoversAllExamplesExactlyOnce) {
  auto dataset = MakeLabelledDataset(103, 5);
  util::Rng rng(1);
  Partition partition = IidPartition(*dataset, 7, rng);
  std::multiset<int> all;
  for (const auto& shard : partition) all.insert(shard.begin(), shard.end());
  EXPECT_EQ(all.size(), 103u);
  EXPECT_EQ(std::set<int>(all.begin(), all.end()).size(), 103u);
}

TEST(IidPartitionTest, BalancedSizes) {
  auto dataset = MakeLabelledDataset(100, 5);
  util::Rng rng(2);
  Partition partition = IidPartition(*dataset, 10, rng);
  for (const auto& shard : partition) EXPECT_EQ(shard.size(), 10u);
}

TEST(IidPartitionTest, LabelMixApproximatelyUniform) {
  auto dataset = MakeLabelledDataset(1000, 4);
  util::Rng rng(3);
  Partition partition = IidPartition(*dataset, 4, rng);
  auto counts = PartitionLabelCounts(*dataset, partition);
  for (const auto& client_counts : counts) {
    for (int count : client_counts) EXPECT_NEAR(count, 62, 25);
  }
}

TEST(DirichletPartitionTest, CoversAllExamplesExactlyOnce) {
  auto dataset = MakeLabelledDataset(500, 10);
  util::Rng rng(4);
  Partition partition = DirichletPartition(*dataset, 10, 0.5, rng);
  std::set<int> all;
  std::size_t total = 0;
  for (const auto& shard : partition) {
    all.insert(shard.begin(), shard.end());
    total += shard.size();
  }
  EXPECT_EQ(all.size(), 500u);
  EXPECT_EQ(total, 500u);
}

TEST(DirichletPartitionTest, RespectsMinSize) {
  auto dataset = MakeLabelledDataset(500, 10);
  util::Rng rng(5);
  Partition partition = DirichletPartition(*dataset, 10, 0.1, rng, 3);
  for (const auto& shard : partition) EXPECT_GE(shard.size(), 3u);
}

// Smaller beta must produce higher label skew. We measure skew as the mean
// over clients of the max class share.
double MeanMaxClassShare(const Dataset& base, const Partition& partition) {
  auto counts = PartitionLabelCounts(base, partition);
  double total_share = 0.0;
  int counted = 0;
  for (const auto& client_counts : counts) {
    int total = std::accumulate(client_counts.begin(), client_counts.end(), 0);
    if (total == 0) continue;
    int max_count = *std::max_element(client_counts.begin(),
                                      client_counts.end());
    total_share += static_cast<double>(max_count) / total;
    ++counted;
  }
  return total_share / counted;
}

class DirichletSkewTest : public ::testing::TestWithParam<double> {};

TEST_P(DirichletSkewTest, SkewDecreasesWithBeta) {
  double beta = GetParam();
  auto dataset = MakeLabelledDataset(2000, 10);
  util::Rng rng(6);
  Partition partition = DirichletPartition(*dataset, 20, beta, rng);
  double share = MeanMaxClassShare(*dataset, partition);
  // IID share would be ~0.1. Small beta pushes it towards 1.
  if (beta <= 0.1) {
    EXPECT_GT(share, 0.4);
  } else if (beta >= 10.0) {
    EXPECT_LT(share, 0.25);
  }
}

INSTANTIATE_TEST_SUITE_P(Betas, DirichletSkewTest,
                         ::testing::Values(0.05, 0.1, 1.0, 10.0, 100.0));

TEST(DirichletPartitionTest, MonotoneSkewAcrossBeta) {
  auto dataset = MakeLabelledDataset(2000, 10);
  util::Rng rng(7);
  double share_low = MeanMaxClassShare(
      *dataset, DirichletPartition(*dataset, 20, 0.1, rng));
  double share_high = MeanMaxClassShare(
      *dataset, DirichletPartition(*dataset, 20, 10.0, rng));
  EXPECT_GT(share_low, share_high);
}

TEST(MakeClientShardsTest, WrapsPartition) {
  auto dataset = MakeLabelledDataset(20, 2);
  util::Rng rng(8);
  Partition partition = IidPartition(*dataset, 4, rng);
  auto shards = MakeClientShards(dataset, partition);
  ASSERT_EQ(shards.size(), 4u);
  int total = 0;
  for (const auto& shard : shards) total += shard->size();
  EXPECT_EQ(total, 20);
}

// -------------------------------------------------------------- DataLoader

TEST(DataLoaderTest, VisitsEveryExampleOncePerEpoch) {
  auto dataset = MakeLabelledDataset(25, 2);
  util::Rng rng(9);
  DataLoader loader(*dataset, 10, rng);
  Tensor features;
  std::vector<int> labels;
  std::multiset<float> seen;
  while (loader.NextBatch(features, labels)) {
    for (std::int64_t i = 0; i < features.numel(); ++i) {
      seen.insert(features.at(i));
    }
  }
  EXPECT_EQ(seen.size(), 25u);
  EXPECT_EQ(std::set<float>(seen.begin(), seen.end()).size(), 25u);
}

TEST(DataLoaderTest, LastBatchIsShort) {
  auto dataset = MakeLabelledDataset(25, 2);
  util::Rng rng(10);
  DataLoader loader(*dataset, 10, rng);
  Tensor features;
  std::vector<int> labels;
  std::vector<int> batch_sizes;
  while (loader.NextBatch(features, labels)) {
    batch_sizes.push_back(features.dim(0));
  }
  ASSERT_EQ(batch_sizes.size(), 3u);
  EXPECT_EQ(batch_sizes[2], 5);
  EXPECT_EQ(loader.batches_per_epoch(), 3);
}

TEST(DataLoaderTest, DropLastSkipsShortBatch) {
  auto dataset = MakeLabelledDataset(25, 2);
  util::Rng rng(11);
  DataLoader loader(*dataset, 10, rng, /*drop_last=*/true);
  Tensor features;
  std::vector<int> labels;
  int batches = 0;
  while (loader.NextBatch(features, labels)) ++batches;
  EXPECT_EQ(batches, 2);
  EXPECT_EQ(loader.batches_per_epoch(), 2);
}

TEST(DataLoaderTest, TinyDatasetStillYieldsOneBatch) {
  auto dataset = MakeLabelledDataset(3, 2);
  util::Rng rng(12);
  DataLoader loader(*dataset, 10, rng, /*drop_last=*/true);
  Tensor features;
  std::vector<int> labels;
  EXPECT_TRUE(loader.NextBatch(features, labels));
  EXPECT_EQ(features.dim(0), 3);
}

TEST(DataLoaderTest, ResetReshuffles) {
  auto dataset = MakeLabelledDataset(50, 2);
  util::Rng rng(13);
  DataLoader loader(*dataset, 50, rng);
  Tensor epoch1, epoch2;
  std::vector<int> labels;
  loader.NextBatch(epoch1, labels);
  loader.Reset();
  loader.NextBatch(epoch2, labels);
  bool any_different = false;
  for (std::int64_t i = 0; i < epoch1.numel(); ++i) {
    if (epoch1.at(i) != epoch2.at(i)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

// ------------------------------------------------------- Synthetic images

TEST(SyntheticImageTest, ShapesAndSizes) {
  SyntheticImageOptions options;
  options.num_classes = 4;
  options.train_per_class = 10;
  options.test_per_class = 5;
  ImageCorpus corpus = MakeSyntheticImageCorpus(options);
  EXPECT_EQ(corpus.train->size(), 40);
  EXPECT_EQ(corpus.test->size(), 20);
  EXPECT_EQ(corpus.train->example_shape(), (Tensor::Shape{3, 16, 16}));
  EXPECT_EQ(corpus.train->num_classes(), 4);
}

TEST(SyntheticImageTest, BalancedClasses) {
  SyntheticImageOptions options;
  options.num_classes = 5;
  options.train_per_class = 8;
  ImageCorpus corpus = MakeSyntheticImageCorpus(options);
  std::vector<int> counts = corpus.train->LabelCounts();
  for (int count : counts) EXPECT_EQ(count, 8);
}

TEST(SyntheticImageTest, DeterministicForSeed) {
  SyntheticImageOptions options;
  options.train_per_class = 5;
  ImageCorpus a = MakeSyntheticImageCorpus(options);
  ImageCorpus b = MakeSyntheticImageCorpus(options);
  Tensor fa, fb;
  std::vector<int> la, lb;
  a.train->GetBatch({0, 1, 2}, fa, la);
  b.train->GetBatch({0, 1, 2}, fb, lb);
  for (std::int64_t i = 0; i < fa.numel(); ++i) {
    EXPECT_EQ(fa.at(i), fb.at(i));
  }
}

TEST(SyntheticImageTest, ClassesAreSeparated) {
  // Same-class examples must be more similar than cross-class ones.
  SyntheticImageOptions options;
  options.num_classes = 2;
  options.train_per_class = 20;
  options.noise_stddev = 0.3f;
  ImageCorpus corpus = MakeSyntheticImageCorpus(options);

  Tensor features;
  std::vector<int> labels;
  std::vector<int> all(corpus.train->size());
  std::iota(all.begin(), all.end(), 0);
  corpus.train->GetBatch(all, features, labels);

  std::int64_t numel = 3 * 16 * 16;
  auto mean_of_class = [&](int k) {
    std::vector<double> mean(numel, 0.0);
    int count = 0;
    for (int i = 0; i < corpus.train->size(); ++i) {
      if (labels[i] != k) continue;
      for (std::int64_t j = 0; j < numel; ++j) {
        mean[j] += features.at(i * numel + j);
      }
      ++count;
    }
    for (double& value : mean) value /= count;
    return mean;
  };
  auto m0 = mean_of_class(0);
  auto m1 = mean_of_class(1);
  double distance = 0.0;
  for (std::int64_t j = 0; j < numel; ++j) {
    distance += (m0[j] - m1[j]) * (m0[j] - m1[j]);
  }
  EXPECT_GT(std::sqrt(distance), 1.0);  // prototypes are far apart
}

TEST(SyntheticFemnistTest, NaturalHeterogeneity) {
  SyntheticFemnistOptions options;
  options.num_writers = 10;
  options.num_classes = 20;
  options.classes_per_writer = 5;
  options.mean_samples_per_writer = 60.0;
  FederatedDataset federated = MakeSyntheticFemnist(options);
  EXPECT_EQ(federated.num_clients(), 10);
  EXPECT_EQ(federated.num_classes, 20);
  EXPECT_EQ(federated.test->size(), 20 * options.test_per_class);

  // Each writer covers at most classes_per_writer classes.
  std::set<std::size_t> sizes;
  for (const auto& shard : federated.client_train) {
    std::vector<int> counts = shard->LabelCounts();
    int covered = 0;
    for (int count : counts) {
      if (count > 0) ++covered;
    }
    EXPECT_LE(covered, 5);
    sizes.insert(shard->size());
  }
  // Sample-count imbalance: not all writers have the same size.
  EXPECT_GT(sizes.size(), 1u);
}

// --------------------------------------------------------- Synthetic text

TEST(SyntheticCharLmTest, ShapesAndVocab) {
  SyntheticCharLmOptions options;
  options.num_clients = 4;
  options.vocab_size = 16;
  options.seq_len = 8;
  options.mean_samples_per_client = 50;
  FederatedDataset federated = MakeSyntheticCharLm(options);
  EXPECT_EQ(federated.num_clients(), 4);
  EXPECT_EQ(federated.num_classes, 16);
  EXPECT_EQ(federated.client_train[0]->example_shape(), (Tensor::Shape{8}));

  Tensor features;
  std::vector<int> labels;
  federated.client_train[0]->GetBatch({0, 1}, features, labels);
  for (std::int64_t i = 0; i < features.numel(); ++i) {
    EXPECT_GE(features.at(i), 0.0f);
    EXPECT_LT(features.at(i), 16.0f);
    EXPECT_EQ(features.at(i), std::floor(features.at(i)));  // integer ids
  }
  for (int label : labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 16);
  }
}

TEST(SyntheticCharLmTest, MarkovStructureIsLearnable) {
  // Consecutive windows overlap: label of window i equals the last token of
  // window i+1 shifted — here we check the weaker property that the next
  // character distribution is non-uniform (a frequency model beats chance).
  SyntheticCharLmOptions options;
  options.num_clients = 2;
  options.vocab_size = 8;
  options.mean_samples_per_client = 400;
  FederatedDataset federated = MakeSyntheticCharLm(options);
  std::vector<int> counts = federated.client_train[0]->LabelCounts();
  int max_count = *std::max_element(counts.begin(), counts.end());
  int total = std::accumulate(counts.begin(), counts.end(), 0);
  EXPECT_GT(static_cast<double>(max_count) / total, 1.5 / 8);
}

TEST(SyntheticSentimentTest, BinaryLabelsAndSkew) {
  SyntheticSentimentOptions options;
  options.num_clients = 12;
  options.mean_samples_per_client = 80;
  FederatedDataset federated = MakeSyntheticSentiment(options);
  EXPECT_EQ(federated.num_classes, 2);

  // Clients have skewed polarity mixes: at least one client far from 50/50.
  bool any_skewed = false;
  for (const auto& shard : federated.client_train) {
    std::vector<int> counts = shard->LabelCounts();
    double positive_share =
        static_cast<double>(counts[1]) / (counts[0] + counts[1]);
    if (positive_share < 0.3 || positive_share > 0.7) any_skewed = true;
  }
  EXPECT_TRUE(any_skewed);

  // The global test set is balanced.
  std::vector<int> test_counts = federated.test->LabelCounts();
  double test_share = static_cast<double>(test_counts[1]) /
                      (test_counts[0] + test_counts[1]);
  EXPECT_NEAR(test_share, 0.5, 0.1);
}

TEST(SyntheticSentimentTest, LabelMatchesDominantPolarity) {
  SyntheticSentimentOptions options;
  options.num_clients = 3;
  options.vocab_size = 120;
  options.mean_samples_per_client = 50;
  FederatedDataset federated = MakeSyntheticSentiment(options);
  int third = options.vocab_size / 3;

  Tensor features;
  std::vector<int> labels;
  auto& shard = *federated.client_train[0];
  std::vector<int> all(shard.size());
  std::iota(all.begin(), all.end(), 0);
  shard.GetBatch(all, features, labels);

  int consistent = 0;
  for (int i = 0; i < shard.size(); ++i) {
    int pos = 0, neg = 0;
    for (int t = 0; t < options.seq_len; ++t) {
      int token = static_cast<int>(features.at(i * options.seq_len + t));
      if (token < third) {
        ++pos;
      } else if (token < 2 * third) {
        ++neg;
      }
    }
    int dominant = pos > neg ? 1 : 0;
    if (dominant == labels[i]) ++consistent;
  }
  // The forced-token fix guarantees strong consistency.
  EXPECT_GT(static_cast<double>(consistent) / shard.size(), 0.9);
}

}  // namespace
}  // namespace fedcross::data
